// Tests for the overload-control subsystem: spec parsing, the pressure
// wire codec, watermark hysteresis, credit-based admission (including
// overdraft liveness and scripted starvation), the staging hard wall,
// steering routes, and the steering decision table. The concurrency
// tests at the bottom run under TSan (ci/sanitize.sh tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "core/stats_pipeline.hpp"
#include "runtime/overload.hpp"
#include "staging/object_store.hpp"
#include "staging/scheduler.hpp"
#include "util/error.hpp"

namespace hia {
namespace {

// ------------------------------------------------------------ spec parsing

TEST(OverloadConfig, ParseFullSpec) {
  const OverloadConfig cfg = OverloadConfig::parse_spec(
      "queue-bytes=1m,queue-depth=32,store-bytes=2k,low=0.4,high=0.8,"
      "credits=16,admit-wait=0.01,defer-max=3");
  EXPECT_EQ(cfg.queue_bytes_budget, size_t{1} << 20);
  EXPECT_EQ(cfg.queue_depth_budget, 32u);
  EXPECT_EQ(cfg.store_bytes_budget, 2048u);
  EXPECT_DOUBLE_EQ(cfg.low_watermark, 0.4);
  EXPECT_DOUBLE_EQ(cfg.high_watermark, 0.8);
  EXPECT_EQ(cfg.credits, 16);
  EXPECT_DOUBLE_EQ(cfg.admit_max_wait_s, 0.01);
  EXPECT_EQ(cfg.max_defers, 3);
  EXPECT_TRUE(cfg.enabled());
}

TEST(OverloadConfig, EmptySpecIsDisabled) {
  const OverloadConfig cfg = OverloadConfig::parse_spec("");
  EXPECT_FALSE(cfg.enabled());
  EXPECT_EQ(cfg.queue_bytes_budget, 0u);
  EXPECT_EQ(cfg.credits, 0);
}

TEST(OverloadConfig, RejectsMalformedSpecs) {
  EXPECT_THROW(OverloadConfig::parse_spec("frobnicate=1"), Error);
  EXPECT_THROW(OverloadConfig::parse_spec("queue-bytes=nope"), Error);
  // Inverted / out-of-range watermarks.
  EXPECT_THROW(OverloadConfig::parse_spec("queue-bytes=1k,low=0.9,high=0.5"),
               Error);
  EXPECT_THROW(OverloadConfig::parse_spec("queue-bytes=1k,low=0"), Error);
  EXPECT_THROW(OverloadConfig::parse_spec("queue-bytes=1k,high=1.5"), Error);
}

// ------------------------------------------------------------- wire codec

TEST(PressureCodec, EncodeDecodeRoundTrip) {
  PressureSignal s;
  s.state = PressureState::kSaturated;
  s.queue_bytes = 123456;
  s.queue_depth = 7;
  s.store_bytes = 987654321;
  s.credits_free = 3;
  s.live_buckets = 2;
  const PressureSignal d = decode_pressure(encode_pressure(s));
  EXPECT_EQ(d.state, PressureState::kSaturated);
  EXPECT_EQ(d.queue_bytes, 123456u);
  EXPECT_EQ(d.queue_depth, 7u);
  EXPECT_EQ(d.store_bytes, 987654321u);
  EXPECT_EQ(d.credits_free, 3);
  EXPECT_EQ(d.live_buckets, 2);
}

TEST(PressureCodec, RejectsWrongSizePayload) {
  EXPECT_THROW(decode_pressure(std::vector<std::byte>(5)), Error);
}

// -------------------------------------------------------------- watermarks

TEST(OverloadControl, WatermarkHysteresis) {
  OverloadControl ctrl(
      OverloadConfig::parse_spec("queue-bytes=1000,low=0.5,high=0.9"));
  EXPECT_EQ(ctrl.state(), PressureState::kNominal);

  ctrl.on_queue_add(400);  // util 0.4 < low
  EXPECT_EQ(ctrl.state(), PressureState::kNominal);
  ctrl.on_queue_add(100);  // util 0.5: crosses low on the way up
  EXPECT_EQ(ctrl.state(), PressureState::kElevated);
  ctrl.on_queue_add(400);  // util 0.9: saturated
  EXPECT_EQ(ctrl.state(), PressureState::kSaturated);

  // Hysteresis: dropping back into the [low, high) band must NOT release.
  ctrl.on_queue_remove(300);  // util 0.6
  EXPECT_EQ(ctrl.state(), PressureState::kSaturated);
  // Only below the low watermark does the state return to nominal.
  ctrl.on_queue_remove(200);  // util 0.4
  EXPECT_EQ(ctrl.state(), PressureState::kNominal);
}

TEST(OverloadControl, QueueWouldOverflowByBytesAndDepth) {
  OverloadControl by_bytes(OverloadConfig::parse_spec("queue-bytes=1000"));
  by_bytes.on_queue_add(800);
  EXPECT_FALSE(by_bytes.queue_would_overflow(200));
  EXPECT_TRUE(by_bytes.queue_would_overflow(201));

  OverloadControl by_depth(OverloadConfig::parse_spec("queue-depth=2"));
  EXPECT_FALSE(by_depth.queue_would_overflow(1));
  by_depth.on_queue_add(1);
  by_depth.on_queue_add(1);
  EXPECT_TRUE(by_depth.queue_would_overflow(1));
}

TEST(OverloadControl, PhantomBytesRaisePressureAndCountAgainstBudget) {
  OverloadControl ctrl(OverloadConfig::parse_spec("queue-bytes=1000"));
  ctrl.inject_phantom_bytes(900);
  EXPECT_EQ(ctrl.state(), PressureState::kSaturated);
  EXPECT_EQ(ctrl.stats().phantom_bytes, 900u);
  EXPECT_EQ(ctrl.pressure().queue_bytes, 900u);
  // The hard wall sees phantom bytes too: injected overload is
  // indistinguishable from real overload downstream.
  EXPECT_TRUE(ctrl.queue_would_overflow(200));
  EXPECT_FALSE(ctrl.queue_would_overflow(100));
}

// --------------------------------------------------------------- admission

TEST(OverloadControl, CreditAdmitReleaseAndOverdraft) {
  OverloadControl ctrl(
      OverloadConfig::parse_spec("credits=2,admit-wait=0.01"));
  const PressureSignal s1 = ctrl.admit(64);
  EXPECT_EQ(s1.credits_free, 1);
  ctrl.admit(64);
  EXPECT_EQ(ctrl.stats().credits_outstanding, 2);

  // All credits out: the third put waits admit-wait, then overdrafts.
  const PressureSignal s3 = ctrl.admit(64);
  EXPECT_EQ(s3.credits_free, 0);
  const OverloadControl::Stats stats = ctrl.stats();
  EXPECT_EQ(stats.admissions, 3u);
  EXPECT_EQ(stats.admission_overdrafts, 1u);
  EXPECT_GE(stats.admission_wait_s, 0.005);

  ctrl.release_credit();
  ctrl.release_credit();
  ctrl.release_credit();
  EXPECT_EQ(ctrl.stats().credits_outstanding, 0);
}

TEST(OverloadControl, AdmitUnblocksOnRelease) {
  OverloadControl ctrl(
      OverloadConfig::parse_spec("credits=1,admit-wait=5.0"));
  ctrl.admit(8);
  std::atomic<bool> entered{false};
  std::thread blocked([&] {
    entered.store(true, std::memory_order_release);
    ctrl.admit(8);
  });
  // Poll until the waiter is at (or provably headed into) the credit
  // wait instead of sleeping a fixed interval; either interleaving keeps
  // the assertions valid — release can only make its admit clean.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!entered.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ctrl.release_credit();
  blocked.join();
  // The waiter got a real credit (no overdraft) well before the deadline.
  EXPECT_EQ(ctrl.stats().admission_overdrafts, 0u);
  EXPECT_EQ(ctrl.stats().credits_outstanding, 1);
}

TEST(OverloadControl, StarveCreditsKeepsOneEffective) {
  OverloadControl ctrl(
      OverloadConfig::parse_spec("credits=2,admit-wait=0.002"));
  ctrl.starve_credits(5);  // far more than exist
  EXPECT_EQ(ctrl.stats().credits_starved, 5);
  // At least one effective credit always remains: the first admit is clean,
  // only the second overdrafts. Admission crawls, it never stops.
  ctrl.admit(8);
  EXPECT_EQ(ctrl.stats().admission_overdrafts, 0u);
  ctrl.admit(8);
  EXPECT_EQ(ctrl.stats().admission_overdrafts, 1u);
}

// ------------------------------------------------------- store accounting

TEST(ObjectStore, ByteAccountingFeedsPressure) {
  OverloadControl ctrl(
      OverloadConfig::parse_spec("store-bytes=1000,low=0.5,high=0.9"));
  ObjectStore store(2, &ctrl);

  DataDescriptor d1;
  d1.variable = "T";
  d1.step = 1;
  d1.handle.bytes = 600;
  store.put(d1);
  EXPECT_EQ(store.bytes(), 600u);
  EXPECT_EQ(ctrl.pressure().store_bytes, 600u);
  EXPECT_EQ(ctrl.state(), PressureState::kElevated);

  DataDescriptor d2 = d1;
  d2.handle.bytes = 400;
  store.put(d2);
  EXPECT_EQ(store.bytes(), 1000u);
  EXPECT_EQ(ctrl.state(), PressureState::kSaturated);

  const auto taken = store.take("T", 1);
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(store.bytes(), 0u);
  EXPECT_EQ(ctrl.pressure().store_bytes, 0u);
  EXPECT_EQ(ctrl.state(), PressureState::kNominal);
}

// --------------------------------------------------------- Dart admission

TEST(DartOverload, PutAdmissionPiggybacksPressureAck) {
  OverloadControl ctrl(
      OverloadConfig::parse_spec("credits=4,admit-wait=0.002"));
  NetworkModel net;
  Dart::Options opts;
  opts.overload = &ctrl;
  Dart dart(net, opts);
  const int owner = dart.register_node("sim-0");

  const DartHandle h = dart.put_doubles(owner, {1.0, 2.0, 3.0});
  EXPECT_EQ(ctrl.stats().credits_outstanding, 1);

  // The put ack arrives at the owner carrying the pressure snapshot.
  const auto ev = dart.poll(owner);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->type, DartEvent::Type::kPutCompleted);
  EXPECT_EQ(ev->handle_id, h.id);
  const PressureSignal sig = decode_pressure(ev->payload);
  EXPECT_EQ(sig.state, PressureState::kNominal);
  EXPECT_EQ(sig.credits_free, 3);

  // release() returns the region's credit.
  dart.release(h);
  EXPECT_EQ(ctrl.stats().credits_outstanding, 0);
  EXPECT_EQ(dart.num_published(), 0u);
}

TEST(DartOverload, ReleaseRecyclesTheCredit) {
  OverloadControl ctrl(
      OverloadConfig::parse_spec("credits=1,admit-wait=0.002"));
  NetworkModel net;
  Dart::Options opts;
  opts.overload = &ctrl;
  Dart dart(net, opts);
  const int owner = dart.register_node("sim-0");
  for (int i = 0; i < 3; ++i) {
    const DartHandle h = dart.put_doubles(owner, {1.0});
    dart.release(h);
  }
  // Serial put/release cycles through one credit never overdraft.
  EXPECT_EQ(ctrl.stats().admissions, 3u);
  EXPECT_EQ(ctrl.stats().admission_overdrafts, 0u);
}

// ---------------------------------------------------------- staging wall

TEST(StagingOverload, HardWallBoundsQueueBytesAndConserves) {
  // One slow bucket, a queue budget of two payloads, six back-to-back
  // tasks: the wall must divert the overflow to the fallback executor
  // while real queued bytes never exceed the budget.
  OverloadControl ctrl(OverloadConfig::parse_spec("queue-bytes=16384"));
  NetworkModel net;
  Dart dart(net);
  StagingService service(dart, {1, 1, nullptr, &ctrl});
  service.register_handler("work", [](TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  const int sim = dart.register_node("sim-0");
  const std::vector<double> payload(1024, 1.0);  // 8192 B per task
  for (long t = 0; t < 6; ++t) {
    service.publish(sim, "x", t, Box3{{0, 0, 0}, {1024, 1, 1}}, payload);
    service.submit_for("work", t, {"x"});
  }
  service.drain();

  uint64_t completed = 0, degraded = 0, shed = 0;
  for (const TaskRecord& r : service.records()) {
    if (r.outcome == TaskOutcome::kCompleted) ++completed;
    if (r.outcome == TaskOutcome::kDegraded) ++degraded;
    if (r.outcome == TaskOutcome::kShed) ++shed;
  }
  EXPECT_EQ(service.records().size(), 6u);
  EXPECT_EQ(completed + degraded + shed, 6u);  // conservation
  EXPECT_EQ(shed, 0u);
  EXPECT_GE(service.overload_diversions(), 1u);
  EXPECT_EQ(degraded, service.overload_diversions());
  // No phantom injection here, so the peak is entirely real queue bytes.
  EXPECT_LE(ctrl.stats().peak_queue_bytes, 16384u);
  EXPECT_EQ(dart.num_published(), 0u);  // every input released
}

TEST(StagingOverload, SubmitRoutesFallbackAndShed) {
  NetworkModel net;
  Dart dart(net);
  StagingService service(dart, {1, 2});
  std::atomic<int> ran{0};
  service.register_handler("work", [&](TaskContext&) { ran.fetch_add(1); });
  const int sim = dart.register_node("sim-0");

  service.publish(sim, "x", 0, Box3{{0, 0, 0}, {4, 1, 1}}, {1, 2, 3, 4});
  service.submit_for("work", 0, {"x"}, SubmitRoute::kFallback);
  service.publish(sim, "x", 1, Box3{{0, 0, 0}, {4, 1, 1}}, {1, 2, 3, 4});
  service.submit_for("work", 1, {"x"}, SubmitRoute::kShed);
  service.drain();

  ASSERT_EQ(service.records().size(), 2u);
  EXPECT_EQ(service.records()[0].outcome, TaskOutcome::kDegraded);
  EXPECT_EQ(service.records()[1].outcome, TaskOutcome::kShed);
  EXPECT_EQ(ran.load(), 1);  // the shed task never executed
  EXPECT_EQ(dart.num_published(), 0u);  // shed inputs were released, not leaked
}

TEST(StagingOverload, RecordDeferredWritesTerminalRecord) {
  NetworkModel net;
  Dart dart(net);
  StagingService service(dart, {1, 1});
  const uint64_t id = service.record_deferred("stats", 4);
  EXPECT_GT(id, 0u);
  service.drain();  // deferred records hold no outstanding work
  ASSERT_EQ(service.records().size(), 1u);
  EXPECT_EQ(service.records()[0].outcome, TaskOutcome::kDeferred);
  EXPECT_EQ(service.records()[0].analysis, "stats");
  EXPECT_EQ(service.records()[0].step, 4);
}

TEST(StagingOverload, TaskClockDomainInvariant) {
  // Every TaskRecord timestamp lives on the service's virtual task clock
  // (seconds since service start), never wall-epoch time. A wall-epoch
  // value here would be ~1.7e9 and trip both the guard and this test.
  NetworkModel net;
  Dart dart(net);
  StagingService service(dart, {1, 2});
  service.register_handler("work", [](TaskContext&) {});
  for (long t = 0; t < 4; ++t) {
    service.submit(InTransitTask{"work", t, {}, 0});
  }
  service.drain();
  const double now = service.now();
  for (const TaskRecord& r : service.records()) {
    EXPECT_GE(r.enqueue_time, 0.0);
    EXPECT_LE(r.enqueue_time, now);
    EXPECT_GE(r.assign_time, r.enqueue_time);
    EXPECT_LE(r.complete_time, now);
  }
}

// ------------------------------------------------------- steering table

TEST(Steering, ParsePolicyNames) {
  EXPECT_EQ(parse_steer_policy(""), SteerPolicy::kInTransit);
  EXPECT_EQ(parse_steer_policy("in-transit"), SteerPolicy::kInTransit);
  EXPECT_EQ(parse_steer_policy("adaptive"), SteerPolicy::kAdaptive);
  EXPECT_EQ(parse_steer_policy("in-situ"), SteerPolicy::kInSitu);
  EXPECT_EQ(parse_steer_policy("shed"), SteerPolicy::kShed);
  EXPECT_THROW(parse_steer_policy("yolo"), Error);
}

TEST(Steering, DecisionTable) {
  PressureSignal nominal;
  nominal.live_buckets = 4;
  PressureSignal saturated = nominal;
  saturated.state = PressureState::kSaturated;
  PressureSignal saturated_dead = saturated;
  saturated_dead.live_buckets = 0;

  // Fixed policies ignore pressure entirely.
  EXPECT_EQ(steer_decide(SteerPolicy::kInTransit, saturated, 0, 1),
            SteerDecision::kInTransit);
  EXPECT_EQ(steer_decide(SteerPolicy::kInSitu, nominal, 0, 1),
            SteerDecision::kInSitu);

  // Adaptive: nominal -> in-transit; saturated -> defer while the deadline
  // and a live bucket allow, then in-situ fallback.
  EXPECT_EQ(steer_decide(SteerPolicy::kAdaptive, nominal, 0, 1),
            SteerDecision::kInTransit);
  EXPECT_EQ(steer_decide(SteerPolicy::kAdaptive, saturated, 0, 1),
            SteerDecision::kDefer);
  EXPECT_EQ(steer_decide(SteerPolicy::kAdaptive, saturated, 1, 1),
            SteerDecision::kInSitu);
  // Pressure that can never drain (no live bucket) skips the defer.
  EXPECT_EQ(steer_decide(SteerPolicy::kAdaptive, saturated_dead, 0, 1),
            SteerDecision::kInSitu);

  // Shed policy: like adaptive, but past-deadline saturated work drops.
  EXPECT_EQ(steer_decide(SteerPolicy::kShed, nominal, 0, 1),
            SteerDecision::kInTransit);
  EXPECT_EQ(steer_decide(SteerPolicy::kShed, saturated, 0, 1),
            SteerDecision::kDefer);
  EXPECT_EQ(steer_decide(SteerPolicy::kShed, saturated, 1, 1),
            SteerDecision::kShed);
}

// ------------------------------------------------------- runner steering

TEST(RunnerSteering, InSituPolicyDegradesEveryTask) {
  RunConfig cfg;
  cfg.sim.grid = GlobalGrid{{16, 12, 8}, {1.0, 1.0, 1.0}};
  cfg.sim.ranks_per_axis = {1, 1, 1};
  cfg.staging_servers = 1;
  cfg.staging_buckets = 2;
  cfg.steps = 3;
  cfg.steer = "in-situ";
  HybridRunner runner(cfg);
  runner.add_analysis(std::make_shared<HybridStatistics>());
  const RunReport report = runner.run();
  EXPECT_EQ(report.resilience.tasks_degraded, 3u);
  EXPECT_EQ(report.resilience.tasks_completed, 0u);
  EXPECT_EQ(report.resilience.steer_in_situ, 3u);
  EXPECT_TRUE(report.resilience.any());
}

TEST(RunnerSteering, AdaptiveUnderNoPressureIsAllInTransit) {
  RunConfig cfg;
  cfg.sim.grid = GlobalGrid{{16, 12, 8}, {1.0, 1.0, 1.0}};
  cfg.sim.ranks_per_axis = {1, 1, 1};
  cfg.staging_servers = 1;
  cfg.staging_buckets = 2;
  cfg.steps = 3;
  cfg.steer = "adaptive";
  cfg.overload = "queue-bytes=64m,credits=64";
  HybridRunner runner(cfg);
  runner.add_analysis(std::make_shared<HybridStatistics>());
  const RunReport report = runner.run();
  // An uncontended pipeline must be byte-identical to the plain path:
  // everything completes in-transit, nothing deferred or degraded.
  EXPECT_EQ(report.resilience.tasks_completed, 3u);
  EXPECT_EQ(report.resilience.tasks_degraded, 0u);
  EXPECT_EQ(report.resilience.tasks_deferred, 0u);
  EXPECT_EQ(report.resilience.steer_in_transit, 3u);
  EXPECT_EQ(report.resilience.overload_diversions, 0u);
}

// ----------------------------------------------------------- concurrency

TEST(OverloadConcurrency, ParallelAdmitAndAccountingStaysConsistent) {
  OverloadControl ctrl(OverloadConfig::parse_spec(
      "queue-bytes=1m,store-bytes=1m,credits=8,admit-wait=0.0005"));
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int n = 0; n < kIters; ++n) {
        ctrl.admit(64);
        ctrl.on_queue_add(64);
        ctrl.on_store_put(64);
        (void)ctrl.queue_would_overflow(64);
        (void)ctrl.pressure();
        ctrl.on_store_take(64);
        ctrl.on_queue_remove(64);
        ctrl.release_credit();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const OverloadControl::Stats stats = ctrl.stats();
  EXPECT_EQ(stats.admissions, uint64_t{kThreads} * kIters);
  EXPECT_EQ(stats.credits_outstanding, 0);
  const PressureSignal sig = ctrl.pressure();
  EXPECT_EQ(sig.queue_bytes, 0u);
  EXPECT_EQ(sig.queue_depth, 0u);
  EXPECT_EQ(sig.store_bytes, 0u);
}

TEST(OverloadConcurrency, ParallelStorePutsTakeExactBytes) {
  OverloadControl ctrl(OverloadConfig::parse_spec("store-bytes=16m"));
  ObjectStore store(4, &ctrl);
  constexpr int kThreads = 4;
  constexpr int kIters = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int n = 0; n < kIters; ++n) {
        DataDescriptor d;
        d.variable = "v" + std::to_string(i);
        d.step = n;
        d.handle.bytes = 128;
        store.put(d);
        const auto taken = store.take(d.variable, d.step);
        ASSERT_EQ(taken.size(), 1u);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.bytes(), 0u);
  EXPECT_EQ(ctrl.pressure().store_bytes, 0u);
}

}  // namespace
}  // namespace hia
