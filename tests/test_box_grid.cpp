// Tests for Box3, GlobalGrid, and the block decomposition (including
// property sweeps over rank layouts: blocks must tile the grid exactly).
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "sim/grid.hpp"

namespace hia {
namespace {

TEST(Box3, ExtentAndCells) {
  const Box3 b{{1, 2, 3}, {4, 6, 9}};
  EXPECT_EQ(b.extent(0), 3);
  EXPECT_EQ(b.extent(1), 4);
  EXPECT_EQ(b.extent(2), 6);
  EXPECT_EQ(b.num_cells(), 72);
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE((Box3{{0, 0, 0}, {0, 5, 5}}).empty());
}

TEST(Box3, Contains) {
  const Box3 b{{0, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(b.contains(0, 0, 0));
  EXPECT_TRUE(b.contains(1, 1, 1));
  EXPECT_FALSE(b.contains(2, 0, 0));
  EXPECT_FALSE(b.contains(-1, 0, 0));
  EXPECT_TRUE(b.contains(Box3{{0, 0, 0}, {1, 2, 2}}));
  EXPECT_FALSE(b.contains(Box3{{0, 0, 0}, {3, 2, 2}}));
}

TEST(Box3, IntersectAndOverlap) {
  const Box3 a{{0, 0, 0}, {4, 4, 4}};
  const Box3 b{{2, 2, 2}, {6, 6, 6}};
  const Box3 i = a.intersect(b);
  EXPECT_EQ(i, (Box3{{2, 2, 2}, {4, 4, 4}}));
  EXPECT_TRUE(a.overlaps(b));
  const Box3 c{{4, 0, 0}, {5, 4, 4}};
  EXPECT_FALSE(a.overlaps(c));  // half-open: touching is not overlapping
}

TEST(Box3, GrownClampsToBounds) {
  const Box3 bounds{{0, 0, 0}, {10, 10, 10}};
  const Box3 b{{0, 4, 8}, {2, 6, 10}};
  const Box3 g = b.grown(2, bounds);
  EXPECT_EQ(g, (Box3{{0, 2, 6}, {4, 8, 10}}));
}

TEST(Box3, OffsetCoordsRoundTrip) {
  const Box3 b{{3, -2, 5}, {7, 1, 9}};
  std::set<size_t> seen;
  for (int64_t k = b.lo[2]; k < b.hi[2]; ++k) {
    for (int64_t j = b.lo[1]; j < b.hi[1]; ++j) {
      for (int64_t i = b.lo[0]; i < b.hi[0]; ++i) {
        const size_t off = b.offset(i, j, k);
        seen.insert(off);
        int64_t ri, rj, rk;
        b.coords(off, ri, rj, rk);
        EXPECT_EQ(ri, i);
        EXPECT_EQ(rj, j);
        EXPECT_EQ(rk, k);
      }
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(b.num_cells()));
  EXPECT_EQ(*seen.rbegin(), static_cast<size_t>(b.num_cells()) - 1);
}

TEST(GlobalGrid, SpacingAndCoords) {
  GlobalGrid g{{10, 20, 40}, {1.0, 2.0, 4.0}};
  EXPECT_DOUBLE_EQ(g.spacing(0), 0.1);
  EXPECT_DOUBLE_EQ(g.spacing(1), 0.1);
  EXPECT_DOUBLE_EQ(g.spacing(2), 0.1);
  EXPECT_DOUBLE_EQ(g.coord(0, 0), 0.05);
  EXPECT_DOUBLE_EQ(g.coord(0, 9), 0.95);
  EXPECT_EQ(g.num_points(), 8000);
}

struct DecompCase {
  std::array<int64_t, 3> dims;
  std::array<int, 3> ranks;
};

class DecompositionProperty : public ::testing::TestWithParam<DecompCase> {};

TEST_P(DecompositionProperty, BlocksTileGridExactly) {
  const auto&[dims, ranks] = GetParam();
  GlobalGrid grid{dims, {1.0, 1.0, 1.0}};
  Decomposition d(grid, ranks);

  int64_t total = 0;
  for (int r = 0; r < d.num_ranks(); ++r) {
    const Box3 b = d.block(r);
    EXPECT_FALSE(b.empty());
    total += b.num_cells();
    // No block overlaps any other block.
    for (int s = r + 1; s < d.num_ranks(); ++s) {
      EXPECT_FALSE(b.overlaps(d.block(s)));
    }
  }
  EXPECT_EQ(total, grid.num_points());
}

TEST_P(DecompositionProperty, OwnerMatchesBlocks) {
  const auto&[dims, ranks] = GetParam();
  GlobalGrid grid{dims, {1.0, 1.0, 1.0}};
  Decomposition d(grid, ranks);
  // Sample a lattice of points; the owner's block must contain each.
  for (int64_t i = 0; i < dims[0]; i += std::max<int64_t>(1, dims[0] / 7)) {
    for (int64_t j = 0; j < dims[1]; j += std::max<int64_t>(1, dims[1] / 7)) {
      for (int64_t k = 0; k < dims[2];
           k += std::max<int64_t>(1, dims[2] / 7)) {
        const int owner = d.owner(i, j, k);
        ASSERT_GE(owner, 0);
        EXPECT_TRUE(d.block(owner).contains(i, j, k));
      }
    }
  }
}

TEST_P(DecompositionProperty, RankCoordsRoundTrip) {
  const auto&[dims, ranks] = GetParam();
  GlobalGrid grid{dims, {1.0, 1.0, 1.0}};
  Decomposition d(grid, ranks);
  for (int r = 0; r < d.num_ranks(); ++r) {
    EXPECT_EQ(d.rank_at(d.rank_coords(r)), r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, DecompositionProperty,
    ::testing::Values(DecompCase{{8, 8, 8}, {1, 1, 1}},
                      DecompCase{{8, 8, 8}, {2, 2, 2}},
                      DecompCase{{10, 9, 7}, {3, 2, 2}},   // remainders
                      DecompCase{{16, 4, 4}, {4, 1, 1}},
                      DecompCase{{5, 5, 5}, {5, 5, 5}},    // one point each
                      DecompCase{{32, 28, 10}, {4, 4, 2}}));

TEST(Decomposition, NeighborsAreAdjacent) {
  GlobalGrid grid{{12, 12, 12}, {1.0, 1.0, 1.0}};
  Decomposition d(grid, {3, 2, 2});
  const int r = d.rank_at({1, 0, 1});
  EXPECT_EQ(d.neighbor(r, -1, 0, 0), d.rank_at({0, 0, 1}));
  EXPECT_EQ(d.neighbor(r, 1, 1, 0), d.rank_at({2, 1, 1}));
  EXPECT_EQ(d.neighbor(r, 0, -1, 0), -1);  // domain boundary
  EXPECT_EQ(d.neighbor(r, 0, 0, 1), -1);
}

TEST(Decomposition, RejectsOverDecomposition) {
  GlobalGrid grid{{4, 4, 4}, {1.0, 1.0, 1.0}};
  EXPECT_THROW(Decomposition(grid, {5, 1, 1}), Error);
}

}  // namespace
}  // namespace hia
