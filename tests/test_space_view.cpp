// Tests for the geometric shared-space API (SpaceView), the ADIOS-lite
// method abstraction, and the steering board.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <thread>

#include "core/steering.hpp"
#include "io/adios_lite.hpp"
#include "sim/grid.hpp"
#include "staging/space_view.hpp"
#include "util/rng.hpp"

namespace hia {
namespace {

class SpaceViewTest : public ::testing::Test {
 protected:
  NetworkModel net_;
  Dart dart_{net_};
  ObjectStore store_{2};
  int node_ = dart_.register_node("client");
  SpaceView view_{store_, dart_, node_};
};

std::vector<double> indexed_values(const Box3& box) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(box.num_cells()));
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i)
        out.push_back(100.0 * static_cast<double>(i) +
                      10.0 * static_cast<double>(j) +
                      static_cast<double>(k));
  return out;
}

TEST_F(SpaceViewTest, PutGetIdenticalRegion) {
  const Box3 box{{0, 0, 0}, {4, 4, 4}};
  const auto data = indexed_values(box);
  view_.put("T", 1, box, data);
  EXPECT_EQ(view_.get("T", 1, box), data);
}

TEST_F(SpaceViewTest, GetSubRegion) {
  const Box3 box{{0, 0, 0}, {8, 8, 8}};
  view_.put("T", 1, box, indexed_values(box));
  const Box3 sub{{2, 3, 4}, {5, 6, 7}};
  const auto out = view_.get("T", 1, sub);
  EXPECT_EQ(out, indexed_values(sub));
}

TEST_F(SpaceViewTest, AssemblesAcrossBlocks) {
  // Publish a 2x2x1 decomposition of a 8x8x4 grid, then read a region
  // straddling all four blocks.
  GlobalGrid grid{{8, 8, 4}, {1, 1, 1}};
  Decomposition decomp(grid, {2, 2, 1});
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    const Box3 b = decomp.block(r);
    view_.put("T", 2, b, indexed_values(b));
  }
  const Box3 straddle{{2, 2, 1}, {6, 6, 3}};
  TransferStats stats;
  const auto out = view_.get("T", 2, straddle, &stats);
  EXPECT_EQ(out, indexed_values(straddle));
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GT(stats.modeled_seconds, 0.0);

  // Full-domain read also assembles correctly.
  EXPECT_EQ(view_.get("T", 2, grid.bounds()),
            indexed_values(grid.bounds()));
}

TEST_F(SpaceViewTest, IncompleteCoverageThrows) {
  const Box3 box{{0, 0, 0}, {4, 4, 4}};
  view_.put("T", 3, box, indexed_values(box));
  const Box3 too_big{{0, 0, 0}, {5, 4, 4}};
  EXPECT_THROW(view_.get("T", 3, too_big), Error);
  EXPECT_FALSE(view_.covered("T", 3, too_big));
  EXPECT_TRUE(view_.covered("T", 3, box));
  // Wrong step / variable: nothing there.
  EXPECT_THROW(view_.get("T", 4, box), Error);
  EXPECT_THROW(view_.get("P", 3, box), Error);
}

TEST_F(SpaceViewTest, EvictReleasesRegions) {
  const Box3 box{{0, 0, 0}, {4, 4, 4}};
  view_.put("T", 5, box, indexed_values(box));
  EXPECT_EQ(dart_.num_published(), 1u);
  view_.evict("T", 5);
  EXPECT_EQ(dart_.num_published(), 0u);
  EXPECT_THROW(view_.get("T", 5, box), Error);
}

TEST_F(SpaceViewTest, VersionsAreIndependent) {
  const Box3 box{{0, 0, 0}, {2, 2, 2}};
  view_.put("T", 1, box, std::vector<double>(8, 1.0));
  view_.put("T", 2, box, std::vector<double>(8, 2.0));
  EXPECT_DOUBLE_EQ(view_.get("T", 1, box)[0], 1.0);
  EXPECT_DOUBLE_EQ(view_.get("T", 2, box)[0], 2.0);
}

// ---------------------------------------------------------- ADIOS-lite --

TEST(AdiosLite, PosixMethodRoundTrip) {
  AdiosGroup group("field3d", /*writer_id=*/7, ::testing::TempDir());
  group.define_variable("T");
  group.define_variable("P");
  EXPECT_EQ(group.method(), AdiosMethod::kPosixMethod);

  const Box3 box{{0, 0, 0}, {4, 3, 2}};
  std::vector<double> t(24), p(24);
  Xoshiro256 rng(3);
  for (auto& x : t) x = rng.normal();
  for (auto& x : p) x = rng.uniform();

  const auto result = group.write(9, box, {t, p}, /*concurrent_writers=*/64);
  EXPECT_EQ(result.bytes, 2u * 24u * sizeof(double));
  EXPECT_GT(result.modeled_seconds, 0.0);
  ASSERT_EQ(result.files.size(), 1u);

  EXPECT_EQ(group.read(9, "T"), t);
  EXPECT_EQ(group.read(9, "P"), p);
  EXPECT_THROW(group.read(9, "missing"), Error);
  for (const auto& f : result.files) std::remove(f.c_str());
}

TEST(AdiosLite, StagingMethodPublishesToSpace) {
  NetworkModel net;
  Dart dart(net);
  ObjectStore store(2);
  const int node = dart.register_node("writer");
  SpaceView space(store, dart, node);

  AdiosGroup group("field3d", 0, space);
  group.define_variable("T");
  EXPECT_EQ(group.method(), AdiosMethod::kStagingMethod);

  const Box3 box{{0, 0, 0}, {3, 3, 3}};
  std::vector<double> t(27, 4.5);
  const auto result = group.write(2, box, {t});
  EXPECT_EQ(result.bytes, 27u * sizeof(double));
  EXPECT_DOUBLE_EQ(result.modeled_seconds, 0.0);  // publish is local

  // A consumer assembles the step through the space.
  EXPECT_EQ(space.get("field3d/T", 2, box), t);
  EXPECT_THROW(group.read(2, "T"), Error);  // read-back is posix-only
}

TEST(AdiosLite, RejectsMalformedWrites) {
  AdiosGroup group("g", 0, ::testing::TempDir());
  group.define_variable("T");
  EXPECT_THROW(group.define_variable("T"), Error);
  const Box3 box{{0, 0, 0}, {2, 2, 2}};
  EXPECT_THROW(group.write(0, box, {}), Error);  // missing payload
  EXPECT_THROW(group.write(0, box, {std::vector<double>(7)}), Error);
}

// ------------------------------------------------------------- Steering --

TEST(Steering, PostReadAndVersion) {
  SteeringBoard board;
  EXPECT_FALSE(board.read("threshold").has_value());
  EXPECT_DOUBLE_EQ(board.read_or("threshold", 2.5), 2.5);
  EXPECT_EQ(board.version(), 0u);

  board.post("threshold", 3.0);
  EXPECT_DOUBLE_EQ(board.read("threshold").value(), 3.0);
  EXPECT_EQ(board.version(), 1u);

  board.post("threshold", 3.5);
  board.post("cadence", 10.0);
  EXPECT_EQ(board.version(), 3u);
  EXPECT_DOUBLE_EQ(board.read_or("threshold", 0.0), 3.5);
  EXPECT_EQ(board.snapshot().size(), 2u);
}

TEST(Steering, ConcurrentPostersAndReaders) {
  SteeringBoard board;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&board, t] {
      for (int i = 0; i < 500; ++i) {
        board.post("k" + std::to_string(t), static_cast<double>(i));
        (void)board.read_or("k0", 0.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(board.version(), 2000u);
  for (int t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(board.read_or("k" + std::to_string(t), -1.0), 499.0);
  }
}

}  // namespace
}  // namespace hia
