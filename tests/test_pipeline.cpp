// End-to-end integration tests of the hybrid framework: MiniS3D + in-situ
// stages + staging + in-transit stages, checking that the hybrid variants
// produce the *same science* as the fully in-situ variants and that the
// scheduler bookkeeping matches the run configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "analysis/topology/local_tree.hpp"
#include "core/framework.hpp"
#include "io/bp_lite.hpp"
#include "core/report.hpp"
#include "core/stats_pipeline.hpp"
#include "core/topology_pipeline.hpp"
#include "core/viz_pipeline.hpp"

namespace hia {
namespace {

RunConfig small_config(long steps = 3) {
  RunConfig cfg;
  cfg.sim.grid = GlobalGrid{{24, 16, 16}, {1.0, 0.75, 0.75}};
  cfg.sim.ranks_per_axis = {2, 2, 1};
  cfg.staging_servers = 2;
  cfg.staging_buckets = 3;
  cfg.steps = steps;
  return cfg;
}

TEST(Pipeline, HybridStatsMatchInSituStats) {
  RunConfig cfg = small_config(3);
  HybridRunner runner(cfg);
  auto insitu = std::make_shared<InSituStatistics>();
  auto hybrid = std::make_shared<HybridStatistics>();
  runner.add_analysis(insitu);
  runner.add_analysis(hybrid);
  const RunReport report = runner.run();

  const auto a = insitu->latest_models();
  const auto b = hybrid->latest_models();
  ASSERT_EQ(a.size(), static_cast<size_t>(kNumVariables));
  ASSERT_EQ(b.size(), a.size());
  for (size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v].count, b[v].count) << kVariableNames[v];
    EXPECT_NEAR(a[v].mean, b[v].mean, 1e-9 * (1.0 + std::abs(a[v].mean)));
    EXPECT_NEAR(a[v].variance, b[v].variance,
                1e-8 * (1.0 + std::abs(a[v].variance)));
    EXPECT_DOUBLE_EQ(a[v].min, b[v].min);
    EXPECT_DOUBLE_EQ(a[v].max, b[v].max);
  }

  // Bookkeeping: 3 steps x 1 hybrid task; in-situ variant stages nothing.
  size_t hybrid_tasks = 0;
  for (const auto& r : report.in_transit) {
    EXPECT_EQ(r.analysis, "stats-hybrid");
    ++hybrid_tasks;
  }
  EXPECT_EQ(hybrid_tasks, 3u);
  EXPECT_EQ(report.sim_step_seconds.size(), 3u);
  EXPECT_GT(report.mean_in_situ_seconds("stats-insitu"), 0.0);
  // Hybrid stats ship a few hundred bytes per rank, not the raw data.
  EXPECT_LT(report.mean_movement_bytes("stats-hybrid"),
            static_cast<double>(report.solution_bytes_per_step) / 100.0);
}

TEST(Pipeline, PureInTransitStatsMatchHybrid) {
  RunConfig cfg = small_config(2);
  HybridRunner runner(cfg);
  auto hybrid = std::make_shared<HybridStatistics>(
      std::vector<Variable>{Variable::kTemperature});
  auto raw = std::make_shared<InTransitStatistics>(Variable::kTemperature);
  runner.add_analysis(hybrid);
  runner.add_analysis(raw);
  const RunReport report = runner.run();

  const auto h = hybrid->latest_models();
  ASSERT_EQ(h.size(), 1u);
  const auto r = raw->latest_model();
  EXPECT_EQ(h[0].count, r.count);
  EXPECT_NEAR(h[0].mean, r.mean, 1e-9);
  EXPECT_NEAR(h[0].variance, r.variance, 1e-8);

  // The raw path moves ~the full variable; the hybrid path moves a model.
  const double raw_bytes = report.mean_movement_bytes("stats-intransit");
  const double hybrid_bytes = report.mean_movement_bytes("stats-hybrid");
  EXPECT_GT(raw_bytes, 100.0 * hybrid_bytes);
}

TEST(Pipeline, VisualizationVariantsProduceSimilarImages) {
  RunConfig cfg = small_config(2);
  VizConfig viz;
  viz.image_size = 48;
  viz.downsample_stride = 2;
  HybridRunner runner(cfg);
  auto insitu = std::make_shared<InSituVisualization>(viz);
  auto hybrid = std::make_shared<HybridVisualization>(viz);
  runner.add_analysis(insitu);
  runner.add_analysis(hybrid);
  (void)runner.run();

  const auto a = insitu->latest_image();
  const auto b = hybrid->latest_image();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  const double psnr = image_psnr(*a, *b);
  // Down-sampled rendering approximates the full-resolution image
  // (Fig. 2: suitable for monitoring, not identical).
  EXPECT_GT(psnr, 18.0) << "hybrid image too far from in-situ reference";
}

TEST(Pipeline, TopologyMatchesDirectGlobalTree) {
  RunConfig cfg = small_config(3);
  TopologyConfig topo;
  topo.variable = Variable::kTemperature;
  HybridRunner runner(cfg);
  auto analysis = std::make_shared<HybridTopology>(topo);
  runner.add_analysis(analysis);
  (void)runner.run();

  const TreeSummary summary = analysis->latest_summary();
  EXPECT_EQ(summary.step, 3);
  EXPECT_GT(summary.tree_leaves, 0u);
  EXPECT_GE(summary.tree_nodes, summary.tree_leaves);

  // Reference: advance an identical single-rank simulation to the same
  // step (MiniS3D is decomposition-invariant) and build the global tree.
  S3DParams ref_params = cfg.sim;
  ref_params.ranks_per_axis = {1, 1, 1};
  MergeTree reference;
  {
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(ref_params, 0);
      sim.initialize();
      for (long s = 0; s < cfg.steps; ++s) sim.advance(comm);
      const auto values = sim.field(Variable::kTemperature).pack_owned();
      reference = build_local_tree(ref_params.grid, ref_params.grid.bounds(),
                                   values)
                      .reduced();
    });
  }
  const MergeTree combined = analysis->latest_tree();
  EXPECT_TRUE(combined.same_structure(reference))
      << "combined tree: " << combined.size()
      << " nodes, reference: " << reference.size();
}

TEST(Pipeline, TopologyArcSinkWritesEvictedArcsToDisk) {
  RunConfig cfg = small_config(1);
  TopologyConfig topo;
  topo.arc_output_dir = ::testing::TempDir();
  HybridRunner runner(cfg);
  auto analysis = std::make_shared<HybridTopology>(topo);
  runner.add_analysis(analysis);
  (void)runner.run();

  const TreeSummary summary = analysis->latest_summary();
  char path[512];
  std::snprintf(path, sizeof(path), "%s/topo-hybrid.step%06ld.arcs.bp",
                topo.arc_output_dir.c_str(), summary.step);
  const auto entries = bp_read_file(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "evicted_arcs");
  // One [id, value, child, parent] row per evicted vertex; mid-stream
  // evictions plus the finish() sweep are all captured.
  EXPECT_EQ(entries[0].values.size() % 4, 0u);
  EXPECT_EQ(entries[0].values.size() / 4, summary.evicted);
  EXPECT_GT(summary.evicted, 0u);
  std::remove(path);
}

TEST(Pipeline, FrequencyControlsInvocationCount) {
  RunConfig cfg = small_config(6);
  HybridRunner runner(cfg);
  auto every = std::make_shared<HybridStatistics>(
      std::vector<Variable>{Variable::kTemperature});
  auto sparse = std::make_shared<HybridTopology>(TopologyConfig{});
  runner.add_analysis(every, 1);
  runner.add_analysis(sparse, 3);  // steps 3 and 6 only
  const RunReport report = runner.run();

  size_t stats_tasks = 0, topo_tasks = 0;
  for (const auto& r : report.in_transit) {
    if (r.analysis == "stats-hybrid") ++stats_tasks;
    if (r.analysis == "topo-hybrid") ++topo_tasks;
  }
  EXPECT_EQ(stats_tasks, 6u);
  EXPECT_EQ(topo_tasks, 2u);
}

TEST(Pipeline, ReportFormattersProduceTables) {
  RunConfig cfg = small_config(2);
  HybridRunner runner(cfg);
  runner.add_analysis(std::make_shared<InSituStatistics>());
  runner.add_analysis(std::make_shared<HybridStatistics>());
  const RunReport report = runner.run();

  const auto t2 =
      format_table2(report, {"stats-insitu", "stats-hybrid"});
  EXPECT_NE(t2.find("stats-insitu"), std::string::npos);
  EXPECT_NE(t2.find("in-transit time"), std::string::npos);

  const auto f6 = format_fig6(report, {"stats-insitu", "stats-hybrid"});
  EXPECT_NE(f6.find("simulation"), std::string::npos);
  EXPECT_NE(f6.find("100.00%"), std::string::npos);

  const auto t1 = format_table1(
      {{MachineConfig::paper_4896(),
        GlobalGrid{{1600, 1372, 430}, {1, 1, 1}}, 16.85, OstModel{}}});
  EXPECT_NE(t1.find("16x28x10 = 4480"), std::string::npos);
  EXPECT_NE(t1.find("4896 cores"), std::string::npos);
}

TEST(Pipeline, RunnerRejectsMisuse) {
  RunConfig cfg = small_config(1);
  HybridRunner runner(cfg);
  EXPECT_THROW(runner.add_analysis(nullptr), Error);
  runner.add_analysis(std::make_shared<InSituStatistics>());
  EXPECT_THROW(runner.add_analysis(std::make_shared<InSituStatistics>(), 0),
               Error);
  (void)runner.run();
  EXPECT_THROW((void)runner.run(), Error);
}

TEST(Pipeline, SimulationNotBlockedBySlowInTransit) {
  // With sleep_transfers enabled and a large time_scale the in-transit
  // stage takes much longer than a simulation step, yet the simulation
  // completes all steps and drain() collects every task afterwards —
  // the asynchronous decoupling the framework exists to provide.
  RunConfig cfg = small_config(4);
  cfg.staging_buckets = 4;
  cfg.dart.sleep_transfers = true;
  cfg.dart.time_scale = 3000.0;  // exaggerate wire time
  HybridRunner runner(cfg);
  runner.add_analysis(std::make_shared<HybridStatistics>(
      std::vector<Variable>{Variable::kTemperature}));
  const RunReport report = runner.run();
  ASSERT_EQ(report.in_transit.size(), 4u);
  // Every task completed and the pipeline used multiple buckets.
  std::set<int> buckets;
  for (const auto& r : report.in_transit) buckets.insert(r.bucket);
  EXPECT_GE(buckets.size(), 2u);
}

}  // namespace
}  // namespace hia
