// Unit tests for the util library: logging, timing, RNG, morton, vec3,
// and table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/morton.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/vec3.hpp"

namespace hia {
namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    HIA_REQUIRE(1 == 2, "custom message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(HIA_REQUIRE(2 + 2 == 4, "should not fire"));
}

TEST(Log, LevelFiltering) {
  std::vector<std::string> lines;
  log::set_sink([&](const std::string& s) { lines.push_back(s); });
  log::set_level(log::Level::kWarn);
  HIA_LOG_INFO("test", "dropped %d", 1);
  HIA_LOG_WARN("test", "kept %d", 2);
  HIA_LOG_ERROR("test", "kept %d", 3);
  log::set_sink(nullptr);
  log::set_level(log::Level::kWarn);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("[WARN][test] kept 2"), std::string::npos);
  EXPECT_NE(lines[1].find("[ERROR][test] kept 3"), std::string::npos);
}

TEST(Log, FormatsArguments) {
  std::vector<std::string> lines;
  log::set_sink([&](const std::string& s) { lines.push_back(s); });
  log::set_level(log::Level::kDebug);
  HIA_LOG_DEBUG("fmt", "%s=%0.2f", "x", 3.14159);
  log::set_sink(nullptr);
  log::set_level(log::Level::kWarn);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("x=3.14"), std::string::npos);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = w.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double first = w.restart();
  EXPECT_GT(first, 0.0);
  // Generous slack: on the 1-core CI box a preemption between restart()
  // and seconds() can stretch this gap far past any tight bound.
  EXPECT_LT(w.seconds(), first + 2.0);
}

TEST(TimeAccumulator, Accumulates) {
  TimeAccumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  acc.add(2.0);
  EXPECT_DOUBLE_EQ(acc.total(), 6.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_EQ(acc.count(), 3);
  acc.reset();
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.total(), 0.0);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(123, 5), b(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsAreIndependent) {
  Xoshiro256 a(123, 1), b(123, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(99);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(SplitMix, DistinctOutputs) {
  SplitMix64 sm(1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(sm.next());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Morton, RoundTrip) {
  for (uint32_t x : {0u, 1u, 31u, 1000u, (1u << 21) - 1}) {
    for (uint32_t y : {0u, 2u, 77u, 65535u}) {
      for (uint32_t z : {0u, 3u, 511u}) {
        const auto code = morton_encode(x, y, z);
        const auto p = morton_decode(code);
        EXPECT_EQ(p.x, x);
        EXPECT_EQ(p.y, y);
        EXPECT_EQ(p.z, z);
      }
    }
  }
}

TEST(Morton, OrderPreservesLocality) {
  // Adjacent cells differ in few high bits: codes of (0,0,0) and (1,0,0)
  // must differ less than codes of (0,0,0) and (1<<20,0,0).
  const auto near = morton_encode(1, 0, 0) ^ morton_encode(0, 0, 0);
  const auto far = morton_encode(1u << 20, 0, 0) ^ morton_encode(0, 0, 0);
  EXPECT_LT(near, far);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ((a + b).y, 7.0);
  EXPECT_DOUBLE_EQ((b - a).z, 3.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3.0);
  EXPECT_DOUBLE_EQ(c.y, 6.0);
  EXPECT_DOUBLE_EQ(c.z, -3.0);
  EXPECT_NEAR((Vec3{3, 4, 0}).norm(), 5.0, 1e-12);
  EXPECT_NEAR((Vec3{3, 4, 0}).normalized().norm(), 1.0, 1e-12);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsOverlongRows) {
  Table t({"only"});
  EXPECT_THROW(t.add_row({"a", "b"}), Error);
}

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512.00 B");
  EXPECT_EQ(fmt_bytes(2048), "2.00 KB");
  EXPECT_EQ(fmt_bytes(87.02 * 1024 * 1024), "87.02 MB");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(4.33, 100.0), "4.33%");
  EXPECT_EQ(fmt_percent(1.0, 0.0), "n/a");
}

}  // namespace
}  // namespace hia
