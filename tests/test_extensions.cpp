// End-to-end tests of the extension pipelines (the paper's §VI future
// work): hybrid auto-correlative statistics, streaming in-transit
// ingestion with early eviction, and hybrid feature-based statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/topology/feature_stats.hpp"
#include "analysis/topology/local_tree.hpp"
#include "analysis/topology/stream_combine.hpp"
#include "core/contingency_pipeline.hpp"
#include "core/correlation_pipeline.hpp"
#include "core/feature_stats_pipeline.hpp"
#include "core/framework.hpp"
#include "core/histogram_pipeline.hpp"
#include "sim/analytic_fields.hpp"
#include "util/rng.hpp"

namespace hia {
namespace {

RunConfig small_config(long steps = 3) {
  RunConfig cfg;
  cfg.sim.grid = GlobalGrid{{24, 16, 16}, {1.0, 0.75, 0.75}};
  cfg.sim.ranks_per_axis = {2, 2, 1};
  cfg.staging_servers = 2;
  cfg.staging_buckets = 3;
  cfg.steps = steps;
  return cfg;
}

TEST(CorrelationPipeline, MatchesSerialBivariateLearn) {
  RunConfig cfg = small_config(2);
  HybridRunner runner(cfg);
  auto corr = std::make_shared<HybridCorrelation>(Variable::kTemperature,
                                                  Variable::kYH2O);
  runner.add_analysis(corr);
  const RunReport report = runner.run();

  const CorrelationModel model = corr->latest_model();
  EXPECT_EQ(model.count,
            static_cast<uint64_t>(cfg.sim.grid.num_points()));

  // Serial reference on the same (deterministic) state.
  S3DParams solo = cfg.sim;
  solo.ranks_per_axis = {1, 1, 1};
  CorrelationModel reference;
  {
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(solo, 0);
      sim.initialize();
      for (long s = 0; s < cfg.steps; ++s) sim.advance(comm);
      reference = derive_correlation(correlation_learn_fields(
          sim.field(Variable::kTemperature), sim.field(Variable::kYH2O)));
    });
  }
  EXPECT_NEAR(model.pearson_r, reference.pearson_r, 1e-9);
  EXPECT_NEAR(model.covariance, reference.covariance,
              1e-9 * (1.0 + std::abs(reference.covariance)));
  EXPECT_NEAR(model.slope, reference.slope,
              1e-8 * (1.0 + std::abs(reference.slope)));

  // Combustion physics sanity: product mass fraction correlates positively
  // with temperature (weakly after only two steps of burning).
  EXPECT_GT(model.pearson_r, 0.0);

  // Movement: one bivariate model (6 doubles) per rank per step.
  EXPECT_DOUBLE_EQ(report.mean_movement_bytes("corr-hybrid"),
                   6.0 * sizeof(double) * report.sim_ranks);
}

TEST(StreamingIngestion, SameTreeLowerPeakMemory) {
  GlobalGrid grid{{16, 16, 16}, {1, 1, 1}};
  Decomposition decomp(grid, {2, 2, 2});
  Field field("f", grid.bounds());
  fill_gaussian_mixture(field, grid,
                        GaussianMixture::well_separated(6, 0.06, 5));

  std::vector<SubtreeData> subtrees;
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    const Box3 block = decomp.block(r);
    const Box3 ext = extended_block(grid, block);
    subtrees.push_back(
        compute_rank_subtree(grid, block, field.pack(ext), ext));
  }

  StreamingCombiner batch;
  for (const auto& s : subtrees) batch.insert_subtree(s);
  const size_t batch_peak = batch.peak_live_nodes();
  const MergeTree batch_tree = batch.finish();

  StreamingCombiner streaming;
  for (const auto& s : subtrees) streaming.insert_subtree_streaming(s);
  const size_t streaming_peak = streaming.peak_live_nodes();
  const MergeTree streaming_tree = streaming.finish();

  EXPECT_TRUE(batch_tree.same_structure(streaming_tree));
  EXPECT_LT(streaming_peak, batch_peak);
}

TEST(StreamingIngestion, GeometryAwareDriverMatchesBatch) {
  GlobalGrid grid{{20, 16, 12}, {1, 1, 1}};
  Decomposition decomp(grid, {2, 2, 2});
  Field field("f", grid.bounds());
  fill_noise(field, 77);

  std::vector<SubtreeData> subtrees;
  std::vector<Box3> blocks;
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    const Box3 block = decomp.block(r);
    const Box3 ext = extended_block(grid, block);
    subtrees.push_back(
        compute_rank_subtree(grid, block, field.pack(ext), ext));
    blocks.push_back(ext);
  }

  StreamingCombiner batch;
  for (const auto& s : subtrees) batch.insert_subtree(s);
  const size_t batch_peak = batch.peak_live_nodes();
  const MergeTree batch_tree = batch.finish();

  StreamingCombiner geo;
  SubtreeStreamDriver driver(grid, blocks);
  for (const auto& s : subtrees) driver.ingest(geo, s);
  EXPECT_EQ(driver.open_vertices(), 0u);  // everything fully seen
  const size_t geo_peak = geo.peak_live_nodes();
  const MergeTree geo_tree = geo.finish();

  EXPECT_TRUE(batch_tree.same_structure(geo_tree));
  EXPECT_LT(geo_peak, batch_peak * 3 / 4);
}

TEST(StreamingIngestion, RequiresInteriorFlags) {
  StreamingCombiner c;
  SubtreeData s;
  s.vertex_ids = {1, 2};
  s.vertex_values = {2.0, 1.0};
  s.edge_child = {0};
  s.edge_parent = {1};
  // interior flags missing entirely.
  EXPECT_THROW(c.insert_subtree_streaming(s), Error);
}

TEST(FeatureStatsPipeline, MatchesSerialReference) {
  RunConfig cfg = small_config(3);
  cfg.sim.chemistry.kernel_rate = 3.0;  // ensure hot features exist
  FeatureStatsConfig fcfg;
  fcfg.field = Variable::kTemperature;
  fcfg.measure = Variable::kYOH;
  fcfg.threshold = 1.5;

  HybridRunner runner(cfg);
  auto analysis = std::make_shared<HybridFeatureStatistics>(fcfg);
  runner.add_analysis(analysis);
  (void)runner.run();

  const auto features = analysis->latest_features();
  ASSERT_FALSE(features.empty());

  // Serial reference at the same step.
  S3DParams solo = cfg.sim;
  solo.ranks_per_axis = {1, 1, 1};
  std::vector<GlobalFeature> reference;
  {
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(solo, 0);
      sim.initialize();
      for (long s = 0; s < cfg.steps; ++s) sim.advance(comm);
      reference = feature_statistics(
          solo.grid, solo.grid.bounds(),
          sim.field(Variable::kTemperature).pack_owned(),
          sim.field(Variable::kYOH).pack_owned(), fcfg.threshold);
    });
  }
  ASSERT_EQ(features.size(), reference.size());
  for (size_t f = 0; f < features.size(); ++f) {
    EXPECT_EQ(features[f].id, reference[f].id);
    EXPECT_EQ(features[f].voxels, reference[f].voxels);
    EXPECT_EQ(features[f].measure.count(), reference[f].measure.count());
    EXPECT_NEAR(features[f].measure.mean(), reference[f].measure.mean(),
                1e-10);
  }
}

TEST(FeatureStatsPipeline, ResultBlobWellFormed) {
  RunConfig cfg = small_config(1);
  cfg.sim.chemistry.kernel_rate = 3.0;
  FeatureStatsConfig fcfg;
  fcfg.threshold = 1.5;
  fcfg.top_features = 4;

  HybridRunner runner(cfg);
  auto analysis = std::make_shared<HybridFeatureStatistics>(fcfg);
  runner.add_analysis(analysis);
  uint64_t task_id = 0;
  (void)task_id;
  const RunReport report = runner.run();
  ASSERT_EQ(report.in_transit.size(), 1u);
  auto blob = runner.staging().take_result(report.in_transit[0].task_id);
  ASSERT_TRUE(blob.has_value());
  ASSERT_GE(blob->size(), sizeof(double));
  double count = 0.0;
  std::memcpy(&count, blob->data(), sizeof(double));
  const size_t expected_top =
      std::min<size_t>(static_cast<size_t>(count), 4);
  EXPECT_EQ(blob->size(), sizeof(double) * (1 + expected_top * 8));
}

/// A steering loop: the in-transit side of this analysis monitors the
/// global temperature maximum and posts a tightened threshold; the in-situ
/// side reads it back the next step.
class SteeredAnalysis final : public HybridAnalysis {
 public:
  explicit SteeredAnalysis(SteeringBoard& board) : board_(board) {}
  [[nodiscard]] std::string name() const override { return "steered"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"steer.max"};
  }
  void in_situ(InSituContext& ctx) override {
    // Read what the in-transit stage posted on an earlier step.
    const double thr = ctx.steering().read_or("threshold", 0.0);
    if (ctx.comm().rank() == 0) {
      std::lock_guard lock(mutex_);
      thresholds_seen_.push_back(thr);
    }
    double local_max = 0.0;
    const Field& t = ctx.sim().field(Variable::kTemperature);
    for (const double v : t.data()) local_max = std::max(local_max, v);
    ctx.publish("steer.max", t.owned(), {local_max});
  }
  void in_transit(TaskContext& ctx) override {
    double global_max = 0.0;
    for (const auto& desc : ctx.task().inputs) {
      global_max = std::max(global_max, ctx.pull_doubles(desc)[0]);
    }
    board_.post("threshold", 0.5 * global_max);
  }
  [[nodiscard]] std::vector<double> thresholds_seen() const {
    std::lock_guard lock(mutex_);
    return thresholds_seen_;
  }

 private:
  SteeringBoard& board_;
  mutable std::mutex mutex_;
  std::vector<double> thresholds_seen_;
};

TEST(Steering, InTransitStagePostsParametersSimulationReads) {
  RunConfig cfg = small_config(4);
  HybridRunner runner(cfg);
  auto analysis = std::make_shared<SteeredAnalysis>(runner.steering());
  runner.add_analysis(analysis);
  (void)runner.run();

  const auto seen = analysis->thresholds_seen();
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_DOUBLE_EQ(seen[0], 0.0);  // nothing posted before the first step
  // Later steps observe a posted threshold derived from the global max.
  // The loop is asynchronous, so a post may lag a step or two; but after
  // drain() the board definitely carries the last posted value.
  EXPECT_GT(*std::max_element(seen.begin(), seen.end()), 0.0);
  EXPECT_GT(runner.steering().read_or("threshold", 0.0), 0.0);
  EXPECT_EQ(runner.steering().version(), 4u);
}

TEST(HistogramPipeline, CombinedMatchesSerialHistogram) {
  RunConfig cfg = small_config(2);
  HistogramConfig hcfg;
  hcfg.variable = Variable::kTemperature;
  hcfg.bins = 32;
  hcfg.range = {{0.0, 8.0}};

  HybridRunner runner(cfg);
  auto analysis = std::make_shared<HybridHistogram>(hcfg);
  runner.add_analysis(analysis);
  (void)runner.run();

  const auto combined = analysis->latest();
  ASSERT_TRUE(combined.has_value());
  EXPECT_EQ(combined->total(),
            static_cast<uint64_t>(cfg.sim.grid.num_points()));

  // Serial reference on the deterministic final state.
  S3DParams solo = cfg.sim;
  solo.ranks_per_axis = {1, 1, 1};
  Histogram reference(0.0, 8.0, 32);
  {
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(solo, 0);
      sim.initialize();
      for (long s = 0; s < cfg.steps; ++s) sim.advance(comm);
      for (const double v :
           sim.field(Variable::kTemperature).pack_owned()) {
        reference.update(v);
      }
    });
  }
  for (int b = 0; b < 32; ++b) {
    EXPECT_EQ(combined->count(b), reference.count(b)) << "bin " << b;
  }
  EXPECT_EQ(combined->underflow(), reference.underflow());
  EXPECT_EQ(combined->overflow(), reference.overflow());
}

TEST(HistogramPipeline, AutoRangeCoversAllSamples) {
  RunConfig cfg = small_config(2);
  HistogramConfig hcfg;   // no fixed range: per-invocation all-reduce
  hcfg.bins = 16;
  HybridRunner runner(cfg);
  auto analysis = std::make_shared<HybridHistogram>(hcfg);
  runner.add_analysis(analysis);
  (void)runner.run();

  const auto hist = analysis->latest();
  ASSERT_TRUE(hist.has_value());
  // The padded global range admits every sample.
  EXPECT_EQ(hist->underflow(), 0u);
  EXPECT_EQ(hist->overflow(), 0u);
  EXPECT_EQ(hist->total(),
            static_cast<uint64_t>(cfg.sim.grid.num_points()));
}

TEST(HistogramPipeline, SerializeRoundTrip) {
  Histogram h(-1.0, 3.0, 8);
  Xoshiro256 rng(2);
  for (int i = 0; i < 500; ++i) h.update(rng.uniform(-2.0, 4.0));
  const Histogram r = deserialize_histogram(serialize_histogram(h));
  EXPECT_EQ(r.bins(), h.bins());
  EXPECT_EQ(r.lo(), h.lo());
  EXPECT_EQ(r.hi(), h.hi());
  EXPECT_EQ(r.total(), h.total());
  EXPECT_EQ(r.underflow(), h.underflow());
  EXPECT_EQ(r.overflow(), h.overflow());
  for (int b = 0; b < h.bins(); ++b) EXPECT_EQ(r.count(b), h.count(b));
}

TEST(FeatureStatsPipeline, SteeredThresholdIsAppliedConsistently) {
  RunConfig cfg = small_config(3);
  cfg.sim.chemistry.kernel_rate = 3.0;
  FeatureStatsConfig fcfg;
  fcfg.threshold = 1.5;
  fcfg.threshold_steering_key = "thr";

  HybridRunner runner(cfg);
  // Post a much higher threshold up front: fewer/hotter features than the
  // fallback would produce.
  runner.steering().post("thr", 3.0);
  auto analysis = std::make_shared<HybridFeatureStatistics>(fcfg);
  runner.add_analysis(analysis);
  (void)runner.run();

  for (const auto& f : analysis->latest_features()) {
    EXPECT_GE(f.max_value, 3.0);  // every feature respects the steered bar
  }
}

TEST(ContingencyPipeline, MatchesSerialTable) {
  RunConfig cfg = small_config(2);
  ContingencyConfig ccfg;
  ccfg.x = Variable::kTemperature;
  ccfg.y = Variable::kYH2O;
  ccfg.x_lo = 0.0; ccfg.x_hi = 8.0;
  ccfg.y_lo = 0.0; ccfg.y_hi = 1.0;

  HybridRunner runner(cfg);
  auto analysis = std::make_shared<HybridContingency>(ccfg);
  runner.add_analysis(analysis);
  const RunReport report = runner.run();

  const auto table = analysis->latest_table();
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->total(),
            static_cast<uint64_t>(cfg.sim.grid.num_points()));

  // Serial reference on the deterministic final state.
  S3DParams solo = cfg.sim;
  solo.ranks_per_axis = {1, 1, 1};
  ContingencyTable reference(ccfg.x_bins, ccfg.y_bins);
  {
    const Categorizer cx(ccfg.x_lo, ccfg.x_hi, ccfg.x_bins);
    const Categorizer cy(ccfg.y_lo, ccfg.y_hi, ccfg.y_bins);
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(solo, 0);
      sim.initialize();
      for (long s = 0; s < cfg.steps; ++s) sim.advance(comm);
      reference.update(sim.field(ccfg.x).pack_owned(),
                       sim.field(ccfg.y).pack_owned(), cx, cy);
    });
  }
  for (int a = 0; a < ccfg.x_bins; ++a) {
    for (int b = 0; b < ccfg.y_bins; ++b) {
      EXPECT_EQ(table->count(a, b), reference.count(a, b))
          << "cell (" << a << "," << b << ")";
    }
  }
  const auto model = analysis->latest_model();
  const auto ref_model = derive_contingency(reference);
  EXPECT_DOUBLE_EQ(model.chi_squared, ref_model.chi_squared);
  EXPECT_DOUBLE_EQ(model.mutual_information, ref_model.mutual_information);

  // Intermediate data is the sparse table, far below the raw pair.
  EXPECT_LT(report.mean_movement_bytes("cont-hybrid"),
            0.05 * 2.0 * sizeof(double) *
                static_cast<double>(cfg.sim.grid.num_points()));
}

TEST(AllAnalysesTogether, FullCampaignRunsClean) {
  // Every pipeline registered simultaneously — the "various simultaneous
  // analyses" configuration of the paper's staging design.
  RunConfig cfg = small_config(2);
  HybridRunner runner(cfg);
  runner.add_analysis(std::make_shared<HybridCorrelation>(
      Variable::kTemperature, Variable::kYH2O));
  FeatureStatsConfig fcfg;
  fcfg.threshold = 1.5;
  runner.add_analysis(std::make_shared<HybridFeatureStatistics>(fcfg));
  const RunReport report = runner.run();
  EXPECT_EQ(report.in_transit.size(), 4u);  // 2 analyses x 2 steps
  for (const auto& r : report.in_transit) {
    EXPECT_GT(r.complete_time, 0.0);
  }
}

}  // namespace
}  // namespace hia
