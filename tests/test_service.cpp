// Tests for the multi-tenant campaign service: registry/namespacing, the
// weighted fair-share matcher (shares track weights under backlog,
// starvation guard, arrival order across retries), per-tenant isolation
// (queue caps divert the hog on its own budget; a hog cannot blow up the
// small tenants' tail latency), scripted tenant-hog attribution, the
// elastic bucket pool, and the CampaignService end-to-end driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "core/report.hpp"
#include "core/stats_pipeline.hpp"
#include "runtime/fault.hpp"
#include "runtime/overload.hpp"
#include "service/bucket_pool.hpp"
#include "service/campaign_service.hpp"
#include "service/tenant.hpp"
#include "staging/scheduler.hpp"
#include "util/error.hpp"

namespace hia {
namespace {

// ---------------------------------------------------------------- registry

TEST(TenantRegistry, IdsNamesWeightsAndPrefixes) {
  TenantRegistry reg;
  EXPECT_EQ(reg.add("alpha", 4.0), 1);
  EXPECT_EQ(reg.add("beta", 1.0), 2);
  EXPECT_EQ(reg.count(), 2);
  EXPECT_EQ(reg.name(1), "alpha");
  EXPECT_EQ(reg.name(0), "default");
  EXPECT_DOUBLE_EQ(reg.weight(1), 4.0);
  EXPECT_DOUBLE_EQ(reg.total_weight(), 5.0);
  EXPECT_EQ(TenantRegistry::ns_prefix(0), "");
  EXPECT_EQ(TenantRegistry::ns_prefix(3), "t3/");
  EXPECT_EQ(TenantRegistry::namespaced(2, "T"), "t2/T");
  EXPECT_THROW(reg.add("zero", 0.0), Error);
  EXPECT_THROW(static_cast<void>(reg.name(7)), Error);
}

// ----------------------------------------------------------- fair share

class ServiceTest : public ::testing::Test {
 protected:
  NetworkModel net_;
  Dart dart_{net_};

  // Submits `count` sleep-for-`ms` tasks for `tenant` under its own
  // analysis name (handlers must be registered per name).
  static void submit_n(StagingService& service, int tenant, int count,
                       const std::string& analysis) {
    for (int i = 0; i < count; ++i) {
      InTransitTask task;
      task.analysis = analysis;
      task.step = i;
      task.tenant = tenant;
      service.submit(std::move(task));
    }
  }

  static void register_sleeper(StagingService& service,
                               const std::string& analysis, int ms) {
    service.register_handler(analysis, [ms](TaskContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    });
  }
};

TEST_F(ServiceTest, SharesTrackWeightsUnderBacklog) {
  StagingService service(dart_, {1, 2});
  // Weights 4:1:1; offered work proportional to the weights so every
  // tenant stays backlogged until the end — the regime where fair share
  // is defined.
  service.set_tenant_policy(1, 4.0);
  service.set_tenant_policy(2, 1.0);
  service.set_tenant_policy(3, 1.0);
  EXPECT_TRUE(service.fair_share_enabled());
  for (int t = 1; t <= 3; ++t) {
    register_sleeper(service, "work-t" + std::to_string(t), 1);
  }
  submit_n(service, 1, 80, "work-t1");
  submit_n(service, 2, 20, "work-t2");
  submit_n(service, 3, 20, "work-t3");
  service.drain();

  const auto shares = service.tenant_shares();
  ASSERT_EQ(shares.size(), 3u);
  double total = 0.0;
  for (const auto& s : shares) total += s.bucket_seconds;
  ASSERT_GT(total, 0.0);
  const std::map<int, double> target{{1, 4.0 / 6.0}, {2, 1.0 / 6.0},
                                     {3, 1.0 / 6.0}};
  for (const auto& s : shares) {
    const double observed = s.bucket_seconds / total;
    EXPECT_NEAR(observed, target.at(s.tenant), 0.15)
        << "tenant " << s.tenant << " share off target";
    EXPECT_EQ(s.outstanding, 0u);
  }

  // Conservation, per tenant, exact.
  TenantRegistry reg;
  reg.add("a", 4.0);
  reg.add("b", 1.0);
  reg.add("c", 1.0);
  const auto records = service.records();
  for (int t = 1; t <= 3; ++t) {
    const TenantRunRow row = reg.row(t, service, nullptr, records);
    EXPECT_EQ(row.completed + row.degraded + row.deferred + row.shed,
              row.submitted)
        << "tenant " << t;
    EXPECT_EQ(row.submitted, t == 1 ? 80u : 20u);
  }
}

TEST_F(ServiceTest, StarvationGuardServesTinyWeightTenant) {
  StagingService service(dart_, {1, 1});
  service.set_tenant_policy(1, 1.0);
  service.set_tenant_policy(2, 1e-4);  // would starve on deficit alone
  register_sleeper(service, "heavy", 2);
  register_sleeper(service, "tiny", 2);
  // Tiny arrives FIRST, then the heavy backlog (~0.8 s on one bucket).
  // After its first task settles, the tiny tenant's normalized service
  // exceeds anything the heavy tenant can accrue in this run, so the
  // deficit matcher alone would serve its remaining tasks dead last; only
  // the starvation guard (kStarvationWaitS) gets them served mid-run.
  submit_n(service, 2, 3, "tiny");
  submit_n(service, 1, 400, "heavy");
  service.drain();
  double tiny_worst = 0.0;
  double heavy_worst = 0.0;
  for (const TaskRecord& rec : service.records()) {
    const double turnaround = rec.complete_time - rec.enqueue_time;
    if (rec.tenant == 2) {
      tiny_worst = std::max(tiny_worst, turnaround);
    } else {
      heavy_worst = std::max(heavy_worst, turnaround);
    }
  }
  EXPECT_LT(tiny_worst, StagingService::kStarvationWaitS + 0.2);
  EXPECT_GT(heavy_worst, tiny_worst);
}

// The adversarial drill: one hog against eight small tenants. The solo
// run (no hog) bounds the small tenants' p99; with the hog present and
// capped, fair share must keep the small tenants within 2x of that bound,
// and every tenant's conservation must stay exact.
TEST_F(ServiceTest, HogCannotBlowUpSmallTenantTailLatency) {
  constexpr int kSmalls = 8;
  constexpr int kTasksPerSmall = 25;
  constexpr int kBuckets = 4;

  auto run_drill = [&](bool with_hog) {
    NetworkModel net;
    Dart dart(net);
    StagingService service(dart, {1, kBuckets});
    for (int t = 1; t <= kSmalls; ++t) {
      service.set_tenant_policy(t, 1.0);
      register_sleeper(service, "small-t" + std::to_string(t), 1);
    }
    const int hog = kSmalls + 1;
    std::thread hog_thread;
    if (with_hog) {
      // Depth cap 16: the hog's flood diverts on its own budget (degraded
      // on the hog's submitting thread) before touching the shared queue.
      service.set_tenant_policy(hog, 1.0, 0, 16);
      register_sleeper(service, "hog", 1);
      hog_thread = std::thread([&] { submit_n(service, hog, 400, "hog"); });
    }
    for (int t = 1; t <= kSmalls; ++t) {
      submit_n(service, t, kTasksPerSmall, "small-t" + std::to_string(t));
    }
    if (hog_thread.joinable()) hog_thread.join();
    service.drain();

    const auto records = service.records();
    TenantRegistry reg;
    for (int t = 1; t <= kSmalls + (with_hog ? 1 : 0); ++t) {
      reg.add("t" + std::to_string(t), 1.0);
    }
    double small_p99 = 0.0;
    for (int t = 1; t <= kSmalls; ++t) {
      const TenantRunRow row = reg.row(t, service, nullptr, records);
      EXPECT_EQ(row.completed + row.degraded + row.deferred + row.shed,
                row.submitted)
          << "tenant " << t;
      EXPECT_EQ(row.submitted, static_cast<uint64_t>(kTasksPerSmall));
      small_p99 = std::max(small_p99, row.p99_turnaround_s);
    }
    if (with_hog) {
      const TenantRunRow row = reg.row(hog, service, nullptr, records);
      EXPECT_EQ(row.completed + row.degraded + row.deferred + row.shed,
                row.submitted)
          << "hog";
      EXPECT_EQ(row.submitted, 400u);
      EXPECT_GT(row.cap_diversions, 0u) << "cap never bit the hog";
      EXPECT_EQ(row.cap_diversions, row.degraded + row.shed);
    }
    return small_p99;
  };

  const double solo_p99 = run_drill(false);
  const double contended_p99 = run_drill(true);
  ASSERT_GT(solo_p99, 0.0);
  // 2x the solo bound plus a small absolute epsilon for scheduler noise.
  EXPECT_LE(contended_p99, 2.0 * solo_p99 + 0.020)
      << "hog pushed small-tenant p99 beyond the isolation bound";
}

// ------------------------------------------------------- arrival order

TEST_F(ServiceTest, RetriedTasksReenterAtArrivalOrder) {
  // One bucket, aggressive injected failures: retried tasks re-enter the
  // queue while younger tasks are waiting. The scheduler asserts the
  // sorted-by-task-id invariant on every insert (HIA_ASSERT aborts the
  // process on violation), so this test failing loudly IS the check; the
  // expectations below pin conservation and that retries actually ran.
  FaultPlanConfig plan_cfg =
      FaultPlan::parse_spec("task-fail=0.4,attempts=4,backoff=0.001:0.004");
  plan_cfg.seed = 42;
  FaultPlan plan(plan_cfg);
  StagingService::Options opts{1, 1};
  opts.faults = &plan;
  StagingService service(dart_, opts);
  service.set_tenant_policy(1, 1.0);
  register_sleeper(service, "flaky", 1);
  submit_n(service, 1, 30, "flaky");
  service.drain();

  const auto records = service.records();
  ASSERT_EQ(records.size(), 30u);
  int retries = 0;
  for (const TaskRecord& rec : records) retries += rec.attempts - 1;
  EXPECT_GT(retries, 0) << "fault plan injected no failures";
  // Completion order may interleave, but assignment must respect arrival
  // order for tasks that never failed: among first-attempt completions,
  // assign times are monotone in task id (FCFS within the tenant).
  std::vector<const TaskRecord*> clean;
  for (const TaskRecord& rec : records) {
    if (rec.attempts == 1 && rec.outcome == TaskOutcome::kCompleted) {
      clean.push_back(&rec);
    }
  }
  std::sort(clean.begin(), clean.end(),
            [](const TaskRecord* a, const TaskRecord* b) {
              return a->task_id < b->task_id;
            });
  for (size_t i = 1; i < clean.size(); ++i) {
    EXPECT_LE(clean[i - 1]->assign_time, clean[i]->assign_time + 1e-9)
        << "arrival order violated between tasks " << clean[i - 1]->task_id
        << " and " << clean[i]->task_id;
  }
}

// ------------------------------------------------------ tenant-hog fault

TEST_F(ServiceTest, ScriptedTenantHogChargesTheNamedTenant) {
  FaultPlanConfig plan_cfg = FaultPlan::parse_spec("tenant-hog=2:100000@0");
  FaultPlan plan(plan_cfg);
  OverloadControl ctrl(OverloadConfig::parse_spec("queue-bytes=1m"));
  StagingService::Options opts{1, 2};
  opts.faults = &plan;
  opts.overload = &ctrl;
  StagingService service(dart_, opts);
  service.set_tenant_policy(1, 1.0);
  service.set_tenant_policy(2, 1.0);
  register_sleeper(service, "work", 0);
  submit_n(service, 1, 1, "work");  // step 0 submit fires the scripted hog
  service.drain();

  EXPECT_EQ(plan.stats().tenant_hog_bytes, 100000u);
  EXPECT_EQ(ctrl.stats().phantom_bytes, 100000u);
  bool found = false;
  for (const auto& share : service.tenant_shares()) {
    if (share.tenant == 2) {
      found = true;
      EXPECT_EQ(share.hog_bytes, 100000u);
    } else {
      EXPECT_EQ(share.hog_bytes, 0u);
    }
  }
  EXPECT_TRUE(found) << "hog tenant missing from the share ledger";
}

TEST(FaultSpec, TenantHogParseAndReject) {
  const FaultPlanConfig cfg = FaultPlan::parse_spec("tenant-hog=3:65536@5");
  ASSERT_EQ(cfg.tenant_hogs.size(), 1u);
  EXPECT_EQ(cfg.tenant_hogs[0].tenant, 3);
  EXPECT_EQ(cfg.tenant_hogs[0].bytes, 65536u);
  EXPECT_EQ(cfg.tenant_hogs[0].step, 5);
  EXPECT_THROW(FaultPlan::parse_spec("tenant-hog=3"), Error);
  EXPECT_THROW(FaultPlan::parse_spec("tenant-hog=-1:65536@5"), Error);
  EXPECT_THROW(FaultPlan::parse_spec("tenant-hog=3:0@5"), Error);
}

// ----------------------------------------------------------- elastic pool

TEST_F(ServiceTest, ElasticPoolGrowsUnderSaturationAndShrinksWhenIdle) {
  OverloadControl ctrl(
      OverloadConfig::parse_spec("queue-depth=8,low=0.3,high=0.8"));
  StagingService::Options opts{1, 1};
  opts.overload = &ctrl;
  StagingService service(dart_, opts);
  service.set_tenant_policy(1, 1.0);
  register_sleeper(service, "work", 2);
  ElasticBucketPool pool(service, &ctrl, {1, 3, 0.0});

  submit_n(service, 1, 40, "work");  // depth 40 >> budget 8: saturated
  while (service.pending_tasks() > 0) {
    pool.step();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.drain();
  EXPECT_EQ(pool.stats().grows, 2u);  // 1 -> 3, one bucket per step
  EXPECT_EQ(service.live_bucket_count(), 3);

  // Queue empty and every bucket idle: the pool gives cores back down to
  // the floor, one per step, and then holds. Poll with a deadline — a
  // just-finished bucket may take a moment to re-register as free, and
  // shrink waits for the whole fleet to be idle.
  for (int i = 0; i < 2000 && pool.stats().shrinks < 2; ++i) {
    pool.step();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.stats().shrinks, 2u);
  EXPECT_EQ(service.live_bucket_count(), 1);

  // The shrunken pool still serves new work (retire never strands tasks).
  submit_n(service, 1, 4, "work");
  service.drain();
  EXPECT_EQ(service.records().size(), 44u);
}

TEST_F(ServiceTest, RetireRefusesLastLiveBucket) {
  StagingService service(dart_, {1, 1});
  EXPECT_EQ(service.retire_bucket(), -1);
  EXPECT_EQ(service.live_bucket_count(), 1);
  const int added = service.add_bucket();
  EXPECT_GE(added, 1);
  EXPECT_EQ(service.live_bucket_count(), 2);
  EXPECT_GE(service.retire_bucket(), 0);
  EXPECT_EQ(service.live_bucket_count(), 1);
}

// ------------------------------------------------------- campaign service

TEST(CampaignServiceTest, TwoTenantCampaignsEndToEnd) {
  CampaignService::Options sopts;
  sopts.staging_servers = 1;
  sopts.staging_buckets = 2;
  sopts.overload = "credits=16";
  CampaignService service(sopts);

  RunConfig cfg;
  cfg.sim.grid = GlobalGrid{{16, 12, 8}, {1.0, 1.0, 1.0}};
  cfg.sim.ranks_per_axis = {1, 1, 1};
  cfg.staging_servers = 1;
  cfg.staging_buckets = 2;
  cfg.steps = 3;

  for (int t = 0; t < 2; ++t) {
    CampaignService::TenantSpec spec;
    spec.name = t == 0 ? "combustion" : "monitoring";
    spec.weight = t == 0 ? 2.0 : 1.0;
    spec.credit_cap = 8;
    spec.config = cfg;
    spec.setup = [](HybridRunner& runner) {
      runner.add_analysis(std::make_shared<HybridStatistics>());
    };
    EXPECT_EQ(service.add_tenant(std::move(spec)), t + 1);
  }

  const CampaignService::ServiceReport report = service.run();
  ASSERT_EQ(report.tenants.size(), 2u);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.tenants[0].name, "combustion");
  for (const CampaignService::TenantReport& tr : report.tenants) {
    // Each tenant ran a full 3-step campaign and got its own records back,
    // with the namespace prefix stripped.
    EXPECT_EQ(tr.report.in_transit.size(), 3u);
    for (const TaskRecord& rec : tr.report.in_transit) {
      EXPECT_EQ(rec.tenant, tr.tenant);
      EXPECT_EQ(rec.analysis.find("t" + std::to_string(tr.tenant) + "/"),
                std::string::npos);
    }
  }
  for (const TenantRunRow& row : report.rows) {
    EXPECT_EQ(row.completed + row.degraded + row.deferred + row.shed,
              row.submitted);
    EXPECT_EQ(row.submitted, 3u);
    EXPECT_GT(row.store_peak_bytes, 0u);
    EXPECT_DOUBLE_EQ(row.share_target, row.tenant == 1 ? 2.0 / 3.0
                                                       : 1.0 / 3.0);
  }
  // Reaction-side totals roll up across tenants.
  EXPECT_EQ(report.resilience.tasks_completed +
                report.resilience.tasks_degraded +
                report.resilience.tasks_shed + report.resilience.tasks_deferred,
            6u);
  const std::string table = format_tenant_table(report.rows);
  EXPECT_NE(table.find("combustion"), std::string::npos);
  EXPECT_NE(table.find("monitoring"), std::string::npos);
}

// Three tenants share a staging layer that loses a bucket *and* an
// object-store server mid-campaign, ungracefully. The drill asserts the
// crash-recovery contract end to end: per-tenant conservation stays exact
// (leases reclaim seized work, epoch fences drop zombie completions), and
// with replicas=2 no committed object loses its last copy. Runs under the
// TSan leg, so the lease/fence paths get a data-race audit too.
TEST(CampaignServiceTest, ThreeTenantCrashDrillConservesExactly) {
  CampaignService::Options sopts;
  sopts.staging_servers = 2;
  sopts.staging_buckets = 2;
  sopts.staging_replicas = 2;
  sopts.faults = "crash-bucket=0@1,crash-server=0@2,attempts=3,"
                 "backoff=0.0001:0.001";
  CampaignService service(sopts);

  RunConfig cfg;
  cfg.sim.grid = GlobalGrid{{16, 12, 8}, {1.0, 1.0, 1.0}};
  cfg.sim.ranks_per_axis = {1, 1, 1};
  cfg.staging_servers = 2;
  cfg.staging_buckets = 2;
  cfg.steps = 4;

  const char* names[] = {"combustion", "monitoring", "audit"};
  const double weights[] = {4.0, 2.0, 1.0};
  for (int t = 0; t < 3; ++t) {
    CampaignService::TenantSpec spec;
    spec.name = names[t];
    spec.weight = weights[t];
    spec.config = cfg;
    spec.setup = [](HybridRunner& runner) {
      runner.add_analysis(std::make_shared<HybridStatistics>());
    };
    EXPECT_EQ(service.add_tenant(std::move(spec)), t + 1);
  }

  const CampaignService::ServiceReport report = service.run();
  ASSERT_EQ(report.rows.size(), 3u);
  uint64_t submitted_total = 0;
  for (const TenantRunRow& row : report.rows) {
    // Exactly-once terminal accounting survives the crashes, per tenant.
    EXPECT_EQ(row.completed + row.degraded + row.deferred + row.shed,
              row.submitted)
        << "tenant " << row.tenant;
    EXPECT_EQ(row.submitted, 4u);
    submitted_total += row.submitted;
  }

  // Both scripted crashes fired, and the roll-up partition matches the
  // total offered work exactly — nothing double-counted by a zombie, and
  // nothing stranded by a dead lease.
  EXPECT_EQ(report.resilience.buckets_crashed, 1u);
  EXPECT_EQ(report.resilience.servers_crashed, 1u);
  EXPECT_EQ(report.resilience.tasks_completed +
                report.resilience.tasks_degraded +
                report.resilience.tasks_shed +
                report.resilience.tasks_deferred,
            submitted_total);
  // With replicas=2 on 2 servers, every committed object had a second
  // copy: the server death must not lose anything.
  EXPECT_EQ(report.resilience.objects_lost, 0u);
  EXPECT_TRUE(report.resilience.any());
}

TEST(CampaignServiceTest, RejectsTenantOwnedFaultSpecs) {
  CampaignService::Options sopts;
  sopts.staging_servers = 1;
  sopts.staging_buckets = 1;
  CampaignService service(sopts);
  CampaignService::TenantSpec spec;
  spec.name = "bad";
  spec.config.faults = "drop=0.5";
  EXPECT_THROW(service.add_tenant(std::move(spec)), Error);
  CampaignService::TenantSpec cap;
  cap.name = "needs-overload";
  cap.credit_cap = 4;  // no service overload spec to hang the cap on
  EXPECT_THROW(service.add_tenant(std::move(cap)), Error);
}

}  // namespace
}  // namespace hia
