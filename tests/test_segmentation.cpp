// Tests for superlevel-set segmentation and overlap-based feature tracking
// (the machinery behind the Fig. 1 temporal-resolution experiment).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/topology/segmentation.hpp"

namespace hia {
namespace {

std::vector<double> blob_field(const Box3& box, double cx, double cy,
                               double cz, double radius) {
  std::vector<double> out(static_cast<size_t>(box.num_cells()), 0.0);
  size_t off = 0;
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i, ++off) {
        const double dx = static_cast<double>(i) - cx;
        const double dy = static_cast<double>(j) - cy;
        const double dz = static_cast<double>(k) - cz;
        out[off] = std::exp(-(dx * dx + dy * dy + dz * dz) /
                            (2.0 * radius * radius));
      }
    }
  }
  return out;
}

TEST(Segmentation, EmptyAboveThreshold) {
  const Box3 box{{0, 0, 0}, {4, 4, 4}};
  std::vector<double> values(64, 0.1);
  const auto seg = segment_superlevel(box, values, 0.5);
  EXPECT_TRUE(seg.features.empty());
  for (const auto l : seg.labels) EXPECT_EQ(l, -1);
}

TEST(Segmentation, WholeDomainIsOneFeature) {
  const Box3 box{{0, 0, 0}, {4, 4, 4}};
  std::vector<double> values(64, 1.0);
  const auto seg = segment_superlevel(box, values, 0.5);
  ASSERT_EQ(seg.features.size(), 1u);
  EXPECT_EQ(seg.features[0].voxels, 64);
  // Centroid of a full 4^3 box is (1.5, 1.5, 1.5).
  EXPECT_NEAR(seg.features[0].centroid[0], 1.5, 1e-12);
}

TEST(Segmentation, TwoSeparateBlobs) {
  const Box3 box{{0, 0, 0}, {20, 8, 8}};
  auto a = blob_field(box, 4.0, 4.0, 4.0, 1.5);
  const auto b = blob_field(box, 15.0, 4.0, 4.0, 1.5);
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  const auto seg = segment_superlevel(box, a, 0.5);
  ASSERT_EQ(seg.features.size(), 2u);
  // Features record their maxima and sensible centroids.
  double cxs[2];
  for (int f = 0; f < 2; ++f) {
    EXPECT_GT(seg.features[static_cast<size_t>(f)].voxels, 3);
    EXPECT_GT(seg.features[static_cast<size_t>(f)].max_value, 0.9);
    cxs[f] = seg.features[static_cast<size_t>(f)].centroid[0];
  }
  EXPECT_NEAR(std::min(cxs[0], cxs[1]), 4.0, 0.5);
  EXPECT_NEAR(std::max(cxs[0], cxs[1]), 15.0, 0.5);
}

TEST(Segmentation, DiagonalVoxelsAreSeparate) {
  // 6-connectivity: two voxels sharing only an edge are distinct features.
  const Box3 box{{0, 0, 0}, {2, 2, 1}};
  std::vector<double> values{1.0, 0.0, 0.0, 1.0};  // (0,0) and (1,1)
  const auto seg = segment_superlevel(box, values, 0.5);
  EXPECT_EQ(seg.features.size(), 2u);
}

TEST(Segmentation, LabelsConsistentWithFeatures) {
  const Box3 box{{0, 0, 0}, {12, 12, 12}};
  const auto values = blob_field(box, 6.0, 6.0, 6.0, 2.0);
  const auto seg = segment_superlevel(box, values, 0.3);
  ASSERT_EQ(seg.features.size(), 1u);
  int64_t count = 0;
  for (const auto l : seg.labels) {
    if (l >= 0) {
      EXPECT_EQ(l, 0);
      ++count;
    }
  }
  EXPECT_EQ(count, seg.features[0].voxels);
}

TEST(OverlapTrack, MovingBlobKeepsIdentity) {
  const Box3 box{{0, 0, 0}, {24, 10, 10}};
  const auto f0 = segment_superlevel(box, blob_field(box, 6, 5, 5, 2.0), 0.4);
  const auto f1 = segment_superlevel(box, blob_field(box, 8, 5, 5, 2.0), 0.4);
  const auto edges = overlap_track(f0, f1);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_GT(edges[0].shared_voxels, 4);
}

TEST(OverlapTrack, FastBlobLosesTrack) {
  const Box3 box{{0, 0, 0}, {24, 10, 10}};
  const auto f0 = segment_superlevel(box, blob_field(box, 4, 5, 5, 1.5), 0.4);
  const auto f1 =
      segment_superlevel(box, blob_field(box, 19, 5, 5, 1.5), 0.4);
  EXPECT_TRUE(overlap_track(f0, f1).empty());
}

TEST(TrackSequence, ContinuityDropsWithStride) {
  // A blob moving 1 voxel/frame: dense sampling keeps overlap, a large
  // stride (sampling every 12th frame) breaks it — the Fig. 1 phenomenon.
  const Box3 box{{0, 0, 0}, {30, 8, 8}};
  std::vector<Segmentation> dense, strided;
  for (int t = 0; t <= 24; ++t) {
    auto seg = segment_superlevel(
        box, blob_field(box, 3.0 + t, 4, 4, 1.6), 0.4);
    if (t % 12 == 0) strided.push_back(seg);
    dense.push_back(std::move(seg));
  }
  const auto dense_summary = track_sequence(dense);
  const auto strided_summary = track_sequence(strided);
  EXPECT_DOUBLE_EQ(dense_summary.continuity(), 1.0);
  EXPECT_LT(strided_summary.continuity(), 0.5);
}

TEST(TrackSequence, EmptySequences) {
  EXPECT_DOUBLE_EQ(track_sequence({}).continuity(), 1.0);
  const Box3 box{{0, 0, 0}, {4, 4, 4}};
  std::vector<double> zeros(64, 0.0);
  std::vector<Segmentation> frames{segment_superlevel(box, zeros, 0.5),
                                   segment_superlevel(box, zeros, 0.5)};
  const auto s = track_sequence(frames);
  EXPECT_EQ(s.features_total, 0);
  EXPECT_DOUBLE_EQ(s.continuity(), 1.0);
}

TEST(Segmentation, MismatchedBoxesRejected) {
  const Box3 a{{0, 0, 0}, {4, 4, 4}};
  const Box3 b{{0, 0, 0}, {5, 4, 4}};
  const auto sa = segment_superlevel(a, std::vector<double>(64, 1.0), 0.5);
  const auto sb = segment_superlevel(b, std::vector<double>(80, 1.0), 0.5);
  EXPECT_THROW(overlap_track(sa, sb), Error);
  EXPECT_THROW(segment_superlevel(a, std::vector<double>(63, 1.0), 0.5),
               Error);
}

}  // namespace
}  // namespace hia
