// Tests for the Gemini-like network model and machine topology presets.
#include <gtest/gtest.h>

#include "runtime/network_model.hpp"
#include "runtime/topology.hpp"

namespace hia {
namespace {

TEST(NetworkModel, PathSelectionMatchesDartCutoff) {
  NetworkModel net;
  EXPECT_EQ(net.select_path(1), TransferPath::kSmsg);
  EXPECT_EQ(net.select_path(4096), TransferPath::kSmsg);
  EXPECT_EQ(net.select_path(4097), TransferPath::kBte);
  EXPECT_EQ(net.select_path(100 << 20), TransferPath::kBte);
}

TEST(NetworkModel, SmsgIsFasterForSmallMessages) {
  NetworkParams p;
  NetworkModel net(p);
  // A 256-byte message via SMSG vs. forcing it through BTE parameters.
  const double smsg = net.transfer_seconds(256);
  const double bte_floor = p.bte_latency_s;
  EXPECT_LT(smsg, bte_floor);
}

TEST(NetworkModel, BandwidthDominatesLargeTransfers) {
  NetworkParams p;
  NetworkModel net(p);
  const size_t mb100 = 100u << 20;
  const double t = net.transfer_seconds(mb100);
  const double pure_bw = static_cast<double>(mb100) / p.bte_bandwidth_Bps;
  EXPECT_NEAR(t, pure_bw, pure_bw * 0.01 + p.bte_latency_s * 2);
}

TEST(NetworkModel, MonotoneInSize) {
  NetworkModel net;
  double prev = 0.0;
  for (size_t bytes = 64; bytes < (64u << 20); bytes *= 4) {
    const double t = net.transfer_seconds(bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(NetworkModel, CongestionDividesBandwidth) {
  NetworkModel net;
  const size_t bytes = 8u << 20;
  const double t1 = net.transfer_seconds(bytes, 1);
  const double t4 = net.transfer_seconds(bytes, 4);
  EXPECT_GT(t4, 3.5 * t1);
  EXPECT_LT(t4, 4.5 * t1);
}

TEST(NetworkModel, FlowGuardTracksConcurrency) {
  NetworkModel net;
  EXPECT_EQ(net.active_flows(), 0);
  {
    NetworkModel::FlowGuard a(net);
    EXPECT_EQ(net.active_flows(), 1);
    {
      NetworkModel::FlowGuard b(net);
      EXPECT_EQ(net.active_flows(), 2);
    }
    EXPECT_EQ(net.active_flows(), 1);
  }
  EXPECT_EQ(net.active_flows(), 0);
}

TEST(NetworkModel, RejectsZeroFlows) {
  NetworkModel net;
  EXPECT_THROW((void)net.transfer_seconds(100, 0), Error);
}

TEST(Topology, Paper4896MatchesTableOne) {
  const auto cfg = MachineConfig::paper_4896();
  EXPECT_EQ(cfg.simulation_cores(), 4480);
  EXPECT_EQ(cfg.dataspaces_servers, 160);
  EXPECT_EQ(cfg.staging_buckets, 256);
  EXPECT_EQ(cfg.total_cores(), 4896);
}

TEST(Topology, Paper9440MatchesTableOne) {
  const auto cfg = MachineConfig::paper_9440();
  EXPECT_EQ(cfg.simulation_cores(), 8960);
  EXPECT_EQ(cfg.dataspaces_servers, 256);
  EXPECT_EQ(cfg.staging_buckets, 224);
  EXPECT_EQ(cfg.total_cores(), 9440);
}

TEST(Topology, LaptopConfigValid) {
  const auto cfg = MachineConfig::laptop();
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.simulation_cores(), 32);
  EXPECT_FALSE(cfg.describe().empty());
}

TEST(Topology, ValidationRejectsBadConfigs) {
  MachineConfig cfg{{0, 1, 1}, 1, 1};
  EXPECT_THROW(cfg.validate(), Error);
  cfg = MachineConfig{{1, 1, 1}, 0, 1};
  EXPECT_THROW(cfg.validate(), Error);
  cfg = MachineConfig{{1, 1, 1}, 1, 0};
  EXPECT_THROW(cfg.validate(), Error);
}

}  // namespace
}  // namespace hia
