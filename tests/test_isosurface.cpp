// Tests for marching-tetrahedra isosurface extraction: geometric accuracy
// on analytic fields, tiling/crack-free properties across decompositions,
// serialization, and the hybrid pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numbers>

#include "analysis/topology/local_tree.hpp"
#include "analysis/viz/isosurface.hpp"
#include "core/framework.hpp"
#include "core/isosurface_pipeline.hpp"
#include "sim/analytic_fields.hpp"

namespace hia {
namespace {

/// Distance field from the domain center.
std::vector<double> distance_field(const GlobalGrid& grid, const Box3& box) {
  const Vec3 center{grid.physical[0] * 0.5, grid.physical[1] * 0.5,
                    grid.physical[2] * 0.5};
  std::vector<double> out;
  out.reserve(static_cast<size_t>(box.num_cells()));
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i)
        out.push_back((Vec3{grid.coord(0, i), grid.coord(1, j),
                            grid.coord(2, k)} -
                       center)
                          .norm());
  return out;
}

TEST(Isosurface, EmptyWhenIsoOutsideRange) {
  GlobalGrid grid{{8, 8, 8}, {1, 1, 1}};
  const auto values = distance_field(grid, grid.bounds());
  EXPECT_EQ(extract_isosurface(grid, grid.bounds(), values, 99.0)
                .num_triangles(),
            0u);
  EXPECT_EQ(extract_isosurface(grid, grid.bounds(), values, -1.0)
                .num_triangles(),
            0u);
}

TEST(Isosurface, SphereAreaConverges) {
  const double r = 0.3;
  double prev_err = 1e9;
  for (const int64_t n : {24, 48}) {
    GlobalGrid grid{{n, n, n}, {1, 1, 1}};
    const auto values = distance_field(grid, grid.bounds());
    const TriangleMesh mesh =
        extract_isosurface(grid, grid.bounds(), values, r);
    EXPECT_GT(mesh.num_triangles(), 0u);
    const double expected = 4.0 * std::numbers::pi * r * r;
    const double err = std::abs(mesh.area() - expected) / expected;
    EXPECT_LT(err, 0.05);
    EXPECT_LT(err, prev_err + 1e-12);  // finer grid: no worse
    prev_err = err;
  }
}

TEST(Isosurface, VerticesLieNearIsoValue) {
  GlobalGrid grid{{24, 24, 24}, {1, 1, 1}};
  const Vec3 center{0.5, 0.5, 0.5};
  const auto values = distance_field(grid, grid.bounds());
  const double iso = 0.3;
  const TriangleMesh mesh =
      extract_isosurface(grid, grid.bounds(), values, iso);
  for (const Vec3& v : mesh.vertices) {
    // Distance field is near-linear on cell scale; interpolated surface
    // points sit within a fraction of a cell of the true sphere.
    EXPECT_NEAR((v - center).norm(), iso, 1.5 * grid.spacing(0));
  }
}

class IsosurfaceTiling
    : public ::testing::TestWithParam<std::array<int, 3>> {};

TEST_P(IsosurfaceTiling, DistributedExtractionMatchesSerial) {
  const auto ranks = GetParam();
  GlobalGrid grid{{20, 16, 12}, {1.0, 0.8, 0.6}};
  Field field("f", grid.bounds());
  fill_gaussian_mixture(field, grid,
                        GaussianMixture::well_separated(4, 0.08, 21));
  const double iso = 0.5;

  const TriangleMesh serial = extract_isosurface(
      grid, grid.bounds(), field.pack_owned(), iso);

  Decomposition decomp(grid, ranks);
  TriangleMesh combined;
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    const Box3 ext = extended_block(grid, decomp.block(r));
    combined.append(extract_isosurface(grid, ext, field.pack(ext), iso));
  }

  // The per-rank cell sets tile the domain: identical triangle count and
  // total area (triangles may appear in a different order).
  EXPECT_EQ(combined.num_triangles(), serial.num_triangles());
  EXPECT_NEAR(combined.area(), serial.area(),
              1e-9 * (1.0 + serial.area()));
}

INSTANTIATE_TEST_SUITE_P(Layouts, IsosurfaceTiling,
                         ::testing::Values(std::array<int, 3>{2, 2, 2},
                                           std::array<int, 3>{4, 1, 1},
                                           std::array<int, 3>{1, 1, 1},
                                           std::array<int, 3>{2, 3, 2}));

TEST(TriangleMesh, AppendOffsetsIndices) {
  TriangleMesh a;
  a.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  a.triangles = {{0, 1, 2}};
  TriangleMesh b = a;
  a.append(b);
  ASSERT_EQ(a.num_vertices(), 6u);
  ASSERT_EQ(a.num_triangles(), 2u);
  EXPECT_EQ(a.triangles[1][0], 3u);
  EXPECT_DOUBLE_EQ(a.area(), 2.0 * 0.5);
}

TEST(TriangleMesh, SerializeRoundTrip) {
  GlobalGrid grid{{12, 12, 12}, {1, 1, 1}};
  const auto values = distance_field(grid, grid.bounds());
  const TriangleMesh mesh =
      extract_isosurface(grid, grid.bounds(), values, 0.3);
  const TriangleMesh r = TriangleMesh::deserialize(mesh.serialize());
  EXPECT_EQ(r.num_vertices(), mesh.num_vertices());
  EXPECT_EQ(r.num_triangles(), mesh.num_triangles());
  EXPECT_NEAR(r.area(), mesh.area(), 1e-12);
  EXPECT_THROW(TriangleMesh::deserialize(std::vector<double>{1.0}), Error);
}

TEST(TriangleMesh, WritesValidObj) {
  TriangleMesh m;
  m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  m.triangles = {{0, 1, 2}};
  const std::string path = ::testing::TempDir() + "/hia_test.obj";
  write_obj(m, path);
  std::ifstream in(path);
  std::string line;
  int v = 0, f = 0;
  while (std::getline(in, line)) {
    if (line.rfind("v ", 0) == 0) ++v;
    if (line.rfind("f ", 0) == 0) ++f;
  }
  EXPECT_EQ(v, 3);
  EXPECT_EQ(f, 1);
  std::remove(path.c_str());
}

TEST(IsosurfacePipeline, MatchesSerialExtraction) {
  RunConfig cfg;
  cfg.sim.grid = GlobalGrid{{24, 16, 16}, {1.0, 0.75, 0.75}};
  cfg.sim.ranks_per_axis = {2, 2, 1};
  cfg.sim.chemistry.kernel_rate = 3.0;
  cfg.steps = 2;

  IsosurfaceConfig icfg;
  icfg.variable = Variable::kTemperature;
  icfg.iso = 1.5;

  HybridRunner runner(cfg);
  auto analysis = std::make_shared<HybridIsosurface>(icfg);
  runner.add_analysis(analysis);
  (void)runner.run();

  const auto mesh = analysis->latest_mesh();
  ASSERT_TRUE(mesh.has_value());
  EXPECT_GT(mesh->num_triangles(), 0u);

  // Serial reference on the deterministic final state.
  S3DParams solo = cfg.sim;
  solo.ranks_per_axis = {1, 1, 1};
  TriangleMesh reference;
  {
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(solo, 0);
      sim.initialize();
      for (long s = 0; s < cfg.steps; ++s) sim.advance(comm);
      reference = extract_isosurface(
          solo.grid, solo.grid.bounds(),
          sim.field(Variable::kTemperature).pack_owned(), icfg.iso);
    });
  }
  EXPECT_EQ(mesh->num_triangles(), reference.num_triangles());
  EXPECT_NEAR(mesh->area(), reference.area(),
              1e-9 * (1.0 + reference.area()));
}

}  // namespace
}  // namespace hia
