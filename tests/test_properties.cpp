// Cross-module property tests: invariants that tie several subsystems
// together, exercised with randomized inputs (fixed seeds for
// reproducibility).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "analysis/stats/descriptive.hpp"
#include "analysis/topology/local_tree.hpp"
#include "analysis/topology/segmentation.hpp"
#include "analysis/viz/image.hpp"
#include "core/framework.hpp"
#include "core/stats_pipeline.hpp"
#include "core/timeseries_pipeline.hpp"
#include "io/bp_lite.hpp"
#include "runtime/network_model.hpp"
#include "sim/analytic_fields.hpp"
#include "util/rng.hpp"

namespace hia {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededProperty, MomentsAreOrderInvariant) {
  Xoshiro256 rng(GetParam());
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.normal() * 5.0 + 1.0;

  const auto forward = stats_learn(xs);
  std::vector<double> shuffled = xs;
  std::mt19937 shuffle_rng(static_cast<unsigned>(GetParam()));
  std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng);
  const auto permuted = stats_learn(shuffled);

  EXPECT_EQ(forward.count(), permuted.count());
  EXPECT_NEAR(forward.mean(), permuted.mean(), 1e-11);
  EXPECT_NEAR(forward.m2(), permuted.m2(), std::abs(forward.m2()) * 1e-9);
  EXPECT_NEAR(forward.m4(), permuted.m4(), std::abs(forward.m4()) * 1e-8);
  EXPECT_DOUBLE_EQ(forward.min(), permuted.min());
  EXPECT_DOUBLE_EQ(forward.max(), permuted.max());
}

TEST_P(SeededProperty, TreeLeavesMatchSegmentationAtEveryLevel) {
  // For random noise fields: #superlevel components == #live branches.
  GlobalGrid grid{{10, 10, 10}, {1, 1, 1}};
  Field field("f", grid.bounds());
  fill_noise(field, GetParam());
  const auto values = field.pack_owned();
  const MergeTree tree = build_local_tree(grid, grid.bounds(), values);
  const auto pairs = persistence_pairs(tree.reduced());

  for (const double iso : {0.15, 0.35, 0.55, 0.75, 0.95}) {
    const auto seg = segment_superlevel(grid.bounds(), values, iso);
    size_t live = 0;
    for (const auto& p : pairs) {
      if (p.max_value >= iso && p.saddle_value < iso) ++live;
    }
    EXPECT_EQ(seg.features.size(), live) << "iso " << iso;
  }
}

TEST_P(SeededProperty, BpLiteFuzzRoundTrip) {
  Xoshiro256 rng(GetParam() + 77);
  std::vector<BpEntry> entries;
  const int n = 1 + static_cast<int>(rng.below(6));
  for (int e = 0; e < n; ++e) {
    BpEntry entry;
    entry.name = "var_" + std::to_string(rng.below(1000));
    for (int a = 0; a < 3; ++a) {
      entry.box.lo[a] = static_cast<int64_t>(rng.below(10));
      entry.box.hi[a] = entry.box.lo[a] + static_cast<int64_t>(rng.below(6));
    }
    const size_t count = rng.below(200);
    for (size_t i = 0; i < count; ++i) entry.values.push_back(rng.normal());
    entries.push_back(std::move(entry));
  }
  const auto parsed = bp_parse(bp_serialize(entries));
  ASSERT_EQ(parsed.size(), entries.size());
  for (size_t e = 0; e < entries.size(); ++e) {
    EXPECT_EQ(parsed[e].name, entries[e].name);
    EXPECT_EQ(parsed[e].box, entries[e].box);
    EXPECT_EQ(parsed[e].values, entries[e].values);
  }
}

TEST_P(SeededProperty, SubtreeSerializationFuzz) {
  GlobalGrid grid{{12, 10, 8}, {1, 1, 1}};
  Field field("f", grid.bounds());
  fill_noise(field, GetParam() + 5);
  Decomposition decomp(grid, {2, 2, 1});
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    const Box3 ext = extended_block(grid, decomp.block(r));
    const SubtreeData sub =
        compute_rank_subtree(grid, decomp.block(r), field.pack(ext), ext);
    const SubtreeData round = SubtreeData::deserialize(sub.serialize());
    EXPECT_EQ(round.vertex_ids, sub.vertex_ids);
    EXPECT_EQ(round.vertex_values, sub.vertex_values);
    EXPECT_EQ(round.interior, sub.interior);
    EXPECT_EQ(round.edge_child, sub.edge_child);
    EXPECT_EQ(round.edge_parent, sub.edge_parent);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(Compositing, UnderOperatorIsAssociative) {
  // (a under (b under c)) == ((a under b) under c) per pixel.
  auto make = [](float r, float a) {
    Image img(1, 1);
    img.at(0, 0) = Rgba{r * a, 0, 0, a};  // premultiplied
    return img;
  };
  const Image a = make(1.0f, 0.3f), b = make(0.5f, 0.5f), c = make(0.2f, 0.7f);

  Image left_inner = c;     // back
  left_inner.under(b);
  Image left = left_inner;  // then a in front
  left.under(a);

  Image right_inner = b;
  right_inner.under(a);     // front pair pre-composited
  Image right = c;
  // Compose the pre-composited front pair over c: under() puts argument in
  // front, so this is exactly (a over b) over c.
  right.under(right_inner);

  EXPECT_NEAR(left.at(0, 0).r, right.at(0, 0).r, 1e-6f);
  EXPECT_NEAR(left.at(0, 0).a, right.at(0, 0).a, 1e-6f);
}

TEST(NetworkModel, NoIncentiveToSplitBulkTransfers) {
  // Splitting one BTE transfer into k smaller ones never reduces the
  // modeled time (per-message latency is paid k times).
  NetworkModel net;
  const size_t bytes = 10u << 20;
  const double whole = net.transfer_seconds(bytes);
  for (const int k : {2, 4, 16}) {
    const double split =
        k * net.transfer_seconds(bytes / static_cast<size_t>(k));
    EXPECT_GE(split, whole - 1e-12);
  }
}

TEST(TimeSeries, AutocorrelationTracksGlobalMeanSeries) {
  RunConfig cfg;
  cfg.sim.grid = GlobalGrid{{20, 14, 14}, {1.0, 0.7, 0.7}};
  cfg.sim.ranks_per_axis = {2, 1, 1};
  cfg.steps = 8;

  HybridRunner runner(cfg);
  TimeSeriesConfig tcfg;
  tcfg.variable = Variable::kTemperature;
  tcfg.lags = {1, 3};
  auto analysis = std::make_shared<TimeSeriesAutocorrelation>(tcfg);
  runner.add_analysis(analysis);
  (void)runner.run();

  const auto series = analysis->series();
  ASSERT_EQ(series.size(), 8u);
  // Temperature mean rises monotonically as kernels inject heat.
  for (double v : series) EXPECT_GT(v, 0.0);

  // Verify against a serial recomputation of the same run.
  S3DParams solo = cfg.sim;
  solo.ranks_per_axis = {1, 1, 1};
  std::vector<double> reference;
  {
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(solo, 0);
      sim.initialize();
      for (long s = 0; s < cfg.steps; ++s) {
        sim.advance(comm);
        double sum = 0.0;
        for (const double v :
             sim.field(Variable::kTemperature).pack_owned()) {
          sum += v;
        }
        reference.push_back(sum /
                            static_cast<double>(solo.grid.num_points()));
      }
    });
  }
  for (size_t s = 0; s < series.size(); ++s) {
    EXPECT_NEAR(series[s], reference[s], 1e-11);
  }

  // A smooth upward series is strongly lag-1 autocorrelated.
  const auto acs = analysis->autocorrelations();
  ASSERT_FALSE(acs.empty());
  EXPECT_EQ(acs[0].first, 1u);
  EXPECT_GT(acs[0].second, 0.8);
}

TEST(Determinism, WholeCampaignIsReproducible) {
  // Two identical campaigns produce identical science outputs.
  auto run_once = [] {
    RunConfig cfg;
    cfg.sim.grid = GlobalGrid{{20, 14, 14}, {1.0, 0.7, 0.7}};
    cfg.sim.ranks_per_axis = {2, 1, 1};
    cfg.steps = 3;
    HybridRunner runner(cfg);
    auto stats = std::make_shared<HybridStatistics>(
        std::vector<Variable>{Variable::kTemperature, Variable::kYH2O});
    runner.add_analysis(stats);
    (void)runner.run();
    return stats->latest_models();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v].count, b[v].count);
    EXPECT_DOUBLE_EQ(a[v].mean, b[v].mean);
    EXPECT_DOUBLE_EQ(a[v].variance, b[v].variance);
    EXPECT_DOUBLE_EQ(a[v].min, b[v].min);
    EXPECT_DOUBLE_EQ(a[v].max, b[v].max);
  }
}

}  // namespace
}  // namespace hia
