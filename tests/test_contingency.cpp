// Tests for parallel contingency statistics (ref [22]) and merge-tree-
// based segmentation, including the cross-validation property: the
// segmentation read off the augmented merge tree must equal the voxel
// union-find segmentation at every threshold.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats/contingency.hpp"
#include "analysis/topology/local_tree.hpp"
#include "analysis/topology/segmentation.hpp"
#include "sim/analytic_fields.hpp"
#include "util/rng.hpp"

namespace hia {
namespace {

TEST(Categorizer, BinsAndClamps) {
  Categorizer c(0.0, 10.0, 5);
  EXPECT_EQ(c.category(-1.0), 0);
  EXPECT_EQ(c.category(0.0), 0);
  EXPECT_EQ(c.category(1.9), 0);
  EXPECT_EQ(c.category(2.0), 1);
  EXPECT_EQ(c.category(9.99), 4);
  EXPECT_EQ(c.category(10.0), 4);
  EXPECT_EQ(c.category(99.0), 4);
}

TEST(ContingencyTable, CountsAndMarginals) {
  ContingencyTable t(3, 2);
  t.update(0, 0);
  t.update(0, 0);
  t.update(1, 1);
  t.update(2, 0);
  EXPECT_EQ(t.total(), 4u);
  EXPECT_EQ(t.count(0, 0), 2u);
  EXPECT_EQ(t.count(1, 1), 1u);
  EXPECT_EQ(t.count(2, 1), 0u);
  EXPECT_EQ(t.nonzero_cells(), 3u);
  EXPECT_EQ(t.x_marginal(), (std::vector<uint64_t>{2, 1, 1}));
  EXPECT_EQ(t.y_marginal(), (std::vector<uint64_t>{3, 1}));
  EXPECT_THROW(t.update(3, 0), Error);
}

class ContingencyCombine : public ::testing::TestWithParam<int> {};

TEST_P(ContingencyCombine, CombineEqualsSequential) {
  const int parts = GetParam();
  Xoshiro256 rng(19);
  Categorizer cx(-3.0, 3.0, 8), cy(-3.0, 3.0, 6);

  std::vector<double> x(3000), y(3000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = 0.6 * x[i] + 0.8 * rng.normal();  // correlated pair
  }

  ContingencyTable whole(8, 6);
  whole.update(x, y, cx, cy);

  ContingencyTable combined(8, 6);
  const size_t chunk = x.size() / static_cast<size_t>(parts);
  for (int p = 0; p < parts; ++p) {
    const size_t b = static_cast<size_t>(p) * chunk;
    const size_t e = p + 1 == parts ? x.size() : b + chunk;
    ContingencyTable part(8, 6);
    part.update(std::span(x.data() + b, e - b), std::span(y.data() + b, e - b),
                cx, cy);
    combined.combine(part);
  }

  EXPECT_EQ(combined.total(), whole.total());
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 6; ++b) {
      EXPECT_EQ(combined.count(a, b), whole.count(a, b));
    }
  }
  const auto ma = derive_contingency(whole);
  const auto mb = derive_contingency(combined);
  EXPECT_DOUBLE_EQ(ma.chi_squared, mb.chi_squared);
  EXPECT_DOUBLE_EQ(ma.mutual_information, mb.mutual_information);
}

INSTANTIATE_TEST_SUITE_P(Partitions, ContingencyCombine,
                         ::testing::Values(2, 3, 7, 16));

TEST(ContingencyTable, SerializeRoundTrip) {
  ContingencyTable t(4, 4);
  Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i) {
    t.update(static_cast<int>(rng.below(4)), static_cast<int>(rng.below(4)));
  }
  const ContingencyTable r = ContingencyTable::deserialize(t.serialize());
  EXPECT_EQ(r.total(), t.total());
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) EXPECT_EQ(r.count(a, b), t.count(a, b));
  }
}

TEST(DeriveContingency, IndependentVariables) {
  // Independent uniform categories: chi2 small, MI ~ 0, V ~ 0.
  Xoshiro256 rng(23);
  ContingencyTable t(4, 4);
  for (int i = 0; i < 100000; ++i) {
    t.update(static_cast<int>(rng.below(4)), static_cast<int>(rng.below(4)));
  }
  const auto m = derive_contingency(t);
  EXPECT_LT(m.cramers_v, 0.03);
  EXPECT_LT(m.mutual_information, 0.002);
  // chi2 for 9 dof should be O(10), not O(1000).
  EXPECT_LT(m.chi_squared, 60.0);
}

TEST(DeriveContingency, PerfectlyDependentVariables) {
  ContingencyTable t(4, 4);
  Xoshiro256 rng(29);
  for (int i = 0; i < 10000; ++i) {
    const int c = static_cast<int>(rng.below(4));
    t.update(c, c);  // y determined by x
  }
  const auto m = derive_contingency(t);
  EXPECT_NEAR(m.cramers_v, 1.0, 1e-9);
  // MI of uniform 4-category identity = log(4).
  EXPECT_NEAR(m.mutual_information, std::log(4.0), 0.02);
}

TEST(DeriveContingency, EmptyTable) {
  const auto m = derive_contingency(ContingencyTable(3, 3));
  EXPECT_EQ(m.total, 0u);
  EXPECT_DOUBLE_EQ(m.chi_squared, 0.0);
  EXPECT_DOUBLE_EQ(m.cramers_v, 0.0);
}

// --------------------------------------------- merge-tree segmentation --

class TreeSegmentationProperty : public ::testing::TestWithParam<double> {};

TEST_P(TreeSegmentationProperty, MatchesVoxelSegmentation) {
  const double threshold = GetParam();
  GlobalGrid grid{{20, 16, 12}, {1, 1, 1}};
  Field field("f", grid.bounds());
  fill_gaussian_mixture(field, grid,
                        GaussianMixture::well_separated(6, 0.07, 13));
  const auto values = field.pack_owned();

  const MergeTree augmented =
      build_local_tree(grid, grid.bounds(), values);
  const TreeSegmentation tree_seg = segment_tree(augmented, threshold);
  const Segmentation voxel_seg =
      segment_superlevel(grid.bounds(), values, threshold);

  // Same number of features, same sizes.
  ASSERT_EQ(tree_seg.features.size(), voxel_seg.features.size());

  // Same membership: every in-set voxel gets the same canonical feature
  // (tree labels are max vertex-ids; voxel labels map to max offset which
  // equals the vertex id on a whole-domain box).
  size_t labeled = 0;
  const Box3 box = grid.bounds();
  for (size_t off = 0; off < voxel_seg.labels.size(); ++off) {
    const int32_t vl = voxel_seg.labels[off];
    auto it = tree_seg.label_of.find(static_cast<uint64_t>(off));
    if (vl < 0) {
      EXPECT_EQ(it, tree_seg.label_of.end());
      continue;
    }
    ++labeled;
    ASSERT_NE(it, tree_seg.label_of.end()) << "offset " << off;
    EXPECT_EQ(it->second,
              voxel_seg.features[static_cast<size_t>(vl)].max_id);
  }
  EXPECT_EQ(labeled, tree_seg.label_of.size());
  (void)box;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, TreeSegmentationProperty,
                         ::testing::Values(0.15, 0.3, 0.5, 0.8, 1.2));

TEST(TreeSegmentation, EmptyAboveRange) {
  GlobalGrid grid{{8, 8, 8}, {1, 1, 1}};
  Field field("f", grid.bounds());
  fill_ramp_x(field, grid);
  const MergeTree t =
      build_local_tree(grid, grid.bounds(), field.pack_owned());
  const auto seg = segment_tree(t, 100.0);
  EXPECT_TRUE(seg.features.empty());
  EXPECT_TRUE(seg.label_of.empty());
}

TEST(TreeSegmentation, WholeDomainOneFeature) {
  GlobalGrid grid{{8, 8, 8}, {1, 1, 1}};
  Field field("f", grid.bounds());
  fill_ramp_x(field, grid);
  const MergeTree t =
      build_local_tree(grid, grid.bounds(), field.pack_owned());
  const auto seg = segment_tree(t, -1.0);
  ASSERT_EQ(seg.features.size(), 1u);
  EXPECT_EQ(seg.features[0].second,
            static_cast<int64_t>(grid.num_points()));
}

}  // namespace
}  // namespace hia
