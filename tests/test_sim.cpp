// Tests for MiniS3D: physical sanity of the initial condition and time
// integration, intermittent kernel generation, turbulence properties, and
// decomposition invariance (the same physics regardless of rank layout).
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/comm.hpp"
#include "sim/chemistry.hpp"
#include "sim/s3d.hpp"
#include "sim/turbulence.hpp"

namespace hia {
namespace {

S3DParams small_params() {
  S3DParams p;
  p.grid = GlobalGrid{{24, 16, 16}, {1.0, 0.75, 0.75}};
  p.ranks_per_axis = {2, 2, 1};
  return p;
}

TEST(Chemistry, RateIncreasesWithTemperature) {
  Chemistry chem;
  const double cold = chem.rate(1.0, 0.5, 0.2);
  const double hot = chem.rate(4.0, 0.5, 0.2);
  EXPECT_GT(hot, cold);
  EXPECT_GT(cold, 0.0);
}

TEST(Chemistry, NoFuelNoReaction) {
  Chemistry chem;
  EXPECT_DOUBLE_EQ(chem.rate(5.0, 0.0, 0.2), 0.0);
  EXPECT_DOUBLE_EQ(chem.rate(5.0, 0.5, 0.0), 0.0);
}

TEST(Chemistry, SourceTermsConserveMass) {
  Chemistry chem;
  const auto s = chem.sources(3.0, 0.4, 0.3);
  // dY_H2 + dY_O2 + dY_H2O must vanish (2 H2 + O2 -> 2 H2O in Y space).
  EXPECT_NEAR(s.h2 + s.o2 + s.h2o, 0.0, 1e-12);
  EXPECT_LT(s.h2, 0.0);
  EXPECT_LT(s.o2, 0.0);
  EXPECT_GT(s.h2o, 0.0);
  EXPECT_GT(s.temperature, 0.0);
}

TEST(Chemistry, MinorSpeciesPeakMidReaction) {
  Chemistry chem;
  const auto at0 = chem.minor_species(0.0);
  const auto mid = chem.minor_species(0.5);
  const auto at1 = chem.minor_species(1.0);
  for (size_t s = 0; s < 3; ++s) {  // H, O, OH vanish at both ends
    EXPECT_DOUBLE_EQ(at0[s], 0.0);
    EXPECT_DOUBLE_EQ(at1[s], 0.0);
    EXPECT_GT(mid[s], 0.0);
  }
}

TEST(KernelSeeder, DeterministicSequence) {
  ChemistryParams p;
  KernelSeeder a(p), b(p);
  for (long step = 0; step < 50; ++step) {
    const auto ka = a.kernels_for_step(step);
    const auto kb = b.kernels_for_step(step);
    ASSERT_EQ(ka.size(), kb.size());
    for (size_t i = 0; i < ka.size(); ++i) {
      EXPECT_DOUBLE_EQ(ka[i].cx, kb[i].cx);
      EXPECT_DOUBLE_EQ(ka[i].amplitude, kb[i].amplitude);
    }
  }
}

TEST(KernelSeeder, ProducesKernelsAtExpectedRate) {
  ChemistryParams p;
  p.kernel_rate = 1.2;
  KernelSeeder seeder(p);
  size_t total = 0;
  const long steps = 500;
  for (long s = 0; s < steps; ++s) total += seeder.kernels_for_step(s).size();
  const double rate = static_cast<double>(total) / steps;
  EXPECT_NEAR(rate, 1.2, 0.25);
}

TEST(Turbulence, DivergenceFreeByConstruction) {
  SyntheticTurbulence turb;
  // Numerical divergence at random points should be ~0 (analytically 0).
  Xoshiro256 rng(3);
  const double h = 1e-5;
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 x{rng.uniform(), rng.uniform(), rng.uniform()};
    const double t = rng.uniform(0.0, 2.0);
    const double dudx =
        (turb.velocity(x + Vec3{h, 0, 0}, t).x -
         turb.velocity(x - Vec3{h, 0, 0}, t).x) / (2 * h);
    const double dvdy =
        (turb.velocity(x + Vec3{0, h, 0}, t).y -
         turb.velocity(x - Vec3{0, h, 0}, t).y) / (2 * h);
    const double dwdz =
        (turb.velocity(x + Vec3{0, 0, h}, t).z -
         turb.velocity(x - Vec3{0, 0, h}, t).z) / (2 * h);
    const double scale = turb.velocity(x, t).norm() + 1.0;
    EXPECT_NEAR((dudx + dvdy + dwdz) / scale, 0.0, 1e-4);
  }
}

TEST(Turbulence, RmsNearTarget) {
  TurbulenceParams p;
  p.rms_velocity = 1.0;
  SyntheticTurbulence turb(p);
  Xoshiro256 rng(9);
  double sum2 = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Vec3 u = turb.velocity(
        Vec3{rng.uniform(), rng.uniform(), rng.uniform()}, 0.3);
    sum2 += u.dot(u);
  }
  // Total kinetic energy ~ 3 * rms^2 per point.
  EXPECT_NEAR(std::sqrt(sum2 / (3.0 * n)), 1.0, 0.35);
}

TEST(S3D, InitialConditionIsPhysical) {
  const S3DParams p = small_params();
  S3DRank sim(p, 0);
  sim.initialize();

  const Box3 owned = sim.decomp().block(0);
  for (int64_t k = owned.lo[2]; k < owned.hi[2]; ++k) {
    for (int64_t j = owned.lo[1]; j < owned.hi[1]; ++j) {
      for (int64_t i = owned.lo[0]; i < owned.hi[0]; ++i) {
        double y_sum = 0.0;
        for (Variable v : {Variable::kYH2, Variable::kYO2, Variable::kYH2O,
                           Variable::kYN2}) {
          const double y = sim.field(v).at(i, j, k);
          EXPECT_GE(y, 0.0);
          EXPECT_LE(y, 1.0);
          y_sum += y;
        }
        EXPECT_NEAR(y_sum, 1.0, 1e-9);
        EXPECT_GT(sim.field(Variable::kTemperature).at(i, j, k), 0.0);
      }
    }
  }
}

TEST(S3D, AdvanceKeepsFieldsFiniteAndBounded) {
  const S3DParams p = small_params();
  Decomposition d(p.grid, p.ranks_per_axis);
  World world(d.num_ranks());
  world.run([&](Comm& comm) {
    S3DRank sim(p, comm.rank());
    sim.initialize();
    for (int s = 0; s < 12; ++s) sim.advance(comm);
    EXPECT_EQ(sim.step(), 12);
    EXPECT_NEAR(sim.time(), 12 * p.dt, 1e-12);

    const Box3 owned = sim.decomp().block(comm.rank());
    for (int64_t k = owned.lo[2]; k < owned.hi[2]; ++k) {
      for (int64_t j = owned.lo[1]; j < owned.hi[1]; ++j) {
        for (int64_t i = owned.lo[0]; i < owned.hi[0]; ++i) {
          for (int v = 0; v < kNumVariables; ++v) {
            const double x = sim.field(static_cast<Variable>(v)).at(i, j, k);
            ASSERT_TRUE(std::isfinite(x))
                << kVariableNames[static_cast<size_t>(v)];
          }
          const double h2 = sim.field(Variable::kYH2).at(i, j, k);
          EXPECT_GE(h2, 0.0);
          EXPECT_LE(h2, 1.0);
          EXPECT_GE(sim.field(Variable::kTemperature).at(i, j, k), 0.0);
        }
      }
    }
  });
}

TEST(S3D, IgnitionKernelsRaiseTemperature) {
  S3DParams p = small_params();
  p.chemistry.kernel_rate = 3.0;  // make kernels near-certain
  Decomposition d(p.grid, p.ranks_per_axis);
  World world(d.num_ranks());
  std::atomic<int> hot_ranks{0};
  world.run([&](Comm& comm) {
    S3DRank sim(p, comm.rank());
    sim.initialize();
    double max_t = 0.0;
    for (int s = 0; s < 10; ++s) {
      sim.advance(comm);
      const Box3 owned = sim.decomp().block(comm.rank());
      for (int64_t k = owned.lo[2]; k < owned.hi[2]; ++k)
        for (int64_t j = owned.lo[1]; j < owned.hi[1]; ++j)
          for (int64_t i = owned.lo[0]; i < owned.hi[0]; ++i)
            max_t = std::max(max_t,
                             sim.field(Variable::kTemperature).at(i, j, k));
    }
    if (max_t > 1.5 * p.chemistry.ambient_temperature) hot_ranks.fetch_add(1);
  });
  EXPECT_GE(hot_ranks.load(), 1);
}

TEST(S3D, DecompositionInvariance) {
  // The same grid advanced under different rank layouts must produce
  // identical fields (deterministic scheme + exact halo exchange).
  S3DParams p1 = small_params();
  p1.ranks_per_axis = {1, 1, 1};
  S3DParams p2 = small_params();
  p2.ranks_per_axis = {2, 2, 2};

  // Single-rank reference.
  std::vector<double> reference;
  {
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(p1, 0);
      sim.initialize();
      for (int s = 0; s < 5; ++s) sim.advance(comm);
      reference = sim.field(Variable::kTemperature).pack_owned();
    });
  }

  Decomposition d2(p2.grid, p2.ranks_per_axis);
  World world(d2.num_ranks());
  world.run([&](Comm& comm) {
    S3DRank sim(p2, comm.rank());
    sim.initialize();
    for (int s = 0; s < 5; ++s) sim.advance(comm);

    // Compare owned values against the single-rank reference.
    const Box3 owned = d2.block(comm.rank());
    const Box3 whole = p1.grid.bounds();
    for (int64_t k = owned.lo[2]; k < owned.hi[2]; ++k)
      for (int64_t j = owned.lo[1]; j < owned.hi[1]; ++j)
        for (int64_t i = owned.lo[0]; i < owned.hi[0]; ++i) {
          const double ref = reference[whole.offset(i, j, k)];
          ASSERT_NEAR(sim.field(Variable::kTemperature).at(i, j, k), ref,
                      1e-11)
              << "(" << i << "," << j << "," << k << ")";
        }
  });
}

TEST(S3D, HeunIntegratorIsStableAndDistinctFromEuler) {
  S3DParams euler = small_params();
  S3DParams heun = small_params();
  heun.integrator = TimeIntegrator::kHeun;

  auto run = [](const S3DParams& p) {
    std::vector<double> out;
    World world(1);
    S3DParams solo = p;
    solo.ranks_per_axis = {1, 1, 1};
    world.run([&](Comm& comm) {
      S3DRank sim(solo, 0);
      sim.initialize();
      for (int s = 0; s < 8; ++s) sim.advance(comm);
      out = sim.field(Variable::kTemperature).pack_owned();
    });
    return out;
  };
  const auto a = run(euler);
  const auto b = run(heun);
  ASSERT_EQ(a.size(), b.size());
  double max_diff = 0.0, max_val = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(std::isfinite(b[i]));
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
    max_val = std::max(max_val, std::abs(a[i]));
  }
  EXPECT_GT(max_diff, 0.0);             // genuinely different scheme
  EXPECT_LT(max_diff, 0.2 * max_val);   // but the same physics
}

TEST(S3D, HeunSelfConvergesFasterThanEuler) {
  // Self-convergence in dt on a smooth (kernel-free) problem: the gap
  // between dt and dt/2 solutions shrinks ~4x per halving for Heun vs
  // ~2x for Euler.
  auto solve = [](TimeIntegrator integ, double dt, int steps) {
    S3DParams p;
    p.grid = GlobalGrid{{16, 12, 12}, {1.0, 0.75, 0.75}};
    p.ranks_per_axis = {1, 1, 1};
    p.integrator = integ;
    p.dt = dt;
    p.chemistry.kernel_rate = 0.0;  // smooth dynamics only
    std::vector<double> out;
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(p, 0);
      sim.initialize();
      for (int s = 0; s < steps; ++s) sim.advance(comm);
      out = sim.field(Variable::kYH2O).pack_owned();
    });
    return out;
  };
  auto max_gap = [&](TimeIntegrator integ, double dt, int steps) {
    const auto coarse = solve(integ, dt, steps);
    const auto fine = solve(integ, dt / 2, steps * 2);
    double gap = 0.0;
    for (size_t i = 0; i < coarse.size(); ++i) {
      gap = std::max(gap, std::abs(coarse[i] - fine[i]));
    }
    return gap;
  };
  const double base_dt = 4.0e-3;
  const int steps = 8;
  const double euler1 = max_gap(TimeIntegrator::kEuler, base_dt, steps);
  const double euler2 = max_gap(TimeIntegrator::kEuler, base_dt / 2, steps * 2);
  const double heun1 = max_gap(TimeIntegrator::kHeun, base_dt, steps);
  const double heun2 = max_gap(TimeIntegrator::kHeun, base_dt / 2, steps * 2);

  const double euler_order = std::log2(euler1 / euler2);
  const double heun_order = std::log2(heun1 / heun2);
  EXPECT_NEAR(euler_order, 1.0, 0.5);
  EXPECT_GT(heun_order, 1.5);  // second-order in time
}

TEST(S3D, HeunDecompositionInvariance) {
  S3DParams p = small_params();
  p.integrator = TimeIntegrator::kHeun;
  S3DParams solo = p;
  solo.ranks_per_axis = {1, 1, 1};

  std::vector<double> reference;
  {
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(solo, 0);
      sim.initialize();
      for (int s = 0; s < 4; ++s) sim.advance(comm);
      reference = sim.field(Variable::kTemperature).pack_owned();
    });
  }
  Decomposition d(p.grid, p.ranks_per_axis);
  World world(d.num_ranks());
  world.run([&](Comm& comm) {
    S3DRank sim(p, comm.rank());
    sim.initialize();
    for (int s = 0; s < 4; ++s) sim.advance(comm);
    const Box3 owned = d.block(comm.rank());
    const Box3 whole = p.grid.bounds();
    for (int64_t k = owned.lo[2]; k < owned.hi[2]; ++k)
      for (int64_t j = owned.lo[1]; j < owned.hi[1]; ++j)
        for (int64_t i = owned.lo[0]; i < owned.hi[0]; ++i)
          ASSERT_NEAR(sim.field(Variable::kTemperature).at(i, j, k),
                      reference[whole.offset(i, j, k)], 1e-11);
  });
}

TEST(S3D, SolutionBytesMatchTableOneAccounting) {
  const S3DParams p = small_params();
  S3DRank sim(p, 0);
  const Box3 owned = sim.decomp().block(0);
  EXPECT_EQ(sim.solution_bytes(),
            static_cast<size_t>(owned.num_cells()) * 14 * 8);
}

TEST(S3D, HeatReleaseNonNegative) {
  const S3DParams p = small_params();
  Decomposition d(p.grid, p.ranks_per_axis);
  World world(d.num_ranks());
  world.run([&](Comm& comm) {
    S3DRank sim(p, comm.rank());
    sim.initialize();
    for (int s = 0; s < 3; ++s) sim.advance(comm);
    for (const double v : sim.heat_release().data()) EXPECT_GE(v, 0.0);
  });
}

}  // namespace
}  // namespace hia
