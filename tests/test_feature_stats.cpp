// Tests for feature-based statistics: the serial reference, and the
// central distributed property — gluing per-rank components through
// boundary links must reproduce the serial feature table exactly
// (geometry, canonical ids, and conditioned moments), for arbitrary
// fields and decompositions.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "analysis/topology/feature_stats.hpp"
#include "analysis/topology/local_tree.hpp"
#include "sim/analytic_fields.hpp"
#include "sim/grid.hpp"

namespace hia {
namespace {

std::vector<double> pack_box(const Field& f, const Box3& box) {
  return f.pack(box);
}

TEST(FeatureStatistics, EmptyFieldHasNoFeatures) {
  GlobalGrid grid{{8, 8, 8}, {1, 1, 1}};
  std::vector<double> field(512, 0.0), measure(512, 1.0);
  EXPECT_TRUE(
      feature_statistics(grid, grid.bounds(), field, measure, 0.5).empty());
}

TEST(FeatureStatistics, SingleFeatureGeometryAndMoments) {
  GlobalGrid grid{{8, 8, 8}, {1, 1, 1}};
  const Box3 box = grid.bounds();
  std::vector<double> field(512, 0.0), measure(512, 0.0);
  // A 2x2x2 cube of "hot" voxels at (2..3)^3; measure = global x index.
  for (int64_t k = 2; k <= 3; ++k)
    for (int64_t j = 2; j <= 3; ++j)
      for (int64_t i = 2; i <= 3; ++i) {
        field[box.offset(i, j, k)] = 1.0 + static_cast<double>(i) * 0.1;
        measure[box.offset(i, j, k)] = static_cast<double>(i);
      }
  const auto features =
      feature_statistics(grid, box, field, measure, 0.5);
  ASSERT_EQ(features.size(), 1u);
  const auto& f = features[0];
  EXPECT_EQ(f.voxels, 8);
  EXPECT_DOUBLE_EQ(f.centroid[0], 2.5);
  EXPECT_DOUBLE_EQ(f.centroid[1], 2.5);
  EXPECT_DOUBLE_EQ(f.centroid[2], 2.5);
  EXPECT_DOUBLE_EQ(f.max_value, 1.3);  // i = 3 column
  EXPECT_EQ(f.measure.count(), 8u);
  EXPECT_DOUBLE_EQ(f.measure.mean(), 2.5);
  // The canonical id is the highest (value, id) voxel: i=3 plane.
  EXPECT_EQ(static_cast<int64_t>(f.id) % grid.dims[0], 3);
}

TEST(FeatureStatistics, SortsByVoxelCount) {
  GlobalGrid grid{{16, 4, 4}, {1, 1, 1}};
  const Box3 box = grid.bounds();
  std::vector<double> field(256, 0.0), measure(256, 1.0);
  // Big blob: x in [0, 5); small blob: x in [8, 10).
  for (int64_t i = 0; i < 5; ++i) field[box.offset(i, 1, 1)] = 1.0;
  for (int64_t i = 8; i < 10; ++i) field[box.offset(i, 1, 1)] = 1.0;
  const auto features =
      feature_statistics(grid, box, field, measure, 0.5);
  ASSERT_EQ(features.size(), 2u);
  EXPECT_EQ(features[0].voxels, 5);
  EXPECT_EQ(features[1].voxels, 2);
}

struct FeatureCase {
  std::array<int64_t, 3> dims;
  std::array<int, 3> ranks;
  int field_kind;  // 0 gaussians, 1 noise
  uint64_t seed;
  double threshold;
};

class DistributedFeatures : public ::testing::TestWithParam<FeatureCase> {};

TEST_P(DistributedFeatures, CombinedEqualsSerial) {
  const auto& [dims, ranks, kind, seed, threshold] = GetParam();
  GlobalGrid grid{dims, {1.0, 1.0, 1.0}};
  Decomposition decomp(grid, ranks);

  Field field("f", grid.bounds());
  Field measure("m", grid.bounds());
  if (kind == 0) {
    fill_gaussian_mixture(field, grid,
                          GaussianMixture::well_separated(5, 0.07, seed));
  } else {
    fill_noise(field, seed);
  }
  fill_noise(measure, seed + 1000);

  const auto serial = feature_statistics(
      grid, grid.bounds(), field.pack_owned(), measure.pack_owned(),
      threshold);

  std::vector<LocalFeatureData> parts;
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    const Box3 block = decomp.block(r);
    const Box3 ext = extended_block(grid, block);
    parts.push_back(compute_local_features(grid, block, ext,
                                           pack_box(field, ext),
                                           pack_box(measure, ext),
                                           threshold));
  }
  const auto combined = combine_features(parts);

  ASSERT_EQ(combined.size(), serial.size());
  for (size_t f = 0; f < serial.size(); ++f) {
    const auto& a = serial[f];
    const auto& b = combined[f];
    EXPECT_EQ(a.id, b.id) << "feature " << f;
    EXPECT_EQ(a.voxels, b.voxels);
    EXPECT_DOUBLE_EQ(a.max_value, b.max_value);
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(a.centroid[c], b.centroid[c], 1e-10);
    }
    EXPECT_EQ(a.measure.count(), b.measure.count());
    EXPECT_NEAR(a.measure.mean(), b.measure.mean(), 1e-10);
    EXPECT_NEAR(a.measure.m2(), b.measure.m2(),
                1e-8 * (1.0 + std::abs(a.measure.m2())));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FieldsAndLayouts, DistributedFeatures,
    ::testing::Values(
        FeatureCase{{16, 16, 16}, {2, 2, 2}, 0, 3, 0.4},
        FeatureCase{{16, 16, 16}, {4, 2, 1}, 0, 9, 0.3},
        FeatureCase{{12, 10, 8}, {3, 2, 2}, 1, 17, 0.7},
        FeatureCase{{12, 10, 8}, {3, 2, 2}, 1, 17, 0.95},  // sparse
        FeatureCase{{8, 8, 8}, {2, 2, 2}, 1, 5, 0.5},
        FeatureCase{{20, 12, 8}, {1, 1, 1}, 0, 11, 0.4},   // trivial glue
        FeatureCase{{24, 6, 6}, {8, 1, 1}, 1, 23, 0.6}));  // deep chain

TEST(LocalFeatureData, SerializeRoundTrip) {
  GlobalGrid grid{{12, 8, 8}, {1, 1, 1}};
  Decomposition decomp(grid, {2, 1, 1});
  Field field("f", grid.bounds());
  Field measure("m", grid.bounds());
  fill_noise(field, 4);
  fill_noise(measure, 5);

  const Box3 block = decomp.block(0);
  const Box3 ext = extended_block(grid, block);
  const auto local = compute_local_features(
      grid, block, ext, pack_box(field, ext), pack_box(measure, ext), 0.5);

  const auto round =
      LocalFeatureData::deserialize(local.serialize());
  EXPECT_EQ(round.comp_max_id, local.comp_max_id);
  EXPECT_EQ(round.comp_max_value, local.comp_max_value);
  EXPECT_EQ(round.comp_voxels, local.comp_voxels);
  EXPECT_EQ(round.comp_centroid_sum, local.comp_centroid_sum);
  EXPECT_EQ(round.comp_moments, local.comp_moments);
  EXPECT_EQ(round.boundary_gid, local.boundary_gid);
  EXPECT_EQ(round.link_gid, local.link_gid);
}

TEST(CombineFeatures, FeatureSpanningManyRanks) {
  // A rod along x crossing all blocks: must glue into one feature with
  // exact total voxels and moments.
  GlobalGrid grid{{32, 4, 4}, {1, 1, 1}};
  Decomposition decomp(grid, {4, 1, 1});
  Field field("f", grid.bounds());
  Field measure("m", grid.bounds());
  field.fill(0.0);
  for (int64_t i = 0; i < 32; ++i) {
    field.at(i, 2, 2) = 1.0;
    measure.at(i, 2, 2) = static_cast<double>(i);
  }

  std::vector<LocalFeatureData> parts;
  for (int r = 0; r < 4; ++r) {
    const Box3 block = decomp.block(r);
    const Box3 ext = extended_block(grid, block);
    parts.push_back(compute_local_features(grid, block, ext,
                                           field.pack(ext),
                                           measure.pack(ext), 0.5));
  }
  const auto combined = combine_features(parts);
  ASSERT_EQ(combined.size(), 1u);
  EXPECT_EQ(combined[0].voxels, 32);
  EXPECT_DOUBLE_EQ(combined[0].centroid[0], 15.5);
  EXPECT_EQ(combined[0].measure.count(), 32u);
  EXPECT_DOUBLE_EQ(combined[0].measure.mean(), 15.5);
}

}  // namespace
}  // namespace hia
