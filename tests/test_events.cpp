// Tests for the flight recorder (obs/events.hpp): ring capacity and drop
// accounting, enable/disable, the hia-events-v1 spill round trip,
// corrupted-file rejection, the in-memory validator's conservation and
// monotonicity checks, and the end-to-end invariant the events gate in CI
// enforces: a concurrent multi-tenant campaign's recorded per-tenant
// partition exactly matches the ServiceReport, and the span tracer's B/E
// pairs stay well-nested under tenant-thread interleaving.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "core/stats_pipeline.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "service/campaign_service.hpp"

namespace hia {
namespace {

class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_events();
    obs::enable_events();
    obs::set_events_capacity(16384);
  }
  void TearDown() override {
    obs::reset_events();
    obs::enable_events();
    obs::set_events_capacity(16384);
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }
};

/// A minimal conserved lifecycle: submit then one terminal transition.
void record_task(int tenant, int64_t id, obs::EventKind terminal) {
  obs::record_event(obs::EventKind::kTaskSubmit, tenant, -1, id, 100);
  obs::record_event(obs::EventKind::kTaskAssign, tenant, 0, id, 1);
  obs::record_event(terminal, tenant, 0, id, 1);
}

// ------------------------------------------------------------- recording

TEST_F(EventsTest, RecordsAreSnapshotSortedByWallTime) {
  record_task(1, 10, obs::EventKind::kTaskComplete);
  record_task(2, 11, obs::EventKind::kTaskDegrade);
  const std::vector<obs::EventRecord> events = obs::events_snapshot();
  ASSERT_EQ(events.size(), 6u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_us, events[i - 1].t_us);
  }
  EXPECT_EQ(obs::dropped_event_records(), 0u);
}

TEST_F(EventsTest, DisabledRecordsNothing) {
  obs::disable_events();
  EXPECT_FALSE(obs::events_enabled());
  record_task(1, 1, obs::EventKind::kTaskComplete);
  EXPECT_TRUE(obs::events_snapshot().empty());
  obs::enable_events();
  EXPECT_TRUE(obs::events_enabled());
  record_task(1, 2, obs::EventKind::kTaskComplete);
  EXPECT_EQ(obs::events_snapshot().size(), 3u);
}

TEST_F(EventsTest, RingOverflowDropsOldestAndCounts) {
  obs::reset_events();
  obs::set_events_capacity(8);
  // A fresh thread gets a fresh (capacity-8) ring; the main thread's ring
  // was sized at first touch and may be larger.
  std::thread recorder([] {
    for (int i = 0; i < 20; ++i) {
      obs::record_event(obs::EventKind::kPut, 1, -1, i, 64);
    }
  });
  recorder.join();
  const std::vector<obs::EventRecord> events = obs::events_snapshot();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(obs::dropped_event_records(), 12u);
  // Drop-oldest: the survivors are the 8 most recent records.
  EXPECT_EQ(events.front().a, 12);
  EXPECT_EQ(events.back().a, 19);
}

TEST_F(EventsTest, VirtualTimestampPassesThrough) {
  obs::record_event(obs::EventKind::kTaskSubmit, 1, -1, 1, 10, 2.5);
  obs::record_event(obs::EventKind::kTaskComplete, 1, 0, 1, 1);
  const std::vector<obs::EventRecord> events = obs::events_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].vt_s, 2.5);
  EXPECT_DOUBLE_EQ(events[1].vt_s, -1.0);
}

// ------------------------------------------------------------ validation

TEST_F(EventsTest, ValidatorEnforcesPerTenantConservation) {
  record_task(1, 1, obs::EventKind::kTaskComplete);
  record_task(1, 2, obs::EventKind::kTaskShed);
  record_task(2, 3, obs::EventKind::kTaskDegrade);
  obs::record_event(obs::EventKind::kTaskSubmit, 2, -1, 4, 50);
  obs::record_event(obs::EventKind::kTaskDefer, 2, -1, 4, 0);
  const obs::EventsValidation v =
      obs::validate_events(obs::events_snapshot(), 0);
  ASSERT_TRUE(v.ok) << v.error;
  ASSERT_EQ(v.tenants.size(), 2u);
  EXPECT_EQ(v.tenants[0].tenant, 1);
  EXPECT_EQ(v.tenants[0].submitted, 2u);
  EXPECT_EQ(v.tenants[0].completed, 1u);
  EXPECT_EQ(v.tenants[0].shed, 1u);
  EXPECT_EQ(v.tenants[1].submitted, 2u);
  EXPECT_EQ(v.tenants[1].degraded, 1u);
  EXPECT_EQ(v.tenants[1].deferred, 1u);

  // One more submit without a terminal transition breaks the partition.
  obs::record_event(obs::EventKind::kTaskSubmit, 1, -1, 9, 10);
  const obs::EventsValidation broken =
      obs::validate_events(obs::events_snapshot(), 0);
  EXPECT_FALSE(broken.ok);
  EXPECT_NE(broken.error.find("conservation"), std::string::npos);

  // ...unless the ring dropped records, when exact conservation is
  // unknowable and only reported.
  const obs::EventsValidation dropped =
      obs::validate_events(obs::events_snapshot(), 1);
  EXPECT_TRUE(dropped.ok) << dropped.error;
}

TEST_F(EventsTest, ValidatorRejectsMalformedStreams) {
  std::vector<obs::EventRecord> bad(1);
  bad[0].kind = 99;
  EXPECT_FALSE(obs::validate_events(bad, 0).ok);

  std::vector<obs::EventRecord> unordered(2);
  unordered[0].kind = static_cast<int32_t>(obs::EventKind::kPressure);
  unordered[0].t_us = 10.0;
  unordered[1].kind = static_cast<int32_t>(obs::EventKind::kPressure);
  unordered[1].t_us = 5.0;
  EXPECT_FALSE(obs::validate_events(unordered, 0).ok);

  std::vector<obs::EventRecord> orphan(1);
  orphan[0].kind = static_cast<int32_t>(obs::EventKind::kTaskSubmit);
  orphan[0].tenant = -1;  // task events must be tenant-attributed
  EXPECT_FALSE(obs::validate_events(orphan, 0).ok);
}

// ------------------------------------------------------------ spill file

TEST_F(EventsTest, SpillRoundTripValidates) {
  record_task(1, 1, obs::EventKind::kTaskComplete);
  record_task(3, 2, obs::EventKind::kTaskComplete);
  const std::string path = temp_path("events_roundtrip.bin");
  ASSERT_TRUE(obs::write_events_file(path));
  const obs::EventsValidation v = obs::validate_events_file(path);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.records, 6u);
  EXPECT_EQ(v.dropped, 0u);
  ASSERT_EQ(v.tenants.size(), 2u);
  EXPECT_EQ(v.tenants[0].tenant, 1);
  EXPECT_EQ(v.tenants[1].tenant, 3);
  std::remove(path.c_str());
}

TEST_F(EventsTest, RunConfigRoundTripsThroughSpillHeader) {
  record_task(1, 1, obs::EventKind::kTaskComplete);

  obs::EventsRunConfig cfg;
  cfg.buckets = 3;
  cfg.servers = 4;
  cfg.replicas = 2;
  cfg.faults = "crash-server=1@5,attempts=3";
  cfg.overload = "credits=8,queue=16,divert=degrade";
  cfg.tenant_weights = {1.0, 2.0, 4.0};
  obs::set_events_run_config(cfg);

  const std::string path = temp_path("events_run_config.bin");
  ASSERT_TRUE(obs::write_events_file(path));
  EXPECT_TRUE(obs::validate_events_file(path).ok);

  obs::EventsRunConfig got;
  std::string error;
  ASSERT_TRUE(obs::read_events_run_config(path, &got, &error)) << error;
  ASSERT_TRUE(got.present);
  EXPECT_EQ(got.buckets, 3);
  EXPECT_EQ(got.servers, 4);
  EXPECT_EQ(got.replicas, 2);
  EXPECT_EQ(got.faults, cfg.faults);
  EXPECT_EQ(got.overload, cfg.overload);
  ASSERT_EQ(got.tenant_weights.size(), 3u);
  EXPECT_DOUBLE_EQ(got.tenant_weights[0], 1.0);
  EXPECT_DOUBLE_EQ(got.tenant_weights[1], 2.0);
  EXPECT_DOUBLE_EQ(got.tenant_weights[2], 4.0);

  // reset_events clears the registration: the next spill has no block, and
  // reading it succeeds with present == false (the pre-PR10 spill shape).
  obs::reset_events();
  record_task(1, 1, obs::EventKind::kTaskComplete);
  ASSERT_TRUE(obs::write_events_file(path));
  got = obs::EventsRunConfig{};
  ASSERT_TRUE(obs::read_events_run_config(path, &got, &error)) << error;
  EXPECT_FALSE(got.present);
  std::remove(path.c_str());
}

TEST_F(EventsTest, CorruptedFilesAreRejected) {
  record_task(1, 1, obs::EventKind::kTaskComplete);
  const std::string path = temp_path("events_corrupt.bin");
  ASSERT_TRUE(obs::write_events_file(path));

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }

  auto write_variant = [&](const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };

  // Truncated mid-record.
  write_variant(bytes.substr(0, bytes.size() - 17));
  EXPECT_FALSE(obs::validate_events_file(path).ok);
  // Trailing garbage.
  write_variant(bytes + "xx");
  EXPECT_FALSE(obs::validate_events_file(path).ok);
  // Wrong magic.
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  write_variant(wrong_magic);
  EXPECT_FALSE(obs::validate_events_file(path).ok);
  // Intact bytes still validate (the harness itself is not the problem).
  write_variant(bytes);
  EXPECT_TRUE(obs::validate_events_file(path).ok);
  std::remove(path.c_str());
  EXPECT_FALSE(obs::validate_events_file(path).ok);
}

// --------------------------------------- end-to-end: campaign partition

TEST_F(EventsTest, CampaignEventsMatchServiceReportPartition) {
  // Trace alongside the recorder so the same interleaving exercises span
  // pairing (the tsan leg runs this test for the data-race surface).
  obs::reset();
  obs::enable();

  CampaignService::Options sopts;
  sopts.staging_servers = 1;
  sopts.staging_buckets = 2;
  sopts.overload = "queue-depth=16,credits=8";
  CampaignService service(sopts);

  RunConfig cfg;
  cfg.sim.grid = GlobalGrid{{16, 12, 8}, {1.0, 1.0, 1.0}};
  cfg.sim.ranks_per_axis = {1, 1, 1};
  cfg.staging_servers = 1;
  cfg.staging_buckets = 2;
  cfg.steps = 3;
  for (int t = 0; t < 3; ++t) {
    CampaignService::TenantSpec spec;
    spec.name = "tenant-" + std::to_string(t + 1);
    spec.weight = t == 0 ? 2.0 : 1.0;
    spec.config = cfg;
    spec.setup = [](HybridRunner& runner) {
      runner.add_analysis(std::make_shared<HybridStatistics>());
    };
    service.add_tenant(std::move(spec));
  }
  const CampaignService::ServiceReport report = service.run();
  obs::disable();

  const std::string path = temp_path("events_campaign.bin");
  ASSERT_TRUE(obs::write_events_file(path));
  const obs::EventsValidation v = obs::validate_events_file(path);
  ASSERT_TRUE(v.ok) << v.error;
  ASSERT_EQ(v.dropped, 0u)
      << "ring overflowed; the partition check below would be vacuous";

  // The recorder counted every lifecycle transition the scheduler saw;
  // the service report re-derives the same partition from task records.
  // They must agree exactly, per tenant.
  ASSERT_EQ(report.rows.size(), 3u);
  for (const TenantRunRow& row : report.rows) {
    const obs::EventsValidation::TenantCounts* counts = nullptr;
    for (const obs::EventsValidation::TenantCounts& t : v.tenants) {
      if (t.tenant == row.tenant) counts = &t;
    }
    ASSERT_NE(counts, nullptr) << "tenant " << row.tenant << " unrecorded";
    EXPECT_EQ(counts->submitted, row.submitted) << "tenant " << row.tenant;
    EXPECT_EQ(counts->completed, row.completed) << "tenant " << row.tenant;
    EXPECT_EQ(counts->degraded, row.degraded) << "tenant " << row.tenant;
    EXPECT_EQ(counts->shed, row.shed) << "tenant " << row.tenant;
    EXPECT_EQ(counts->deferred, row.deferred) << "tenant " << row.tenant;
  }
  std::remove(path.c_str());

  // Span pairing under tenant-thread interleaving: every B has a
  // correctly nested E on its track.
  const std::string trace = obs::chrome_trace_json();
  const obs::TraceValidation tv = obs::validate_chrome_trace_json(trace);
  EXPECT_TRUE(tv.ok) << tv.error;
  EXPECT_GT(tv.spans, 0u);

  // poll_status() after the drain reflects the same terminal counts.
  CampaignService::Status status = service.poll_status();
  ASSERT_EQ(status.tenants.size(), 3u);
  for (const CampaignService::TenantStatus& ts : status.tenants) {
    const TenantRunRow& row = report.rows[static_cast<size_t>(ts.tenant - 1)];
    EXPECT_EQ(static_cast<uint64_t>(ts.completed), row.completed);
    EXPECT_EQ(ts.outstanding, 0u);
    EXPECT_EQ(ts.queue_depth, 0u);
  }
}

}  // namespace
}  // namespace hia
