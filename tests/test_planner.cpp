// Tests for the replay-driven capacity planner (planner/replay.hpp):
// hand-built event logs whose replayed makespans are known by
// construction — single-task identity, bucket serialization, queue-cap
// shed/degrade diversion, fair-share vs FCFS ordering, modeled
// transfers against the NetworkModel — plus the sweep grammar and the
// fail-closed contract on spills with dropped records.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/events.hpp"
#include "planner/replay.hpp"
#include "runtime/network_model.hpp"

namespace hia {
namespace {

using planner::Calibration;
using planner::DivertMode;
using planner::Prediction;
using planner::QueuePolicy;
using planner::Scenario;
using planner::SweepSpec;
using planner::Workload;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_events();
    obs::enable_events();
    obs::set_events_capacity(16384);
  }
  void TearDown() override {
    obs::reset_events();
    obs::enable_events();
    obs::set_events_capacity(16384);
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }
};

/// Builds one record with a strictly increasing wall stamp (the spill
/// sorts by t_us; attribution orders by vt_s with t_us as tiebreak).
obs::EventRecord ev(obs::EventKind kind, int tenant, int bucket, int64_t a,
                    int64_t b, double vt) {
  static double wall_us = 0.0;
  obs::EventRecord r;
  r.t_us = (wall_us += 1.0);
  r.vt_s = vt;
  r.a = a;
  r.b = b;
  r.kind = static_cast<int32_t>(kind);
  r.tenant = tenant;
  r.bucket = bucket;
  return r;
}

int idx(obs::TaskPhase p) { return static_cast<int>(p); }

/// One complete task: submit at `at`, assign at `assign`, xfer/work
/// seconds inside the occupancy, complete at `done`. No credit record,
/// so the replayed admission wait is zero by construction.
void add_task(std::vector<obs::EventRecord>* log, int tenant, int bucket,
              int64_t id, int64_t bytes, double at, double assign,
              double xfer_s, double work_s, double done) {
  using K = obs::EventKind;
  log->push_back(ev(K::kTaskSubmit, tenant, 0, id, bytes, at));
  log->push_back(ev(K::kTaskAssign, tenant, bucket, id, 1, assign));
  log->push_back(ev(K::kTaskXfer, tenant, bucket, id,
                    static_cast<int64_t>(xfer_s * 1e6), done));
  log->push_back(ev(K::kTaskWork, tenant, bucket, id,
                    static_cast<int64_t>(work_s * 1e6), done));
  log->push_back(ev(K::kTaskComplete, tenant, bucket, id, 1, done));
}

Workload workload_from(const std::vector<obs::EventRecord>& log) {
  return planner::extract_workload(obs::attribute_events(log, 0));
}

// ----------------------------------------------------- exact replays

TEST_F(PlannerTest, SingleTaskReplaysItsRecordedMakespanExactly) {
  // xfer 0.1 + work 0.2 + drain 0.1 inside the occupancy [0.0, 0.4]:
  // the replayed service is 0.4 s, so with no contention the predicted
  // makespan equals the measured one exactly.
  std::vector<obs::EventRecord> log;
  add_task(&log, /*tenant=*/0, /*bucket=*/0, /*id=*/1, /*bytes=*/4096,
           /*at=*/0.0, /*assign=*/0.0, /*xfer_s=*/0.1, /*work_s=*/0.2,
           /*done=*/0.4);
  const Workload w = workload_from(log);
  ASSERT_TRUE(w.ok) << w.error;
  ASSERT_EQ(w.tasks.size(), 1u);
  EXPECT_EQ(w.recorded_buckets, 1);
  EXPECT_NEAR(w.measured_makespan_s, 0.4, 1e-9);
  EXPECT_EQ(w.tasks[0].input_bytes, 4096);
  EXPECT_NEAR(w.tasks[0].drain_s, 0.1, 1e-9);

  const Prediction p = planner::replay(w, Scenario{});
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_NEAR(p.makespan_s, 0.4, 1e-9);
  EXPECT_EQ(p.completed, 1u);
  EXPECT_NEAR(p.phase_totals[idx(obs::TaskPhase::kTransfer)], 0.1, 1e-9);
  EXPECT_NEAR(p.phase_totals[idx(obs::TaskPhase::kCompute)], 0.2, 1e-9);
  EXPECT_NEAR(p.phase_totals[idx(obs::TaskPhase::kDrain)], 0.1, 1e-9);

  const Calibration c = planner::calibrate(w);
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_TRUE(c.calibrated);
  EXPECT_NEAR(c.rel_error, 0.0, 1e-9);
}

TEST_F(PlannerTest, BucketSerializationMakespanKnownByConstruction) {
  // Two 0.3 s tasks arriving together on one recorded bucket: the
  // recorded run serialized them (makespan 0.6), and so must the
  // replay. Doubling the buckets halves the predicted makespan.
  std::vector<obs::EventRecord> log;
  add_task(&log, 0, 0, 1, 64, 0.0, 0.0, 0.1, 0.1, 0.3);
  add_task(&log, 0, 0, 2, 64, 0.0, 0.3, 0.1, 0.1, 0.6);
  const Workload w = workload_from(log);
  ASSERT_TRUE(w.ok) << w.error;
  EXPECT_EQ(w.recorded_buckets, 1);
  EXPECT_NEAR(w.measured_makespan_s, 0.6, 1e-9);

  const Prediction one = planner::replay(w, Scenario{});
  ASSERT_TRUE(one.ok) << one.error;
  EXPECT_NEAR(one.makespan_s, 0.6, 1e-9);
  // The second task waits exactly the first task's service time.
  EXPECT_NEAR(one.phase_totals[idx(obs::TaskPhase::kQueue)], 0.3, 1e-9);
  EXPECT_NEAR(one.utilization, 1.0, 1e-9);

  Scenario two;
  two.buckets = 2;
  const Prediction par = planner::replay(w, two);
  ASSERT_TRUE(par.ok) << par.error;
  EXPECT_NEAR(par.makespan_s, 0.3, 1e-9);
  EXPECT_NEAR(par.phase_totals[idx(obs::TaskPhase::kQueue)], 0.0, 1e-9);

  const Calibration c = planner::calibrate(w);
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_TRUE(c.calibrated);
  EXPECT_NEAR(c.rel_error, 0.0, 1e-9);
}

TEST_F(PlannerTest, QueueCapShedsOrDegradesDeterministically) {
  // Three simultaneous 0.2 s tasks, one bucket, queue capped at one
  // waiter. The matcher is work-conserving, so task 1 dispatches onto
  // the idle bucket at arrival, task 2 takes the single queue slot, and
  // task 3 hits the wall and diverts.
  std::vector<obs::EventRecord> log;
  add_task(&log, 0, 0, 1, 64, 0.0, 0.0, 0.0, 0.2, 0.2);
  add_task(&log, 0, 0, 2, 64, 0.0, 0.2, 0.0, 0.2, 0.4);
  add_task(&log, 0, 0, 3, 64, 0.0, 0.4, 0.0, 0.2, 0.6);
  const Workload w = workload_from(log);
  ASSERT_TRUE(w.ok) << w.error;

  Scenario shed;
  shed.queue_depth = 1;
  shed.divert = DivertMode::kShed;
  const Prediction ps = planner::replay(w, shed);
  ASSERT_TRUE(ps.ok) << ps.error;
  EXPECT_EQ(ps.completed, 2u);
  EXPECT_EQ(ps.shed, 1u);
  EXPECT_EQ(ps.peak_queue_depth, 1);
  // Tasks 1 and 2 serialize on the bucket; the shed task costs nothing.
  EXPECT_NEAR(ps.makespan_s, 0.4, 1e-9);

  Scenario degrade = shed;
  degrade.divert = DivertMode::kDegrade;
  const Prediction pd = planner::replay(w, degrade);
  ASSERT_TRUE(pd.ok) << pd.error;
  EXPECT_EQ(pd.completed, 2u);
  EXPECT_EQ(pd.degraded, 1u);
  // The diverted task runs at in-situ (compute-only) cost from t=0 and
  // finishes at 0.2, inside the bucket tasks' 0.4 s makespan.
  EXPECT_NEAR(pd.makespan_s, 0.4, 1e-9);
}

TEST_F(PlannerTest, FairShareBreaksTiesByTenantAndDivergesFromFcfs) {
  // Tenant 2's short tasks are admitted first, tenant 1's long task
  // last. Under both policies tenant 2's first task grabs the idle
  // bucket at arrival; at its completion FCFS keeps admission order,
  // while fair-share picks the least-served tenant — tenant 1 — so the
  // 1.0 s task jumps ahead of tenant 2's second and the turnarounds
  // shift.
  std::vector<obs::EventRecord> log;
  add_task(&log, 2, 0, 1, 64, 0.0, 0.0, 0.0, 0.1, 0.1);
  add_task(&log, 2, 0, 2, 64, 0.0, 0.1, 0.0, 0.1, 0.2);
  add_task(&log, 1, 0, 3, 64, 0.0, 0.2, 0.0, 1.0, 1.2);
  const Workload w = workload_from(log);
  ASSERT_TRUE(w.ok) << w.error;
  ASSERT_EQ(w.tenants.size(), 2u);

  const Prediction fcfs = planner::replay(w, Scenario{});
  ASSERT_TRUE(fcfs.ok) << fcfs.error;
  EXPECT_NEAR(fcfs.makespan_s, 1.2, 1e-9);
  EXPECT_NEAR(fcfs.total_turnaround_s, 0.1 + 0.2 + 1.2, 1e-9);

  Scenario fair;
  fair.policy = QueuePolicy::kFair;
  const Prediction pf = planner::replay(w, fair);
  ASSERT_TRUE(pf.ok) << pf.error;
  EXPECT_NEAR(pf.makespan_s, 1.2, 1e-9);
  // Order: t2a [0,0.1], t1 [0.1,1.1], t2b [1.1,1.2].
  EXPECT_NEAR(pf.total_turnaround_s, 0.1 + 1.1 + 1.2, 1e-9);
}

TEST_F(PlannerTest, ModeledTransfersUseTheNetworkModel) {
  // Re-modeling replaces the recorded 0.1 s transfer with the Gemini
  // model's cost for the task's input bytes on an idle link.
  std::vector<obs::EventRecord> log;
  add_task(&log, 0, 0, 1, 1 << 20, 0.0, 0.0, 0.1, 0.2, 0.4);
  const Workload w = workload_from(log);
  ASSERT_TRUE(w.ok) << w.error;

  Scenario modeled;
  modeled.model_network = true;
  const Prediction p = planner::replay(w, modeled);
  ASSERT_TRUE(p.ok) << p.error;
  const double expected =
      NetworkModel(modeled.net).transfer_seconds(1 << 20, 1);
  EXPECT_NEAR(p.phase_totals[idx(obs::TaskPhase::kTransfer)], expected,
              1e-12);
  // compute + drain still replay at recorded cost.
  EXPECT_NEAR(p.makespan_s, expected + 0.2 + 0.1, 1e-9);

  // A codec ratio shrinks the modeled wire bytes.
  Scenario quant = modeled;
  quant.codec_ratio = 0.25;
  const Prediction pq = planner::replay(w, quant);
  ASSERT_TRUE(pq.ok) << pq.error;
  EXPECT_NEAR(pq.phase_totals[idx(obs::TaskPhase::kTransfer)],
              NetworkModel(quant.net).transfer_seconds((1 << 20) / 4, 1),
              1e-12);
}

TEST_F(PlannerTest, PredictedPartitionTelescopesExactly) {
  // The same conservation property attribution enforces on recordings
  // holds for predictions by construction: phase totals sum to the
  // total turnaround.
  std::vector<obs::EventRecord> log;
  add_task(&log, 0, 0, 1, 64, 0.0, 0.0, 0.1, 0.1, 0.3);
  add_task(&log, 1, 0, 2, 64, 0.05, 0.3, 0.1, 0.1, 0.6);
  add_task(&log, 2, 0, 3, 64, 0.10, 0.6, 0.1, 0.1, 0.9);
  const Workload w = workload_from(log);
  ASSERT_TRUE(w.ok) << w.error;
  Scenario sc;
  sc.credits = 1;  // force admission waits too
  const Prediction p = planner::replay(w, sc);
  ASSERT_TRUE(p.ok) << p.error;
  double sum = 0.0;
  for (int i = 0; i < obs::kPhaseCount; ++i) sum += p.phase_totals[i];
  EXPECT_NEAR(sum, p.total_turnaround_s, 1e-9);
  EXPECT_GT(p.phase_totals[idx(obs::TaskPhase::kAdmit)], 0.0);
}

// ------------------------------------------------------- fail closed

TEST_F(PlannerTest, DroppedRecordsFailClosed) {
  std::vector<obs::EventRecord> log;
  add_task(&log, 0, 0, 1, 64, 0.0, 0.0, 0.0, 0.1, 0.1);
  const Workload w =
      planner::extract_workload(obs::attribute_events(log, /*dropped=*/3));
  EXPECT_FALSE(w.ok);
  EXPECT_NE(w.error.find("dropped"), std::string::npos) << w.error;
  // Replay and calibration inherit the refusal.
  EXPECT_FALSE(planner::replay(w, Scenario{}).ok);
  EXPECT_FALSE(planner::calibrate(w).ok);
}

TEST_F(PlannerTest, DroppedSpillFileFailsClosed) {
  // A real ring overflow: capacity 8, more lifecycle records than fit.
  obs::set_events_capacity(8);
  obs::reset_events();
  for (int64_t id = 1; id <= 16; ++id) {
    obs::record_event(obs::EventKind::kTaskSubmit, 0, 0, id, 64, 0.1);
    obs::record_event(obs::EventKind::kTaskComplete, 0, 0, id, 1, 0.2);
  }
  ASSERT_GT(obs::dropped_event_records(), 0u);
  const std::string path = temp_path("planner_dropped.bin");
  ASSERT_TRUE(obs::write_events_file(path));
  const Workload w = planner::extract_workload_file(path);
  EXPECT_FALSE(w.ok);
  EXPECT_NE(w.error.find("dropped"), std::string::npos) << w.error;
  std::remove(path.c_str());
}

// ------------------------------------------- scenario + sweep grammar

TEST_F(PlannerTest, ScenarioSpecParsesKeysSuffixesAndDomains) {
  Scenario sc;
  std::string error;
  ASSERT_TRUE(planner::parse_scenario(
      "buckets=4,credits=8,queue-depth=16,divert=degrade,policy=fair",
      &sc, &error))
      << error;
  EXPECT_EQ(sc.buckets, 4);
  EXPECT_EQ(sc.credits, 8);
  EXPECT_EQ(sc.queue_depth, 16);
  EXPECT_EQ(sc.divert, DivertMode::kDegrade);
  EXPECT_EQ(sc.policy, QueuePolicy::kFair);
  EXPECT_FALSE(sc.model_network);

  // Network keys accept binary k/m/g suffixes (the overload-spec
  // convention) and imply xfer=modeled.
  ASSERT_TRUE(planner::parse_scenario("bte-bw=6g,smsg-max=4k", &sc, &error))
      << error;
  EXPECT_TRUE(sc.model_network);
  EXPECT_NEAR(sc.net.bte_bandwidth_Bps, 6.0 * 1024 * 1024 * 1024, 1e-3);
  EXPECT_EQ(sc.net.smsg_max_bytes, 4096u);

  // Named codecs map to their nominal ratios.
  ASSERT_TRUE(planner::parse_scenario("codec=quantize", &sc, &error));
  EXPECT_NEAR(sc.codec_ratio, planner::nominal_codec_ratio("quantize"),
              1e-12);

  Scenario bad;
  EXPECT_FALSE(planner::parse_scenario("buckets=0", &bad, &error));
  EXPECT_FALSE(planner::parse_scenario("bogus=1", &bad, &error));
  EXPECT_FALSE(planner::parse_scenario("divert=nowhere", &bad, &error));
  EXPECT_FALSE(planner::parse_scenario("buckets", &bad, &error));
  EXPECT_FALSE(planner::parse_scenario("codec=zstd", &bad, &error));
}

TEST_F(PlannerTest, SweepGrammarListsRangesAndSteps) {
  SweepSpec s;
  std::string error;
  ASSERT_TRUE(planner::parse_sweep("buckets=1..4", &s, &error)) << error;
  EXPECT_EQ(s.key, "buckets");
  EXPECT_EQ(s.values, (std::vector<std::string>{"1", "2", "3", "4"}));

  ASSERT_TRUE(planner::parse_sweep("arrival-scale=1..2:0.5", &s, &error))
      << error;
  EXPECT_EQ(s.values, (std::vector<std::string>{"1", "1.5", "2"}));

  ASSERT_TRUE(planner::parse_sweep("codec=raw,delta,quantize", &s, &error))
      << error;
  EXPECT_EQ(s.values,
            (std::vector<std::string>{"raw", "delta", "quantize"}));

  EXPECT_FALSE(planner::parse_sweep("buckets", &s, &error));
  EXPECT_FALSE(planner::parse_sweep("buckets=", &s, &error));
  EXPECT_FALSE(planner::parse_sweep("buckets=4..1", &s, &error));
  EXPECT_FALSE(planner::parse_sweep("buckets=1..4:0", &s, &error));
}

TEST_F(PlannerTest, SweepExpansionCrossesAxesRowMajor) {
  Scenario base;
  std::vector<SweepSpec> axes(2);
  std::string error;
  ASSERT_TRUE(planner::parse_sweep("buckets=1..2", &axes[0], &error));
  ASSERT_TRUE(planner::parse_sweep("credits=4,8", &axes[1], &error));
  std::vector<Scenario> grid;
  ASSERT_TRUE(planner::expand_sweeps(base, axes, &grid, &error)) << error;
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].label, "buckets=1;credits=4");
  EXPECT_EQ(grid[1].label, "buckets=1;credits=8");
  EXPECT_EQ(grid[2].label, "buckets=2;credits=4");
  EXPECT_EQ(grid[3].label, "buckets=2;credits=8");
  EXPECT_EQ(grid[3].buckets, 2);
  EXPECT_EQ(grid[3].credits, 8);

  // Swept values still pass scenario domain checks.
  ASSERT_TRUE(planner::parse_sweep("buckets=0..1", &axes[0], &error));
  EXPECT_FALSE(planner::expand_sweeps(base, {axes[0]}, &grid, &error));
}

}  // namespace
}  // namespace hia
