// Tests for the streaming in-transit combiner — including the central
// correctness property of the whole hybrid topology pipeline: combining
// per-block subtrees (computed independently, glued on shared boundary
// vertices) must reproduce the merge tree computed directly on the whole
// domain, for arbitrary fields and decompositions, in any arrival order.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>

#include "analysis/topology/local_tree.hpp"
#include "analysis/topology/stream_combine.hpp"
#include "sim/analytic_fields.hpp"
#include "sim/grid.hpp"

namespace hia {
namespace {

TEST(StreamingCombiner, SingleChainInAnyOrder) {
  // Path graph 1-2-3-4 with descending values: a single chain.
  StreamingCombiner c;
  c.insert_vertex(1, 4.0);
  c.insert_vertex(2, 3.0);
  c.insert_vertex(3, 2.0);
  c.insert_vertex(4, 1.0);
  // Edges inserted out of order.
  c.insert_edge(3, 4);
  c.insert_edge(1, 2);
  c.insert_edge(2, 3);
  const MergeTree t = c.finish();
  EXPECT_TRUE(t.validate().empty());
  // After eviction only the leaf and root survive.
  EXPECT_EQ(t.leaves().size(), 1u);
  EXPECT_EQ(t.roots().size(), 1u);
  EXPECT_EQ(t.nodes()[static_cast<size_t>(t.leaves()[0])].id, 1u);
  EXPECT_EQ(t.nodes()[static_cast<size_t>(t.roots()[0])].id, 4u);
}

TEST(StreamingCombiner, MergeAtSaddle) {
  // Two maxima (10, 9) merging at 6, root 2: W-shaped profile.
  StreamingCombiner c;
  c.insert_vertex(0, 10.0);
  c.insert_vertex(1, 8.0);
  c.insert_vertex(2, 6.0);
  c.insert_vertex(3, 9.0);
  c.insert_vertex(4, 2.0);
  c.insert_edge(0, 1);
  c.insert_edge(1, 2);
  c.insert_edge(3, 2);
  c.insert_edge(2, 4);
  const MergeTree t = c.finish();
  EXPECT_TRUE(t.validate().empty());
  EXPECT_EQ(t.leaves().size(), 2u);
  const auto pairs = persistence_pairs(t);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(pairs[0].persistence(), 8.0);
  EXPECT_DOUBLE_EQ(pairs[1].persistence(), 3.0);
}

TEST(StreamingCombiner, DuplicateVertexDeclarationsAreIdempotent) {
  StreamingCombiner c;
  c.insert_vertex(7, 1.5);
  EXPECT_NO_THROW(c.insert_vertex(7, 1.5));
  EXPECT_THROW(c.insert_vertex(7, 2.0), Error);
}

TEST(StreamingCombiner, EdgeNeedsDeclaredVertices) {
  StreamingCombiner c;
  c.insert_vertex(1, 1.0);
  EXPECT_THROW(c.insert_edge(1, 2), Error);
  EXPECT_THROW(c.insert_edge(1, 1), Error);
}

TEST(StreamingCombiner, FinalizationEvictsRegularVertices) {
  StreamingCombiner c;
  // Chain of 50 vertices; finalize as we go — memory must stay small.
  const int n = 50;
  c.insert_vertex(0, static_cast<double>(n));
  for (int i = 1; i < n; ++i) {
    c.insert_vertex(static_cast<uint64_t>(i), static_cast<double>(n - i));
    c.insert_edge(static_cast<uint64_t>(i - 1), static_cast<uint64_t>(i));
    if (i >= 2) c.finalize_vertex(static_cast<uint64_t>(i - 1));
  }
  // All interior chain vertices were evicted on the fly.
  EXPECT_GT(c.evicted_count(), static_cast<size_t>(n - 10));
  EXPECT_LT(c.live_nodes(), 10u);
  const MergeTree t = c.finish();
  EXPECT_EQ(t.leaves().size(), 1u);
}

TEST(StreamingCombiner, EvictionSinkReceivesArcs) {
  StreamingCombiner c;
  std::vector<EvictedArc> arcs;
  c.set_eviction_sink([&](const EvictedArc& a) { arcs.push_back(a); });
  c.insert_vertex(0, 3.0);
  c.insert_vertex(1, 2.0);
  c.insert_vertex(2, 1.0);
  c.insert_edge(0, 1);
  c.insert_edge(1, 2);
  c.finalize_vertex(1);
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_EQ(arcs[0].id, 1u);
  EXPECT_EQ(arcs[0].child_id, 0u);
  EXPECT_EQ(arcs[0].parent_id, 2u);
}

// ------------------------------------------------------------------------
// The distributed-equivalence property.
// ------------------------------------------------------------------------

struct CombineCase {
  std::array<int64_t, 3> dims;
  std::array<int, 3> ranks;
  int field;  // 0 = gaussian mixture, 1 = noise, 2 = sine product
  uint64_t seed;
};

class DistributedEquivalence : public ::testing::TestWithParam<CombineCase> {
};

std::vector<double> make_field(const GlobalGrid& grid, const Box3& box,
                               int kind, uint64_t seed) {
  Field f("v", box);
  switch (kind) {
    case 0:
      fill_gaussian_mixture(f, grid,
                            GaussianMixture::well_separated(6, 0.06, seed));
      break;
    case 1:
      fill_noise(f, seed);
      break;
    default:
      fill_sine_product(f, grid, 9.1, 7.3, 8.7);
      break;
  }
  return f.pack_owned();
}

TEST_P(DistributedEquivalence, CombinedSubtreesMatchGlobalTree) {
  const auto& [dims, ranks, kind, seed] = GetParam();
  GlobalGrid grid{dims, {1.0, 1.0, 1.0}};
  Decomposition decomp(grid, ranks);

  // Reference: reduced merge tree of the whole domain.
  const auto whole_values = make_field(grid, grid.bounds(), kind, seed);
  const MergeTree reference =
      build_local_tree(grid, grid.bounds(), whole_values).reduced();

  // Distributed: per-rank subtrees over extended blocks.
  std::vector<SubtreeData> subtrees;
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    const Box3 block = decomp.block(r);
    const Box3 ext = extended_block(grid, block);
    const auto values = make_field(grid, ext, kind, seed);
    subtrees.push_back(compute_rank_subtree(grid, block, values, ext));
  }

  const MergeTree combined = combine_subtrees(subtrees);
  EXPECT_TRUE(combined.validate().empty()) << combined.validate();
  EXPECT_TRUE(combined.reduced().same_structure(reference))
      << "combined " << combined.reduced().size() << " nodes vs reference "
      << reference.size();
}

TEST_P(DistributedEquivalence, ArrivalOrderInvariance) {
  const auto& [dims, ranks, kind, seed] = GetParam();
  GlobalGrid grid{dims, {1.0, 1.0, 1.0}};
  Decomposition decomp(grid, ranks);

  std::vector<SubtreeData> subtrees;
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    const Box3 block = decomp.block(r);
    const Box3 ext = extended_block(grid, block);
    subtrees.push_back(compute_rank_subtree(
        grid, block, make_field(grid, ext, kind, seed), ext));
  }

  const MergeTree in_order = combine_subtrees(subtrees).reduced();
  std::mt19937 shuffle_rng(1234);
  std::shuffle(subtrees.begin(), subtrees.end(), shuffle_rng);
  const MergeTree shuffled = combine_subtrees(subtrees).reduced();
  EXPECT_TRUE(in_order.same_structure(shuffled));
}

INSTANTIATE_TEST_SUITE_P(
    FieldsAndLayouts, DistributedEquivalence,
    ::testing::Values(CombineCase{{16, 16, 16}, {2, 2, 2}, 0, 5},
                      CombineCase{{16, 16, 16}, {4, 2, 1}, 0, 9},
                      CombineCase{{12, 10, 8}, {3, 2, 2}, 1, 17},
                      CombineCase{{8, 8, 8}, {2, 2, 2}, 1, 99},
                      CombineCase{{20, 18, 12}, {2, 3, 2}, 2, 0},
                      CombineCase{{16, 16, 16}, {1, 1, 1}, 0, 31},
                      CombineCase{{24, 8, 8}, {8, 1, 1}, 2, 0}));

TEST(StreamingCombiner, PeakMemoryBelowTotalWithFinalization) {
  // Insert many disjoint chains, finalizing each before the next: peak
  // memory must stay near one chain, not the whole stream.
  StreamingCombiner c;
  const uint64_t chains = 40, length = 50;
  for (uint64_t ch = 0; ch < chains; ++ch) {
    const uint64_t base = ch * 1000;
    for (uint64_t i = 0; i < length; ++i) {
      c.insert_vertex(base + i, static_cast<double>(length - i));
      if (i > 0) c.insert_edge(base + i - 1, base + i);
    }
    for (uint64_t i = 0; i < length; ++i) c.finalize_vertex(base + i);
  }
  EXPECT_LT(c.peak_live_nodes(), chains * length / 4);
  const MergeTree t = c.finish();
  EXPECT_EQ(t.roots().size(), chains);
}

}  // namespace
}  // namespace hia
