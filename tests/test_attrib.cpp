// Tests for timeline attribution (obs/attrib.hpp): hand-built synthetic
// event logs whose phase partition and critical path are known by
// construction — an all-phases single task, bucket-serialized tasks,
// step-barrier and credit-dependency chains — plus the fail-closed
// contract: a log with dropped records must refuse attribution, and a
// partition that cannot telescope must be flagged, never fudged.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/events.hpp"

namespace hia {
namespace {

class AttribTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_events();
    obs::enable_events();
    obs::set_events_capacity(16384);
  }
  void TearDown() override {
    obs::reset_events();
    obs::enable_events();
    obs::set_events_capacity(16384);
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }
};

/// Builds one record with a strictly increasing wall stamp (the spill
/// sorts by t_us; attribution orders by vt_s with t_us as tiebreak).
obs::EventRecord ev(obs::EventKind kind, int tenant, int bucket, int64_t a,
                    int64_t b, double vt) {
  static double wall_us = 0.0;
  obs::EventRecord r;
  r.t_us = (wall_us += 1.0);
  r.vt_s = vt;
  r.a = a;
  r.b = b;
  r.kind = static_cast<int32_t>(kind);
  r.tenant = tenant;
  r.bucket = bucket;
  return r;
}

int idx(obs::TaskPhase p) { return static_cast<int>(p); }

// ------------------------------------------------------ phase partition

TEST_F(AttribTest, AllSixPhasesPartitionExactly) {
  using K = obs::EventKind;
  // One task through every wait state: 0.5 s admission wait, first
  // attempt on bucket 0 fails and retries, second attempt on bucket 1
  // completes. Every number below is chosen by hand.
  std::vector<obs::EventRecord> log;
  log.push_back(ev(K::kTaskSubmit, 0, /*step=*/3, 1, 4096, 1.0));
  log.push_back(ev(K::kCreditGrant, 0, -1, 1, 500000, 1.0));   // 0.5 s
  log.push_back(ev(K::kTaskAssign, 0, 0, 1, 1, 1.2));          // queue 0.2
  log.push_back(ev(K::kTaskXfer, 0, 0, 1, 100000, 1.6));       // 0.1 s
  log.push_back(ev(K::kTaskWork, 0, 0, 1, 200000, 1.6));       // 0.2 s
  log.push_back(ev(K::kTaskRetry, 0, 0, 1, 1, 1.6));      // occ [1.2,1.6]
  log.push_back(ev(K::kBackoffRelease, 0, -1, 1, 2, 1.85));    // 0.25 s
  log.push_back(ev(K::kTaskAssign, 0, 1, 1, 2, 1.9));          // queue 0.05
  log.push_back(ev(K::kTaskXfer, 0, 1, 1, 50000, 2.3));        // 0.05 s
  log.push_back(ev(K::kTaskWork, 0, 1, 1, 250000, 2.3));       // 0.25 s
  log.push_back(ev(K::kTaskComplete, 0, 1, 1, 2, 2.3));   // occ [1.9,2.3]

  const obs::Attribution a = obs::attribute_events(log, 0);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(a.conserved) << a.error;
  ASSERT_EQ(a.tasks.size(), 1u);
  const obs::TaskTimeline& t = a.tasks.front();
  EXPECT_TRUE(t.conserved) << t.error;
  EXPECT_EQ(t.tenant, 0);
  EXPECT_EQ(t.step, 3);
  EXPECT_EQ(t.bucket, 1);
  EXPECT_EQ(t.attempts, 2);
  EXPECT_EQ(t.terminal_kind,
            static_cast<int32_t>(obs::EventKind::kTaskComplete));
  EXPECT_NEAR(t.phases[idx(obs::TaskPhase::kAdmit)], 0.5, 1e-9);
  EXPECT_NEAR(t.phases[idx(obs::TaskPhase::kQueue)], 0.25, 1e-9);
  EXPECT_NEAR(t.phases[idx(obs::TaskPhase::kBackoff)], 0.25, 1e-9);
  EXPECT_NEAR(t.phases[idx(obs::TaskPhase::kTransfer)], 0.15, 1e-9);
  EXPECT_NEAR(t.phases[idx(obs::TaskPhase::kCompute)], 0.45, 1e-9);
  EXPECT_NEAR(t.phases[idx(obs::TaskPhase::kDrain)], 0.2, 1e-9);
  // The property the layer exists for: the partition telescopes exactly.
  double sum = 0.0;
  for (int p = 0; p < obs::kPhaseCount; ++p) sum += t.phases[p];
  EXPECT_NEAR(sum, t.turnaround_s, 1e-9);
  EXPECT_NEAR(t.turnaround_s, 1.8, 1e-9);
  // Makespan runs from the start of the admission wait to the terminal.
  EXPECT_NEAR(a.makespan_s, 2.3 - 0.5, 1e-9);
}

TEST_F(AttribTest, ShedFromQueueIsAllQueueWait) {
  using K = obs::EventKind;
  std::vector<obs::EventRecord> log;
  log.push_back(ev(K::kTaskSubmit, 1, 0, 7, 128, 0.0));
  log.push_back(ev(K::kTaskShed, 1, -1, 7, 1, 0.75));
  const obs::Attribution a = obs::attribute_events(log, 0);
  ASSERT_TRUE(a.conserved) << a.error;
  ASSERT_EQ(a.tasks.size(), 1u);
  EXPECT_NEAR(a.tasks[0].phases[idx(obs::TaskPhase::kQueue)], 0.75, 1e-9);
  EXPECT_NEAR(a.tasks[0].turnaround_s, 0.75, 1e-9);
}

// -------------------------------------------------------- fail closed

TEST_F(AttribTest, DroppedRecordsFailClosed) {
  using K = obs::EventKind;
  std::vector<obs::EventRecord> log;
  log.push_back(ev(K::kTaskSubmit, 0, 0, 1, 64, 0.0));
  log.push_back(ev(K::kTaskComplete, 0, 0, 1, 1, 1.0));
  const obs::Attribution a = obs::attribute_events(log, /*dropped=*/3);
  EXPECT_FALSE(a.ok);
  EXPECT_FALSE(a.conserved);
  EXPECT_NE(a.error.find("dropped"), std::string::npos) << a.error;
  EXPECT_TRUE(a.tasks.empty());
  // And the critical path refuses to build on an unverifiable stream.
  EXPECT_FALSE(obs::extract_critical_path(a).ok);
}

TEST_F(AttribTest, DroppedSpillFileFailsClosed) {
  // A real ring overflow: capacity 8, more lifecycle records than fit.
  obs::set_events_capacity(8);
  obs::reset_events();
  for (int64_t id = 1; id <= 16; ++id) {
    obs::record_event(obs::EventKind::kTaskSubmit, 0, 0, id, 64, 0.1);
    obs::record_event(obs::EventKind::kTaskComplete, 0, 0, id, 1, 0.2);
  }
  ASSERT_GT(obs::dropped_event_records(), 0u);
  const std::string path = temp_path("attrib_dropped.bin");
  ASSERT_TRUE(obs::write_events_file(path));
  const obs::Attribution a = obs::attribute_events_file(path);
  EXPECT_FALSE(a.ok);
  EXPECT_FALSE(a.conserved);
  EXPECT_NE(a.error.find("dropped"), std::string::npos) << a.error;
  std::remove(path.c_str());
}

TEST_F(AttribTest, OverfullOccupancyIsFlaggedNotFudged) {
  using K = obs::EventKind;
  // 2.0 s of claimed work inside a 1.0 s occupancy window: drain would
  // have to be negative, so the partition must fail, not clamp.
  std::vector<obs::EventRecord> log;
  log.push_back(ev(K::kTaskSubmit, 0, 0, 1, 64, 0.0));
  log.push_back(ev(K::kTaskAssign, 0, 0, 1, 1, 0.0));
  log.push_back(ev(K::kTaskWork, 0, 0, 1, 2000000, 1.0));
  log.push_back(ev(K::kTaskComplete, 0, 0, 1, 1, 1.0));
  const obs::Attribution a = obs::attribute_events(log, 0);
  EXPECT_FALSE(a.conserved);
  ASSERT_EQ(a.tasks.size(), 1u);
  EXPECT_FALSE(a.tasks[0].conserved);
  EXPECT_FALSE(a.tasks[0].error.empty());
}

TEST_F(AttribTest, MissingTerminalIsStructuralFailure) {
  using K = obs::EventKind;
  std::vector<obs::EventRecord> log;
  log.push_back(ev(K::kTaskSubmit, 0, 0, 1, 64, 0.0));
  log.push_back(ev(K::kTaskAssign, 0, 0, 1, 1, 0.5));
  const obs::Attribution a = obs::attribute_events(log, 0);
  EXPECT_FALSE(a.ok);
  EXPECT_FALSE(a.conserved);
  EXPECT_NE(a.error.find("terminal"), std::string::npos) << a.error;
}

// ------------------------------------------------------- critical path

TEST_F(AttribTest, BucketSerializationExtendsTheCriticalPath) {
  using K = obs::EventKind;
  // Two tasks on one bucket. Task 2 submits at 0.2 and waits for the
  // bucket, so its own chain is 1.3 s — but the *causal* chain runs
  // through task 1's occupancy (1.0 s) into task 2's compute (0.5 s):
  // the unique critical path is 1.5 s, via the bucket-serialization edge.
  std::vector<obs::EventRecord> log;
  log.push_back(ev(K::kTaskSubmit, 0, 0, 1, 64, 0.0));
  log.push_back(ev(K::kTaskAssign, 0, 0, 1, 1, 0.0));
  log.push_back(ev(K::kTaskWork, 0, 0, 1, 1000000, 1.0));
  log.push_back(ev(K::kTaskComplete, 0, 0, 1, 1, 1.0));
  log.push_back(ev(K::kTaskSubmit, 0, 0, 2, 64, 0.2));
  log.push_back(ev(K::kTaskAssign, 0, 0, 2, 1, 1.0));
  log.push_back(ev(K::kTaskWork, 0, 0, 2, 500000, 1.5));
  log.push_back(ev(K::kTaskComplete, 0, 0, 2, 1, 1.5));

  const obs::Attribution a = obs::attribute_events(log, 0);
  ASSERT_TRUE(a.conserved) << a.error;
  const obs::CriticalPath cp = obs::extract_critical_path(a);
  ASSERT_TRUE(cp.ok) << cp.error;
  EXPECT_NEAR(cp.length_s, 1.5, 1e-9);
  EXPECT_NEAR(cp.longest_task_chain_s, 1.3, 1e-9);
  ASSERT_EQ(cp.path.size(), 2u);
  EXPECT_EQ(cp.path[0].task_id, 1u);
  EXPECT_EQ(cp.path[1].task_id, 2u);
  EXPECT_NEAR(cp.phase_on_path[idx(obs::TaskPhase::kCompute)], 1.5, 1e-9);
  // Structural bounds: never longer than the makespan, never shorter
  // than the longest single-task chain.
  EXPECT_LE(cp.length_s, a.makespan_s + 1e-9);
  EXPECT_GE(cp.length_s, cp.longest_task_chain_s - 1e-9);
}

TEST_F(AttribTest, StepBarrierChainsAcrossSteps) {
  using K = obs::EventKind;
  // Step 0's task finishes at 0.4, step 1's starts at 0.5 on another
  // bucket: no bucket edge, but the producer's step barrier links them.
  std::vector<obs::EventRecord> log;
  log.push_back(ev(K::kTaskSubmit, 0, /*step=*/0, 1, 64, 0.0));
  log.push_back(ev(K::kTaskAssign, 0, 0, 1, 1, 0.0));
  log.push_back(ev(K::kTaskWork, 0, 0, 1, 400000, 0.4));
  log.push_back(ev(K::kTaskComplete, 0, 0, 1, 1, 0.4));
  log.push_back(ev(K::kTaskSubmit, 0, /*step=*/1, 2, 64, 0.5));
  log.push_back(ev(K::kTaskAssign, 0, 1, 2, 1, 0.5));
  log.push_back(ev(K::kTaskWork, 0, 1, 2, 400000, 0.9));
  log.push_back(ev(K::kTaskComplete, 0, 1, 2, 1, 0.9));

  const obs::Attribution a = obs::attribute_events(log, 0);
  ASSERT_TRUE(a.conserved) << a.error;
  const obs::CriticalPath cp = obs::extract_critical_path(a);
  ASSERT_TRUE(cp.ok) << cp.error;
  // 0.4 + 0.4 across the barrier: longer than either task alone (0.4),
  // shorter than the makespan (0.9, which includes the 0.1 s gap).
  EXPECT_NEAR(cp.length_s, 0.8, 1e-9);
  EXPECT_NEAR(cp.longest_task_chain_s, 0.4, 1e-9);
  EXPECT_NEAR(a.makespan_s, 0.9, 1e-9);
  ASSERT_EQ(cp.path.size(), 2u);
  EXPECT_EQ(cp.path[0].task_id, 1u);
  EXPECT_EQ(cp.path[1].task_id, 2u);
}

TEST_F(AttribTest, CreditDependencyChainsThroughAdmissionWait) {
  using K = obs::EventKind;
  // Task 2's 0.3 s admission wait begins at 1.1, right after task 1's
  // terminal at 1.0 — the credit edge chains them: 1.0 + 0.6 = 1.6 s.
  // Same step and different buckets, so no other edge applies.
  std::vector<obs::EventRecord> log;
  log.push_back(ev(K::kTaskSubmit, 0, 0, 1, 64, 0.0));
  log.push_back(ev(K::kTaskAssign, 0, 0, 1, 1, 0.0));
  log.push_back(ev(K::kTaskWork, 0, 0, 1, 1000000, 1.0));
  log.push_back(ev(K::kTaskComplete, 0, 0, 1, 1, 1.0));
  log.push_back(ev(K::kTaskSubmit, 0, 0, 2, 64, 1.4));
  log.push_back(ev(K::kCreditGrant, 0, -1, 2, 300000, 1.4));
  log.push_back(ev(K::kTaskAssign, 0, 1, 2, 1, 1.5));
  log.push_back(ev(K::kTaskWork, 0, 1, 2, 200000, 1.7));
  log.push_back(ev(K::kTaskComplete, 0, 1, 2, 1, 1.7));

  const obs::Attribution a = obs::attribute_events(log, 0);
  ASSERT_TRUE(a.conserved) << a.error;
  const obs::CriticalPath cp = obs::extract_critical_path(a);
  ASSERT_TRUE(cp.ok) << cp.error;
  EXPECT_NEAR(cp.length_s, 1.6, 1e-9);
  EXPECT_NEAR(cp.longest_task_chain_s, 1.0, 1e-9);
  ASSERT_GE(cp.path.size(), 2u);
  EXPECT_EQ(cp.path.front().task_id, 1u);
  EXPECT_EQ(cp.path.back().task_id, 2u);
  // The admission-wait segment itself sits on the path.
  EXPECT_NEAR(cp.phase_on_path[idx(obs::TaskPhase::kAdmit)], 0.3, 1e-9);
}

TEST_F(AttribTest, TopChainsEndInDistinctTasks) {
  using K = obs::EventKind;
  std::vector<obs::EventRecord> log;
  for (int64_t id = 1; id <= 3; ++id) {
    const double base = 0.1 * static_cast<double>(id);
    log.push_back(ev(K::kTaskSubmit, 0, 0, id, 64, base));
    log.push_back(ev(K::kTaskAssign, 0, static_cast<int>(id), id, 1, base));
    log.push_back(ev(K::kTaskWork, 0, static_cast<int>(id), id,
                     100000 * id, base + 0.1 * static_cast<double>(id)));
    log.push_back(ev(K::kTaskComplete, 0, static_cast<int>(id), id, 1,
                     base + 0.1 * static_cast<double>(id)));
  }
  const obs::Attribution a = obs::attribute_events(log, 0);
  ASSERT_TRUE(a.conserved) << a.error;
  const obs::CriticalPath cp = obs::extract_critical_path(a, /*top_k=*/3);
  ASSERT_TRUE(cp.ok) << cp.error;
  ASSERT_EQ(cp.top_chains.size(), 3u);
  EXPECT_EQ(cp.top_chains[0].back().task_id, 3u);  // longest first
  // Chains are ranked longest-first and end in three distinct tasks.
  double prev = 1e30;
  std::vector<uint64_t> enders;
  for (const auto& chain : cp.top_chains) {
    double len = 0.0;
    for (const auto& n : chain) len += n.end_vt - n.begin_vt;
    EXPECT_LE(len, prev);
    prev = len;
    enders.push_back(chain.back().task_id);
  }
  EXPECT_NE(enders[0], enders[1]);
  EXPECT_NE(enders[1], enders[2]);
  EXPECT_NE(enders[0], enders[2]);
}

// ------------------------------------------------------ file round trip

TEST_F(AttribTest, SpillRoundTripAttributesConserved) {
  using K = obs::EventKind;
  obs::record_event(K::kTaskSubmit, 0, 0, 1, 64, 0.0);
  obs::record_event(K::kTaskAssign, 0, 0, 1, 1, 0.25);
  obs::record_event(K::kTaskXfer, 0, 0, 1, 100000, 1.0);
  obs::record_event(K::kTaskWork, 0, 0, 1, 500000, 1.0);
  obs::record_event(K::kTaskComplete, 0, 0, 1, 1, 1.0);
  const std::string path = temp_path("attrib_roundtrip.bin");
  ASSERT_TRUE(obs::write_events_file(path));
  const obs::Attribution a = obs::attribute_events_file(path);
  ASSERT_TRUE(a.conserved) << a.error;
  ASSERT_EQ(a.tasks.size(), 1u);
  EXPECT_NEAR(a.tasks[0].phases[idx(obs::TaskPhase::kQueue)], 0.25, 1e-9);
  EXPECT_NEAR(a.tasks[0].phases[idx(obs::TaskPhase::kTransfer)], 0.1, 1e-9);
  EXPECT_NEAR(a.tasks[0].phases[idx(obs::TaskPhase::kCompute)], 0.5, 1e-9);
  EXPECT_NEAR(a.tasks[0].phases[idx(obs::TaskPhase::kDrain)], 0.15, 1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hia
