// Tests for the statistics library: single-pass moment accuracy against
// brute force, pairwise-combination equivalence (the property the parallel
// learn stage relies on), the four-stage pattern, correlation, and
// histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "analysis/stats/correlation.hpp"
#include "analysis/stats/descriptive.hpp"
#include "analysis/stats/histogram.hpp"
#include "analysis/stats/moments.hpp"
#include "util/rng.hpp"

namespace hia {
namespace {

std::vector<double> random_data(size_t n, uint64_t seed, double scale = 1.0,
                                double offset = 0.0) {
  Xoshiro256 rng(seed);
  std::vector<double> out(n);
  for (auto& x : out) x = offset + scale * rng.normal();
  return out;
}

/// Brute-force centered moments for verification.
struct Brute {
  double mean = 0, m2 = 0, m3 = 0, m4 = 0;
};
Brute brute_force(const std::vector<double>& xs) {
  Brute b;
  for (const double x : xs) b.mean += x;
  b.mean /= static_cast<double>(xs.size());
  for (const double x : xs) {
    const double d = x - b.mean;
    b.m2 += d * d;
    b.m3 += d * d * d;
    b.m4 += d * d * d * d;
  }
  return b;
}

TEST(Moments, MatchesBruteForce) {
  const auto xs = random_data(5000, 1, 2.5, -1.0);
  const auto acc = stats_learn(xs);
  const auto bf = brute_force(xs);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), bf.mean, 1e-10);
  EXPECT_NEAR(acc.m2(), bf.m2, std::abs(bf.m2) * 1e-9);
  EXPECT_NEAR(acc.m3(), bf.m3, std::abs(bf.m2) * 1e-7);
  EXPECT_NEAR(acc.m4(), bf.m4, std::abs(bf.m4) * 1e-9);
  EXPECT_EQ(acc.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(acc.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(Moments, EmptyAndSingle) {
  MomentAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  acc.update(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.m2(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

class MomentsCombine : public ::testing::TestWithParam<int> {};

TEST_P(MomentsCombine, CombineEqualsSequential) {
  const int parts = GetParam();
  const auto xs = random_data(4096, 7, 3.0, 2.0);
  const auto whole = stats_learn(xs);

  // Split into `parts` unequal chunks, learn separately, combine.
  std::vector<MomentAccumulator> partials;
  size_t begin = 0;
  for (int p = 0; p < parts; ++p) {
    const size_t len = p + 1 == parts
                           ? xs.size() - begin
                           : (xs.size() / parts) + (p % 2 == 0 ? 17 : -17);
    partials.push_back(stats_learn(
        std::span(xs.data() + begin, std::min(len, xs.size() - begin))));
    begin += len;
  }
  const auto combined = stats_combine(partials);

  EXPECT_EQ(combined.count(), whole.count());
  EXPECT_NEAR(combined.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(combined.m2(), whole.m2(), std::abs(whole.m2()) * 1e-10);
  EXPECT_NEAR(combined.m3(), whole.m3(), std::abs(whole.m2()) * 1e-8);
  EXPECT_NEAR(combined.m4(), whole.m4(), std::abs(whole.m4()) * 1e-10);
  EXPECT_DOUBLE_EQ(combined.min(), whole.min());
  EXPECT_DOUBLE_EQ(combined.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Partitions, MomentsCombine,
                         ::testing::Values(2, 3, 4, 8, 16, 64));

TEST(Moments, CombineWithEmptySides) {
  const auto xs = random_data(100, 3);
  auto a = stats_learn(xs);
  const MomentAccumulator empty;
  auto b = a;
  b.combine(empty);
  EXPECT_EQ(b, a);
  MomentAccumulator c;
  c.combine(a);
  EXPECT_EQ(c, a);
}

TEST(Moments, PackUnpackRoundTrip) {
  const auto acc = stats_learn(random_data(500, 11));
  double packed[MomentAccumulator::kPackedSize];
  acc.pack(packed);
  EXPECT_EQ(MomentAccumulator::unpack(packed), acc);
}

TEST(Derive, KnownDistributions) {
  // Standard normal: variance 1, skew 0, excess kurtosis 0.
  const auto normal = derive_descriptive(stats_learn(random_data(200000, 5)));
  EXPECT_NEAR(normal.mean, 0.0, 0.02);
  EXPECT_NEAR(normal.variance, 1.0, 0.03);
  EXPECT_NEAR(normal.skewness, 0.0, 0.05);
  EXPECT_NEAR(normal.kurtosis_excess, 0.0, 0.1);

  // Uniform [0,1): variance 1/12, excess kurtosis -1.2.
  Xoshiro256 rng(8);
  std::vector<double> uni(200000);
  for (auto& x : uni) x = rng.uniform();
  const auto u = derive_descriptive(stats_learn(uni));
  EXPECT_NEAR(u.mean, 0.5, 0.01);
  EXPECT_NEAR(u.variance, 1.0 / 12.0, 0.002);
  EXPECT_NEAR(u.kurtosis_excess, -1.2, 0.05);
}

TEST(Assess, ZScores) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const auto model = derive_descriptive(stats_learn(xs));
  const auto z = stats_assess(xs, model);
  ASSERT_EQ(z.size(), xs.size());
  EXPECT_NEAR(z[2], 0.0, 1e-12);         // the mean
  EXPECT_NEAR(z[0], -z[4], 1e-12);       // symmetric
  EXPECT_LT(z[0], 0.0);
}

TEST(TestStage, NormalityStatistic) {
  // Normal data: small JB statistic / high p. Bimodal data: large JB.
  const auto normal =
      derive_descriptive(stats_learn(random_data(50000, 21)));
  const auto jb_normal = stats_test_normality(normal);
  EXPECT_LT(jb_normal.statistic, 12.0);

  Xoshiro256 rng(22);
  std::vector<double> bimodal(50000);
  for (auto& x : bimodal) x = (rng.uniform() < 0.5 ? -3.0 : 3.0) + rng.normal();
  const auto jb_bimodal =
      stats_test_normality(derive_descriptive(stats_learn(bimodal)));
  EXPECT_GT(jb_bimodal.statistic, 100.0);
  EXPECT_LT(jb_bimodal.p_value, 0.01);
}

TEST(Covariance, PerfectLinearRelation) {
  CovarianceAccumulator acc;
  for (int i = 0; i < 100; ++i) {
    acc.update(i, 2.0 * i + 5.0);
  }
  const auto m = derive_correlation(acc);
  EXPECT_NEAR(m.pearson_r, 1.0, 1e-12);
  EXPECT_NEAR(m.slope, 2.0, 1e-10);
  EXPECT_NEAR(m.intercept, 5.0, 1e-8);
}

TEST(Covariance, IndependentVariablesNearZero) {
  Xoshiro256 rng(31);
  CovarianceAccumulator acc;
  for (int i = 0; i < 100000; ++i) acc.update(rng.normal(), rng.normal());
  EXPECT_NEAR(derive_correlation(acc).pearson_r, 0.0, 0.02);
}

class CovCombine : public ::testing::TestWithParam<int> {};

TEST_P(CovCombine, CombineEqualsSequential) {
  const int parts = GetParam();
  Xoshiro256 rng(41);
  std::vector<double> x(3000), y(3000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = 0.7 * x[i] + 0.3 * rng.normal();
  }
  const auto whole = correlation_learn(x, y);

  CovarianceAccumulator combined;
  const size_t chunk = x.size() / static_cast<size_t>(parts);
  for (int p = 0; p < parts; ++p) {
    const size_t b = static_cast<size_t>(p) * chunk;
    const size_t e = p + 1 == parts ? x.size() : b + chunk;
    combined.combine(correlation_learn(
        std::span(x.data() + b, e - b), std::span(y.data() + b, e - b)));
  }
  EXPECT_EQ(combined.count(), whole.count());
  EXPECT_NEAR(combined.c2(), whole.c2(), std::abs(whole.c2()) * 1e-10);
  EXPECT_NEAR(derive_correlation(combined).pearson_r,
              derive_correlation(whole).pearson_r, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Partitions, CovCombine, ::testing::Values(2, 5, 30));

TEST(Autocorrelation, PeriodicSignal) {
  std::vector<double> series(1000);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 50.0);
  }
  EXPECT_NEAR(autocorrelation(series, 50).pearson_r, 1.0, 1e-6);
  EXPECT_NEAR(autocorrelation(series, 25).pearson_r, -1.0, 1e-6);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.update(i + 0.5);
  h.update(-1.0);
  h.update(11.0);
  h.update(10.0);  // hi is exclusive -> overflow
  for (int b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 13u);
}

TEST(Histogram, CombineMatchesUnion) {
  Histogram a(0.0, 1.0, 20), b(0.0, 1.0, 20), whole(0.0, 1.0, 20);
  Xoshiro256 rng(55);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform();
    whole.update(x);
    (i % 2 == 0 ? a : b).update(x);
  }
  a.combine(b);
  for (int bin = 0; bin < 20; ++bin) EXPECT_EQ(a.count(bin), whole.count(bin));
  EXPECT_EQ(a.total(), whole.total());
}

TEST(Histogram, CombineRejectsMismatchedBinning) {
  Histogram a(0.0, 1.0, 10), b(0.0, 2.0, 10);
  EXPECT_THROW(a.combine(b), Error);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Xoshiro256 rng(66);
  for (int i = 0; i < 100000; ++i) h.update(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 0.02);
}

}  // namespace
}  // namespace hia
