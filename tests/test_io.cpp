// Tests for the I/O layer: BP-lite container integrity, file-per-process
// checkpointing, and the OST bandwidth model's Table I property (I/O time
// independent of core count once the OST pool saturates).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <mutex>

#include "io/bp_lite.hpp"
#include "io/checkpoint.hpp"
#include "io/ost_model.hpp"
#include "runtime/comm.hpp"
#include "util/rng.hpp"

namespace hia {
namespace {

TEST(BpLite, SerializeParseRoundTrip) {
  std::vector<BpEntry> entries;
  entries.push_back({"T", Box3{{0, 0, 0}, {2, 2, 2}}, {1, 2, 3, 4, 5, 6, 7, 8}});
  entries.push_back({"Y_H2", Box3{{2, 0, 0}, {3, 1, 1}}, {0.5}});
  entries.push_back({"empty", Box3{}, {}});

  const auto bytes = bp_serialize(entries);
  const auto parsed = bp_parse(bytes);
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].name, "T");
  EXPECT_EQ(parsed[0].box, entries[0].box);
  EXPECT_EQ(parsed[0].values, entries[0].values);
  EXPECT_EQ(parsed[1].values[0], 0.5);
  EXPECT_TRUE(parsed[2].values.empty());
}

TEST(BpLite, RejectsCorruptInput) {
  std::vector<BpEntry> entries{{"x", Box3{{0, 0, 0}, {1, 1, 1}}, {1.0}}};
  auto bytes = bp_serialize(entries);

  // Bad magic.
  auto bad = bytes;
  bad[0] = std::byte{'X'};
  EXPECT_THROW(bp_parse(bad), Error);

  // Truncated payload.
  auto trunc = bytes;
  trunc.resize(trunc.size() - 4);
  EXPECT_THROW(bp_parse(trunc), Error);

  // Trailing garbage.
  auto extra = bytes;
  extra.push_back(std::byte{0});
  EXPECT_THROW(bp_parse(extra), Error);

  // Too short for the header.
  EXPECT_THROW(bp_parse(std::vector<std::byte>(3)), Error);
}

TEST(BpLite, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hia_bp_test.bp";
  std::vector<BpEntry> entries;
  Xoshiro256 rng(5);
  BpEntry e{"field", Box3{{0, 0, 0}, {4, 4, 4}}, {}};
  for (int i = 0; i < 64; ++i) e.values.push_back(rng.normal());
  entries.push_back(e);
  bp_write_file(path, entries);
  const auto parsed = bp_read_file(path);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].values, e.values);
  std::remove(path.c_str());
}

TEST(BpLite, MissingFileThrows) {
  EXPECT_THROW(bp_read_file("/nonexistent/dir/file.bp"), Error);
}

TEST(Checkpoint, WriteReadAllVariables) {
  S3DParams p;
  p.grid = GlobalGrid{{16, 8, 8}, {1.0, 0.5, 0.5}};
  p.ranks_per_axis = {1, 1, 1};
  S3DRank sim(p, 0);
  sim.initialize();

  const std::string dir = ::testing::TempDir();
  const auto result = write_checkpoint(sim, dir, "ckpt_test");
  EXPECT_EQ(result.bytes, sim.solution_bytes());
  EXPECT_GT(result.measured_seconds, 0.0);

  const auto entries = read_checkpoint(result.path);
  // 14 variables + the restart metadata entry.
  ASSERT_EQ(entries.size(), static_cast<size_t>(kNumVariables) + 1);
  EXPECT_EQ(entries.back().name, "__meta");
  // Entry order matches the Variable enum; values match the live fields.
  for (int v = 0; v < kNumVariables; ++v) {
    EXPECT_EQ(entries[static_cast<size_t>(v)].name,
              kVariableNames[static_cast<size_t>(v)]);
    EXPECT_EQ(entries[static_cast<size_t>(v)].values,
              sim.field(static_cast<Variable>(v)).pack_owned());
  }
  std::remove(result.path.c_str());
}

TEST(Checkpoint, RestartReproducesUninterruptedRun) {
  S3DParams p;
  p.grid = GlobalGrid{{16, 12, 12}, {1.0, 0.75, 0.75}};
  p.ranks_per_axis = {2, 1, 1};
  Decomposition d(p.grid, p.ranks_per_axis);
  const std::string dir = ::testing::TempDir();

  // Uninterrupted: 5 steps. Interrupted: 3 steps, checkpoint, restore into
  // fresh state, 2 more steps. Fields must match bit-for-bit.
  std::vector<std::vector<double>> uninterrupted(
      static_cast<size_t>(d.num_ranks()));
  std::vector<std::string> ckpts(static_cast<size_t>(d.num_ranks()));
  {
    World world(d.num_ranks());
    std::mutex m;
    world.run([&](Comm& comm) {
      S3DRank sim(p, comm.rank());
      sim.initialize();
      for (int s = 0; s < 3; ++s) sim.advance(comm);
      const auto result = write_checkpoint(sim, dir, "restart_test");
      for (int s = 0; s < 2; ++s) sim.advance(comm);
      std::lock_guard lock(m);
      ckpts[static_cast<size_t>(comm.rank())] = result.path;
      uninterrupted[static_cast<size_t>(comm.rank())] =
          sim.field(Variable::kTemperature).pack_owned();
    });
  }
  {
    World world(d.num_ranks());
    world.run([&](Comm& comm) {
      S3DRank sim(p, comm.rank());  // fresh, never initialized
      restore_checkpoint(sim, ckpts[static_cast<size_t>(comm.rank())]);
      EXPECT_EQ(sim.step(), 3);
      EXPECT_NEAR(sim.time(), 3 * p.dt, 1e-15);
      for (int s = 0; s < 2; ++s) sim.advance(comm);
      const auto mine = sim.field(Variable::kTemperature).pack_owned();
      const auto& ref =
          uninterrupted[static_cast<size_t>(comm.rank())];
      ASSERT_EQ(mine.size(), ref.size());
      for (size_t i = 0; i < mine.size(); ++i) {
        ASSERT_EQ(mine[i], ref[i]) << "voxel " << i;
      }
    });
  }
  for (const auto& f : ckpts) std::remove(f.c_str());
}

TEST(Checkpoint, RestoreRejectsWrongDecomposition) {
  S3DParams p;
  p.grid = GlobalGrid{{16, 12, 12}, {1.0, 0.75, 0.75}};
  p.ranks_per_axis = {1, 1, 1};
  S3DRank sim(p, 0);
  sim.initialize();
  const auto result =
      write_checkpoint(sim, ::testing::TempDir(), "wrong_decomp");

  S3DParams p2 = p;
  p2.ranks_per_axis = {2, 1, 1};
  S3DRank other(p2, 0);
  EXPECT_THROW(restore_checkpoint(other, result.path), Error);
  std::remove(result.path.c_str());
}

TEST(Checkpoint, BytesMatchGridAccounting) {
  GlobalGrid grid{{100, 49, 43}, {1, 1, 1}};
  EXPECT_EQ(checkpoint_bytes(grid),
            static_cast<size_t>(100) * 49 * 43 * 14 * 8);
}

TEST(OstModel, BandwidthSaturatesAtOstCount) {
  OstParams p;
  p.num_osts = 100;
  p.ost_bandwidth_Bps = 1e9;
  OstModel model(p);
  EXPECT_DOUBLE_EQ(model.aggregate_bandwidth(10), 1e10);
  EXPECT_DOUBLE_EQ(model.aggregate_bandwidth(100), 1e11);
  EXPECT_DOUBLE_EQ(model.aggregate_bandwidth(5000), 1e11);  // capped
}

TEST(OstModel, TableOneCoreCountIndependence) {
  // The paper's observation: with constant total data, I/O times do not
  // depend noticeably on the number of cores (both configs exceed the OST
  // count).
  OstModel model;
  const size_t bytes = static_cast<size_t>(98.5 * (1ull << 30));
  const double t4480 = model.write_seconds(bytes, 4480);
  const double t8960 = model.write_seconds(bytes, 8960);
  EXPECT_NEAR(t4480, t8960, 1e-9);

  // And the paper's actual scale: ~3.3 s to write 98.5 GB.
  EXPECT_GT(t4480, 0.2);
  EXPECT_LT(t4480, 30.0);
}

TEST(OstModel, ReadSlowerThanWrite) {
  OstModel model;
  const size_t bytes = 1ull << 30;
  EXPECT_GT(model.read_seconds(bytes, 512), model.write_seconds(bytes, 512));
}

TEST(OstModel, FewWritersAreBandwidthLimited) {
  OstParams p;
  p.num_osts = 672;
  OstModel model(p);
  const size_t bytes = 1ull << 30;
  // 1 writer uses one OST; 672 writers use all of them.
  EXPECT_GT(model.write_seconds(bytes, 1),
            600.0 * model.write_seconds(bytes, 672) /
                1.5);  // within open-cost slack
}

TEST(OstModel, RejectsInvalidParameters) {
  OstParams p;
  p.num_osts = 0;
  EXPECT_THROW(OstModel{p}, Error);
  OstModel ok;
  EXPECT_THROW((void)ok.write_seconds(100, 0), Error);
}

}  // namespace
}  // namespace hia
