// Tests for the visualization stack: ray/AABB intersection, the camera,
// transfer functions, trilinear brick sampling, rendering, compositing,
// down-sampling, the block look-up table, and image metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "analysis/viz/block_lut.hpp"
#include "analysis/viz/compositor.hpp"
#include "analysis/viz/raycast.hpp"
#include "analysis/viz/slice.hpp"
#include "sim/analytic_fields.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hia {
namespace {

TEST(Aabb, IntersectHitAndMiss) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  double t0, t1;
  Ray hit{{-1, 0.5, 0.5}, {1, 0, 0}};
  ASSERT_TRUE(box.intersect(hit, t0, t1));
  EXPECT_NEAR(t0, 1.0, 1e-12);
  EXPECT_NEAR(t1, 2.0, 1e-12);

  Ray miss{{-1, 2.0, 0.5}, {1, 0, 0}};
  EXPECT_FALSE(box.intersect(miss, t0, t1));

  Ray parallel_inside{{0.5, 0.5, 0.5}, {0, 0, 1}};
  EXPECT_TRUE(box.intersect(parallel_inside, t0, t1));

  Ray diagonal{{-1, -1, -1}, Vec3{1, 1, 1}.normalized()};
  EXPECT_TRUE(box.intersect(diagonal, t0, t1));
}

TEST(Camera, RaysAreParallelAndCoverFilm) {
  const OrthoCamera cam({0, 0, -2}, {0, 0, 0}, {0, 1, 0}, 2.0, 2.0, 8, 8);
  const Ray r1 = cam.ray(0, 0);
  const Ray r2 = cam.ray(7, 7);
  EXPECT_NEAR((r1.direction - r2.direction).norm(), 0.0, 1e-12);
  EXPECT_NEAR(r1.direction.z, 1.0, 1e-12);
  // Film corners span the requested extent. A viewer facing +z with +y up
  // has -x to their right, so pixel x increases toward world -x.
  EXPECT_GT(r1.origin.x, r2.origin.x);
  EXPECT_NEAR(r1.origin.x - r2.origin.x, 2.0 * 7.0 / 8.0, 1e-12);
  EXPECT_NEAR(r2.origin.y - r1.origin.y, 2.0 * 7.0 / 8.0, 1e-12);
}

TEST(TransferFunction, InterpolatesControlPoints) {
  TransferFunction tf({{0.0, {0, 0, 0, 0}}, {1.0, {1, 0, 0, 0.5}}});
  const Rgba mid = tf.sample(0.5);
  EXPECT_NEAR(mid.r, 0.5, 1e-6);
  EXPECT_NEAR(mid.a, 0.25, 1e-6);
  // Clamping outside the range.
  EXPECT_NEAR(tf.sample(-5.0).a, 0.0, 1e-6);
  EXPECT_NEAR(tf.sample(5.0).a, 0.5, 1e-6);
}

TEST(TransferFunction, RejectsBadControlPoints) {
  std::vector<TransferFunction::ControlPoint> one{{0.0, Rgba{}}};
  EXPECT_THROW(TransferFunction{one}, Error);
  std::vector<TransferFunction::ControlPoint> unsorted{{1.0, Rgba{}},
                                                       {0.5, Rgba{}}};
  EXPECT_THROW(TransferFunction{unsorted}, Error);
}

TEST(TransferFunction, AlphaCorrectionIdentityAndHalving) {
  EXPECT_NEAR(TransferFunction::corrected_alpha(0.4f, 0.01, 0.01), 0.4f,
              1e-6f);
  // Halving the step: compositing two corrected steps equals one original.
  const float half = TransferFunction::corrected_alpha(0.4f, 0.005, 0.01);
  const float two_steps = 1.0f - (1.0f - half) * (1.0f - half);
  EXPECT_NEAR(two_steps, 0.4f, 1e-5f);
}

TEST(BrickSampler, ReproducesLinearFieldExactly) {
  GlobalGrid grid{{10, 10, 10}, {1.0, 1.0, 1.0}};
  const Box3 box = grid.bounds();
  Field f("v", box);
  fill_from_function(f, grid, [](const Vec3& x) {
    return 2.0 * x.x - 3.0 * x.y + 0.5 * x.z + 1.0;
  });
  const auto values = f.pack_owned();
  const BrickSampler sampler(grid, box, values);

  Xoshiro256 rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    // Stay inside the sample lattice (trilinear is exact for linear
    // fields only between sample points).
    const Vec3 p{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                 rng.uniform(0.1, 0.9)};
    double v = 0.0;
    ASSERT_TRUE(sampler.sample(p, v));
    EXPECT_NEAR(v, 2.0 * p.x - 3.0 * p.y + 0.5 * p.z + 1.0, 1e-10);
  }
}

TEST(RenderVolume, EmptyTransferFunctionGivesBlankImage) {
  GlobalGrid grid{{8, 8, 8}, {1.0, 1.0, 1.0}};
  Field f("v", grid.bounds());
  f.fill(0.0);
  const auto values = f.pack_owned();
  const BrickSampler sampler(grid, grid.bounds(), values);
  TransferFunction tf({{0.0, {0, 0, 0, 0}}, {1.0, {1, 1, 1, 0.9}}});
  const OrthoCamera cam = OrthoCamera::default_view({1, 1, 1}, 16, 16);
  Image img(16, 16);
  render_volume(cam, sampler, physical_bounds(grid, grid.bounds()), tf,
                RenderParams{}, img);
  for (const Rgba& p : img.pixels()) EXPECT_EQ(p.a, 0.0f);
}

TEST(RenderVolume, OpaqueFieldCoversCenterPixels) {
  GlobalGrid grid{{8, 8, 8}, {1.0, 1.0, 1.0}};
  Field f("v", grid.bounds());
  f.fill(1.0);
  const auto values = f.pack_owned();
  const BrickSampler sampler(grid, grid.bounds(), values);
  TransferFunction tf({{0.0, {1, 0, 0, 0.0}}, {1.0, {1, 0, 0, 0.95}}});
  const OrthoCamera cam = OrthoCamera::default_view({1, 1, 1}, 17, 17);
  Image img(17, 17);
  render_volume(cam, sampler, physical_bounds(grid, grid.bounds()), tf,
                RenderParams{}, img);
  const Rgba center = img.at(8, 8);
  EXPECT_GT(center.a, 0.9f);
  EXPECT_GT(center.r, 0.8f);
  EXPECT_EQ(center.g, 0.0f);
}

TEST(Compositor, FrontOccludesBack) {
  Image red(4, 4), blue(4, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      red.at(x, y) = {1, 0, 0, 1};   // opaque red
      blue.at(x, y) = {0, 0, 1, 1};  // opaque blue
    }
  }
  std::vector<BrickImage> bricks;
  bricks.push_back({blue, 2.0});  // farther
  bricks.push_back({red, 1.0});   // nearer
  const Image out = composite(std::move(bricks));
  EXPECT_EQ(out.at(2, 2).r, 1.0f);
  EXPECT_EQ(out.at(2, 2).b, 0.0f);
}

TEST(Compositor, TranslucentBlend) {
  Image a(1, 1), b(1, 1);
  a.at(0, 0) = {0.5f, 0, 0, 0.5f};  // premultiplied half-red in front
  b.at(0, 0) = {0, 0.8f, 0, 0.8f};  // premultiplied green behind
  std::vector<BrickImage> bricks{{a, 0.0}, {b, 1.0}};
  const Image out = composite(std::move(bricks));
  EXPECT_NEAR(out.at(0, 0).r, 0.5f, 1e-6f);
  EXPECT_NEAR(out.at(0, 0).g, 0.4f, 1e-6f);  // 0.8 * (1 - 0.5)
  EXPECT_NEAR(out.at(0, 0).a, 0.9f, 1e-6f);
}

TEST(Downsample, StrideGridAndValues) {
  const Box3 box{{0, 0, 0}, {9, 9, 9}};
  std::vector<double> values(729);
  for (size_t i = 0; i < values.size(); ++i) values[i] = static_cast<double>(i);
  const auto block = downsample_block(box, values, 4);
  EXPECT_EQ(block.samples[0], 3);  // indices 0, 4, 8
  EXPECT_EQ(block.values.size(), 27u);
  EXPECT_DOUBLE_EQ(block.values[0], 0.0);
  EXPECT_DOUBLE_EQ(block.values[1], 4.0);            // (4,0,0)
  EXPECT_DOUBLE_EQ(block.values[3], 4.0 * 9.0);      // (0,4,0)
  EXPECT_NEAR(downsample_ratio(block), 729.0 / 27.0, 1e-12);
}

TEST(Downsample, StrideOneIsIdentity) {
  const Box3 box{{2, 2, 2}, {5, 5, 5}};
  std::vector<double> values(27, 3.5);
  const auto block = downsample_block(box, values, 1);
  EXPECT_EQ(block.values.size(), 27u);
  EXPECT_DOUBLE_EQ(downsample_ratio(block), 1.0);
}

TEST(Downsample, SerializeRoundTrip) {
  const Box3 box{{8, 0, 4}, {16, 8, 12}};
  std::vector<double> values(512);
  for (size_t i = 0; i < values.size(); ++i) values[i] = 0.25 * static_cast<double>(i);
  const auto block = downsample_block(box, values, 2);
  const auto r = DownsampledBlock::deserialize(block.serialize());
  EXPECT_EQ(r.bounds, block.bounds);
  EXPECT_EQ(r.stride, block.stride);
  EXPECT_EQ(r.samples, block.samples);
  EXPECT_EQ(r.values, block.values);
}

TEST(BlockLut, SamplesAcrossBlocks) {
  GlobalGrid grid{{16, 8, 8}, {1.0, 0.5, 0.5}};
  // Two abutting blocks covering the domain, constant values 1 and 2.
  const Box3 left{{0, 0, 0}, {8, 8, 8}}, right{{8, 0, 0}, {16, 8, 8}};
  BlockLut lut(grid);
  lut.add_block(downsample_block(
      left, std::vector<double>(static_cast<size_t>(left.num_cells()), 1.0), 2));
  lut.add_block(downsample_block(
      right, std::vector<double>(static_cast<size_t>(right.num_cells()), 2.0),
      2));
  EXPECT_EQ(lut.num_blocks(), 2u);
  EXPECT_GT(lut.total_samples(), 0u);

  double v = 0.0;
  ASSERT_TRUE(lut.sample(Vec3{0.2, 0.25, 0.25}, v));
  EXPECT_DOUBLE_EQ(v, 1.0);
  ASSERT_TRUE(lut.sample(Vec3{0.8, 0.25, 0.25}, v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_FALSE(lut.sample(Vec3{2.0, 0.25, 0.25}, v));
}

TEST(BlockLut, AgreesWithBrickSamplerAtCoarsePoints) {
  GlobalGrid grid{{12, 12, 12}, {1.0, 1.0, 1.0}};
  const Box3 box = grid.bounds();
  Field f("v", box);
  fill_from_function(f, grid, [](const Vec3& x) {
    return std::sin(5 * x.x) + std::cos(3 * x.y) + x.z;
  });
  const auto values = f.pack_owned();
  BlockLut lut(grid);
  lut.add_block(downsample_block(box, values, 3));
  const BrickSampler fine(grid, box, values);

  // At retained lattice points both samplers agree exactly.
  for (int64_t k = 0; k < 12; k += 3) {
    for (int64_t j = 0; j < 12; j += 3) {
      for (int64_t i = 0; i < 12; i += 3) {
        const Vec3 p{grid.coord(0, i), grid.coord(1, j), grid.coord(2, k)};
        double coarse = 0.0, exact = 0.0;
        ASSERT_TRUE(lut.sample(p, coarse));
        ASSERT_TRUE(fine.sample(p, exact));
        EXPECT_NEAR(coarse, exact, 1e-10);
      }
    }
  }
}

TEST(Slice, ExtractFromBrick) {
  const Box3 box{{2, 0, 4}, {6, 3, 8}};
  std::vector<double> values(static_cast<size_t>(box.num_cells()));
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i)
        values[box.offset(i, j, k)] =
            100.0 * static_cast<double>(i) + 10.0 * static_cast<double>(j) +
            static_cast<double>(k);

  // z-slice at k = 5: in-plane axes (x, y).
  const Slice sz = extract_slice(box, values, 2, 5);
  EXPECT_EQ(sz.nu, 4);
  EXPECT_EQ(sz.nv, 3);
  EXPECT_DOUBLE_EQ(sz.at(0, 0), 100.0 * 2 + 10.0 * 0 + 5.0);
  EXPECT_DOUBLE_EQ(sz.at(3, 2), 100.0 * 5 + 10.0 * 2 + 5.0);

  // x-slice at i = 4: in-plane axes (y, z).
  const Slice sx = extract_slice(box, values, 0, 4);
  EXPECT_EQ(sx.nu, 3);
  EXPECT_EQ(sx.nv, 4);
  EXPECT_DOUBLE_EQ(sx.at(1, 2), 100.0 * 4 + 10.0 * 1 + 6.0);

  EXPECT_THROW(extract_slice(box, values, 2, 3), Error);   // outside box
  EXPECT_THROW(extract_slice(box, values, 5, 5), Error);   // bad axis
}

TEST(Slice, RenderAndScale) {
  Slice s;
  s.axis = 2;
  s.index = 0;
  s.nu = 2;
  s.nv = 2;
  s.values = {0.0, 1.0, 1.0, 0.0};
  const TransferFunction tf = TransferFunction::grayscale(0.0, 1.0);
  const Image img = render_slice(s, tf, 3);
  EXPECT_EQ(img.width(), 6);
  EXPECT_EQ(img.height(), 6);
  EXPECT_EQ(img.at(0, 0).a, 1.0f);               // opaque
  EXPECT_LT(img.at(0, 0).r, img.at(5, 0).r);     // dark -> bright
  EXPECT_EQ(img.at(4, 0).r, img.at(5, 1).r);     // nearest scaling blocks
}

TEST(Slice, AssembleAcrossRanks) {
  GlobalGrid grid{{8, 6, 4}, {1, 1, 1}};
  Decomposition decomp(grid, {2, 2, 1});
  Field field("f", grid.bounds());
  fill_noise(field, 12);

  const int64_t plane = 2;
  std::vector<Slice> parts;
  std::vector<Box3> boxes;
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    const Box3 b = decomp.block(r);
    parts.push_back(extract_slice(b, field.pack(b), 2, plane));
    boxes.push_back(b);
  }
  const Slice whole = assemble_slices(grid, parts, boxes);
  EXPECT_EQ(whole.nu, 8);
  EXPECT_EQ(whole.nv, 6);
  for (int64_t v = 0; v < whole.nv; ++v) {
    for (int64_t u = 0; u < whole.nu; ++u) {
      EXPECT_DOUBLE_EQ(whole.at(u, v), field.at(u, v, plane));
    }
  }

  // Missing a part: the plane is not tiled.
  parts.pop_back();
  boxes.pop_back();
  EXPECT_THROW(assemble_slices(grid, parts, boxes), Error);
}

TEST(Image, PsnrAndMse) {
  Image a(8, 8), b(8, 8);
  EXPECT_EQ(image_mse(a, b), 0.0);
  EXPECT_TRUE(std::isinf(image_psnr(a, b)));
  b.at(0, 0) = {1, 1, 1, 1};
  EXPECT_GT(image_mse(a, b), 0.0);
  EXPECT_LT(image_psnr(a, b), 100.0);
}

TEST(Image, SerializeRoundTrip) {
  Image img(3, 2);
  img.at(1, 0) = {0.25f, 0.5f, 0.75f, 1.0f};
  const Image r = deserialize_image(serialize_image(img));
  EXPECT_EQ(r.width(), 3);
  EXPECT_EQ(r.height(), 2);
  EXPECT_EQ(r.at(1, 0).g, 0.5f);
  EXPECT_EQ(image_mse(img, r), 0.0);
}

TEST(Image, WritesValidPpm) {
  Image img(4, 4);
  img.at(0, 0) = {1, 0, 0, 1};
  const std::string path = ::testing::TempDir() + "/hia_test.ppm";
  write_ppm(img, path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  int w, h, maxval;
  in >> w >> h >> maxval;
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  std::remove(path.c_str());
}

TEST(HybridApproximatesInSitu, PsnrImprovesWithFinerStride) {
  // Fig. 2 quality relationship: smaller down-sampling stride -> image
  // closer to the full-resolution rendering.
  GlobalGrid grid{{32, 32, 32}, {1.0, 1.0, 1.0}};
  const Box3 box = grid.bounds();
  Field f("v", box);
  fill_gaussian_mixture(f, grid, GaussianMixture::well_separated(5, 0.08, 2));
  const auto values = f.pack_owned();

  const OrthoCamera cam = OrthoCamera::default_view({1, 1, 1}, 48, 48);
  TransferFunction tf = TransferFunction::grayscale(0.0, 1.2);
  RenderParams params;
  params.step = grid.spacing(0);
  params.reference_step = params.step;

  const Aabb bounds = physical_bounds(grid, box);
  Image reference(48, 48);
  render_volume(cam, BrickSampler(grid, box, values), bounds, tf, params,
                reference);

  double prev_psnr = -1.0;
  for (const int stride : {8, 4, 2}) {
    BlockLut lut(grid);
    lut.add_block(downsample_block(box, values, stride));
    Image approx(48, 48);
    render_volume(cam, lut, bounds, tf, params, approx);
    const double psnr = image_psnr(reference, approx);
    EXPECT_GT(psnr, prev_psnr);
    prev_psnr = psnr;
  }
  EXPECT_GT(prev_psnr, 25.0);  // stride 2 is a close approximation
}

}  // namespace
}  // namespace hia
