// Tests for the Dart transport: registration, one-sided put/get semantics,
// SMSG/BTE path accounting, events, and concurrency.
#include <gtest/gtest.h>

#include <thread>

#include "transport/dart.hpp"
#include "util/stopwatch.hpp"

namespace hia {
namespace {

class DartTest : public ::testing::Test {
 protected:
  NetworkModel net_;
  Dart dart_{net_};
};

TEST_F(DartTest, RegisterUnregister) {
  const int a = dart_.register_node("sim-0");
  const int b = dart_.register_node("bucket-0");
  EXPECT_NE(a, b);
  EXPECT_EQ(dart_.num_registered(), 2);
  EXPECT_EQ(dart_.node_name(a), "sim-0");
  dart_.unregister_node(a);
  EXPECT_EQ(dart_.num_registered(), 1);
  EXPECT_THROW(dart_.unregister_node(a), Error);  // double unregister
}

TEST_F(DartTest, PutGetRoundTrip) {
  const int src = dart_.register_node("src");
  const int dst = dart_.register_node("dst");
  std::vector<double> data{1.5, -2.5, 3.25};
  const DartHandle h = dart_.put_doubles(src, data);
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(h.bytes, 24u);
  EXPECT_EQ(h.owner_node, src);

  TransferStats stats;
  const auto out = dart_.get_doubles(dst, h, &stats);
  EXPECT_EQ(out, data);
  EXPECT_EQ(stats.bytes, 24u);
  EXPECT_EQ(stats.path, TransferPath::kSmsg);
  EXPECT_GT(stats.modeled_seconds, 0.0);
}

TEST_F(DartTest, GetLeavesRegionPublished) {
  const int src = dart_.register_node("src");
  const int dst = dart_.register_node("dst");
  const DartHandle h = dart_.put_doubles(src, {1.0});
  (void)dart_.get_doubles(dst, h);
  // Second get still works (one-sided read, non-destructive).
  EXPECT_EQ(dart_.get_doubles(dst, h).size(), 1u);
  EXPECT_EQ(dart_.num_published(), 1u);
  dart_.release(h);
  EXPECT_EQ(dart_.num_published(), 0u);
  EXPECT_THROW(dart_.get_doubles(dst, h), Error);
  EXPECT_THROW(dart_.release(h), Error);
}

TEST_F(DartTest, PathSelectionByPayloadSize) {
  const int src = dart_.register_node("src");
  const int dst = dart_.register_node("dst");
  // Small: SMSG; large: BTE.
  const DartHandle small = dart_.put_doubles(src, std::vector<double>(10));
  const DartHandle large =
      dart_.put_doubles(src, std::vector<double>(1 << 16));
  TransferStats s1, s2;
  (void)dart_.get(dst, small, &s1);
  (void)dart_.get(dst, large, &s2);
  EXPECT_EQ(s1.path, TransferPath::kSmsg);
  EXPECT_EQ(s2.path, TransferPath::kBte);

  const auto counters = dart_.counters();
  EXPECT_EQ(counters.smsg_transfers, 1u);
  EXPECT_EQ(counters.bte_transfers, 1u);
  EXPECT_EQ(counters.bytes_moved, 80u + (1u << 16) * 8u);
  EXPECT_GT(counters.modeled_seconds_total, 0.0);
}

TEST_F(DartTest, GetRaisesCompletionEventAtOwner) {
  const int src = dart_.register_node("src");
  const int dst = dart_.register_node("dst");
  const DartHandle h = dart_.put_doubles(src, {42.0});
  EXPECT_FALSE(dart_.poll(src).has_value());
  (void)dart_.get_doubles(dst, h);
  const auto ev = dart_.poll(src);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->type, DartEvent::Type::kGetCompleted);
  EXPECT_EQ(ev->src_node, dst);
  EXPECT_EQ(ev->handle_id, h.id);
}

TEST_F(DartTest, NotifyAndWaitEvent) {
  const int a = dart_.register_node("a");
  const int b = dart_.register_node("b");

  std::thread waiter([&] {
    const DartEvent ev = dart_.wait_event(b);
    EXPECT_EQ(ev.type, DartEvent::Type::kUser);
    EXPECT_EQ(ev.src_node, a);
    ASSERT_EQ(ev.payload.size(), 1u);
    EXPECT_EQ(ev.payload[0], std::byte{9});
  });

  DartEvent ev;
  ev.type = DartEvent::Type::kUser;
  ev.src_node = a;
  ev.payload = {std::byte{9}};
  dart_.notify(b, ev);
  waiter.join();
}

TEST_F(DartTest, EventsDrainInFifoOrder) {
  const int a = dart_.register_node("a");
  for (int i = 0; i < 5; ++i) {
    DartEvent ev;
    ev.type = DartEvent::Type::kUser;
    ev.handle_id = static_cast<uint64_t>(i);
    dart_.notify(a, ev);
  }
  for (uint64_t i = 0; i < 5; ++i) {
    const auto ev = dart_.poll(a);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->handle_id, i);
  }
  EXPECT_FALSE(dart_.poll(a).has_value());
}

TEST_F(DartTest, PublishedBytesAccounting) {
  const int src = dart_.register_node("src");
  const auto h1 = dart_.put_doubles(src, std::vector<double>(100));
  const auto h2 = dart_.put_doubles(src, std::vector<double>(50));
  EXPECT_EQ(dart_.published_bytes(), 1200u);
  dart_.release(h1);
  EXPECT_EQ(dart_.published_bytes(), 400u);
  dart_.release(h2);
}

TEST_F(DartTest, RejectsUnregisteredParticipants) {
  const int src = dart_.register_node("src");
  const DartHandle h = dart_.put_doubles(src, {1.0});
  EXPECT_THROW(dart_.put_doubles(99, {1.0}), Error);
  EXPECT_THROW(dart_.get_doubles(99, h), Error);
  EXPECT_THROW(dart_.notify(99, DartEvent{}), Error);
}

TEST_F(DartTest, ConcurrentGetsAreSafe) {
  const int src = dart_.register_node("src");
  std::vector<double> data(1 << 14, 1.25);
  const DartHandle h = dart_.put_doubles(src, data);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const int node = dart_.register_node("t" + std::to_string(t));
      for (int iter = 0; iter < 20; ++iter) {
        const auto out = dart_.get_doubles(node, h);
        if (out.size() == data.size() && out[0] == 1.25) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * 20);
  EXPECT_EQ(dart_.counters().bte_transfers,
            static_cast<size_t>(kThreads) * 20u);
}

TEST_F(DartTest, SleepTransfersScaleTime) {
  Dart::Options opt;
  opt.sleep_transfers = true;
  opt.time_scale = 50.0;  // exaggerate so the sleep is measurable
  Dart dart(net_, opt);
  const int src = dart.register_node("src");
  const int dst = dart.register_node("dst");
  const DartHandle h =
      dart.put_doubles(src, std::vector<double>(1 << 18));  // 2 MB -> BTE

  Stopwatch w;
  TransferStats stats;
  (void)dart.get(dst, h, &stats);
  const double wall = w.seconds();
  EXPECT_GE(wall, stats.modeled_seconds * opt.time_scale * 0.5);
}

}  // namespace
}  // namespace hia
