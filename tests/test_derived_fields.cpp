// Tests for derived combustion diagnostics (gradients, vorticity, mixture
// fraction, scalar dissipation) and the co-hosted helper core.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "core/cohosted.hpp"
#include "sim/analytic_fields.hpp"
#include "sim/derived_fields.hpp"
#include "sim/halo.hpp"
#include "sim/s3d.hpp"

namespace hia {
namespace {

GlobalGrid test_grid() { return GlobalGrid{{16, 16, 16}, {1.0, 1.0, 1.0}}; }

Field make_field(const GlobalGrid& grid, const char* name,
                 const std::function<double(const Vec3&)>& fn) {
  Field f(name, grid.bounds(), grid.bounds(), 1);
  fill_from_function(f, grid, fn);
  return f;
}

TEST(GradientMagnitude, ExactOnLinearField) {
  const GlobalGrid grid = test_grid();
  const Field f = make_field(grid, "f", [](const Vec3& x) {
    return 3.0 * x.x - 4.0 * x.y + 12.0 * x.z;
  });
  const Field g = gradient_magnitude(grid, f);
  // |(3, -4, 12)| = 13, exact for central AND one-sided differences.
  for (const double v : g.data()) EXPECT_NEAR(v, 13.0, 1e-10);
}

TEST(GradientMagnitude, ZeroOnConstantField) {
  const GlobalGrid grid = test_grid();
  const Field f = make_field(grid, "f", [](const Vec3&) { return 7.0; });
  const Field g = gradient_magnitude(grid, f);
  for (const double v : g.data()) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(VorticityMagnitude, RigidRotation) {
  // u = (-y, x, 0) about the z axis: vorticity = (0, 0, 2), |w| = 2.
  const GlobalGrid grid = test_grid();
  const Field u = make_field(grid, "u", [](const Vec3& x) { return -x.y; });
  const Field v = make_field(grid, "v", [](const Vec3& x) { return x.x; });
  const Field w = make_field(grid, "w", [](const Vec3&) { return 0.0; });
  const Field vort = vorticity_magnitude(grid, u, v, w);
  for (const double x : vort.data()) EXPECT_NEAR(x, 2.0, 1e-10);
}

TEST(VorticityMagnitude, IrrotationalShearFreeFlow) {
  // Uniform translation has zero vorticity.
  const GlobalGrid grid = test_grid();
  const Field u = make_field(grid, "u", [](const Vec3&) { return 1.5; });
  const Field v = make_field(grid, "v", [](const Vec3&) { return -0.5; });
  const Field w = make_field(grid, "w", [](const Vec3&) { return 2.0; });
  const Field vort = vorticity_magnitude(grid, u, v, w);
  for (const double x : vort.data()) {
    EXPECT_NEAR(x, 0.0, 1e-12);
  }
}

TEST(MixtureFraction, BoundsAndStreamValues) {
  const GlobalGrid grid = test_grid();
  // Pure fuel stream: Y_H2 = 0.9 -> Z = 1; pure oxidizer: Z = 0.
  Field h2 = make_field(grid, "Y_H2", [](const Vec3& x) {
    return x.x < 0.5 ? 0.9 : 0.0;
  });
  Field h2o = make_field(grid, "Y_H2O", [](const Vec3&) { return 0.0; });
  const Field z = mixture_fraction(h2, h2o);
  EXPECT_DOUBLE_EQ(z.at(0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(z.at(15, 0, 0), 0.0);

  // Products contribute their hydrogen content: Y_H2O = 0.9 alone gives
  // Z = (2/18)*0.9/0.9 = 1/9.
  h2.fill(0.0);
  h2o.fill(0.9);
  const Field z2 = mixture_fraction(h2, h2o);
  EXPECT_NEAR(z2.at(4, 4, 4), 1.0 / 9.0, 1e-12);
}

TEST(MixtureFraction, ConservedUnderReaction) {
  // The chemistry converts H2 to H2O conserving element H: Z computed
  // before and after several reactive steps (no kernels, so no external
  // enthalpy/H injection) must stay equal pointwise up to transport.
  S3DParams p;
  p.grid = GlobalGrid{{12, 10, 10}, {1.0, 0.8, 0.8}};
  p.ranks_per_axis = {1, 1, 1};
  p.chemistry.kernel_rate = 0.0;
  p.jet_velocity = 0.0;             // pure reaction + diffusion
  p.turbulence.rms_velocity = 0.0;
  p.diffusivity = 0.0;              // freeze transport: reaction only
  World world(1);
  world.run([&](Comm& comm) {
    S3DRank sim(p, 0);
    sim.initialize();
    // Ignite everything so the reaction actually runs.
    Field& t = sim.field(Variable::kTemperature);
    for (double& v : t.data()) v = 4.0;
    const Field z0 = mixture_fraction(sim.field(Variable::kYH2),
                                      sim.field(Variable::kYH2O));
    for (int s = 0; s < 5; ++s) sim.advance(comm);
    const Field z1 = mixture_fraction(sim.field(Variable::kYH2),
                                      sim.field(Variable::kYH2O));
    const Box3& box = z0.owned();
    for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
      for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
        for (int64_t i = box.lo[0]; i < box.hi[0]; ++i)
          ASSERT_NEAR(z1.at(i, j, k), z0.at(i, j, k), 1e-9);
  });
}

TEST(ScalarDissipation, QuadraticInGradient) {
  const GlobalGrid grid = test_grid();
  const Field z = make_field(grid, "Z", [](const Vec3& x) { return x.x; });
  const double d = 0.25;
  const Field chi = scalar_dissipation(grid, z, d);
  // |∇Z| = 1 -> chi = 2 * 0.25 * 1 = 0.5 everywhere.
  for (const double v : chi.data()) EXPECT_NEAR(v, 0.5, 1e-10);
  EXPECT_THROW(scalar_dissipation(grid, z, -1.0), Error);
}

TEST(DerivedFields, VorticityOfSimulationIsFiniteAndStructured) {
  S3DParams p;
  p.grid = GlobalGrid{{20, 14, 14}, {1.0, 0.7, 0.7}};
  p.ranks_per_axis = {2, 1, 1};
  Decomposition d(p.grid, p.ranks_per_axis);
  World world(d.num_ranks());
  world.run([&](Comm& comm) {
    S3DRank sim(p, comm.rank());
    sim.initialize();
    sim.advance(comm);
    std::vector<Field*> vel{&sim.field(Variable::kVelU),
                            &sim.field(Variable::kVelV),
                            &sim.field(Variable::kVelW)};
    exchange_halos(comm, sim.decomp(), vel, 1);
    const Field vort = vorticity_magnitude(
        p.grid, *vel[0], *vel[1], *vel[2]);
    double max = 0.0;
    for (const double v : vort.data()) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_GE(v, 0.0);
      max = std::max(max, v);
    }
    // Turbulence + jet shear: vorticity is genuinely present.
    EXPECT_GT(comm.allreduce_max(max), 0.1);
  });
}

// ------------------------------------------------------ co-hosted helper --

TEST(CoHostedHelper, ExecutesInFifoOrder) {
  CoHostedHelper helper;
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 8; ++i) {
    helper.submit([&, i] {
      std::lock_guard lock(m);
      order.push_back(i);
    });
  }
  helper.drain();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  EXPECT_EQ(helper.completed(), 8u);
}

TEST(CoHostedHelper, SubmitReturnsBeforeWorkCompletes) {
  CoHostedHelper helper;
  std::atomic<bool> done{false};
  Stopwatch watch;
  helper.submit([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  const double handoff = watch.seconds();
  EXPECT_LT(handoff, 0.02);       // the critical path paid only the enqueue
  EXPECT_FALSE(done.load());      // work still running off-path
  helper.drain();
  EXPECT_TRUE(done.load());
  EXPECT_GE(helper.busy_seconds(), 0.04);
}

TEST(CoHostedHelper, DrainOnEmptyQueueReturns) {
  CoHostedHelper helper;
  helper.drain();
  EXPECT_EQ(helper.completed(), 0u);
}

TEST(CoHostedHelper, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    CoHostedHelper helper;
    for (int i = 0; i < 5; ++i) {
      helper.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        count.fetch_add(1);
      });
    }
  }  // destructor must complete everything
  EXPECT_EQ(count.load(), 5);
}

TEST(CoHostedHelper, OffloadsAnalysisFromCriticalPath) {
  // The §VI scenario: per-rank helpers run a (slow) analysis stage while
  // the "simulation" proceeds; the critical path pays only hand-offs.
  constexpr int kSteps = 6;
  constexpr auto kAnalysisCost = std::chrono::milliseconds(20);

  CoHostedHelper helper;
  std::atomic<int> analyses_done{0};
  Stopwatch watch;
  for (int s = 0; s < kSteps; ++s) {
    // "simulation work"
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    helper.submit([&] {
      std::this_thread::sleep_for(kAnalysisCost);
      analyses_done.fetch_add(1);
    });
  }
  const double critical_path = watch.seconds();
  helper.drain();

  EXPECT_EQ(analyses_done.load(), kSteps);
  // Synchronous execution would cost >= 6 * (5 + 20) ms on the critical
  // path; with the helper it is ~6 * 5 ms (plus scheduling noise; the
  // single-core CI host timeshares, so allow generous slack while still
  // distinguishing the two regimes).
  EXPECT_LT(critical_path, 0.12);
}

}  // namespace
}  // namespace hia
