// Tests for the staging layer: the sharded object store and the FCFS
// pull-based bucket scheduler (data-ready / bucket-ready protocol,
// temporal multiplexing, failure isolation).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "staging/object_store.hpp"
#include "staging/scheduler.hpp"

namespace hia {
namespace {

DataDescriptor make_desc(const std::string& var, long step, int64_t x0) {
  DataDescriptor d;
  d.variable = var;
  d.step = step;
  d.box = Box3{{x0, 0, 0}, {x0 + 4, 4, 4}};
  d.src_node = 0;
  return d;
}

TEST(ObjectStore, PutQueryByRegion) {
  ObjectStore store(4);
  store.put(make_desc("T", 1, 0));
  store.put(make_desc("T", 1, 4));
  store.put(make_desc("T", 2, 0));   // other step
  store.put(make_desc("P", 1, 0));   // other variable

  const auto hits = store.query("T", 1, Box3{{0, 0, 0}, {2, 2, 2}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].box.lo[0], 0);

  const auto all = store.query_all("T", 1);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(store.size(), 4u);
}

TEST(ObjectStore, TakeRemoves) {
  ObjectStore store(2);
  store.put(make_desc("T", 1, 0));
  store.put(make_desc("T", 1, 4));
  const auto taken = store.take("T", 1);
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(store.query_all("T", 1).empty());
  EXPECT_TRUE(store.take("T", 1).empty());
}

TEST(ObjectStore, RpcsShardAcrossServers) {
  ObjectStore store(8);
  // Many distinct (var, step) keys spread load over servers by hashing.
  for (int v = 0; v < 40; ++v) {
    for (long s = 0; s < 5; ++s) {
      store.put(make_desc("var" + std::to_string(v), s, 0));
    }
  }
  const auto rpcs = store.rpc_counts();
  ASSERT_EQ(rpcs.size(), 8u);
  uint64_t total = 0, served = 0;
  for (const auto c : rpcs) {
    total += c;
    if (c > 0) ++served;
  }
  EXPECT_EQ(total, 200u);
  EXPECT_GE(served, 6u);  // nearly all servers participate
}

class StagingTest : public ::testing::Test {
 protected:
  NetworkModel net_;
  Dart dart_{net_};
};

TEST_F(StagingTest, ExecutesSubmittedTask) {
  StagingService service(dart_, {2, 2});
  std::atomic<int> ran{0};
  service.register_handler("count", [&](TaskContext& ctx) {
    ran.fetch_add(1);
    EXPECT_EQ(ctx.task().analysis, "count");
    EXPECT_EQ(ctx.task().step, 7);
  });
  service.submit(InTransitTask{"count", 7, {}, 0});
  service.drain();
  EXPECT_EQ(ran.load(), 1);
  const auto records = service.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].analysis, "count");
  EXPECT_GE(records[0].assign_time, records[0].enqueue_time);
  EXPECT_GE(records[0].complete_time, records[0].assign_time);
}

TEST_F(StagingTest, PublishPullRoundTrip) {
  StagingService service(dart_, {2, 2});
  const int sim = dart_.register_node("sim-0");

  std::vector<double> payload{3.0, 1.0, 4.0, 1.0, 5.0};
  service.publish(sim, "T", 3, Box3{{0, 0, 0}, {5, 1, 1}}, payload);

  std::vector<double> pulled;
  std::mutex m;
  service.register_handler("grab", [&](TaskContext& ctx) {
    ASSERT_EQ(ctx.task().inputs.size(), 1u);
    auto data = ctx.pull_doubles(ctx.task().inputs[0]);
    std::lock_guard lock(m);
    pulled = std::move(data);
  });
  service.submit_for("grab", 3, {"T"});
  service.drain();
  EXPECT_EQ(pulled, payload);

  // Input regions are released after the task completes.
  EXPECT_EQ(dart_.num_published(), 0u);
  const auto records = service.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].data_movement_bytes, payload.size() * sizeof(double));
  EXPECT_GT(records[0].data_movement_seconds, 0.0);
}

TEST_F(StagingTest, ResultBlobRetrievable) {
  StagingService service(dart_, {1, 1});
  service.register_handler("emit", [](TaskContext& ctx) {
    ctx.set_result({std::byte{1}, std::byte{2}});
  });
  const uint64_t id = service.submit(InTransitTask{"emit", 0, {}, 0});
  service.drain();
  const auto result = service.take_result(id);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_FALSE(service.take_result(id).has_value());  // consumed
}

TEST_F(StagingTest, TemporalMultiplexingSpreadsBuckets) {
  // Slow tasks for successive steps must land on different buckets so the
  // pipeline decouples analysis latency from the submission rate.
  StagingService service(dart_, {1, 4});
  service.register_handler("slow", [](TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  for (long step = 0; step < 4; ++step) {
    service.submit(InTransitTask{"slow", step, {}, 0});
  }
  service.drain();
  const auto records = service.records();
  ASSERT_EQ(records.size(), 4u);
  std::set<int> buckets;
  for (const auto& r : records) buckets.insert(r.bucket);
  EXPECT_EQ(buckets.size(), 4u);  // each step on its own bucket

  // With pipelining, total wall time is far below 4 x 50 ms.
  double latest = 0.0;
  for (const auto& r : records) latest = std::max(latest, r.complete_time);
  double earliest_assign = 1e9;
  for (const auto& r : records) {
    earliest_assign = std::min(earliest_assign, r.assign_time);
  }
  EXPECT_LT(latest - earliest_assign, 0.15);
}

TEST_F(StagingTest, FcfsOrderOnSingleBucket) {
  StagingService service(dart_, {1, 1});
  std::vector<long> order;
  std::mutex m;
  service.register_handler("seq", [&](TaskContext& ctx) {
    std::lock_guard lock(m);
    order.push_back(ctx.task().step);
  });
  for (long step = 0; step < 6; ++step) {
    service.submit(InTransitTask{"seq", step, {}, 0});
  }
  service.drain();
  ASSERT_EQ(order.size(), 6u);
  for (long step = 0; step < 6; ++step) EXPECT_EQ(order[static_cast<size_t>(step)], step);
}

TEST_F(StagingTest, HandlerFailureDoesNotWedgeService) {
  StagingService service(dart_, {1, 2});
  std::atomic<int> succeeded{0};
  service.register_handler("flaky", [&](TaskContext& ctx) {
    if (ctx.task().step % 2 == 0) throw Error("injected failure");
    succeeded.fetch_add(1);
  });
  const int sim = dart_.register_node("sim-0");
  for (long step = 0; step < 6; ++step) {
    // Give failing tasks an input to verify regions are still released.
    service.publish(sim, "x", step, Box3{{0, 0, 0}, {1, 1, 1}}, {1.0});
    service.submit_for("flaky", step, {"x"});
  }
  service.drain();
  EXPECT_EQ(succeeded.load(), 3);
  EXPECT_EQ(service.records().size(), 6u);
  EXPECT_EQ(dart_.num_published(), 0u);  // released even on failure
}

TEST_F(StagingTest, SubmitForUnknownAnalysisThrows) {
  StagingService service(dart_, {1, 1});
  EXPECT_THROW(service.submit(InTransitTask{"nope", 0, {}, 0}), Error);
}

TEST_F(StagingTest, ManyTasksAllComplete) {
  StagingService service(dart_, {2, 3});
  std::atomic<int> done{0};
  service.register_handler("tick", [&](TaskContext&) { done.fetch_add(1); });
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    service.submit(InTransitTask{"tick", i, {}, 0});
  }
  service.drain();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(service.records().size(), static_cast<size_t>(kTasks));
  EXPECT_EQ(service.pending_tasks(), 0u);
}

TEST_F(StagingTest, FreeBucketInstrumentation) {
  StagingService service(dart_, {1, 3});
  // Give the buckets a moment to announce themselves.
  for (int i = 0; i < 100 && service.free_bucket_count() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.free_bucket_count(), 3);
  EXPECT_EQ(service.num_buckets(), 3);
}

}  // namespace
}  // namespace hia
