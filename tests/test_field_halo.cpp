// Tests for Field storage and the 26-direction halo exchange: after an
// exchange, every ghost cell must equal the value owned by the neighbor —
// verified against analytic fills across several decompositions (TEST_P).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "runtime/comm.hpp"
#include "sim/analytic_fields.hpp"
#include "sim/field.hpp"
#include "sim/halo.hpp"

namespace hia {
namespace {

TEST(Field, StorageIncludesGhosts) {
  const Box3 domain{{0, 0, 0}, {10, 10, 10}};
  const Box3 owned{{2, 2, 2}, {5, 5, 5}};
  Field f("t", owned, domain, 1);
  EXPECT_EQ(f.storage(), (Box3{{1, 1, 1}, {6, 6, 6}}));
  EXPECT_EQ(f.owned(), owned);
  // Ghosts clamp at the domain boundary.
  Field g("t", Box3{{0, 0, 0}, {5, 5, 5}}, domain, 2);
  EXPECT_EQ(g.storage(), (Box3{{0, 0, 0}, {7, 7, 7}}));
}

TEST(Field, AtReadsAndWrites) {
  const Box3 owned{{0, 0, 0}, {4, 4, 4}};
  Field f("t", owned);
  f.at(1, 2, 3) = 7.5;
  EXPECT_DOUBLE_EQ(f.at(1, 2, 3), 7.5);
  EXPECT_DOUBLE_EQ(f.at(0, 0, 0), 0.0);
  f.fill(2.0);
  EXPECT_DOUBLE_EQ(f.at(3, 3, 3), 2.0);
}

TEST(Field, PackUnpackRoundTrip) {
  const Box3 owned{{1, 1, 1}, {4, 5, 6}};
  Field f("t", owned);
  int v = 0;
  for (int64_t k = 1; k < 6; ++k)
    for (int64_t j = 1; j < 5; ++j)
      for (int64_t i = 1; i < 4; ++i) f.at(i, j, k) = v++;

  const auto packed = f.pack_owned();
  ASSERT_EQ(packed.size(), static_cast<size_t>(owned.num_cells()));

  Field g("t", owned);
  g.unpack(owned, packed);
  for (int64_t k = 1; k < 6; ++k)
    for (int64_t j = 1; j < 5; ++j)
      for (int64_t i = 1; i < 4; ++i)
        EXPECT_DOUBLE_EQ(g.at(i, j, k), f.at(i, j, k));
}

TEST(Field, PackSubBox) {
  const Box3 owned{{0, 0, 0}, {4, 4, 4}};
  Field f("t", owned);
  for (int64_t k = 0; k < 4; ++k)
    for (int64_t j = 0; j < 4; ++j)
      for (int64_t i = 0; i < 4; ++i) f.at(i, j, k) = 100.0 * i + 10.0 * j + k;
  const Box3 sub{{1, 1, 1}, {3, 3, 3}};
  const auto packed = f.pack(sub);
  ASSERT_EQ(packed.size(), 8u);
  EXPECT_DOUBLE_EQ(packed[0], 111.0);   // (1,1,1)
  EXPECT_DOUBLE_EQ(packed[7], 222.0);   // (2,2,2)
}

TEST(Field, UnpackRejectsWrongSize) {
  Field f("t", Box3{{0, 0, 0}, {2, 2, 2}});
  EXPECT_THROW(f.unpack(f.owned(), std::vector<double>(3)), Error);
}

double analytic(int64_t i, int64_t j, int64_t k) {
  return std::sin(0.3 * static_cast<double>(i)) +
         0.7 * static_cast<double>(j) - 0.1 * static_cast<double>(k * k);
}

struct HaloCase {
  std::array<int64_t, 3> dims;
  std::array<int, 3> ranks;
  int ghost;
};

class HaloExchangeProperty : public ::testing::TestWithParam<HaloCase> {};

TEST_P(HaloExchangeProperty, GhostsMatchNeighborValues) {
  const auto& [dims, ranks, ghost] = GetParam();
  GlobalGrid grid{dims, {1.0, 1.0, 1.0}};
  Decomposition decomp(grid, ranks);
  World world(decomp.num_ranks());

  world.run([&](Comm& comm) {
    const Box3 owned = decomp.block(comm.rank());
    Field f("t", owned, grid.bounds(), ghost);
    // Fill only the owned region with the analytic function; ghosts start
    // poisoned.
    f.fill(-1e30);
    for (int64_t k = owned.lo[2]; k < owned.hi[2]; ++k)
      for (int64_t j = owned.lo[1]; j < owned.hi[1]; ++j)
        for (int64_t i = owned.lo[0]; i < owned.hi[0]; ++i)
          f.at(i, j, k) = analytic(i, j, k);

    exchange_halos(comm, decomp, f, ghost);

    // Every storage cell inside the domain must now hold the analytic
    // value (ghosts included); cells outside the domain don't exist since
    // storage is clamped.
    const Box3& st = f.storage();
    for (int64_t k = st.lo[2]; k < st.hi[2]; ++k)
      for (int64_t j = st.lo[1]; j < st.hi[1]; ++j)
        for (int64_t i = st.lo[0]; i < st.hi[0]; ++i)
          ASSERT_DOUBLE_EQ(f.at(i, j, k), analytic(i, j, k))
              << "at (" << i << "," << j << "," << k << ") rank "
              << comm.rank();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, HaloExchangeProperty,
    ::testing::Values(HaloCase{{8, 8, 8}, {2, 2, 2}, 1},
                      HaloCase{{9, 7, 6}, {3, 2, 1}, 1},
                      HaloCase{{12, 12, 12}, {2, 2, 3}, 2},
                      HaloCase{{6, 6, 6}, {1, 1, 1}, 1},
                      HaloCase{{16, 4, 4}, {4, 1, 1}, 1}));

TEST(HaloExchange, MultipleFieldsExchangeTogether) {
  GlobalGrid grid{{8, 8, 8}, {1.0, 1.0, 1.0}};
  Decomposition decomp(grid, {2, 2, 1});
  World world(decomp.num_ranks());

  world.run([&](Comm& comm) {
    const Box3 owned = decomp.block(comm.rank());
    Field a("a", owned, grid.bounds(), 1);
    Field b("b", owned, grid.bounds(), 1);
    for (int64_t k = owned.lo[2]; k < owned.hi[2]; ++k)
      for (int64_t j = owned.lo[1]; j < owned.hi[1]; ++j)
        for (int64_t i = owned.lo[0]; i < owned.hi[0]; ++i) {
          a.at(i, j, k) = analytic(i, j, k);
          b.at(i, j, k) = 2.0 * analytic(i, j, k) + 1.0;
        }
    std::vector<Field*> fields{&a, &b};
    exchange_halos(comm, decomp, fields, 1);

    const Box3& st = a.storage();
    for (int64_t k = st.lo[2]; k < st.hi[2]; ++k)
      for (int64_t j = st.lo[1]; j < st.hi[1]; ++j)
        for (int64_t i = st.lo[0]; i < st.hi[0]; ++i) {
          ASSERT_DOUBLE_EQ(a.at(i, j, k), analytic(i, j, k));
          ASSERT_DOUBLE_EQ(b.at(i, j, k), 2.0 * analytic(i, j, k) + 1.0);
        }
  });
}

TEST(HaloExchange, RejectsMismatchedGhost) {
  GlobalGrid grid{{8, 8, 8}, {1.0, 1.0, 1.0}};
  Decomposition decomp(grid, {2, 1, 1});
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
                 Field f("t", decomp.block(comm.rank()), grid.bounds(), 1);
                 exchange_halos(comm, decomp, f, 2);  // wider than storage
               }),
               Error);
}

TEST(AnalyticFields, NoiseIsDecompositionInvariant) {
  GlobalGrid grid{{8, 8, 8}, {1.0, 1.0, 1.0}};
  Field whole("n", grid.bounds());
  fill_noise(whole, 42);
  Field part("n", Box3{{2, 2, 2}, {6, 6, 6}});
  fill_noise(part, 42);
  for (int64_t k = 2; k < 6; ++k)
    for (int64_t j = 2; j < 6; ++j)
      for (int64_t i = 2; i < 6; ++i)
        EXPECT_DOUBLE_EQ(whole.at(i, j, k), part.at(i, j, k));
}

TEST(AnalyticFields, GaussianMixtureHasExpectedPeaks) {
  const auto mix = GaussianMixture::well_separated(8, 0.03);
  EXPECT_EQ(mix.bumps().size(), 8u);
  // Value at a bump center is dominated by that bump.
  for (const auto& b : mix.bumps()) {
    EXPECT_GT(mix.value(b.center), 0.5 * b.amplitude);
  }
}

}  // namespace
}  // namespace hia
