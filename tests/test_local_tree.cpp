// Tests for the in-situ local merge-tree builder: known topologies on
// analytic fields, augmentation invariants, subtree extraction, and
// serialization.
#include <gtest/gtest.h>

#include "analysis/topology/local_tree.hpp"
#include "sim/analytic_fields.hpp"

namespace hia {
namespace {

std::vector<double> field_values(const GlobalGrid& grid, const Box3& box,
                                 const std::function<double(const Vec3&)>& f) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(box.num_cells()));
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i)
        out.push_back(
            f(Vec3{grid.coord(0, i), grid.coord(1, j), grid.coord(2, k)}));
  return out;
}

TEST(LocalTree, RampHasSingleLeafChain) {
  GlobalGrid grid{{8, 4, 4}, {1.0, 0.5, 0.5}};
  const Box3 box = grid.bounds();
  const auto values =
      field_values(grid, box, [](const Vec3& x) { return x.x; });
  const MergeTree t = build_local_tree(grid, box, values);

  EXPECT_EQ(t.size(), static_cast<size_t>(box.num_cells()));
  EXPECT_TRUE(t.validate().empty()) << t.validate();
  EXPECT_EQ(t.roots().size(), 1u);
  // Monotone field + id tie-breaking: exactly one maximum.
  EXPECT_EQ(t.reduced().leaves().size(), 1u);
}

TEST(LocalTree, TwoBumpsGiveTwoLeavesAndOneSaddle) {
  GlobalGrid grid{{24, 12, 12}, {1.0, 0.5, 0.5}};
  GaussianMixture mix({{Vec3{0.25, 0.25, 0.25}, 0.05, 1.0},
                       {Vec3{0.75, 0.25, 0.25}, 0.05, 0.8}});
  const Box3 box = grid.bounds();
  const auto values = field_values(
      grid, box, [&](const Vec3& x) { return mix.value(x); });
  const MergeTree reduced = build_local_tree(grid, box, values).reduced();

  EXPECT_TRUE(reduced.validate().empty());
  EXPECT_EQ(reduced.leaves().size(), 2u);
  // Leaves + 1 saddle + 1 root = 4 critical nodes.
  EXPECT_EQ(reduced.size(), 4u);

  // The discrete maxima undershoot the analytic peaks (grid sampling), but
  // the taller bump must dominate and both peaks must be prominent.
  const auto pairs = persistence_pairs(reduced);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_GT(pairs[0].max_value, pairs[1].max_value);
  EXPECT_GT(pairs[0].max_value, 0.5);
  EXPECT_GT(pairs[1].max_value, 0.4);
  EXPECT_NEAR(pairs[0].max_value / pairs[1].max_value, 1.0 / 0.8, 0.1);
}

class LeafCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(LeafCountProperty, WellSeparatedBumpsYieldExactLeafCount) {
  const int bumps = GetParam();
  GlobalGrid grid{{32, 32, 32}, {1.0, 1.0, 1.0}};
  const auto mix = GaussianMixture::well_separated(bumps, 0.04, 23);
  const Box3 box = grid.bounds();
  const auto values = field_values(
      grid, box, [&](const Vec3& x) { return mix.value(x); });
  const MergeTree reduced = build_local_tree(grid, box, values).reduced();
  EXPECT_EQ(reduced.leaves().size(), static_cast<size_t>(bumps));
  EXPECT_TRUE(reduced.validate().empty());
}

INSTANTIATE_TEST_SUITE_P(BumpCounts, LeafCountProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

TEST(LocalTree, ConstantFieldIsSingleComponent) {
  GlobalGrid grid{{6, 6, 6}, {1.0, 1.0, 1.0}};
  const Box3 box = grid.bounds();
  std::vector<double> values(static_cast<size_t>(box.num_cells()), 1.0);
  const MergeTree t = build_local_tree(grid, box, values);
  // Ties broken by id: still a valid tree with a single root and one leaf.
  EXPECT_TRUE(t.validate().empty());
  EXPECT_EQ(t.roots().size(), 1u);
  EXPECT_EQ(t.reduced().leaves().size(), 1u);
}

TEST(LocalTree, SubBoxUsesGlobalIds) {
  GlobalGrid grid{{16, 8, 8}, {1.0, 0.5, 0.5}};
  const Box3 box{{4, 2, 2}, {10, 6, 6}};
  const auto values =
      field_values(grid, box, [](const Vec3& x) { return x.x + x.y; });
  const MergeTree t = build_local_tree(grid, box, values);
  ASSERT_EQ(t.size(), static_cast<size_t>(box.num_cells()));
  // All ids must decode to coordinates inside the box.
  for (const auto& n : t.nodes()) {
    const int64_t i = static_cast<int64_t>(n.id) % grid.dims[0];
    const int64_t j =
        (static_cast<int64_t>(n.id) / grid.dims[0]) % grid.dims[1];
    const int64_t k =
        static_cast<int64_t>(n.id) / (grid.dims[0] * grid.dims[1]);
    EXPECT_TRUE(box.contains(i, j, k));
  }
}

TEST(ExtendedBlock, GrowsPositiveDirectionsOnly) {
  GlobalGrid grid{{10, 10, 10}, {1.0, 1.0, 1.0}};
  const Box3 interior{{2, 2, 2}, {5, 5, 5}};
  EXPECT_EQ(extended_block(grid, interior), (Box3{{2, 2, 2}, {6, 6, 6}}));
  const Box3 at_edge{{5, 5, 5}, {10, 10, 10}};
  EXPECT_EQ(extended_block(grid, at_edge), at_edge);  // clamped
}

TEST(ExtractSubtree, RetainsCriticalsAndBoundary) {
  GlobalGrid grid{{16, 16, 16}, {1.0, 1.0, 1.0}};
  const Box3 box{{0, 0, 0}, {9, 16, 16}};  // right face interior-shared
  const auto mix = GaussianMixture::well_separated(4, 0.05, 3);
  const auto values = field_values(
      grid, box, [&](const Vec3& x) { return mix.value(x); });
  const MergeTree local = build_local_tree(grid, box, values);
  const SubtreeData sub = extract_subtree(grid, box, local);

  // Much smaller than the full augmented tree…
  EXPECT_LT(sub.num_vertices(), static_cast<size_t>(box.num_cells()) / 2);
  // …but at least the shared face (i = 8) must be present in full.
  const size_t face = 16 * 16;
  EXPECT_GE(sub.num_vertices(), face);
  // Every vertex on the shared face is retained.
  size_t on_face = 0;
  for (const uint64_t id : sub.vertex_ids) {
    if (static_cast<int64_t>(id) % grid.dims[0] == 8) ++on_face;
  }
  EXPECT_EQ(on_face, face);

  // Edges orient child strictly above parent.
  for (size_t e = 0; e < sub.num_edges(); ++e) {
    const auto c = sub.edge_child[e];
    const auto p = sub.edge_parent[e];
    EXPECT_TRUE(above(sub.vertex_values[c], sub.vertex_ids[c],
                      sub.vertex_values[p], sub.vertex_ids[p]));
  }
}

TEST(SubtreeData, SerializeRoundTrip) {
  SubtreeData s;
  s.vertex_ids = {10, 20, 30};
  s.vertex_values = {3.0, 2.0, 1.0};
  s.edge_child = {0, 1};
  s.edge_parent = {1, 2};
  const auto flat = s.serialize();
  const SubtreeData r = SubtreeData::deserialize(flat);
  EXPECT_EQ(r.vertex_ids, s.vertex_ids);
  EXPECT_EQ(r.vertex_values, s.vertex_values);
  EXPECT_EQ(r.edge_child, s.edge_child);
  EXPECT_EQ(r.edge_parent, s.edge_parent);
  EXPECT_GT(s.byte_size(), 0u);
}

TEST(SubtreeData, DeserializeRejectsMalformed) {
  EXPECT_THROW(SubtreeData::deserialize(std::vector<double>{5.0}), Error);
  EXPECT_THROW(SubtreeData::deserialize(std::vector<double>{1.0, 1.0, 2.0}),
               Error);
}

}  // namespace
}  // namespace hia
