// Unit tests for the data-reduction codecs: lossless round-trips, the
// quantizer's absolute error bound (including non-finite values), frame
// self-description, and rejection of truncated / corrupt buffers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "compress/codec.hpp"
#include "compress/codecs.hpp"
#include "util/error.hpp"

namespace hia {
namespace {

std::vector<double> roundtrip(const Codec& codec,
                              const std::vector<double>& values) {
  const std::vector<std::byte> frame = codec.encode(values);
  EXPECT_TRUE(is_encoded_frame(frame));
  EXPECT_EQ(frame_value_count(frame), values.size());
  return decode_frame(frame);
}

/// Bit-exact comparison: distinguishes -0.0 from 0.0 and treats any NaN
/// payload as significant.
void expect_bit_exact(const std::vector<double>& a,
                      const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a[i], 8);
    std::memcpy(&bb, &b[i], 8);
    EXPECT_EQ(ba, bb) << "index " << i;
  }
}

std::vector<double> awkward_values() {
  return {0.0,
          -0.0,
          1.0,
          -1.0,
          3.141592653589793,
          -2.5e-308,  // subnormal territory
          1.7e308,
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::denorm_min(),
          42.0};
}

TEST(RawCodec, RoundTripsBitExact) {
  RawCodec codec;
  expect_bit_exact(awkward_values(), roundtrip(codec, awkward_values()));
  EXPECT_TRUE(roundtrip(codec, {}).empty());
}

TEST(RleCodec, RoundTripsBitExact) {
  RleCodec codec;
  std::vector<double> labels;
  for (int run = 0; run < 7; ++run) {
    for (int i = 0; i < 1 + run * 13; ++i) {
      labels.push_back(static_cast<double>(run % 3));
    }
  }
  expect_bit_exact(labels, roundtrip(codec, labels));
  expect_bit_exact(awkward_values(), roundtrip(codec, awkward_values()));
  EXPECT_TRUE(roundtrip(codec, {}).empty());
}

TEST(RleCodec, CompressesConstantRuns) {
  RleCodec codec;
  const std::vector<double> labels(4096, 7.0);
  const auto frame = codec.encode(labels);
  EXPECT_LT(frame.size(), labels.size() * sizeof(double) / 100);
}

TEST(DeltaVarintCodec, RoundTripsSortedIds) {
  DeltaVarintCodec codec;
  std::vector<double> ids;
  uint64_t v = 5;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(static_cast<double>(v));
    v += static_cast<uint64_t>(1 + (i % 17));
  }
  expect_bit_exact(ids, roundtrip(codec, ids));
  const auto frame = codec.encode(ids);
  EXPECT_LT(frame.size(), ids.size() * sizeof(double) / 2);
}

TEST(DeltaVarintCodec, FallsBackLosslesslyOnNonIntegral) {
  DeltaVarintCodec codec;
  expect_bit_exact(awkward_values(), roundtrip(codec, awkward_values()));
}

TEST(QuantizeShuffleCodec, ZeroBoundIsBitExact) {
  QuantizeShuffleCodec codec(0.0);
  EXPECT_EQ(codec.error_bound(), 0.0);
  expect_bit_exact(awkward_values(), roundtrip(codec, awkward_values()));
}

TEST(QuantizeShuffleCodec, RespectsAbsoluteErrorBound) {
  // Randomized fields spanning several magnitudes, plus non-finite values
  // that must be preserved exactly.
  std::mt19937_64 rng(12345);
  for (const double bound : {1e-2, 1e-6, 1e-12}) {
    QuantizeShuffleCodec codec(bound);
    EXPECT_EQ(codec.error_bound(), bound);
    std::vector<double> values;
    std::uniform_real_distribution<double> unit(-1.0, 1.0);
    for (int i = 0; i < 5000; ++i) {
      const double scale = std::pow(10.0, static_cast<int>(rng() % 7) - 3);
      values.push_back(unit(rng) * scale);
    }
    values.push_back(std::numeric_limits<double>::infinity());
    values.push_back(-std::numeric_limits<double>::infinity());
    values.push_back(std::numeric_limits<double>::quiet_NaN());
    values.push_back(1.9e306);  // overflows the quantizer -> exception list

    const std::vector<double> decoded = roundtrip(codec, values);
    ASSERT_EQ(decoded.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      if (std::isfinite(values[i])) {
        EXPECT_LE(std::abs(values[i] - decoded[i]), bound) << "index " << i;
      } else {
        uint64_t ba = 0, bb = 0;
        std::memcpy(&ba, &values[i], 8);
        std::memcpy(&bb, &decoded[i], 8);
        EXPECT_EQ(ba, bb) << "non-finite index " << i;
      }
    }
  }
}

TEST(QuantizeShuffleCodec, ReducesSmoothFieldSize) {
  // A smooth field quantized at 1e-6 needs few offset bytes per value.
  QuantizeShuffleCodec codec(1e-6);
  std::vector<double> field;
  for (int i = 0; i < 8192; ++i) {
    field.push_back(std::sin(0.001 * i) + 0.1 * std::cos(0.01 * i));
  }
  const auto frame = codec.encode(field);
  EXPECT_LT(frame.size() * 2, field.size() * sizeof(double));
}

TEST(CodecRegistry, MakeCodecParsesSpecs) {
  EXPECT_EQ(make_codec("raw")->kind(), CodecKind::kRaw);
  EXPECT_EQ(make_codec("rle")->kind(), CodecKind::kRle);
  EXPECT_EQ(make_codec("delta")->kind(), CodecKind::kDeltaVarint);
  const auto q = make_codec("quantize:1e-6");
  EXPECT_EQ(q->kind(), CodecKind::kQuantizeShuffle);
  EXPECT_DOUBLE_EQ(q->error_bound(), 1e-6);
  EXPECT_THROW((void)make_codec("zstd"), Error);
  EXPECT_THROW((void)make_codec("quantize:-1"), Error);
  EXPECT_THROW((void)make_codec("quantize:bogus"), Error);
  EXPECT_GE(codec_names().size(), 4u);
}

TEST(Frame, RejectsTruncatedAndCorruptBuffers) {
  QuantizeShuffleCodec codec(1e-6);
  std::vector<double> values;
  for (int i = 0; i < 257; ++i) values.push_back(0.25 * i);
  const std::vector<std::byte> frame = codec.encode(values);

  // Too short to even hold a header.
  std::vector<std::byte> stub(frame.begin(), frame.begin() + 8);
  EXPECT_FALSE(is_encoded_frame(stub));
  EXPECT_THROW((void)decode_frame(stub), Error);

  // Header intact but payload truncated at several depths.
  for (const size_t keep : {frame.size() - 1, frame.size() / 2, size_t{33}}) {
    std::vector<std::byte> cut(frame.begin(),
                               frame.begin() + static_cast<long>(keep));
    EXPECT_THROW((void)decode_frame(cut), Error);
  }

  // Bad magic and unsupported version must be rejected outright.
  std::vector<std::byte> bad_magic = frame;
  bad_magic[0] = std::byte{0xFF};
  EXPECT_FALSE(is_encoded_frame(bad_magic));
  EXPECT_THROW((void)decode_frame(bad_magic), Error);
  std::vector<std::byte> bad_version = frame;
  bad_version[4] = std::byte{99};
  EXPECT_THROW((void)decode_frame(bad_version), Error);

  // Unknown codec kind in an otherwise valid header.
  std::vector<std::byte> bad_kind = frame;
  bad_kind[5] = std::byte{200};
  EXPECT_THROW((void)decode_frame(bad_kind), Error);

  // Corrupt interior payload bytes: decode must throw, never crash or
  // return silently wrong sizes. (Flipping offset bytes may legally decode
  // to different values for a lossy codec, so corrupt the structured
  // leading section where validation applies.)
  for (const size_t at : {size_t{32}, size_t{40}}) {
    std::vector<std::byte> corrupt = frame;
    corrupt[at] = std::byte{0xEE};
    try {
      const auto decoded = decode_frame(corrupt);
      EXPECT_EQ(decoded.size(), values.size());
    } catch (const Error&) {
      // Rejection is the expected outcome.
    }
  }
}

TEST(Frame, DeltaAndRleRejectTruncation) {
  DeltaVarintCodec delta;
  RleCodec rle;
  std::vector<double> ids;
  for (int i = 0; i < 300; ++i) ids.push_back(static_cast<double>(i * 3));
  for (const Codec* codec : {static_cast<const Codec*>(&delta),
                             static_cast<const Codec*>(&rle)}) {
    const auto frame = codec->encode(ids);
    std::vector<std::byte> cut(frame.begin(),
                               frame.begin() + static_cast<long>(40));
    EXPECT_THROW((void)decode_frame(cut), Error);
  }
}

}  // namespace
}  // namespace hia
