// Tests for VirtualComm: point-to-point semantics, collectives, and
// property-style sweeps over world sizes (TEST_P).
#include <gtest/gtest.h>

#include <numeric>

#include "runtime/comm.hpp"
#include "util/rng.hpp"

namespace hia {
namespace {

TEST(Comm, SendRecvRoundTrip) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 7, 42);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 7), 42);
    }
  });
}

TEST(Comm, SendToSelf) {
  World world(1);
  world.run([](Comm& comm) {
    comm.send_value(0, 1, 3.5);
    EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 1), 3.5);
  });
}

TEST(Comm, TagMatchingIsSelective) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 10, 100);
      comm.send_value(1, 20, 200);
    } else {
      // Receive in the reverse order of sending: tags select correctly.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 100);
    }
  });
}

TEST(Comm, AnySourceReportsSender) {
  World world(3);
  world.run([](Comm& comm) {
    if (comm.rank() != 0) {
      comm.send_value(0, 5, comm.rank());
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int src = -1;
        const int v = comm.recv_value<int>(kAnySource, 5, &src);
        EXPECT_EQ(v, src);
        seen += v;
      }
      EXPECT_EQ(seen, 3);  // ranks 1 + 2
    }
  });
}

TEST(Comm, IprobeSeesPendingMessage) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 9, 1);
      comm.barrier();
    } else {
      comm.barrier();
      EXPECT_TRUE(comm.iprobe(0, 9));
      EXPECT_FALSE(comm.iprobe(0, 8));
      (void)comm.recv_value<int>(0, 9);
      EXPECT_FALSE(comm.iprobe(0, 9));
    }
  });
}

TEST(Comm, VectorPayloads) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> v(1000);
      std::iota(v.begin(), v.end(), 0.0);
      comm.send_vector(1, 3, v);
    } else {
      const auto v = comm.recv_vector<double>(0, 3);
      ASSERT_EQ(v.size(), 1000u);
      EXPECT_DOUBLE_EQ(v[999], 999.0);
    }
  });
}

TEST(Comm, RethrowsRankException) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 1) throw Error("rank 1 failed");
               }),
               Error);
}

TEST(Comm, BytesSentAccounting) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> v(10, 1.0);
      comm.send_vector(1, 0, v);
    } else {
      (void)comm.recv_vector<double>(0, 0);
    }
  });
  EXPECT_EQ(world.total_bytes_sent(), 80u);
}

class CommSizes : public ::testing::TestWithParam<int> {};

TEST_P(CommSizes, BarrierSynchronizes) {
  const int n = GetParam();
  World world(n);
  std::atomic<int> arrived{0};
  world.run([&](Comm& comm) {
    arrived.fetch_add(1);
    comm.barrier();
    // After the barrier, every rank must have arrived.
    EXPECT_EQ(arrived.load(), n);
    comm.barrier();
  });
}

TEST_P(CommSizes, AllreduceSumMatchesSerial) {
  const int n = GetParam();
  World world(n);
  world.run([&](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    const double total = comm.allreduce_sum(mine);
    EXPECT_DOUBLE_EQ(total, n * (n + 1) / 2.0);
  });
}

TEST_P(CommSizes, AllreduceMinMax) {
  const int n = GetParam();
  World world(n);
  world.run([&](Comm& comm) {
    const double mine = static_cast<double>(comm.rank());
    EXPECT_DOUBLE_EQ(comm.allreduce_max(mine), n - 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_min(mine), 0.0);
  });
}

TEST_P(CommSizes, VectorAllreduce) {
  const int n = GetParam();
  World world(n);
  world.run([&](Comm& comm) {
    std::vector<double> mine{1.0, static_cast<double>(comm.rank()), -1.0};
    const auto out = comm.allreduce_sum(mine);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], n);
    EXPECT_DOUBLE_EQ(out[1], n * (n - 1) / 2.0);
    EXPECT_DOUBLE_EQ(out[2], -n);
  });
}

TEST_P(CommSizes, ReduceToNonzeroRoot) {
  const int n = GetParam();
  const int root = n - 1;
  World world(n);
  world.run([&](Comm& comm) {
    std::vector<double> mine{static_cast<double>(comm.rank() + 1)};
    const auto out = comm.reduce(
        mine, root, [](std::span<double> acc, std::span<const double> in) {
          acc[0] += in[0];
        });
    if (comm.rank() == root) {
      EXPECT_DOUBLE_EQ(out[0], n * (n + 1) / 2.0);
    }
  });
}

TEST_P(CommSizes, BroadcastFromEveryRoot) {
  const int n = GetParam();
  World world(n);
  world.run([&](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<std::byte> data;
      if (comm.rank() == root) {
        data = {std::byte{7}, std::byte{static_cast<unsigned char>(root)}};
      }
      const auto out = comm.broadcast(root, data);
      ASSERT_EQ(out.size(), 2u);
      EXPECT_EQ(out[1], std::byte{static_cast<unsigned char>(root)});
    }
  });
}

TEST_P(CommSizes, GatherCollectsByRank) {
  const int n = GetParam();
  World world(n);
  world.run([&](Comm& comm) {
    const auto payload =
        std::vector<std::byte>{std::byte{static_cast<unsigned char>(comm.rank())}};
    auto all = comm.gather(0, payload);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<size_t>(n));
      for (int r = 0; r < n; ++r) {
        ASSERT_EQ(all[static_cast<size_t>(r)].size(), 1u);
        EXPECT_EQ(all[static_cast<size_t>(r)][0],
                  std::byte{static_cast<unsigned char>(r)});
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CommSizes, AlltoallPersonalizedExchange) {
  const int n = GetParam();
  World world(n);
  world.run([&](Comm& comm) {
    std::vector<std::vector<std::byte>> sends(static_cast<size_t>(n));
    for (int d = 0; d < n; ++d) {
      sends[static_cast<size_t>(d)] = {
          std::byte{static_cast<unsigned char>(comm.rank() * 16 + d)}};
    }
    const auto recvd = comm.alltoall(sends);
    ASSERT_EQ(recvd.size(), static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(recvd[static_cast<size_t>(s)].size(), 1u);
      EXPECT_EQ(recvd[static_cast<size_t>(s)][0],
                std::byte{static_cast<unsigned char>(s * 16 + comm.rank())});
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CommSizes,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Comm, StressManyCollectives) {
  World world(8);
  world.run([](Comm& comm) {
    Xoshiro256 rng(11, static_cast<uint64_t>(comm.rank()));
    double acc = 0.0;
    for (int iter = 0; iter < 50; ++iter) {
      acc += comm.allreduce_sum(rng.uniform());
      comm.barrier();
    }
    // All ranks agree on the accumulated reduction results.
    const double max = comm.allreduce_max(acc);
    const double min = comm.allreduce_min(acc);
    EXPECT_DOUBLE_EQ(max, min);
  });
}

}  // namespace
}  // namespace hia
