// Tests for the MergeTree structure, persistence pairing (elder rule), and
// persistence simplification on hand-constructed trees with known answers.
#include <gtest/gtest.h>

#include "analysis/topology/merge_tree.hpp"
#include "util/error.hpp"

namespace hia {
namespace {

// A classic two-peak profile:
//   ids:      0     1     2     3     4
//   values:  10     8     6     9     2
// Tree: 0 (max) -> 2, 3 (max) -> 2 (saddle), 2 -> 4 (root/min), 1 regular
// between 0 and 2.
MergeTree two_peak() {
  std::vector<MergeTree::Node> nodes = {
      {0, 10.0, 2},   // idx 0: max A, parent = node idx 2 (value 8)
      {3, 9.0, 3},    // idx 1: max B, parent = saddle (idx 3)
      {1, 8.0, 3},    // idx 2: regular on A's branch -> saddle
      {2, 6.0, 4},    // idx 3: saddle -> root
      {4, 2.0, MergeTree::kNoParent},  // idx 4: root
  };
  return MergeTree(std::move(nodes));
}

TEST(MergeTree, BasicQueries) {
  const MergeTree t = two_peak();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_TRUE(t.validate().empty()) << t.validate();

  const auto leaves = t.leaves();
  ASSERT_EQ(leaves.size(), 2u);
  const auto roots = t.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(t.nodes()[static_cast<size_t>(roots[0])].id, 4u);

  EXPECT_EQ(t.index_of(3), 1);
  EXPECT_EQ(t.index_of(99), -1);

  const auto counts = t.child_counts();
  EXPECT_EQ(counts[3], 2);  // the saddle
  EXPECT_EQ(counts[4], 1);  // the root
  EXPECT_EQ(counts[0], 0);
}

TEST(MergeTree, ValidateCatchesOrderViolation) {
  std::vector<MergeTree::Node> nodes = {
      {0, 1.0, 1},  // value 1 with parent of value 5: child below parent
      {1, 5.0, MergeTree::kNoParent},
  };
  const MergeTree t(std::move(nodes));
  EXPECT_FALSE(t.validate().empty());
}

TEST(MergeTree, ValidateCatchesBadParentIndex) {
  std::vector<MergeTree::Node> nodes = {{0, 1.0, 7}};
  EXPECT_FALSE(MergeTree(std::move(nodes)).validate().empty());
}

TEST(MergeTree, DuplicateIdsRejected) {
  std::vector<MergeTree::Node> nodes = {{5, 1.0, MergeTree::kNoParent},
                                        {5, 2.0, 0}};
  EXPECT_THROW(MergeTree(std::move(nodes)), Error);
}

TEST(MergeTree, ReducedRemovesRegularNodes) {
  const MergeTree t = two_peak();
  const MergeTree r = t.reduced();
  EXPECT_EQ(r.size(), 4u);  // regular node (id 1) contracted
  EXPECT_EQ(r.index_of(1), -1);
  EXPECT_TRUE(r.validate().empty());
  // Max A (id 0) now points directly at the saddle (id 2).
  const auto idx = r.index_of(0);
  ASSERT_GE(idx, 0);
  const auto parent = r.nodes()[static_cast<size_t>(idx)].parent;
  ASSERT_NE(parent, MergeTree::kNoParent);
  EXPECT_EQ(r.nodes()[static_cast<size_t>(parent)].id, 2u);
}

TEST(MergeTree, CanonicalAndSameStructure) {
  const MergeTree a = two_peak();
  // Same tree, nodes listed in a different order.
  std::vector<MergeTree::Node> shuffled = {
      {4, 2.0, MergeTree::kNoParent},
      {2, 6.0, 0},
      {0, 10.0, 3},
      {1, 8.0, 1},
      {3, 9.0, 1},
  };
  const MergeTree b(std::move(shuffled));
  EXPECT_TRUE(a.same_structure(b));
  EXPECT_TRUE(b.same_structure(a));

  // Different parent topology breaks equality.
  std::vector<MergeTree::Node> other = {
      {0, 10.0, 2},
      {3, 9.0, 2},   // B merges at id 1 instead of the saddle
      {1, 8.0, 3},
      {2, 6.0, 4},
      {4, 2.0, MergeTree::kNoParent},
  };
  EXPECT_FALSE(a.same_structure(MergeTree(std::move(other))));
}

TEST(PersistencePairs, TwoPeakElderRule) {
  const auto pairs = persistence_pairs(two_peak());
  ASSERT_EQ(pairs.size(), 2u);
  // Highest max (id 0, value 10) pairs with the root (value 2):
  EXPECT_EQ(pairs[0].max_id, 0u);
  EXPECT_DOUBLE_EQ(pairs[0].persistence(), 8.0);
  EXPECT_EQ(pairs[0].saddle_id, 4u);
  // Younger max (id 3, value 9) dies at the saddle (value 6):
  EXPECT_EQ(pairs[1].max_id, 3u);
  EXPECT_EQ(pairs[1].saddle_id, 2u);
  EXPECT_DOUBLE_EQ(pairs[1].persistence(), 3.0);
}

// Three-branch tree: maxima 30, 25, 20 merging at saddles 15 then 10.
MergeTree three_peak() {
  std::vector<MergeTree::Node> nodes = {
      {0, 30.0, 3},   // A -> saddle1
      {1, 25.0, 4},   // B -> saddle2
      {2, 20.0, 3},   // C -> saddle1
      {10, 15.0, 4},  // saddle1 (A,C) -> saddle2
      {11, 10.0, 5},  // saddle2 -> root
      {12, 0.0, MergeTree::kNoParent},
  };
  return MergeTree(std::move(nodes));
}

TEST(PersistencePairs, ThreePeakOrdering) {
  const auto pairs = persistence_pairs(three_peak());
  ASSERT_EQ(pairs.size(), 3u);
  // Descending persistence: A(30-0), B(25-10), C(20-15).
  EXPECT_EQ(pairs[0].max_id, 0u);
  EXPECT_DOUBLE_EQ(pairs[0].persistence(), 30.0);
  EXPECT_EQ(pairs[1].max_id, 1u);
  EXPECT_DOUBLE_EQ(pairs[1].persistence(), 15.0);
  EXPECT_EQ(pairs[2].max_id, 2u);
  EXPECT_DOUBLE_EQ(pairs[2].persistence(), 5.0);
}

TEST(Simplify, ThresholdPrunesLowPersistenceBranches) {
  const MergeTree t = three_peak();
  // Threshold 6: branch C (persistence 5) is removed; saddle1 becomes
  // regular and is contracted away.
  const MergeTree s = simplify(t, 6.0);
  EXPECT_TRUE(s.validate().empty());
  EXPECT_EQ(s.leaves().size(), 2u);
  EXPECT_EQ(s.index_of(2), -1);   // C gone
  EXPECT_EQ(s.index_of(10), -1);  // its saddle contracted

  // Threshold 20: only branch A survives (root branch is always kept).
  const MergeTree s2 = simplify(t, 20.0);
  EXPECT_EQ(s2.leaves().size(), 1u);
  ASSERT_GE(s2.index_of(0), 0);
}

TEST(Simplify, ZeroThresholdKeepsAllLeaves) {
  const MergeTree s = simplify(three_peak(), 0.0);
  EXPECT_EQ(s.leaves().size(), 3u);
}

TEST(Simplify, SingleNodeTree) {
  std::vector<MergeTree::Node> nodes = {{0, 1.0, MergeTree::kNoParent}};
  const MergeTree t(std::move(nodes));
  const auto pairs = persistence_pairs(t);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(pairs[0].persistence(), 0.0);
  EXPECT_EQ(simplify(t, 100.0).size(), 1u);
}

TEST(MergeTree, EmptyTree) {
  const MergeTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.validate().empty());
  EXPECT_TRUE(persistence_pairs(t).empty());
  EXPECT_TRUE(t.leaves().empty());
}

}  // namespace
}  // namespace hia
