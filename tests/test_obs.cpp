// Unit tests for the observability layer: span tracer, counter registry,
// Chrome-trace export, and the staging-scheduler integration.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "staging/scheduler.hpp"
#include "util/log.hpp"

namespace hia {
namespace {

/// Fresh tracer state for each test (rings stay registered; events and
/// accounting are cleared).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disable();
    obs::reset();
    obs::reset_counters();
  }
  void TearDown() override {
    obs::disable();
    obs::reset();
    obs::reset_counters();
  }
};

int count_phase(const std::vector<obs::Event>& events, obs::Phase phase) {
  int n = 0;
  for (const auto& e : events) {
    if (e.phase == phase) ++n;
  }
  return n;
}

// ---- Tracks ----

TEST_F(ObsTest, TrackMappingRoundTrips) {
  int id = -1;
  EXPECT_TRUE(obs::is_rank_track(obs::rank_track(0), &id));
  EXPECT_EQ(id, 0);
  EXPECT_TRUE(obs::is_rank_track(obs::rank_track(37), &id));
  EXPECT_EQ(id, 37);
  EXPECT_TRUE(obs::is_bucket_track(obs::bucket_track(5), &id));
  EXPECT_EQ(id, 5);
  EXPECT_FALSE(obs::is_rank_track(obs::kTrackControl));
  EXPECT_FALSE(obs::is_bucket_track(obs::kTrackControl));
  EXPECT_FALSE(obs::is_bucket_track(obs::rank_track(3)));
}

// ---- Recording basics ----

TEST_F(ObsTest, DisabledRecordsNothing) {
  { HIA_TRACE_SPAN("test", "quiet"); }
  obs::instant("test", "quiet-instant");
  EXPECT_EQ(obs::recorded_events(), 0u);
}

TEST_F(ObsTest, SpanArmedAtConstructionStaysPaired) {
  // A span constructed while disabled must not emit a dangling 'E' when
  // tracing is enabled mid-scope.
  {
    HIA_TRACE_SPAN("test", "unarmed");
    obs::enable();
  }
  EXPECT_EQ(obs::recorded_events(), 0u);

  // And the converse: armed at construction, disabled mid-scope, the 'E'
  // still lands so the pair is complete.
  obs::enable();
  {
    HIA_TRACE_SPAN("test", "armed");
    obs::disable();
  }
  const auto events = obs::snapshot();
  EXPECT_EQ(count_phase(events, obs::Phase::kBegin), 1);
  EXPECT_EQ(count_phase(events, obs::Phase::kEnd), 1);
}

TEST_F(ObsTest, NameTruncationIsAccountedNotUB) {
  obs::enable();
  const std::string longname(obs::Event::kNameCapacity * 3, 'x');
  obs::instant("test", longname.c_str());
  EXPECT_EQ(obs::oversized_names(), 1u);
  const auto events = obs::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(std::string(events[0].name).size(), obs::Event::kNameCapacity);
}

// ---- Nesting and ordering under the thread pool ----

TEST_F(ObsTest, SpanNestingUnderThreadPool) {
  obs::enable();
  constexpr int kTasks = 64;
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.enqueue([] {
        HIA_TRACE_SPAN("test", "outer");
        {
          HIA_TRACE_SPAN("test", "inner");
          std::this_thread::yield();
        }
      });
    }
    pool.wait_idle();
  }

  // The pool itself wraps each task in a "pool"/"task" span, so each task
  // contributes three nested pairs.
  const auto events = obs::snapshot();
  EXPECT_EQ(count_phase(events, obs::Phase::kBegin), 3 * kTasks);
  EXPECT_EQ(count_phase(events, obs::Phase::kEnd), 3 * kTasks);

  // The exported JSON must satisfy the Chrome nesting invariant per thread.
  const obs::TraceValidation v =
      obs::validate_chrome_trace_json(obs::chrome_trace_json());
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.spans, static_cast<size_t>(3 * kTasks));
}

TEST_F(ObsTest, SnapshotIsSortedByWallTime) {
  obs::enable();
  for (int i = 0; i < 100; ++i) obs::instant("test", "tick");
  const auto events = obs::snapshot();
  ASSERT_EQ(events.size(), 100u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_us, events[i].t_us);
  }
}

// ---- Ring overflow ----

TEST_F(ObsTest, RingOverflowDropsOldestAndCounts) {
  obs::set_ring_capacity(32);
  obs::enable();

  // A fresh thread gets the small ring; overflow it 10x over.
  std::thread recorder([] {
    obs::set_thread_track(obs::rank_track(99));
    for (int i = 0; i < 320; ++i) {
      HIA_TRACE_SPAN("test", "overflow");
    }
  });
  recorder.join();
  obs::set_ring_capacity(1 << 14);  // restore default for later tests

  EXPECT_GT(obs::dropped_events(), 0u);
  EXPECT_EQ(obs::dropped_events() + obs::recorded_events(), 640u);
  EXPECT_LE(obs::recorded_events(), 32u);

  // Overflow leaves orphan 'E's (their 'B' was overwritten); the export
  // must repair pairing so the trace still validates.
  const obs::TraceValidation v =
      obs::validate_chrome_trace_json(obs::chrome_trace_json());
  EXPECT_TRUE(v.ok) << v.error;
}

// ---- Clocks ----

TEST_F(ObsTest, WallClockMonotoneAndVirtualTimePassesThrough) {
  obs::enable();
  double vtime = 0.0;
  for (int i = 0; i < 10; ++i) {
    vtime += 0.5;
    obs::instant("sim", "vtick", {.step = i, .vtime = vtime});
  }
  const auto events = obs::snapshot();
  ASSERT_EQ(events.size(), 10u);
  double prev_wall = -1.0, prev_virtual = -1.0;
  for (const auto& e : events) {
    EXPECT_GE(e.t_us, prev_wall);       // wall clock never goes backwards
    EXPECT_GT(e.args.vtime, prev_virtual);  // model clock strictly advances
    prev_wall = e.t_us;
    prev_virtual = e.args.vtime;
  }
  EXPECT_GE(obs::now_us(), prev_wall);
}

// ---- Export golden-file invariants ----

TEST_F(ObsTest, ExportedJsonParsesAndPairsEveryBeginWithEnd) {
  obs::enable();
  obs::set_thread_track(obs::rank_track(0));
  {
    HIA_TRACE_SPAN_ARGS("sim", "step", {.rank = 0, .step = 3, .vtime = 1.5});
    HIA_TRACE_SPAN("sim", "halo");
  }
  obs::begin("sched", "task:never-closed");  // repaired at export
  obs::instant("sched", "enqueue", {.step = 3});
  obs::counter_sample("queue_depth", 2.0);
  obs::set_thread_track(obs::kTrackControl);

  const std::string json = obs::chrome_trace_json();
  const obs::TraceValidation v = obs::validate_chrome_trace_json(json);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.spans, 3u);  // step, halo, and the repaired unclosed task
  EXPECT_GT(v.events, 0u);

  // Spot-check the Perfetto-facing surface.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("sim rank 0"), std::string::npos);
  EXPECT_NE(json.find("\"vt_s\""), std::string::npos);
}

TEST_F(ObsTest, ValidatorRejectsMalformedTraces) {
  EXPECT_FALSE(obs::validate_chrome_trace_json("not json").ok);
  EXPECT_FALSE(obs::validate_chrome_trace_json("{}").ok);
  // Mismatched nesting: E for a different name than the open B.
  const char* bad =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1.0,\"name\":\"a\"},"
      "{\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":2.0,\"name\":\"b\"}]}";
  EXPECT_FALSE(obs::validate_chrome_trace_json(bad).ok);
  // Unclosed B.
  const char* unclosed =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1.0,\"name\":\"a\"}]}";
  EXPECT_FALSE(obs::validate_chrome_trace_json(unclosed).ok);
}

// ---- Counters ----

TEST_F(ObsTest, CountersTrackValueAndHighWater) {
  obs::Counter& c = obs::counter("test_gauge");
  c.add(5);
  c.add(3);
  c.add(-6);
  EXPECT_EQ(c.value(), 2);
  EXPECT_EQ(c.max(), 8);
  EXPECT_EQ(&c, &obs::counter("test_gauge"));  // stable identity

  const std::string text = obs::metrics_text();
  EXPECT_NE(text.find("hia_test_gauge 2"), std::string::npos);
  EXPECT_NE(text.find("hia_test_gauge_max 8"), std::string::npos);
  EXPECT_NE(text.find("hia_trace_dropped_events"), std::string::npos);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  obs::Counter& c = obs::counter("test_concurrent");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000);
  EXPECT_EQ(c.max(), 40000);
}

// ---- Scheduler integration: spans cross-check TaskRecords ----

TEST_F(ObsTest, SchedulerSpansMatchTaskRecords) {
  obs::enable();
  NetworkModel net;
  Dart dart(net);
  {
    StagingService service(dart, {1, 2});
    service.register_handler("probe", [](TaskContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
    for (long step = 0; step < 6; ++step) {
      service.submit(InTransitTask{"probe", step, {}, 0});
    }
    service.drain();
    const auto records = service.records();
    ASSERT_EQ(records.size(), 6u);

    // One tracer task span per TaskRecord, on that record's bucket track.
    const auto events = obs::snapshot();
    int task_begins = 0;
    for (const auto& e : events) {
      int bucket = -1;
      if (e.phase == obs::Phase::kBegin &&
          std::string(e.name) == "task:probe") {
        ASSERT_TRUE(obs::is_bucket_track(e.track, &bucket));
        EXPECT_EQ(e.args.bucket, bucket);
        ++task_begins;
      }
    }
    EXPECT_EQ(task_begins, 6);

    const obs::SchedulerTraceStats stats = obs::scheduler_trace_stats();
    EXPECT_EQ(stats.buckets.size(), 2u);
    double busy = 0.0;
    for (const auto& b : stats.buckets) busy += b.busy_s;
    EXPECT_GT(busy, 0.0);
    EXPECT_GE(stats.busy_buckets_max, 1);
    EXPECT_EQ(obs::counter("staging_tasks_completed").value(), 6);
  }
}

// ---- util/log sink (satellite: no deadlock, no data race) ----

TEST_F(ObsTest, LogSinkMayLogWithoutDeadlock) {
  std::atomic<int> outer{0};
  log::set_level(log::Level::kWarn);
  log::set_sink([&](const std::string&) {
    if (outer.fetch_add(1) == 0) {
      // Re-entrant emit while the first emit is in flight: deadlocks if
      // vemit invokes the sink under the registry mutex.
      HIA_LOG_WARN("reentrant", "from inside the sink");
    }
  });
  HIA_LOG_WARN("test", "outer line");
  log::set_sink(nullptr);
  EXPECT_EQ(outer.load(), 2);
}

TEST_F(ObsTest, LogSinkSwapDuringConcurrentEmitIsSafe) {
  log::set_level(log::Level::kWarn);
  std::atomic<bool> stop{false};
  std::atomic<int> delivered{0};
  std::thread emitter([&] {
    while (!stop.load()) HIA_LOG_WARN("race", "line");
  });
  for (int i = 0; i < 200; ++i) {
    log::set_sink([&](const std::string&) { delivered.fetch_add(1); });
  }
  log::set_sink(nullptr);
  stop.store(true);
  emitter.join();
  log::set_level(log::Level::kWarn);
  SUCCEED();  // reaching here without deadlock/crash is the assertion
}

}  // namespace
}  // namespace hia
