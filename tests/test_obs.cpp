// Unit tests for the observability layer: span tracer, counter registry,
// Chrome-trace export, and the staging-scheduler integration.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/labels.hpp"
#include "obs/run_summary.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "staging/scheduler.hpp"
#include "util/log.hpp"

namespace hia {
namespace {

/// Fresh tracer state for each test (rings stay registered; events and
/// accounting are cleared).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disable();
    obs::reset();
    obs::reset_counters();
    obs::reset_histograms();
    obs::reset_timeseries();
    obs::reset_events();
  }
  void TearDown() override {
    obs::disable();
    obs::reset();
    obs::reset_counters();
    obs::reset_histograms();
    obs::reset_timeseries();
    obs::reset_events();
  }
};

int count_phase(const std::vector<obs::Event>& events, obs::Phase phase) {
  int n = 0;
  for (const auto& e : events) {
    if (e.phase == phase) ++n;
  }
  return n;
}

// ---- Tracks ----

TEST_F(ObsTest, TrackMappingRoundTrips) {
  int id = -1;
  EXPECT_TRUE(obs::is_rank_track(obs::rank_track(0), &id));
  EXPECT_EQ(id, 0);
  EXPECT_TRUE(obs::is_rank_track(obs::rank_track(37), &id));
  EXPECT_EQ(id, 37);
  EXPECT_TRUE(obs::is_bucket_track(obs::bucket_track(5), &id));
  EXPECT_EQ(id, 5);
  EXPECT_FALSE(obs::is_rank_track(obs::kTrackControl));
  EXPECT_FALSE(obs::is_bucket_track(obs::kTrackControl));
  EXPECT_FALSE(obs::is_bucket_track(obs::rank_track(3)));
}

// ---- Recording basics ----

TEST_F(ObsTest, DisabledRecordsNothing) {
  { HIA_TRACE_SPAN("test", "quiet"); }
  obs::instant("test", "quiet-instant");
  EXPECT_EQ(obs::recorded_events(), 0u);
}

TEST_F(ObsTest, SpanArmedAtConstructionStaysPaired) {
  // A span constructed while disabled must not emit a dangling 'E' when
  // tracing is enabled mid-scope.
  {
    HIA_TRACE_SPAN("test", "unarmed");
    obs::enable();
  }
  EXPECT_EQ(obs::recorded_events(), 0u);

  // And the converse: armed at construction, disabled mid-scope, the 'E'
  // still lands so the pair is complete.
  obs::enable();
  {
    HIA_TRACE_SPAN("test", "armed");
    obs::disable();
  }
  const auto events = obs::snapshot();
  EXPECT_EQ(count_phase(events, obs::Phase::kBegin), 1);
  EXPECT_EQ(count_phase(events, obs::Phase::kEnd), 1);
}

TEST_F(ObsTest, NameTruncationIsAccountedNotUB) {
  obs::enable();
  const std::string longname(obs::Event::kNameCapacity * 3, 'x');
  obs::instant("test", longname.c_str());
  EXPECT_EQ(obs::oversized_names(), 1u);
  const auto events = obs::snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(std::string(events[0].name).size(), obs::Event::kNameCapacity);
}

// ---- Nesting and ordering under the thread pool ----

TEST_F(ObsTest, SpanNestingUnderThreadPool) {
  obs::enable();
  constexpr int kTasks = 64;
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.enqueue([] {
        HIA_TRACE_SPAN("test", "outer");
        {
          HIA_TRACE_SPAN("test", "inner");
          std::this_thread::yield();
        }
      });
    }
    pool.wait_idle();
  }

  // The pool itself wraps each task in a "pool"/"task" span, so each task
  // contributes three nested pairs.
  const auto events = obs::snapshot();
  EXPECT_EQ(count_phase(events, obs::Phase::kBegin), 3 * kTasks);
  EXPECT_EQ(count_phase(events, obs::Phase::kEnd), 3 * kTasks);

  // The exported JSON must satisfy the Chrome nesting invariant per thread.
  const obs::TraceValidation v =
      obs::validate_chrome_trace_json(obs::chrome_trace_json());
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.spans, static_cast<size_t>(3 * kTasks));
}

TEST_F(ObsTest, SnapshotIsSortedByWallTime) {
  obs::enable();
  for (int i = 0; i < 100; ++i) obs::instant("test", "tick");
  const auto events = obs::snapshot();
  ASSERT_EQ(events.size(), 100u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_us, events[i].t_us);
  }
}

// ---- Ring overflow ----

TEST_F(ObsTest, RingOverflowDropsOldestAndCounts) {
  obs::set_ring_capacity(32);
  obs::enable();

  // A fresh thread gets the small ring; overflow it 10x over.
  std::thread recorder([] {
    obs::set_thread_track(obs::rank_track(99));
    for (int i = 0; i < 320; ++i) {
      HIA_TRACE_SPAN("test", "overflow");
    }
  });
  recorder.join();
  obs::set_ring_capacity(1 << 14);  // restore default for later tests

  EXPECT_GT(obs::dropped_events(), 0u);
  EXPECT_EQ(obs::dropped_events() + obs::recorded_events(), 640u);
  EXPECT_LE(obs::recorded_events(), 32u);

  // Overflow leaves orphan 'E's (their 'B' was overwritten); the export
  // must repair pairing so the trace still validates.
  const obs::TraceValidation v =
      obs::validate_chrome_trace_json(obs::chrome_trace_json());
  EXPECT_TRUE(v.ok) << v.error;
}

// ---- Clocks ----

TEST_F(ObsTest, WallClockMonotoneAndVirtualTimePassesThrough) {
  obs::enable();
  double vtime = 0.0;
  for (int i = 0; i < 10; ++i) {
    vtime += 0.5;
    obs::instant("sim", "vtick", {.step = i, .vtime = vtime});
  }
  const auto events = obs::snapshot();
  ASSERT_EQ(events.size(), 10u);
  double prev_wall = -1.0, prev_virtual = -1.0;
  for (const auto& e : events) {
    EXPECT_GE(e.t_us, prev_wall);       // wall clock never goes backwards
    EXPECT_GT(e.args.vtime, prev_virtual);  // model clock strictly advances
    prev_wall = e.t_us;
    prev_virtual = e.args.vtime;
  }
  EXPECT_GE(obs::now_us(), prev_wall);
}

// ---- Export golden-file invariants ----

TEST_F(ObsTest, ExportedJsonParsesAndPairsEveryBeginWithEnd) {
  obs::enable();
  obs::set_thread_track(obs::rank_track(0));
  {
    HIA_TRACE_SPAN_ARGS("sim", "step", {.rank = 0, .step = 3, .vtime = 1.5});
    HIA_TRACE_SPAN("sim", "halo");
  }
  obs::begin("sched", "task:never-closed");  // repaired at export
  obs::instant("sched", "enqueue", {.step = 3});
  obs::counter_sample("queue_depth", 2.0);
  obs::set_thread_track(obs::kTrackControl);

  const std::string json = obs::chrome_trace_json();
  const obs::TraceValidation v = obs::validate_chrome_trace_json(json);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.spans, 3u);  // step, halo, and the repaired unclosed task
  EXPECT_GT(v.events, 0u);

  // Spot-check the Perfetto-facing surface.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("sim rank 0"), std::string::npos);
  EXPECT_NE(json.find("\"vt_s\""), std::string::npos);
}

TEST_F(ObsTest, ValidatorRejectsMalformedTraces) {
  EXPECT_FALSE(obs::validate_chrome_trace_json("not json").ok);
  EXPECT_FALSE(obs::validate_chrome_trace_json("{}").ok);
  // Mismatched nesting: E for a different name than the open B.
  const char* bad =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1.0,\"name\":\"a\"},"
      "{\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":2.0,\"name\":\"b\"}]}";
  EXPECT_FALSE(obs::validate_chrome_trace_json(bad).ok);
  // Unclosed B.
  const char* unclosed =
      "{\"traceEvents\":["
      "{\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1.0,\"name\":\"a\"}]}";
  EXPECT_FALSE(obs::validate_chrome_trace_json(unclosed).ok);
}

// ---- Counters ----

TEST_F(ObsTest, CountersTrackValueAndHighWater) {
  obs::Counter& c = obs::counter("test_gauge");
  c.add(5);
  c.add(3);
  c.add(-6);
  EXPECT_EQ(c.value(), 2);
  EXPECT_EQ(c.max(), 8);
  EXPECT_EQ(&c, &obs::counter("test_gauge"));  // stable identity

  const std::string text = obs::metrics_text();
  EXPECT_NE(text.find("hia_test_gauge 2"), std::string::npos);
  EXPECT_NE(text.find("hia_test_gauge_max 8"), std::string::npos);
  EXPECT_NE(text.find("hia_trace_dropped_events"), std::string::npos);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  obs::Counter& c = obs::counter("test_concurrent");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000);
  EXPECT_EQ(c.max(), 40000);
}

// ---- Scheduler integration: spans cross-check TaskRecords ----

TEST_F(ObsTest, SchedulerSpansMatchTaskRecords) {
  obs::enable();
  NetworkModel net;
  Dart dart(net);
  {
    StagingService service(dart, {1, 2});
    service.register_handler("probe", [](TaskContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    });
    for (long step = 0; step < 6; ++step) {
      service.submit(InTransitTask{"probe", step, {}, 0});
    }
    service.drain();
    const auto records = service.records();
    ASSERT_EQ(records.size(), 6u);

    // One tracer task span per TaskRecord, on that record's bucket track.
    const auto events = obs::snapshot();
    int task_begins = 0;
    for (const auto& e : events) {
      int bucket = -1;
      if (e.phase == obs::Phase::kBegin &&
          std::string(e.name) == "task:probe") {
        ASSERT_TRUE(obs::is_bucket_track(e.track, &bucket));
        EXPECT_EQ(e.args.bucket, bucket);
        ++task_begins;
      }
    }
    EXPECT_EQ(task_begins, 6);

    const obs::SchedulerTraceStats stats = obs::scheduler_trace_stats();
    EXPECT_EQ(stats.buckets.size(), 2u);
    double busy = 0.0;
    for (const auto& b : stats.buckets) busy += b.busy_s;
    EXPECT_GT(busy, 0.0);
    EXPECT_GE(stats.busy_buckets_max, 1);
    EXPECT_EQ(obs::counter("staging_tasks_completed").value(), 6);
  }
}

// ---- util/log sink (satellite: no deadlock, no data race) ----

TEST_F(ObsTest, LogSinkMayLogWithoutDeadlock) {
  std::atomic<int> outer{0};
  log::set_level(log::Level::kWarn);
  log::set_sink([&](const std::string&) {
    if (outer.fetch_add(1) == 0) {
      // Re-entrant emit while the first emit is in flight: deadlocks if
      // vemit invokes the sink under the registry mutex.
      HIA_LOG_WARN("reentrant", "from inside the sink");
    }
  });
  HIA_LOG_WARN("test", "outer line");
  log::set_sink(nullptr);
  EXPECT_EQ(outer.load(), 2);
}

TEST_F(ObsTest, LogSinkSwapDuringConcurrentEmitIsSafe) {
  log::set_level(log::Level::kWarn);
  std::atomic<bool> stop{false};
  std::atomic<int> delivered{0};
  std::thread emitter([&] {
    while (!stop.load()) HIA_LOG_WARN("race", "line");
  });
  for (int i = 0; i < 200; ++i) {
    log::set_sink([&](const std::string&) { delivered.fetch_add(1); });
  }
  log::set_sink(nullptr);
  stop.store(true);
  emitter.join();
  log::set_level(log::Level::kWarn);
  SUCCEED();  // reaching here without deadlock/crash is the assertion
}

// ---- Histograms ----

TEST_F(ObsTest, HistogramBucketLayoutInvariant) {
  // Bucket i covers (upper_bound(i-1), upper_bound(i)] exactly, even for
  // values sitting on the boundary (the adversarial case for a log layout).
  const int n = obs::histogram_num_buckets();
  ASSERT_GT(n, 2);
  for (int i = 1; i < n - 1; i += 37) {
    const double ub = obs::histogram_bucket_upper_bound(i);
    EXPECT_EQ(obs::histogram_bucket_index(ub), i) << "upper bound of " << i;
    const double above = std::nextafter(ub, 1e300);
    EXPECT_EQ(obs::histogram_bucket_index(above), i + 1)
        << "just above upper bound of " << i;
  }
  EXPECT_EQ(obs::histogram_bucket_index(obs::kHistogramMinTrackable), 0);
  EXPECT_EQ(obs::histogram_bucket_index(0.0), 0);
  EXPECT_EQ(obs::histogram_bucket_index(-5.0), 0);
  EXPECT_EQ(obs::histogram_bucket_index(2e12), n - 1);
}

TEST_F(ObsTest, HistogramQuantilesWithinBounds) {
  obs::Histogram& h = obs::histogram("test_quantiles");
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(i * 1e-3);  // 1ms..1s
  for (double v : values) h.record(v);
  const obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.min, 1e-3);
  EXPECT_DOUBLE_EQ(snap.max, 1.0);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double exact =
        values[static_cast<size_t>(q * 999.0)];  // sorted input
    const auto bounds = snap.quantile_bounds(q);
    const double estimate = snap.quantile(q);
    EXPECT_GE(estimate, bounds.lower) << "q=" << q;
    EXPECT_LE(estimate, bounds.upper) << "q=" << q;
    // Bucket growth is 2^(1/8): the bound interval (and so the estimate)
    // stays within ~9.05% of the true quantile, doubled for rank slack.
    EXPECT_NEAR(estimate, exact, exact * 0.2) << "q=" << q;
  }
}

TEST_F(ObsTest, HistogramQuantileBoundsAtBucketBoundaries) {
  // Adversarial: every recorded value is exactly a bucket upper bound, so
  // interpolation has zero slack inside the covering bucket.
  obs::Histogram& h = obs::histogram("test_boundaries");
  std::vector<double> values;
  for (int i = 100; i < 140; ++i) {
    values.push_back(obs::histogram_bucket_upper_bound(i));
  }
  for (double v : values) h.record(v);
  const obs::HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (double q : {0.1, 0.5, 0.9}) {
    const auto bounds = snap.quantile_bounds(q);
    const double exact = values[static_cast<size_t>(q * (values.size() - 1))];
    EXPECT_LE(bounds.lower, exact) << "q=" << q;
    EXPECT_GE(bounds.upper * (1.0 + 1e-12), exact) << "q=" << q;
  }
}

TEST_F(ObsTest, HistogramMergeIsAssociativeAndCommutative) {
  obs::Histogram& ha = obs::histogram("test_merge_a");
  obs::Histogram& hb = obs::histogram("test_merge_b");
  obs::Histogram& hc = obs::histogram("test_merge_c");
  for (int i = 1; i <= 100; ++i) ha.record(i * 1e-6);
  for (int i = 1; i <= 50; ++i) hb.record(i * 1e-2);
  for (int i = 1; i <= 25; ++i) hc.record(i * 1.0);
  const auto a = ha.snapshot(), b = hb.snapshot(), c = hc.snapshot();

  const auto left = obs::merge(obs::merge(a, b), c);
  const auto right = obs::merge(a, obs::merge(b, c));
  const auto swapped = obs::merge(obs::merge(c, b), a);
  EXPECT_EQ(left.count, 175u);
  EXPECT_EQ(left.count, right.count);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_DOUBLE_EQ(left.min, right.min);
  EXPECT_DOUBLE_EQ(left.max, right.max);
  EXPECT_EQ(left.buckets, right.buckets);
  EXPECT_EQ(left.buckets, swapped.buckets);

  // Merging with an empty snapshot is the identity.
  const auto with_empty = obs::merge(left, obs::HistogramSnapshot{});
  EXPECT_EQ(with_empty.count, left.count);
  EXPECT_EQ(with_empty.buckets, left.buckets);
  EXPECT_DOUBLE_EQ(with_empty.min, left.min);
}

TEST_F(ObsTest, HistogramConcurrentRecordersMergeExactly) {
  obs::Histogram& h = obs::histogram("test_concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record((t + 1) * 1e-4);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_DOUBLE_EQ(snap.min, 1e-4);
  EXPECT_DOUBLE_EQ(snap.max, 8e-4);
}

// ---- Time series ----

TEST_F(ObsTest, TimeseriesDualClockMonotoneUnderConcurrentSampling) {
  double vclock = 0.0;
  std::mutex vclock_mutex;
  obs::set_virtual_clock(
      [&] {
        std::lock_guard lock(vclock_mutex);
        vclock += 0.5;  // strictly advancing virtual time
        return vclock;
      },
      &vclock);
  obs::register_gauge("test_gauge", [] { return 42.0; });

  constexpr int kThreads = 4;
  constexpr int kSamples = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSamples; ++i) obs::sample_now();
    });
  }
  for (auto& t : threads) t.join();
  obs::clear_virtual_clock(&vclock);

  const auto series = obs::timeseries_snapshot();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].samples.size(),
            static_cast<size_t>(kThreads * kSamples));
  double prev_t = -1.0, prev_vt = -1.0;
  for (const auto& s : series[0].samples) {
    EXPECT_GE(s.t_s, prev_t) << "wall clock went backwards";
    EXPECT_GT(s.vt_s, prev_vt) << "virtual clock went backwards";
    EXPECT_DOUBLE_EQ(s.value, 42.0);
    prev_t = s.t_s;
    prev_vt = s.vt_s;
  }
}

TEST_F(ObsTest, TimeseriesRingOverwritesOldest) {
  obs::set_series_capacity(4);
  int tick = 0;
  obs::register_gauge("test_ring", [&] { return static_cast<double>(++tick); });
  for (int i = 0; i < 10; ++i) obs::sample_now();
  const auto series = obs::timeseries_snapshot();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].samples.size(), 4u);
  EXPECT_EQ(series[0].dropped, 6u);
  // The surviving window is the most recent four ticks, oldest first.
  EXPECT_DOUBLE_EQ(series[0].samples.front().value, 7.0);
  EXPECT_DOUBLE_EQ(series[0].samples.back().value, 10.0);
  obs::set_series_capacity(4096);
}

TEST_F(ObsTest, TimeseriesBackgroundSampler) {
  obs::register_counter_gauge("test_counter_gauge");
  obs::counter("test_counter_gauge").add(7);
  obs::start_sampler(200.0);
  EXPECT_TRUE(obs::sampler_running());
  // Poll until the sampler has demonstrably ticked twice instead of
  // sleeping a fixed interval: the 1-core CI box can starve the sampler
  // thread for longer than any hard-coded sleep.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto probe = obs::timeseries_snapshot();
    if (!probe.empty() && probe[0].samples.size() >= 2u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  obs::stop_sampler();
  EXPECT_FALSE(obs::sampler_running());
  const auto series = obs::timeseries_snapshot();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_GE(series[0].samples.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].samples.back().value, 7.0);
}

// ---- RunSummary + bench_diff ----

TEST_F(ObsTest, RunSummaryJsonValidates) {
  obs::histogram("test_latency_s").record(0.01);
  obs::histogram("test_latency_s").record(0.02);
  obs::counter("test_total").add(3);
  obs::register_gauge("test_depth", [] { return 2.0; });
  obs::sample_now();

  obs::RunSummary meta;
  meta.bench = "unit";
  meta.metrics["answer"] = 42.0;
  const std::string json = obs::run_summary_json(meta);
  const obs::SummaryValidation v = obs::validate_run_summary_json(json);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.bench, "unit");
  EXPECT_EQ(v.metrics, 1u);
  EXPECT_GE(v.counters, 1u);
  EXPECT_GE(v.histograms, 1u);
  EXPECT_GE(v.series, 1u);
}

TEST_F(ObsTest, RunSummaryValidationRejectsGarbage) {
  EXPECT_FALSE(obs::validate_run_summary_json("{}").ok);
  EXPECT_FALSE(obs::validate_run_summary_json("not json").ok);
  EXPECT_FALSE(
      obs::validate_run_summary_json("{\"schema\": \"wrong-tag\"}").ok);
}

TEST_F(ObsTest, DiffRunSummariesGatesOnTolerance) {
  obs::RunSummary base;
  base.bench = "unit";
  base.metrics["stable"] = 100.0;
  base.metrics["drifty"] = 10.0;
  base.tolerances["default"] = 0.35;
  base.tolerances["drifty"] = 0.05;
  const std::string baseline = obs::run_summary_json(base);

  obs::RunSummary ok_run;
  ok_run.bench = "unit";
  ok_run.metrics["stable"] = 120.0;  // +20% < 35%
  ok_run.metrics["drifty"] = 10.4;   // +4% < 5%
  const obs::DiffReport ok_report =
      obs::diff_run_summaries(obs::run_summary_json(ok_run), baseline);
  EXPECT_TRUE(ok_report.ok) << ok_report.error;
  ASSERT_EQ(ok_report.entries.size(), 2u);

  obs::RunSummary bad_run;
  bad_run.bench = "unit";
  bad_run.metrics["stable"] = 120.0;
  bad_run.metrics["drifty"] = 11.0;  // +10% > 5%
  const obs::DiffReport bad_report =
      obs::diff_run_summaries(obs::run_summary_json(bad_run), baseline);
  EXPECT_FALSE(bad_report.ok);

  obs::RunSummary missing_run;
  missing_run.bench = "unit";
  missing_run.metrics["stable"] = 100.0;  // "drifty" absent
  const obs::DiffReport missing_report =
      obs::diff_run_summaries(obs::run_summary_json(missing_run), baseline);
  EXPECT_FALSE(missing_report.ok);
  bool saw_missing = false;
  for (const auto& e : missing_report.entries) {
    if (e.metric == "drifty") saw_missing = e.missing;
  }
  EXPECT_TRUE(saw_missing);
}

// ---- Prometheus exposition ----

TEST_F(ObsTest, MetricsTextHistogramTripletValidates) {
  obs::counter("test_gauge_metric").add(5);
  obs::Histogram& h = obs::histogram("test_expo_s");
  for (int i = 1; i <= 64; ++i) h.record(i * 1e-3);
  const std::string text = obs::metrics_text();
  const obs::MetricsValidation v = obs::validate_metrics_text(text);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_GE(v.samples, 4u);
  EXPECT_EQ(v.histograms, 1u);
  EXPECT_NE(text.find("hia_test_expo_s_bucket{le=\"+Inf\"} 64"),
            std::string::npos);
  EXPECT_NE(text.find("hia_test_expo_s_count 64"), std::string::npos);
}

// ---- Labels ----

TEST_F(ObsTest, LabeledInstrumentsAreIsolatedFromUnlabeled) {
  obs::Labels t1;
  t1.tenant = 1;
  obs::Labels t2;
  t2.tenant = 2;
  obs::counter("test_tasks").add(5);
  obs::counter("test_tasks", t1).add(2);
  obs::counter("test_tasks", t2).add(3);
  EXPECT_EQ(obs::counter("test_tasks").value(), 5);
  EXPECT_EQ(obs::counter("test_tasks", t1).value(), 2);
  EXPECT_EQ(obs::counter("test_tasks", t2).value(), 3);
  // The unlabeled snapshot (the pre-label surface every report consumes)
  // must not see the labeled cells, and vice versa.
  for (const obs::CounterSample& s : obs::counters_snapshot()) {
    EXPECT_TRUE(s.labels.empty()) << s.name;
    if (s.name == "test_tasks") {
      EXPECT_EQ(s.value, 5);
    }
  }
  size_t labeled = 0;
  for (const obs::CounterSample& s : obs::labeled_counters_snapshot()) {
    EXPECT_FALSE(s.labels.empty()) << s.name;
    if (s.name == "test_tasks") ++labeled;
  }
  EXPECT_EQ(labeled, 2u);

  obs::histogram("test_lat_s").record(0.5);
  obs::histogram("test_lat_s", t1).record(0.25);
  EXPECT_EQ(obs::histogram("test_lat_s").snapshot().count, 1u);
  EXPECT_EQ(obs::histogram("test_lat_s", t1).snapshot().count, 1u);
  EXPECT_DOUBLE_EQ(obs::histogram("test_lat_s", t1).snapshot().max, 0.25);
}

TEST_F(ObsTest, LabelsKeyAndPrometheusRendering) {
  obs::Labels l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.key(), "");
  l.tenant = 3;
  l.bucket = 0;
  EXPECT_EQ(l.key(), "tenant=3,bucket=0");
  EXPECT_EQ(l.prometheus_pairs(), "tenant=\"3\",bucket=\"0\"");
  obs::Labels site;
  site.site = "a\"b\\c";
  EXPECT_EQ(site.prometheus_pairs(), "site=\"a\\\"b\\\\c\"");
}

TEST_F(ObsTest, MetricsTextWithLabelsValidates) {
  obs::Labels t3;
  t3.tenant = 3;
  obs::counter("test_labeled_total").add(7);
  obs::counter("test_labeled_total", t3).add(4);
  obs::Histogram& unlabeled = obs::histogram("test_labeled_s");
  obs::Histogram& labeled = obs::histogram("test_labeled_s", t3);
  for (int i = 1; i <= 8; ++i) {
    unlabeled.record(i * 1e-3);
    labeled.record(i * 2e-3);
  }
  const std::string text = obs::metrics_text();
  const obs::MetricsValidation v = obs::validate_metrics_text(text);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_NE(text.find("hia_test_labeled_total{tenant=\"3\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("hia_test_labeled_s_count{tenant=\"3\"} 8"),
            std::string::npos);
  EXPECT_NE(text.find("tenant=\"3\",le=\"+Inf\"} 8"), std::string::npos);
  // Exactly one # TYPE per metric name, shared by every label set.
  size_t type_decls = 0;
  for (size_t pos = 0;
       (pos = text.find("# TYPE hia_test_labeled_s ", pos)) !=
       std::string::npos;
       ++pos) {
    ++type_decls;
  }
  EXPECT_EQ(type_decls, 1u);
}

TEST_F(ObsTest, ExporterSanitizesAndDedupesIllegalNames) {
  // Both names sanitize to the same legal metric; the exporter must emit
  // one series, not a duplicate pair the validator would reject.
  obs::counter("test-bad.name").add(1);
  obs::counter("test?bad/name").add(2);
  const std::string text = obs::metrics_text();
  const obs::MetricsValidation v = obs::validate_metrics_text(text);
  ASSERT_TRUE(v.ok) << v.error;
  size_t occurrences = 0;
  for (size_t pos = 0;
       (pos = text.find("\nhia_test_bad_name ", pos)) != std::string::npos;
       ++pos) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST_F(ObsTest, MetricsValidationRejectsIllegalAndDuplicateSeries) {
  EXPECT_FALSE(obs::validate_metrics_text("# TYPE 9bad gauge\n9bad 1\n").ok);
  const std::string dup_series =
      "# TYPE hia_x gauge\n"
      "hia_x{tenant=\"1\"} 1\n"
      "hia_x{tenant=\"1\"} 2\n";
  EXPECT_FALSE(obs::validate_metrics_text(dup_series).ok);
  const std::string dup_label =
      "# TYPE hia_x gauge\n"
      "hia_x{tenant=\"1\",tenant=\"2\"} 1\n";
  EXPECT_FALSE(obs::validate_metrics_text(dup_label).ok);
  const std::string bad_label =
      "# TYPE hia_x gauge\n"
      "hia_x{9enant=\"1\"} 1\n";
  EXPECT_FALSE(obs::validate_metrics_text(bad_label).ok);
  // Same labels in a different order are the same series.
  const std::string reordered =
      "# TYPE hia_x gauge\n"
      "hia_x{tenant=\"1\",bucket=\"0\"} 1\n"
      "hia_x{bucket=\"0\",tenant=\"1\"} 2\n";
  EXPECT_FALSE(obs::validate_metrics_text(reordered).ok);
}

TEST_F(ObsTest, MetricsTextCarriesHelpHeadersAndBuildInfo) {
  obs::counter("test_help_gauge").add(1);
  const std::string text = obs::metrics_text();
  ASSERT_TRUE(obs::validate_metrics_text(text).ok);
  EXPECT_NE(text.find("# HELP hia_test_help_gauge "), std::string::npos);
  EXPECT_NE(text.find("# HELP hia_build_info "), std::string::npos);
  EXPECT_NE(text.find("hia_build_info{"), std::string::npos);

  // A TYPE declaration with no preceding HELP is rejected...
  const std::string no_help =
      "# HELP hia_build_info x\n"
      "# TYPE hia_build_info gauge\n"
      "hia_build_info 1\n"
      "# TYPE hia_x gauge\n"
      "hia_x 1\n";
  EXPECT_FALSE(obs::validate_metrics_text(no_help).ok);
  // ...as is an exposition without the constant build-identity gauge...
  const std::string no_build_info =
      "# HELP hia_x x\n"
      "# TYPE hia_x gauge\n"
      "hia_x 1\n";
  EXPECT_FALSE(obs::validate_metrics_text(no_build_info).ok);
  // ...or one where it is not the constant 1.
  const std::string bad_build_info =
      "# HELP hia_build_info x\n"
      "# TYPE hia_build_info gauge\n"
      "hia_build_info 2\n";
  EXPECT_FALSE(obs::validate_metrics_text(bad_build_info).ok);
}

TEST_F(ObsTest, RunSummaryBreakdownsValidate) {
  obs::Labels t1;
  t1.tenant = 1;
  obs::Labels t2;
  t2.tenant = 2;
  obs::counter("test_part_total", t1).add(3);
  obs::counter("test_part_total", t2).add(4);
  obs::histogram("test_part_s", t1).record(0.1);
  obs::histogram("test_part_s", t2).record(0.2);
  obs::RunSummary meta;
  meta.bench = "unit";
  meta.metrics["answer"] = 1.0;
  const std::string json = obs::run_summary_json(meta);
  const obs::SummaryValidation v = obs::validate_run_summary_json(json);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_GE(v.breakdowns, 2u);
  EXPECT_NE(json.find("\"breakdowns\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant=1\""), std::string::npos);

  // Without labeled series the section is omitted entirely, keeping
  // pre-label summaries (and committed baselines) byte-identical.
  obs::reset_counters();
  obs::reset_histograms();
  const std::string plain = obs::run_summary_json(meta);
  EXPECT_EQ(plain.find("\"breakdowns\""), std::string::npos);
  EXPECT_EQ(obs::validate_run_summary_json(plain).breakdowns, 0u);
}

TEST_F(ObsTest, MetricsValidationCatchesMalformedHistograms) {
  EXPECT_FALSE(obs::validate_metrics_text("hia_orphan 3\n").ok);
  const std::string non_cumulative =
      "# TYPE hia_h histogram\n"
      "hia_h_bucket{le=\"0.1\"} 5\n"
      "hia_h_bucket{le=\"0.2\"} 3\n"   // decreasing: invalid
      "hia_h_bucket{le=\"+Inf\"} 5\n"
      "hia_h_sum 0.5\n"
      "hia_h_count 5\n";
  EXPECT_FALSE(obs::validate_metrics_text(non_cumulative).ok);
  const std::string inf_mismatch =
      "# TYPE hia_h histogram\n"
      "hia_h_bucket{le=\"0.1\"} 5\n"
      "hia_h_bucket{le=\"+Inf\"} 5\n"
      "hia_h_sum 0.5\n"
      "hia_h_count 6\n";                // +Inf != _count: invalid
  EXPECT_FALSE(obs::validate_metrics_text(inf_mismatch).ok);
}

}  // namespace
}  // namespace hia
