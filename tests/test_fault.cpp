// Tests for the fault-injection/resilience subsystem: spec parsing,
// deterministic keyed draws, backoff bounds, CRC-guarded frame
// retransmission, the retry -> degrade/shed state machine, scripted bucket
// kills, worker stalls, and concurrent injection (TSan-clean).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/counters.hpp"
#include "runtime/fault.hpp"
#include "runtime/thread_pool.hpp"
#include "staging/scheduler.hpp"
#include "transport/dart.hpp"
#include "util/crc32.hpp"

namespace hia {
namespace {

// ---- Spec parsing ----

TEST(FaultSpec, ParsesEveryDirective) {
  const FaultPlanConfig cfg = FaultPlan::parse_spec(
      "drop=0.1,corrupt=0.2,delay=0.3:0.004,task-fail=0.5:0.006,"
      "stall=0.7:0.008,kill-bucket=2@9,slow-bucket=1:3.5,crash-bucket=3@7,"
      "crash-server=1@4,attempts=6,backoff=0.001:0.05,shed,seed=42");
  EXPECT_DOUBLE_EQ(cfg.frame_drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(cfg.frame_corrupt_prob, 0.2);
  EXPECT_DOUBLE_EQ(cfg.frame_delay_prob, 0.3);
  EXPECT_DOUBLE_EQ(cfg.frame_delay_s, 0.004);
  EXPECT_DOUBLE_EQ(cfg.task_fail_prob, 0.5);
  EXPECT_DOUBLE_EQ(cfg.retry.task_timeout_s, 0.006);
  EXPECT_DOUBLE_EQ(cfg.worker_stall_prob, 0.7);
  EXPECT_DOUBLE_EQ(cfg.worker_stall_s, 0.008);
  ASSERT_EQ(cfg.bucket_kills.size(), 1u);
  EXPECT_EQ(cfg.bucket_kills[0].bucket, 2);
  EXPECT_EQ(cfg.bucket_kills[0].step, 9);
  ASSERT_EQ(cfg.bucket_slowdowns.size(), 1u);
  EXPECT_EQ(cfg.bucket_slowdowns[0].bucket, 1);
  EXPECT_DOUBLE_EQ(cfg.bucket_slowdowns[0].factor, 3.5);
  ASSERT_EQ(cfg.bucket_crashes.size(), 1u);
  EXPECT_EQ(cfg.bucket_crashes[0].bucket, 3);
  EXPECT_EQ(cfg.bucket_crashes[0].step, 7);
  ASSERT_EQ(cfg.server_crashes.size(), 1u);
  EXPECT_EQ(cfg.server_crashes[0].server, 1);
  EXPECT_EQ(cfg.server_crashes[0].step, 4);
  EXPECT_EQ(cfg.retry.max_task_attempts, 6);
  EXPECT_DOUBLE_EQ(cfg.retry.backoff_base_s, 0.001);
  EXPECT_DOUBLE_EQ(cfg.retry.backoff_cap_s, 0.05);
  EXPECT_FALSE(cfg.retry.degrade_to_insitu);
  EXPECT_EQ(cfg.seed, 42u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse_spec("drop=1.5"), Error);     // prob > 1
  EXPECT_THROW(FaultPlan::parse_spec("drop=nope"), Error);    // not a number
  EXPECT_THROW(FaultPlan::parse_spec("kill-bucket=2"), Error);  // no @step
  EXPECT_THROW(FaultPlan::parse_spec("crash-bucket=2"), Error);  // no @step
  EXPECT_THROW(FaultPlan::parse_spec("crash-server=0"), Error);  // no @step
  EXPECT_THROW(FaultPlan::parse_spec("slow-bucket=1:0.5"), Error);  // < 1x
  EXPECT_THROW(FaultPlan::parse_spec("backoff=0.01:0.001"), Error);  // cap<base
  EXPECT_THROW(FaultPlan::parse_spec("attempts=0"), Error);
  EXPECT_THROW(FaultPlan::parse_spec("bogus=1"), Error);
  EXPECT_NO_THROW(FaultPlan::parse_spec(""));  // empty = all defaults
}

// ---- Deterministic keyed draws ----

TEST(FaultPlanDraws, SameSeedSameDecisions) {
  const FaultPlanConfig cfg =
      FaultPlan::parse_spec("drop=0.3,corrupt=0.3,delay=0.3,task-fail=0.3");
  const FaultPlan a(cfg);
  const FaultPlan b(cfg);
  for (uint64_t key = 1; key <= 500; ++key) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      const auto fa = a.frame_fault(key, attempt);
      const auto fb = b.frame_fault(key, attempt);
      EXPECT_EQ(fa.drop, fb.drop);
      EXPECT_EQ(fa.corrupt, fb.corrupt);
      EXPECT_EQ(fa.corrupt_byte, fb.corrupt_byte);
      EXPECT_DOUBLE_EQ(fa.delay_s, fb.delay_s);
      EXPECT_EQ(a.task_fails(key, attempt), b.task_fails(key, attempt));
      EXPECT_DOUBLE_EQ(a.backoff_seconds(key, attempt),
                       b.backoff_seconds(key, attempt));
    }
  }
}

TEST(FaultPlanDraws, DifferentSeedsDiverge) {
  FaultPlanConfig cfg = FaultPlan::parse_spec("task-fail=0.5");
  const FaultPlan a(cfg);
  cfg.seed = 2;
  const FaultPlan b(cfg);
  int differing = 0;
  for (uint64_t key = 1; key <= 200; ++key) {
    if (a.task_fails(key, 1) != b.task_fails(key, 1)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlanDraws, ProbabilitiesAreHonoredRoughly) {
  const FaultPlan plan(FaultPlan::parse_spec("task-fail=0.2"));
  int fails = 0;
  constexpr int kTrials = 5000;
  for (uint64_t key = 1; key <= kTrials; ++key) {
    if (plan.task_fails(key, 1)) ++fails;
  }
  const double rate = static_cast<double>(fails) / kTrials;
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(FaultPlanDraws, BackoffStaysWithinBounds) {
  const FaultPlan plan(
      FaultPlan::parse_spec("task-fail=1,backoff=0.002:0.040"));
  for (uint64_t task = 1; task <= 50; ++task) {
    for (int attempt = 1; attempt <= 6; ++attempt) {
      const double s = plan.backoff_seconds(task, attempt);
      EXPECT_GE(s, 0.002);
      EXPECT_LE(s, 0.040);
    }
  }
}

// ---- CRC + frame retransmission on the Dart wire ----

TEST(Crc32, KnownVector) {
  // The standard IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
}

TEST(FaultDart, DroppedFramesExhaustAttemptsAndThrow) {
  const FaultPlan plan(FaultPlan::parse_spec("drop=1"));
  NetworkModel net;
  Dart::Options opts;
  opts.faults = &plan;
  Dart dart(net, opts);
  const int src = dart.register_node("src");
  const int dst = dart.register_node("dst");
  const DartHandle h = dart.put_doubles(src, {1.0, 2.0, 3.0});
  EXPECT_THROW(dart.get(dst, h), Error);
  const DartCounters counters = dart.counters();
  // Every attempt but the last counted as a retry; the final one threw.
  EXPECT_EQ(counters.get_retries,
            static_cast<size_t>(plan.retry().max_frame_attempts - 1));
  EXPECT_GT(plan.stats().frames_dropped, 0u);
}

TEST(FaultDart, CrcCatchesCorruptionAndRetransmits) {
  const FaultPlan plan(FaultPlan::parse_spec("corrupt=0.5,seed=3"));
  NetworkModel net;
  Dart::Options opts;
  opts.faults = &plan;
  Dart dart(net, opts);
  const int src = dart.register_node("src");
  const int dst = dart.register_node("dst");

  std::vector<double> payload(256);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<double>(i) * 0.5 - 3.0;
  }
  int retransmitted = 0;
  for (int i = 0; i < 20; ++i) {
    const DartHandle h = dart.put_doubles(src, payload);
    TransferStats stats;
    // Corrupted attempts are caught by the CRC and retransmitted; the
    // delivered payload is always byte-exact.
    const std::vector<double> out = dart.get_doubles(dst, h, &stats);
    EXPECT_EQ(out, payload);
    if (stats.retries > 0) ++retransmitted;
    dart.release(h);
  }
  EXPECT_GT(retransmitted, 0);
  const DartCounters counters = dart.counters();
  EXPECT_GT(counters.crc_failures, 0u);
  EXPECT_GT(counters.recovered_bytes, 0u);
  EXPECT_EQ(counters.crc_failures, plan.stats().frames_corrupted);
}

TEST(FaultDart, NullPlanLeavesWireUntouched) {
  NetworkModel net;
  Dart dart(net);
  const int src = dart.register_node("src");
  const int dst = dart.register_node("dst");
  const DartHandle h = dart.put_doubles(src, {4.0, 5.0});
  TransferStats stats;
  EXPECT_EQ(dart.get_doubles(dst, h, &stats), (std::vector<double>{4.0, 5.0}));
  EXPECT_EQ(stats.retries, 0);
  EXPECT_DOUBLE_EQ(stats.injected_delay_s, 0.0);
  EXPECT_EQ(dart.counters().get_retries, 0u);
}

// ---- Retry -> degrade/shed state machine ----

struct FaultedService {
  explicit FaultedService(const std::string& spec, int buckets = 2)
      : plan(FaultPlan::parse_spec(spec)), dart(net) {
    service = std::make_unique<StagingService>(
        dart, StagingService::Options{1, buckets, &plan});
  }
  FaultPlan plan;
  NetworkModel net;
  Dart dart;
  std::unique_ptr<StagingService> service;
};

TEST(FaultStaging, RetryThenDegradeConservesTasks) {
  FaultedService f("task-fail=1,attempts=3,backoff=0.0001:0.001");
  std::atomic<int> executions{0};
  f.service->register_handler("work", [&](TaskContext& ctx) {
    executions.fetch_add(1);
    ctx.set_result({std::byte{0x5a}});
  });
  constexpr int kTasks = 6;
  std::vector<uint64_t> ids;
  for (int t = 0; t < kTasks; ++t) {
    ids.push_back(f.service->submit(InTransitTask{"work", t, {}, 0}));
  }
  f.service->drain();

  const auto records = f.service->records();
  ASSERT_EQ(records.size(), static_cast<size_t>(kTasks));
  for (const TaskRecord& r : records) {
    EXPECT_EQ(r.outcome, TaskOutcome::kDegraded);
    EXPECT_EQ(r.attempts, 3);         // 2 failed bucket attempts + fallback
    EXPECT_EQ(r.bucket, -1);          // ran on the in-situ fallback executor
    EXPECT_GT(r.backoff_seconds, 0.0);
  }
  // The handler ran exactly once per task (on the fallback), and degraded
  // tasks still deliver their results.
  EXPECT_EQ(executions.load(), kTasks);
  for (const uint64_t id : ids) {
    EXPECT_TRUE(f.service->take_result(id).has_value());
  }
}

TEST(FaultStaging, ShedPolicyDropsLoudly) {
  const int64_t dropped_before =
      obs::counter("staging_tasks_dropped").value();
  FaultedService f("task-fail=1,attempts=2,backoff=0.0001:0.001,shed");
  std::atomic<int> executions{0};
  f.service->register_handler("work",
                              [&](TaskContext&) { executions.fetch_add(1); });
  constexpr int kTasks = 4;
  for (int t = 0; t < kTasks; ++t) {
    f.service->submit(InTransitTask{"work", t, {}, 0});
  }
  f.service->drain();

  const auto records = f.service->records();
  ASSERT_EQ(records.size(), static_cast<size_t>(kTasks));
  for (const TaskRecord& r : records) {
    EXPECT_EQ(r.outcome, TaskOutcome::kShed);
    EXPECT_EQ(r.attempts, 2);
  }
  EXPECT_EQ(executions.load(), 0);  // shed work never runs
  EXPECT_EQ(obs::counter("staging_tasks_dropped").value() - dropped_before,
            kTasks);
}

TEST(FaultStaging, HandlerExceptionIsRetried) {
  FaultedService f("attempts=4,backoff=0.0001:0.001");
  std::atomic<int> calls{0};
  f.service->register_handler("flaky", [&](TaskContext&) {
    if (calls.fetch_add(1) < 2) throw Error("transient pull failure");
  });
  f.service->submit(InTransitTask{"flaky", 0, {}, 0});
  f.service->drain();

  const auto records = f.service->records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, TaskOutcome::kCompleted);
  EXPECT_EQ(records[0].attempts, 3);  // threw twice, succeeded third
  EXPECT_GE(records[0].bucket, 0);    // still on a real bucket
  EXPECT_EQ(calls.load(), 3);
}

TEST(FaultStaging, RetriesPreferADifferentBucket) {
  // Task 1's first attempt fails; with 2 live buckets the retry must not
  // land on the bucket that failed it.
  FaultedService f("task-fail=0.4,attempts=4,backoff=0.0001:0.001");
  std::mutex mu;
  std::map<uint64_t, std::vector<int>> buckets_used;
  f.service->register_handler("work", [&](TaskContext& ctx) {
    std::lock_guard lock(mu);
    buckets_used[ctx.task().task_id].push_back(ctx.bucket());
  });
  for (int t = 0; t < 12; ++t) {
    f.service->submit(InTransitTask{"work", t, {}, 0});
  }
  f.service->drain();

  bool any_retry = false;
  for (const TaskRecord& r : f.service->records()) {
    if (r.attempts > 1 && r.outcome == TaskOutcome::kCompleted &&
        r.last_failed_bucket >= 0) {
      any_retry = true;
      EXPECT_NE(r.bucket, r.last_failed_bucket);
    }
  }
  EXPECT_TRUE(any_retry);  // seed 1 @ 40%: some task retried and completed
}

TEST(FaultStaging, DeterministicReplayUnderFixedSeed) {
  auto run = [] {
    FaultedService f("task-fail=0.5,attempts=3,backoff=0.0001:0.001,seed=9");
    f.service->register_handler("work", [](TaskContext&) {});
    for (int t = 0; t < 10; ++t) {
      f.service->submit(InTransitTask{"work", t, {}, 0});
    }
    f.service->drain();
    // (task_id -> outcome/attempts) is the deterministic part; bucket
    // placement and timing may vary with thread interleaving.
    std::map<uint64_t, std::pair<int, int>> ledger;
    for (const TaskRecord& r : f.service->records()) {
      ledger[r.task_id] = {static_cast<int>(r.outcome), r.attempts};
    }
    return ledger;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
}

// ---- Scripted bucket kills ----

TEST(FaultStaging, ScriptedKillRetiresBucket) {
  FaultedService f("kill-bucket=1@5", 2);
  f.service->register_handler("work", [](TaskContext&) {});
  EXPECT_EQ(f.service->live_bucket_count(), 2);
  for (int t = 0; t < 10; ++t) {
    f.service->submit(InTransitTask{"work", t, {}, 0});
  }
  f.service->drain();

  EXPECT_EQ(f.service->live_bucket_count(), 1);
  EXPECT_EQ(f.plan.stats().buckets_killed, 1u);
  const auto records = f.service->records();
  ASSERT_EQ(records.size(), 10u);
  for (const TaskRecord& r : records) {
    EXPECT_EQ(r.outcome, TaskOutcome::kCompleted);
  }
}

TEST(FaultStaging, TotalWipeoutDegradesEverything) {
  FaultedService f("kill-bucket=0@0,kill-bucket=1@0", 2);
  f.service->register_handler("work", [](TaskContext&) {});
  for (int t = 0; t < 5; ++t) {
    f.service->submit(InTransitTask{"work", t, {}, 0});
  }
  f.service->drain();

  EXPECT_EQ(f.service->live_bucket_count(), 0);
  const auto records = f.service->records();
  ASSERT_EQ(records.size(), 5u);
  for (const TaskRecord& r : records) {
    EXPECT_EQ(r.outcome, TaskOutcome::kDegraded);
    EXPECT_EQ(r.bucket, -1);
  }
}

// ---- Ungraceful crashes: leases, epoch fencing, replication ----

// Poll-with-deadline helper (the repo rule for timing-dependent asserts:
// never a bare sleep). Returns false if `pred` stayed false for 10 s.
template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(FaultStaging, CrashDuringComputeReexecutesExactlyOnce) {
  // Choreography: two tasks block both buckets mid-compute; a step-1
  // submission then crashes bucket 0 under one of them. The lease on the
  // stranded task must expire, the task must re-execute on the surviving
  // bucket, and the crashed bucket's late completion must be fenced —
  // every task terminal exactly once.
  FaultedService f("crash-bucket=0@1,attempts=4,backoff=0.0001:0.001", 2);
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  f.service->register_handler("block", [&](TaskContext& ctx) {
    started.fetch_add(1);
    ASSERT_TRUE(eventually([&] { return release.load(); }));
    // Result encodes the executing bucket so the test can prove the
    // delivered result came from the re-execution, not the zombie.
    ctx.set_result({static_cast<std::byte>(ctx.bucket())});
  });

  const uint64_t a = f.service->submit(InTransitTask{"block", 0, {}, 0});
  const uint64_t b = f.service->submit(InTransitTask{"block", 0, {}, 0});
  // Both buckets are now provably holding one blocked task each.
  ASSERT_TRUE(eventually([&] { return started.load() == 2; }));

  const uint64_t c = f.service->submit(InTransitTask{"block", 1, {}, 0});
  EXPECT_EQ(f.service->live_bucket_count(), 1);
  EXPECT_EQ(f.plan.stats().buckets_crashed, 1u);

  // Drive the lease clock until the crashed owner's lease expires and its
  // task is reclaimed (drain() would do this too, but polling heartbeat()
  // directly keeps the expiry observable before the handlers unblock).
  ASSERT_TRUE(eventually([&] {
    f.service->heartbeat();
    return f.service->leases_expired() >= 1;
  }));
  release.store(true);
  f.service->drain();

  EXPECT_EQ(f.service->leases_expired(), 1u);
  EXPECT_EQ(f.service->tasks_reexecuted(), 1u);
  // drain() returns once every task is terminal; the fenced zombie is a
  // side path that may still be mid-return — poll, don't assert.
  EXPECT_TRUE(eventually([&] { return f.service->zombies_fenced() == 1; }));

  const auto records = f.service->records();
  ASSERT_EQ(records.size(), 3u);
  std::map<uint64_t, int> terminals;  // task -> record count (exactly once)
  uint64_t reexecuted = 0;
  for (const TaskRecord& r : records) {
    EXPECT_EQ(r.outcome, TaskOutcome::kCompleted);
    terminals[r.task_id] += 1;
    if (r.attempts == 2) {
      reexecuted = r.task_id;
      // The reclaimed task finished on the surviving bucket, never the
      // crashed one.
      EXPECT_EQ(r.bucket, 1);
    } else {
      EXPECT_EQ(r.attempts, 1);
    }
  }
  for (const uint64_t id : {a, b, c}) {
    EXPECT_EQ(terminals[id], 1) << "task " << id;
  }
  ASSERT_NE(reexecuted, 0u);
  // The delivered result is the re-execution's (bucket 1), not the fenced
  // zombie's (bucket 0).
  const auto result = f.service->take_result(reexecuted);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], std::byte{1});
}

TEST(FaultStaging, CrashWipeoutDegradesStrandedTask) {
  // The crashed bucket was the last one: the reclaimed task cannot
  // re-execute in-transit, so it must degrade to the in-situ fallback —
  // still counted exactly once, never lost.
  FaultedService f("crash-bucket=0@1,attempts=4,backoff=0.0001:0.001", 1);
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  f.service->register_handler("block", [&](TaskContext&) {
    if (started.fetch_add(1) == 0) {
      ASSERT_TRUE(eventually([&] { return release.load(); }));
    }
  });
  const uint64_t a = f.service->submit(InTransitTask{"block", 0, {}, 0});
  ASSERT_TRUE(eventually([&] { return started.load() == 1; }));
  f.service->submit(InTransitTask{"block", 1, {}, 0});
  EXPECT_EQ(f.service->live_bucket_count(), 0);
  ASSERT_TRUE(eventually([&] {
    f.service->heartbeat();
    return f.service->leases_expired() >= 1;
  }));
  release.store(true);
  f.service->drain();

  const auto records = f.service->records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(eventually([&] { return f.service->zombies_fenced() == 1; }));
  for (const TaskRecord& r : records) {
    if (r.task_id == a) {
      // Reclaimed with no live bucket left: degraded, not re-executed.
      EXPECT_EQ(r.outcome, TaskOutcome::kDegraded);
      EXPECT_EQ(r.bucket, -1);
    } else {
      // Submitted after the wipeout: orphaned straight to the fallback.
      EXPECT_EQ(r.outcome, TaskOutcome::kDegraded);
    }
  }
}

TEST(FaultStaging, CrashServerDuringTransfersKeepsReplicatedObjects) {
  // Objects staged before an ungraceful server loss must stay readable
  // through every later transfer: with replicas=2 the lookups fall back
  // to the surviving copy and read-repair restores the factor.
  FaultPlan plan(FaultPlan::parse_spec("crash-server=0@2"));
  NetworkModel net;
  Dart dart(net);
  StagingService service(dart,
                         StagingService::Options{3, 2, &plan, nullptr, 2});
  constexpr long kSteps = 10;
  for (long s = 0; s < kSteps; ++s) {
    DataDescriptor d;
    d.variable = "T";
    d.step = s;
    d.box = Box3{{0, 0, 0}, {4, 4, 4}};
    service.store().put(d);
    d.variable = "P";
    service.store().put(d);
  }
  EXPECT_EQ(service.store().bytes(), 0u);  // descriptors carry no payload

  std::atomic<int> missing{0};
  service.register_handler("read", [&](TaskContext& ctx) {
    // Every step's objects must still be visible, before or after the
    // crash (the step-2 submission below fires it).
    if (service.store().query_all("T", ctx.task().step).size() != 1u ||
        service.store().query_all("P", ctx.task().step).size() != 1u) {
      missing.fetch_add(1);
    }
  });
  for (long s = 0; s < kSteps; ++s) {
    service.submit(InTransitTask{"read", s, {}, 0});
  }
  service.drain();

  EXPECT_TRUE(service.store().is_server_crashed(0));
  EXPECT_EQ(service.store().live_servers(), 2);
  EXPECT_EQ(missing.load(), 0);
  // Zero committed objects lost: every key had a live replica.
  EXPECT_EQ(service.store().objects_lost(), 0u);
  // At least one key's replica chain included the dead server, so lookups
  // actually exercised read-repair (deterministic: shard hashing is fixed).
  EXPECT_GT(service.store().replicas_repaired(), 0u);
  const auto records = service.records();
  ASSERT_EQ(records.size(), static_cast<size_t>(kSteps));
  for (const TaskRecord& r : records) {
    EXPECT_EQ(r.outcome, TaskOutcome::kCompleted);
  }
  // Post-crash puts target only live servers and stay fully readable.
  DataDescriptor late;
  late.variable = "late";
  late.step = 99;
  late.box = Box3{{0, 0, 0}, {2, 2, 2}};
  service.store().put(late);
  EXPECT_EQ(service.store().query_all("late", 99).size(), 1u);
}

// ---- Worker stalls ----

TEST(FaultPool, InstalledPlanStallsWorkers) {
  const FaultPlan plan(FaultPlan::parse_spec("stall=1:0.0005"));
  const int64_t stalls_before = obs::counter("pool_worker_stalls").value();
  install_worker_faults(&plan);
  {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
      pool.enqueue([&] { ran.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 8);
  }
  install_worker_faults(nullptr);
  EXPECT_GE(obs::counter("pool_worker_stalls").value() - stalls_before, 8);
  EXPECT_GE(plan.stats().worker_stalls, 8u);
}

// ---- Concurrent injection (exercised under TSan via ci/sanitize.sh) ----

TEST(FaultPlanDraws, ConcurrentInjectionIsRaceFree) {
  const FaultPlan plan(FaultPlan::parse_spec(
      "drop=0.2,corrupt=0.2,delay=0.2,task-fail=0.2,stall=0.2"));
  constexpr int kThreads = 4;
  constexpr uint64_t kIters = 2000;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> observed_drops{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&plan, &observed_drops, t] {
      uint64_t drops = 0;
      for (uint64_t i = 1; i <= kIters; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kIters + i;
        if (plan.frame_fault(key, 1).drop) ++drops;
        (void)plan.task_fails(key, 1);
        (void)plan.backoff_seconds(key, 2);
        (void)plan.worker_stall_seconds(key);
      }
      observed_drops.fetch_add(drops);
    });
  }
  for (auto& th : threads) th.join();
  // The atomic tally agrees with what the callers saw.
  EXPECT_EQ(plan.stats().frames_dropped, observed_drops.load());
  // Decisions are keyed, so a replay on one thread matches what the
  // concurrent run decided.
  const FaultPlan replay(FaultPlan::parse_spec(
      "drop=0.2,corrupt=0.2,delay=0.2,task-fail=0.2,stall=0.2"));
  uint64_t replay_drops = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 1; i <= kIters; ++i) {
      const uint64_t key = static_cast<uint64_t>(t) * kIters + i;
      if (replay.frame_fault(key, 1).drop) ++replay_drops;
    }
  }
  EXPECT_EQ(replay_drops, observed_drops.load());
}

TEST(FaultStaging, ConcurrentFaultedSubmissionsStayConserved) {
  FaultedService f("task-fail=0.3,attempts=3,backoff=0.0001:0.001", 3);
  f.service->register_handler("work", [](TaskContext&) {});
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 8;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&f, p] {
      for (int t = 0; t < kPerProducer; ++t) {
        f.service->submit(InTransitTask{"work", p * kPerProducer + t, {}, 0});
      }
    });
  }
  for (auto& th : producers) th.join();
  f.service->drain();

  const auto records = f.service->records();
  EXPECT_EQ(records.size(), static_cast<size_t>(kProducers * kPerProducer));
  for (const TaskRecord& r : records) {
    EXPECT_NE(r.outcome, TaskOutcome::kShed);  // degrade policy: none lost
  }
}

}  // namespace
}  // namespace hia
