// critical_path — causal makespan attribution for an hia-events-v1 spill
// (obs/attrib.hpp):
//
//   critical_path <events.bin> [--summary out.json] [--trace out.json]
//                 [--top K]
//
// Rebuilds every task's timeline from the flight-recorder file, checks the
// exact additive phase partition (admit + queue + backoff + transfer +
// compute + drain == turnaround, per task), reconstructs the campaign DAG
// (intra-task chains, bucket-occupancy serialization, step barriers,
// credit dependencies), and extracts the critical path. Prints the
// makespan-decomposition table and the top-K longest chains; optionally
// emits a Chrome-trace waterfall (--trace) and a schema-valid RunSummary
// of the attribution metrics (--summary).
//
// Structural invariants are enforced, not just reported: the critical path
// must not exceed the measured makespan and must cover at least the
// longest single-task chain.
//
// Exit status: 0 on success, 1 when attribution fails (dropped records,
// unconserved partition, violated path invariant), 2 on usage/I/O errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/run_summary.hpp"
#include "obs/timeseries.hpp"

namespace {

using hia::obs::Attribution;
using hia::obs::CriticalPath;
using hia::obs::kPhaseCount;
using hia::obs::TaskPhase;
using hia::obs::phase_name;

int usage() {
  std::fprintf(stderr,
               "usage: critical_path <events.bin> [--summary out.json] "
               "[--trace out.json] [--top K]\n");
  return 2;
}

/// Chrome-trace waterfall: one 'X' slice per timeline segment, tasks as
/// threads of a "campaign" process, the critical path replayed on its own
/// process so it reads as a single lane in Perfetto.
std::string waterfall_json(const Attribution& attrib,
                           const CriticalPath& cp) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,"
         "\"name\":\"process_name\","
         "\"args\":{\"name\":\"attribution waterfall\"}}";
  out << ",{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"ts\":0,"
         "\"name\":\"process_name\","
         "\"args\":{\"name\":\"critical path\"}}";
  char buf[256];
  for (const hia::obs::TaskTimeline& tl : attrib.tasks) {
    for (const hia::obs::TaskTimeline::Segment& s : tl.segments) {
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"X\",\"pid\":1,\"tid\":%llu,\"ts\":%.3f,"
                    "\"dur\":%.3f,\"cat\":\"attrib\",\"name\":\"%s\","
                    "\"args\":{\"bucket\":%d,\"attempt\":%d}}",
                    static_cast<unsigned long long>(tl.task_id),
                    s.begin_vt * 1e6, (s.end_vt - s.begin_vt) * 1e6,
                    phase_name(s.phase), s.bucket, s.attempt);
      out << buf;
    }
  }
  for (const CriticalPath::Node& n : cp.path) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"cat\":\"critical\",\"name\":\"%s\","
                  "\"args\":{\"task\":%llu,\"bucket\":%d}}",
                  n.begin_vt * 1e6, (n.end_vt - n.begin_vt) * 1e6,
                  phase_name(n.phase),
                  static_cast<unsigned long long>(n.task_id), n.bucket);
    out << buf;
  }
  out << "]}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const char* events_path = nullptr;
  const char* summary_path = nullptr;
  const char* trace_path = nullptr;
  int top_k = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) return usage();
    if (std::strcmp(argv[i], "--summary") == 0 && i + 1 < argc) {
      summary_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      top_k = std::atoi(argv[++i]);
      if (top_k < 1) return usage();
    } else if (argv[i][0] != '-' && events_path == nullptr) {
      events_path = argv[i];
    } else {
      return usage();
    }
  }
  if (events_path == nullptr) return usage();

  const Attribution attrib = hia::obs::attribute_events_file(events_path);
  if (!attrib.ok && attrib.tasks.empty() && attrib.dropped == 0) {
    // Framing failure before any timeline was rebuilt: an I/O-level error.
    std::fprintf(stderr, "critical_path: %s: %s\n", events_path,
                 attrib.error.c_str());
    return 2;
  }
  std::printf("critical_path: %s: %zu tasks, %llu dropped records\n",
              events_path, attrib.tasks.size(),
              static_cast<unsigned long long>(attrib.dropped));
  if (!attrib.ok || !attrib.conserved) {
    std::fprintf(stderr, "critical_path: attribution FAILED: %s\n",
                 attrib.error.c_str());
    return 1;
  }

  const CriticalPath cp = hia::obs::extract_critical_path(attrib, top_k);
  if (!cp.ok) {
    std::fprintf(stderr, "critical_path: extraction FAILED: %s\n",
                 cp.error.c_str());
    return 1;
  }

  // Makespan decomposition: where the campaign's task-seconds went, and
  // which phases the critical path itself is made of.
  std::printf("  makespan %.6f s, total turnaround %.6f s across %zu "
              "tasks (all partitions exact)\n",
              attrib.makespan_s, attrib.total_turnaround_s,
              attrib.tasks.size());
  std::printf("  %-10s  %14s  %7s  %14s  %7s\n", "phase", "task-seconds",
              "share", "on-path (s)", "share");
  for (int p = 0; p < kPhaseCount; ++p) {
    const double total = attrib.phase_totals[p];
    const double on_path = cp.phase_on_path[p];
    std::printf("  %-10s  %14.6f  %6.1f%%  %14.6f  %6.1f%%\n",
                phase_name(static_cast<TaskPhase>(p)), total,
                attrib.total_turnaround_s > 0.0
                    ? 100.0 * total / attrib.total_turnaround_s
                    : 0.0,
                on_path,
                cp.length_s > 0.0 ? 100.0 * on_path / cp.length_s : 0.0);
  }
  std::printf("  critical path %.6f s (%.1f%% of makespan), longest "
              "single-task chain %.6f s\n",
              cp.length_s,
              attrib.makespan_s > 0.0
                  ? 100.0 * cp.length_s / attrib.makespan_s
                  : 0.0,
              cp.longest_task_chain_s);
  for (size_t c = 0; c < cp.top_chains.size(); ++c) {
    double len = 0.0;
    for (const CriticalPath::Node& n : cp.top_chains[c]) {
      len += n.end_vt - n.begin_vt;
    }
    std::printf("  chain %zu: %.6f s, %zu segments\n", c + 1, len,
                cp.top_chains[c].size());
    for (const CriticalPath::Node& n : cp.top_chains[c]) {
      std::printf("    task %-6llu %-10s %10.6f s  [%0.6f .. %0.6f]%s%d\n",
                  static_cast<unsigned long long>(n.task_id),
                  phase_name(n.phase), n.end_vt - n.begin_vt, n.begin_vt,
                  n.end_vt, n.bucket >= 0 ? "  bucket " : "  bucket ",
                  n.bucket);
    }
  }

  // The structural guarantees the DAG construction promises. A violation
  // is an attribution bug, so it fails the run like a broken partition.
  const double eps = 1e-6 * std::max(1.0, attrib.makespan_s);
  bool invariants_ok = true;
  if (cp.length_s > attrib.makespan_s + eps) {
    std::fprintf(stderr,
                 "critical_path: INVARIANT VIOLATED: path %.9f s exceeds "
                 "makespan %.9f s\n",
                 cp.length_s, attrib.makespan_s);
    invariants_ok = false;
  }
  if (cp.length_s + eps < cp.longest_task_chain_s) {
    std::fprintf(stderr,
                 "critical_path: INVARIANT VIOLATED: path %.9f s shorter "
                 "than longest task chain %.9f s\n",
                 cp.length_s, cp.longest_task_chain_s);
    invariants_ok = false;
  }

  if (trace_path != nullptr) {
    const std::string trace = waterfall_json(attrib, cp);
    const hia::obs::TraceValidation tv =
        hia::obs::validate_chrome_trace_json(trace);
    if (!tv.ok) {
      std::fprintf(stderr, "critical_path: waterfall trace invalid: %s\n",
                   tv.error.c_str());
      return 1;
    }
    std::ofstream out(trace_path, std::ios::binary);
    out << trace;
    if (!out.good()) {
      std::fprintf(stderr, "critical_path: cannot write %s\n", trace_path);
      return 2;
    }
    std::printf("  waterfall trace: %s (%zu events)\n", trace_path,
                tv.events);
  }

  if (summary_path != nullptr) {
    // The RunSummary harness renders the registry, and trace_lint treats
    // a summary with no distribution or series as a bypassed harness —
    // so publish the attribution itself as real instruments: the
    // turnaround distribution and the completion trajectory on the
    // campaign's virtual timeline.
    hia::obs::Histogram& turnaround =
        hia::obs::histogram("attrib_task_turnaround_s");
    std::vector<double> terminals;
    terminals.reserve(attrib.tasks.size());
    for (const hia::obs::TaskTimeline& tl : attrib.tasks) {
      turnaround.record(tl.turnaround_s);
      terminals.push_back(tl.terminal_vt);
    }
    std::sort(terminals.begin(), terminals.end());
    size_t done = 0;
    double replay_vt = 0.0;
    hia::obs::set_virtual_clock([&replay_vt] { return replay_vt; },
                                &replay_vt);
    hia::obs::register_gauge("attrib_tasks_done",
                             [&done] { return static_cast<double>(done); });
    for (const double vt : terminals) {
      replay_vt = vt;
      ++done;
      hia::obs::sample_now();
    }
    hia::obs::clear_virtual_clock(&replay_vt);

    hia::obs::RunSummary summary;
    summary.bench = "critical_path";
    summary.metrics["attribution_conserved_ok"] = attrib.conserved ? 1 : 0;
    summary.metrics["tasks"] = static_cast<double>(attrib.tasks.size());
    summary.metrics["dropped_records"] =
        static_cast<double>(attrib.dropped);
    summary.metrics["makespan_s"] = attrib.makespan_s;
    summary.metrics["total_turnaround_s"] = attrib.total_turnaround_s;
    summary.metrics["critical_path_s"] = cp.length_s;
    summary.metrics["longest_task_chain_s"] = cp.longest_task_chain_s;
    for (int p = 0; p < kPhaseCount; ++p) {
      const std::string name = phase_name(static_cast<TaskPhase>(p));
      summary.metrics["phase_total_" + name + "_s"] =
          attrib.phase_totals[p];
      summary.metrics["phase_on_path_" + name + "_s"] =
          cp.phase_on_path[p];
    }
    if (!hia::obs::write_run_summary(summary_path, summary)) {
      std::fprintf(stderr, "critical_path: cannot write %s\n",
                   summary_path);
      return 2;
    }
    std::printf("  attribution summary: %s\n", summary_path);
  }

  return invariants_ok ? 0 : 1;
}
