// bench_diff: the CI perf-regression gate. Compares a freshly produced
// RunSummary (schema hia-run-summary-v1) against a blessed baseline from
// bench/baselines/, metric by metric, using the baseline's per-metric
// relative tolerances ("tolerances" object; key "default" sets the
// fallback).
//
//   bench_diff <fresh-summary.json> <baseline.json>
//
// Exit codes: 0 = every baseline metric within tolerance,
//             1 = regression (drift past tolerance, or metric missing),
//             2 = usage / I/O / schema error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/run_summary.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: bench_diff <fresh-summary.json> <baseline.json>\n");
    return 2;
  }
  std::string fresh_json, baseline_json;
  if (!read_file(argv[1], fresh_json)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", argv[1]);
    return 2;
  }
  if (!read_file(argv[2], baseline_json)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", argv[2]);
    return 2;
  }

  const hia::obs::DiffReport report =
      hia::obs::diff_run_summaries(fresh_json, baseline_json);
  if (!report.error.empty()) {
    std::fprintf(stderr, "bench_diff: %s\n", report.error.c_str());
    return 2;
  }

  std::printf("%-28s %14s %14s %9s %9s  %s\n", "metric", "baseline", "fresh",
              "rel diff", "tol", "verdict");
  for (const auto& e : report.entries) {
    if (e.missing) {
      std::printf("%-28s %14.6g %14s %9s %9.3f  MISSING\n", e.metric.c_str(),
                  e.baseline, "-", "-", e.tolerance);
      continue;
    }
    std::printf("%-28s %14.6g %14.6g %9.3f %9.3f  %s\n", e.metric.c_str(),
                e.baseline, e.fresh, e.rel_diff, e.tolerance,
                e.ok ? "ok" : "REGRESSION");
  }
  if (!report.ok) {
    std::printf("\nbench_diff: REGRESSION against %s\n", argv[2]);
    return 1;
  }
  std::printf("\nbench_diff: all %zu metrics within tolerance\n",
              report.entries.size());
  return 0;
}
