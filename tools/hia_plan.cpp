// hia_plan — replay-driven what-if capacity planner for hia-events-v1
// spills (planner/replay.hpp):
//
//   hia_plan <events.bin> [--set K=V,...] [--sweep KEY=SPEC]...
//            [--calibrate] [--tolerance F] [--summary out.json]
//
// Reconstructs the recorded task workload (arrival order, admission
// waits, per-task transfer/compute/drain costs, tenants, input bytes)
// and re-executes it against the staging-scheduler + NetworkModel
// discrete-event replay under hypothetical configurations:
//
//   --set K=V,...      scenario overrides (buckets, credits,
//                      queue-depth, divert, policy, nodes, base-nodes,
//                      arrival-scale, xfer, codec, codec-ratio,
//                      smsg-lat, smsg-bw, smsg-max, bte-lat, bte-bw,
//                      congestion); repeatable, later keys win
//   --sweep KEY=SPEC   sweep axis: V1,V2,... | LO..HI | LO..HI:STEP;
//                      repeatable, axes cross-multiply into a grid
//   --calibrate        replay the recorded configuration and require
//                      the predicted makespan to match the measured one
//   --tolerance F      relative calibration tolerance (default 0.15)
//   --summary FILE     schema-valid RunSummary (hia-run-summary-v1) with
//                      replay_calibrated_ok / replay_sweep_ok booleans
//                      and a plan_makespan_s[label] metric per scenario
//
// A spill with dropped records FAILS CLOSED (exit 1): lost records mean
// the replayed workload is unverifiable.
//
// Exit status: 0 on success, 1 when extraction/replay/calibration fails,
// 2 on usage/I-O errors.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/histogram.hpp"
#include "obs/run_summary.hpp"
#include "obs/timeseries.hpp"
#include "planner/replay.hpp"

namespace {

using hia::obs::kPhaseCount;
using hia::obs::TaskPhase;
using hia::obs::phase_name;
using hia::planner::Calibration;
using hia::planner::Prediction;
using hia::planner::Scenario;
using hia::planner::SweepSpec;
using hia::planner::Workload;

int usage() {
  std::fprintf(
      stderr,
      "usage: hia_plan <events.bin> [--set K=V,...] [--sweep KEY=SPEC]...\n"
      "                [--calibrate] [--tolerance F] [--summary out.json]\n"
      "  --set K=V,...    scenario overrides (buckets, credits,\n"
      "                   queue-depth, divert, policy, nodes, base-nodes,\n"
      "                   arrival-scale, xfer, codec, codec-ratio,\n"
      "                   smsg-lat, smsg-bw, smsg-max, bte-lat, bte-bw,\n"
      "                   congestion); repeatable, later keys win\n"
      "  --sweep KEY=SPEC sweep axis: V1,V2,... | LO..HI | LO..HI:STEP;\n"
      "                   repeatable, axes cross-multiply\n"
      "  --calibrate      require predicted makespan to reproduce the\n"
      "                   measured one under the recorded configuration\n"
      "  --tolerance F    relative calibration tolerance (default %.2f)\n"
      "  --summary FILE   write an hia-run-summary-v1 RunSummary\n",
      hia::planner::kDefaultCalibrationTolerance);
  return 2;
}

void print_prediction(const Prediction& p) {
  std::printf(
      "  predicted makespan %.6f s, %llu completed, %llu degraded, "
      "%llu shed\n",
      p.makespan_s, static_cast<unsigned long long>(p.completed),
      static_cast<unsigned long long>(p.degraded),
      static_cast<unsigned long long>(p.shed));
  std::printf("  peak queue depth %ld, bucket utilization %.1f%%\n",
              p.peak_queue_depth, 100.0 * p.utilization);
  std::printf("  %-10s  %14s  %7s\n", "phase", "task-seconds", "share");
  for (int i = 0; i < kPhaseCount; ++i) {
    std::printf("  %-10s  %14.6f  %6.1f%%\n",
                phase_name(static_cast<TaskPhase>(i)), p.phase_totals[i],
                p.total_turnaround_s > 0.0
                    ? 100.0 * p.phase_totals[i] / p.total_turnaround_s
                    : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* events_path = nullptr;
  const char* summary_path = nullptr;
  std::vector<std::string> set_specs;
  std::vector<std::string> sweep_specs;
  bool do_calibrate = false;
  double tolerance = hia::planner::kDefaultCalibrationTolerance;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) return usage();
    if (std::strcmp(argv[i], "--set") == 0 && i + 1 < argc) {
      set_specs.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      sweep_specs.push_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--calibrate") == 0) {
      do_calibrate = true;
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
      if (!(tolerance > 0.0)) return usage();
    } else if (std::strcmp(argv[i], "--summary") == 0 && i + 1 < argc) {
      summary_path = argv[++i];
    } else if (argv[i][0] != '-' && events_path == nullptr) {
      events_path = argv[i];
    } else {
      return usage();
    }
  }
  if (events_path == nullptr) return usage();

  // Validate the scenario and sweep specs before touching the spill, so
  // usage errors fail fast and print nothing but the diagnostic.
  Scenario base;
  std::string error;
  for (const std::string& spec : set_specs) {
    if (!hia::planner::parse_scenario(spec, &base, &error)) {
      std::fprintf(stderr, "hia_plan: --set %s: %s\n", spec.c_str(),
                   error.c_str());
      return 2;
    }
    if (!base.label.empty()) base.label += ';';
    base.label += spec;
  }
  if (base.label.empty()) base.label = "recorded";

  std::vector<SweepSpec> sweeps;
  for (const std::string& spec : sweep_specs) {
    SweepSpec axis;
    if (!hia::planner::parse_sweep(spec, &axis, &error)) {
      std::fprintf(stderr, "hia_plan: --sweep %s: %s\n", spec.c_str(),
                   error.c_str());
      return 2;
    }
    sweeps.push_back(std::move(axis));
  }
  std::vector<Scenario> scenarios;
  if (!hia::planner::expand_sweeps(base, sweeps, &scenarios, &error)) {
    std::fprintf(stderr, "hia_plan: sweep expansion FAILED: %s\n",
                 error.c_str());
    return 2;
  }

  const hia::obs::Attribution attrib =
      hia::obs::attribute_events_file(events_path);
  if (!attrib.ok && attrib.tasks.empty() && attrib.dropped == 0) {
    // Framing failure before any timeline was rebuilt: an I/O-level error.
    std::fprintf(stderr, "hia_plan: %s: %s\n", events_path,
                 attrib.error.c_str());
    return 2;
  }
  Workload workload = hia::planner::extract_workload(attrib);
  if (!workload.ok) {
    std::fprintf(stderr, "hia_plan: workload extraction FAILED: %s\n",
                 workload.error.c_str());
    return 1;
  }
  (void)hia::obs::read_events_run_config(events_path, &workload.run_config,
                                         &error);
  std::printf(
      "hia_plan: %s: %zu tasks, %zu tenants, %d recorded buckets, "
      "measured makespan %.6f s\n",
      events_path, workload.tasks.size(), workload.tenants.size(),
      workload.recorded_buckets, workload.measured_makespan_s);
  if (workload.run_config.present) {
    // A PR10+ spill carries the run's true configuration in its header;
    // replay it instead of inferring from the event stream. Scenario
    // overrides still win (parse order: header first, --set on top).
    std::string weights;
    for (const double w : workload.run_config.tenant_weights) {
      if (!weights.empty()) weights += ',';
      weights += std::to_string(w);
    }
    std::printf(
        "  recorded config: %d buckets, %d servers, %d replicas, "
        "weights [%s], faults \"%s\", overload \"%s\"\n",
        workload.run_config.buckets, workload.run_config.servers,
        workload.run_config.replicas,
        weights.empty() ? "equal" : weights.c_str(),
        workload.run_config.faults.c_str(),
        workload.run_config.overload.c_str());
    // Every scenario (base and sweeps) replays with the recorded weights;
    // capacity what-ifs change the machine, not the workload's policy.
    for (hia::planner::Scenario& sc : scenarios) {
      sc.tenant_weights = workload.run_config.tenant_weights;
    }
  }

  bool failed = false;

  Calibration cal;
  if (do_calibrate) {
    cal = hia::planner::calibrate(workload, tolerance);
    if (!cal.ok) {
      std::fprintf(stderr, "hia_plan: calibration replay FAILED: %s\n",
                   cal.error.c_str());
      return 1;
    }
    std::printf(
        "  calibration: measured %.6f s, predicted %.6f s, rel error "
        "%.4f (tolerance %.2f) -> %s\n",
        cal.measured_makespan_s, cal.predicted_makespan_s, cal.rel_error,
        cal.tolerance, cal.calibrated ? "CALIBRATED" : "NOT CALIBRATED");
    if (!cal.calibrated) {
      std::fprintf(stderr,
                   "hia_plan: calibration FAILED: rel error %.4f exceeds "
                   "tolerance %.2f\n",
                   cal.rel_error, cal.tolerance);
      failed = true;
    }
  }

  std::vector<Prediction> predictions;
  predictions.reserve(scenarios.size());
  bool sweep_ok = true;
  for (const Scenario& sc : scenarios) {
    predictions.push_back(hia::planner::replay(workload, sc));
    if (!predictions.back().ok) {
      std::fprintf(stderr, "hia_plan: scenario %s FAILED: %s\n",
                   sc.label.c_str(), predictions.back().error.c_str());
      sweep_ok = false;
      failed = true;
    }
  }

  if (scenarios.size() == 1 && sweeps.empty()) {
    if (predictions[0].ok) {
      std::printf("  scenario %s:\n", scenarios[0].label.c_str());
      print_prediction(predictions[0]);
    }
  } else {
    // Sweep grid: one row per scenario.
    std::printf("  %-28s  %12s  %6s  %5s  %5s  %6s  %6s\n", "scenario",
                "makespan (s)", "done", "degr", "shed", "peakq", "util");
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const Prediction& p = predictions[i];
      if (!p.ok) {
        std::printf("  %-28s  FAILED: %s\n", scenarios[i].label.c_str(),
                    p.error.c_str());
        continue;
      }
      std::printf("  %-28s  %12.6f  %6llu  %5llu  %5llu  %6ld  %5.1f%%\n",
                  scenarios[i].label.c_str(), p.makespan_s,
                  static_cast<unsigned long long>(p.completed),
                  static_cast<unsigned long long>(p.degraded),
                  static_cast<unsigned long long>(p.shed),
                  p.peak_queue_depth, 100.0 * p.utilization);
    }
  }

  if (summary_path != nullptr) {
    // Publish the primary prediction through real instruments (the
    // trace_lint --summary harness check): the predicted turnaround
    // distribution and the predicted completion trajectory.
    const Prediction& primary =
        do_calibrate ? cal.prediction : predictions[0];
    hia::obs::Histogram& turnaround =
        hia::obs::histogram("plan_turnaround_s");
    for (const double t : primary.turnarounds_s) turnaround.record(t);
    size_t done = 0;
    double replay_vt = 0.0;
    hia::obs::set_virtual_clock([&replay_vt] { return replay_vt; },
                                &replay_vt);
    hia::obs::register_gauge("plan_tasks_done",
                             [&done] { return static_cast<double>(done); });
    for (const double vt : primary.terminals_vt) {
      replay_vt = vt;
      ++done;
      hia::obs::sample_now();
    }
    hia::obs::clear_virtual_clock(&replay_vt);

    hia::obs::RunSummary summary;
    summary.bench = "hia_plan";
    summary.metrics["tasks"] = static_cast<double>(workload.tasks.size());
    summary.metrics["tenants"] =
        static_cast<double>(workload.tenants.size());
    summary.metrics["recorded_buckets"] =
        static_cast<double>(workload.recorded_buckets);
    summary.metrics["measured_makespan_s"] = workload.measured_makespan_s;
    summary.metrics["replay_sweep_ok"] = sweep_ok ? 1 : 0;
    summary.metrics["scenarios"] = static_cast<double>(scenarios.size());
    if (do_calibrate) {
      summary.metrics["replay_calibrated_ok"] = cal.calibrated ? 1 : 0;
      summary.metrics["predicted_makespan_s"] = cal.predicted_makespan_s;
      summary.metrics["calibration_rel_error"] = cal.rel_error;
    }
    for (size_t i = 0; i < scenarios.size(); ++i) {
      if (!predictions[i].ok) continue;
      summary.metrics["plan_makespan_s[" + scenarios[i].label + "]"] =
          predictions[i].makespan_s;
    }
    if (!hia::obs::write_run_summary(summary_path, summary)) {
      std::fprintf(stderr, "hia_plan: cannot write %s\n", summary_path);
      return 2;
    }
    std::printf("  plan summary: %s\n", summary_path);
  }

  return failed ? 1 : 0;
}
