// events_lint — validates an hia-events-v1 flight-recorder file
// (obs/events.hpp spill format):
//
//   events_lint <events.bin>
//
// Checks the framing (magic, version, header JSON, record size/count),
// every record's kind, wall-timestamp monotonicity, and — when the
// recorder dropped nothing — the per-tenant conservation partition
// (submitted == completed + degraded + shed + deferred for every tenant).
// Prints the partition table either way so an operator can diff it against
// the campaign's ServiceReport.
//
// When the recorder dropped records, the per-kind drop table (from the
// header's dropped_by_kind map) says which part of the stream is
// unverifiable — a dropped task_submit breaks conservation, a dropped
// pressure transition does not.
//
// Exit status: 0 when the file is well-formed (and conserved, if
// enforceable), 1 when invalid, 2 on usage or I/O errors, 3 when the file
// is structurally valid but the ring dropped records (timelines and
// conservation are unverifiable — resize the ring and re-record).
#include <cstdio>
#include <cstring>

#include "obs/events.hpp"

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr, "usage: events_lint <events.bin>\n");
    return 2;
  }
  const char* path = argv[1];

  const hia::obs::EventsValidation v = hia::obs::validate_events_file(path);
  if (!v.ok && v.records == 0 && v.tenants.empty()) {
    // Framing failure before any record was decoded: likely not our file.
    std::fprintf(stderr, "events_lint: %s: INVALID: %s\n", path,
                 v.error.c_str());
    return v.error.find("cannot open") != std::string::npos ? 2 : 1;
  }

  if (!v.tenants.empty()) {
    std::printf("  tenant  submitted  assigned  completed  degraded  "
                "shed  deferred\n");
    for (const hia::obs::EventsValidation::TenantCounts& t : v.tenants) {
      std::printf("  %6d  %9llu  %8llu  %9llu  %8llu  %4llu  %8llu\n",
                  t.tenant, static_cast<unsigned long long>(t.submitted),
                  static_cast<unsigned long long>(t.assigned),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.degraded),
                  static_cast<unsigned long long>(t.shed),
                  static_cast<unsigned long long>(t.deferred));
    }
  }
  if (!v.ok) {
    std::fprintf(stderr, "events_lint: %s: INVALID: %s\n", path,
                 v.error.c_str());
    return 1;
  }
  if (v.dropped > 0) {
    std::printf("  dropped records by kind:\n");
    for (const auto& [kind, count] : v.dropped_by_kind) {
      const char* name = hia::obs::event_kind_name(kind);
      std::printf("  %18s  %9llu\n", name != nullptr ? name : "unknown",
                  static_cast<unsigned long long>(count));
    }
    std::printf("events_lint: %s: DROPPED (%llu records kept, %llu "
                "dropped; conservation not enforced under drops)\n",
                path, static_cast<unsigned long long>(v.records),
                static_cast<unsigned long long>(v.dropped));
    return 3;
  }
  std::printf("events_lint: %s: OK (%llu records, 0 dropped, %zu "
              "tenants)\n",
              path, static_cast<unsigned long long>(v.records),
              v.tenants.size());
  return 0;
}
