// events_lint — validates an hia-events-v1 flight-recorder file
// (obs/events.hpp spill format):
//
//   events_lint <events.bin>
//
// Checks the framing (magic, version, header JSON, record size/count),
// every record's kind, wall-timestamp monotonicity, and — when the
// recorder dropped nothing — the per-tenant conservation partition
// (submitted == completed + degraded + shed + deferred for every tenant).
// Prints the partition table either way so an operator can diff it against
// the campaign's ServiceReport.
//
// Exit status: 0 when the file is well-formed (and conserved, if
// enforceable), 1 otherwise, 2 on usage or I/O errors.
#include <cstdio>
#include <cstring>

#include "obs/events.hpp"

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr, "usage: events_lint <events.bin>\n");
    return 2;
  }
  const char* path = argv[1];

  const hia::obs::EventsValidation v = hia::obs::validate_events_file(path);
  if (!v.ok && v.records == 0 && v.tenants.empty()) {
    // Framing failure before any record was decoded: likely not our file.
    std::fprintf(stderr, "events_lint: %s: INVALID: %s\n", path,
                 v.error.c_str());
    return v.error.find("cannot open") != std::string::npos ? 2 : 1;
  }

  if (!v.tenants.empty()) {
    std::printf("  tenant  submitted  assigned  completed  degraded  "
                "shed  deferred\n");
    for (const hia::obs::EventsValidation::TenantCounts& t : v.tenants) {
      std::printf("  %6d  %9llu  %8llu  %9llu  %8llu  %4llu  %8llu\n",
                  t.tenant, static_cast<unsigned long long>(t.submitted),
                  static_cast<unsigned long long>(t.assigned),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.degraded),
                  static_cast<unsigned long long>(t.shed),
                  static_cast<unsigned long long>(t.deferred));
    }
  }
  if (!v.ok) {
    std::fprintf(stderr, "events_lint: %s: INVALID: %s\n", path,
                 v.error.c_str());
    return 1;
  }
  std::printf("events_lint: %s: OK (%llu records, %llu dropped, %zu "
              "tenants%s)\n",
              path, static_cast<unsigned long long>(v.records),
              static_cast<unsigned long long>(v.dropped), v.tenants.size(),
              v.dropped > 0 ? "; conservation not enforced under drops" : "");
  return 0;
}
