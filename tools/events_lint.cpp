// events_lint — validates an hia-events-v1 flight-recorder file
// (obs/events.hpp spill format):
//
//   events_lint <events.bin>
//
// Checks the framing (magic, version, header JSON, record size/count),
// every record's kind, wall-timestamp monotonicity, and — when the
// recorder dropped nothing — the per-tenant conservation partition
// (submitted == completed + degraded + shed + deferred for every tenant).
// Prints the partition table either way so an operator can diff it against
// the campaign's ServiceReport.
//
// When the recorder dropped records, the per-kind drop table (from the
// header's dropped_by_kind map) says which part of the stream is
// unverifiable — a dropped task_submit breaks conservation, a dropped
// pressure transition does not.
//
// --stats prints the spill-contents summary instead: per-tenant task and
// byte totals (submits, terminals, put/get counts and wire bytes,
// transfer/compute wall seconds) — what an operator or the planner
// handbook needs to describe a recording without a full partition dump.
//
// Exit status: 0 when the file is well-formed (and conserved, if
// enforceable), 1 when invalid, 2 on usage or I/O errors, 3 when the file
// is structurally valid but the ring dropped records (timelines and
// conservation are unverifiable — resize the ring and re-record).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace {

/// The --stats mode: per-tenant task/byte totals from the raw records.
int print_stats(const char* path) {
  std::vector<hia::obs::EventRecord> records;
  uint64_t dropped = 0;
  std::string error;
  if (!hia::obs::read_events_file(path, &records, &dropped, nullptr,
                                  &error)) {
    std::fprintf(stderr, "events_lint: %s: %s\n", path, error.c_str());
    return error.find("cannot open") != std::string::npos ? 2 : 1;
  }

  struct TenantStats {
    uint64_t submits = 0;
    uint64_t terminals = 0;
    int64_t input_bytes = 0;
    uint64_t puts = 0;
    int64_t put_bytes = 0;
    uint64_t gets = 0;
    int64_t get_bytes = 0;
    double transfer_s = 0.0;
    double compute_s = 0.0;
  };
  std::map<int, TenantStats> tenants;
  for (const hia::obs::EventRecord& r : records) {
    TenantStats& t = tenants[r.tenant];
    switch (static_cast<hia::obs::EventKind>(r.kind)) {
      case hia::obs::EventKind::kTaskSubmit:
        ++t.submits;
        t.input_bytes += r.b;
        break;
      case hia::obs::EventKind::kTaskComplete:
      case hia::obs::EventKind::kTaskDegrade:
      case hia::obs::EventKind::kTaskShed:
      case hia::obs::EventKind::kTaskDefer:
        ++t.terminals;
        break;
      case hia::obs::EventKind::kPut:
        ++t.puts;
        t.put_bytes += r.b;
        break;
      case hia::obs::EventKind::kGet:
        ++t.gets;
        t.get_bytes += r.b;
        break;
      case hia::obs::EventKind::kTaskXfer:
        t.transfer_s += static_cast<double>(r.b) * 1e-6;
        break;
      case hia::obs::EventKind::kTaskWork:
        t.compute_s += static_cast<double>(r.b) * 1e-6;
        break;
      default:
        break;
    }
  }

  std::printf("events_lint: %s: %zu records, %llu dropped\n", path,
              records.size(), static_cast<unsigned long long>(dropped));
  std::printf("  %6s  %7s  %9s  %12s  %5s  %10s  %5s  %10s  %10s  %10s\n",
              "tenant", "submits", "terminals", "input-bytes", "puts",
              "put-bytes", "gets", "get-bytes", "xfer (s)", "work (s)");
  TenantStats total;
  for (const auto& [tenant, t] : tenants) {
    // System records (pressure, pool) carry tenant -1 and no task or
    // byte activity; skip all-zero rows so the table reads as tenants.
    if (t.submits == 0 && t.terminals == 0 && t.puts == 0 && t.gets == 0 &&
        t.transfer_s == 0.0 && t.compute_s == 0.0) {
      continue;
    }
    std::printf(
        "  %6d  %7llu  %9llu  %12lld  %5llu  %10lld  %5llu  %10lld  "
        "%10.6f  %10.6f\n",
        tenant, static_cast<unsigned long long>(t.submits),
        static_cast<unsigned long long>(t.terminals),
        static_cast<long long>(t.input_bytes),
        static_cast<unsigned long long>(t.puts),
        static_cast<long long>(t.put_bytes),
        static_cast<unsigned long long>(t.gets),
        static_cast<long long>(t.get_bytes), t.transfer_s, t.compute_s);
    total.submits += t.submits;
    total.terminals += t.terminals;
    total.input_bytes += t.input_bytes;
    total.puts += t.puts;
    total.put_bytes += t.put_bytes;
    total.gets += t.gets;
    total.get_bytes += t.get_bytes;
    total.transfer_s += t.transfer_s;
    total.compute_s += t.compute_s;
  }
  std::printf(
      "  %6s  %7llu  %9llu  %12lld  %5llu  %10lld  %5llu  %10lld  "
      "%10.6f  %10.6f\n",
      "total", static_cast<unsigned long long>(total.submits),
      static_cast<unsigned long long>(total.terminals),
      static_cast<long long>(total.input_bytes),
      static_cast<unsigned long long>(total.puts),
      static_cast<long long>(total.put_bytes),
      static_cast<unsigned long long>(total.gets),
      static_cast<long long>(total.get_bytes), total.transfer_s,
      total.compute_s);
  if (dropped > 0) {
    std::printf("events_lint: %s: DROPPED (%llu records lost; totals are "
                "lower bounds)\n",
                path, static_cast<unsigned long long>(dropped));
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool stats = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: events_lint [--stats] <events.bin>\n");
    return 2;
  }
  if (stats) return print_stats(path);

  const hia::obs::EventsValidation v = hia::obs::validate_events_file(path);
  if (!v.ok && v.records == 0 && v.tenants.empty()) {
    // Framing failure before any record was decoded: likely not our file.
    std::fprintf(stderr, "events_lint: %s: INVALID: %s\n", path,
                 v.error.c_str());
    return v.error.find("cannot open") != std::string::npos ? 2 : 1;
  }

  if (!v.tenants.empty()) {
    std::printf("  tenant  submitted  assigned  completed  degraded  "
                "shed  deferred\n");
    for (const hia::obs::EventsValidation::TenantCounts& t : v.tenants) {
      std::printf("  %6d  %9llu  %8llu  %9llu  %8llu  %4llu  %8llu\n",
                  t.tenant, static_cast<unsigned long long>(t.submitted),
                  static_cast<unsigned long long>(t.assigned),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.degraded),
                  static_cast<unsigned long long>(t.shed),
                  static_cast<unsigned long long>(t.deferred));
    }
  }
  if (!v.ok) {
    std::fprintf(stderr, "events_lint: %s: INVALID: %s\n", path,
                 v.error.c_str());
    return 1;
  }
  if (v.dropped > 0) {
    std::printf("  dropped records by kind:\n");
    for (const auto& [kind, count] : v.dropped_by_kind) {
      const char* name = hia::obs::event_kind_name(kind);
      std::printf("  %18s  %9llu\n", name != nullptr ? name : "unknown",
                  static_cast<unsigned long long>(count));
    }
    std::printf("events_lint: %s: DROPPED (%llu records kept, %llu "
                "dropped; conservation not enforced under drops)\n",
                path, static_cast<unsigned long long>(v.records),
                static_cast<unsigned long long>(v.dropped));
    return 3;
  }
  std::printf("events_lint: %s: OK (%llu records, 0 dropped, %zu "
              "tenants)\n",
              path, static_cast<unsigned long long>(v.records),
              v.tenants.size());
  return 0;
}
