# Empty compiler generated dependencies file for hia_campaign.
# This may be replaced when dependencies are built.
