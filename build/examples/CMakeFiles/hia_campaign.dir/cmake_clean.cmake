file(REMOVE_RECURSE
  "CMakeFiles/hia_campaign.dir/hia_campaign.cpp.o"
  "CMakeFiles/hia_campaign.dir/hia_campaign.cpp.o.d"
  "hia_campaign"
  "hia_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
