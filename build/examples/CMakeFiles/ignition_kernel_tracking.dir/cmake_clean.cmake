file(REMOVE_RECURSE
  "CMakeFiles/ignition_kernel_tracking.dir/ignition_kernel_tracking.cpp.o"
  "CMakeFiles/ignition_kernel_tracking.dir/ignition_kernel_tracking.cpp.o.d"
  "ignition_kernel_tracking"
  "ignition_kernel_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ignition_kernel_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
