# Empty compiler generated dependencies file for ignition_kernel_tracking.
# This may be replaced when dependencies are built.
