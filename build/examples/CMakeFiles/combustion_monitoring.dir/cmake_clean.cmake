file(REMOVE_RECURSE
  "CMakeFiles/combustion_monitoring.dir/combustion_monitoring.cpp.o"
  "CMakeFiles/combustion_monitoring.dir/combustion_monitoring.cpp.o.d"
  "combustion_monitoring"
  "combustion_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combustion_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
