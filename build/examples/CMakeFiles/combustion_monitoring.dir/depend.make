# Empty dependencies file for combustion_monitoring.
# This may be replaced when dependencies are built.
