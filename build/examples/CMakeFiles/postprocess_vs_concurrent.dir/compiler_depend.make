# Empty compiler generated dependencies file for postprocess_vs_concurrent.
# This may be replaced when dependencies are built.
