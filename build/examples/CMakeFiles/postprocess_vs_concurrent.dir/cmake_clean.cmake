file(REMOVE_RECURSE
  "CMakeFiles/postprocess_vs_concurrent.dir/postprocess_vs_concurrent.cpp.o"
  "CMakeFiles/postprocess_vs_concurrent.dir/postprocess_vs_concurrent.cpp.o.d"
  "postprocess_vs_concurrent"
  "postprocess_vs_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postprocess_vs_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
