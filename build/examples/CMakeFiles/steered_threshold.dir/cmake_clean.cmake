file(REMOVE_RECURSE
  "CMakeFiles/steered_threshold.dir/steered_threshold.cpp.o"
  "CMakeFiles/steered_threshold.dir/steered_threshold.cpp.o.d"
  "steered_threshold"
  "steered_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steered_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
