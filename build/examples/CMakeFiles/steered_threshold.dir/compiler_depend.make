# Empty compiler generated dependencies file for steered_threshold.
# This may be replaced when dependencies are built.
