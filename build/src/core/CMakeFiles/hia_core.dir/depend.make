# Empty dependencies file for hia_core.
# This may be replaced when dependencies are built.
