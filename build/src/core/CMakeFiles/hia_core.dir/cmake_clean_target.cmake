file(REMOVE_RECURSE
  "libhia_core.a"
)
