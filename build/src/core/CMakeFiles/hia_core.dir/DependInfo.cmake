
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cohosted.cpp" "src/core/CMakeFiles/hia_core.dir/cohosted.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/cohosted.cpp.o.d"
  "/root/repo/src/core/contingency_pipeline.cpp" "src/core/CMakeFiles/hia_core.dir/contingency_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/contingency_pipeline.cpp.o.d"
  "/root/repo/src/core/correlation_pipeline.cpp" "src/core/CMakeFiles/hia_core.dir/correlation_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/correlation_pipeline.cpp.o.d"
  "/root/repo/src/core/feature_stats_pipeline.cpp" "src/core/CMakeFiles/hia_core.dir/feature_stats_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/feature_stats_pipeline.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/hia_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/histogram_pipeline.cpp" "src/core/CMakeFiles/hia_core.dir/histogram_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/histogram_pipeline.cpp.o.d"
  "/root/repo/src/core/isosurface_pipeline.cpp" "src/core/CMakeFiles/hia_core.dir/isosurface_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/isosurface_pipeline.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/hia_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/hia_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/report.cpp.o.d"
  "/root/repo/src/core/stats_pipeline.cpp" "src/core/CMakeFiles/hia_core.dir/stats_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/stats_pipeline.cpp.o.d"
  "/root/repo/src/core/timeseries_pipeline.cpp" "src/core/CMakeFiles/hia_core.dir/timeseries_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/timeseries_pipeline.cpp.o.d"
  "/root/repo/src/core/topology_pipeline.cpp" "src/core/CMakeFiles/hia_core.dir/topology_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/topology_pipeline.cpp.o.d"
  "/root/repo/src/core/viz_pipeline.cpp" "src/core/CMakeFiles/hia_core.dir/viz_pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hia_core.dir/viz_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hia_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/hia_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/staging/CMakeFiles/hia_staging.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hia_io.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/stats/CMakeFiles/hia_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/topology/CMakeFiles/hia_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/viz/CMakeFiles/hia_viz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
