file(REMOVE_RECURSE
  "CMakeFiles/hia_core.dir/cohosted.cpp.o"
  "CMakeFiles/hia_core.dir/cohosted.cpp.o.d"
  "CMakeFiles/hia_core.dir/contingency_pipeline.cpp.o"
  "CMakeFiles/hia_core.dir/contingency_pipeline.cpp.o.d"
  "CMakeFiles/hia_core.dir/correlation_pipeline.cpp.o"
  "CMakeFiles/hia_core.dir/correlation_pipeline.cpp.o.d"
  "CMakeFiles/hia_core.dir/feature_stats_pipeline.cpp.o"
  "CMakeFiles/hia_core.dir/feature_stats_pipeline.cpp.o.d"
  "CMakeFiles/hia_core.dir/framework.cpp.o"
  "CMakeFiles/hia_core.dir/framework.cpp.o.d"
  "CMakeFiles/hia_core.dir/histogram_pipeline.cpp.o"
  "CMakeFiles/hia_core.dir/histogram_pipeline.cpp.o.d"
  "CMakeFiles/hia_core.dir/isosurface_pipeline.cpp.o"
  "CMakeFiles/hia_core.dir/isosurface_pipeline.cpp.o.d"
  "CMakeFiles/hia_core.dir/metrics.cpp.o"
  "CMakeFiles/hia_core.dir/metrics.cpp.o.d"
  "CMakeFiles/hia_core.dir/report.cpp.o"
  "CMakeFiles/hia_core.dir/report.cpp.o.d"
  "CMakeFiles/hia_core.dir/stats_pipeline.cpp.o"
  "CMakeFiles/hia_core.dir/stats_pipeline.cpp.o.d"
  "CMakeFiles/hia_core.dir/timeseries_pipeline.cpp.o"
  "CMakeFiles/hia_core.dir/timeseries_pipeline.cpp.o.d"
  "CMakeFiles/hia_core.dir/topology_pipeline.cpp.o"
  "CMakeFiles/hia_core.dir/topology_pipeline.cpp.o.d"
  "CMakeFiles/hia_core.dir/viz_pipeline.cpp.o"
  "CMakeFiles/hia_core.dir/viz_pipeline.cpp.o.d"
  "libhia_core.a"
  "libhia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
