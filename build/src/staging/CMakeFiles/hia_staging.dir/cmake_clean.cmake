file(REMOVE_RECURSE
  "CMakeFiles/hia_staging.dir/object_store.cpp.o"
  "CMakeFiles/hia_staging.dir/object_store.cpp.o.d"
  "CMakeFiles/hia_staging.dir/scheduler.cpp.o"
  "CMakeFiles/hia_staging.dir/scheduler.cpp.o.d"
  "CMakeFiles/hia_staging.dir/space_view.cpp.o"
  "CMakeFiles/hia_staging.dir/space_view.cpp.o.d"
  "libhia_staging.a"
  "libhia_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
