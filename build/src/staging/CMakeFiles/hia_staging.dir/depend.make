# Empty dependencies file for hia_staging.
# This may be replaced when dependencies are built.
