file(REMOVE_RECURSE
  "libhia_staging.a"
)
