# Empty compiler generated dependencies file for hia_stats.
# This may be replaced when dependencies are built.
