file(REMOVE_RECURSE
  "libhia_stats.a"
)
