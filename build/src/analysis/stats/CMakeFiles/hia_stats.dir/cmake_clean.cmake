file(REMOVE_RECURSE
  "CMakeFiles/hia_stats.dir/contingency.cpp.o"
  "CMakeFiles/hia_stats.dir/contingency.cpp.o.d"
  "CMakeFiles/hia_stats.dir/correlation.cpp.o"
  "CMakeFiles/hia_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/hia_stats.dir/descriptive.cpp.o"
  "CMakeFiles/hia_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/hia_stats.dir/histogram.cpp.o"
  "CMakeFiles/hia_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/hia_stats.dir/moments.cpp.o"
  "CMakeFiles/hia_stats.dir/moments.cpp.o.d"
  "libhia_stats.a"
  "libhia_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
