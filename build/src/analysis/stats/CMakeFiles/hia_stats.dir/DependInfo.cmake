
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/stats/contingency.cpp" "src/analysis/stats/CMakeFiles/hia_stats.dir/contingency.cpp.o" "gcc" "src/analysis/stats/CMakeFiles/hia_stats.dir/contingency.cpp.o.d"
  "/root/repo/src/analysis/stats/correlation.cpp" "src/analysis/stats/CMakeFiles/hia_stats.dir/correlation.cpp.o" "gcc" "src/analysis/stats/CMakeFiles/hia_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/analysis/stats/descriptive.cpp" "src/analysis/stats/CMakeFiles/hia_stats.dir/descriptive.cpp.o" "gcc" "src/analysis/stats/CMakeFiles/hia_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/analysis/stats/histogram.cpp" "src/analysis/stats/CMakeFiles/hia_stats.dir/histogram.cpp.o" "gcc" "src/analysis/stats/CMakeFiles/hia_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/analysis/stats/moments.cpp" "src/analysis/stats/CMakeFiles/hia_stats.dir/moments.cpp.o" "gcc" "src/analysis/stats/CMakeFiles/hia_stats.dir/moments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
