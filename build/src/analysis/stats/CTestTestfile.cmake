# CMake generated Testfile for 
# Source directory: /root/repo/src/analysis/stats
# Build directory: /root/repo/build/src/analysis/stats
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
