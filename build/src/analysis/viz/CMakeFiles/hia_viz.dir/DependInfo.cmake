
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/viz/block_lut.cpp" "src/analysis/viz/CMakeFiles/hia_viz.dir/block_lut.cpp.o" "gcc" "src/analysis/viz/CMakeFiles/hia_viz.dir/block_lut.cpp.o.d"
  "/root/repo/src/analysis/viz/compositor.cpp" "src/analysis/viz/CMakeFiles/hia_viz.dir/compositor.cpp.o" "gcc" "src/analysis/viz/CMakeFiles/hia_viz.dir/compositor.cpp.o.d"
  "/root/repo/src/analysis/viz/downsample.cpp" "src/analysis/viz/CMakeFiles/hia_viz.dir/downsample.cpp.o" "gcc" "src/analysis/viz/CMakeFiles/hia_viz.dir/downsample.cpp.o.d"
  "/root/repo/src/analysis/viz/image.cpp" "src/analysis/viz/CMakeFiles/hia_viz.dir/image.cpp.o" "gcc" "src/analysis/viz/CMakeFiles/hia_viz.dir/image.cpp.o.d"
  "/root/repo/src/analysis/viz/isosurface.cpp" "src/analysis/viz/CMakeFiles/hia_viz.dir/isosurface.cpp.o" "gcc" "src/analysis/viz/CMakeFiles/hia_viz.dir/isosurface.cpp.o.d"
  "/root/repo/src/analysis/viz/raycast.cpp" "src/analysis/viz/CMakeFiles/hia_viz.dir/raycast.cpp.o" "gcc" "src/analysis/viz/CMakeFiles/hia_viz.dir/raycast.cpp.o.d"
  "/root/repo/src/analysis/viz/slice.cpp" "src/analysis/viz/CMakeFiles/hia_viz.dir/slice.cpp.o" "gcc" "src/analysis/viz/CMakeFiles/hia_viz.dir/slice.cpp.o.d"
  "/root/repo/src/analysis/viz/transfer_function.cpp" "src/analysis/viz/CMakeFiles/hia_viz.dir/transfer_function.cpp.o" "gcc" "src/analysis/viz/CMakeFiles/hia_viz.dir/transfer_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hia_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
