file(REMOVE_RECURSE
  "libhia_viz.a"
)
