file(REMOVE_RECURSE
  "CMakeFiles/hia_viz.dir/block_lut.cpp.o"
  "CMakeFiles/hia_viz.dir/block_lut.cpp.o.d"
  "CMakeFiles/hia_viz.dir/compositor.cpp.o"
  "CMakeFiles/hia_viz.dir/compositor.cpp.o.d"
  "CMakeFiles/hia_viz.dir/downsample.cpp.o"
  "CMakeFiles/hia_viz.dir/downsample.cpp.o.d"
  "CMakeFiles/hia_viz.dir/image.cpp.o"
  "CMakeFiles/hia_viz.dir/image.cpp.o.d"
  "CMakeFiles/hia_viz.dir/isosurface.cpp.o"
  "CMakeFiles/hia_viz.dir/isosurface.cpp.o.d"
  "CMakeFiles/hia_viz.dir/raycast.cpp.o"
  "CMakeFiles/hia_viz.dir/raycast.cpp.o.d"
  "CMakeFiles/hia_viz.dir/slice.cpp.o"
  "CMakeFiles/hia_viz.dir/slice.cpp.o.d"
  "CMakeFiles/hia_viz.dir/transfer_function.cpp.o"
  "CMakeFiles/hia_viz.dir/transfer_function.cpp.o.d"
  "libhia_viz.a"
  "libhia_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
