# Empty dependencies file for hia_viz.
# This may be replaced when dependencies are built.
