file(REMOVE_RECURSE
  "CMakeFiles/hia_topology.dir/feature_stats.cpp.o"
  "CMakeFiles/hia_topology.dir/feature_stats.cpp.o.d"
  "CMakeFiles/hia_topology.dir/local_tree.cpp.o"
  "CMakeFiles/hia_topology.dir/local_tree.cpp.o.d"
  "CMakeFiles/hia_topology.dir/merge_tree.cpp.o"
  "CMakeFiles/hia_topology.dir/merge_tree.cpp.o.d"
  "CMakeFiles/hia_topology.dir/segmentation.cpp.o"
  "CMakeFiles/hia_topology.dir/segmentation.cpp.o.d"
  "CMakeFiles/hia_topology.dir/stream_combine.cpp.o"
  "CMakeFiles/hia_topology.dir/stream_combine.cpp.o.d"
  "libhia_topology.a"
  "libhia_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
