# Empty dependencies file for hia_topology.
# This may be replaced when dependencies are built.
