
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/topology/feature_stats.cpp" "src/analysis/topology/CMakeFiles/hia_topology.dir/feature_stats.cpp.o" "gcc" "src/analysis/topology/CMakeFiles/hia_topology.dir/feature_stats.cpp.o.d"
  "/root/repo/src/analysis/topology/local_tree.cpp" "src/analysis/topology/CMakeFiles/hia_topology.dir/local_tree.cpp.o" "gcc" "src/analysis/topology/CMakeFiles/hia_topology.dir/local_tree.cpp.o.d"
  "/root/repo/src/analysis/topology/merge_tree.cpp" "src/analysis/topology/CMakeFiles/hia_topology.dir/merge_tree.cpp.o" "gcc" "src/analysis/topology/CMakeFiles/hia_topology.dir/merge_tree.cpp.o.d"
  "/root/repo/src/analysis/topology/segmentation.cpp" "src/analysis/topology/CMakeFiles/hia_topology.dir/segmentation.cpp.o" "gcc" "src/analysis/topology/CMakeFiles/hia_topology.dir/segmentation.cpp.o.d"
  "/root/repo/src/analysis/topology/stream_combine.cpp" "src/analysis/topology/CMakeFiles/hia_topology.dir/stream_combine.cpp.o" "gcc" "src/analysis/topology/CMakeFiles/hia_topology.dir/stream_combine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/stats/CMakeFiles/hia_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hia_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
