file(REMOVE_RECURSE
  "libhia_topology.a"
)
