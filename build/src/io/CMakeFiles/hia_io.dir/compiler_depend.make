# Empty compiler generated dependencies file for hia_io.
# This may be replaced when dependencies are built.
