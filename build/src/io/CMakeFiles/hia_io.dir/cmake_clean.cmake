file(REMOVE_RECURSE
  "CMakeFiles/hia_io.dir/adios_lite.cpp.o"
  "CMakeFiles/hia_io.dir/adios_lite.cpp.o.d"
  "CMakeFiles/hia_io.dir/bp_lite.cpp.o"
  "CMakeFiles/hia_io.dir/bp_lite.cpp.o.d"
  "CMakeFiles/hia_io.dir/checkpoint.cpp.o"
  "CMakeFiles/hia_io.dir/checkpoint.cpp.o.d"
  "libhia_io.a"
  "libhia_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
