file(REMOVE_RECURSE
  "libhia_io.a"
)
