# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("runtime")
subdirs("sim")
subdirs("transport")
subdirs("staging")
subdirs("io")
subdirs("analysis/stats")
subdirs("analysis/topology")
subdirs("analysis/viz")
subdirs("core")
