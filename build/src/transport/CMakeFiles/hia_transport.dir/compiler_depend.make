# Empty compiler generated dependencies file for hia_transport.
# This may be replaced when dependencies are built.
