file(REMOVE_RECURSE
  "libhia_transport.a"
)
