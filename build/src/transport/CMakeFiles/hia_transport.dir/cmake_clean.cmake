file(REMOVE_RECURSE
  "CMakeFiles/hia_transport.dir/dart.cpp.o"
  "CMakeFiles/hia_transport.dir/dart.cpp.o.d"
  "libhia_transport.a"
  "libhia_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
