# Empty dependencies file for hia_util.
# This may be replaced when dependencies are built.
