file(REMOVE_RECURSE
  "libhia_util.a"
)
