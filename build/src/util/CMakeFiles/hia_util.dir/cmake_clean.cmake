file(REMOVE_RECURSE
  "CMakeFiles/hia_util.dir/log.cpp.o"
  "CMakeFiles/hia_util.dir/log.cpp.o.d"
  "CMakeFiles/hia_util.dir/table.cpp.o"
  "CMakeFiles/hia_util.dir/table.cpp.o.d"
  "libhia_util.a"
  "libhia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
