file(REMOVE_RECURSE
  "CMakeFiles/hia_runtime.dir/comm.cpp.o"
  "CMakeFiles/hia_runtime.dir/comm.cpp.o.d"
  "CMakeFiles/hia_runtime.dir/network_model.cpp.o"
  "CMakeFiles/hia_runtime.dir/network_model.cpp.o.d"
  "CMakeFiles/hia_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/hia_runtime.dir/thread_pool.cpp.o.d"
  "libhia_runtime.a"
  "libhia_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
