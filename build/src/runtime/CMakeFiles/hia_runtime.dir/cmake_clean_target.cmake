file(REMOVE_RECURSE
  "libhia_runtime.a"
)
