# Empty dependencies file for hia_runtime.
# This may be replaced when dependencies are built.
