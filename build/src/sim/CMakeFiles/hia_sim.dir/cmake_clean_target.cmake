file(REMOVE_RECURSE
  "libhia_sim.a"
)
