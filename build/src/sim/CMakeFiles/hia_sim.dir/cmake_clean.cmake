file(REMOVE_RECURSE
  "CMakeFiles/hia_sim.dir/analytic_fields.cpp.o"
  "CMakeFiles/hia_sim.dir/analytic_fields.cpp.o.d"
  "CMakeFiles/hia_sim.dir/chemistry.cpp.o"
  "CMakeFiles/hia_sim.dir/chemistry.cpp.o.d"
  "CMakeFiles/hia_sim.dir/derived_fields.cpp.o"
  "CMakeFiles/hia_sim.dir/derived_fields.cpp.o.d"
  "CMakeFiles/hia_sim.dir/halo.cpp.o"
  "CMakeFiles/hia_sim.dir/halo.cpp.o.d"
  "CMakeFiles/hia_sim.dir/s3d.cpp.o"
  "CMakeFiles/hia_sim.dir/s3d.cpp.o.d"
  "CMakeFiles/hia_sim.dir/turbulence.cpp.o"
  "CMakeFiles/hia_sim.dir/turbulence.cpp.o.d"
  "libhia_sim.a"
  "libhia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
