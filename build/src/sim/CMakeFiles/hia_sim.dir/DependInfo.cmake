
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/analytic_fields.cpp" "src/sim/CMakeFiles/hia_sim.dir/analytic_fields.cpp.o" "gcc" "src/sim/CMakeFiles/hia_sim.dir/analytic_fields.cpp.o.d"
  "/root/repo/src/sim/chemistry.cpp" "src/sim/CMakeFiles/hia_sim.dir/chemistry.cpp.o" "gcc" "src/sim/CMakeFiles/hia_sim.dir/chemistry.cpp.o.d"
  "/root/repo/src/sim/derived_fields.cpp" "src/sim/CMakeFiles/hia_sim.dir/derived_fields.cpp.o" "gcc" "src/sim/CMakeFiles/hia_sim.dir/derived_fields.cpp.o.d"
  "/root/repo/src/sim/halo.cpp" "src/sim/CMakeFiles/hia_sim.dir/halo.cpp.o" "gcc" "src/sim/CMakeFiles/hia_sim.dir/halo.cpp.o.d"
  "/root/repo/src/sim/s3d.cpp" "src/sim/CMakeFiles/hia_sim.dir/s3d.cpp.o" "gcc" "src/sim/CMakeFiles/hia_sim.dir/s3d.cpp.o.d"
  "/root/repo/src/sim/turbulence.cpp" "src/sim/CMakeFiles/hia_sim.dir/turbulence.cpp.o" "gcc" "src/sim/CMakeFiles/hia_sim.dir/turbulence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hia_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
