# Empty dependencies file for hia_sim.
# This may be replaced when dependencies are built.
