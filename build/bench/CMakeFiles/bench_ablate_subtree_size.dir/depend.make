# Empty dependencies file for bench_ablate_subtree_size.
# This may be replaced when dependencies are built.
