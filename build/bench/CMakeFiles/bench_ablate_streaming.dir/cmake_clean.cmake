file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_streaming.dir/bench_ablate_streaming.cpp.o"
  "CMakeFiles/bench_ablate_streaming.dir/bench_ablate_streaming.cpp.o.d"
  "bench_ablate_streaming"
  "bench_ablate_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
