file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_buckets.dir/bench_ablate_buckets.cpp.o"
  "CMakeFiles/bench_ablate_buckets.dir/bench_ablate_buckets.cpp.o.d"
  "bench_ablate_buckets"
  "bench_ablate_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
