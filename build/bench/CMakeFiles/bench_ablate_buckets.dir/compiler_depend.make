# Empty compiler generated dependencies file for bench_ablate_buckets.
# This may be replaced when dependencies are built.
