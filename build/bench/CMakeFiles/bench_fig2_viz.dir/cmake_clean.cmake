file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_viz.dir/bench_fig2_viz.cpp.o"
  "CMakeFiles/bench_fig2_viz.dir/bench_fig2_viz.cpp.o.d"
  "bench_fig2_viz"
  "bench_fig2_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
