file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_stats_stages.dir/bench_fig4_stats_stages.cpp.o"
  "CMakeFiles/bench_fig4_stats_stages.dir/bench_fig4_stats_stages.cpp.o.d"
  "bench_fig4_stats_stages"
  "bench_fig4_stats_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_stats_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
