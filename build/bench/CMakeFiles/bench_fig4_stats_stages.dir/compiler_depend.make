# Empty compiler generated dependencies file for bench_fig4_stats_stages.
# This may be replaced when dependencies are built.
