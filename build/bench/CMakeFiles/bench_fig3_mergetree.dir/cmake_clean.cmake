file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mergetree.dir/bench_fig3_mergetree.cpp.o"
  "CMakeFiles/bench_fig3_mergetree.dir/bench_fig3_mergetree.cpp.o.d"
  "bench_fig3_mergetree"
  "bench_fig3_mergetree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mergetree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
