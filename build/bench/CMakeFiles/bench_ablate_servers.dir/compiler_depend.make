# Empty compiler generated dependencies file for bench_ablate_servers.
# This may be replaced when dependencies are built.
