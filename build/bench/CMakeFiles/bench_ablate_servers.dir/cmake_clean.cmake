file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_servers.dir/bench_ablate_servers.cpp.o"
  "CMakeFiles/bench_ablate_servers.dir/bench_ablate_servers.cpp.o.d"
  "bench_ablate_servers"
  "bench_ablate_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
