file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_dart_paths.dir/bench_ablate_dart_paths.cpp.o"
  "CMakeFiles/bench_ablate_dart_paths.dir/bench_ablate_dart_paths.cpp.o.d"
  "bench_ablate_dart_paths"
  "bench_ablate_dart_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_dart_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
