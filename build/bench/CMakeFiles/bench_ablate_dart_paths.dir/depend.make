# Empty dependencies file for bench_ablate_dart_paths.
# This may be replaced when dependencies are built.
