file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_spectrum.dir/bench_ablate_spectrum.cpp.o"
  "CMakeFiles/bench_ablate_spectrum.dir/bench_ablate_spectrum.cpp.o.d"
  "bench_ablate_spectrum"
  "bench_ablate_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
