# Empty compiler generated dependencies file for bench_ablate_spectrum.
# This may be replaced when dependencies are built.
