# Empty dependencies file for bench_fig5_scheduler.
# This may be replaced when dependencies are built.
