file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_frequency.dir/bench_ablate_frequency.cpp.o"
  "CMakeFiles/bench_ablate_frequency.dir/bench_ablate_frequency.cpp.o.d"
  "bench_ablate_frequency"
  "bench_ablate_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
