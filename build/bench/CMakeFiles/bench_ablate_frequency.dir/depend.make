# Empty dependencies file for bench_ablate_frequency.
# This may be replaced when dependencies are built.
