file(REMOVE_RECURSE
  "CMakeFiles/test_isosurface.dir/test_isosurface.cpp.o"
  "CMakeFiles/test_isosurface.dir/test_isosurface.cpp.o.d"
  "test_isosurface"
  "test_isosurface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isosurface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
