# Empty compiler generated dependencies file for test_isosurface.
# This may be replaced when dependencies are built.
