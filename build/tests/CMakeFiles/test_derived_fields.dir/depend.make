# Empty dependencies file for test_derived_fields.
# This may be replaced when dependencies are built.
