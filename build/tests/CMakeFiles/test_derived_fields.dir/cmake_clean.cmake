file(REMOVE_RECURSE
  "CMakeFiles/test_derived_fields.dir/test_derived_fields.cpp.o"
  "CMakeFiles/test_derived_fields.dir/test_derived_fields.cpp.o.d"
  "test_derived_fields"
  "test_derived_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_derived_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
