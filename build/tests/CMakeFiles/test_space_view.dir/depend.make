# Empty dependencies file for test_space_view.
# This may be replaced when dependencies are built.
