file(REMOVE_RECURSE
  "CMakeFiles/test_space_view.dir/test_space_view.cpp.o"
  "CMakeFiles/test_space_view.dir/test_space_view.cpp.o.d"
  "test_space_view"
  "test_space_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_space_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
