file(REMOVE_RECURSE
  "CMakeFiles/test_feature_stats.dir/test_feature_stats.cpp.o"
  "CMakeFiles/test_feature_stats.dir/test_feature_stats.cpp.o.d"
  "test_feature_stats"
  "test_feature_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
