# Empty compiler generated dependencies file for test_feature_stats.
# This may be replaced when dependencies are built.
