file(REMOVE_RECURSE
  "CMakeFiles/test_field_halo.dir/test_field_halo.cpp.o"
  "CMakeFiles/test_field_halo.dir/test_field_halo.cpp.o.d"
  "test_field_halo"
  "test_field_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_field_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
