file(REMOVE_RECURSE
  "CMakeFiles/test_stream_combine.dir/test_stream_combine.cpp.o"
  "CMakeFiles/test_stream_combine.dir/test_stream_combine.cpp.o.d"
  "test_stream_combine"
  "test_stream_combine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_combine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
