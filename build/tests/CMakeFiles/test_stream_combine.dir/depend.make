# Empty dependencies file for test_stream_combine.
# This may be replaced when dependencies are built.
