
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_viz.cpp" "tests/CMakeFiles/test_viz.dir/test_viz.cpp.o" "gcc" "tests/CMakeFiles/test_viz.dir/test_viz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/staging/CMakeFiles/hia_staging.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/hia_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/hia_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hia_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/stats/CMakeFiles/hia_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/topology/CMakeFiles/hia_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/viz/CMakeFiles/hia_viz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
