# Empty compiler generated dependencies file for test_local_tree.
# This may be replaced when dependencies are built.
