file(REMOVE_RECURSE
  "CMakeFiles/test_local_tree.dir/test_local_tree.cpp.o"
  "CMakeFiles/test_local_tree.dir/test_local_tree.cpp.o.d"
  "test_local_tree"
  "test_local_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
