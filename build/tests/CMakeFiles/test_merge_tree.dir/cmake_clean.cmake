file(REMOVE_RECURSE
  "CMakeFiles/test_merge_tree.dir/test_merge_tree.cpp.o"
  "CMakeFiles/test_merge_tree.dir/test_merge_tree.cpp.o.d"
  "test_merge_tree"
  "test_merge_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merge_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
