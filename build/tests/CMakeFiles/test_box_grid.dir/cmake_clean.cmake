file(REMOVE_RECURSE
  "CMakeFiles/test_box_grid.dir/test_box_grid.cpp.o"
  "CMakeFiles/test_box_grid.dir/test_box_grid.cpp.o.d"
  "test_box_grid"
  "test_box_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_box_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
