# Empty dependencies file for test_contingency.
# This may be replaced when dependencies are built.
