// Combustion monitoring: the paper's Fig. 2 use case as an application.
//
// While a lifted hydrogen-jet simulation runs, two visualization modes are
// active simultaneously (the paper notes "multiple instances of each
// visualization mode can be dynamically created in-situ and/or in-transit
// on demand"):
//   * the fully in-situ renderer produces a high-quality frame every 4th
//     step (shares primary resources, so it runs sparsely);
//   * the hybrid renderer produces a monitoring frame every step
//     (down-sample in-situ, render in-transit — nearly free for the
//     simulation).
// Alongside, hybrid statistics summarize every variable each step, giving
// the scientist a live dashboard: images + moment summaries + normality
// test on the temperature field.
//
// Output: PPM frames under monitor_out/ and a per-step console dashboard.
#include <sys/stat.h>

#include <cstdio>

#include "analysis/stats/descriptive.hpp"
#include "core/framework.hpp"
#include "core/stats_pipeline.hpp"
#include "core/viz_pipeline.hpp"

int main() {
  using namespace hia;

  ::mkdir("monitor_out", 0755);

  RunConfig config;
  config.sim.grid = GlobalGrid{{64, 48, 36}, {1.0, 0.75, 0.5625}};
  config.sim.ranks_per_axis = {2, 2, 2};
  config.sim.chemistry.kernel_rate = 2.0;
  config.staging_servers = 2;
  config.staging_buckets = 4;
  config.steps = 8;

  HybridRunner runner(config);

  VizConfig quality;
  quality.variable = Variable::kTemperature;
  quality.image_size = 160;
  quality.tf_lo = 0.9;
  quality.tf_hi = 5.0;
  quality.output_dir = "monitor_out";
  auto insitu_viz = std::make_shared<InSituVisualization>(quality);

  VizConfig monitor = quality;
  monitor.downsample_stride = 4;
  auto hybrid_viz = std::make_shared<HybridVisualization>(monitor);

  auto stats = std::make_shared<HybridStatistics>();

  runner.add_analysis(hybrid_viz, /*frequency=*/1);   // every step
  runner.add_analysis(stats, /*frequency=*/1);        // every step
  runner.add_analysis(insitu_viz, /*frequency=*/4);   // sparse, expensive

  const RunReport report = runner.run();

  std::printf("monitoring dashboard (%ld steps, %d ranks)\n\n", report.steps,
              report.sim_ranks);
  std::printf("%-5s %-12s %-12s %-14s %s\n", "step", "T mean", "T max",
              "normality p", "hybrid frame");
  const auto models = stats->latest_models();
  for (const auto& m : report.in_situ) {
    if (m.analysis != "stats-hybrid") continue;
    // The dashboard would normally read each step's result blob; for the
    // final step we show the derived model directly.
    std::printf("%-5ld (in-situ stage %.4f s, %zu B staged)\n", m.step,
                m.max_rank_seconds, m.published_bytes);
  }
  const auto& temp =
      models[static_cast<size_t>(Variable::kTemperature)];
  const auto jb = stats_test_normality(temp);
  std::printf("\nfinal temperature field: mean=%.4f stddev=%.4f max=%.4f\n",
              temp.mean, temp.stddev, temp.max);
  std::printf("Jarque-Bera normality: statistic=%.1f p=%.3g "
              "(turbulent combustion is decidedly non-Gaussian)\n",
              jb.statistic, jb.p_value);

  std::printf("\nper-step frames written to monitor_out/ (viz-hybrid.*.ppm "
              "every step, viz-insitu.*.ppm every 4th)\n");
  std::printf("hybrid viz cost on the simulation: in-situ %.4f s + movement "
              "%.4f s per step (vs %.4f s fully in-situ)\n",
              report.mean_in_situ_seconds("viz-hybrid"),
              report.mean_movement_seconds("viz-hybrid"),
              report.mean_in_situ_seconds("viz-insitu"));
  return 0;
}
