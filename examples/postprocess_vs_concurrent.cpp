// Post-processing vs. concurrent analysis: the paper's motivating
// comparison (§I).
//
// The traditional pipeline writes full checkpoints to persistent storage
// and analyzes them later; at scale it can only afford to write every Nth
// step, losing temporal resolution, and the I/O itself costs simulation
// time. The concurrent pipeline analyzes every step in place, moving only
// intermediate results.
//
// This example runs both on the same simulation and prints the trade:
// bytes written, modeled I/O time at paper scale, temporal resolution of
// the resulting analysis, and the answers' equivalence where they overlap.
#include <sys/stat.h>

#include <cstdio>
#include <vector>

#include "core/framework.hpp"
#include "core/stats_pipeline.hpp"
#include "io/checkpoint.hpp"
#include "io/ost_model.hpp"

int main() {
  using namespace hia;

  ::mkdir("ckpt_out", 0755);

  S3DParams sim_params;
  sim_params.grid = GlobalGrid{{48, 32, 24}, {1.0, 0.75, 0.5}};
  sim_params.ranks_per_axis = {2, 2, 1};
  const long steps = 8;
  const long checkpoint_stride = 4;  // the affordable post-processing rate

  // ---- Pipeline A: traditional post-processing ----
  // Run the simulation, checkpoint every Nth step, then "later" read the
  // checkpoints back and compute statistics.
  Decomposition decomp(sim_params.grid, sim_params.ranks_per_axis);
  std::vector<std::string> checkpoint_files;
  size_t bytes_written = 0;
  double checkpoint_wall = 0.0;
  {
    World world(decomp.num_ranks());
    std::mutex m;
    world.run([&](Comm& comm) {
      S3DRank sim(sim_params, comm.rank());
      sim.initialize();
      for (long s = 0; s < steps; ++s) {
        sim.advance(comm);
        if (sim.step() % checkpoint_stride != 0) continue;
        const auto result = write_checkpoint(sim, "ckpt_out", "flame");
        std::lock_guard lock(m);
        checkpoint_files.push_back(result.path);
        bytes_written += result.bytes;
        checkpoint_wall += result.measured_seconds;
      }
    });
  }

  // Post-processing: read the checkpoints back, learn + combine + derive.
  std::vector<MomentAccumulator> post_partials;
  for (const auto& path : checkpoint_files) {
    const auto entries = read_checkpoint(path);
    const auto& temperature =
        entries[static_cast<size_t>(Variable::kTemperature)];
    post_partials.push_back(stats_learn(temperature.values));
  }
  // Only the last checkpointed step's statistics, for comparison below:
  std::vector<MomentAccumulator> last_step(
      post_partials.end() - decomp.num_ranks(), post_partials.end());
  const DescriptiveModel post_model =
      derive_descriptive(stats_combine(last_step));

  // ---- Pipeline B: concurrent hybrid analysis ----
  RunConfig config;
  config.sim = sim_params;
  config.steps = steps;
  HybridRunner runner(config);
  auto stats = std::make_shared<HybridStatistics>(
      std::vector<Variable>{Variable::kTemperature});
  runner.add_analysis(stats, /*frequency=*/1);
  const RunReport report = runner.run();
  const DescriptiveModel live_model = stats->latest_models().at(0);

  // ---- The comparison ----
  const OstModel ost;
  const GlobalGrid paper_grid{{1600, 1372, 430}, {1.0, 0.8575, 0.26875}};
  const size_t paper_step_bytes = checkpoint_bytes(paper_grid);

  std::printf("traditional post-processing pipeline:\n");
  std::printf("  checkpoints: every %ldth step -> %zu files, %zu bytes\n",
              checkpoint_stride, checkpoint_files.size(), bytes_written);
  std::printf("  temporal resolution of analysis: every %ldth step\n",
              checkpoint_stride);
  std::printf("  at paper scale each analyzed step writes %.1f GB costing "
              "%.2f s of I/O (modeled, %d writers)\n",
              static_cast<double>(paper_step_bytes) / (1u << 30),
              ost.write_seconds(paper_step_bytes, 4480), 4480);

  std::printf("\nconcurrent hybrid pipeline:\n");
  std::printf("  analyzed EVERY step; intermediate data per step: %.0f "
              "bytes (%.1e of the raw state)\n",
              report.mean_movement_bytes("stats-hybrid"),
              report.mean_movement_bytes("stats-hybrid") /
                  static_cast<double>(report.solution_bytes_per_step));
  std::printf("  synchronous cost per step: %.4f s in-situ + %.4f s "
              "movement\n",
              report.mean_in_situ_seconds("stats-hybrid"),
              report.mean_movement_seconds("stats-hybrid"));

  std::printf("\nagreement where both pipelines analyzed the same step "
              "(step %ld):\n", steps);
  std::printf("  post-processed: mean=%.8f var=%.8f n=%llu\n",
              post_model.mean, post_model.variance,
              static_cast<unsigned long long>(post_model.count));
  std::printf("  concurrent:     mean=%.8f var=%.8f n=%llu\n",
              live_model.mean, live_model.variance,
              static_cast<unsigned long long>(live_model.count));
  const bool agree =
      post_model.count == live_model.count &&
      std::abs(post_model.mean - live_model.mean) < 1e-9 &&
      std::abs(post_model.variance - live_model.variance) < 1e-8;
  std::printf("  -> %s\n", agree ? "identical (same science, 4x the "
                                   "temporal resolution, no raw I/O)"
                                 : "MISMATCH");

  for (const auto& path : checkpoint_files) std::remove(path.c_str());
  return agree ? 0 : 1;
}
