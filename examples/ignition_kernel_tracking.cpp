// Ignition-kernel tracking: the paper's Fig. 1 / §V science case.
//
// "Ignition kernels form intermittently at the base of a lifted flame and
// are advected into the oncoming turbulent flow field … Deeper insight into
// the flame stabilization mechanism requires tracking the inception,
// advection, and dissipation of the ignition kernels … at a much higher
// temporal frequency than was hitherto done."
//
// This example runs the hybrid topology pipeline every step: merge subtrees
// in-situ, global tree in-transit, persistence-filtered maxima as kernel
// candidates — then tracks superlevel-set features across steps and prints
// each kernel's life story (born / advected / merged / dissipated).
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "analysis/topology/segmentation.hpp"
#include "core/framework.hpp"
#include "core/topology_pipeline.hpp"

int main() {
  using namespace hia;

  RunConfig config;
  config.sim.grid = GlobalGrid{{48, 32, 32}, {1.0, 0.7, 0.7}};
  config.sim.ranks_per_axis = {2, 2, 1};
  config.sim.dt = 4.0e-3;
  config.sim.diffusivity = 6.0e-3;
  config.sim.jet_velocity = 2.5;
  config.sim.chemistry.kernel_rate = 1.5;
  config.steps = 16;
  const double threshold = 2.8;

  // Hybrid topology every step: the merge tree of the temperature field.
  HybridRunner runner(config);
  TopologyConfig topo;
  topo.variable = Variable::kTemperature;
  topo.simplify_threshold = 0.3;  // ignore low-persistence noise
  auto analysis = std::make_shared<HybridTopology>(topo);
  runner.add_analysis(analysis, /*frequency=*/1);
  const RunReport report = runner.run();

  const TreeSummary summary = analysis->latest_summary();
  std::printf("hybrid topology at step %ld: %zu critical nodes, %zu maxima "
              "after persistence simplification\n",
              summary.step, summary.tree_nodes, summary.tree_leaves);
  std::printf("streaming combiner: peak %zu live vertices, %zu evicted to "
              "the output sink\n\n",
              summary.peak_live_nodes, summary.evicted);

  std::printf("top persistence pairs (kernel candidates):\n");
  for (size_t i = 0; i < std::min<size_t>(summary.top_pairs.size(), 6); ++i) {
    const auto& p = summary.top_pairs[i];
    std::printf("  max T=%.3f at vertex %llu, merges at %.3f "
                "(persistence %.3f)\n",
                p.max_value, static_cast<unsigned long long>(p.max_id),
                p.saddle_value, p.persistence());
  }

  // Re-run the same (deterministic) simulation single-rank to narrate the
  // kernels' temporal evolution via overlap tracking.
  S3DParams solo = config.sim;
  solo.ranks_per_axis = {1, 1, 1};
  std::vector<Segmentation> frames;
  {
    World world(1);
    world.run([&](Comm& comm) {
      S3DRank sim(solo, 0);
      sim.initialize();
      for (long s = 0; s < config.steps; ++s) {
        sim.advance(comm);
        frames.push_back(segment_superlevel(
            solo.grid.bounds(),
            sim.field(Variable::kTemperature).pack_owned(), threshold));
      }
    });
  }

  std::printf("\nkernel life stories (T >= %.1f, >= 4 voxels):\n", threshold);
  // Assign persistent track ids by following the largest overlap.
  std::map<int32_t, int> track_of_prev;
  int next_track = 0;
  for (size_t t = 0; t < frames.size(); ++t) {
    std::map<int32_t, int> track_of_cur;
    std::vector<int32_t> born;
    if (t > 0) {
      for (const auto& e : overlap_track(frames[t - 1], frames[t])) {
        if (track_of_cur.count(e.label_b) == 0 &&
            track_of_prev.count(e.label_a) > 0) {
          track_of_cur[e.label_b] = track_of_prev[e.label_a];
        }
      }
    }
    for (const auto& f : frames[t].features) {
      if (f.voxels < 4) continue;
      if (track_of_cur.count(f.label) == 0) {
        track_of_cur[f.label] = next_track++;
        born.push_back(f.label);
      }
    }
    std::printf("  step %2zu: %2zu kernels alive", t + 1,
                track_of_cur.size());
    for (const int32_t label : born) {
      const auto& f = frames[t].features[static_cast<size_t>(label)];
      std::printf("  [K%d born at (%.0f,%.0f,%.0f), %lld vox]",
                  track_of_cur[label], f.centroid[0], f.centroid[1],
                  f.centroid[2], static_cast<long long>(f.voxels));
    }
    // Deaths: tracks present before but not now (deduplicated — two labels
    // can map to one track when a feature splits).
    std::set<int> dead;
    for (const auto& [label, track] : track_of_prev) {
      bool survives = false;
      for (const auto& [l2, t2] : track_of_cur) {
        if (t2 == track) survives = true;
      }
      if (!survives) dead.insert(track);
    }
    for (const int track : dead) std::printf("  [K%d dissipated]", track);
    std::printf("\n");
    track_of_prev = std::move(track_of_cur);
  }

  std::printf("\n%d kernel tracks observed over %ld steps; per-step analysis "
              "cost on the simulation: %.4f s in-situ + %.4f s movement\n",
              next_track, config.steps,
              report.mean_in_situ_seconds("topo-hybrid"),
              report.mean_movement_seconds("topo-hybrid"));
  std::printf("with output every ~400th step (conventional post-processing) "
              "these short-lived kernels would never reach disk.\n");
  return 0;
}
