// Quickstart: the smallest complete use of the hybrid in-situ/in-transit
// framework.
//
//   1. Configure a MiniS3D run and the staging area.
//   2. Attach one hybrid analysis (descriptive statistics: learn in-situ,
//      derive in-transit).
//   3. Run, then read the global statistical models and the timing report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/framework.hpp"
#include "core/report.hpp"
#include "core/stats_pipeline.hpp"

int main() {
  using namespace hia;

  // 1. A small lifted-jet simulation on 8 virtual ranks, with 2 DataSpaces
  //    servers and 4 staging buckets as the secondary resources.
  RunConfig config;
  config.sim.grid = GlobalGrid{{48, 32, 24}, {1.0, 0.75, 0.5}};
  config.sim.ranks_per_axis = {2, 2, 2};
  config.staging_servers = 2;
  config.staging_buckets = 4;
  config.steps = 5;

  HybridRunner runner(config);

  // 2. Hybrid descriptive statistics over all 14 solution variables.
  auto stats = std::make_shared<HybridStatistics>();
  runner.add_analysis(stats, /*frequency=*/1);

  // 3. Run the campaign: the simulation advances while completed per-rank
  //    models stream to the staging area and are combined there.
  const RunReport report = runner.run();

  std::printf("ran %ld steps on %d simulation ranks\n", report.steps,
              report.sim_ranks);
  std::printf("mean simulation step: %.4f s; stats in-situ stage: %.4f s; "
              "intermediate data: %.0f bytes/step\n\n",
              report.mean_sim_step_seconds(),
              report.mean_in_situ_seconds("stats-hybrid"),
              report.mean_movement_bytes("stats-hybrid"));

  std::printf("global descriptive statistics (last analyzed step):\n");
  std::printf("%-8s %12s %12s %12s %12s\n", "var", "mean", "stddev", "min",
              "max");
  const auto models = stats->latest_models();
  for (size_t v = 0; v < models.size(); ++v) {
    std::printf("%-8s %12.5f %12.5f %12.5f %12.5f\n",
                std::string(kVariableNames[v]).c_str(), models[v].mean,
                models[v].stddev, models[v].min, models[v].max);
  }
  std::printf("\n%s\n", format_table2(report, {"stats-hybrid"}).c_str());
  return 0;
}
