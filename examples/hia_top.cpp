// hia_top — live operator console for the multi-tenant campaign service.
//
// Spawns a campaign in-process on a worker thread and renders a textual
// dashboard from CampaignService::poll_status() while it runs: service
// pressure, queue depth/bytes, admission credits, bucket census, and one
// row per tenant (observed vs target share, queue occupancy, credits
// held, rolling p99 turnaround, SLO burn, terminal-state counts). The
// same snapshot backs `hia_campaign --status-interval`; this binary is
// the interactive view.
//
// Examples:
//   hia_top --tenants 3 --steps 6
//   hia_top --tenants 4 --overload queue-bytes=2m,credits=8 --pool-max 8
//   hia_top --tenants 2 --interval 0.2 --plain   # append frames, no ANSI
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "core/stats_pipeline.hpp"
#include "service/campaign_service.hpp"

namespace {

using namespace hia;

struct Options {
  int tenants = 2;
  long steps = 5;
  int buckets = 4;
  int servers = 2;
  std::string weights;
  std::string overload;
  std::string faults;
  int pool_min = 0;
  int pool_max = 0;
  double interval_s = 0.5;
  double slo_s = 0.05;
  bool plain = false;  // append frames instead of ANSI clear-and-redraw
};

[[noreturn]] void usage(int code) {
  std::printf(
      "usage: hia_top [options]\n"
      "  --tenants N        concurrent campaigns (default 2)\n"
      "  --steps N          timesteps per tenant (default 5)\n"
      "  --buckets N        staging buckets (default 4)\n"
      "  --servers N        DataSpaces servers (default 2)\n"
      "  --weights a,b,...  per-tenant fair-share weights (length N)\n"
      "  --overload SPEC    service overload spec (OverloadConfig grammar)\n"
      "  --faults SPEC      service fault plan (FaultPlan grammar)\n"
      "  --pool-max N       elastic bucket pool ceiling (default: fixed)\n"
      "  --pool-min N       elastic pool floor (default 1)\n"
      "  --interval S       refresh interval in seconds (default 0.5)\n"
      "  --slo S            per-tenant turnaround SLO target in seconds\n"
      "                     (default 0.05; drives the burn column)\n"
      "  --plain            append frames instead of redrawing in place\n");
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int a = 1; a < argc; ++a) {
    auto need = [&](const char* flag) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage(2);
      }
      return argv[++a];
    };
    if (std::strcmp(argv[a], "--tenants") == 0) {
      opt.tenants = std::atoi(need("--tenants"));
    } else if (std::strcmp(argv[a], "--steps") == 0) {
      opt.steps = std::atol(need("--steps"));
    } else if (std::strcmp(argv[a], "--buckets") == 0) {
      opt.buckets = std::atoi(need("--buckets"));
    } else if (std::strcmp(argv[a], "--servers") == 0) {
      opt.servers = std::atoi(need("--servers"));
    } else if (std::strcmp(argv[a], "--weights") == 0) {
      opt.weights = need("--weights");
    } else if (std::strcmp(argv[a], "--overload") == 0) {
      opt.overload = need("--overload");
    } else if (std::strcmp(argv[a], "--faults") == 0) {
      opt.faults = need("--faults");
    } else if (std::strcmp(argv[a], "--pool-max") == 0) {
      opt.pool_max = std::atoi(need("--pool-max"));
    } else if (std::strcmp(argv[a], "--pool-min") == 0) {
      opt.pool_min = std::atoi(need("--pool-min"));
    } else if (std::strcmp(argv[a], "--interval") == 0) {
      opt.interval_s = std::atof(need("--interval"));
    } else if (std::strcmp(argv[a], "--slo") == 0) {
      opt.slo_s = std::atof(need("--slo"));
    } else if (std::strcmp(argv[a], "--plain") == 0) {
      opt.plain = true;
    } else if (std::strcmp(argv[a], "--help") == 0) {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[a]);
      usage(2);
    }
  }
  if (opt.tenants < 1) {
    std::fprintf(stderr, "--tenants must be >= 1\n");
    usage(2);
  }
  if (opt.interval_s <= 0.0) opt.interval_s = 0.5;
  return opt;
}

/// One dashboard frame. `frame` counts redraws; returns the line count so
/// the ANSI mode knows how far to cursor back up.
int render(const CampaignService::Status& st, int frame, bool done) {
  int lines = 0;
  std::printf("hia_top — frame %d%s | pressure %-9s | queue %zu tasks / "
              "%zu B | store %zu B | credits %s | buckets %d | vt %.3f s\n",
              frame, done ? " (final)" : "", to_string(st.pressure),
              st.queue_depth, st.queue_bytes, st.store_bytes,
              st.credits_free < 0 ? "off"
                                  : std::to_string(st.credits_free).c_str(),
              st.live_buckets, st.virtual_time_s);
  ++lines;
  if (st.pool.grows + st.pool.shrinks > 0) {
    std::printf("pool: %llu grows, %llu shrinks\n",
                static_cast<unsigned long long>(st.pool.grows),
                static_cast<unsigned long long>(st.pool.shrinks));
    ++lines;
  }
  std::printf("  id  name          wt  share(obs/tgt)  queue  outst  "
              "credits      p99(s)  burn  comp  degr  shed  defd\n");
  ++lines;
  for (const CampaignService::TenantStatus& t : st.tenants) {
    char credits[32];
    if (t.credit_cap > 0) {
      std::snprintf(credits, sizeof credits, "%d/%d", t.credits_outstanding,
                    t.credit_cap);
    } else {
      std::snprintf(credits, sizeof credits, "%d", t.credits_outstanding);
    }
    std::printf("  %2d  %-12s %4.1f    %.2f / %.2f   %5zu  %5zu  %7s  "
                "%10.4f  %4.0f%%  %4lld  %4lld  %4lld  %4lld\n",
                t.tenant, t.name.c_str(), t.weight, t.observed_share,
                t.target_share, t.queue_depth, t.outstanding, credits,
                t.p99_turnaround_s, t.slo_burn * 100.0,
                static_cast<long long>(t.completed),
                static_cast<long long>(t.degraded),
                static_cast<long long>(t.shed),
                static_cast<long long>(t.deferred));
    ++lines;
  }
  std::fflush(stdout);
  return lines;
}

std::vector<double> parse_weights(const Options& opt) {
  std::vector<double> weights(static_cast<size_t>(opt.tenants), 1.0);
  if (opt.weights.empty()) return weights;
  size_t begin = 0, i = 0;
  while (begin <= opt.weights.size() && i < weights.size()) {
    const size_t comma = opt.weights.find(',', begin);
    const size_t end = comma == std::string::npos ? opt.weights.size() : comma;
    weights[i++] = std::atof(opt.weights.substr(begin, end - begin).c_str());
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (i != weights.size()) {
    std::fprintf(stderr, "--weights needs %d comma-separated values\n",
                 opt.tenants);
    std::exit(2);
  }
  for (double w : weights) {
    if (w <= 0.0) {
      std::fprintf(stderr, "--weights: every weight must be > 0\n");
      std::exit(2);
    }
  }
  return weights;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const std::vector<double> weights = parse_weights(opt);

  CampaignService::Options sopts;
  sopts.staging_servers = opt.servers;
  sopts.staging_buckets = opt.buckets;
  sopts.overload = opt.overload;
  sopts.faults = opt.faults;
  sopts.pool_min = opt.pool_min;
  sopts.pool_max = opt.pool_max;
  CampaignService service(sopts);

  RunConfig config;
  config.sim.grid = GlobalGrid{{48, 32, 24}, {1.0, 32.0 / 48.0, 24.0 / 48.0}};
  config.sim.ranks_per_axis = {2, 2, 2};
  config.staging_servers = opt.servers;
  config.staging_buckets = opt.buckets;
  config.steps = opt.steps;
  for (int t = 0; t < opt.tenants; ++t) {
    CampaignService::TenantSpec spec;
    spec.name = "tenant-" + std::to_string(t + 1);
    spec.weight = weights[static_cast<size_t>(t)];
    spec.slo_target_s = opt.slo_s;
    spec.config = config;
    spec.setup = [](HybridRunner& runner) {
      runner.add_analysis(std::make_shared<HybridStatistics>(), 1);
    };
    service.add_tenant(std::move(spec));
  }

  // The campaign runs on a worker; the main thread is the console. The
  // final frame renders after `done` flips, so the dashboard always shows
  // the fully-drained state before exiting.
  CampaignService::ServiceReport report;
  std::atomic<bool> done{false};
  std::thread campaign([&service, &report, &done] {
    report = service.run();
    done.store(true, std::memory_order_release);
  });

  int frame = 0;
  int last_lines = 0;
  const auto interval = std::chrono::duration<double>(opt.interval_s);
  while (true) {
    const bool finished = done.load(std::memory_order_acquire);
    const CampaignService::Status st = service.poll_status();
    if (!opt.plain && last_lines > 0) {
      std::printf("\x1b[%dA\x1b[J", last_lines);  // cursor up + clear below
    }
    last_lines = render(st, ++frame, finished);
    if (finished) break;
    // Poll-with-deadline against the campaign finishing, not a bare
    // sleep: the final frame renders promptly once the service drains.
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (!done.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  campaign.join();

  uint64_t total = 0;
  bool conserved = true;
  for (const TenantRunRow& row : report.rows) {
    total += row.submitted;
    conserved = conserved &&
                row.completed + row.degraded + row.deferred + row.shed ==
                    row.submitted;
  }
  std::printf("\ncampaign drained: %llu tasks across %d tenants, "
              "conservation %s\n",
              static_cast<unsigned long long>(total), opt.tenants,
              conserved ? "OK" : "VIOLATED");
  return conserved ? 0 : 1;
}
