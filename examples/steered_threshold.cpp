// Closed-loop steering: the in-transit histogram stage adapts the feature
// threshold that the in-situ feature-statistics stage uses on subsequent
// steps — computational steering, one of the concurrent-analysis
// advantages the paper names in §V.
//
// Loop:
//   1. HybridHistogram builds the global temperature histogram in-transit;
//   2. a steering hook picks the 98th percentile and posts it as
//      "feature.threshold";
//   3. HybridFeatureStatistics (threshold_steering_key set) reads the
//      posted value at its next invocation, so "a feature" always means
//      "the hottest ~2% of the domain", however the flame evolves.
#include <cstdio>

#include "core/feature_stats_pipeline.hpp"
#include "core/framework.hpp"
#include "core/histogram_pipeline.hpp"

namespace hia {
namespace {

/// Wraps HybridHistogram to post a quantile to the steering board after
/// each in-transit combination.
class QuantileSteering final : public HybridAnalysis {
 public:
  QuantileSteering(HistogramConfig config, SteeringBoard& board, double q,
                   std::string key)
      : inner_(std::make_shared<HybridHistogram>(config)),
        board_(board),
        q_(q),
        key_(std::move(key)) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return inner_->staged_variables();
  }
  void in_situ(InSituContext& ctx) override { inner_->in_situ(ctx); }
  void in_transit(TaskContext& ctx) override {
    inner_->in_transit(ctx);
    if (const auto hist = inner_->latest(); hist.has_value()) {
      board_.post(key_, hist->quantile(q_));
    }
  }

 private:
  std::shared_ptr<HybridHistogram> inner_;
  SteeringBoard& board_;
  double q_;
  std::string key_;
};

}  // namespace
}  // namespace hia

int main() {
  using namespace hia;

  RunConfig config;
  config.sim.grid = GlobalGrid{{48, 32, 32}, {1.0, 0.7, 0.7}};
  config.sim.ranks_per_axis = {2, 2, 1};
  config.sim.chemistry.kernel_rate = 2.0;
  config.steps = 10;

  HybridRunner runner(config);

  HistogramConfig hist;
  hist.variable = Variable::kTemperature;
  hist.bins = 96;
  runner.add_analysis(std::make_shared<QuantileSteering>(
      hist, runner.steering(), 0.98, "feature.threshold"));

  FeatureStatsConfig fstats;
  fstats.field = Variable::kTemperature;
  fstats.measure = Variable::kYOH;
  fstats.threshold = 2.0;  // fallback until the first post arrives
  fstats.threshold_steering_key = "feature.threshold";
  auto features = std::make_shared<HybridFeatureStatistics>(fstats);
  runner.add_analysis(features);

  const RunReport report = runner.run();

  std::printf("steered feature extraction over %ld steps\n", report.steps);
  std::printf("final adaptive threshold (98th percentile of T): %.4f\n",
              runner.steering().read_or("feature.threshold", -1.0));
  std::printf("steering board version (posts observed): %llu\n\n",
              static_cast<unsigned long long>(runner.steering().version()));

  const auto table = features->latest_features();
  std::printf("features at the final step (threshold adapted live):\n");
  std::printf("%-6s %-8s %-10s %-24s %-12s\n", "rank", "voxels", "max T",
              "centroid (i,j,k)", "mean Y_OH");
  for (size_t f = 0; f < std::min<size_t>(table.size(), 8); ++f) {
    const auto& feat = table[f];
    const auto model = derive_descriptive(feat.measure);
    std::printf("%-6zu %-8lld %-10.3f (%6.1f, %6.1f, %6.1f)   %-12.3e\n", f,
                static_cast<long long>(feat.voxels), feat.max_value,
                feat.centroid[0], feat.centroid[1], feat.centroid[2],
                model.mean);
  }
  std::printf("\n%zu features total; thresholds tracked the evolving flame "
              "without any human in the loop.\n",
              table.size());
  return 0;
}
