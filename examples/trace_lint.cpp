// trace_lint — validates the obs layer's exported artifacts:
//
//   trace_lint <trace.json>          Chrome trace-event JSON: every 'B'
//                                    event has a matching, correctly
//                                    nested 'E' on its (pid, tid) track.
//   trace_lint --metrics <file>      Prometheus text exposition: every
//                                    sample has a # TYPE, histogram
//                                    buckets are cumulative/ascending and
//                                    the +Inf bucket equals _count.
//   trace_lint --summary <file>      RunSummary JSON (hia-run-summary-v1):
//                                    schema-valid, with at least one
//                                    histogram (p50/p99) and one gauge
//                                    time series.
//
// Exit status: 0 when the artifact is well-formed, 1 otherwise, 2 on usage
// or I/O errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/run_summary.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

int lint_trace(const char* path, const std::string& text) {
  const hia::obs::TraceValidation v =
      hia::obs::validate_chrome_trace_json(text);
  if (!v.ok) {
    std::fprintf(stderr, "trace_lint: %s: INVALID: %s\n", path,
                 v.error.c_str());
    return 1;
  }
  std::printf("trace_lint: %s: OK (%zu events, %zu spans)\n", path, v.events,
              v.spans);
  return 0;
}

int lint_metrics(const char* path, const std::string& text) {
  const hia::obs::MetricsValidation v = hia::obs::validate_metrics_text(text);
  if (!v.ok) {
    std::fprintf(stderr, "trace_lint: %s: INVALID: %s\n", path,
                 v.error.c_str());
    return 1;
  }
  std::printf("trace_lint: %s: OK (%zu samples, %zu histograms)\n", path,
              v.samples, v.histograms);
  return 0;
}

int lint_summary(const char* path, const std::string& text) {
  const hia::obs::SummaryValidation v =
      hia::obs::validate_run_summary_json(text);
  if (!v.ok) {
    std::fprintf(stderr, "trace_lint: %s: INVALID: %s\n", path,
                 v.error.c_str());
    return 1;
  }
  // A bench summary without a single distribution or series means the
  // harness was bypassed; treat it as lint failure, not just a warning.
  if (v.histograms == 0) {
    std::fprintf(stderr, "trace_lint: %s: INVALID: no histograms recorded\n",
                 path);
    return 1;
  }
  if (v.series == 0) {
    std::fprintf(stderr,
                 "trace_lint: %s: INVALID: no gauge time series recorded\n",
                 path);
    return 1;
  }
  std::printf(
      "trace_lint: %s: OK (bench %s: %zu metrics, %zu counters, "
      "%zu histograms, %zu series)\n",
      path, v.bench.c_str(), v.metrics, v.counters, v.histograms, v.series);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* mode = "trace";
  const char* path = nullptr;
  if (argc == 2) {
    path = argv[1];
  } else if (argc == 3 && (std::strcmp(argv[1], "--metrics") == 0 ||
                           std::strcmp(argv[1], "--summary") == 0)) {
    mode = argv[1] + 2;
    path = argv[2];
  } else {
    std::fprintf(stderr,
                 "usage: trace_lint <trace.json>\n"
                 "       trace_lint --metrics <metrics.txt>\n"
                 "       trace_lint --summary <summary.json>\n");
    return 2;
  }

  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "trace_lint: cannot open %s\n", path);
    return 2;
  }
  if (std::strcmp(mode, "metrics") == 0) return lint_metrics(path, text);
  if (std::strcmp(mode, "summary") == 0) return lint_summary(path, text);
  return lint_trace(path, text);
}
