// trace_lint — validates a Chrome trace-event JSON file produced by the
// tracer (or any tool): parses the JSON and checks that every 'B' event
// has a matching, correctly nested 'E' on its (pid, tid) track.
//
// Usage: trace_lint <trace.json>
// Exit status: 0 when the trace is well-formed, 1 otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_lint <trace.json>\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_lint: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  const hia::obs::TraceValidation v =
      hia::obs::validate_chrome_trace_json(buf.str());
  if (!v.ok) {
    std::fprintf(stderr, "trace_lint: %s: INVALID: %s\n", argv[1],
                 v.error.c_str());
    return 1;
  }
  std::printf("trace_lint: %s: OK (%zu events, %zu spans)\n", argv[1],
              v.events, v.spans);
  return 0;
}
