// hia_campaign — the command-line driver for a full hybrid analysis
// campaign: configure the simulation, the staging area, and any subset of
// the analysis pipelines from the command line, run, and get a paper-style
// report.
//
// Examples:
//   hia_campaign --steps 10 --analyses stats,viz,topo
//   hia_campaign --grid 64x48x32 --ranks 2x2x2 --buckets 8
//                --analyses all --frequency 2 --output-dir campaign_out
//   hia_campaign --steps 5 --trace trace.json --metrics metrics.txt
//   hia_campaign --list
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <sys/stat.h>

#include "core/contingency_pipeline.hpp"
#include "core/correlation_pipeline.hpp"
#include "core/feature_stats_pipeline.hpp"
#include "core/framework.hpp"
#include "core/histogram_pipeline.hpp"
#include "core/isosurface_pipeline.hpp"
#include "core/report.hpp"
#include "core/stats_pipeline.hpp"
#include "core/timeseries_pipeline.hpp"
#include "core/topology_pipeline.hpp"
#include "core/viz_pipeline.hpp"
#include "obs/attrib.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/run_summary.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"
#include "service/campaign_service.hpp"

namespace {

using namespace hia;

struct Options {
  std::array<int64_t, 3> grid{48, 32, 24};
  std::array<int, 3> ranks{2, 2, 2};
  long steps = 5;
  int buckets = 4;
  int servers = 2;
  int replicas = 2;
  int frequency = 1;
  std::string analyses = "stats,viz,topo";
  std::string codec;
  std::string faults;
  uint64_t fault_seed = 0;
  std::string overload;
  std::string steer;
  int tenants = 1;
  std::string weights;
  int pool_min = 0;
  int pool_max = 0;
  std::string output_dir;
  std::string trace_path;
  std::string metrics_path;
  std::string summary_path;
  std::string events_path;
  bool attrib = false;
  double status_interval_s = 0.0;
  double sample_hz = 0.0;
  bool list_only = false;
};

const std::map<std::string, std::string> kAnalysisHelp{
    {"stats", "hybrid descriptive statistics (all 14 variables)"},
    {"stats-insitu", "fully in-situ descriptive statistics"},
    {"viz", "hybrid down-sampled volume rendering"},
    {"viz-insitu", "fully in-situ volume rendering"},
    {"topo", "hybrid merge-tree topology"},
    {"corr", "hybrid T/Y_H2O correlation"},
    {"hist", "hybrid temperature histogram"},
    {"features", "hybrid feature-based statistics"},
    {"cont", "hybrid T/Y_H2O contingency table"},
    {"iso", "hybrid isosurface extraction"},
    {"tseries", "temporal autocorrelation of the global T mean"},
};

bool parse_triple(const char* arg, int64_t out[3]) {
  long long a, b, c;
  if (std::sscanf(arg, "%lldx%lldx%lld", &a, &b, &c) != 3) return false;
  out[0] = a;
  out[1] = b;
  out[2] = c;
  return true;
}

[[noreturn]] void usage(int code) {
  std::printf(
      "usage: hia_campaign [options]\n"
      "  --grid NXxNYxNZ     global grid (default 48x32x24)\n"
      "  --ranks RXxRYxRZ    simulation decomposition (default 2x2x2)\n"
      "  --steps N           timesteps (default 5)\n"
      "  --buckets N         staging buckets (default 4)\n"
      "  --servers N         DataSpaces servers (default 2)\n"
      "  --replicas R        object-store replication factor, clamped to\n"
      "                      [1, servers]; committed objects survive R-1\n"
      "                      crash-server losses via read-repair (default 2)\n"
      "  --frequency N       run analyses every Nth step (default 1)\n"
      "  --analyses a,b,...  comma list or 'all' (default stats,viz,topo)\n"
      "  --codec SPEC        staging codec: raw, rle, delta, or\n"
      "                      quantize:<abs error bound> (default: none)\n"
      "  --faults SPEC       fault-injection plan, comma-separated, e.g.\n"
      "                      drop=0.05,task-fail=0.1,crash-server=1@3\n"
      "                      (directives: drop/corrupt/delay/task-fail/\n"
      "                      stall/kill-bucket/slow-bucket/crash-bucket/\n"
      "                      crash-server/attempts/backoff/shed/seed;\n"
      "                      crash-bucket=B@N and crash-server=S@N are\n"
      "                      ungraceful: no drain, in-flight work seized;\n"
      "                      see docs/FAILURE_MODEL.md)\n"
      "  --fault-seed N      override the fault plan's seed (same seed =>\n"
      "                      same injected faults, same resilience block)\n"
      "  --overload SPEC     overload-control budgets, comma-separated, e.g.\n"
      "                      queue-bytes=4m,queue-depth=32,credits=16\n"
      "                      (directives: queue-bytes/queue-depth/\n"
      "                      store-bytes/low/high/credits/admit-wait/\n"
      "                      defer-max; see docs/FAILURE_MODEL.md)\n"
      "  --steer POLICY      in-transit steering policy: in-transit\n"
      "                      (default), adaptive, in-situ, or shed\n"
      "  --tenants N         run N concurrent campaigns through the\n"
      "                      multi-tenant service: one shared staging area,\n"
      "                      weighted fair-share scheduling, per-tenant\n"
      "                      isolation ledgers (default 1: classic path)\n"
      "  --weights a,b,...   per-tenant fair-share weights (needs --tenants;\n"
      "                      length N; default: all 1.0)\n"
      "  --pool-max N        elastic bucket pool: grow up to N buckets under\n"
      "                      sustained saturation, retire idle ones when\n"
      "                      pressure clears (default: fixed pool; needs\n"
      "                      --overload for the pressure signal)\n"
      "  --pool-min N        elastic pool floor (default 1)\n"
      "  --output-dir DIR    write PPM/OBJ artifacts there\n"
      "  --trace FILE        write a Chrome trace-event JSON (load in\n"
      "                      Perfetto / chrome://tracing)\n"
      "  --metrics FILE      write a flat Prometheus-style counter dump\n"
      "                      (per-tenant series carry {tenant=\"N\"} labels)\n"
      "  --events FILE       write the flight recorder's structured event\n"
      "                      log (binary hia-events-v1; validate with\n"
      "                      events_lint, which checks the per-tenant\n"
      "                      conservation partition)\n"
      "  --attrib            after the run, rebuild per-task timelines from\n"
      "                      the flight recorder and print the makespan\n"
      "                      attribution: the exact additive phase partition\n"
      "                      (admit+queue+backoff+transfer+compute+drain ==\n"
      "                      turnaround, checked per task) and the critical\n"
      "                      path (implies event recording; exits nonzero\n"
      "                      if any partition fails)\n"
      "  --status-interval S print a one-line service status digest every\n"
      "                      S seconds while the campaigns run (needs\n"
      "                      --tenants N with N > 1)\n"
      "  --summary FILE      write a RunSummary JSON (schema\n"
      "                      hia-run-summary-v1: metrics, counters,\n"
      "                      histograms, gauge time series)\n"
      "  --obs-sample-hz HZ  sample registered gauges at HZ into the\n"
      "                      summary's time series (default: off; two\n"
      "                      samples are always taken, start and end)\n"
      "  --list              list available analyses and exit\n");
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int a = 1; a < argc; ++a) {
    auto need = [&](const char* flag) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage(2);
      }
      return argv[++a];
    };
    if (std::strcmp(argv[a], "--grid") == 0) {
      int64_t g[3];
      if (!parse_triple(need("--grid"), g)) usage(2);
      opt.grid = {g[0], g[1], g[2]};
    } else if (std::strcmp(argv[a], "--ranks") == 0) {
      int64_t r[3];
      if (!parse_triple(need("--ranks"), r)) usage(2);
      opt.ranks = {static_cast<int>(r[0]), static_cast<int>(r[1]),
                   static_cast<int>(r[2])};
    } else if (std::strcmp(argv[a], "--steps") == 0) {
      opt.steps = std::atol(need("--steps"));
    } else if (std::strcmp(argv[a], "--buckets") == 0) {
      opt.buckets = std::atoi(need("--buckets"));
    } else if (std::strcmp(argv[a], "--servers") == 0) {
      opt.servers = std::atoi(need("--servers"));
    } else if (std::strcmp(argv[a], "--replicas") == 0) {
      opt.replicas = std::atoi(need("--replicas"));
    } else if (std::strcmp(argv[a], "--frequency") == 0) {
      opt.frequency = std::atoi(need("--frequency"));
    } else if (std::strcmp(argv[a], "--analyses") == 0) {
      opt.analyses = need("--analyses");
    } else if (std::strcmp(argv[a], "--codec") == 0) {
      opt.codec = need("--codec");
    } else if (std::strcmp(argv[a], "--faults") == 0) {
      opt.faults = need("--faults");
    } else if (std::strcmp(argv[a], "--fault-seed") == 0) {
      opt.fault_seed = std::strtoull(need("--fault-seed"), nullptr, 10);
    } else if (std::strcmp(argv[a], "--overload") == 0) {
      opt.overload = need("--overload");
    } else if (std::strcmp(argv[a], "--steer") == 0) {
      opt.steer = need("--steer");
    } else if (std::strcmp(argv[a], "--tenants") == 0) {
      opt.tenants = std::atoi(need("--tenants"));
    } else if (std::strcmp(argv[a], "--weights") == 0) {
      opt.weights = need("--weights");
    } else if (std::strcmp(argv[a], "--pool-max") == 0) {
      opt.pool_max = std::atoi(need("--pool-max"));
    } else if (std::strcmp(argv[a], "--pool-min") == 0) {
      opt.pool_min = std::atoi(need("--pool-min"));
    } else if (std::strcmp(argv[a], "--output-dir") == 0) {
      opt.output_dir = need("--output-dir");
    } else if (std::strcmp(argv[a], "--trace") == 0) {
      opt.trace_path = need("--trace");
    } else if (std::strcmp(argv[a], "--metrics") == 0) {
      opt.metrics_path = need("--metrics");
    } else if (std::strcmp(argv[a], "--summary") == 0) {
      opt.summary_path = need("--summary");
    } else if (std::strcmp(argv[a], "--events") == 0) {
      opt.events_path = need("--events");
    } else if (std::strcmp(argv[a], "--attrib") == 0) {
      opt.attrib = true;
    } else if (std::strcmp(argv[a], "--status-interval") == 0) {
      opt.status_interval_s = std::atof(need("--status-interval"));
    } else if (std::strcmp(argv[a], "--obs-sample-hz") == 0) {
      opt.sample_hz = std::atof(need("--obs-sample-hz"));
    } else if (std::strcmp(argv[a], "--list") == 0) {
      opt.list_only = true;
    } else if (std::strcmp(argv[a], "--help") == 0) {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[a]);
      usage(2);
    }
  }
  return opt;
}

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= csv.size()) {
    const size_t comma = csv.find(',', begin);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

/// Builds one analysis instance by CLI name (null for an unknown name).
/// Each tenant gets fresh instances — analyses carry per-run state.
std::shared_ptr<HybridAnalysis> make_analysis(const std::string& name,
                                              const Options& opt) {
  if (name == "stats") return std::make_shared<HybridStatistics>();
  if (name == "stats-insitu") return std::make_shared<InSituStatistics>();
  if (name == "viz" || name == "viz-insitu") {
    VizConfig viz;
    viz.image_size = 128;
    viz.downsample_stride = 4;
    viz.output_dir = opt.output_dir;
    if (name == "viz") return std::make_shared<HybridVisualization>(viz);
    return std::make_shared<InSituVisualization>(viz);
  }
  if (name == "topo") return std::make_shared<HybridTopology>(TopologyConfig{});
  if (name == "corr") {
    return std::make_shared<HybridCorrelation>(Variable::kTemperature,
                                               Variable::kYH2O);
  }
  if (name == "hist") return std::make_shared<HybridHistogram>(HistogramConfig{});
  if (name == "features") {
    FeatureStatsConfig fcfg;
    fcfg.threshold = 1.5;
    return std::make_shared<HybridFeatureStatistics>(fcfg);
  }
  if (name == "cont") {
    return std::make_shared<HybridContingency>(ContingencyConfig{});
  }
  if (name == "tseries") {
    return std::make_shared<TimeSeriesAutocorrelation>(TimeSeriesConfig{});
  }
  if (name == "iso") {
    IsosurfaceConfig icfg;
    icfg.iso = 1.5;
    icfg.output_dir = opt.output_dir;
    return std::make_shared<HybridIsosurface>(icfg);
  }
  return nullptr;
}

/// Registers the run's configuration with the flight recorder so
/// write_events_file embeds it in the spill header: a replayed spill then
/// carries the tenant weights, overload caps, bucket count, replication
/// factor, and fault spec the run actually used (hia_plan --calibrate
/// reads these back instead of guessing).
void register_run_config(const Options& opt,
                         const std::vector<double>& tenant_weights) {
  obs::EventsRunConfig cfg;
  cfg.buckets = opt.buckets;
  cfg.servers = opt.servers;
  // Record the effective factor (the store clamps to [1, servers]).
  cfg.replicas = std::clamp(opt.replicas, 1, opt.servers);
  cfg.faults = opt.faults;
  cfg.overload = opt.overload;
  cfg.tenant_weights = tenant_weights;
  obs::set_events_run_config(cfg);
}

/// --attrib: rebuild per-task timelines from the in-memory flight
/// recorder and print the makespan attribution. Returns nonzero when any
/// task's phase partition fails to sum to its turnaround (or records were
/// dropped, which makes the partition unverifiable).
int report_attribution() {
  const obs::Attribution attrib = obs::attribute_events(
      obs::events_snapshot(), obs::dropped_event_records());
  if (!attrib.ok || !attrib.conserved) {
    std::fprintf(stderr, "makespan attribution FAILED: %s\n",
                 attrib.error.c_str());
    return 1;
  }
  const obs::CriticalPath cp = obs::extract_critical_path(attrib);
  if (!cp.ok) {
    std::fprintf(stderr, "critical-path extraction FAILED: %s\n",
                 cp.error.c_str());
    return 1;
  }
  std::printf("\nmakespan attribution: %zu tasks, makespan %.4f s, "
              "critical path %.4f s (all partitions exact)\n",
              attrib.tasks.size(), attrib.makespan_s, cp.length_s);
  std::printf("  %-10s  %12s  %6s  %12s\n", "phase", "task-seconds",
              "share", "on-path (s)");
  for (int p = 0; p < obs::kPhaseCount; ++p) {
    std::printf("  %-10s  %12.4f  %5.1f%%  %12.4f\n",
                obs::phase_name(static_cast<obs::TaskPhase>(p)),
                attrib.phase_totals[p],
                attrib.total_turnaround_s > 0.0
                    ? 100.0 * attrib.phase_totals[p] /
                          attrib.total_turnaround_s
                    : 0.0,
                cp.phase_on_path[p]);
  }
  return 0;
}

/// The multi-tenant path: N concurrent campaigns through CampaignService.
int run_tenants(const Options& opt, const RunConfig& base_config,
                const std::vector<std::string>& wanted) {
  std::vector<double> weights(static_cast<size_t>(opt.tenants), 1.0);
  if (!opt.weights.empty()) {
    const auto parts = split(opt.weights);
    if (static_cast<int>(parts.size()) != opt.tenants) {
      std::fprintf(stderr, "--weights needs %d comma-separated values\n",
                   opt.tenants);
      return 2;
    }
    for (size_t i = 0; i < parts.size(); ++i) {
      weights[i] = std::atof(parts[i].c_str());
      if (weights[i] <= 0.0) {
        std::fprintf(stderr, "--weights: weight %zu must be > 0\n", i + 1);
        return 2;
      }
    }
  }

  CampaignService::Options sopts;
  sopts.staging_servers = opt.servers;
  sopts.staging_buckets = opt.buckets;
  sopts.staging_replicas = opt.replicas;
  sopts.faults = opt.faults;
  sopts.fault_seed = opt.fault_seed;
  sopts.overload = opt.overload;
  sopts.pool_min = opt.pool_min;
  sopts.pool_max = opt.pool_max;
  CampaignService service(sopts);

  RunConfig config = base_config;
  // The service owns fault injection and the overload ledger.
  config.faults.clear();
  config.overload.clear();
  for (int t = 0; t < opt.tenants; ++t) {
    CampaignService::TenantSpec spec;
    spec.name = "tenant-" + std::to_string(t + 1);
    spec.weight = weights[static_cast<size_t>(t)];
    spec.config = config;
    spec.setup = [&opt, &wanted](HybridRunner& runner) {
      for (const std::string& name : wanted) {
        runner.add_analysis(make_analysis(name, opt), opt.frequency);
      }
    };
    service.add_tenant(std::move(spec));
  }

  std::printf("multi-tenant service: %d campaigns x %ld steps, weights %s, "
              "%d buckets%s\n\n",
              opt.tenants, opt.steps,
              opt.weights.empty() ? "1.0 each" : opt.weights.c_str(),
              opt.buckets,
              opt.pool_max > 0 ? " (elastic)" : "");

  if (!opt.events_path.empty() || opt.attrib) {
    // Raise the per-thread ring capacity before the tenant threads spin
    // up (rings are sized at first touch): a recorded campaign that
    // overflows loses submit events, and with them the exact per-tenant
    // conservation partition. Then start from a clean stream.
    obs::set_events_capacity(1 << 16);
    obs::reset_events();
    obs::enable_events();
    register_run_config(opt, weights);
  }

  // --status-interval: a digest thread polls the service while the
  // campaigns run, one line per interval (the batch-mode sibling of the
  // hia_top dashboard). Poll-with-deadline so it exits promptly when the
  // service drains instead of sleeping through a full interval.
  std::atomic<bool> campaign_done{false};
  std::thread digest;
  if (opt.status_interval_s > 0.0) {
    digest = std::thread([&service, &campaign_done,
                          interval = opt.status_interval_s] {
      const auto step = std::chrono::duration<double>(interval);
      while (!campaign_done.load(std::memory_order_acquire)) {
        const auto deadline = std::chrono::steady_clock::now() + step;
        while (!campaign_done.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (campaign_done.load(std::memory_order_acquire)) break;
        const CampaignService::Status st = service.poll_status();
        std::printf("[status] vt=%.2fs pressure=%s queue=%zut/%zuB "
                    "buckets=%d",
                    st.virtual_time_s, to_string(st.pressure),
                    st.queue_depth, st.queue_bytes, st.live_buckets);
        for (const CampaignService::TenantStatus& t : st.tenants) {
          std::printf(" | t%d q=%zu out=%zu p99=%.3fs burn=%.0f%%",
                      t.tenant, t.queue_depth, t.outstanding,
                      t.p99_turnaround_s, t.slo_burn * 100.0);
        }
        std::printf("\n");
        std::fflush(stdout);
      }
    });
  }

  const CampaignService::ServiceReport report = service.run();
  campaign_done.store(true, std::memory_order_release);
  if (digest.joinable()) digest.join();
  obs::stop_sampler();
  obs::sample_now();

  std::printf("%s\n", format_tenant_table(report.rows).c_str());
  if (opt.pool_max > 0) {
    std::printf("elastic pool: %llu grows, %llu shrinks, %d buckets at "
                "drain\n",
                static_cast<unsigned long long>(report.pool.grows),
                static_cast<unsigned long long>(report.pool.shrinks),
                report.final_buckets);
  }
  uint64_t total_tasks = 0;
  double share_err_max = 0.0;
  bool conserved = true;
  for (const TenantRunRow& row : report.rows) {
    total_tasks += row.submitted;
    share_err_max = std::max(share_err_max,
                             std::abs(row.share_observed - row.share_target));
    conserved = conserved &&
                row.completed + row.degraded + row.deferred + row.shed ==
                    row.submitted;
  }
  std::printf("processed %llu tasks across %d tenants; max |share error| "
              "%.3f; per-tenant conservation %s\n",
              static_cast<unsigned long long>(total_tasks), opt.tenants,
              share_err_max, conserved ? "OK" : "VIOLATED");
  const bool attrib_ok = !opt.attrib || report_attribution() == 0;

  if (!opt.trace_path.empty()) {
    if (!obs::write_chrome_trace(opt.trace_path)) return 1;
    std::printf("trace written to %s\n", opt.trace_path.c_str());
  }
  if (!opt.metrics_path.empty()) {
    if (!obs::write_metrics(opt.metrics_path)) return 1;
    std::printf("metrics written to %s\n", opt.metrics_path.c_str());
  }
  bool events_ok = true;
  if (!opt.events_path.empty()) {
    if (!obs::write_events_file(opt.events_path)) return 1;
    const obs::EventsValidation ev =
        obs::validate_events_file(opt.events_path);
    if (!ev.ok) {
      std::fprintf(stderr, "events file %s INVALID: %s\n",
                   opt.events_path.c_str(), ev.error.c_str());
      return 1;
    }
    // The recorder and the service report count the same lifecycle
    // transitions through different paths; their per-tenant partitions
    // must agree exactly, or one of them lied.
    for (const TenantRunRow& row : report.rows) {
      const obs::EventsValidation::TenantCounts* counts = nullptr;
      for (const obs::EventsValidation::TenantCounts& t : ev.tenants) {
        if (t.tenant == row.tenant) counts = &t;
      }
      const bool row_ok = counts != nullptr &&
                          counts->submitted == row.submitted &&
                          counts->completed == row.completed &&
                          counts->degraded == row.degraded &&
                          counts->shed == row.shed &&
                          counts->deferred == row.deferred;
      if (!row_ok) {
        std::fprintf(stderr,
                     "events partition MISMATCH for tenant %d "
                     "(report: %llu sub / %llu comp / %llu degr / %llu "
                     "shed / %llu defd)\n",
                     row.tenant,
                     static_cast<unsigned long long>(row.submitted),
                     static_cast<unsigned long long>(row.completed),
                     static_cast<unsigned long long>(row.degraded),
                     static_cast<unsigned long long>(row.shed),
                     static_cast<unsigned long long>(row.deferred));
        events_ok = false;
      }
    }
    std::printf("events written to %s (%llu records, %llu dropped; "
                "per-tenant partition %s the service report)\n",
                opt.events_path.c_str(),
                static_cast<unsigned long long>(ev.records),
                static_cast<unsigned long long>(ev.dropped),
                events_ok ? "matches" : "MISMATCHES");
  }
  if (!opt.summary_path.empty()) {
    obs::RunSummary summary;
    summary.bench = "hia_campaign";
    summary.metrics["tenants"] = static_cast<double>(opt.tenants);
    summary.metrics["total_tasks"] = static_cast<double>(total_tasks);
    summary.metrics["share_err_max"] = share_err_max;
    summary.metrics["conservation_ok"] = conserved ? 1.0 : 0.0;
    summary.metrics["pool_grows"] = static_cast<double>(report.pool.grows);
    summary.metrics["pool_shrinks"] = static_cast<double>(report.pool.shrinks);
    for (const TenantRunRow& row : report.rows) {
      const std::string prefix = "t" + std::to_string(row.tenant) + "_";
      summary.metrics[prefix + "completed"] =
          static_cast<double>(row.completed);
      summary.metrics[prefix + "share"] = row.share_observed;
      summary.metrics[prefix + "p99_s"] = row.p99_turnaround_s;
    }
    if (!obs::write_run_summary(opt.summary_path, summary)) return 1;
    std::printf("run summary written to %s\n", opt.summary_path.c_str());
  }
  return conserved && events_ok && attrib_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  if (opt.list_only) {
    std::printf("available analyses:\n");
    for (const auto& [name, help] : kAnalysisHelp) {
      std::printf("  %-12s %s\n", name.c_str(), help.c_str());
    }
    return 0;
  }
  if (!opt.output_dir.empty()) ::mkdir(opt.output_dir.c_str(), 0755);

  RunConfig config;
  config.sim.grid = GlobalGrid{opt.grid,
                               {1.0,
                                static_cast<double>(opt.grid[1]) /
                                    static_cast<double>(opt.grid[0]),
                                static_cast<double>(opt.grid[2]) /
                                    static_cast<double>(opt.grid[0])}};
  config.sim.ranks_per_axis = opt.ranks;
  config.staging_servers = opt.servers;
  config.staging_buckets = opt.buckets;
  config.staging_replicas = opt.replicas;
  config.steps = opt.steps;
  config.staging_codec = opt.codec;
  config.faults = opt.faults;
  config.fault_seed = opt.fault_seed;
  config.overload = opt.overload;
  config.steer = opt.steer;
  if (!opt.codec.empty()) {
    try {
      (void)make_codec(opt.codec);
    } catch (const Error& e) {
      std::fprintf(stderr, "bad --codec: %s\n", e.what());
      return 2;
    }
  }
  if (!opt.faults.empty()) {
    try {
      (void)FaultPlan::parse_spec(opt.faults);
    } catch (const Error& e) {
      std::fprintf(stderr, "bad --faults: %s\n", e.what());
      return 2;
    }
  }
  if (!opt.overload.empty()) {
    try {
      const OverloadConfig ocfg = OverloadConfig::parse_spec(opt.overload);
      if (!ocfg.enabled()) {
        std::fprintf(stderr,
                     "bad --overload: spec sets no budget and no credits\n");
        return 2;
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "bad --overload: %s\n", e.what());
      return 2;
    }
  }
  if (!opt.steer.empty()) {
    try {
      (void)parse_steer_policy(opt.steer);
    } catch (const Error& e) {
      std::fprintf(stderr, "bad --steer: %s\n", e.what());
      return 2;
    }
  }
  if (opt.tenants < 1) {
    std::fprintf(stderr, "--tenants must be >= 1\n");
    return 2;
  }
  if (opt.replicas < 1) {
    std::fprintf(stderr, "--replicas must be >= 1\n");
    return 2;
  }
  if (!opt.weights.empty() && opt.tenants <= 1) {
    std::fprintf(stderr, "--weights needs --tenants N with N > 1\n");
    return 2;
  }
  if (opt.status_interval_s > 0.0 && opt.tenants <= 1) {
    std::fprintf(stderr, "--status-interval needs --tenants N with N > 1\n");
    return 2;
  }

  auto wanted = split(opt.analyses == "all"
                          ? "stats,stats-insitu,viz,viz-insitu,topo,corr,"
                            "hist,features,cont,iso,tseries"
                          : opt.analyses);
  for (const std::string& name : wanted) {
    if (kAnalysisHelp.find(name) == kAnalysisHelp.end()) {
      std::fprintf(stderr, "unknown analysis: %s (try --list)\n",
                   name.c_str());
      return 2;
    }
  }

  if (!opt.trace_path.empty() || !opt.metrics_path.empty()) {
    obs::enable();
  }
  obs::sample_now();  // t=0 point for every gauge series
  if (opt.sample_hz > 0.0) obs::start_sampler(opt.sample_hz);

  if (opt.tenants > 1) return run_tenants(opt, config, wanted);

  if (!opt.events_path.empty() || opt.attrib) {
    obs::set_events_capacity(1 << 16);
    obs::reset_events();
    obs::enable_events();
    register_run_config(opt, {});
  }

  HybridRunner runner(config);

  std::vector<std::string> report_names;
  for (const std::string& name : wanted) {
    std::shared_ptr<HybridAnalysis> analysis = make_analysis(name, opt);
    report_names.push_back(analysis->name());
    runner.add_analysis(std::move(analysis), opt.frequency);
  }

  std::printf("running %ld steps of %lldx%lldx%lld on %dx%dx%d ranks, "
              "%d buckets, analyses every %d step(s): %s\n\n",
              opt.steps, static_cast<long long>(opt.grid[0]),
              static_cast<long long>(opt.grid[1]),
              static_cast<long long>(opt.grid[2]), opt.ranks[0],
              opt.ranks[1], opt.ranks[2], opt.buckets, opt.frequency,
              opt.analyses.c_str());
  if (!opt.codec.empty()) {
    std::printf("staging codec: %s (wire/ratio columns below show the "
                "published-byte reduction)\n\n",
                opt.codec.c_str());
  }
  if (!opt.faults.empty()) {
    std::printf("fault injection: %s (seed %llu)\n\n", opt.faults.c_str(),
                static_cast<unsigned long long>(
                    opt.fault_seed != 0 ? opt.fault_seed
                                        : FaultPlan::parse_spec(opt.faults)
                                              .seed));
  }
  if (!opt.overload.empty() || !opt.steer.empty()) {
    std::printf("overload control: %s, steering: %s\n\n",
                opt.overload.empty() ? "off" : opt.overload.c_str(),
                opt.steer.empty() ? "in-transit" : opt.steer.c_str());
  }

  const RunReport report = runner.run();
  obs::stop_sampler();
  obs::sample_now();  // closing point for every gauge series

  std::printf("%s\n", format_table2(report, report_names).c_str());
  std::printf("%s\n", format_fig6(report, report_names).c_str());
  if (report.resilience.any()) {
    std::printf("%s\n", format_resilience(report).c_str());
  }
  std::printf("processed: %zu in-transit task records over %ld steps; mean "
              "simulation step %.4f s\n",
              report.in_transit.size(), report.steps,
              report.mean_sim_step_seconds());
  if (opt.attrib && report_attribution() != 0) return 1;
  if (!opt.output_dir.empty()) {
    std::printf("artifacts written under %s/\n", opt.output_dir.c_str());
  }
  if (!opt.trace_path.empty()) {
    if (!obs::write_chrome_trace(opt.trace_path)) return 1;
    std::printf("trace written to %s (load in https://ui.perfetto.dev)\n",
                opt.trace_path.c_str());
  }
  if (!opt.metrics_path.empty()) {
    if (!obs::write_metrics(opt.metrics_path)) return 1;
    std::printf("metrics written to %s\n", opt.metrics_path.c_str());
  }
  if (!opt.events_path.empty()) {
    if (!obs::write_events_file(opt.events_path)) return 1;
    const obs::EventsValidation ev =
        obs::validate_events_file(opt.events_path);
    if (!ev.ok) {
      std::fprintf(stderr, "events file %s INVALID: %s\n",
                   opt.events_path.c_str(), ev.error.c_str());
      return 1;
    }
    std::printf("events written to %s (%llu records, %llu dropped)\n",
                opt.events_path.c_str(),
                static_cast<unsigned long long>(ev.records),
                static_cast<unsigned long long>(ev.dropped));
  }
  if (!opt.summary_path.empty()) {
    obs::RunSummary summary;
    summary.bench = "hia_campaign";
    summary.metrics["steps"] = static_cast<double>(report.steps);
    summary.metrics["in_transit_tasks"] =
        static_cast<double>(report.in_transit.size());
    summary.metrics["mean_sim_step_s"] = report.mean_sim_step_seconds();
    if (report.resilience.any()) {
      const ResilienceSummary& res = report.resilience;
      summary.metrics["tasks_completed"] =
          static_cast<double>(res.tasks_completed);
      summary.metrics["tasks_degraded"] =
          static_cast<double>(res.tasks_degraded);
      summary.metrics["tasks_shed"] = static_cast<double>(res.tasks_shed);
      summary.metrics["tasks_deferred"] =
          static_cast<double>(res.tasks_deferred);
      summary.metrics["task_retries"] = static_cast<double>(res.task_retries);
      summary.metrics["backoff_s"] = res.backoff_seconds;
      summary.metrics["frame_retransmits"] =
          static_cast<double>(res.frame_retransmits);
      summary.metrics["crc_failures"] = static_cast<double>(res.crc_failures);
      summary.metrics["recovered_bytes"] =
          static_cast<double>(res.recovered_bytes);
      summary.metrics["buckets_killed"] =
          static_cast<double>(res.buckets_killed);
      summary.metrics["buckets_crashed"] =
          static_cast<double>(res.buckets_crashed);
      summary.metrics["servers_crashed"] =
          static_cast<double>(res.servers_crashed);
      summary.metrics["leases_expired"] =
          static_cast<double>(res.leases_expired);
      summary.metrics["tasks_reexecuted"] =
          static_cast<double>(res.tasks_reexecuted);
      summary.metrics["zombies_fenced"] =
          static_cast<double>(res.zombies_fenced);
      summary.metrics["replicas_repaired"] =
          static_cast<double>(res.replicas_repaired);
      summary.metrics["objects_lost"] = static_cast<double>(res.objects_lost);
      summary.metrics["steer_in_situ"] =
          static_cast<double>(res.steer_in_situ);
      summary.metrics["steer_deferred"] =
          static_cast<double>(res.steer_deferred);
      summary.metrics["steer_shed"] = static_cast<double>(res.steer_shed);
      summary.metrics["overload_diversions"] =
          static_cast<double>(res.overload_diversions);
      summary.metrics["admission_overdrafts"] =
          static_cast<double>(res.admission_overdrafts);
      summary.metrics["admission_wait_s"] = res.admission_wait_s;
      summary.metrics["peak_queue_bytes"] =
          static_cast<double>(res.peak_queue_bytes);
    }
    if (!obs::write_run_summary(opt.summary_path, summary)) return 1;
    std::printf("run summary written to %s\n", opt.summary_path.c_str());
  }
  return 0;
}
