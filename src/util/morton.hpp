// Morton (Z-order) encoding used to shard staging objects across servers
// while preserving spatial locality, and as a cache-friendly traversal order.
#pragma once

#include <cstdint>

namespace hia {

namespace detail {
// Spreads the low 21 bits of v so there are two zero bits between each bit.
constexpr uint64_t part1by2(uint64_t v) {
  v &= 0x1fffffULL;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

constexpr uint64_t compact1by2(uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffffULL;
  return v;
}
}  // namespace detail

/// Interleaves (x, y, z), each limited to 21 bits, into a 63-bit Morton code.
constexpr uint64_t morton_encode(uint32_t x, uint32_t y, uint32_t z) {
  return detail::part1by2(x) | (detail::part1by2(y) << 1) |
         (detail::part1by2(z) << 2);
}

struct MortonPoint {
  uint32_t x, y, z;
};

/// Inverse of morton_encode.
constexpr MortonPoint morton_decode(uint64_t code) {
  return {static_cast<uint32_t>(detail::compact1by2(code)),
          static_cast<uint32_t>(detail::compact1by2(code >> 1)),
          static_cast<uint32_t>(detail::compact1by2(code >> 2))};
}

}  // namespace hia
