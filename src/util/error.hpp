// Error-handling primitives shared across all HIA libraries.
//
// HIA_REQUIRE  — precondition on public API boundaries; throws hia::Error.
// HIA_ASSERT   — internal invariant; aborts in all build types because a
//                violated invariant means the process state is unreliable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hia {

/// Exception type thrown by all HIA precondition violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::string full = std::string("HIA_REQUIRE failed: (") + expr + ") at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += ": " + msg;
  throw Error(full);
}

[[noreturn]] inline void assert_failed(const char* expr, const char* file,
                                       int line) {
  std::fprintf(stderr, "HIA_ASSERT failed: (%s) at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace detail

}  // namespace hia

#define HIA_REQUIRE(expr, msg)                                         \
  do {                                                                 \
    if (!(expr))                                                       \
      ::hia::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define HIA_ASSERT(expr)                                          \
  do {                                                            \
    if (!(expr))                                                  \
      ::hia::detail::assert_failed(#expr, __FILE__, __LINE__);    \
  } while (false)
