// Numeric conversion helpers shared by the serialized-payload decoders.
#pragma once

#include <cmath>

namespace hia {

/// Round-to-nearest conversion for integral fields carried inside double
/// payloads (ids, counts, box bounds). Structured summaries travel the
/// staging path as double arrays, and a lossy staging codec may perturb
/// them by up to its error bound; a truncating static_cast would then be
/// off by one (e.g. 12345 decoded as 12344.9999994). Rounding recovers the
/// exact integer for any perturbation below 0.5 — far above every usable
/// quantization bound.
template <typename T>
[[nodiscard]] T round_to(double v) {
  return static_cast<T>(std::llround(v));
}

}  // namespace hia
