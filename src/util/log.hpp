// Minimal thread-safe leveled logger.
//
// Usage:
//   hia::log::set_level(hia::log::Level::kInfo);
//   HIA_LOG_INFO("staging", "assigned task %d to bucket %d", t, b);
//
// The logger writes to stderr; tests can redirect via set_sink().
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace hia::log {

enum class Level : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global minimum level; messages below it are dropped.
void set_level(Level level);
Level level();

/// Redirects log output (default: stderr). Pass nullptr to restore stderr.
/// The sink receives fully formatted lines without a trailing newline.
void set_sink(std::function<void(const std::string&)> sink);

/// Core emit function; prefer the HIA_LOG_* macros.
void vemit(Level level, const char* component, const char* fmt, std::va_list);
void emit(Level level, const char* component, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

const char* level_name(Level level);

}  // namespace hia::log

#define HIA_LOG_AT(lvl, component, ...)                      \
  do {                                                       \
    if (static_cast<int>(lvl) >= static_cast<int>(::hia::log::level())) \
      ::hia::log::emit((lvl), (component), __VA_ARGS__);     \
  } while (false)

#define HIA_LOG_TRACE(component, ...) \
  HIA_LOG_AT(::hia::log::Level::kTrace, component, __VA_ARGS__)
#define HIA_LOG_DEBUG(component, ...) \
  HIA_LOG_AT(::hia::log::Level::kDebug, component, __VA_ARGS__)
#define HIA_LOG_INFO(component, ...) \
  HIA_LOG_AT(::hia::log::Level::kInfo, component, __VA_ARGS__)
#define HIA_LOG_WARN(component, ...) \
  HIA_LOG_AT(::hia::log::Level::kWarn, component, __VA_ARGS__)
#define HIA_LOG_ERROR(component, ...) \
  HIA_LOG_AT(::hia::log::Level::kError, component, __VA_ARGS__)
