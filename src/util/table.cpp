#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace hia {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HIA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HIA_REQUIRE(cells.size() <= header_.size(),
              "row has more cells than header columns");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };

  std::string rule = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c] + 2, '-') + "|";
  }
  rule += "\n";

  std::string out = render_row(header_);
  out += rule;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt_fixed(bytes, 2) + " " + units[u];
}

std::string fmt_percent(double v, double total) {
  if (total == 0.0) return "n/a";
  return fmt_fixed(100.0 * v / total, 2) + "%";
}

}  // namespace hia
