// Wall-clock stopwatch used by every timing measurement in the framework.
#pragma once

#include <chrono>

namespace hia {

/// High-resolution wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed seconds before restart.
  double restart() {
    const auto now = Clock::now();
    const double s = seconds_between(start_, now);
    start_ = now;
    return s;
  }

  /// Elapsed seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return seconds_between(start_, Clock::now());
  }

 private:
  static double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  }

  Clock::time_point start_;
};

/// Accumulates named durations; cheap enough to keep per-rank.
class TimeAccumulator {
 public:
  void add(double seconds) {
    total_ += seconds;
    ++count_;
    if (seconds > max_) max_ = seconds;
  }
  [[nodiscard]] double total() const { return total_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] long count() const { return count_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  void reset() { total_ = 0.0; max_ = 0.0; count_ = 0; }

 private:
  double total_ = 0.0;
  double max_ = 0.0;
  long count_ = 0;
};

}  // namespace hia
