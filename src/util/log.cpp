#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace hia::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
// The installed sink is shared, not owned, by emitters: vemit copies the
// shared_ptr under the mutex and invokes the sink outside it, so a sink
// that logs (or a concurrent set_sink) cannot deadlock, and a replaced
// sink stays alive until in-flight emits finish with it.
std::mutex g_sink_mutex;
std::shared_ptr<const std::function<void(const std::string&)>> g_sink;
}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level)); }

Level level() { return static_cast<Level>(g_level.load()); }

void set_sink(std::function<void(const std::string&)> sink) {
  auto next =
      sink ? std::make_shared<const std::function<void(const std::string&)>>(
                 std::move(sink))
           : nullptr;
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(next);
}

const char* level_name(Level l) {
  switch (l) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO";
    case Level::kWarn:  return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF";
  }
  return "?";
}

void vemit(Level lvl, const char* component, const char* fmt,
           std::va_list args) {
  if (static_cast<int>(lvl) < g_level.load()) return;

  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
  va_end(args_copy);
  if (needed < 0) return;

  std::string body(static_cast<size_t>(needed) + 1, '\0');
  std::vsnprintf(body.data(), body.size(), fmt, args);
  body.resize(static_cast<size_t>(needed));

  std::string line = std::string("[") + level_name(lvl) + "][" + component +
                     "] " + body;

  std::shared_ptr<const std::function<void(const std::string&)>> sink;
  {
    std::lock_guard lock(g_sink_mutex);
    sink = g_sink;
  }
  if (sink) {
    (*sink)(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void emit(Level lvl, const char* component, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vemit(lvl, component, fmt, args);
  va_end(args);
}

}  // namespace hia::log
