// CRC-32 (IEEE 802.3 polynomial, reflected) over byte spans.
//
// Used as the frame integrity check on the DART wire path: put() stamps a
// checksum on the published region and get() re-verifies it after the fault
// layer has had a chance to corrupt the copy in flight, reproducing the
// transport-level CRC that lets uGNI detect and retransmit damaged frames.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace hia {

namespace detail {
inline const std::array<uint32_t, 256>& crc32_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `size` bytes starting at `data` (empty input → 0x00000000 is
/// never returned; the standard final XOR applies).
inline uint32_t crc32(const void* data, size_t size) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace hia
