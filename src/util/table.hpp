// ASCII table rendering for benchmark output: the benches print rows in the
// same layout as the paper's Tables I and II, so results can be compared
// side by side with the publication.
#pragma once

#include <string>
#include <vector>

namespace hia {

/// Column-aligned ASCII table. Rows may have fewer cells than the header;
/// missing cells render empty.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (e.g. fmt_fixed(1.2345, 2) == "1.23").
std::string fmt_fixed(double v, int precision);

/// Human-readable byte count: "87.02 MB", "1.5 GB".
std::string fmt_bytes(double bytes);

/// Formats v as a percentage of total with two decimals: "4.33%".
std::string fmt_percent(double v, double total);

}  // namespace hia
