// Small 3-vector math used by the grid, renderer, and turbulence synthesis.
#pragma once

#include <cmath>

namespace hia {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

}  // namespace hia
