// Deterministic, splittable pseudo-random number generation.
//
// Simulations and workload generators need per-rank independent streams that
// are reproducible across thread schedules; SplitMix64 seeds independent
// xoshiro256** streams keyed by (seed, rank).
#pragma once

#include <cmath>
#include <cstdint>

namespace hia {

/// SplitMix64: used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: fast, high-quality generator for bulk field synthesis.
class Xoshiro256 {
 public:
  /// Derives an independent stream for (seed, stream_id) pairs.
  explicit Xoshiro256(uint64_t seed, uint64_t stream_id = 0) {
    SplitMix64 sm(seed ^ (stream_id * 0x9e3779b97f4a7c15ULL + 1));
    for (auto& s : s_) s = sm.next();
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t below(uint64_t n) { return next() % n; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4]{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace hia
