#include "planner/replay.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <map>
#include <queue>
#include <set>

namespace hia::planner {

namespace {

/// Parses a number with an optional k/m/g (1024-based) suffix — the
/// same shorthand, with the same binary scale, as the overload spec
/// grammar in runtime/overload.cpp.
bool parse_scaled(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return false;
  switch (*end) {
    case 'k': case 'K': value *= 1024.0; ++end; break;
    case 'm': case 'M': value *= 1024.0 * 1024.0; ++end; break;
    case 'g': case 'G': value *= 1024.0 * 1024.0 * 1024.0; ++end; break;
    default: break;
  }
  if (*end != '\0') return false;
  *out = value;
  return true;
}

bool parse_positive_int(const std::string& text, long* out) {
  double v = 0.0;
  if (!parse_scaled(text, &v)) return false;
  if (v < 0.0 || v != std::floor(v) || v > 1e15) return false;
  *out = static_cast<long>(v);
  return true;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= csv.size()) {
    const size_t comma = csv.find(',', begin);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

}  // namespace

// ------------------------------------------------ workload extraction ----

Workload extract_workload(const obs::Attribution& attrib) {
  Workload w;
  if (!attrib.ok || !attrib.conserved) {
    // Fail closed, same contract as attribution: a spill with drops or a
    // partition that does not telescope cannot seed a trustworthy replay.
    w.error = attrib.error.empty() ? "attribution is not conserved"
                                   : attrib.error;
    return w;
  }
  std::set<int> buckets;
  std::set<int> tenants;
  for (const obs::TaskTimeline& tl : attrib.tasks) {
    ReplayTask t;
    t.task_id = tl.task_id;
    t.tenant = tl.tenant;
    t.step = tl.step;
    t.admit_wait_s = tl.phases[static_cast<int>(obs::TaskPhase::kAdmit)];
    t.arrival_vt = tl.submit_vt - t.admit_wait_s;
    t.input_bytes = tl.input_bytes;
    t.transfer_s = tl.phases[static_cast<int>(obs::TaskPhase::kTransfer)];
    t.compute_s = tl.phases[static_cast<int>(obs::TaskPhase::kCompute)];
    t.drain_s = tl.phases[static_cast<int>(obs::TaskPhase::kDrain)];
    t.terminal_kind = tl.terminal_kind;
    w.tasks.push_back(t);
    tenants.insert(tl.tenant);
    for (const obs::TaskTimeline::Segment& s : tl.segments) {
      if (s.bucket >= 0) buckets.insert(s.bucket);
    }
  }
  std::sort(w.tasks.begin(), w.tasks.end(),
            [](const ReplayTask& x, const ReplayTask& y) {
              if (x.arrival_vt != y.arrival_vt) {
                return x.arrival_vt < y.arrival_vt;
              }
              return x.task_id < y.task_id;
            });
  w.recorded_buckets = std::max<int>(1, static_cast<int>(buckets.size()));
  w.tenants.assign(tenants.begin(), tenants.end());
  w.measured_makespan_s = attrib.makespan_s;
  w.ok = true;
  return w;
}

Workload extract_workload_file(const std::string& path) {
  Workload w = extract_workload(obs::attribute_events_file(path));
  // The run-config header block is optional (pre-PR10 spills lack it) and
  // advisory: a missing or unreadable block leaves present == false and
  // the replay falls back to inferred configuration.
  std::string ignored;
  (void)obs::read_events_run_config(path, &w.run_config, &ignored);
  return w;
}

// ------------------------------------------------------ scenario spec ----

double nominal_codec_ratio(const std::string& codec) {
  // Nominal wire/raw ratios for the S3D field payloads the staging path
  // carries (docs/PLANNER.md documents the provenance; codec-ratio=R
  // overrides when you have a measured ratio for your own data).
  if (codec == "raw") return 1.0;
  if (codec == "rle") return 0.95;
  if (codec == "delta") return 0.45;
  if (codec == "quantize") return 0.20;
  return -1.0;
}

bool parse_scenario(const std::string& spec, Scenario* io,
                    std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  for (const std::string& item : split_csv(spec)) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      return fail("scenario directive '" + item + "' is not key=value");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    double num = 0.0;
    long integer = 0;
    if (key == "buckets") {
      if (!parse_positive_int(value, &integer) || integer < 1) {
        return fail("buckets must be a positive integer, got '" + value +
                    "'");
      }
      io->buckets = static_cast<int>(integer);
    } else if (key == "nodes") {
      if (!parse_scaled(value, &num) || num <= 0.0) {
        return fail("nodes must be > 0, got '" + value + "'");
      }
      io->nodes = num;
    } else if (key == "base-nodes") {
      if (!parse_scaled(value, &num) || num <= 0.0) {
        return fail("base-nodes must be > 0, got '" + value + "'");
      }
      io->base_nodes = num;
    } else if (key == "arrival-scale") {
      if (!parse_scaled(value, &num) || num <= 0.0) {
        return fail("arrival-scale must be > 0, got '" + value + "'");
      }
      io->arrival_scale = num;
    } else if (key == "credits") {
      if (!parse_positive_int(value, &integer)) {
        return fail("credits must be a nonnegative integer, got '" + value +
                    "'");
      }
      io->credits = static_cast<int>(integer);
    } else if (key == "queue-depth") {
      if (!parse_positive_int(value, &integer)) {
        return fail("queue-depth must be a nonnegative integer, got '" +
                    value + "'");
      }
      io->queue_depth = integer;
    } else if (key == "divert") {
      if (value == "shed") {
        io->divert = DivertMode::kShed;
      } else if (value == "degrade") {
        io->divert = DivertMode::kDegrade;
      } else {
        return fail("divert must be shed or degrade, got '" + value + "'");
      }
    } else if (key == "policy") {
      if (value == "fcfs") {
        io->policy = QueuePolicy::kFcfs;
      } else if (value == "fair") {
        io->policy = QueuePolicy::kFair;
      } else {
        return fail("policy must be fcfs or fair, got '" + value + "'");
      }
    } else if (key == "xfer") {
      if (value == "recorded") {
        io->model_network = false;
      } else if (value == "modeled") {
        io->model_network = true;
      } else {
        return fail("xfer must be recorded or modeled, got '" + value +
                    "'");
      }
    } else if (key == "codec") {
      const double ratio = nominal_codec_ratio(value);
      if (ratio <= 0.0) {
        return fail("unknown codec '" + value +
                    "' (raw, rle, delta, quantize)");
      }
      io->codec_ratio = ratio;
      io->model_network = true;
    } else if (key == "codec-ratio") {
      if (!parse_scaled(value, &num) || num <= 0.0) {
        return fail("codec-ratio must be > 0, got '" + value + "'");
      }
      io->codec_ratio = num;
      io->model_network = true;
    } else if (key == "smsg-lat") {
      if (!parse_scaled(value, &num) || num < 0.0) {
        return fail("smsg-lat must be >= 0 seconds, got '" + value + "'");
      }
      io->net.smsg_latency_s = num;
      io->model_network = true;
    } else if (key == "smsg-bw") {
      if (!parse_scaled(value, &num) || num <= 0.0) {
        return fail("smsg-bw must be > 0 bytes/s, got '" + value + "'");
      }
      io->net.smsg_bandwidth_Bps = num;
      io->model_network = true;
    } else if (key == "smsg-max") {
      if (!parse_positive_int(value, &integer)) {
        return fail("smsg-max must be a nonnegative byte count, got '" +
                    value + "'");
      }
      io->net.smsg_max_bytes = static_cast<size_t>(integer);
      io->model_network = true;
    } else if (key == "bte-lat") {
      if (!parse_scaled(value, &num) || num < 0.0) {
        return fail("bte-lat must be >= 0 seconds, got '" + value + "'");
      }
      io->net.bte_latency_s = num;
      io->model_network = true;
    } else if (key == "bte-bw") {
      if (!parse_scaled(value, &num) || num <= 0.0) {
        return fail("bte-bw must be > 0 bytes/s, got '" + value + "'");
      }
      io->net.bte_bandwidth_Bps = num;
      io->model_network = true;
    } else if (key == "congestion") {
      if (!parse_scaled(value, &num) || num < 0.0) {
        return fail("congestion must be >= 0, got '" + value + "'");
      }
      io->net.congestion_exponent = num;
      io->model_network = true;
    } else {
      return fail("unknown scenario key '" + key + "'");
    }
  }
  return true;
}

// ------------------------------------------------------------- replay ----

Prediction replay(const Workload& workload, const Scenario& scenario) {
  Prediction p;
  if (!workload.ok) {
    p.error = workload.error;
    return p;
  }
  const int buckets =
      scenario.buckets > 0 ? scenario.buckets : workload.recorded_buckets;
  double scale = scenario.arrival_scale;
  if (scenario.nodes > 0.0) scale *= scenario.base_nodes / scenario.nodes;
  if (!(scale > 0.0) || !std::isfinite(scale)) {
    p.error = "arrival scale must be positive and finite";
    return p;
  }
  if (workload.tasks.empty()) {
    p.ok = true;
    return p;
  }

  const size_t n = workload.tasks.size();
  const double t0 = workload.tasks.front().arrival_vt;
  struct Sim {
    const ReplayTask* task = nullptr;
    double arrival = 0.0;
    double admit_at = 0.0;
  };
  std::vector<Sim> sims(n);
  for (size_t i = 0; i < n; ++i) {
    sims[i].task = &workload.tasks[i];
    sims[i].arrival = t0 + (workload.tasks[i].arrival_vt - t0) * scale;
  }

  // Event kinds order same-instant processing: a completion releases its
  // bucket and credit before the next arrival or dispatch sees the state.
  enum EvKind { kBucketDone = 0, kDegradeDone = 1, kArrival = 2 };
  struct Ev {
    double t;
    int kind;
    uint64_t seq;
    size_t idx;
  };
  auto later = [](const Ev& x, const Ev& y) {
    if (x.t != y.t) return x.t > y.t;
    if (x.kind != y.kind) return x.kind > y.kind;
    return x.seq > y.seq;
  };
  std::priority_queue<Ev, std::vector<Ev>, decltype(later)> events(later);
  uint64_t seq = 0;
  for (size_t i = 0; i < n; ++i) {
    events.push({sims[i].arrival, kArrival, seq++, i});
  }

  const NetworkModel net(scenario.net);
  std::deque<size_t> admit_fifo;       // arrived, waiting for a credit
  std::deque<size_t> fcfs_queue;       // admitted, waiting for a bucket
  std::map<int, std::deque<size_t>> tenant_queues;  // fair-share lanes
  std::map<int, double> tenant_service;  // settled bucket-seconds
  long ready_count = 0;
  int free_buckets = buckets;
  int in_service = 0;  // bucket-resident tasks (the congestion flows)
  int credits_in_use = 0;

  double& admit_total = p.phase_totals[static_cast<int>(obs::TaskPhase::kAdmit)];
  double& queue_total = p.phase_totals[static_cast<int>(obs::TaskPhase::kQueue)];
  double& xfer_total =
      p.phase_totals[static_cast<int>(obs::TaskPhase::kTransfer)];
  double& compute_total =
      p.phase_totals[static_cast<int>(obs::TaskPhase::kCompute)];
  double& drain_total =
      p.phase_totals[static_cast<int>(obs::TaskPhase::kDrain)];

  double max_terminal = sims.front().arrival;
  auto terminal = [&](size_t idx, double now) {
    p.turnarounds_s.push_back(now - sims[idx].arrival);
    p.terminals_vt.push_back(now);
    max_terminal = std::max(max_terminal, now);
  };

  auto transfer_seconds = [&](const ReplayTask& t) {
    if (!scenario.model_network) return t.transfer_s;
    const double scaled =
        static_cast<double>(std::max<int64_t>(0, t.input_bytes)) *
        scenario.codec_ratio;
    if (scaled < 1.0) return 0.0;
    // Congestion sampled at dispatch: this flow plus every in-service
    // task (each bucket pulls at attempt start). A coarse but honest
    // stand-in for continuous flow tracking — see docs/PLANNER.md.
    return net.transfer_seconds(static_cast<size_t>(scaled + 0.5),
                                in_service + 1);
  };

  auto dispatch = [&](double now) {
    while (free_buckets > 0 && ready_count > 0) {
      size_t idx = 0;
      if (scenario.policy == QueuePolicy::kFcfs) {
        idx = fcfs_queue.front();
        fcfs_queue.pop_front();
      } else {
        // Least weight-normalized settled bucket-seconds wins (the live
        // scheduler's fair-share rule); ties go to the lowest tenant id;
        // within a tenant, strict arrival order. Tenants without a
        // recorded weight (or pre-PR10 spills) replay at weight 1.0.
        auto weight_of = [&](int tenant) {
          const size_t i = static_cast<size_t>(tenant) - 1;
          return tenant >= 1 && i < scenario.tenant_weights.size() &&
                         scenario.tenant_weights[i] > 0.0
                     ? scenario.tenant_weights[i]
                     : 1.0;
        };
        int best_tenant = -1;
        double best_service = 0.0;
        for (const auto& [tenant, queue] : tenant_queues) {
          if (queue.empty()) continue;
          const double service = tenant_service[tenant] / weight_of(tenant);
          if (best_tenant < 0 || service < best_service) {
            best_tenant = tenant;
            best_service = service;
          }
        }
        idx = tenant_queues[best_tenant].front();
        tenant_queues[best_tenant].pop_front();
      }
      --ready_count;
      const ReplayTask& t = *sims[idx].task;
      queue_total += now - sims[idx].admit_at;
      const double xfer = transfer_seconds(t);
      const double busy = xfer + t.compute_s + t.drain_s;
      xfer_total += xfer;
      compute_total += t.compute_s;
      drain_total += t.drain_s;
      p.busy_bucket_seconds += busy;
      tenant_service[t.tenant] += busy;
      --free_buckets;
      ++in_service;
      events.push({now + busy, kBucketDone, seq++, idx});
    }
  };

  auto try_admit = [&](double now) {
    while (!admit_fifo.empty() &&
           (scenario.credits == 0 || credits_in_use < scenario.credits)) {
      const size_t idx = admit_fifo.front();
      admit_fifo.pop_front();
      ++credits_in_use;
      admit_total += now - sims[idx].arrival;
      sims[idx].admit_at = now;
      const ReplayTask& t = *sims[idx].task;
      if (scenario.queue_depth > 0 && ready_count >= scenario.queue_depth) {
        // The hard queue wall: divert before the queue, like submit().
        if (scenario.divert == DivertMode::kShed) {
          ++p.shed;
          terminal(idx, now);
          --credits_in_use;
        } else {
          // Degrade-to-in-situ: compute-only cost, no staging bucket.
          ++p.degraded;
          compute_total += t.compute_s;
          events.push({now + t.compute_s, kDegradeDone, seq++, idx});
        }
        continue;
      }
      ++ready_count;
      p.peak_queue_depth = std::max(p.peak_queue_depth, ready_count);
      if (scenario.policy == QueuePolicy::kFcfs) {
        fcfs_queue.push_back(idx);
      } else {
        tenant_queues[t.tenant].push_back(idx);
      }
    }
  };

  while (!events.empty()) {
    const Ev e = events.top();
    events.pop();
    const double now = e.t;
    switch (e.kind) {
      case kBucketDone:
        ++free_buckets;
        --in_service;
        --credits_in_use;
        ++p.completed;
        terminal(e.idx, now);
        break;
      case kDegradeDone:
        --credits_in_use;
        terminal(e.idx, now);
        break;
      case kArrival:
        admit_fifo.push_back(e.idx);
        break;
    }
    try_admit(now);
    dispatch(now);
  }

  p.makespan_s = max_terminal - sims.front().arrival;
  for (const double turnaround : p.turnarounds_s) {
    p.total_turnaround_s += turnaround;
  }
  if (p.makespan_s > 0.0) {
    p.utilization =
        p.busy_bucket_seconds / (static_cast<double>(buckets) * p.makespan_s);
  }
  std::sort(p.terminals_vt.begin(), p.terminals_vt.end());
  p.ok = true;
  return p;
}

// -------------------------------------------------------- calibration ----

Calibration calibrate(const Workload& workload, double tolerance) {
  Calibration c;
  c.tolerance = tolerance;
  if (!workload.ok) {
    c.error = workload.error;
    return c;
  }
  Scenario recorded;
  recorded.label = "recorded";
  // Multi-tenant recordings replay under the fair-share matcher. A spill
  // whose header carries a run_config block replays the *configured*
  // truth — tenant weights and bucket count — instead of inferring it
  // from the event stream (idle buckets never appear in occupancies, and
  // weights are invisible to the recorder's task lifecycle events).
  recorded.policy = workload.tenants.size() > 1 ? QueuePolicy::kFair
                                                : QueuePolicy::kFcfs;
  if (workload.run_config.present) {
    if (workload.run_config.buckets > 0) {
      recorded.buckets = workload.run_config.buckets;
    }
    recorded.tenant_weights = workload.run_config.tenant_weights;
  }
  c.prediction = replay(workload, recorded);
  if (!c.prediction.ok) {
    c.error = c.prediction.error;
    return c;
  }
  c.ok = true;
  c.measured_makespan_s = workload.measured_makespan_s;
  c.predicted_makespan_s = c.prediction.makespan_s;
  if (c.measured_makespan_s > 0.0) {
    c.rel_error = std::fabs(c.predicted_makespan_s - c.measured_makespan_s) /
                  c.measured_makespan_s;
  } else {
    c.rel_error = c.predicted_makespan_s > 0.0 ? 1.0 : 0.0;
  }
  c.calibrated = c.rel_error <= tolerance;
  return c;
}

// -------------------------------------------------------------- sweep ----

bool parse_sweep(const std::string& spec, SweepSpec* out,
                 std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    return fail("sweep spec '" + spec + "' is not key=values");
  }
  out->key = spec.substr(0, eq);
  out->values.clear();
  const std::string body = spec.substr(eq + 1);
  const size_t dots = body.find("..");
  if (dots != std::string::npos) {
    // LO..HI[:STEP], endpoints inclusive.
    const std::string lo_text = body.substr(0, dots);
    std::string hi_text = body.substr(dots + 2);
    double step = 1.0;
    const size_t colon = hi_text.find(':');
    if (colon != std::string::npos) {
      if (!parse_scaled(hi_text.substr(colon + 1), &step) || step <= 0.0) {
        return fail("sweep step must be > 0 in '" + spec + "'");
      }
      hi_text = hi_text.substr(0, colon);
    }
    double lo = 0.0;
    double hi = 0.0;
    if (!parse_scaled(lo_text, &lo) || !parse_scaled(hi_text, &hi)) {
      return fail("sweep range endpoints must be numbers in '" + spec + "'");
    }
    if (hi < lo) {
      return fail("sweep range is empty (hi < lo) in '" + spec + "'");
    }
    for (double v = lo; v <= hi + 1e-9 * std::max(1.0, std::fabs(hi));
         v += step) {
      char buf[64];
      if (std::fabs(v - std::round(v)) < 1e-9) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(std::llround(v)));
      } else {
        std::snprintf(buf, sizeof(buf), "%g", v);
      }
      out->values.push_back(buf);
    }
  } else {
    out->values = split_csv(body);
  }
  if (out->values.empty()) {
    return fail("sweep spec '" + spec + "' has no values");
  }
  return true;
}

bool expand_sweeps(const Scenario& base,
                   const std::vector<SweepSpec>& sweeps,
                   std::vector<Scenario>* out, std::string* error) {
  out->clear();
  if (sweeps.empty()) {
    out->push_back(base);
    return true;
  }
  std::vector<size_t> index(sweeps.size(), 0);
  while (true) {
    Scenario s = base;
    std::string label;
    for (size_t axis = 0; axis < sweeps.size(); ++axis) {
      const std::string& value = sweeps[axis].values[index[axis]];
      if (!parse_scenario(sweeps[axis].key + "=" + value, &s, error)) {
        return false;
      }
      if (!label.empty()) label += ';';
      label += sweeps[axis].key + "=" + value;
    }
    s.label = label;
    out->push_back(std::move(s));
    // Row-major odometer: last axis fastest.
    size_t axis = sweeps.size();
    while (axis > 0) {
      --axis;
      if (++index[axis] < sweeps[axis].values.size()) break;
      index[axis] = 0;
      if (axis == 0) return true;
    }
  }
}

}  // namespace hia::planner
