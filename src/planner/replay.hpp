// Replay-driven what-if capacity planner (the ROADMAP's SIM-SITU mode).
//
// A recorded `hia-events-v1` spill carries every task's causal costs:
// admission wait, per-attempt transfer/compute wall time, occupancy
// remainder, arrival order, tenant and input bytes (obs/attrib.hpp proves
// the partition is exact before we trust any of it). This module replays
// that workload through a discrete-event model of the staging layer —
// credit admission, a bounded task queue, FCFS or fair-share matching,
// B bucket servers, and the Gemini NetworkModel for transfers — under
// *hypothetical* configurations: different bucket counts, producer node
// counts, network parameters, codec reduction ratios, and overload
// policies. One replay costs microseconds, so sweeping the paper's
// Table I / Fig 5 sizing questions over a scenario grid is near-free.
//
// Fidelity contract:
//   * Recorded per-task service costs (transfer + compute + drain) are
//     conserved verbatim unless the scenario re-models transfers
//     (`xfer=modeled`, implied by any network/codec key).
//   * A spill with dropped records FAILS CLOSED: lost records mean the
//     workload is unverifiable, so extraction refuses (same rule as
//     attribution).
//   * calibrate() replays the recorded run under its *own* configuration
//     and must reproduce the measured makespan within a relative
//     tolerance — the CI gate (`replay_calibrated_ok` in
//     bench/baselines/BENCH_replay.json) that keeps the model honest.
//
// Known model simplifications (docs/PLANNER.md "When replay lies"):
// fault-driven retries/backoff are not re-simulated, and congestion is
// sampled at dispatch time rather than continuously. Spills that carry a
// run_config header block (PR 10+) replay with the *recorded* tenant
// weights and configured bucket count; older spills fall back to equal
// weights and the observed bucket census.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/events.hpp"
#include "runtime/network_model.hpp"

namespace hia::planner {

/// One replayable task reconstructed from a spill's attribution.
struct ReplayTask {
  uint64_t task_id = 0;
  int tenant = 0;
  int step = -1;
  double arrival_vt = 0.0;  // submit_vt - admit_wait: when the producer
                            //   first wanted admission
  double admit_wait_s = 0.0;   // recorded admission wait
  int64_t input_bytes = 0;     // submit record's input wire bytes
  double transfer_s = 0.0;     // recorded wall seconds inside pulls
  double compute_s = 0.0;      // recorded handler seconds
  double drain_s = 0.0;        // recorded occupancy remainder
  int32_t terminal_kind = 0;   // recorded outcome (EventKind)
};

/// The workload plus the measured ground truth from one spill.
struct Workload {
  bool ok = false;
  std::string error;  // fail-closed reason (drops, broken partition, I/O)
  std::vector<ReplayTask> tasks;  // sorted by arrival, then task id
  double measured_makespan_s = 0.0;  // attribution's measured makespan
  int recorded_buckets = 1;  // distinct bucket ids seen in occupancies
  std::vector<int> tenants;  // distinct tenant ids, ascending
  /// Run configuration embedded in the spill header (present == false for
  /// pre-PR10 spills or when extracting from an in-memory attribution).
  /// When present, calibrate() replays the *configured* bucket count and
  /// tenant weights instead of inferring them from the event stream.
  obs::EventsRunConfig run_config;
};

/// Builds the workload from a conserved attribution. Fails closed when
/// the attribution is not ok/conserved (which includes any drops).
Workload extract_workload(const obs::Attribution& attrib);

/// Same, straight from an hia-events-v1 spill.
Workload extract_workload_file(const std::string& path);

/// Matcher discipline for the replayed queue.
enum class QueuePolicy { kFcfs, kFair };

/// Where queue-cap overflow goes (the overload divert policy).
enum class DivertMode { kShed, kDegrade };

/// One hypothetical configuration. The default scenario replays the
/// recorded run: recorded bucket count, recorded transfer costs,
/// unlimited credits, unbounded queue, FCFS.
struct Scenario {
  int buckets = 0;        // staging buckets; 0 = recorded count
  double arrival_scale = 1.0;  // multiplies arrival offsets from t0
  double nodes = 0.0;     // producer nodes; >0 scales arrivals by
                          //   base_nodes/nodes (strong scaling)
  double base_nodes = 1.0;
  int credits = 0;        // admission credits; 0 = unlimited
  long queue_depth = 0;   // queued-task cap; 0 = unbounded
  DivertMode divert = DivertMode::kShed;  // where capped overflow goes
  QueuePolicy policy = QueuePolicy::kFcfs;
  bool model_network = false;  // re-model transfers from input bytes
  NetworkParams net;           // used when model_network
  double codec_ratio = 1.0;    // wire-byte scale under re-modeling
  /// Fair-share weights for QueuePolicy::kFair (index = tenant id - 1;
  /// empty or out-of-range tenants = weight 1.0). calibrate() and hia_plan
  /// seed these from the spill's run_config when the header carries one.
  std::vector<double> tenant_weights;
  std::string label;           // human-readable "k=v;k=v" scenario key
};

/// Parses a comma-separated "key=value" spec into `*io` (on top of its
/// current values). Keys: buckets, nodes, base-nodes, arrival-scale,
/// credits, queue-depth, divert (shed|degrade), policy (fcfs|fair),
/// xfer (recorded|modeled), codec (raw|rle|delta|quantize),
/// codec-ratio, smsg-lat, smsg-bw, smsg-max, bte-lat, bte-bw,
/// congestion. Numbers accept binary k/m/g suffixes (1024-based, the
/// overload-spec convention). Any
/// network or codec key implies xfer=modeled. Returns false with
/// `*error` set on an unknown key or a value out of domain.
bool parse_scenario(const std::string& spec, Scenario* io,
                    std::string* error);

/// Nominal wire-reduction ratio for a named codec (the planner cannot
/// re-encode recorded payloads, so codec sweeps scale bytes by these;
/// override with codec-ratio=R). Returns <= 0 for an unknown name.
double nominal_codec_ratio(const std::string& codec);

/// What one replayed scenario predicts.
struct Prediction {
  bool ok = false;
  std::string error;
  double makespan_s = 0.0;  // max predicted terminal - min arrival
  double phase_totals[obs::kPhaseCount] = {};  // predicted task-seconds
  double total_turnaround_s = 0.0;
  uint64_t completed = 0;
  uint64_t degraded = 0;  // queue-cap overflow run at in-situ cost
  uint64_t shed = 0;      // queue-cap overflow dropped at admission
  long peak_queue_depth = 0;
  double busy_bucket_seconds = 0.0;
  double utilization = 0.0;  // busy / (buckets * makespan)
  std::vector<double> turnarounds_s;  // per task, arrival -> terminal
  std::vector<double> terminals_vt;   // predicted terminal times, sorted
};

/// Replays the workload under `scenario`. Deterministic: identical
/// inputs produce identical predictions (ties broken by task id;
/// completions process before arrivals at equal instants).
Prediction replay(const Workload& workload, const Scenario& scenario);

/// The calibration check: replay the recorded run under its own
/// configuration and compare predicted vs measured makespan.
struct Calibration {
  bool ok = false;          // workload extracted and replay ran
  std::string error;
  bool calibrated = false;  // ok && rel_error <= tolerance
  double measured_makespan_s = 0.0;
  double predicted_makespan_s = 0.0;
  double rel_error = 0.0;   // |predicted - measured| / measured
  double tolerance = 0.0;
  Prediction prediction;
};

/// Default calibration tolerance. Replay conserves recorded service
/// costs, so the residual is matcher-order divergence plus scheduler
/// bookkeeping the model folds into drain — see docs/PLANNER.md for the
/// rationale and the measured residuals behind this number.
inline constexpr double kDefaultCalibrationTolerance = 0.15;

/// Replays under the recorded configuration (recorded buckets, recorded
/// transfers, fair-share when the spill is multi-tenant) and checks the
/// makespan against the measurement.
Calibration calibrate(const Workload& workload,
                      double tolerance = kDefaultCalibrationTolerance);

// ---- Sweep grammar ----
//
//   KEY=V1,V2,...          explicit value list
//   KEY=LO..HI             inclusive integer-stepped range (step 1)
//   KEY=LO..HI:STEP        inclusive range with explicit step
//
// Every key parse_scenario accepts can be swept; multiple sweep axes
// cross-multiply into the scenario grid.

struct SweepSpec {
  std::string key;
  std::vector<std::string> values;  // rendered back through the scenario
                                    //   parser, so domain checks apply
};

/// Parses one "key=spec" sweep axis. Returns false with `*error` set on
/// grammar errors (no '=', empty list, bad range, nonpositive step).
bool parse_sweep(const std::string& spec, SweepSpec* out,
                 std::string* error);

/// Expands sweep axes over `base` into the scenario cross product, in
/// row-major order (first axis slowest). Labels carry only the swept
/// keys ("buckets=4;credits=8"). Returns false when any generated value
/// fails scenario parsing.
bool expand_sweeps(const Scenario& base,
                   const std::vector<SweepSpec>& sweeps,
                   std::vector<Scenario>* out, std::string* error);

}  // namespace hia::planner
