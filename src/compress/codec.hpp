// Data-reduction codecs for the staging/transport hot path (paper §V: the
// in-transit economics are gated on the bytes the in-situ ranks push over
// the Gemini network, so reducing wire volume buys modeled transfer time).
//
// A Codec turns a double array — the universal payload currency of this
// framework's publish/pull path — into a self-describing *frame*:
//
//   [ 32-byte header: magic, version, kind, count, param, payload size ]
//   [ codec-specific payload ]
//
// The header makes decode stateless: any consumer holding frame bytes can
// reconstruct the values via decode_frame() without out-of-band metadata,
// which is what lets TaskContext::pull_doubles decode transparently on the
// bucket side. Corrupt or truncated frames are rejected with hia::Error.
//
// Built-in codecs (see codecs.hpp):
//   raw       — identity baseline (memcpy)
//   rle       — run-length over bit-identical values (segmentation labels)
//   delta     — zig-zag delta varint for integral payloads (tree arcs,
//               sorted index lists); bit-exact raw fallback otherwise
//   quantize  — fixed-point quantization under an absolute error bound,
//               byte-shuffled fixed-width planes; bound 0 = lossless
//               byte-shuffle of the raw IEEE doubles
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace hia {

/// Wire identifier of a codec; stored in every frame header.
enum class CodecKind : uint8_t {
  kRaw = 0,
  kRle = 1,
  kDeltaVarint = 2,
  kQuantizeShuffle = 3,
};

const char* to_string(CodecKind kind);

class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual CodecKind kind() const = 0;
  /// Human-readable name including parameters, e.g. "quantize:1e-06".
  [[nodiscard]] virtual std::string name() const = 0;
  /// Codec parameter carried in the frame header (the absolute error bound
  /// for quantize; 0 for the parameterless codecs).
  [[nodiscard]] virtual double param() const { return 0.0; }
  /// Maximum |x - decode(encode(x))| this codec may introduce (0 =
  /// lossless). Non-finite values are always preserved exactly.
  [[nodiscard]] virtual double error_bound() const { return 0.0; }

  /// Encodes `values` into the codec-specific payload (no frame header).
  [[nodiscard]] virtual std::vector<std::byte> encode_payload(
      std::span<const double> values) const = 0;

  /// Decodes a payload produced by encode_payload. `count` and `param` come
  /// from the frame header. Must validate the payload and throw hia::Error
  /// on any inconsistency.
  [[nodiscard]] virtual std::vector<double> decode_payload(
      std::span<const std::byte> payload, size_t count,
      double param) const = 0;

  /// Encodes `values` into a complete self-describing frame.
  [[nodiscard]] std::vector<std::byte> encode(
      std::span<const double> values) const;
};

/// True if `bytes` starts with a well-formed frame header (magic + version).
[[nodiscard]] bool is_encoded_frame(std::span<const std::byte> bytes);

/// Decodes a frame produced by Codec::encode, dispatching on the header's
/// codec kind. Throws hia::Error on truncated, corrupt, or unknown frames.
[[nodiscard]] std::vector<double> decode_frame(
    std::span<const std::byte> bytes);

/// Number of logical (pre-encode) doubles recorded in a frame header.
[[nodiscard]] size_t frame_value_count(std::span<const std::byte> bytes);

/// Factory signature used by the codec registry; `param` is the codec
/// parameter parsed from a spec string or read back from a frame header.
using CodecFactory =
    std::function<std::shared_ptr<const Codec>(double param)>;

/// Registers an additional codec under `name`/`kind`. The four built-ins
/// are pre-registered; registering a duplicate name throws.
void register_codec(const std::string& name, CodecKind kind,
                    CodecFactory factory);

/// Builds a codec from a spec string: "raw", "rle", "delta", or
/// "quantize:<abs error bound>" (e.g. "quantize:1e-6"; "quantize" alone
/// means bound 0 = lossless shuffle). Throws hia::Error on unknown specs.
[[nodiscard]] std::shared_ptr<const Codec> make_codec(const std::string& spec);

/// Spec names of every registered codec, for --help style listings.
[[nodiscard]] std::vector<std::string> codec_names();

}  // namespace hia
