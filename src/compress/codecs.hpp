// The built-in codec implementations. See codec.hpp for the frame format
// and the selection rationale per payload class.
#pragma once

#include "compress/codec.hpp"

namespace hia {

/// Identity baseline: payload is the little-endian IEEE-754 bytes of the
/// values. Every comparison in the ablation bench is against this.
class RawCodec final : public Codec {
 public:
  [[nodiscard]] CodecKind kind() const override { return CodecKind::kRaw; }
  [[nodiscard]] std::string name() const override { return "raw"; }
  [[nodiscard]] std::vector<std::byte> encode_payload(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode_payload(
      std::span<const std::byte> payload, size_t count,
      double param) const override;
};

/// Run-length coding over bit-identical values: [varint run length,
/// 8-byte value] per run. Wins on segmentation label fields and other
/// piecewise-constant payloads; lossless (runs compare the raw bit
/// patterns, so NaNs and signed zeros round-trip exactly).
class RleCodec final : public Codec {
 public:
  [[nodiscard]] CodecKind kind() const override { return CodecKind::kRle; }
  [[nodiscard]] std::string name() const override { return "rle"; }
  [[nodiscard]] std::vector<std::byte> encode_payload(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode_payload(
      std::span<const std::byte> payload, size_t count,
      double param) const override;
};

/// Zig-zag delta varint for integral payloads (merge-tree arc ids, sorted
/// vertex indices, counts). If every value is a finite integer within a
/// safe int64 range the payload is first-differences in zig-zag varint
/// form; otherwise it falls back to the raw bytes so the codec stays
/// lossless on arbitrary input.
class DeltaVarintCodec final : public Codec {
 public:
  [[nodiscard]] CodecKind kind() const override {
    return CodecKind::kDeltaVarint;
  }
  [[nodiscard]] std::string name() const override { return "delta"; }
  [[nodiscard]] std::vector<std::byte> encode_payload(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode_payload(
      std::span<const std::byte> payload, size_t count,
      double param) const override;
};

/// Fixed-point quantization under a user-set absolute error bound,
/// followed by a byte shuffle of the fixed-width quantized planes.
///
/// bound > 0: k = llround(x / (2*bound)); the reconstruction k * 2*bound
/// differs from x by at most `bound`. The k values are offset by their
/// minimum and stored in the smallest byte width that spans their range,
/// shuffled so plane b holds byte b of every value (smooth fields put all
/// the entropy in the low planes). Non-finite values and quantizer
/// overflows are carried verbatim in an exception list and restored
/// bit-exactly.
///
/// bound == 0: lossless mode — the raw IEEE doubles are byte-shuffled
/// (width 8), demonstrating the shuffle transform at ratio 1.
class QuantizeShuffleCodec final : public Codec {
 public:
  explicit QuantizeShuffleCodec(double bound);

  [[nodiscard]] CodecKind kind() const override {
    return CodecKind::kQuantizeShuffle;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double param() const override { return bound_; }
  [[nodiscard]] double error_bound() const override { return bound_; }
  [[nodiscard]] std::vector<std::byte> encode_payload(
      std::span<const double> values) const override;
  [[nodiscard]] std::vector<double> decode_payload(
      std::span<const std::byte> payload, size_t count,
      double param) const override;

 private:
  double bound_;
};

}  // namespace hia
