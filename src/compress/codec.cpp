#include "compress/codec.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "compress/codecs.hpp"
#include "util/error.hpp"

namespace hia {

namespace {

// Frame header layout (little-endian, 32 bytes):
//   u32  magic "HIAC"
//   u8   version
//   u8   codec kind
//   u16  reserved (0)
//   u64  value count
//   f64  codec param (quantize error bound)
//   u64  payload bytes
constexpr uint32_t kMagic = 0x43414948u;  // "HIAC"
constexpr uint8_t kVersion = 1;
constexpr size_t kHeaderBytes = 32;

template <typename T>
void store_le(std::byte* dst, T value) {
  std::memcpy(dst, &value, sizeof(T));
}

template <typename T>
T load_le(const std::byte* src) {
  T value;
  std::memcpy(&value, src, sizeof(T));
  return value;
}

struct Registration {
  std::string name;
  CodecKind kind;
  CodecFactory make;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<Registration>& registry() {
  static std::vector<Registration> r = {
      {"raw", CodecKind::kRaw,
       [](double) { return std::make_shared<const RawCodec>(); }},
      {"rle", CodecKind::kRle,
       [](double) { return std::make_shared<const RleCodec>(); }},
      {"delta", CodecKind::kDeltaVarint,
       [](double) { return std::make_shared<const DeltaVarintCodec>(); }},
      {"quantize", CodecKind::kQuantizeShuffle,
       [](double bound) {
         return std::make_shared<const QuantizeShuffleCodec>(bound);
       }},
  };
  return r;
}

std::shared_ptr<const Codec> make_by_kind(CodecKind kind, double param) {
  std::lock_guard lock(registry_mutex());
  for (const Registration& r : registry()) {
    if (r.kind == kind) return r.make(param);
  }
  throw Error("unknown codec kind in frame: " +
              std::to_string(static_cast<int>(kind)));
}

}  // namespace

const char* to_string(CodecKind kind) {
  switch (kind) {
    case CodecKind::kRaw: return "raw";
    case CodecKind::kRle: return "rle";
    case CodecKind::kDeltaVarint: return "delta";
    case CodecKind::kQuantizeShuffle: return "quantize";
  }
  return "?";
}

std::vector<std::byte> Codec::encode(std::span<const double> values) const {
  const std::vector<std::byte> payload = encode_payload(values);
  std::vector<std::byte> frame(kHeaderBytes + payload.size());
  store_le<uint32_t>(frame.data(), kMagic);
  frame[4] = static_cast<std::byte>(kVersion);
  frame[5] = static_cast<std::byte>(kind());
  store_le<uint16_t>(frame.data() + 6, 0);
  store_le<uint64_t>(frame.data() + 8, values.size());
  store_le<double>(frame.data() + 16, param());
  store_le<uint64_t>(frame.data() + 24, payload.size());
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  return frame;
}

bool is_encoded_frame(std::span<const std::byte> bytes) {
  return bytes.size() >= kHeaderBytes &&
         load_le<uint32_t>(bytes.data()) == kMagic &&
         static_cast<uint8_t>(bytes[4]) == kVersion;
}

size_t frame_value_count(std::span<const std::byte> bytes) {
  HIA_REQUIRE(is_encoded_frame(bytes), "not an encoded frame");
  return static_cast<size_t>(load_le<uint64_t>(bytes.data() + 8));
}

std::vector<double> decode_frame(std::span<const std::byte> bytes) {
  HIA_REQUIRE(bytes.size() >= kHeaderBytes,
              "encoded frame truncated before header end");
  HIA_REQUIRE(load_le<uint32_t>(bytes.data()) == kMagic,
              "encoded frame magic mismatch");
  HIA_REQUIRE(static_cast<uint8_t>(bytes[4]) == kVersion,
              "unsupported frame version");
  const auto kind = static_cast<CodecKind>(bytes[5]);
  const auto count = static_cast<size_t>(load_le<uint64_t>(bytes.data() + 8));
  const double param = load_le<double>(bytes.data() + 16);
  const auto payload_bytes =
      static_cast<size_t>(load_le<uint64_t>(bytes.data() + 24));
  HIA_REQUIRE(bytes.size() - kHeaderBytes == payload_bytes,
              "frame payload size mismatch");

  const auto codec = make_by_kind(kind, param);
  std::vector<double> out =
      codec->decode_payload(bytes.subspan(kHeaderBytes), count, param);
  HIA_REQUIRE(out.size() == count, "decoded value count mismatch");
  return out;
}

void register_codec(const std::string& name, CodecKind kind,
                    CodecFactory factory) {
  std::lock_guard lock(registry_mutex());
  for (const Registration& r : registry()) {
    HIA_REQUIRE(r.name != name, "codec already registered: " + name);
  }
  registry().push_back(Registration{name, kind, std::move(factory)});
}

std::shared_ptr<const Codec> make_codec(const std::string& spec) {
  std::string name = spec;
  double param = 0.0;
  if (const size_t colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);
    char* end = nullptr;
    param = std::strtod(arg.c_str(), &end);
    HIA_REQUIRE(end != nullptr && *end == '\0' && !arg.empty(),
                "bad codec parameter in spec: " + spec);
  }
  std::lock_guard lock(registry_mutex());
  for (const Registration& r : registry()) {
    if (r.name == name) return r.make(param);
  }
  throw Error("unknown codec spec: " + spec +
              " (try raw, rle, delta, quantize:<bound>)");
}

std::vector<std::string> codec_names() {
  std::lock_guard lock(registry_mutex());
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const Registration& r : registry()) out.push_back(r.name);
  return out;
}

}  // namespace hia
