#include "compress/codecs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace hia {

namespace {

uint64_t bits_of(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double double_of(uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

void append_u64(std::vector<std::byte>& out, uint64_t v) {
  const size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void append_varint(std::vector<std::byte>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

uint64_t zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Bounds-checked forward reader over a codec payload; every decoder goes
/// through it so truncation anywhere surfaces as hia::Error, not UB.
struct PayloadReader {
  std::span<const std::byte> data;
  size_t pos = 0;

  [[nodiscard]] size_t remaining() const { return data.size() - pos; }

  uint8_t read_u8() {
    HIA_REQUIRE(remaining() >= 1, "payload truncated");
    return static_cast<uint8_t>(data[pos++]);
  }

  uint64_t read_u64() {
    HIA_REQUIRE(remaining() >= sizeof(uint64_t), "payload truncated");
    uint64_t v;
    std::memcpy(&v, data.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  }

  uint64_t read_varint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      HIA_REQUIRE(remaining() >= 1, "varint truncated");
      const auto b = static_cast<uint8_t>(data[pos++]);
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        HIA_REQUIRE(shift < 63 || (b >> 1) == 0, "varint overflows 64 bits");
        return v;
      }
    }
    throw Error("varint longer than 10 bytes");
  }

  std::span<const std::byte> read_span(size_t n) {
    HIA_REQUIRE(remaining() >= n, "payload truncated");
    auto s = data.subspan(pos, n);
    pos += n;
    return s;
  }

  void expect_consumed() const {
    HIA_REQUIRE(pos == data.size(), "payload has trailing bytes");
  }
};

}  // namespace

// ---------------------------------------------------------------- Raw ----

std::vector<std::byte> RawCodec::encode_payload(
    std::span<const double> values) const {
  std::vector<std::byte> out(values.size() * sizeof(double));
  if (!out.empty()) std::memcpy(out.data(), values.data(), out.size());
  return out;
}

std::vector<double> RawCodec::decode_payload(std::span<const std::byte> payload,
                                             size_t count, double) const {
  HIA_REQUIRE(payload.size() == count * sizeof(double),
              "raw payload size mismatch");
  std::vector<double> out(count);
  if (count > 0) std::memcpy(out.data(), payload.data(), payload.size());
  return out;
}

// ---------------------------------------------------------------- Rle ----

std::vector<std::byte> RleCodec::encode_payload(
    std::span<const double> values) const {
  std::vector<std::byte> out;
  size_t i = 0;
  while (i < values.size()) {
    const uint64_t bits = bits_of(values[i]);
    size_t run = 1;
    while (i + run < values.size() && bits_of(values[i + run]) == bits) {
      ++run;
    }
    append_varint(out, run);
    append_u64(out, bits);
    i += run;
  }
  return out;
}

std::vector<double> RleCodec::decode_payload(std::span<const std::byte> payload,
                                             size_t count, double) const {
  PayloadReader in{payload};
  std::vector<double> out;
  out.reserve(count);
  while (out.size() < count) {
    const uint64_t run = in.read_varint();
    HIA_REQUIRE(run >= 1 && run <= count - out.size(),
                "rle run overflows value count");
    const double v = double_of(in.read_u64());
    out.insert(out.end(), static_cast<size_t>(run), v);
  }
  in.expect_consumed();
  return out;
}

// -------------------------------------------------------- DeltaVarint ----

namespace {
// Integral-path eligibility: finite integers far enough from the int64
// edge that first differences cannot overflow.
constexpr double kDeltaMax = 2305843009213693952.0;  // 2^61

bool delta_eligible(double v) {
  return std::isfinite(v) && v == std::floor(v) && std::fabs(v) <= kDeltaMax;
}

constexpr uint8_t kDeltaModeRaw = 0;
constexpr uint8_t kDeltaModeVarint = 1;
}  // namespace

std::vector<std::byte> DeltaVarintCodec::encode_payload(
    std::span<const double> values) const {
  bool integral = true;
  for (const double v : values) {
    if (!delta_eligible(v)) {
      integral = false;
      break;
    }
  }

  std::vector<std::byte> out;
  if (!integral) {
    out.push_back(static_cast<std::byte>(kDeltaModeRaw));
    const size_t at = out.size();
    out.resize(at + values.size() * sizeof(double));
    std::memcpy(out.data() + at, values.data(),
                values.size() * sizeof(double));
    return out;
  }

  out.push_back(static_cast<std::byte>(kDeltaModeVarint));
  int64_t prev = 0;
  for (const double v : values) {
    const auto k = static_cast<int64_t>(v);
    append_varint(out, zigzag(k - prev));
    prev = k;
  }
  return out;
}

std::vector<double> DeltaVarintCodec::decode_payload(
    std::span<const std::byte> payload, size_t count, double) const {
  PayloadReader in{payload};
  const uint8_t mode = in.read_u8();
  std::vector<double> out;
  out.reserve(count);
  if (mode == kDeltaModeRaw) {
    const auto raw = in.read_span(count * sizeof(double));
    out.resize(count);
    std::memcpy(out.data(), raw.data(), raw.size());
  } else if (mode == kDeltaModeVarint) {
    int64_t prev = 0;
    for (size_t i = 0; i < count; ++i) {
      prev += unzigzag(in.read_varint());
      out.push_back(static_cast<double>(prev));
    }
  } else {
    throw Error("delta payload has unknown mode byte");
  }
  in.expect_consumed();
  return out;
}

// ---------------------------------------------------- QuantizeShuffle ----

namespace {
constexpr uint8_t kQuantModeShuffle8 = 0;  // lossless byte-shuffle
constexpr uint8_t kQuantModeQuantized = 1;

// |x / step| above this cannot be rounded into an int64 safely.
constexpr double kQuantMax = 4.0e18;

size_t bytes_for_range(uint64_t range) {
  size_t b = 0;
  while (range != 0) {
    ++b;
    range >>= 8;
  }
  return b;
}

constexpr uint8_t kPlaneRaw = 0;
constexpr uint8_t kPlaneRle = 1;

/// Plane-major shuffle with per-plane byte-RLE: each plane b holds byte b
/// of every word, emitted either verbatim or run-length coded, whichever
/// is smaller. Smooth fields quantize to slowly-varying offsets whose
/// high-order planes are near-constant and collapse to a handful of runs;
/// noisy low-order planes stay verbatim, so a plane never inflates.
void append_planes(std::vector<std::byte>& out,
                   const std::vector<uint64_t>& words, size_t width) {
  const size_t n = words.size();
  std::vector<std::byte> plane(n);
  std::vector<std::byte> rle;
  for (size_t b = 0; b < width; ++b) {
    for (size_t i = 0; i < n; ++i) {
      plane[i] = static_cast<std::byte>((words[i] >> (8 * b)) & 0xff);
    }
    rle.clear();
    size_t i = 0;
    while (i < n && rle.size() < n) {
      const std::byte v = plane[i];
      size_t run = 1;
      while (i + run < n && plane[i + run] == v) ++run;
      append_varint(rle, run);
      rle.push_back(v);
      i += run;
    }
    if (i == n && rle.size() < n) {
      out.push_back(static_cast<std::byte>(kPlaneRle));
      append_varint(out, rle.size());
      out.insert(out.end(), rle.begin(), rle.end());
    } else {
      out.push_back(static_cast<std::byte>(kPlaneRaw));
      out.insert(out.end(), plane.begin(), plane.end());
    }
  }
}

std::vector<uint64_t> read_planes(PayloadReader& in, size_t n, size_t width) {
  std::vector<uint64_t> words(n, 0);
  std::vector<std::byte> plane(n);
  for (size_t b = 0; b < width; ++b) {
    const uint8_t flag = in.read_u8();
    if (flag == kPlaneRaw) {
      const auto s = in.read_span(n);
      std::copy(s.begin(), s.end(), plane.begin());
    } else if (flag == kPlaneRle) {
      const uint64_t len = in.read_varint();
      PayloadReader runs{in.read_span(static_cast<size_t>(len))};
      size_t i = 0;
      while (i < n) {
        const uint64_t run = runs.read_varint();
        HIA_REQUIRE(run >= 1 && run <= n - i, "plane rle run overflows");
        const auto v = static_cast<std::byte>(runs.read_u8());
        std::fill(plane.begin() + static_cast<long>(i),
                  plane.begin() + static_cast<long>(i + run), v);
        i += static_cast<size_t>(run);
      }
      runs.expect_consumed();
    } else {
      throw Error("quantize plane has unknown flag byte");
    }
    for (size_t i = 0; i < n; ++i) {
      words[i] |= static_cast<uint64_t>(plane[i]) << (8 * b);
    }
  }
  return words;
}
}  // namespace

QuantizeShuffleCodec::QuantizeShuffleCodec(double bound) : bound_(bound) {
  HIA_REQUIRE(std::isfinite(bound) && bound >= 0.0,
              "quantize error bound must be finite and >= 0");
}

std::string QuantizeShuffleCodec::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "quantize:%g", bound_);
  return buf;
}

std::vector<std::byte> QuantizeShuffleCodec::encode_payload(
    std::span<const double> values) const {
  std::vector<std::byte> out;

  if (bound_ == 0.0) {
    out.push_back(static_cast<std::byte>(kQuantModeShuffle8));
    std::vector<uint64_t> words(values.size());
    for (size_t i = 0; i < values.size(); ++i) words[i] = bits_of(values[i]);
    append_planes(out, words, sizeof(double));
    return out;
  }

  const double step = 2.0 * bound_;
  std::vector<int64_t> ks(values.size(), 0);
  // index -> raw bits of values the quantizer cannot represent within the
  // bound (non-finite, overflow, or reconstruction check failure).
  std::vector<std::pair<uint64_t, uint64_t>> exceptions;
  bool any_quantized = false;
  int64_t k_min = 0, k_max = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double x = values[i];
    bool ok = std::isfinite(x) && std::fabs(x / step) <= kQuantMax;
    int64_t k = 0;
    if (ok) {
      k = std::llround(x / step);
      // Guarantee the stated bound against floating-point rounding in the
      // reconstruction: any value the round-trip would violate is carried
      // verbatim instead.
      ok = std::fabs(static_cast<double>(k) * step - x) <= bound_;
    }
    if (!ok) {
      exceptions.emplace_back(i, bits_of(x));
      continue;
    }
    ks[i] = k;
    if (!any_quantized || k < k_min) k_min = k;
    if (!any_quantized || k > k_max) k_max = k;
    any_quantized = true;
  }
  if (!any_quantized) k_min = k_max = 0;

  out.push_back(static_cast<std::byte>(kQuantModeQuantized));
  append_varint(out, exceptions.size());
  for (const auto& [index, bits] : exceptions) {
    append_varint(out, index);
    append_u64(out, bits);
  }
  append_u64(out, static_cast<uint64_t>(k_min));

  const uint64_t range =
      static_cast<uint64_t>(k_max) - static_cast<uint64_t>(k_min);
  const size_t width = bytes_for_range(range);
  out.push_back(static_cast<std::byte>(width));

  std::vector<uint64_t> offsets(values.size(), 0);
  for (size_t i = 0; i < values.size(); ++i) {
    offsets[i] = static_cast<uint64_t>(ks[i]) - static_cast<uint64_t>(k_min);
  }
  for (const auto& ex : exceptions) {
    offsets[static_cast<size_t>(ex.first)] = 0;  // placeholder plane entries
  }
  append_planes(out, offsets, width);
  return out;
}

std::vector<double> QuantizeShuffleCodec::decode_payload(
    std::span<const std::byte> payload, size_t count, double param) const {
  PayloadReader in{payload};
  const uint8_t mode = in.read_u8();

  if (mode == kQuantModeShuffle8) {
    const auto words = read_planes(in, count, sizeof(double));
    in.expect_consumed();
    std::vector<double> out(count);
    for (size_t i = 0; i < count; ++i) out[i] = double_of(words[i]);
    return out;
  }

  HIA_REQUIRE(mode == kQuantModeQuantized,
              "quantize payload has unknown mode byte");
  HIA_REQUIRE(std::isfinite(param) && param > 0.0,
              "quantized frame requires a positive error bound param");
  const double step = 2.0 * param;

  const uint64_t n_exceptions = in.read_varint();
  HIA_REQUIRE(n_exceptions <= count, "more exceptions than values");
  std::vector<std::pair<uint64_t, uint64_t>> exceptions;
  exceptions.reserve(static_cast<size_t>(n_exceptions));
  uint64_t prev_index = 0;
  for (uint64_t e = 0; e < n_exceptions; ++e) {
    const uint64_t index = in.read_varint();
    HIA_REQUIRE(index < count, "exception index out of range");
    HIA_REQUIRE(e == 0 || index > prev_index,
                "exception indices not strictly increasing");
    prev_index = index;
    exceptions.emplace_back(index, in.read_u64());
  }

  const auto k_min = static_cast<int64_t>(in.read_u64());
  const size_t width = in.read_u8();
  HIA_REQUIRE(width <= sizeof(uint64_t), "quantize plane width out of range");
  const auto offsets = read_planes(in, count, width);
  in.expect_consumed();

  std::vector<double> out(count);
  for (size_t i = 0; i < count; ++i) {
    const auto k = static_cast<int64_t>(static_cast<uint64_t>(k_min) +
                                        offsets[i]);
    out[i] = static_cast<double>(k) * step;
  }
  for (const auto& [index, bits] : exceptions) {
    out[static_cast<size_t>(index)] = double_of(bits);
  }
  return out;
}

}  // namespace hia
