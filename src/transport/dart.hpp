// Dart — asynchronous data transport substrate modeled on DART [50], the
// RDMA one-sided communication layer the paper's staging framework builds
// on (ported to Gemini/uGNI in the paper, §IV).
//
// Services provided, mirroring the paper's list: node registration and
// unregistration, one-sided data transfer (put to expose, get to pull),
// small-message passing, and event notification/processing. Transfers pick
// the SMSG (FMA) path for small payloads and the BTE RDMA path for bulk
// data; completion raises an event at both the source and the destination.
//
// In the virtual cluster, "RDMA memory" is a registry of published buffers;
// a get() copies out of the registry and charges the modeled Gemini
// transfer time (optionally sleeping for it, so that pipelining and
// congestion behaviour are observable in real time).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/network_model.hpp"
#include "util/error.hpp"

namespace hia {

class Codec;
class FaultPlan;
class OverloadControl;

/// Handle to a published (RDMA-registered) buffer.
struct DartHandle {
  uint64_t id = 0;
  size_t bytes = 0;
  int owner_node = -1;

  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Outcome of a one-sided transfer. `bytes` is what crossed the wire
/// (the encoded frame when the region was published through a codec);
/// `raw_bytes` is the logical payload size before encoding. The modeled
/// network time is always charged on the wire bytes.
struct TransferStats {
  TransferPath path = TransferPath::kSmsg;
  size_t bytes = 0;            // wire bytes (encoded size when compressed)
  size_t raw_bytes = 0;        // logical bytes before encoding
  double modeled_seconds = 0.0;  // all attempts, including injected delay
  double decode_seconds = 0.0;  // bucket-side decode time (get_doubles)
  int concurrent_flows = 1;
  bool encoded = false;  // region was published through a codec
  int retries = 0;       // retransmits (dropped or CRC-failed frames)
  double injected_delay_s = 0.0;  // fault-injected share of modeled_seconds
};

/// Small control-plane notification delivered to a node's event queue.
struct DartEvent {
  enum class Type {
    kUser,             // application-defined notification
    kGetCompleted,     // raised at the buffer owner when a get() finishes
    kPutCompleted,     // raised at the destination after publishing
  };
  Type type = Type::kUser;
  int src_node = -1;
  uint64_t handle_id = 0;
  std::vector<std::byte> payload;  // small control messages only
};

/// Aggregate transport counters (thread-safe snapshot).
struct DartCounters {
  size_t smsg_transfers = 0;
  size_t bte_transfers = 0;
  size_t bytes_moved = 0;      // wire bytes
  size_t raw_bytes_moved = 0;  // logical bytes the wire bytes stood for
  double modeled_seconds_total = 0.0;
  double encode_seconds_total = 0.0;
  double decode_seconds_total = 0.0;
  // ---- Resilience (nonzero only under fault injection) ----
  size_t get_retries = 0;      // retransmitted frames (drop or CRC failure)
  size_t crc_failures = 0;     // corrupted frames caught by the CRC check
  size_t recovered_bytes = 0;  // payload delivered after >= 1 retransmit
};

/// The transport instance shared by all nodes of the virtual cluster.
/// All methods are thread-safe.
class Dart {
 public:
  struct Options {
    /// When true, get() sleeps for modeled_seconds * time_scale so that
    /// asynchronous pipelining shows up in wall-clock measurements.
    bool sleep_transfers = false;
    double time_scale = 1.0;
    /// Fault-injection plan (drop/delay/corrupt frames). Null = faults off;
    /// the wire path then skips CRC stamping/checking entirely.
    const FaultPlan* faults = nullptr;
    /// Overload control (unowned, must outlive the Dart instance). When
    /// set, every put acquires an admission credit (returned on release)
    /// and a kPutCompleted ack carrying the encoded PressureSignal is
    /// raised at the publishing node, so producers observe staging
    /// pressure at the publish call. Null = admission off (one branch).
    OverloadControl* overload = nullptr;
  };

  explicit Dart(NetworkModel& network) : Dart(network, Options{}) {}
  Dart(NetworkModel& network, Options options);

  // ---- Node registration ----

  /// Registers a participant; returns its node id.
  int register_node(const std::string& name);
  void unregister_node(int node);
  [[nodiscard]] int num_registered() const;
  [[nodiscard]] std::string node_name(int node) const;

  // ---- One-sided data movement ----

  /// Publishes `data` as an RDMA-readable region owned by `owner_node`.
  /// Cheap: the data stays in the owner's memory (no transfer yet).
  /// `tenant` is the owning tenant of the region: admission is charged to
  /// that tenant's credit ledger and the credit returns to it on release()
  /// (0 = the default single-campaign tenant).
  DartHandle put(int owner_node, std::vector<std::byte> data, int tenant = 0);

  /// Typed convenience: publishes a vector of doubles.
  DartHandle put_doubles(int owner_node, const std::vector<double>& data,
                         int tenant = 0);

  /// Codec-aware publish: encodes `data` into a self-describing frame and
  /// publishes the *encoded* bytes, so every subsequent get() charges the
  /// modeled network time on the compressed size. Encode time is added to
  /// the transport counters (and to *encode_seconds when given) — it is
  /// paid on the publishing rank, not on the wire.
  DartHandle put_doubles(int owner_node, const std::vector<double>& data,
                         const Codec& codec,
                         double* encode_seconds = nullptr, int tenant = 0);

  /// One-sided pull of a published region into `dest_node`'s memory.
  /// Charges the modeled network cost and raises kGetCompleted at the
  /// owner. The region stays published until release(). Returns the wire
  /// bytes verbatim (still encoded for codec-published regions).
  ///
  /// Under fault injection, dropped or CRC-corrupted frames are
  /// retransmitted transparently (each attempt charges wire time); after
  /// Options::faults->retry().max_frame_attempts the pull throws
  /// hia::Error, which the staging layer turns into a task retry.
  std::vector<std::byte> get(int dest_node, const DartHandle& handle,
                             TransferStats* stats = nullptr);

  /// Typed pull; transparently decodes codec-published regions, charging
  /// the decode time to stats->decode_seconds and the counters.
  std::vector<double> get_doubles(int dest_node, const DartHandle& handle,
                                  TransferStats* stats = nullptr);

  /// Frees a published region.
  void release(const DartHandle& handle);

  /// Number of currently published regions (for leak checks).
  [[nodiscard]] size_t num_published() const;
  /// Total bytes currently held in published regions.
  [[nodiscard]] size_t published_bytes() const;

  // ---- Messaging / events ----

  /// Queues a user event on `dest_node`'s event queue.
  void notify(int dest_node, DartEvent event);

  /// Non-blocking poll of a node's event queue.
  std::optional<DartEvent> poll(int node);

  /// Blocking wait for the next event on a node's queue.
  DartEvent wait_event(int node);

  [[nodiscard]] DartCounters counters() const;
  void reset_counters();

  [[nodiscard]] NetworkModel& network() { return network_; }

 private:
  struct Region {
    int owner_node;
    std::vector<std::byte> data;  // wire bytes (encoded frame if `encoded`)
    size_t raw_bytes = 0;         // logical payload size before encoding
    bool encoded = false;
    uint32_t crc = 0;         // frame checksum (stamped only when
    bool crc_stamped = false;  // frame faults are enabled)
    bool admitted = false;     // holds an admission credit until release()
    int tenant = 0;            // whose ledger the credit charge sits on
  };

  struct NodeState {
    std::string name;
    bool registered = false;
    std::deque<DartEvent> events;
  };

  void push_event(int node, DartEvent event);  // requires mutex_ held

  NetworkModel& network_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable event_cv_;
  std::map<int, NodeState> nodes_;
  std::map<uint64_t, Region> regions_;
  int next_node_ = 0;
  uint64_t next_handle_ = 1;
  DartCounters counters_;
};

}  // namespace hia
