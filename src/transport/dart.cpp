#include "transport/dart.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "compress/codec.hpp"
#include "obs/counters.hpp"
#include "obs/events.hpp"
#include "obs/histogram.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"
#include "runtime/overload.hpp"
#include "util/crc32.hpp"
#include "util/stopwatch.hpp"

namespace hia {

namespace {
/// CRC stamping happens only under an active frame-fault plan, so the
/// fault-free wire path stays byte-identical to the baseline.
bool frame_faults_on(const Dart::Options& options) {
  return options.faults != nullptr && options.faults->frame_faults_enabled();
}
}  // namespace

Dart::Dart(NetworkModel& network, Options options)
    : network_(network), options_(options) {
  // In-flight wire bytes and concurrent flows are the two transport gauges
  // the sampler tracks (Table II: contention is what degrades BTE).
  obs::register_counter_gauge("dart_inflight_wire_bytes");
  obs::register_counter_gauge("net_active_flows");
}

int Dart::register_node(const std::string& name) {
  std::lock_guard lock(mutex_);
  const int id = next_node_++;
  nodes_[id] = NodeState{name, true, {}};
  return id;
}

void Dart::unregister_node(int node) {
  std::lock_guard lock(mutex_);
  auto it = nodes_.find(node);
  HIA_REQUIRE(it != nodes_.end() && it->second.registered,
              "unregister of unknown node");
  it->second.registered = false;
}

int Dart::num_registered() const {
  std::lock_guard lock(mutex_);
  int count = 0;
  for (const auto& [id, st] : nodes_) {
    if (st.registered) ++count;
  }
  return count;
}

std::string Dart::node_name(int node) const {
  std::lock_guard lock(mutex_);
  auto it = nodes_.find(node);
  HIA_REQUIRE(it != nodes_.end(), "unknown node");
  return it->second.name;
}

DartHandle Dart::put(int owner_node, std::vector<std::byte> data,
                     int tenant) {
  HIA_TRACE_SPAN_ARGS("dart", "put",
                      {.bytes = static_cast<long long>(data.size())});
  static obs::Histogram& put_bytes = obs::histogram("dart_put_bytes");
  put_bytes.record(static_cast<double>(data.size()));
  // Admission happens before the transport lock: the gate may block (up to
  // admit_max_wait_s) and must never do so while holding mutex_.
  PressureSignal pressure;
  const bool admitted = options_.overload != nullptr;
  if (admitted) pressure = options_.overload->admit(data.size(), tenant);
  uint64_t id = 0;
  size_t bytes = 0;
  {
    std::lock_guard lock(mutex_);
    auto it = nodes_.find(owner_node);
    HIA_REQUIRE(it != nodes_.end() && it->second.registered,
                "put from unregistered node");
    id = next_handle_++;
    bytes = data.size();
    Region region{owner_node, std::move(data), bytes, false};
    region.admitted = admitted;
    region.tenant = tenant;
    if (frame_faults_on(options_)) {
      region.crc = crc32(region.data.data(), region.data.size());
      region.crc_stamped = true;
    }
    regions_.emplace(id, std::move(region));
    if (admitted) {
      // The put ack (uGNI local completion analogue) carries the pressure
      // snapshot back to the producer, closing the flow-control loop.
      DartEvent ev;
      ev.type = DartEvent::Type::kPutCompleted;
      ev.src_node = owner_node;
      ev.handle_id = id;
      ev.payload = encode_pressure(pressure);
      push_event(owner_node, std::move(ev));
    }
  }
  if (admitted) event_cv_.notify_all();
  // Stamped on the campaign's task clock (via the installed obs virtual
  // clock) so put/get records land on the same timeline the attribution
  // layer rebuilds; -1 when no service clock is installed.
  obs::record_event(obs::EventKind::kPut, tenant, -1,
                    static_cast<int64_t>(id), static_cast<int64_t>(bytes),
                    obs::virtual_now());
  if (tenant > 0) {
    obs::histogram("dart_put_bytes", {.tenant = tenant})
        .record(static_cast<double>(bytes));
  }
  return DartHandle{id, bytes, owner_node};
}

DartHandle Dart::put_doubles(int owner_node, const std::vector<double>& data,
                             int tenant) {
  std::vector<std::byte> bytes(data.size() * sizeof(double));
  std::memcpy(bytes.data(), data.data(), bytes.size());
  return put(owner_node, std::move(bytes), tenant);
}

DartHandle Dart::put_doubles(int owner_node, const std::vector<double>& data,
                             const Codec& codec, double* encode_seconds,
                             int tenant) {
  static obs::Counter& saved = obs::counter("compress_bytes_saved");
  const size_t raw = data.size() * sizeof(double);
  HIA_TRACE_SPAN_ARGS("dart", "put",
                      {.bytes = static_cast<long long>(raw)});
  Stopwatch watch;
  std::vector<std::byte> frame;
  {
    HIA_TRACE_SPAN("dart", "codec.encode");
    frame = codec.encode(data);
  }
  const double seconds = watch.seconds();
  if (encode_seconds != nullptr) *encode_seconds = seconds;
  static obs::Histogram& put_bytes = obs::histogram("dart_put_bytes");
  static obs::Histogram& encode_h = obs::histogram("dart_codec_encode_s");
  put_bytes.record(static_cast<double>(raw));
  encode_h.record(seconds);
  if (frame.size() < raw) {
    saved.add(static_cast<int64_t>(raw - frame.size()));
  }

  // Admission charges the *wire* bytes (the encoded frame is what the
  // staging area must hold); see put() for the lock-ordering rationale.
  PressureSignal pressure;
  const bool admitted = options_.overload != nullptr;
  if (admitted) pressure = options_.overload->admit(frame.size(), tenant);
  uint64_t id = 0;
  size_t wire = 0;
  {
    std::lock_guard lock(mutex_);
    auto it = nodes_.find(owner_node);
    HIA_REQUIRE(it != nodes_.end() && it->second.registered,
                "put from unregistered node");
    counters_.encode_seconds_total += seconds;
    id = next_handle_++;
    wire = frame.size();
    Region region{owner_node, std::move(frame), data.size() * sizeof(double),
                  true};
    region.admitted = admitted;
    region.tenant = tenant;
    if (frame_faults_on(options_)) {
      region.crc = crc32(region.data.data(), region.data.size());
      region.crc_stamped = true;
    }
    regions_.emplace(id, std::move(region));
    if (admitted) {
      DartEvent ev;
      ev.type = DartEvent::Type::kPutCompleted;
      ev.src_node = owner_node;
      ev.handle_id = id;
      ev.payload = encode_pressure(pressure);
      push_event(owner_node, std::move(ev));
    }
  }
  if (admitted) event_cv_.notify_all();
  obs::record_event(obs::EventKind::kPut, tenant, -1,
                    static_cast<int64_t>(id), static_cast<int64_t>(wire),
                    obs::virtual_now());
  if (tenant > 0) {
    obs::histogram("dart_put_bytes", {.tenant = tenant})
        .record(static_cast<double>(raw));
  }
  return DartHandle{id, wire, owner_node};
}

std::vector<std::byte> Dart::get(int dest_node, const DartHandle& handle,
                                 TransferStats* stats) {
  HIA_REQUIRE(handle.valid(), "get with invalid handle");
  HIA_TRACE_SPAN("dart", "get");
  static obs::Counter& inflight = obs::counter("dart_inflight_wire_bytes");
  static obs::Counter& flows_gauge = obs::counter("net_active_flows");
  static obs::Histogram& wire_bytes = obs::histogram("dart_get_wire_bytes");
  static obs::Histogram& smsg_s = obs::histogram("net_smsg_modeled_s");
  static obs::Histogram& bte_s = obs::histogram("net_bte_modeled_s");

  const FaultPlan* faults =
      frame_faults_on(options_) ? options_.faults : nullptr;
  const int max_attempts =
      faults != nullptr ? faults->retry().max_frame_attempts : 1;

  std::vector<std::byte> data;
  int owner = -1;
  int tenant = -1;
  size_t raw_bytes = 0;
  bool encoded = false;
  TransferPath path = TransferPath::kSmsg;
  int flows = 1;
  double total_seconds = 0.0;
  double injected_delay_s = 0.0;
  int attempt = 0;

  for (;;) {
    ++attempt;
    {
      std::lock_guard lock(mutex_);
      auto nit = nodes_.find(dest_node);
      HIA_REQUIRE(nit != nodes_.end() && nit->second.registered,
                  "get from unregistered node");
      auto rit = regions_.find(handle.id);
      HIA_REQUIRE(rit != regions_.end(), "get of unknown/released region");
      data = rit->second.data;  // RDMA read: copy out, region stays published
      owner = rit->second.owner_node;
      tenant = rit->second.tenant;
      raw_bytes = rit->second.raw_bytes;
      encoded = rit->second.encoded;
    }

    // The fault layer's verdict for this transfer attempt (deterministic
    // per (handle, attempt); see FaultPlan).
    FaultPlan::FrameFault fault;
    if (faults != nullptr) fault = faults->frame_fault(handle.id, attempt);

    // Model the wire cost outside the lock so concurrent gets overlap.
    // Every attempt — including ones that end up dropped or corrupted —
    // charges full wire time: the frame did cross the network.
    NetworkModel::FlowGuard flow(network_);
    flows = network_.active_flows();
    const double seconds =
        network_.transfer_seconds(data.size(), flows) + fault.delay_s;
    path = network_.select_path(data.size());
    wire_bytes.record(static_cast<double>(data.size()));
    (path == TransferPath::kSmsg ? smsg_s : bte_s).record(seconds);
    inflight.add(static_cast<int64_t>(data.size()));
    flows_gauge.add(1);
    {
      // The SMSG-vs-BTE wire phase: wall span when transfers sleep, plus the
      // modeled Gemini seconds on the virtual clock either way.
      obs::Span wire("net", path == TransferPath::kSmsg ? "smsg" : "bte",
                     {.bytes = static_cast<long long>(data.size()),
                      .vtime = seconds});
      if (options_.sleep_transfers) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            seconds * options_.time_scale));
      }
    }
    flows_gauge.add(-1);
    inflight.add(-static_cast<int64_t>(data.size()));
    total_seconds += seconds;
    injected_delay_s += fault.delay_s;

    if (faults != nullptr) {
      bool damaged = false;
      if (fault.drop) {
        obs::instant("fault", "frame_drop",
                     {.bytes = static_cast<long long>(data.size())});
        obs::record_event(
            obs::EventKind::kFaultVerdict, tenant, -1,
            static_cast<int64_t>(obs::EventFaultSite::kFrameDrop),
            static_cast<int64_t>(data.size()));
        damaged = true;
      } else {
        if (fault.corrupt && !data.empty()) {
          data[fault.corrupt_byte % data.size()] ^= std::byte{0x40};
        }
        // Transport-level integrity check: re-derive the frame CRC and
        // compare with the checksum stamped at put().
        uint32_t expected = 0;
        bool stamped = false;
        {
          std::lock_guard lock(mutex_);
          auto rit = regions_.find(handle.id);
          HIA_REQUIRE(rit != regions_.end(), "region released mid-get");
          expected = rit->second.crc;
          stamped = rit->second.crc_stamped;
        }
        if (stamped && crc32(data.data(), data.size()) != expected) {
          static obs::Counter& crc_failures = obs::counter("dart_crc_failures");
          crc_failures.add(1);
          obs::instant("fault", "frame_crc_fail",
                       {.bytes = static_cast<long long>(data.size())});
          obs::record_event(
              obs::EventKind::kFaultVerdict, tenant, -1,
              static_cast<int64_t>(obs::EventFaultSite::kFrameCrc),
              static_cast<int64_t>(data.size()));
          std::lock_guard lock(mutex_);
          ++counters_.crc_failures;
          damaged = true;
        }
      }
      if (damaged) {
        static obs::Counter& retries_c = obs::counter("dart_get_retries");
        HIA_REQUIRE(attempt < max_attempts,
                    "dart: frame lost/corrupted on every one of " +
                        std::to_string(max_attempts) +
                        " attempts (handle " + std::to_string(handle.id) +
                        ")");
        retries_c.add(1);
        std::lock_guard lock(mutex_);
        ++counters_.get_retries;
        continue;
      }
    }
    break;  // clean frame delivered
  }

  if (stats != nullptr) {
    TransferStats s;
    s.path = path;
    s.bytes = data.size();
    s.raw_bytes = raw_bytes;
    s.modeled_seconds = total_seconds;
    s.concurrent_flows = flows;
    s.encoded = encoded;
    s.retries = attempt - 1;
    s.injected_delay_s = injected_delay_s;
    *stats = s;
  }

  {
    std::lock_guard lock(mutex_);
    if (path == TransferPath::kSmsg) {
      ++counters_.smsg_transfers;
    } else {
      ++counters_.bte_transfers;
    }
    counters_.bytes_moved += data.size();
    counters_.raw_bytes_moved += raw_bytes;
    counters_.modeled_seconds_total += total_seconds;  // incl. wasted attempts
    if (attempt > 1) {
      static obs::Counter& recovered = obs::counter("dart_recovered_bytes");
      recovered.add(static_cast<int64_t>(data.size()));
      counters_.recovered_bytes += data.size();
    }

    // Completion events at both ends (uGNI semantics). The destination's
    // event is implicit in the synchronous return; the owner learns its
    // buffer was consumed.
    DartEvent ev;
    ev.type = DartEvent::Type::kGetCompleted;
    ev.src_node = dest_node;
    ev.handle_id = handle.id;
    push_event(owner, std::move(ev));
  }
  event_cv_.notify_all();
  obs::record_event(obs::EventKind::kGet, tenant, -1,
                    static_cast<int64_t>(handle.id),
                    static_cast<int64_t>(data.size()), obs::virtual_now());
  if (tenant > 0) {
    obs::histogram("dart_get_wire_bytes", {.tenant = tenant})
        .record(static_cast<double>(data.size()));
  }
  return data;
}

std::vector<double> Dart::get_doubles(int dest_node, const DartHandle& handle,
                                      TransferStats* stats) {
  TransferStats local;
  auto bytes = get(dest_node, handle, &local);

  std::vector<double> out;
  if (local.encoded) {
    Stopwatch watch;
    {
      HIA_TRACE_SPAN_ARGS("dart", "codec.decode",
                          {.bytes = static_cast<long long>(bytes.size())});
      out = decode_frame(bytes);
    }
    local.decode_seconds = watch.seconds();
    static obs::Histogram& decode_h = obs::histogram("dart_codec_decode_s");
    decode_h.record(local.decode_seconds);
    std::lock_guard lock(mutex_);
    counters_.decode_seconds_total += local.decode_seconds;
  } else {
    HIA_REQUIRE(bytes.size() % sizeof(double) == 0,
                "region is not a whole number of doubles");
    out.resize(bytes.size() / sizeof(double));
    std::memcpy(out.data(), bytes.data(), bytes.size());
  }
  if (stats != nullptr) *stats = local;
  return out;
}

void Dart::release(const DartHandle& handle) {
  bool admitted = false;
  int tenant = 0;
  {
    std::lock_guard lock(mutex_);
    auto it = regions_.find(handle.id);
    HIA_REQUIRE(it != regions_.end(), "release of unknown region");
    admitted = it->second.admitted;
    tenant = it->second.tenant;
    regions_.erase(it);
  }
  // Credit return outside the transport lock (innermost-mutex ordering).
  if (admitted && options_.overload != nullptr) {
    options_.overload->release_credit(tenant);
  }
}

size_t Dart::num_published() const {
  std::lock_guard lock(mutex_);
  return regions_.size();
}

size_t Dart::published_bytes() const {
  std::lock_guard lock(mutex_);
  size_t total = 0;
  for (const auto& [id, region] : regions_) total += region.data.size();
  return total;
}

void Dart::push_event(int node, DartEvent event) {
  auto it = nodes_.find(node);
  if (it == nodes_.end() || !it->second.registered) return;  // best effort
  it->second.events.push_back(std::move(event));
}

void Dart::notify(int dest_node, DartEvent event) {
  {
    std::lock_guard lock(mutex_);
    auto it = nodes_.find(dest_node);
    HIA_REQUIRE(it != nodes_.end() && it->second.registered,
                "notify of unregistered node");
    it->second.events.push_back(std::move(event));
  }
  event_cv_.notify_all();
}

std::optional<DartEvent> Dart::poll(int node) {
  std::lock_guard lock(mutex_);
  auto it = nodes_.find(node);
  HIA_REQUIRE(it != nodes_.end(), "poll of unknown node");
  if (it->second.events.empty()) return std::nullopt;
  DartEvent ev = std::move(it->second.events.front());
  it->second.events.pop_front();
  return ev;
}

DartEvent Dart::wait_event(int node) {
  std::unique_lock lock(mutex_);
  auto it = nodes_.find(node);
  HIA_REQUIRE(it != nodes_.end(), "wait_event of unknown node");
  event_cv_.wait(lock, [&] { return !it->second.events.empty(); });
  DartEvent ev = std::move(it->second.events.front());
  it->second.events.pop_front();
  return ev;
}

DartCounters Dart::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

void Dart::reset_counters() {
  std::lock_guard lock(mutex_);
  counters_ = DartCounters{};
}

}  // namespace hia
