#include "sim/derived_fields.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hia {

namespace {

/// Central difference along `axis` with one-sided fallback at the domain
/// boundary (the field's storage box bounds what is addressable).
double derivative(const GlobalGrid& grid, const Field& f, int64_t i,
                  int64_t j, int64_t k, int axis) {
  int64_t lo[3] = {i, j, k};
  int64_t hi[3] = {i, j, k};
  const Box3& st = f.storage();
  hi[axis] = std::min(hi[axis] + 1, st.hi[axis] - 1);
  lo[axis] = std::max(lo[axis] - 1, st.lo[axis]);
  const double span =
      static_cast<double>(hi[axis] - lo[axis]) * grid.spacing(axis);
  if (span == 0.0) return 0.0;
  return (f.at(hi[0], hi[1], hi[2]) - f.at(lo[0], lo[1], lo[2])) / span;
}

}  // namespace

Field gradient_magnitude(const GlobalGrid& grid, const Field& f) {
  Field out("grad_" + f.name(), f.owned());
  const Box3& box = f.owned();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
        const double gx = derivative(grid, f, i, j, k, 0);
        const double gy = derivative(grid, f, i, j, k, 1);
        const double gz = derivative(grid, f, i, j, k, 2);
        out.at(i, j, k) = std::sqrt(gx * gx + gy * gy + gz * gz);
      }
    }
  }
  return out;
}

Field vorticity_magnitude(const GlobalGrid& grid, const Field& u,
                          const Field& v, const Field& w) {
  HIA_REQUIRE(u.owned() == v.owned() && v.owned() == w.owned(),
              "velocity components must share the owned box");
  Field out("vorticity", u.owned());
  const Box3& box = u.owned();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
        const double wy = derivative(grid, w, i, j, k, 1);
        const double vz = derivative(grid, v, i, j, k, 2);
        const double uz = derivative(grid, u, i, j, k, 2);
        const double wx = derivative(grid, w, i, j, k, 0);
        const double vx = derivative(grid, v, i, j, k, 0);
        const double uy = derivative(grid, u, i, j, k, 1);
        const double ox = wy - vz;
        const double oy = uz - wx;
        const double oz = vx - uy;
        out.at(i, j, k) = std::sqrt(ox * ox + oy * oy + oz * oz);
      }
    }
  }
  return out;
}

Field mixture_fraction(const Field& y_h2, const Field& y_h2o) {
  HIA_REQUIRE(y_h2.owned() == y_h2o.owned(),
              "species fields must share the owned box");
  Field out("Z", y_h2.owned());
  const Box3& box = y_h2.owned();
  constexpr double kFuelH2 = 0.9;  // fuel-stream H2 mass fraction
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
        const double zh =
            y_h2.at(i, j, k) + (2.0 / 18.0) * y_h2o.at(i, j, k);
        out.at(i, j, k) = std::clamp(zh / kFuelH2, 0.0, 1.0);
      }
    }
  }
  return out;
}

Field scalar_dissipation(const GlobalGrid& grid, const Field& z,
                         double diffusivity) {
  HIA_REQUIRE(diffusivity >= 0.0, "diffusivity must be non-negative");
  Field out("chi", z.owned());
  const Field grad = gradient_magnitude(grid, z);
  const Box3& box = z.owned();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
        const double g = grad.at(i, j, k);
        out.at(i, j, k) = 2.0 * diffusivity * g * g;
      }
    }
  }
  return out;
}

}  // namespace hia
