#include "sim/analytic_fields.hpp"

#include <cmath>
#include <functional>

#include "util/rng.hpp"

namespace hia {

double GaussianMixture::value(const Vec3& x) const {
  double v = 0.0;
  for (const GaussianBump& b : bumps_) {
    const Vec3 d = x - b.center;
    v += b.amplitude * std::exp(-d.dot(d) / (2.0 * b.sigma * b.sigma));
  }
  return v;
}

GaussianMixture GaussianMixture::well_separated(int count, double sigma,
                                                uint64_t seed) {
  // Lay bumps on an n^3 lattice with jitter bounded so pairwise separation
  // stays above 4 sigma (assuming the lattice pitch allows it).
  int n = 1;
  while (n * n * n < count) ++n;
  const double pitch = 1.0 / static_cast<double>(n + 1);
  Xoshiro256 rng(seed);
  std::vector<GaussianBump> bumps;
  bumps.reserve(static_cast<size_t>(count));
  int placed = 0;
  for (int k = 1; k <= n && placed < count; ++k) {
    for (int j = 1; j <= n && placed < count; ++j) {
      for (int i = 1; i <= n && placed < count; ++i, ++placed) {
        GaussianBump b;
        const double jitter = 0.15 * pitch;
        b.center = Vec3{pitch * i + rng.uniform(-jitter, jitter),
                        pitch * j + rng.uniform(-jitter, jitter),
                        pitch * k + rng.uniform(-jitter, jitter)};
        b.sigma = sigma;
        b.amplitude = rng.uniform(0.5, 1.5);
        bumps.push_back(b);
      }
    }
  }
  return GaussianMixture(std::move(bumps));
}

void fill_from_function(Field& field, const GlobalGrid& grid,
                        const std::function<double(const Vec3&)>& fn) {
  const Box3& box = field.storage();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
        field.at(i, j, k) =
            fn(Vec3{grid.coord(0, i), grid.coord(1, j), grid.coord(2, k)});
      }
    }
  }
}

void fill_gaussian_mixture(Field& field, const GlobalGrid& grid,
                           const GaussianMixture& mix) {
  fill_from_function(field, grid,
                     [&mix](const Vec3& x) { return mix.value(x); });
}

void fill_sine_product(Field& field, const GlobalGrid& grid, double a,
                       double b, double c) {
  fill_from_function(field, grid, [=](const Vec3& x) {
    return std::sin(a * x.x) * std::sin(b * x.y) * std::sin(c * x.z);
  });
}

void fill_ramp_x(Field& field, const GlobalGrid& grid) {
  fill_from_function(field, grid, [](const Vec3& x) { return x.x; });
}

void fill_noise(Field& field, uint64_t seed) {
  const Box3& box = field.storage();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
        // Hash global indices so the value is decomposition-invariant.
        SplitMix64 h(seed ^ (static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL) ^
                     (static_cast<uint64_t>(j) << 21) ^
                     (static_cast<uint64_t>(k) << 42));
        field.at(i, j, k) =
            static_cast<double>(h.next() >> 11) * 0x1.0p-53;
      }
    }
  }
}

}  // namespace hia
