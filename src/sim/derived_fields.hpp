// Derived combustion diagnostics computed from the solution variables:
//
//   * gradient magnitude |∇f| — general-purpose edge/front detector;
//   * vorticity magnitude |∇×u| — the quantity behind the paper's Fig. 1
//     "subtle vortical structures identified in a large and complex flow
//     field of turbulent combustion";
//   * mixture fraction Z — the conserved scalar tracking fuel-stream
//     origin (Bilger-style, specialized to the H2/air system);
//   * scalar dissipation rate χ = 2 D |∇Z|² — the diffusive-mixing rate
//     whose balance against kinetics governs ignition-kernel survival
//     (the paper's §V flame-stabilization narrative).
//
// All stencil operators use central differences on interior points and
// one-sided differences at the domain boundary; fields must carry one
// ghost layer with current neighbor values (exchange_halos).
#pragma once

#include "sim/field.hpp"
#include "sim/grid.hpp"

namespace hia {

/// |∇f| over the owned region of `f` (ghost layer required and current).
Field gradient_magnitude(const GlobalGrid& grid, const Field& f);

/// |∇×(u,v,w)| over the shared owned region.
Field vorticity_magnitude(const GlobalGrid& grid, const Field& u,
                          const Field& v, const Field& w);

/// Mixture fraction from the element mass fraction of hydrogen:
///   Z = Z_H / Z_H,fuel, with Z_H = Y_H2 + (2/18) Y_H2O (+ minor species
/// ignored), fuel stream Y_H2 = 0.9. Clamped to [0, 1]. No ghosts needed.
Field mixture_fraction(const Field& y_h2, const Field& y_h2o);

/// χ = 2 D |∇Z|². `z` must carry one current ghost layer.
Field scalar_dissipation(const GlobalGrid& grid, const Field& z,
                         double diffusivity);

}  // namespace hia
