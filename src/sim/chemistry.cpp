#include "sim/chemistry.hpp"

#include <algorithm>
#include <cmath>

namespace hia {

double Chemistry::rate(double temperature, double y_h2, double y_o2) const {
  const double t = std::max(temperature, 1e-6);
  const double h2 = std::clamp(y_h2, 0.0, 1.0);
  const double o2 = std::clamp(y_o2, 0.0, 1.0);
  return params_.pre_exponential * h2 * h2 * o2 *
         std::exp(-params_.activation_temp / t);
}

ChemistrySources Chemistry::sources(double temperature, double y_h2,
                                    double y_o2) const {
  const double w = rate(temperature, y_h2, y_o2);
  // 2 H2 + O2 -> 2 H2O, mass-weighted stoichiometry for Y-space:
  // per unit progress, consume 1/9 H2 + 8/9 O2, produce 1 H2O (H2O molar
  // mass 18: 2 from H2, 16 from O2).
  ChemistrySources s;
  // Temperature source scaled so heat_release is the *adiabatic rise*:
  // dY_H2/dt = -w/9 and Y_H2 <= 0.9 initially, so the progress integral
  // of w is bounded by 8.1 and the total temperature rise by heat_release.
  s.temperature = params_.heat_release * w / 8.1;
  s.h2 = -w / 9.0;
  s.o2 = -8.0 * w / 9.0;
  s.h2o = w;
  return s;
}

std::array<double, 5> Chemistry::minor_species(double c) const {
  const double cc = std::clamp(c, 0.0, 1.0);
  // Radical pool peaks mid-reaction (c ~ 0.5), products of c(1-c) shape;
  // magnitudes follow typical H2/air flame orderings (OH > H > O > HO2 >
  // H2O2).
  const double pool = 4.0 * cc * (1.0 - cc);
  return {0.008 * pool,   // H
          0.004 * pool,   // O
          0.012 * pool,   // OH
          0.002 * pool * (1.0 - cc),   // HO2 (low-T side)
          0.0008 * pool * (1.0 - cc)}; // H2O2
}

std::vector<IgnitionKernel> KernelSeeder::kernels_for_step(long step) const {
  // Bernoulli splitting of a Poisson process; the stream is keyed by
  // (seed, step) so draws are independent of simulation history.
  Xoshiro256 rng(params_.seed ^ 0x9e3779b97f4a7c15ULL,
                 static_cast<uint64_t>(step) * 2 + 11);
  std::vector<IgnitionKernel> out;
  double expected = params_.kernel_rate;
  while (expected > 0.0) {
    const double p = std::min(expected, 1.0);
    if (rng.uniform() < p) {
      IgnitionKernel k;
      k.cx = rng.uniform();
      k.cy = rng.uniform();
      k.cz = rng.uniform();
      k.radius = params_.kernel_radius * rng.uniform(0.7, 1.4);
      k.amplitude = params_.kernel_amplitude * rng.uniform(0.6, 1.2);
      k.step_created = step;
      out.push_back(k);
    }
    expected -= 1.0;
  }
  return out;
}

}  // namespace hia
