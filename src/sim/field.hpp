// A scalar field on a local block, optionally with ghost layers.
//
// Storage covers the block grown by `ghost` cells (clamped to the domain);
// interior indexing uses *global* coordinates so analysis code never
// translates indices by hand.
#pragma once

#include <algorithm>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/box.hpp"

namespace hia {

class Field {
 public:
  /// A field over `owned`, with `ghost` extra layers clamped to `domain`.
  Field(std::string name, const Box3& owned, const Box3& domain,
        int ghost = 0)
      : name_(std::move(name)),
        owned_(owned),
        storage_(owned.grown(ghost, domain)),
        data_(static_cast<size_t>(storage_.num_cells()), 0.0) {}

  /// Ghost-free field over `owned`.
  Field(std::string name, const Box3& owned)
      : Field(std::move(name), owned, owned, 0) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Box3& owned() const { return owned_; }
  /// The storage box (owned + ghosts).
  [[nodiscard]] const Box3& storage() const { return storage_; }

  [[nodiscard]] double& at(int64_t i, int64_t j, int64_t k) {
    return data_[storage_.offset(i, j, k)];
  }
  [[nodiscard]] double at(int64_t i, int64_t j, int64_t k) const {
    return data_[storage_.offset(i, j, k)];
  }

  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] std::span<const double> data() const { return data_; }

  /// Copies the owned region (no ghosts) into a packed x-fastest buffer.
  [[nodiscard]] std::vector<double> pack_owned() const {
    std::vector<double> out;
    out.reserve(static_cast<size_t>(owned_.num_cells()));
    for (int64_t k = owned_.lo[2]; k < owned_.hi[2]; ++k)
      for (int64_t j = owned_.lo[1]; j < owned_.hi[1]; ++j)
        for (int64_t i = owned_.lo[0]; i < owned_.hi[0]; ++i)
          out.push_back(at(i, j, k));
    return out;
  }

  /// Copies an arbitrary sub-box (must lie in storage) into a packed buffer.
  [[nodiscard]] std::vector<double> pack(const Box3& box) const {
    HIA_REQUIRE(storage_.contains(box), "pack box outside field storage");
    std::vector<double> out;
    out.reserve(static_cast<size_t>(box.num_cells()));
    for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
      for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
        for (int64_t i = box.lo[0]; i < box.hi[0]; ++i)
          out.push_back(at(i, j, k));
    return out;
  }

  /// Fills a sub-box (must lie in storage) from a packed buffer.
  void unpack(const Box3& box, std::span<const double> values) {
    HIA_REQUIRE(storage_.contains(box), "unpack box outside field storage");
    HIA_REQUIRE(static_cast<int64_t>(values.size()) == box.num_cells(),
                "unpack buffer size mismatch");
    size_t idx = 0;
    for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
      for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
        for (int64_t i = box.lo[0]; i < box.hi[0]; ++i)
          at(i, j, k) = values[idx++];
  }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::string name_;
  Box3 owned_;
  Box3 storage_;
  std::vector<double> data_;
};

}  // namespace hia
