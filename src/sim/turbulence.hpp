// Synthetic turbulence: a divergence-free velocity field assembled from
// random Fourier modes with a prescribed energy spectrum.
//
// The paper's S3D case is a turbulent lifted H2 jet; what the analyses need
// from the flow is multi-scale structure that advects and strains the
// scalar fields so ignition kernels appear, move, and dissipate on short
// timescales. A Kraichnan-style synthetic field provides exactly that
// structure deterministically and cheaply.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace hia {

struct TurbulenceParams {
  int num_modes = 48;          // random Fourier modes
  double k_min = 2.0;          // lowest wavenumber (units of 2*pi/L)
  double k_max = 16.0;         // highest wavenumber
  double spectrum_slope = -5.0 / 3.0;  // Kolmogorov inertial range
  double rms_velocity = 1.0;   // target RMS of each component
  double time_scale = 0.5;     // eddy-turnover time for phase drift
  uint64_t seed = 42;
};

/// Deterministic synthetic turbulent velocity field u(x, t).
///
/// Each mode is u_m * cos(k_m . x + w_m t + phi_m) with u_m orthogonal to
/// k_m (divergence-free by construction) and |u_m| following the prescribed
/// spectrum. Evaluation is independent per point: ranks evaluate their own
/// sub-domains with no communication.
class SyntheticTurbulence {
 public:
  explicit SyntheticTurbulence(const TurbulenceParams& params = {});

  /// Velocity at physical position x and time t.
  [[nodiscard]] Vec3 velocity(const Vec3& x, double t) const;

  [[nodiscard]] const TurbulenceParams& params() const { return params_; }

 private:
  struct Mode {
    Vec3 k;          // wave vector
    Vec3 amplitude;  // orthogonal to k
    double omega;    // temporal frequency
    double phase;
  };

  TurbulenceParams params_;
  std::vector<Mode> modes_;
};

}  // namespace hia
