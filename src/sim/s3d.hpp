// MiniS3D: a structured-grid advection–diffusion–reaction proxy for the S3D
// turbulent-combustion DNS code.
//
// What the hybrid-analytics framework needs from "the simulation" is:
//   * a regular 3-D domain decomposition with per-rank sub-domains,
//   * 14 double-precision solution variables (Table I accounting),
//   * combustion-like field structure: a lifted fuel jet in which ignition
//     kernels appear intermittently, advect with the turbulence, and either
//     stabilize or dissipate within ~10 steps (the paper's motivating
//     intermittent phenomenon, Fig. 1),
//   * a per-step cost that in-situ analysis time can be compared against.
//
// MiniS3D provides all four with a first-order upwind advection scheme, a
// 7-point Laplacian diffusion term, single-step Arrhenius chemistry, and a
// prescribed synthetic-turbulence + mean-jet velocity field.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "runtime/comm.hpp"
#include "sim/chemistry.hpp"
#include "sim/field.hpp"
#include "sim/grid.hpp"
#include "sim/species.hpp"
#include "sim/turbulence.hpp"

namespace hia {

/// Explicit time integrators. S3D proper uses a six-stage RK; here the
/// first-order upwind spatial scheme pairs with forward Euler by default,
/// with Heun's method (two-stage RK2) available for temporal-accuracy
/// studies. The prescribed velocity is frozen within a step.
enum class TimeIntegrator { kEuler, kHeun };

struct S3DParams {
  GlobalGrid grid{{64, 48, 48}, {1.0, 0.75, 0.75}};
  std::array<int, 3> ranks_per_axis{2, 2, 2};
  double dt = 2.0e-3;
  double diffusivity = 3.0e-4;
  double jet_velocity = 0.8;    // mean axial velocity of the fuel jet
  double jet_radius = 0.12;     // radius of the fuel core (physical units)
  TimeIntegrator integrator = TimeIntegrator::kEuler;
  TurbulenceParams turbulence{};
  ChemistryParams chemistry{};
};

/// Per-rank MiniS3D state and integrator. One instance per simulation rank;
/// advance() is collective over the simulation communicator (halo
/// exchanges).
class S3DRank {
 public:
  S3DRank(const S3DParams& params, int rank);

  /// Sets the lifted-jet initial condition (no communication).
  void initialize();

  /// Advances one timestep: halo exchange, upwind advection + diffusion +
  /// reaction (explicit Euler), kernel seeding, diagnostic update.
  /// Collective over the simulation ranks.
  void advance(Comm& comm);

  [[nodiscard]] Field& field(Variable v) {
    return fields_[static_cast<size_t>(v)];
  }
  [[nodiscard]] const Field& field(Variable v) const {
    return fields_[static_cast<size_t>(v)];
  }

  /// Heat-release rate: the diagnostic field scientists analyze (not one of
  /// the 14 solution variables, recomputed each step).
  [[nodiscard]] const Field& heat_release() const { return heat_release_; }

  [[nodiscard]] const Decomposition& decomp() const { return decomp_; }
  [[nodiscard]] const S3DParams& params() const { return params_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] long step() const { return step_; }
  [[nodiscard]] double time() const { return time_; }

  /// Wall-clock seconds spent in the last advance() on this rank.
  [[nodiscard]] double last_step_seconds() const { return last_step_seconds_; }

  /// Restart support: sets the clock after field data has been restored
  /// (e.g. from a checkpoint) and recomputes the prescribed velocity and
  /// diagnostic fields for the restored state. Ghost layers are refreshed
  /// by the next advance().
  void restore_clock(long step, double time) {
    step_ = step;
    time_ = time;
    update_velocity_and_diagnostics();
  }

  /// Bytes of solution data owned by this rank (14 variables x 8 bytes).
  [[nodiscard]] size_t solution_bytes() const;

 private:
  void apply_kernels(long step);
  void update_velocity_and_diagnostics();
  /// Evaluates -advection + diffusion + reaction for the transported
  /// scalars into `rhs` (kTransported-major, owned cells x-fastest).
  void compute_rhs(const std::vector<Field*>& transported,
                   std::vector<double>& rhs) const;
  /// phi += dt * rhs with positivity/bound clamps.
  void apply_update(const std::vector<Field*>& transported,
                    const std::vector<double>& rhs, double dt);

  S3DParams params_;
  int rank_;
  Decomposition decomp_;
  Box3 owned_;
  Chemistry chemistry_;
  KernelSeeder seeder_;
  SyntheticTurbulence turbulence_;

  std::vector<Field> fields_;       // the 14 solution variables, ghost = 1
  Field heat_release_;              // diagnostic, no ghosts
  std::vector<double> scratch_;     // RHS workspace (stage 1)
  std::vector<double> scratch2_;    // RHS workspace (Heun stage 2)
  std::vector<double> saved_;       // state snapshot for Heun combination

  long step_ = 0;
  double time_ = 0.0;
  double last_step_seconds_ = 0.0;
};

}  // namespace hia
