// Ghost-layer (halo) exchange between neighboring simulation ranks.
//
// Exchanges all 26 neighbor directions so that stencil operators and the
// merge-tree boundary logic both see a consistent one-(or more)-deep ghost
// region. Non-periodic: faces at the domain boundary keep their fill value.
#pragma once

#include <vector>

#include "runtime/comm.hpp"
#include "sim/field.hpp"
#include "sim/grid.hpp"

namespace hia {

/// Exchanges `ghost` layers for each field in `fields` (all fields must
/// share the same owned box belonging to comm.rank()). Collective over all
/// ranks of the decomposition.
void exchange_halos(Comm& comm, const Decomposition& decomp,
                    std::vector<Field*>& fields, int ghost);

/// Convenience overload for a single field.
void exchange_halos(Comm& comm, const Decomposition& decomp, Field& field,
                    int ghost);

}  // namespace hia
