// Single-step H2/O2 chemistry with Arrhenius kinetics, plus the intermittent
// ignition-kernel seeding that reproduces the paper's motivating phenomenon:
// features (ignition kernels) that live ~10 timesteps and are lost when only
// every ~400th step reaches disk.
//
// Reaction:  2 H2 + O2 -> 2 H2O, rate = A * [H2]^2 [O2] * exp(-Ta / T).
// Minor species (H, O, OH, HO2, H2O2) are carried as fast-equilibrium
// fractions of the progress variable so all 14 S3D variables evolve.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/box.hpp"
#include "util/rng.hpp"

namespace hia {

struct ChemistryParams {
  double pre_exponential = 6.0e3;   // A, tuned for laptop-scale dynamics
  double activation_temp = 6.0;     // Ta in nondimensional temperature units
  double heat_release = 18.0;       // adiabatic temperature rise (complete
                                    // combustion of the pure-fuel stream)
  double ambient_temperature = 1.0; // nondimensional cold-stream T

  // Ignition-kernel seeding: expected kernels per step per unit volume; each
  // kernel is a Gaussian temperature spot that either ignites (if it lands
  // in fuel) or dissipates.
  double kernel_rate = 1.2;     // expected kernels per step, whole domain
  double kernel_radius = 0.045; // physical units
  double kernel_amplitude = 4.5;
  uint64_t seed = 1234;
};

/// A pending ignition kernel: a localized temperature perturbation.
struct IgnitionKernel {
  double cx, cy, cz;   // center (physical coordinates)
  double radius;
  double amplitude;
  long step_created;
};

struct ChemistrySources {
  double temperature;  // dT/dt
  double h2;           // dY_H2/dt
  double o2;
  double h2o;
};

/// Point-local reaction source terms given (T, Y_H2, Y_O2).
class Chemistry {
 public:
  explicit Chemistry(const ChemistryParams& params = {}) : params_(params) {}

  [[nodiscard]] ChemistrySources sources(double temperature, double y_h2,
                                         double y_o2) const;

  /// Reaction progress rate (used directly by analyses as the "heat release
  /// rate" variable scientists visualize).
  [[nodiscard]] double rate(double temperature, double y_h2,
                            double y_o2) const;

  /// Equilibrium minor-species fractions for progress variable c in [0, 1].
  /// Order: H, O, OH, HO2, H2O2.
  [[nodiscard]] std::array<double, 5> minor_species(double c) const;

  [[nodiscard]] const ChemistryParams& params() const { return params_; }

 private:
  ChemistryParams params_;
};

/// Deterministic Poisson-like generator of ignition kernels. The draw for
/// step s depends only on (seed, s) — no sequential state — so all ranks
/// agree without communication and a simulation restarted from a
/// checkpoint reproduces the original kernel sequence exactly.
class KernelSeeder {
 public:
  explicit KernelSeeder(const ChemistryParams& params) : params_(params) {}

  /// Kernels to inject at `step` (may be empty; occasionally several).
  [[nodiscard]] std::vector<IgnitionKernel> kernels_for_step(long step) const;

 private:
  ChemistryParams params_;
};

}  // namespace hia
