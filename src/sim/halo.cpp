#include "sim/halo.hpp"

#include <array>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace hia {

namespace {

constexpr int kHaloTagBase = 1000;

int dir_index(int dx, int dy, int dz) {
  return (dx + 1) + 3 * (dy + 1) + 9 * (dz + 1);
}

/// Concatenates per-field packed payloads for `box`.
std::vector<double> pack_fields(const std::vector<Field*>& fields,
                                const Box3& box) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(box.num_cells()) * fields.size());
  for (const Field* f : fields) {
    auto part = f->pack(box);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

void unpack_fields(std::vector<Field*>& fields, const Box3& box,
                   std::span<const double> payload) {
  const size_t per_field = static_cast<size_t>(box.num_cells());
  HIA_REQUIRE(payload.size() == per_field * fields.size(),
              "halo payload size mismatch");
  size_t off = 0;
  for (Field* f : fields) {
    f->unpack(box, payload.subspan(off, per_field));
    off += per_field;
  }
}

}  // namespace

void exchange_halos(Comm& comm, const Decomposition& decomp,
                    std::vector<Field*>& fields, int ghost) {
  HIA_REQUIRE(!fields.empty(), "no fields to exchange");
  HIA_REQUIRE(ghost > 0, "ghost width must be positive");
  HIA_REQUIRE(comm.size() == decomp.num_ranks(),
              "communicator size must match decomposition");

  const int r = comm.rank();
  const Box3 domain = decomp.grid().bounds();
  const Box3 mine = decomp.block(r);
  const Box3 my_storage = mine.grown(ghost, domain);
  for (const Field* f : fields) {
    HIA_REQUIRE(f->owned() == mine, "field owned box must match this rank");
    HIA_REQUIRE(f->storage().contains(my_storage),
                "field ghost width too small for exchange");
  }

  // Phase 1: post all (buffered) sends.
  static obs::Counter& halo_bytes = obs::counter("halo_exchange_bytes");
  long long sent_bytes = 0;
  obs::Span halo_span("sim", "halo", {.rank = r});
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int n = decomp.neighbor(r, dx, dy, dz);
        if (n < 0) continue;
        const Box3 neighbor_storage = decomp.block(n).grown(ghost, domain);
        const Box3 send_box = mine.intersect(neighbor_storage);
        if (send_box.empty()) continue;
        auto payload = pack_fields(fields, send_box);
        sent_bytes +=
            static_cast<long long>(payload.size() * sizeof(double));
        comm.send_vector(n, kHaloTagBase + dir_index(dx, dy, dz), payload);
      }
    }
  }
  halo_bytes.add(sent_bytes);

  // Phase 2: receive and unpack ghost slabs.
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int n = decomp.neighbor(r, dx, dy, dz);
        if (n < 0) continue;
        const Box3 recv_box = my_storage.intersect(decomp.block(n));
        if (recv_box.empty()) continue;
        // The neighbor sent this with the direction from its perspective.
        const int tag = kHaloTagBase + dir_index(-dx, -dy, -dz);
        auto payload = comm.recv_vector<double>(n, tag);
        unpack_fields(fields, recv_box, payload);
      }
    }
  }
}

void exchange_halos(Comm& comm, const Decomposition& decomp, Field& field,
                    int ghost) {
  std::vector<Field*> fields{&field};
  exchange_halos(comm, decomp, fields, ghost);
}

}  // namespace hia
