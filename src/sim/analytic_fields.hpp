// Analytic scalar fields with known topological structure, used by the
// merge-tree/statistics/visualization tests and the Fig. 3 validation bench.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/field.hpp"
#include "sim/grid.hpp"
#include "util/vec3.hpp"

namespace hia {

/// A Gaussian bump: amplitude * exp(-|x - center|^2 / (2 sigma^2)).
struct GaussianBump {
  Vec3 center;
  double sigma = 0.1;
  double amplitude = 1.0;
};

/// Sum-of-Gaussians scalar function; each well-separated bump contributes
/// exactly one local maximum, so the expected merge-tree leaf count is
/// known.
class GaussianMixture {
 public:
  explicit GaussianMixture(std::vector<GaussianBump> bumps)
      : bumps_(std::move(bumps)) {}

  [[nodiscard]] double value(const Vec3& x) const;
  [[nodiscard]] const std::vector<GaussianBump>& bumps() const {
    return bumps_;
  }

  /// `count` bumps placed deterministically on a jittered lattice so they
  /// stay well separated (pairwise distance > 4 sigma).
  static GaussianMixture well_separated(int count, double sigma,
                                        uint64_t seed = 17);

 private:
  std::vector<GaussianBump> bumps_;
};

/// Fills field(i,j,k) = fn(physical coordinates of (i,j,k)) over the
/// field's *storage* box (ghosts included), so analytic ghost values are
/// consistent without communication.
void fill_from_function(Field& field, const GlobalGrid& grid,
                        const std::function<double(const Vec3&)>& fn);

/// Fills with value(GaussianMixture).
void fill_gaussian_mixture(Field& field, const GlobalGrid& grid,
                           const GaussianMixture& mix);

/// f(x, y, z) = sin(a x) sin(b y) sin(c z): periodic field with a dense,
/// predictable lattice of maxima.
void fill_sine_product(Field& field, const GlobalGrid& grid, double a,
                       double b, double c);

/// Linear ramp along x: a field with exactly one maximum (monotone).
void fill_ramp_x(Field& field, const GlobalGrid& grid);

/// Deterministic white noise in [0, 1); seeds derive from global indices so
/// the field is decomposition-invariant.
void fill_noise(Field& field, uint64_t seed);

}  // namespace hia
