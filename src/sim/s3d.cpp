#include "sim/s3d.hpp"

#include <algorithm>
#include <cmath>

#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "sim/halo.hpp"
#include "util/stopwatch.hpp"

namespace hia {

namespace {
constexpr int kGhost = 1;

/// The scalar variables advanced by the PDE; velocities are prescribed and
/// minor species are diagnostic.
constexpr std::array<Variable, 5> kTransported{
    Variable::kTemperature, Variable::kYH2, Variable::kYO2, Variable::kYH2O,
    Variable::kYN2};
}  // namespace

S3DRank::S3DRank(const S3DParams& params, int rank)
    : params_(params),
      rank_(rank),
      decomp_(params.grid, params.ranks_per_axis),
      owned_(decomp_.block(rank)),
      chemistry_(params.chemistry),
      seeder_(params.chemistry),
      turbulence_(params.turbulence),
      heat_release_("hrr", owned_) {
  fields_.reserve(kNumVariables);
  for (int v = 0; v < kNumVariables; ++v) {
    fields_.emplace_back(std::string(kVariableNames[static_cast<size_t>(v)]),
                         owned_, params.grid.bounds(), kGhost);
  }
  scratch_.resize(static_cast<size_t>(owned_.num_cells()) *
                  kTransported.size());
}

size_t S3DRank::solution_bytes() const {
  return static_cast<size_t>(owned_.num_cells()) * kNumVariables *
         sizeof(double);
}

void S3DRank::initialize() {
  const GlobalGrid& g = params_.grid;
  Field& T = field(Variable::kTemperature);
  Field& h2 = field(Variable::kYH2);
  Field& o2 = field(Variable::kYO2);
  Field& h2o = field(Variable::kYH2O);
  Field& n2 = field(Variable::kYN2);
  Field& P = field(Variable::kPressure);

  const double cy = g.physical[1] * 0.5;
  const double cz = g.physical[2] * 0.5;

  for (int64_t k = owned_.lo[2]; k < owned_.hi[2]; ++k) {
    for (int64_t j = owned_.lo[1]; j < owned_.hi[1]; ++j) {
      for (int64_t i = owned_.lo[0]; i < owned_.hi[0]; ++i) {
        const double y = g.coord(1, j) - cy;
        const double z = g.coord(2, k) - cz;
        const double r = std::sqrt(y * y + z * z);
        // Fuel core: smooth tanh shear layer around the jet radius.
        const double core =
            0.5 * (1.0 - std::tanh((r - params_.jet_radius) /
                                   (0.25 * params_.jet_radius)));
        const double y_h2 = 0.9 * core;
        const double y_o2 = 0.232 * (1.0 - core);  // air coflow
        T.at(i, j, k) = params_.chemistry.ambient_temperature;
        h2.at(i, j, k) = y_h2;
        o2.at(i, j, k) = y_o2;
        h2o.at(i, j, k) = 0.0;
        n2.at(i, j, k) = 1.0 - y_h2 - y_o2;
        P.at(i, j, k) = 1.0;
      }
    }
  }
  update_velocity_and_diagnostics();
  step_ = 0;
  time_ = 0.0;
}

void S3DRank::apply_kernels(long step) {
  // All ranks draw the same kernel sequence; each applies the intersection
  // with its own block (see KernelSeeder doc).
  const GlobalGrid& g = params_.grid;
  Field& T = field(Variable::kTemperature);
  for (const IgnitionKernel& kern : seeder_.kernels_for_step(step)) {
    const double cx = kern.cx * g.physical[0];
    const double cy = kern.cy * g.physical[1];
    const double cz = kern.cz * g.physical[2];
    // Bounding box of the 3-sigma support, in index space.
    const double support = 3.0 * kern.radius;
    Box3 bb;
    bb.lo[0] = static_cast<int64_t>((cx - support) / g.spacing(0)) - 1;
    bb.hi[0] = static_cast<int64_t>((cx + support) / g.spacing(0)) + 2;
    bb.lo[1] = static_cast<int64_t>((cy - support) / g.spacing(1)) - 1;
    bb.hi[1] = static_cast<int64_t>((cy + support) / g.spacing(1)) + 2;
    bb.lo[2] = static_cast<int64_t>((cz - support) / g.spacing(2)) - 1;
    bb.hi[2] = static_cast<int64_t>((cz + support) / g.spacing(2)) + 2;
    const Box3 local = bb.intersect(owned_);
    if (local.empty()) continue;

    const double inv2r2 = 1.0 / (2.0 * kern.radius * kern.radius);
    for (int64_t k = local.lo[2]; k < local.hi[2]; ++k) {
      for (int64_t j = local.lo[1]; j < local.hi[1]; ++j) {
        for (int64_t i = local.lo[0]; i < local.hi[0]; ++i) {
          const double dx = g.coord(0, i) - cx;
          const double dy = g.coord(1, j) - cy;
          const double dz = g.coord(2, k) - cz;
          const double r2 = dx * dx + dy * dy + dz * dz;
          T.at(i, j, k) += kern.amplitude * std::exp(-r2 * inv2r2);
        }
      }
    }
  }
}

void S3DRank::update_velocity_and_diagnostics() {
  const GlobalGrid& g = params_.grid;
  Field& u = field(Variable::kVelU);
  Field& v = field(Variable::kVelV);
  Field& w = field(Variable::kVelW);
  Field& T = field(Variable::kTemperature);
  Field& h2 = field(Variable::kYH2);
  Field& o2 = field(Variable::kYO2);
  Field& h2o = field(Variable::kYH2O);

  std::array<Field*, 5> minors{
      &field(Variable::kYH), &field(Variable::kYO), &field(Variable::kYOH),
      &field(Variable::kYHO2), &field(Variable::kYH2O2)};

  const double cy = g.physical[1] * 0.5;
  const double cz = g.physical[2] * 0.5;

  for (int64_t k = owned_.lo[2]; k < owned_.hi[2]; ++k) {
    for (int64_t j = owned_.lo[1]; j < owned_.hi[1]; ++j) {
      for (int64_t i = owned_.lo[0]; i < owned_.hi[0]; ++i) {
        const Vec3 x{g.coord(0, i), g.coord(1, j), g.coord(2, k)};
        const double dy = x.y - cy;
        const double dz = x.z - cz;
        const double r = std::sqrt(dy * dy + dz * dz);
        const double core =
            0.5 * (1.0 - std::tanh((r - params_.jet_radius) /
                                   (0.25 * params_.jet_radius)));
        Vec3 vel = turbulence_.velocity(x, time_);
        vel.x += params_.jet_velocity * core;  // mean jet along +x
        u.at(i, j, k) = vel.x;
        v.at(i, j, k) = vel.y;
        w.at(i, j, k) = vel.z;

        // Diagnostics: heat-release rate and equilibrium minor species.
        const double hrr =
            chemistry_.rate(T.at(i, j, k), h2.at(i, j, k), o2.at(i, j, k));
        heat_release_.at(i, j, k) = params_.chemistry.heat_release * hrr;
        const double c = std::min(1.0, h2o.at(i, j, k) / 0.9);
        const auto ms = chemistry_.minor_species(c);
        for (size_t s = 0; s < minors.size(); ++s) {
          minors[s]->at(i, j, k) = ms[s];
        }
      }
    }
  }
}

void S3DRank::compute_rhs(const std::vector<Field*>& transported,
                          std::vector<double>& rhs) const {
  const GlobalGrid& g = params_.grid;
  const Box3 domain = g.bounds();
  const double dx = g.spacing(0), dy = g.spacing(1), dz = g.spacing(2);
  const double nu = params_.diffusivity;

  const Field& u = field(Variable::kVelU);
  const Field& v = field(Variable::kVelV);
  const Field& w = field(Variable::kVelW);
  const Field& T = *transported[0];   // kTransported order
  const Field& h2 = *transported[1];
  const Field& o2 = *transported[2];

  const size_t cells = static_cast<size_t>(owned_.num_cells());
  size_t cell = 0;
  for (int64_t k = owned_.lo[2]; k < owned_.hi[2]; ++k) {
    for (int64_t j = owned_.lo[1]; j < owned_.hi[1]; ++j) {
      for (int64_t i = owned_.lo[0]; i < owned_.hi[0]; ++i, ++cell) {
        const double ui = u.at(i, j, k);
        const double vj = v.at(i, j, k);
        const double wk = w.at(i, j, k);

        const auto src = chemistry_.sources(T.at(i, j, k), h2.at(i, j, k),
                                            o2.at(i, j, k));
        const std::array<double, 5> reaction{src.temperature, src.h2, src.o2,
                                             src.h2o, 0.0};

        for (size_t f = 0; f < kTransported.size(); ++f) {
          const Field& phi = *transported[f];
          const double c = phi.at(i, j, k);

          // Clamped neighbor lookups: outside the domain we use the local
          // value (zero-gradient outflow boundary).
          auto val = [&](int64_t ii, int64_t jj, int64_t kk) {
            if (!domain.contains(ii, jj, kk)) return c;
            return phi.at(ii, jj, kk);
          };

          const double xm = val(i - 1, j, k), xp = val(i + 1, j, k);
          const double ym = val(i, j - 1, k), yp = val(i, j + 1, k);
          const double zm = val(i, j, k - 1), zp = val(i, j, k + 1);

          // First-order upwind advection.
          const double adv =
              ui * (ui > 0.0 ? (c - xm) / dx : (xp - c) / dx) +
              vj * (vj > 0.0 ? (c - ym) / dy : (yp - c) / dy) +
              wk * (wk > 0.0 ? (c - zm) / dz : (zp - c) / dz);

          // 7-point Laplacian diffusion.
          const double lap = (xm - 2.0 * c + xp) / (dx * dx) +
                             (ym - 2.0 * c + yp) / (dy * dy) +
                             (zm - 2.0 * c + zp) / (dz * dz);

          rhs[f * cells + cell] = -adv + nu * lap + reaction[f];
        }
      }
    }
  }
}

void S3DRank::apply_update(const std::vector<Field*>& transported,
                           const std::vector<double>& rhs, double dt) {
  const size_t cells = static_cast<size_t>(owned_.num_cells());
  size_t cell = 0;
  for (int64_t k = owned_.lo[2]; k < owned_.hi[2]; ++k) {
    for (int64_t j = owned_.lo[1]; j < owned_.hi[1]; ++j) {
      for (int64_t i = owned_.lo[0]; i < owned_.hi[0]; ++i, ++cell) {
        for (size_t f = 0; f < kTransported.size(); ++f) {
          Field& phi = *transported[f];
          double next = phi.at(i, j, k) + dt * rhs[f * cells + cell];
          if (kTransported[f] != Variable::kTemperature) {
            next = std::clamp(next, 0.0, 1.0);
          } else {
            next = std::max(next, 0.0);
          }
          phi.at(i, j, k) = next;
        }
      }
    }
  }
}

void S3DRank::advance(Comm& comm) {
  // Step span carries the virtual (simulated) clock; phases nest inside.
  obs::Span step_span("sim", "step",
                      {.rank = rank_, .step = step_, .vtime = time_});
  Stopwatch watch;

  std::vector<Field*> transported;
  transported.reserve(kTransported.size());
  for (Variable v : kTransported) transported.push_back(&field(v));

  const double dt = params_.dt;
  const size_t cells = static_cast<size_t>(owned_.num_cells());

  // Stage 1: refresh ghosts, evaluate RHS, step forward.
  exchange_halos(comm, decomp_, transported, kGhost);
  {
    obs::Span rhs_span("sim", "rhs", {.rank = rank_, .step = step_});
    compute_rhs(transported, scratch_);
  }

  if (params_.integrator == TimeIntegrator::kEuler) {
    apply_update(transported, scratch_, dt);
  } else {
    // Heun's method: y1 = y + dt f(y); y' = y + dt/2 (f(y) + f(y1)).
    if (saved_.size() != cells * kTransported.size()) {
      saved_.resize(cells * kTransported.size());
      scratch2_.resize(cells * kTransported.size());
    }
    for (size_t f = 0; f < kTransported.size(); ++f) {
      const auto owned_values = transported[f]->pack_owned();
      std::copy(owned_values.begin(), owned_values.end(),
                saved_.begin() + static_cast<std::ptrdiff_t>(f * cells));
    }
    apply_update(transported, scratch_, dt);  // fields now hold y1
    exchange_halos(comm, decomp_, transported, kGhost);
    // Stage 2 evaluates f(t + dt, y1): advance the prescribed velocity to
    // the end of the step for the second slope, then restore the clock.
    time_ += dt;
    update_velocity_and_diagnostics();
    time_ -= dt;
    {
      obs::Span rhs_span("sim", "rhs", {.rank = rank_, .step = step_});
      compute_rhs(transported, scratch2_);
    }

    // Combine: restore y, then advance with the averaged slope.
    for (size_t f = 0; f < kTransported.size(); ++f) {
      Box3 box = owned_;
      transported[f]->unpack(
          box, std::span<const double>(saved_.data() + f * cells, cells));
    }
    for (size_t c = 0; c < scratch_.size(); ++c) {
      scratch_[c] = 0.5 * (scratch_[c] + scratch2_[c]);
    }
    apply_update(transported, scratch_, dt);
  }

  // Intermittent ignition kernels, prescribed velocity, diagnostics.
  apply_kernels(step_);
  time_ += dt;
  ++step_;
  {
    obs::Span diag_span("sim", "chemistry",
                        {.rank = rank_, .step = step_, .vtime = time_});
    update_velocity_and_diagnostics();
  }

  last_step_seconds_ = watch.seconds();
  static obs::Histogram& step_h = obs::histogram("sim_step_s");
  step_h.record(last_step_seconds_);
}

}  // namespace hia
