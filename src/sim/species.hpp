// The 14 solution variables carried by MiniS3D, matching the paper's
// lifted-hydrogen S3D case (Table I: 14 variables, 8 bytes each): three
// velocity components, temperature, pressure, and 9 chemical species of the
// H2/air system.
#pragma once

#include <array>
#include <string_view>

namespace hia {

enum class Variable : int {
  kVelU = 0,
  kVelV,
  kVelW,
  kTemperature,
  kPressure,
  kYH2,
  kYO2,
  kYH2O,
  kYH,
  kYO,
  kYOH,
  kYHO2,
  kYH2O2,
  kYN2,
  kCount
};

inline constexpr int kNumVariables = static_cast<int>(Variable::kCount);

inline constexpr std::array<std::string_view, kNumVariables> kVariableNames{
    "u", "v", "w", "T", "P", "Y_H2", "Y_O2", "Y_H2O", "Y_H", "Y_O", "Y_OH",
    "Y_HO2", "Y_H2O2", "Y_N2"};

constexpr std::string_view variable_name(Variable v) {
  return kVariableNames[static_cast<size_t>(v)];
}

constexpr int variable_index(Variable v) { return static_cast<int>(v); }

}  // namespace hia
