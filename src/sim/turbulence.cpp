#include "sim/turbulence.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace hia {

SyntheticTurbulence::SyntheticTurbulence(const TurbulenceParams& params)
    : params_(params) {
  HIA_REQUIRE(params.num_modes > 0, "need at least one mode");
  HIA_REQUIRE(params.k_max > params.k_min && params.k_min > 0.0,
              "need 0 < k_min < k_max");

  Xoshiro256 rng(params.seed, /*stream_id=*/7);
  modes_.reserve(static_cast<size_t>(params.num_modes));

  // Sample wavenumber magnitudes log-uniformly across [k_min, k_max] and
  // weight amplitudes by E(k) ~ k^slope so the inertial range has the right
  // relative energy distribution.
  double energy_sum = 0.0;
  std::vector<double> energies(static_cast<size_t>(params.num_modes));
  std::vector<double> kmags(static_cast<size_t>(params.num_modes));
  for (int m = 0; m < params.num_modes; ++m) {
    const double frac = (static_cast<double>(m) + rng.uniform()) /
                        static_cast<double>(params.num_modes);
    const double kmag =
        params.k_min * std::pow(params.k_max / params.k_min, frac);
    kmags[static_cast<size_t>(m)] = kmag;
    const double e = std::pow(kmag, params.spectrum_slope);
    energies[static_cast<size_t>(m)] = e;
    energy_sum += e;
  }

  for (int m = 0; m < params.num_modes; ++m) {
    // Random direction on the sphere for the wave vector.
    Vec3 khat;
    do {
      khat = Vec3{rng.normal(), rng.normal(), rng.normal()};
    } while (khat.norm() < 1e-12);
    khat = khat.normalized();

    const double kmag = kmags[static_cast<size_t>(m)] * 2.0 *
                        std::numbers::pi;  // physical wavenumber
    // Amplitude direction orthogonal to k (incompressibility).
    Vec3 a;
    do {
      const Vec3 rand_dir{rng.normal(), rng.normal(), rng.normal()};
      a = khat.cross(rand_dir);
    } while (a.norm() < 1e-12);
    a = a.normalized();

    // Scale so the total field RMS matches rms_velocity. Each cosine mode
    // contributes amp^2/2 per component on average.
    const double frac_energy =
        energies[static_cast<size_t>(m)] / energy_sum;
    const double amp =
        params.rms_velocity * std::sqrt(2.0 * 3.0 * frac_energy);

    Mode mode;
    mode.k = khat * kmag;
    mode.amplitude = a * amp;
    mode.omega = 2.0 * std::numbers::pi / params.time_scale *
                 std::sqrt(kmags[static_cast<size_t>(m)] / params.k_min);
    mode.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    modes_.push_back(mode);
  }
}

Vec3 SyntheticTurbulence::velocity(const Vec3& x, double t) const {
  Vec3 u;
  for (const Mode& m : modes_) {
    const double arg = m.k.dot(x) + m.omega * t + m.phase;
    u += m.amplitude * std::cos(arg);
  }
  return u;
}

}  // namespace hia
