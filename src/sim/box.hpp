// Index-space boxes: the unit of domain decomposition, staging-object
// bounding volumes, and down-sampled brick extents.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace hia {

/// Half-open axis-aligned index box: cells [lo, hi) in each axis.
struct Box3 {
  std::array<int64_t, 3> lo{0, 0, 0};
  std::array<int64_t, 3> hi{0, 0, 0};

  [[nodiscard]] int64_t extent(int axis) const { return hi[axis] - lo[axis]; }
  [[nodiscard]] int64_t num_cells() const {
    return extent(0) * extent(1) * extent(2);
  }
  [[nodiscard]] bool empty() const {
    return extent(0) <= 0 || extent(1) <= 0 || extent(2) <= 0;
  }

  [[nodiscard]] bool contains(int64_t i, int64_t j, int64_t k) const {
    return i >= lo[0] && i < hi[0] && j >= lo[1] && j < hi[1] && k >= lo[2] &&
           k < hi[2];
  }

  [[nodiscard]] bool contains(const Box3& other) const {
    return other.lo[0] >= lo[0] && other.hi[0] <= hi[0] &&
           other.lo[1] >= lo[1] && other.hi[1] <= hi[1] &&
           other.lo[2] >= lo[2] && other.hi[2] <= hi[2];
  }

  [[nodiscard]] Box3 intersect(const Box3& other) const {
    Box3 out;
    for (int a = 0; a < 3; ++a) {
      out.lo[a] = std::max(lo[a], other.lo[a]);
      out.hi[a] = std::min(hi[a], other.hi[a]);
      if (out.hi[a] < out.lo[a]) out.hi[a] = out.lo[a];
    }
    return out;
  }

  [[nodiscard]] bool overlaps(const Box3& other) const {
    return !intersect(other).empty();
  }

  /// Grows by `g` cells on every face, clamped to `bounds`.
  [[nodiscard]] Box3 grown(int64_t g, const Box3& bounds) const {
    Box3 out;
    for (int a = 0; a < 3; ++a) {
      out.lo[a] = std::max(lo[a] - g, bounds.lo[a]);
      out.hi[a] = std::min(hi[a] + g, bounds.hi[a]);
    }
    return out;
  }

  /// Linear offset of (i, j, k) within this box, x-fastest ordering.
  [[nodiscard]] size_t offset(int64_t i, int64_t j, int64_t k) const {
    HIA_ASSERT(contains(i, j, k));
    return static_cast<size_t>((k - lo[2]) * extent(1) * extent(0) +
                               (j - lo[1]) * extent(0) + (i - lo[0]));
  }

  /// Inverse of offset().
  void coords(size_t off, int64_t& i, int64_t& j, int64_t& k) const {
    const int64_t nx = extent(0), ny = extent(1);
    k = lo[2] + static_cast<int64_t>(off) / (nx * ny);
    const int64_t rem = static_cast<int64_t>(off) % (nx * ny);
    j = lo[1] + rem / nx;
    i = lo[0] + rem % nx;
  }

  bool operator==(const Box3&) const = default;

  [[nodiscard]] std::string describe() const {
    return "[" + std::to_string(lo[0]) + "," + std::to_string(hi[0]) + ")x[" +
           std::to_string(lo[1]) + "," + std::to_string(hi[1]) + ")x[" +
           std::to_string(lo[2]) + "," + std::to_string(hi[2]) + ")";
  }
};

}  // namespace hia
