// Global structured grid and its block decomposition across simulation
// ranks, mirroring S3D's regular 3-D domain decomposition (Table I: each
// core owns a 100x49x43 or 50x49x43 sub-domain of the 1600x1372x430 grid).
#pragma once

#include <array>
#include <vector>

#include "sim/box.hpp"
#include "util/error.hpp"

namespace hia {

/// The global simulation grid: vertex-sampled fields on dims[0..2] points
/// with uniform spacing over a physical domain of size `physical`.
struct GlobalGrid {
  std::array<int64_t, 3> dims{64, 64, 64};
  std::array<double, 3> physical{1.0, 1.0, 1.0};

  [[nodiscard]] Box3 bounds() const {
    return Box3{{0, 0, 0}, {dims[0], dims[1], dims[2]}};
  }
  [[nodiscard]] int64_t num_points() const {
    return dims[0] * dims[1] * dims[2];
  }
  [[nodiscard]] double spacing(int axis) const {
    return physical[axis] / static_cast<double>(dims[axis]);
  }
  /// Physical coordinate of grid point i along axis.
  [[nodiscard]] double coord(int axis, int64_t i) const {
    return spacing(axis) * (static_cast<double>(i) + 0.5);
  }
};

/// Regular block decomposition of a grid over ranks_per_axis blocks.
class Decomposition {
 public:
  Decomposition(const GlobalGrid& grid, std::array<int, 3> ranks_per_axis)
      : grid_(grid), ranks_(ranks_per_axis) {
    for (int a = 0; a < 3; ++a) {
      HIA_REQUIRE(ranks_[a] > 0, "decomposition needs positive rank counts");
      HIA_REQUIRE(grid_.dims[a] >= ranks_[a],
                  "more ranks than grid points along an axis");
    }
  }

  [[nodiscard]] int num_ranks() const {
    return ranks_[0] * ranks_[1] * ranks_[2];
  }
  [[nodiscard]] const GlobalGrid& grid() const { return grid_; }
  [[nodiscard]] std::array<int, 3> ranks_per_axis() const { return ranks_; }

  /// 3-D rank coordinates of linear rank r (x fastest).
  [[nodiscard]] std::array<int, 3> rank_coords(int r) const {
    HIA_REQUIRE(r >= 0 && r < num_ranks(), "rank out of range");
    return {r % ranks_[0], (r / ranks_[0]) % ranks_[1],
            r / (ranks_[0] * ranks_[1])};
  }

  [[nodiscard]] int rank_at(std::array<int, 3> rc) const {
    for (int a = 0; a < 3; ++a) {
      if (rc[a] < 0 || rc[a] >= ranks_[a]) return -1;
    }
    return rc[0] + ranks_[0] * (rc[1] + ranks_[1] * rc[2]);
  }

  /// The block of grid points owned by rank r. Blocks tile the grid
  /// exactly; remainders are spread across the leading blocks.
  [[nodiscard]] Box3 block(int r) const {
    const auto rc = rank_coords(r);
    Box3 b;
    for (int a = 0; a < 3; ++a) {
      const int64_t base = grid_.dims[a] / ranks_[a];
      const int64_t rem = grid_.dims[a] % ranks_[a];
      const int64_t c = rc[a];
      b.lo[a] = c * base + std::min<int64_t>(c, rem);
      b.hi[a] = b.lo[a] + base + (c < rem ? 1 : 0);
    }
    return b;
  }

  /// Neighbor rank in direction (dx, dy, dz) in {-1,0,1}^3, or -1 at the
  /// domain boundary.
  [[nodiscard]] int neighbor(int r, int dx, int dy, int dz) const {
    auto rc = rank_coords(r);
    rc[0] += dx; rc[1] += dy; rc[2] += dz;
    return rank_at(rc);
  }

  /// All blocks, indexed by rank.
  [[nodiscard]] std::vector<Box3> all_blocks() const {
    std::vector<Box3> out;
    out.reserve(static_cast<size_t>(num_ranks()));
    for (int r = 0; r < num_ranks(); ++r) out.push_back(block(r));
    return out;
  }

  /// The rank owning global point (i, j, k).
  [[nodiscard]] int owner(int64_t i, int64_t j, int64_t k) const;

 private:
  [[nodiscard]] int owner_axis(int axis, int64_t idx) const {
    const int64_t base = grid_.dims[axis] / ranks_[axis];
    const int64_t rem = grid_.dims[axis] % ranks_[axis];
    // Leading `rem` blocks have size base+1.
    const int64_t big = (base + 1) * rem;
    if (idx < big) return static_cast<int>(idx / (base + 1));
    return static_cast<int>(rem + (idx - big) / base);
  }

  GlobalGrid grid_;
  std::array<int, 3> ranks_;
};

inline int Decomposition::owner(int64_t i, int64_t j, int64_t k) const {
  HIA_REQUIRE(grid_.bounds().contains(i, j, k), "point outside grid");
  return rank_at({owner_axis(0, i), owner_axis(1, j), owner_axis(2, k)});
}

}  // namespace hia
