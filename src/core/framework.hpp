// HybridRunner — the end-to-end orchestration of the paper's Fig. 5:
// primary resources run MiniS3D plus the in-situ analysis stages; the
// secondary resources (Dart + StagingService) schedule and execute the
// in-transit stages asynchronously while the simulation proceeds.
//
// Per timestep:
//   1. every simulation rank advances the solver (collective);
//   2. each scheduled analysis whose frequency divides the step runs its
//      in-situ stage on every rank (publishing intermediate blocks);
//   3. rank 0 submits the corresponding in-transit task (data-ready), and
//      the staging buckets pull and process it while the simulation moves
//      on — successive steps land on different buckets (temporal
//      multiplexing).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "core/analysis.hpp"
#include "core/metrics.hpp"
#include "runtime/network_model.hpp"
#include "sim/s3d.hpp"
#include "staging/scheduler.hpp"
#include "transport/dart.hpp"

namespace hia {

class FaultPlan;

struct RunConfig {
  S3DParams sim{};
  int staging_servers = 2;
  int staging_buckets = 4;
  /// Object-store replication factor (clamped to [1, staging_servers]).
  /// With R > 1 committed objects survive R-1 crash-server losses.
  int staging_replicas = 1;
  long steps = 5;
  NetworkParams network{};
  Dart::Options dart{};
  /// Data-reduction codec applied to every block published to staging:
  /// a make_codec() spec ("raw", "rle", "delta", "quantize:1e-6").
  /// Empty = publish raw (no frame, no codec overhead).
  std::string staging_codec;
  /// Fault-injection spec (FaultPlan::parse_spec grammar, e.g.
  /// "drop=0.05,task-fail=0.1,kill-bucket=2@3"). Empty = faults off: the
  /// runner passes null plans everywhere and the hot paths only pay
  /// null-pointer branches.
  std::string faults;
  /// Overrides the plan's seed when nonzero (same seed + same config =>
  /// same fault decisions, same RunSummary resilience block).
  uint64_t fault_seed = 0;
  /// Overload-control spec (OverloadConfig::parse_spec grammar, e.g.
  /// "queue-bytes=4m,credits=16,low=0.5,high=0.9"). Empty = overload
  /// control off: null pointers everywhere, one branch per hot path.
  std::string overload;
  /// Steering policy for in-transit submissions ("in-transit", "adaptive",
  /// "in-situ", "shed"; empty = in-transit, the PR-4 behavior).
  std::string steer;
};

/// A borrowed staging environment for multi-tenant campaigns: the campaign
/// service owns one Dart/StagingService/OverloadControl set and hands each
/// tenant's HybridRunner this view of it. The runner then namespaces its
/// handlers and published variables under `ns_prefix` and charges all
/// admission/queue/store accounting to `tenant`. All pointers are unowned
/// and must outlive the runner.
struct SharedStagingEnv {
  Dart* dart = nullptr;
  StagingService* staging = nullptr;
  OverloadControl* overload = nullptr;  // null = admission off
  int tenant = 0;
  std::string ns_prefix;  // e.g. "t3/" (empty for the default tenant)
};

class HybridRunner {
 public:
  explicit HybridRunner(RunConfig config);

  /// Shared-mode runner: one tenant's campaign multiplexed onto a shared
  /// staging environment. The config's faults/overload specs must be empty
  /// (the service owns fault injection and the overload ledger); the
  /// steering policy still applies, consulting the *shared* pressure.
  /// run() drains only this tenant's tasks and reports only its records
  /// (with the namespace prefix stripped back off).
  HybridRunner(RunConfig config, const SharedStagingEnv& env);

  ~HybridRunner();

  HybridRunner(const HybridRunner&) = delete;
  HybridRunner& operator=(const HybridRunner&) = delete;

  /// Schedules `analysis` every `frequency` steps (1 = every step).
  void add_analysis(std::shared_ptr<HybridAnalysis> analysis,
                    int frequency = 1);

  /// Runs the full simulation + analysis campaign and returns the report.
  /// May be called once.
  RunReport run();

  [[nodiscard]] StagingService& staging() { return *staging_; }
  [[nodiscard]] Dart& dart() { return *dart_; }
  [[nodiscard]] SteeringBoard& steering() { return steering_; }
  [[nodiscard]] const RunConfig& config() const { return config_; }
  /// The overload ledger (null when overload control is off).
  [[nodiscard]] const OverloadControl* overload() const { return overload_; }
  /// True when this runner borrows a shared staging environment.
  [[nodiscard]] bool shared_mode() const { return shared_; }
  [[nodiscard]] int tenant() const { return tenant_; }

 private:
  struct Scheduled {
    std::shared_ptr<HybridAnalysis> analysis;
    int frequency = 1;
  };

  RunConfig config_;
  NetworkModel network_;
  std::unique_ptr<FaultPlan> faults_;  // null = faults off
  // Owned singletons, declared in dependency order (the overload ledger is
  // destroyed after Dart/staging, which hold unowned pointers into it). In
  // shared mode all three stay null and the raw pointers below borrow the
  // service's instances instead.
  std::unique_ptr<OverloadControl> owned_overload_;
  std::unique_ptr<Dart> owned_dart_;
  std::unique_ptr<StagingService> owned_staging_;
  // Working pointers: every call site goes through these, owned or shared.
  OverloadControl* overload_ = nullptr;  // null = overload off
  Dart* dart_ = nullptr;
  StagingService* staging_ = nullptr;
  SteerPolicy steer_ = SteerPolicy::kInTransit;
  bool shared_ = false;
  int tenant_ = 0;
  std::string ns_prefix_;
  std::shared_ptr<const Codec> codec_;  // null = publish raw
  SteeringBoard steering_;
  std::vector<Scheduled> analyses_;
  bool ran_ = false;
};

}  // namespace hia
