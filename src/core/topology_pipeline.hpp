// The hybrid topology pipeline (paper §III, "Topology"): merge subtrees are
// computed in-situ with the adapted in-core algorithm, shipped as compact
// intermediate data (the paper measures ~87 MB total at 4480 ranks), and
// glued into the global merge tree by the streaming algorithm on a single
// serial in-transit bucket. No fully in-situ variant exists because merge
// tree construction "is inherently not data-parallel" — exactly the class
// of algorithm the hybrid formulation unlocks.
#pragma once

#include <mutex>
#include <optional>
#include <vector>

#include "analysis/topology/local_tree.hpp"
#include "analysis/topology/merge_tree.hpp"
#include "analysis/topology/stream_combine.hpp"
#include "core/analysis.hpp"
#include "sim/species.hpp"

namespace hia {

struct TopologyConfig {
  Variable variable = Variable::kTemperature;
  /// Persistence threshold applied in-transit before reporting features;
  /// 0 = no simplification.
  double simplify_threshold = 0.0;
  /// Number of top-persistence pairs carried in the task result.
  int top_pairs = 16;
  /// When set, evicted (finalized regular) arcs are streamed to a BP-lite
  /// file per step — the paper's "writes those vertices and edges to disk
  /// that have been finalized, removing them from memory".
  std::string arc_output_dir;
};

/// Result summary of one in-transit combination.
struct TreeSummary {
  long step = 0;
  size_t tree_nodes = 0;        // reduced (critical-point) tree size
  size_t tree_leaves = 0;       // maxima count after simplification
  size_t peak_live_nodes = 0;   // streaming-memory footprint
  size_t evicted = 0;
  std::vector<PersistencePair> top_pairs;

  [[nodiscard]] std::vector<std::byte> serialize() const;
  static TreeSummary deserialize(std::span<const std::byte> bytes);
};

class HybridTopology final : public HybridAnalysis {
 public:
  explicit HybridTopology(TopologyConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "topo-hybrid"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"topo.subtree"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  [[nodiscard]] TreeSummary latest_summary() const;
  /// The most recent full reduced merge tree (for tests/examples).
  [[nodiscard]] MergeTree latest_tree() const;

 private:
  TopologyConfig config_;
  mutable std::mutex mutex_;
  TreeSummary latest_{};
  MergeTree latest_tree_{};
  std::optional<GlobalGrid> grid_;  // captured in-situ for the stream driver
};

}  // namespace hia
