// Hybrid histogramming: per-rank partial histograms (mergeable, fixed
// binning) combined in-transit. Histograms are the workhorse behind
// transfer-function design for the volume renderer and quantile-based
// thresholds for the feature pipelines; like the moment statistics they
// reduce each rank's block to a constant-size summary.
//
// The binning range must be global to be mergeable; unless fixed by the
// user, each invocation opens with one small min/max all-reduce — the same
// "learn is the only communicating stage" structure as Fig. 4.
#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "analysis/stats/histogram.hpp"
#include "core/analysis.hpp"
#include "sim/species.hpp"

namespace hia {

struct HistogramConfig {
  Variable variable = Variable::kTemperature;
  int bins = 64;
  /// When set, fixes the range; otherwise the first invocation computes a
  /// global min/max and pads it by 10%.
  std::optional<std::pair<double, double>> range;
};

class HybridHistogram final : public HybridAnalysis {
 public:
  explicit HybridHistogram(HistogramConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "hist-hybrid"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"hist.partial"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  /// Combined global histogram from the most recent invocation.
  [[nodiscard]] std::optional<Histogram> latest() const;

 private:
  HistogramConfig config_;
  mutable std::mutex mutex_;
  std::optional<std::pair<double, double>> resolved_range_;
  std::optional<Histogram> latest_;
};

/// Flat encoding of a histogram for transport:
/// [lo, hi, bins, underflow, overflow, counts...].
std::vector<double> serialize_histogram(const Histogram& h);
Histogram deserialize_histogram(std::span<const double> data);

}  // namespace hia
