// The two visualization deployments compared in the paper (§III, Fig. 2):
//
//   * InSituVisualization — every rank volume-renders its full-resolution
//     brick against the shared camera; partial images are gathered and
//     composited on rank 0 (sort-last parallel rendering, as in Yu et al.).
//   * HybridVisualization — every rank down-samples its brick in-situ
//     (default: every 8th point, configurable); a single serial in-transit
//     bucket receives all blocks, builds the block look-up table, and ray
//     casts the down-sampled data.
#pragma once

#include <mutex>
#include <optional>
#include <string>

#include "analysis/viz/block_lut.hpp"
#include "analysis/viz/camera.hpp"
#include "analysis/viz/compositor.hpp"
#include "analysis/viz/raycast.hpp"
#include "analysis/viz/transfer_function.hpp"
#include "core/analysis.hpp"
#include "sim/species.hpp"

namespace hia {

struct VizConfig {
  Variable variable = Variable::kTemperature;
  int image_size = 128;          // square output image
  double tf_lo = 0.8, tf_hi = 6.0;  // transfer-function range
  int downsample_stride = 8;     // hybrid variant only (paper: 8)
  double step_scale = 1.0;       // ray step relative to one grid cell
  std::string output_dir;        // when set, PPMs are written per step
};

/// Builds the shared camera/renderer state for a grid.
struct RenderSetup {
  OrthoCamera camera;
  TransferFunction tf;
  RenderParams params;
  static RenderSetup make(const GlobalGrid& grid, const VizConfig& cfg);
};

class InSituVisualization final : public HybridAnalysis {
 public:
  explicit InSituVisualization(VizConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "viz-insitu"; }
  void in_situ(InSituContext& ctx) override;

  /// Composited frame from the most recent invocation (recorded by rank 0).
  [[nodiscard]] std::optional<Image> latest_image() const;

 private:
  VizConfig config_;
  mutable std::mutex mutex_;
  std::optional<Image> latest_;
};

class HybridVisualization final : public HybridAnalysis {
 public:
  explicit HybridVisualization(VizConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "viz-hybrid"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"viz.block"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  [[nodiscard]] std::optional<Image> latest_image() const;

 private:
  VizConfig config_;
  mutable std::mutex mutex_;
  std::optional<Image> latest_;
  std::optional<GlobalGrid> grid_;  // captured in-situ for the renderer
};

}  // namespace hia
