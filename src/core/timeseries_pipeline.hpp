// Temporal statistics across timesteps: per-step global probes (mean and
// maximum of a variable) accumulate on the staging side, and the in-transit
// stage maintains lag-k autocorrelations of the probe series — the time
// dimension of the paper's §VI "auto-correlative statistical technique".
//
// The in-situ stage is one local reduction plus an all-reduce (16 bytes of
// intermediate data per rank); all history lives on the secondary
// resources, so the simulation carries no memory of past steps.
#pragma once

#include <map>
#include <mutex>

#include "analysis/stats/correlation.hpp"
#include "core/analysis.hpp"
#include "sim/species.hpp"

namespace hia {

struct TimeSeriesConfig {
  Variable variable = Variable::kTemperature;
  /// Lags (in analysis invocations) reported by autocorrelations().
  std::vector<size_t> lags{1, 2, 4};
};

class TimeSeriesAutocorrelation final : public HybridAnalysis {
 public:
  explicit TimeSeriesAutocorrelation(TimeSeriesConfig config)
      : config_(config) {}

  [[nodiscard]] std::string name() const override { return "tseries"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"tseries.probe"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  /// The probe series accumulated so far (step-ordered global means).
  [[nodiscard]] std::vector<double> series() const;

  /// Lag -> Pearson autocorrelation of the mean series, for each
  /// configured lag short enough for the current history.
  [[nodiscard]] std::vector<std::pair<size_t, double>> autocorrelations()
      const;

 private:
  TimeSeriesConfig config_;
  mutable std::mutex mutex_;
  std::map<long, double> mean_by_step_;  // in-transit tasks may reorder
};

}  // namespace hia
