#include "core/histogram_pipeline.hpp"

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace hia {

std::vector<double> serialize_histogram(const Histogram& h) {
  std::vector<double> out;
  out.reserve(5 + static_cast<size_t>(h.bins()));
  out.push_back(h.lo());
  out.push_back(h.hi());
  out.push_back(static_cast<double>(h.bins()));
  out.push_back(static_cast<double>(h.underflow()));
  out.push_back(static_cast<double>(h.overflow()));
  for (int b = 0; b < h.bins(); ++b) {
    out.push_back(static_cast<double>(h.count(b)));
  }
  return out;
}

Histogram deserialize_histogram(std::span<const double> data) {
  HIA_REQUIRE(data.size() >= 5, "histogram payload too short");
  const int bins = round_to<int>(data[2]);
  HIA_REQUIRE(data.size() == 5 + static_cast<size_t>(bins),
              "histogram payload size mismatch");
  Histogram h(data[0], data[1], bins);
  h.restore(std::span(data.data() + 5, static_cast<size_t>(bins)),
            round_to<uint64_t>(data[3]), round_to<uint64_t>(data[4]));
  return h;
}

void HybridHistogram::in_situ(InSituContext& ctx) {
  const Field& field = ctx.sim().field(config_.variable);

  // Binning must be identical on every rank. Either the user fixed it, or
  // the ranks agree per invocation with one small min/max all-reduce —
  // executed unconditionally so the collective sequence never diverges.
  std::pair<double, double> range;
  if (config_.range.has_value()) {
    range = *config_.range;
  } else {
    double lo = field.at(field.owned().lo[0], field.owned().lo[1],
                         field.owned().lo[2]);
    double hi = lo;
    const Box3& box = field.owned();
    for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
      for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
        for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
          lo = std::min(lo, field.at(i, j, k));
          hi = std::max(hi, field.at(i, j, k));
        }
    lo = ctx.comm().allreduce_min(lo);
    hi = ctx.comm().allreduce_max(hi);
    const double pad = 0.1 * (hi - lo) + 1e-12;
    range = {lo - pad, hi + pad};
  }
  {
    std::lock_guard lock(mutex_);
    resolved_range_ = range;
  }

  Histogram partial(range.first, range.second, config_.bins);
  const Box3& box = field.owned();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i)
        partial.update(field.at(i, j, k));

  ctx.publish("hist.partial", box, serialize_histogram(partial));
}

void HybridHistogram::in_transit(TaskContext& ctx) {
  std::optional<Histogram> global;
  for (const DataDescriptor& desc : ctx.task().inputs) {
    Histogram part = deserialize_histogram(ctx.pull_doubles(desc));
    if (!global.has_value()) {
      global = std::move(part);
    } else {
      global->combine(part);
    }
  }
  HIA_REQUIRE(global.has_value(), "histogram task with no inputs");

  ctx.set_result([&] {
    const auto flat = serialize_histogram(*global);
    std::vector<std::byte> bytes(flat.size() * sizeof(double));
    std::memcpy(bytes.data(), flat.data(), bytes.size());
    return bytes;
  }());

  std::lock_guard lock(mutex_);
  latest_ = std::move(global);
}

std::optional<Histogram> HybridHistogram::latest() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

}  // namespace hia
