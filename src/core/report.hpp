// Paper-style report formatting: renders a RunReport as the rows of
// Table II and the Fig. 6 timing breakdown, and renders machine/grid
// configurations as Table I.
#pragma once

#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "io/ost_model.hpp"
#include "runtime/topology.hpp"
#include "sim/grid.hpp"

namespace hia {

/// Table II: per-analysis in-situ time, data movement time/size, and
/// in-transit time (averaged per invocation over the run).
std::string format_table2(const RunReport& report,
                          const std::vector<std::string>& analyses);

/// Fig. 6: timing breakdown relative to the simulation time per step.
std::string format_fig6(const RunReport& report,
                        const std::vector<std::string>& analyses);

/// Resilience block: task outcomes (completed/degraded/shed), retry and
/// backoff totals, and the transport-level retransmit/CRC ledger. Callers
/// normally print it only when report.resilience.any() — on a fault-free
/// run every row is zero.
std::string format_resilience(const RunReport& report);

/// Multi-tenant service block: one row per tenant with its conservation
/// counts, observed vs. target bucket-time share, p99 turnaround, and
/// isolation ledger (cap diversions, gate waits, hog bytes).
std::string format_tenant_table(const std::vector<TenantRunRow>& rows);

/// One Table I column: core allocation, data size, simulation time, and
/// modeled I/O read/write time through the OST model.
struct Table1Column {
  MachineConfig machine;
  GlobalGrid grid;
  double sim_step_seconds = 0.0;  // measured
  OstModel ost{};
};
std::string format_table1(const std::vector<Table1Column>& columns);

}  // namespace hia
