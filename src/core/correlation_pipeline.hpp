// Hybrid auto-/cross-correlative statistics — the paper's §VI future work
// ("we plan to develop a hybrid in-situ/in-transit auto-correlative
// statistical technique"), built from the same learn/derive split as the
// descriptive statistics: each rank learns a bivariate primary model
// between two variables in-situ (6 doubles), and the in-transit stage
// combines and derives covariance / Pearson correlation / a least-squares
// fit.
#pragma once

#include <mutex>

#include "analysis/stats/correlation.hpp"
#include "core/analysis.hpp"
#include "sim/species.hpp"

namespace hia {

class HybridCorrelation final : public HybridAnalysis {
 public:
  HybridCorrelation(Variable x, Variable y) : x_(x), y_(y) {}

  [[nodiscard]] std::string name() const override { return "corr-hybrid"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"corr.partial"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  [[nodiscard]] CorrelationModel latest_model() const;

 private:
  Variable x_, y_;
  mutable std::mutex mutex_;
  CorrelationModel latest_{};
};

/// `learn` of the bivariate model over the co-located owned regions of two
/// fields (no copies).
CovarianceAccumulator correlation_learn_fields(const Field& x,
                                               const Field& y);

}  // namespace hia
