#include "core/feature_stats_pipeline.hpp"

#include "analysis/topology/local_tree.hpp"
#include "sim/halo.hpp"

namespace hia {

void HybridFeatureStatistics::in_situ(InSituContext& ctx) {
  S3DRank& sim = ctx.sim();
  const GlobalGrid& grid = sim.params().grid;
  Field& field = sim.field(config_.field);
  Field& measure = sim.field(config_.measure);

  // Both fields need current +1 ghosts for the cross-face links.
  std::vector<Field*> fields{&field, &measure};
  exchange_halos(ctx.comm(), sim.decomp(), fields, /*ghost=*/1);

  double threshold = config_.threshold;
  if (!config_.threshold_steering_key.empty()) {
    // Rank 0 reads the board; the value is broadcast so every rank
    // segments with the same threshold even if a post lands mid-step.
    if (ctx.comm().rank() == 0) {
      threshold = ctx.steering().read_or(config_.threshold_steering_key,
                                         config_.threshold);
    }
    threshold = ctx.comm().broadcast_value(0, threshold);
  }

  const Box3 block = field.owned();
  const Box3 ext = extended_block(grid, block);
  const LocalFeatureData local = compute_local_features(
      grid, block, ext, field.pack(ext), measure.pack(ext), threshold);

  ctx.publish("fstats.partial", block, local.serialize());
}

void HybridFeatureStatistics::in_transit(TaskContext& ctx) {
  std::vector<LocalFeatureData> parts;
  parts.reserve(ctx.task().inputs.size());
  for (const DataDescriptor& desc : ctx.task().inputs) {
    parts.push_back(LocalFeatureData::deserialize(ctx.pull_doubles(desc)));
  }
  auto features = combine_features(parts);

  // Result blob: the top features' id, size, max, centroid, mean/stddev.
  std::vector<double> flat;
  const size_t top =
      std::min<size_t>(features.size(), static_cast<size_t>(config_.top_features));
  flat.push_back(static_cast<double>(features.size()));
  for (size_t f = 0; f < top; ++f) {
    const auto& feat = features[f];
    const auto model = derive_descriptive(feat.measure);
    flat.push_back(static_cast<double>(feat.id));
    flat.push_back(static_cast<double>(feat.voxels));
    flat.push_back(feat.max_value);
    flat.insert(flat.end(), {feat.centroid[0], feat.centroid[1],
                             feat.centroid[2], model.mean, model.stddev});
  }
  std::vector<std::byte> bytes(flat.size() * sizeof(double));
  std::memcpy(bytes.data(), flat.data(), bytes.size());
  ctx.set_result(std::move(bytes));

  std::lock_guard lock(mutex_);
  latest_ = std::move(features);
}

std::vector<GlobalFeature> HybridFeatureStatistics::latest_features() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

}  // namespace hia
