// Hybrid contingency statistics (ref [22]): each rank categorizes a
// variable pair over its block and builds a sparse joint-occurrence table
// in-situ; the in-transit stage adds the tables and derives the
// independence statistics (chi-squared, Cramér's V, mutual information).
// The intermediate data is the sparse table — bounded by bins², typically
// far below it — regardless of grid size.
#pragma once

#include <mutex>

#include "analysis/stats/contingency.hpp"
#include "core/analysis.hpp"
#include "sim/species.hpp"

namespace hia {

struct ContingencyConfig {
  Variable x = Variable::kTemperature;
  Variable y = Variable::kYH2O;
  double x_lo = 0.0, x_hi = 8.0;
  double y_lo = 0.0, y_hi = 1.0;
  int x_bins = 16, y_bins = 16;
};

class HybridContingency final : public HybridAnalysis {
 public:
  explicit HybridContingency(ContingencyConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "cont-hybrid"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"cont.partial"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  [[nodiscard]] ContingencyModel latest_model() const;
  /// The combined table itself (for marginals / deeper inspection).
  [[nodiscard]] std::optional<ContingencyTable> latest_table() const;

 private:
  ContingencyConfig config_;
  mutable std::mutex mutex_;
  ContingencyModel latest_{};
  std::optional<ContingencyTable> latest_table_;
};

}  // namespace hia
