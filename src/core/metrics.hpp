// Timing and data-volume ledger for a hybrid run: the numbers behind the
// paper's Table II and Fig. 6.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "staging/descriptor.hpp"

namespace hia {

/// End-of-run resilience ledger (all zeros on a fault-free run). The task
/// counts partition the submitted tasks: completed + degraded + deferred +
/// shed == everything that was ever submitted — no task is lost silently
/// (a deferred record is terminal; its payload re-enters as a new task).
struct ResilienceSummary {
  // Reaction side (what the pipeline did about the faults).
  uint64_t tasks_completed = 0;  // finished on a staging bucket
  uint64_t tasks_degraded = 0;   // fell back to the in-situ executor
  uint64_t tasks_shed = 0;       // dropped after K attempts (counted, loud)
  uint64_t tasks_deferred = 0;   // parked one step by the steering policy
  uint64_t task_retries = 0;     // extra task attempts across the run
  double backoff_seconds = 0.0;  // total retry backoff injected
  uint64_t frame_retransmits = 0;  // DART frames re-pulled (drop or CRC)
  uint64_t crc_failures = 0;       // corrupted frames caught by the CRC
  uint64_t recovered_bytes = 0;    // payload delivered after a retransmit
  // Injection side (what the fault plan actually did).
  uint64_t frames_dropped = 0;
  uint64_t frames_corrupted = 0;
  uint64_t frames_delayed = 0;
  double injected_delay_s = 0.0;  // modeled seconds of injected frame delay
  uint64_t tasks_failed = 0;      // injected task-attempt timeouts
  uint64_t worker_stalls = 0;
  uint64_t buckets_killed = 0;
  // Crash recovery (ungraceful loss: leases, epochs, replication).
  uint64_t buckets_crashed = 0;    // scripted ungraceful bucket deaths
  uint64_t servers_crashed = 0;    // scripted object-store server deaths
  uint64_t leases_expired = 0;     // reclaimed in-flight assignments
  uint64_t tasks_reexecuted = 0;   // reclaimed tasks requeued
  uint64_t zombies_fenced = 0;     // stale-epoch completions dropped
  uint64_t replicas_repaired = 0;  // copies re-inserted by read-repair
  uint64_t objects_lost = 0;       // objects whose last live copy died

  // ---- Overload control (nonzero only when --overload / --steer is on) ----
  uint64_t steer_in_transit = 0;      // steering verdicts, per submit point
  uint64_t steer_in_situ = 0;
  uint64_t steer_deferred = 0;
  uint64_t steer_shed = 0;
  uint64_t overload_diversions = 0;   // hard queue-budget diversions
  uint64_t admission_overdrafts = 0;  // waits that hit admit_max_wait_s
  double admission_wait_s = 0.0;      // producer seconds blocked at the gate
  size_t peak_queue_bytes = 0;        // high-water queued bytes (+ phantom)
  uint64_t overload_bytes_injected = 0;  // scripted phantom bytes
  uint64_t credits_starved = 0;          // scripted confiscated credits
  uint64_t tenant_hog_bytes = 0;         // scripted tenant-attributed bytes

  /// True when any fault fired or any recovery action ran.
  [[nodiscard]] bool any() const {
    return tasks_degraded || tasks_shed || tasks_deferred || task_retries ||
           frame_retransmits || crc_failures || frames_dropped ||
           frames_corrupted || frames_delayed || tasks_failed ||
           worker_stalls || buckets_killed || buckets_crashed ||
           servers_crashed || leases_expired || tasks_reexecuted ||
           zombies_fenced || replicas_repaired || objects_lost ||
           steer_in_situ || steer_deferred || steer_shed ||
           overload_diversions || admission_overdrafts ||
           overload_bytes_injected || credits_starved || tenant_hog_bytes;
  }
};

/// Per-tenant roll-up of a multi-tenant service run: the conservation,
/// fair-share, and isolation numbers the campaign service reports (one row
/// per tenant; see format_tenant_table).
struct TenantRunRow {
  int tenant = 0;
  std::string name;
  double weight = 1.0;
  // Conservation: completed + degraded + deferred + shed == submitted,
  // checked *per tenant* (the acceptance invariant of the service drill).
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t degraded = 0;
  uint64_t deferred = 0;
  uint64_t shed = 0;
  // Fair share: settled bucket occupancy and the observed vs. target
  // fraction of total bucket time.
  double bucket_seconds = 0.0;
  double share_observed = 0.0;  // bucket_seconds / sum over tenants
  double share_target = 0.0;    // weight / sum of weights
  // Isolation.
  double p99_turnaround_s = 0.0;  // over this tenant's terminal records
  uint64_t cap_diversions = 0;    // per-tenant queue-cap diversions
  uint64_t admission_overdrafts = 0;
  double admission_wait_s = 0.0;  // seconds this tenant blocked at the gate
  size_t store_peak_bytes = 0;    // high-water object-store residency
  uint64_t hog_bytes = 0;         // scripted tenant-hog bytes charged here
};

/// Per-(analysis, step) in-situ aggregates across ranks.
struct InSituMetric {
  std::string analysis;
  long step = 0;
  double max_rank_seconds = 0.0;   // slowest rank (the simulation waits on it)
  double mean_rank_seconds = 0.0;
  size_t published_bytes = 0;      // intermediate data shipped to staging
  size_t published_wire_bytes = 0;  // after the staging codec (== published
                                    // when publishing raw)
};

/// Full record of one hybrid run.
struct RunReport {
  long steps = 0;
  int sim_ranks = 0;
  std::string staging_codec;  // codec spec the run published through ("" = raw)

  std::vector<double> sim_step_seconds;      // max over ranks, per step
  std::vector<InSituMetric> in_situ;         // one per (analysis, step)
  std::vector<TaskRecord> in_transit;        // from the staging service
  ResilienceSummary resilience;              // all zeros on fault-free runs

  size_t solution_bytes_per_step = 0;        // 14 vars x 8 B x grid points

  [[nodiscard]] double total_sim_seconds() const {
    double t = 0.0;
    for (const double s : sim_step_seconds) t += s;
    return t;
  }
  [[nodiscard]] double mean_sim_step_seconds() const {
    return sim_step_seconds.empty()
               ? 0.0
               : total_sim_seconds() /
                     static_cast<double>(sim_step_seconds.size());
  }

  /// Mean per-invocation in-situ seconds for one analysis (max-over-ranks,
  /// averaged over steps).
  [[nodiscard]] double mean_in_situ_seconds(const std::string& analysis) const;

  /// Mean published intermediate-data bytes per invocation.
  [[nodiscard]] double mean_published_bytes(const std::string& analysis) const;

  /// Mean in-transit compute / data-movement seconds per task.
  [[nodiscard]] double mean_in_transit_seconds(
      const std::string& analysis) const;
  [[nodiscard]] double mean_movement_seconds(
      const std::string& analysis) const;
  /// Mean wire bytes pulled per task (post-codec).
  [[nodiscard]] double mean_movement_bytes(const std::string& analysis) const;
  /// Mean logical bytes pulled per task (pre-codec).
  [[nodiscard]] double mean_movement_raw_bytes(
      const std::string& analysis) const;
  /// Mean bucket-side codec decode seconds per task.
  [[nodiscard]] double mean_decode_seconds(const std::string& analysis) const;
  /// raw / wire over this analysis's pulls (1.0 when publishing raw or when
  /// nothing moved).
  [[nodiscard]] double compression_ratio(const std::string& analysis) const;
};

}  // namespace hia
