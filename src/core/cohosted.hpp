// Co-hosted helper core — the paper's §VI closing plan: "to address more
// complex application scenarios, we aim to introduce alternative staging
// techniques that utilize a separate process co-hosted on the application
// node that executes asynchronously with the application" (the functional-
// partitioning model of FP [7] and CoDS [8] in §II).
//
// A CoHostedHelper is a dedicated worker thread on the application node.
// The simulation hands it closures (an analysis stage, a publish, a
// checkpoint) and continues immediately; the helper executes them in FIFO
// order, off the simulation's critical path but on the same node — the
// middle ground between synchronous in-situ and remote in-transit.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "util/stopwatch.hpp"

namespace hia {

class CoHostedHelper {
 public:
  CoHostedHelper();
  ~CoHostedHelper();  // drains, then joins

  CoHostedHelper(const CoHostedHelper&) = delete;
  CoHostedHelper& operator=(const CoHostedHelper&) = delete;

  /// Enqueues work and returns immediately (the hand-off is the only cost
  /// on the application's critical path).
  void submit(std::function<void()> work);

  /// Blocks until every submitted closure has completed.
  void drain();

  [[nodiscard]] size_t completed() const;
  /// Total seconds the helper spent executing closures (work that would
  /// otherwise have blocked the simulation).
  [[nodiscard]] double busy_seconds() const;

 private:
  void loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable drain_cv_;
  std::deque<std::function<void()>> queue_;
  size_t completed_ = 0;
  double busy_seconds_ = 0.0;
  bool running_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace hia
