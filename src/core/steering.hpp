// Computational steering — one of the concurrent-analysis advantages the
// paper names (§V: "there are several advantages to a concurrent approach,
// including computational steering, on-the-fly visualization, and feature
// tracking").
//
// A SteeringBoard is a thread-safe, versioned key→value parameter store.
// In-transit stages (or an interactive operator) post updates; the
// simulation side polls at step boundaries and applies what changed. The
// board is deliberately simple — doubles keyed by strings — matching the
// knob-turning use cases (analysis thresholds, output cadence, transfer-
// function ranges) of SCIRun-style runtime tracking.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace hia {

class SteeringBoard {
 public:
  /// Posts (or overwrites) a parameter; bumps the board version.
  void post(const std::string& key, double value) {
    std::lock_guard lock(mutex_);
    values_[key] = value;
    ++version_;
  }

  /// Latest value of a parameter, if ever posted.
  [[nodiscard]] std::optional<double> read(const std::string& key) const {
    std::lock_guard lock(mutex_);
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  /// read() with a fallback default.
  [[nodiscard]] double read_or(const std::string& key,
                               double fallback) const {
    return read(key).value_or(fallback);
  }

  /// Monotone version counter; a reader that caches it can skip polling
  /// individual keys when nothing has changed.
  [[nodiscard]] uint64_t version() const {
    std::lock_guard lock(mutex_);
    return version_;
  }

  /// Snapshot of all parameters (diagnostics / checkpointing).
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot() const {
    std::lock_guard lock(mutex_);
    return {values_.begin(), values_.end()};
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> values_;
  uint64_t version_ = 0;
};

}  // namespace hia
