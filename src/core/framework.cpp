#include "core/framework.hpp"

#include <cstdio>
#include <mutex>

#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace hia {

HybridRunner::HybridRunner(RunConfig config)
    : config_(config), network_(config.network) {
  dart_ = std::make_unique<Dart>(network_, config.dart);
  staging_ = std::make_unique<StagingService>(
      *dart_, StagingService::Options{config.staging_servers,
                                      config.staging_buckets});
  if (!config_.staging_codec.empty()) {
    codec_ = make_codec(config_.staging_codec);
  }
}

HybridRunner::~HybridRunner() = default;

void HybridRunner::add_analysis(std::shared_ptr<HybridAnalysis> analysis,
                                int frequency) {
  HIA_REQUIRE(analysis != nullptr, "null analysis");
  HIA_REQUIRE(frequency >= 1, "frequency must be >= 1");
  HIA_REQUIRE(!ran_, "cannot add analyses after run()");

  // Register the in-transit handler if the analysis stages data.
  if (!analysis->staged_variables().empty()) {
    std::shared_ptr<HybridAnalysis> a = analysis;
    staging_->register_handler(
        a->name(), [a](TaskContext& ctx) { a->in_transit(ctx); });
  }
  analyses_.push_back(Scheduled{std::move(analysis), frequency});
}

RunReport HybridRunner::run() {
  HIA_REQUIRE(!ran_, "run() may be called once");
  ran_ = true;

  const int nranks = config_.sim.ranks_per_axis[0] *
                     config_.sim.ranks_per_axis[1] *
                     config_.sim.ranks_per_axis[2];

  RunReport report;
  report.steps = config_.steps;
  report.sim_ranks = nranks;
  report.staging_codec = config_.staging_codec;
  report.solution_bytes_per_step =
      static_cast<size_t>(config_.sim.grid.num_points()) * kNumVariables *
      sizeof(double);

  std::mutex report_mutex;  // only rank 0 writes, but keep it safe

  World world(nranks);
  world.run([&](Comm& comm) {
    const int r = comm.rank();
    obs::set_thread_track(obs::rank_track(r));
    const int dart_node =
        dart_->register_node("sim-" + std::to_string(r));

    S3DRank sim(config_.sim, r);
    sim.initialize();

    for (long step = 0; step < config_.steps; ++step) {
      // 1. Advance the simulation (collective: halo exchanges inside).
      sim.advance(comm);
      const double sim_max = comm.allreduce_max(sim.last_step_seconds());
      if (r == 0) {
        std::lock_guard lock(report_mutex);
        report.sim_step_seconds.push_back(sim_max);
      }

      // 2. In-situ stages, in registration order on every rank.
      for (const Scheduled& sched : analyses_) {
        if (sim.step() % sched.frequency != 0) continue;

        InSituContext ctx(sim, comm, *staging_, steering_, dart_node,
                          sim.step(), codec_.get());
        Stopwatch watch;
        {
          char span_name[obs::Event::kNameCapacity];
          std::snprintf(span_name, sizeof(span_name), "insitu:%s",
                        sched.analysis->name().c_str());
          obs::Span insitu_span("insitu", span_name,
                                {.rank = r,
                                 .step = sim.step(),
                                 .vtime = sim.time()});
          sched.analysis->in_situ(ctx);
        }
        const double seconds = watch.seconds();

        const double max_s = comm.allreduce_max(seconds);
        const double sum_s = comm.allreduce_sum(seconds);
        const double bytes = comm.allreduce_sum(
            static_cast<double>(ctx.published_bytes()));
        const double wire_bytes = comm.allreduce_sum(
            static_cast<double>(ctx.published_wire_bytes()));

        // 3. Data-ready: rank 0 creates the in-transit task.
        const auto staged = sched.analysis->staged_variables();
        if (r == 0) {
          if (!staged.empty()) {
            staging_->submit_for(sched.analysis->name(), sim.step(), staged);
          }
          std::lock_guard lock(report_mutex);
          report.in_situ.push_back(InSituMetric{
              sched.analysis->name(), sim.step(), max_s,
              sum_s / static_cast<double>(comm.size()),
              static_cast<size_t>(bytes), static_cast<size_t>(wire_bytes)});
        }
        // Publishing must complete on all ranks before the task pulls; the
        // allreduce above already provides that synchronization.
      }
    }
    comm.barrier();
    dart_->unregister_node(dart_node);
  });

  // Wait for the staging pipeline to finish outstanding analyses.
  staging_->drain();
  report.in_transit = staging_->records();

  HIA_LOG_INFO("framework",
               "run complete: %ld steps, %d ranks, %zu in-transit tasks",
               report.steps, report.sim_ranks, report.in_transit.size());
  return report;
}

}  // namespace hia
