#include "core/framework.hpp"

#include <cstdio>
#include <mutex>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/fault.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace hia {

HybridRunner::HybridRunner(RunConfig config)
    : config_(config), network_(config.network) {
  if (!config_.faults.empty()) {
    FaultPlanConfig plan = FaultPlan::parse_spec(config_.faults);
    if (config_.fault_seed != 0) plan.seed = config_.fault_seed;
    faults_ = std::make_unique<FaultPlan>(plan);
    config_.dart.faults = faults_.get();
    // The thread pools inside analysis kernels are created ad hoc, so the
    // plan reaches them through the process-wide hook.
    install_worker_faults(faults_.get());
  }
  if (!config_.overload.empty()) {
    OverloadConfig ocfg = OverloadConfig::parse_spec(config_.overload);
    HIA_REQUIRE(ocfg.enabled(),
                "--overload spec sets no budget and no credits: " +
                    config_.overload);
    owned_overload_ = std::make_unique<OverloadControl>(ocfg);
    config_.dart.overload = owned_overload_.get();
  }
  overload_ = owned_overload_.get();
  steer_ = parse_steer_policy(config_.steer);
  owned_dart_ = std::make_unique<Dart>(network_, config_.dart);
  dart_ = owned_dart_.get();
  owned_staging_ = std::make_unique<StagingService>(
      *dart_, StagingService::Options{config_.staging_servers,
                                      config_.staging_buckets,
                                      faults_.get(), overload_,
                                      config_.staging_replicas});
  staging_ = owned_staging_.get();
  if (!config_.staging_codec.empty()) {
    codec_ = make_codec(config_.staging_codec);
  }
}

HybridRunner::HybridRunner(RunConfig config, const SharedStagingEnv& env)
    : config_(std::move(config)), network_(config_.network) {
  HIA_REQUIRE(env.dart != nullptr && env.staging != nullptr,
              "shared-mode runner needs a Dart and a StagingService");
  HIA_REQUIRE(config_.faults.empty() && config_.overload.empty(),
              "shared-mode runner: faults/overload belong to the service");
  shared_ = true;
  tenant_ = env.tenant;
  ns_prefix_ = env.ns_prefix;
  dart_ = env.dart;
  staging_ = env.staging;
  overload_ = env.overload;
  steer_ = parse_steer_policy(config_.steer);
  if (!config_.staging_codec.empty()) {
    codec_ = make_codec(config_.staging_codec);
  }
}

HybridRunner::~HybridRunner() {
  // Staging buckets may still touch the plan until destroyed; tear down in
  // reverse dependency order before releasing it. (Shared mode owns none
  // of these — the resets are no-ops and the service tears its own down.)
  owned_staging_.reset();
  owned_dart_.reset();
  if (faults_ != nullptr) install_worker_faults(nullptr);
}

void HybridRunner::add_analysis(std::shared_ptr<HybridAnalysis> analysis,
                                int frequency) {
  HIA_REQUIRE(analysis != nullptr, "null analysis");
  HIA_REQUIRE(frequency >= 1, "frequency must be >= 1");
  HIA_REQUIRE(!ran_, "cannot add analyses after run()");

  // Register the in-transit handler if the analysis stages data. In shared
  // mode the handler key carries the tenant's namespace prefix, so two
  // tenants running the same analysis never collide.
  if (!analysis->staged_variables().empty()) {
    std::shared_ptr<HybridAnalysis> a = analysis;
    staging_->register_handler(
        ns_prefix_ + a->name(), [a](TaskContext& ctx) { a->in_transit(ctx); });
  }
  analyses_.push_back(Scheduled{std::move(analysis), frequency});
}

RunReport HybridRunner::run() {
  HIA_REQUIRE(!ran_, "run() may be called once");
  ran_ = true;

  const int nranks = config_.sim.ranks_per_axis[0] *
                     config_.sim.ranks_per_axis[1] *
                     config_.sim.ranks_per_axis[2];

  RunReport report;
  report.steps = config_.steps;
  report.sim_ranks = nranks;
  report.staging_codec = config_.staging_codec;
  report.solution_bytes_per_step =
      static_cast<size_t>(config_.sim.grid.num_points()) * kNumVariables *
      sizeof(double);

  std::mutex report_mutex;  // only rank 0 writes, but keep it safe

  // ---- Steering state (touched only by the rank-0 thread inside the
  // world, then read by this thread after the join) ----
  struct Parked {
    std::string analysis;
    long step = 0;  // original step: the staged inputs live under this key
    std::vector<std::string> staged;
    int defers = 0;  // step boundaries already crossed
  };
  std::vector<Parked> parked;
  uint64_t steer_in_transit = 0, steer_in_situ = 0, steer_deferred = 0,
           steer_shed = 0;
  const bool steering_active =
      steer_ != SteerPolicy::kInTransit || overload_ != nullptr;
  const int max_defers =
      overload_ != nullptr ? overload_->config().max_defers : 1;

  // Routes one in-transit submission through the steering table. Deferring
  // writes a terminal kDeferred record and parks the payload (the staged
  // inputs stay in the store) for re-decision at the next step boundary.
  auto steer_submit = [&](const std::string& analysis, long step,
                          const std::vector<std::string>& staged,
                          int defers) {
    static obs::Counter& c_transit = obs::counter("steer_in_transit");
    static obs::Counter& c_insitu = obs::counter("steer_in_situ");
    static obs::Counter& c_defer = obs::counter("steer_deferred");
    static obs::Counter& c_shed = obs::counter("steer_shed");
    // Labeled variant: per-tenant steering mix for the campaign console.
    auto labeled = [this](const char* name) -> obs::Counter* {
      return tenant_ > 0 ? &obs::counter(name, {.tenant = tenant_}) : nullptr;
    };
    const PressureSignal pressure = staging_->pressure();
    switch (steer_decide(steer_, pressure, defers, max_defers)) {
      case SteerDecision::kInTransit:
        ++steer_in_transit;
        c_transit.add(1);
        if (auto* c = labeled("steer_in_transit")) c->add(1);
        staging_->submit_for(analysis, step, staged, SubmitRoute::kQueue,
                             tenant_);
        break;
      case SteerDecision::kInSitu:
        ++steer_in_situ;
        c_insitu.add(1);
        if (auto* c = labeled("steer_in_situ")) c->add(1);
        obs::instant("overload", "steer_in_situ", {.step = step});
        staging_->submit_for(analysis, step, staged, SubmitRoute::kFallback,
                             tenant_);
        break;
      case SteerDecision::kShed:
        ++steer_shed;
        c_shed.add(1);
        if (auto* c = labeled("steer_shed")) c->add(1);
        obs::instant("overload", "steer_shed", {.step = step});
        staging_->submit_for(analysis, step, staged, SubmitRoute::kShed,
                             tenant_);
        break;
      case SteerDecision::kDefer:
        ++steer_deferred;
        c_defer.add(1);
        if (auto* c = labeled("steer_deferred")) c->add(1);
        staging_->record_deferred(analysis, step, tenant_);
        parked.push_back(Parked{analysis, step, staged, defers + 1});
        break;
    }
  };

  World world(nranks);
  world.run([&](Comm& comm) {
    const int r = comm.rank();
    obs::set_thread_track(obs::rank_track(r));
    const int dart_node =
        dart_->register_node(ns_prefix_ + "sim-" + std::to_string(r));

    S3DRank sim(config_.sim, r);
    sim.initialize();

    for (long step = 0; step < config_.steps; ++step) {
      // 1. Advance the simulation (collective: halo exchanges inside).
      sim.advance(comm);
      const double sim_max = comm.allreduce_max(sim.last_step_seconds());
      if (r == 0) {
        std::lock_guard lock(report_mutex);
        report.sim_step_seconds.push_back(sim_max);
      }

      // Step boundary: deferred tasks from earlier steps get a fresh
      // steering verdict against the current pressure (rank 0 only).
      if (r == 0 && !parked.empty()) {
        std::vector<Parked> due;
        due.swap(parked);
        for (const Parked& p : due) {
          steer_submit(p.analysis, p.step, p.staged, p.defers);
        }
      }

      // 2. In-situ stages, in registration order on every rank.
      for (const Scheduled& sched : analyses_) {
        if (sim.step() % sched.frequency != 0) continue;

        InSituContext ctx(sim, comm, *staging_, steering_, dart_node,
                          sim.step(), codec_.get(), tenant_, ns_prefix_);
        Stopwatch watch;
        {
          char span_name[obs::Event::kNameCapacity];
          std::snprintf(span_name, sizeof(span_name), "insitu:%s",
                        sched.analysis->name().c_str());
          obs::Span insitu_span("insitu", span_name,
                                {.rank = r,
                                 .step = sim.step(),
                                 .vtime = sim.time()});
          sched.analysis->in_situ(ctx);
        }
        const double seconds = watch.seconds();

        const double max_s = comm.allreduce_max(seconds);
        const double sum_s = comm.allreduce_sum(seconds);
        const double bytes = comm.allreduce_sum(
            static_cast<double>(ctx.published_bytes()));
        const double wire_bytes = comm.allreduce_sum(
            static_cast<double>(ctx.published_wire_bytes()));

        // 3. Data-ready: rank 0 creates the in-transit task. Names travel
        // prefixed: the blocks were published under ns_prefix_ and the
        // handler was registered under the prefixed analysis name.
        auto staged = sched.analysis->staged_variables();
        for (std::string& v : staged) v = ns_prefix_ + v;
        if (r == 0) {
          if (!staged.empty()) {
            if (steering_active) {
              steer_submit(ns_prefix_ + sched.analysis->name(), sim.step(),
                           staged, 0);
            } else {
              // Steering off: byte-identical to the PR-4 submit path.
              staging_->submit_for(ns_prefix_ + sched.analysis->name(),
                                   sim.step(), staged, SubmitRoute::kQueue,
                                   tenant_);
            }
          }
          std::lock_guard lock(report_mutex);
          report.in_situ.push_back(InSituMetric{
              sched.analysis->name(), sim.step(), max_s,
              sum_s / static_cast<double>(comm.size()),
              static_cast<size_t>(bytes), static_cast<size_t>(wire_bytes)});
        }
        // Publishing must complete on all ranks before the task pulls; the
        // allreduce above already provides that synchronization.
      }
    }
    comm.barrier();
    dart_->unregister_node(dart_node);
  });

  // The campaign is over: anything still parked is past every deadline and
  // must execute now. Forcing defers to max_defers makes kDefer impossible
  // in the steering table, so this loop cannot re-park.
  if (!parked.empty()) {
    std::vector<Parked> due;
    due.swap(parked);
    for (const Parked& p : due) {
      steer_submit(p.analysis, p.step, p.staged, max_defers);
    }
    HIA_ASSERT(parked.empty());
  }

  // Wait for the staging pipeline to finish outstanding analyses. A shared
  // runner drains (and reports) only its own tenant's tasks — the service
  // and the other tenants keep going.
  if (shared_) {
    staging_->drain_tenant(tenant_);
    for (TaskRecord rec : staging_->records()) {
      if (rec.tenant != tenant_) continue;
      if (rec.analysis.compare(0, ns_prefix_.size(), ns_prefix_) == 0) {
        rec.analysis.erase(0, ns_prefix_.size());
      }
      report.in_transit.push_back(std::move(rec));
    }
  } else {
    staging_->drain();
    report.in_transit = staging_->records();
  }

  // Assemble the resilience ledger: reaction side from the task records and
  // transport counters, injection side from the plan's own tally.
  ResilienceSummary& res = report.resilience;
  for (const TaskRecord& rec : report.in_transit) {
    switch (rec.outcome) {
      case TaskOutcome::kCompleted: ++res.tasks_completed; break;
      case TaskOutcome::kDegraded: ++res.tasks_degraded; break;
      case TaskOutcome::kShed: ++res.tasks_shed; break;
      case TaskOutcome::kDeferred: ++res.tasks_deferred; break;
    }
    res.task_retries += static_cast<uint64_t>(rec.attempts - 1);
    res.backoff_seconds += rec.backoff_seconds;
  }
  if (!shared_) {
    // Transport counters are service-global; in shared mode they mix every
    // tenant's traffic, so only the owning (single-campaign) runner reports
    // them.
    const DartCounters dart_counters = dart_->counters();
    res.frame_retransmits = dart_counters.get_retries;
    res.crc_failures = dart_counters.crc_failures;
    res.recovered_bytes = dart_counters.recovered_bytes;
  }
  if (steering_active) {
    res.steer_in_transit = steer_in_transit;
    res.steer_in_situ = steer_in_situ;
    res.steer_deferred = steer_deferred;
    res.steer_shed = steer_shed;
  }
  if (overload_ != nullptr && !shared_) {
    const OverloadControl::Stats ostats = overload_->stats();
    res.admission_overdrafts = ostats.admission_overdrafts;
    res.admission_wait_s = ostats.admission_wait_s;
    res.peak_queue_bytes = ostats.peak_queue_bytes;
    res.overload_diversions = staging_->overload_diversions();
  } else if (overload_ != nullptr) {
    // Shared mode: this tenant's slice of the admission ledger.
    const OverloadControl::TenantStats tstats =
        overload_->tenant_stats(tenant_);
    res.admission_overdrafts = tstats.overdrafts;
    res.admission_wait_s = tstats.wait_s;
  }
  if (faults_ != nullptr) {
    const FaultStats stats = faults_->stats();
    res.frames_dropped = stats.frames_dropped;
    res.frames_corrupted = stats.frames_corrupted;
    res.frames_delayed = stats.frames_delayed;
    res.injected_delay_s = stats.injected_delay_s;
    res.tasks_failed = stats.tasks_failed;
    res.worker_stalls = stats.worker_stalls;
    res.buckets_killed = stats.buckets_killed;
    res.buckets_crashed = stats.buckets_crashed;
    res.servers_crashed = stats.servers_crashed;
    res.leases_expired = staging_->leases_expired();
    res.tasks_reexecuted = staging_->tasks_reexecuted();
    res.zombies_fenced = staging_->zombies_fenced();
    res.replicas_repaired = staging_->store().replicas_repaired();
    res.objects_lost = staging_->store().objects_lost();
    res.overload_bytes_injected = stats.overload_bytes_injected;
    res.credits_starved = stats.credits_starved;
    HIA_LOG_INFO("framework",
                 "resilience: %llu retries, %llu degraded, %llu shed, "
                 "%llu frame retransmits",
                 static_cast<unsigned long long>(res.task_retries),
                 static_cast<unsigned long long>(res.tasks_degraded),
                 static_cast<unsigned long long>(res.tasks_shed),
                 static_cast<unsigned long long>(res.frame_retransmits));
  }

  HIA_LOG_INFO("framework",
               "run complete: %ld steps, %d ranks, %zu in-transit tasks",
               report.steps, report.sim_ranks, report.in_transit.size());
  return report;
}

}  // namespace hia
