#include "core/timeseries_pipeline.hpp"

#include <cstring>

#include "util/error.hpp"

namespace hia {

void TimeSeriesAutocorrelation::in_situ(InSituContext& ctx) {
  const Field& field = ctx.sim().field(config_.variable);
  double sum = 0.0;
  const Box3& box = field.owned();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k)
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j)
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) sum += field.at(i, j, k);

  const double global_sum = ctx.comm().allreduce_sum(sum);
  // One rank publishes the probe; the payload is 2 doubles.
  if (ctx.comm().rank() == 0) {
    const double count =
        static_cast<double>(ctx.sim().params().grid.num_points());
    ctx.publish("tseries.probe", box, {global_sum / count, count});
  }
}

void TimeSeriesAutocorrelation::in_transit(TaskContext& ctx) {
  HIA_REQUIRE(ctx.task().inputs.size() == 1,
              "time-series probe expects one block per step");
  const auto probe = ctx.pull_doubles(ctx.task().inputs[0]);
  HIA_REQUIRE(probe.size() == 2, "malformed probe payload");

  std::lock_guard lock(mutex_);
  mean_by_step_[ctx.task().step] = probe[0];

  // Result blob: the autocorrelations computable so far.
  std::vector<double> flat;
  std::vector<double> s;
  s.reserve(mean_by_step_.size());
  for (const auto& [step, mean] : mean_by_step_) s.push_back(mean);
  for (const size_t lag : config_.lags) {
    if (lag + 1 < s.size()) {
      flat.push_back(static_cast<double>(lag));
      flat.push_back(autocorrelation(s, lag).pearson_r);
    }
  }
  std::vector<std::byte> bytes(flat.size() * sizeof(double));
  if (!bytes.empty()) std::memcpy(bytes.data(), flat.data(), bytes.size());
  ctx.set_result(std::move(bytes));
}

std::vector<double> TimeSeriesAutocorrelation::series() const {
  std::lock_guard lock(mutex_);
  std::vector<double> out;
  out.reserve(mean_by_step_.size());
  for (const auto& [step, mean] : mean_by_step_) out.push_back(mean);
  return out;
}

std::vector<std::pair<size_t, double>>
TimeSeriesAutocorrelation::autocorrelations() const {
  const auto s = series();
  std::vector<std::pair<size_t, double>> out;
  for (const size_t lag : config_.lags) {
    if (lag + 1 < s.size()) {
      out.emplace_back(lag, autocorrelation(s, lag).pearson_r);
    }
  }
  return out;
}

}  // namespace hia
