#include "core/stats_pipeline.hpp"

#include <cstring>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"

namespace hia {

std::vector<Variable> all_variables() {
  std::vector<Variable> out;
  out.reserve(kNumVariables);
  for (int v = 0; v < kNumVariables; ++v) {
    out.push_back(static_cast<Variable>(v));
  }
  return out;
}

MomentAccumulator learn_field(const Field& field) {
  MomentAccumulator acc;
  const Box3& box = field.owned();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
        acc.update(field.at(i, j, k));
      }
    }
  }
  return acc;
}

std::vector<double> pack_accumulators(
    const std::vector<MomentAccumulator>& accs) {
  std::vector<double> out(accs.size() * MomentAccumulator::kPackedSize);
  for (size_t v = 0; v < accs.size(); ++v) {
    accs[v].pack(&out[v * MomentAccumulator::kPackedSize]);
  }
  return out;
}

std::vector<MomentAccumulator> unpack_accumulators(
    std::span<const double> packed) {
  HIA_REQUIRE(packed.size() % MomentAccumulator::kPackedSize == 0,
              "packed accumulator size mismatch");
  std::vector<MomentAccumulator> out(packed.size() /
                                     MomentAccumulator::kPackedSize);
  for (size_t v = 0; v < out.size(); ++v) {
    out[v] = MomentAccumulator::unpack(
        &packed[v * MomentAccumulator::kPackedSize]);
  }
  return out;
}

std::vector<std::byte> serialize_models(
    const std::vector<DescriptiveModel>& models) {
  std::vector<double> flat;
  flat.reserve(models.size() * 8);
  for (const DescriptiveModel& m : models) {
    flat.push_back(static_cast<double>(m.count));
    flat.push_back(m.mean);
    flat.push_back(m.min);
    flat.push_back(m.max);
    flat.push_back(m.variance);
    flat.push_back(m.stddev);
    flat.push_back(m.skewness);
    flat.push_back(m.kurtosis_excess);
  }
  std::vector<std::byte> out(flat.size() * sizeof(double));
  std::memcpy(out.data(), flat.data(), out.size());
  return out;
}

std::vector<DescriptiveModel> deserialize_models(
    std::span<const std::byte> bytes) {
  HIA_REQUIRE(bytes.size() % (8 * sizeof(double)) == 0,
              "model blob size mismatch");
  std::vector<double> flat(bytes.size() / sizeof(double));
  std::memcpy(flat.data(), bytes.data(), bytes.size());
  std::vector<DescriptiveModel> out(flat.size() / 8);
  for (size_t i = 0; i < out.size(); ++i) {
    DescriptiveModel& m = out[i];
    const double* p = &flat[i * 8];
    m.count = round_to<uint64_t>(p[0]);
    m.mean = p[1];
    m.min = p[2];
    m.max = p[3];
    m.variance = p[4];
    m.stddev = p[5];
    m.skewness = p[6];
    m.kurtosis_excess = p[7];
  }
  return out;
}

namespace {
/// Element-wise combine of packed accumulator vectors (reduction operator
/// for the in-situ all-reduce).
void combine_packed(std::span<double> acc, std::span<const double> in) {
  constexpr int kSize = MomentAccumulator::kPackedSize;
  HIA_ASSERT(acc.size() == in.size() && acc.size() % kSize == 0);
  for (size_t v = 0; v < acc.size() / kSize; ++v) {
    MomentAccumulator a = MomentAccumulator::unpack(&acc[v * kSize]);
    const MomentAccumulator b = MomentAccumulator::unpack(&in[v * kSize]);
    a.combine(b);
    a.pack(&acc[v * kSize]);
  }
}
}  // namespace

// ------------------------------------------------------ InSituStatistics --

void InSituStatistics::in_situ(InSituContext& ctx) {
  // learn: per-rank primary models for every variable.
  std::vector<MomentAccumulator> locals;
  locals.reserve(variables_.size());
  {
    obs::Span learn_span("insitu", "stats.learn",
                         {.rank = ctx.comm().rank(), .step = ctx.step()});
    for (const Variable v : variables_) {
      locals.push_back(learn_field(ctx.sim().field(v)));
    }
  }

  // learn epilogue: all-to-all combination so every rank has the global
  // primary model (the only communicating stage, by design).
  const auto packed = pack_accumulators(locals);
  const auto global_packed = ctx.comm().allreduce(packed, combine_packed);
  const auto global = unpack_accumulators(global_packed);

  // derive: every rank derives the detailed model locally.
  obs::Span derive_span("insitu", "stats.derive",
                        {.rank = ctx.comm().rank(), .step = ctx.step()});
  std::vector<DescriptiveModel> models;
  models.reserve(global.size());
  for (const MomentAccumulator& acc : global) {
    models.push_back(derive_descriptive(acc));
  }

  if (ctx.comm().rank() == 0) {
    std::lock_guard lock(mutex_);
    latest_ = std::move(models);
  }
}

std::vector<DescriptiveModel> InSituStatistics::latest_models() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

// ----------------------------------------------------- HybridStatistics --

void HybridStatistics::in_situ(InSituContext& ctx) {
  // learn in-situ; publish the packed primary model (a few hundred bytes
  // per rank, vs. the megabytes of raw data it summarizes).
  std::vector<MomentAccumulator> locals;
  locals.reserve(variables_.size());
  for (const Variable v : variables_) {
    locals.push_back(learn_field(ctx.sim().field(v)));
  }
  ctx.publish("stats.partial", ctx.sim().field(variables_.front()).owned(),
              pack_accumulators(locals));
}

void HybridStatistics::in_transit(TaskContext& ctx) {
  // Aggregate all partial models (serial), then derive.
  obs::Span agg_span("intransit", "stats.aggregate",
                     {.bucket = ctx.bucket(), .step = ctx.task().step});
  std::vector<MomentAccumulator> global;
  for (const DataDescriptor& desc : ctx.task().inputs) {
    const auto packed = ctx.pull_doubles(desc);
    const auto partial = unpack_accumulators(packed);
    if (global.empty()) {
      global = partial;
    } else {
      HIA_REQUIRE(partial.size() == global.size(),
                  "inconsistent variable counts across ranks");
      for (size_t v = 0; v < global.size(); ++v) {
        global[v].combine(partial[v]);
      }
    }
  }

  std::vector<DescriptiveModel> models;
  models.reserve(global.size());
  for (const MomentAccumulator& acc : global) {
    models.push_back(derive_descriptive(acc));
  }

  ctx.set_result(serialize_models(models));
  std::lock_guard lock(mutex_);
  latest_ = std::move(models);
}

std::vector<DescriptiveModel> HybridStatistics::latest_models() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

// --------------------------------------------------- InTransitStatistics --

void InTransitStatistics::in_situ(InSituContext& ctx) {
  // Pure in-transit: publish the raw owned block (no reduction at all).
  const Field& f = ctx.sim().field(variable_);
  ctx.publish("stats.raw", f.owned(), f.pack_owned());
}

void InTransitStatistics::in_transit(TaskContext& ctx) {
  MomentAccumulator acc;
  for (const DataDescriptor& desc : ctx.task().inputs) {
    const auto values = ctx.pull_doubles(desc);
    for (const double x : values) acc.update(x);
  }
  const DescriptiveModel model = derive_descriptive(acc);
  ctx.set_result(serialize_models({model}));
  std::lock_guard lock(mutex_);
  latest_ = model;
}

DescriptiveModel InTransitStatistics::latest_model() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

}  // namespace hia
