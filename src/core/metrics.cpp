#include "core/metrics.hpp"

namespace hia {

namespace {
template <typename Items, typename Pred, typename Get>
double mean_over(const Items& items, Pred pred, Get get) {
  double sum = 0.0;
  long count = 0;
  for (const auto& item : items) {
    if (!pred(item)) continue;
    sum += get(item);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}
}  // namespace

double RunReport::mean_in_situ_seconds(const std::string& analysis) const {
  return mean_over(
      in_situ, [&](const InSituMetric& m) { return m.analysis == analysis; },
      [](const InSituMetric& m) { return m.max_rank_seconds; });
}

double RunReport::mean_published_bytes(const std::string& analysis) const {
  return mean_over(
      in_situ, [&](const InSituMetric& m) { return m.analysis == analysis; },
      [](const InSituMetric& m) { return static_cast<double>(m.published_bytes); });
}

double RunReport::mean_in_transit_seconds(const std::string& analysis) const {
  return mean_over(
      in_transit, [&](const TaskRecord& r) { return r.analysis == analysis; },
      [](const TaskRecord& r) { return r.compute_seconds; });
}

double RunReport::mean_movement_seconds(const std::string& analysis) const {
  return mean_over(
      in_transit, [&](const TaskRecord& r) { return r.analysis == analysis; },
      [](const TaskRecord& r) { return r.data_movement_seconds; });
}

double RunReport::mean_movement_bytes(const std::string& analysis) const {
  return mean_over(
      in_transit, [&](const TaskRecord& r) { return r.analysis == analysis; },
      [](const TaskRecord& r) { return static_cast<double>(r.data_movement_bytes); });
}

double RunReport::mean_movement_raw_bytes(const std::string& analysis) const {
  return mean_over(
      in_transit, [&](const TaskRecord& r) { return r.analysis == analysis; },
      [](const TaskRecord& r) {
        return static_cast<double>(r.data_movement_raw_bytes);
      });
}

double RunReport::mean_decode_seconds(const std::string& analysis) const {
  return mean_over(
      in_transit, [&](const TaskRecord& r) { return r.analysis == analysis; },
      [](const TaskRecord& r) { return r.decode_seconds; });
}

double RunReport::compression_ratio(const std::string& analysis) const {
  double raw = 0.0, wire = 0.0;
  for (const TaskRecord& r : in_transit) {
    if (r.analysis != analysis) continue;
    raw += static_cast<double>(r.data_movement_raw_bytes);
    wire += static_cast<double>(r.data_movement_bytes);
  }
  return wire == 0.0 ? 1.0 : raw / wire;
}

}  // namespace hia
