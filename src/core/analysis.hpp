// The analysis abstraction at the heart of the hybrid framework (paper
// §III): every analysis is decomposed into
//
//   * an in-situ stage — entirely data-parallel, runs on each simulation
//     rank against the native simulation data structures, may use the
//     simulation communicator for collectives (the fully in-situ variants)
//     or publish heavily reduced intermediate data to the staging area
//     (the hybrid variants);
//   * an in-transit stage — small-scale/serial, runs on a staging bucket,
//     pulls the published intermediate data and completes the computation.
//
// Fully in-situ analyses simply leave `staged_variables()` empty and do all
// their work (including communication) in the in-situ stage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/steering.hpp"
#include "runtime/comm.hpp"
#include "sim/s3d.hpp"
#include "staging/scheduler.hpp"

namespace hia {

/// Everything the in-situ stage of an analysis may touch on one rank.
class InSituContext {
 public:
  /// `tenant`/`ns_prefix` namespace this context inside a shared staging
  /// service (multi-tenant campaigns): every published variable is stored
  /// under `ns_prefix + variable` and charged to `tenant`'s ledgers. The
  /// defaults reproduce the single-campaign behavior exactly.
  InSituContext(S3DRank& sim, Comm& comm, StagingService& staging,
                SteeringBoard& steering, int dart_node, long step,
                const Codec* codec = nullptr, int tenant = 0,
                std::string ns_prefix = {})
      : sim_(sim),
        comm_(comm),
        staging_(staging),
        steering_(steering),
        dart_node_(dart_node),
        step_(step),
        codec_(codec),
        tenant_(tenant),
        ns_prefix_(std::move(ns_prefix)) {}

  /// Native simulation data structures, shared with the solver.
  [[nodiscard]] S3DRank& sim() { return sim_; }
  /// The simulation communicator (for the fully in-situ collectives).
  [[nodiscard]] Comm& comm() { return comm_; }
  [[nodiscard]] int dart_node() const { return dart_node_; }
  [[nodiscard]] long step() const { return step_; }

  /// Publishes an intermediate data block to the staging area (data-ready
  /// path) and accounts its size toward this rank's published volume.
  /// Blocks travel through the run's staging codec (if any): the logical
  /// size counts toward published_bytes(), what actually crosses the wire
  /// toward published_wire_bytes().
  DataDescriptor publish(const std::string& variable, const Box3& box,
                         const std::vector<double>& data) {
    published_bytes_ += data.size() * sizeof(double);
    DataDescriptor desc = staging_.publish(dart_node_, ns_prefix_ + variable,
                                           step_, box, data, codec_, tenant_);
    published_wire_bytes_ += desc.handle.bytes;
    return desc;
  }

  /// Bytes published through this context (per rank, per invocation).
  [[nodiscard]] size_t published_bytes() const { return published_bytes_; }
  /// Post-encoding bytes actually exposed for RDMA pulls.
  [[nodiscard]] size_t published_wire_bytes() const {
    return published_wire_bytes_;
  }
  /// The run's staging codec, or nullptr when publishing raw.
  [[nodiscard]] const Codec* codec() const { return codec_; }

  /// The run's steering board: in-transit stages (or an operator) post
  /// parameter updates; in-situ stages read them at step boundaries.
  [[nodiscard]] SteeringBoard& steering() { return steering_; }

 private:
  S3DRank& sim_;
  Comm& comm_;
  StagingService& staging_;
  SteeringBoard& steering_;
  int dart_node_;
  long step_;
  const Codec* codec_;
  int tenant_ = 0;
  std::string ns_prefix_;
  size_t published_bytes_ = 0;
  size_t published_wire_bytes_ = 0;
};

class HybridAnalysis {
 public:
  virtual ~HybridAnalysis() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Variables this analysis publishes to the staging area; the runner
  /// builds the in-transit task from every published block of these at the
  /// current step. Empty = fully in-situ (no in-transit stage scheduled).
  [[nodiscard]] virtual std::vector<std::string> staged_variables() const {
    return {};
  }

  /// In-situ stage; called concurrently on every simulation rank.
  virtual void in_situ(InSituContext& ctx) = 0;

  /// In-transit stage; called on a staging bucket with the task holding
  /// all published blocks for one timestep. Default: nothing staged.
  virtual void in_transit(TaskContext& ctx) { (void)ctx; }
};

}  // namespace hia
