#include "core/isosurface_pipeline.hpp"

#include <cstdio>
#include <cstring>

#include "analysis/topology/local_tree.hpp"  // extended_block
#include "sim/halo.hpp"

namespace hia {

void HybridIsosurface::in_situ(InSituContext& ctx) {
  S3DRank& sim = ctx.sim();
  const GlobalGrid& grid = sim.params().grid;
  Field& field = sim.field(config_.variable);

  // Ghost refresh so the +1-extended cells see current neighbor values.
  exchange_halos(ctx.comm(), sim.decomp(), field, /*ghost=*/1);

  const Box3 block = field.owned();
  const Box3 ext = extended_block(grid, block);
  const TriangleMesh mesh =
      extract_isosurface(grid, ext, field.pack(ext), config_.iso);

  ctx.publish("iso.mesh", ext, mesh.serialize());
}

void HybridIsosurface::in_transit(TaskContext& ctx) {
  TriangleMesh surface;
  for (const DataDescriptor& desc : ctx.task().inputs) {
    surface.append(TriangleMesh::deserialize(ctx.pull_doubles(desc)));
  }

  if (!config_.output_dir.empty()) {
    char path[512];
    std::snprintf(path, sizeof(path), "%s/%s.step%06ld.obj",
                  config_.output_dir.c_str(), name().c_str(),
                  ctx.task().step);
    write_obj(surface, path);
  }

  // Result blob: triangle count + total area.
  const double stats[2] = {static_cast<double>(surface.num_triangles()),
                           surface.area()};
  std::vector<std::byte> bytes(sizeof(stats));
  std::memcpy(bytes.data(), stats, sizeof(stats));
  ctx.set_result(std::move(bytes));

  std::lock_guard lock(mutex_);
  latest_ = std::move(surface);
}

std::optional<TriangleMesh> HybridIsosurface::latest_mesh() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

}  // namespace hia
