#include "core/viz_pipeline.hpp"

#include <cstdio>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace hia {

RenderSetup RenderSetup::make(const GlobalGrid& grid, const VizConfig& cfg) {
  const Vec3 size{grid.physical[0], grid.physical[1], grid.physical[2]};
  OrthoCamera camera =
      OrthoCamera::default_view(size, cfg.image_size, cfg.image_size);
  TransferFunction tf = TransferFunction::flame(cfg.tf_lo, cfg.tf_hi);
  RenderParams params;
  params.step = cfg.step_scale * grid.spacing(0);
  params.reference_step = grid.spacing(0);
  return RenderSetup{std::move(camera), std::move(tf), params};
}

namespace {
void maybe_write_ppm(const std::string& dir, const std::string& stem,
                     long step, const Image& image) {
  if (dir.empty()) return;
  char path[512];
  std::snprintf(path, sizeof(path), "%s/%s.step%06ld.ppm", dir.c_str(),
                stem.c_str(), step);
  write_ppm(image, path);
}
}  // namespace

// -------------------------------------------------- InSituVisualization --

void InSituVisualization::in_situ(InSituContext& ctx) {
  const GlobalGrid& grid = ctx.sim().params().grid;
  const RenderSetup setup = RenderSetup::make(grid, config_);

  // Render this rank's full-resolution brick.
  const Field& field = ctx.sim().field(config_.variable);
  const Box3& box = field.owned();
  const auto values = field.pack_owned();
  const BrickSampler sampler(grid, box, values);

  Image partial(config_.image_size, config_.image_size);
  {
    obs::Span render_span("insitu", "viz.render",
                          {.rank = ctx.comm().rank(), .step = ctx.step()});
    render_volume(setup.camera, sampler, physical_bounds(grid, box), setup.tf,
                  setup.params, partial);
  }

  // Sort-last composite: gather (image, depth) to rank 0.
  auto payload = serialize_image(partial);
  payload.push_back(brick_depth(grid, box, setup.camera));
  std::vector<std::byte> bytes(payload.size() * sizeof(double));
  std::memcpy(bytes.data(), payload.data(), bytes.size());
  auto gathered = ctx.comm().gather(0, bytes);

  if (ctx.comm().rank() == 0) {
    obs::Span composite_span("insitu", "viz.composite",
                             {.rank = 0, .step = ctx.step()});
    std::vector<BrickImage> bricks;
    bricks.reserve(gathered.size());
    for (const auto& blob : gathered) {
      HIA_ASSERT(blob.size() % sizeof(double) == 0 && !blob.empty());
      std::vector<double> flat(blob.size() / sizeof(double));
      std::memcpy(flat.data(), blob.data(), blob.size());
      const double depth = flat.back();
      flat.pop_back();
      bricks.push_back(BrickImage{deserialize_image(flat), depth});
    }
    Image frame = composite(std::move(bricks));
    maybe_write_ppm(config_.output_dir, name(), ctx.step(), frame);
    std::lock_guard lock(mutex_);
    latest_ = std::move(frame);
  }
}

std::optional<Image> InSituVisualization::latest_image() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

// ------------------------------------------------- HybridVisualization --

void HybridVisualization::in_situ(InSituContext& ctx) {
  const GlobalGrid& grid = ctx.sim().params().grid;
  {
    std::lock_guard lock(mutex_);
    if (!grid_.has_value()) grid_ = grid;
  }

  const Field& field = ctx.sim().field(config_.variable);
  const Box3& box = field.owned();
  const DownsampledBlock block =
      downsample_block(box, field.pack_owned(), config_.downsample_stride);
  ctx.publish("viz.block", box, block.serialize());
}

void HybridVisualization::in_transit(TaskContext& ctx) {
  GlobalGrid grid;
  {
    std::lock_guard lock(mutex_);
    HIA_REQUIRE(grid_.has_value(), "in_transit before any in_situ stage");
    grid = *grid_;
  }
  const RenderSetup setup = RenderSetup::make(grid, config_);

  // Build the block look-up table from all down-sampled blocks.
  BlockLut lut(grid);
  for (const DataDescriptor& desc : ctx.task().inputs) {
    lut.add_block(DownsampledBlock::deserialize(ctx.pull_doubles(desc)));
  }

  Image frame(config_.image_size, config_.image_size);
  {
    obs::Span render_span("intransit", "viz.render",
                          {.bucket = ctx.bucket(), .step = ctx.task().step});
    render_volume(setup.camera, lut, physical_bounds(grid, grid.bounds()),
                  setup.tf, setup.params, frame);
  }

  maybe_write_ppm(config_.output_dir, name(), ctx.task().step, frame);

  const auto flat = serialize_image(frame);
  std::vector<std::byte> bytes(flat.size() * sizeof(double));
  std::memcpy(bytes.data(), flat.data(), bytes.size());
  ctx.set_result(std::move(bytes));

  std::lock_guard lock(mutex_);
  latest_ = std::move(frame);
}

std::optional<Image> HybridVisualization::latest_image() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

}  // namespace hia
