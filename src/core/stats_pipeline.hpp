// The two descriptive-statistics deployments compared in the paper (§III):
//
//   * InSituStatistics — learn and derive both run on the simulation
//     ranks; learn's partial models are merged with an all-reduce so every
//     rank holds the consistent global model (the paper's "all-to-all
//     communication ... to guarantee a consistent model").
//   * HybridStatistics — learn runs in-situ; each rank publishes its packed
//     primary model (7 doubles per variable — the cardinality, extrema and
//     centered aggregates up to order 4) and a single serial in-transit
//     bucket combines and derives.
//   * InTransitStatistics — the pure in-transit end of the spectrum: raw
//     field blocks are shipped and both learn and derive run in-transit
//     (used by the spectrum ablation bench).
#pragma once

#include <mutex>
#include <vector>

#include "analysis/stats/descriptive.hpp"
#include "core/analysis.hpp"
#include "sim/species.hpp"

namespace hia {

/// Default variable set: all 14 solution variables.
std::vector<Variable> all_variables();

/// `learn` over a field's owned region without copying it.
MomentAccumulator learn_field(const Field& field);

/// Packs one accumulator per variable into a flat double vector (and back).
std::vector<double> pack_accumulators(
    const std::vector<MomentAccumulator>& accs);
std::vector<MomentAccumulator> unpack_accumulators(
    std::span<const double> packed);

/// Serializes derived models for result blobs ([count, mean, min, max,
/// variance, stddev, skewness, kurtosis] per variable).
std::vector<std::byte> serialize_models(
    const std::vector<DescriptiveModel>& models);
std::vector<DescriptiveModel> deserialize_models(
    std::span<const std::byte> bytes);

class InSituStatistics final : public HybridAnalysis {
 public:
  explicit InSituStatistics(std::vector<Variable> variables = all_variables())
      : variables_(std::move(variables)) {}

  [[nodiscard]] std::string name() const override { return "stats-insitu"; }
  void in_situ(InSituContext& ctx) override;

  /// Global models from the most recent invocation (identical on every
  /// rank; recorded by rank 0).
  [[nodiscard]] std::vector<DescriptiveModel> latest_models() const;

 private:
  std::vector<Variable> variables_;
  mutable std::mutex mutex_;
  std::vector<DescriptiveModel> latest_;
};

class HybridStatistics final : public HybridAnalysis {
 public:
  explicit HybridStatistics(std::vector<Variable> variables = all_variables())
      : variables_(std::move(variables)) {}

  [[nodiscard]] std::string name() const override { return "stats-hybrid"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"stats.partial"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  [[nodiscard]] std::vector<DescriptiveModel> latest_models() const;

 private:
  std::vector<Variable> variables_;
  mutable std::mutex mutex_;
  std::vector<DescriptiveModel> latest_;
};

class InTransitStatistics final : public HybridAnalysis {
 public:
  explicit InTransitStatistics(Variable variable = Variable::kTemperature)
      : variable_(variable) {}

  [[nodiscard]] std::string name() const override { return "stats-intransit"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"stats.raw"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  [[nodiscard]] DescriptiveModel latest_model() const;

 private:
  Variable variable_;
  mutable std::mutex mutex_;
  DescriptiveModel latest_{};
};

}  // namespace hia
