#include "core/topology_pipeline.hpp"

#include <cstdio>
#include <cstring>

#include "io/bp_lite.hpp"
#include "obs/trace.hpp"
#include "sim/halo.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"

namespace hia {

std::vector<std::byte> TreeSummary::serialize() const {
  std::vector<double> flat;
  flat.reserve(5 + top_pairs.size() * 4);
  flat.push_back(static_cast<double>(step));
  flat.push_back(static_cast<double>(tree_nodes));
  flat.push_back(static_cast<double>(tree_leaves));
  flat.push_back(static_cast<double>(peak_live_nodes));
  flat.push_back(static_cast<double>(evicted));
  for (const PersistencePair& p : top_pairs) {
    flat.push_back(static_cast<double>(p.max_id));
    flat.push_back(p.max_value);
    flat.push_back(static_cast<double>(p.saddle_id));
    flat.push_back(p.saddle_value);
  }
  std::vector<std::byte> out(flat.size() * sizeof(double));
  std::memcpy(out.data(), flat.data(), out.size());
  return out;
}

TreeSummary TreeSummary::deserialize(std::span<const std::byte> bytes) {
  HIA_REQUIRE(bytes.size() % sizeof(double) == 0 &&
                  bytes.size() >= 5 * sizeof(double),
              "tree summary blob malformed");
  std::vector<double> flat(bytes.size() / sizeof(double));
  std::memcpy(flat.data(), bytes.data(), bytes.size());
  TreeSummary s;
  s.step = round_to<long>(flat[0]);
  s.tree_nodes = round_to<size_t>(flat[1]);
  s.tree_leaves = round_to<size_t>(flat[2]);
  s.peak_live_nodes = round_to<size_t>(flat[3]);
  s.evicted = round_to<size_t>(flat[4]);
  HIA_REQUIRE((flat.size() - 5) % 4 == 0, "tree summary pair data malformed");
  for (size_t off = 5; off + 3 < flat.size(); off += 4) {
    PersistencePair p;
    p.max_id = round_to<uint64_t>(flat[off]);
    p.max_value = flat[off + 1];
    p.saddle_id = round_to<uint64_t>(flat[off + 2]);
    p.saddle_value = flat[off + 3];
    s.top_pairs.push_back(p);
  }
  return s;
}

void HybridTopology::in_situ(InSituContext& ctx) {
  S3DRank& sim = ctx.sim();
  const GlobalGrid& grid = sim.params().grid;
  {
    std::lock_guard lock(mutex_);
    if (!grid_.has_value()) grid_ = grid;
  }
  Field& field = sim.field(config_.variable);

  // Refresh ghosts so the +1 extension sees the neighbors' current values
  // (the topological equivalent of simulation ghost cells).
  exchange_halos(ctx.comm(), sim.decomp(), field, /*ghost=*/1);

  const Box3 block = field.owned();
  const Box3 ext = extended_block(grid, block);
  const auto values = field.pack(ext);
  obs::Span subtree_span("insitu", "topo.subtree",
                         {.rank = ctx.comm().rank(), .step = ctx.step()});
  const SubtreeData subtree = compute_rank_subtree(grid, block, values, ext);

  ctx.publish("topo.subtree", ext, subtree.serialize());
}

void HybridTopology::in_transit(TaskContext& ctx) {
  // Geometry-aware streaming ingestion: the task descriptors list every
  // rank's extended block before any payload is pulled, so each vertex is
  // finalized (and, if regular, evicted) the moment the last subtree
  // containing it arrives — peak memory tracks the open boundary, not the
  // whole intermediate stream.
  GlobalGrid grid;
  {
    std::lock_guard lock(mutex_);
    HIA_REQUIRE(grid_.has_value(), "in_transit before any in_situ stage");
    grid = *grid_;
  }
  std::vector<Box3> blocks;
  blocks.reserve(ctx.task().inputs.size());
  for (const DataDescriptor& desc : ctx.task().inputs) {
    blocks.push_back(desc.box);
  }
  StreamingCombiner combiner;
  // Evicted-arc sink: finalized regular vertices leave memory and stream
  // into a BP-lite record ([id, value, child, parent] rows).
  std::vector<double> evicted_rows;
  if (!config_.arc_output_dir.empty()) {
    combiner.set_eviction_sink([&evicted_rows](const EvictedArc& arc) {
      evicted_rows.push_back(static_cast<double>(arc.id));
      evicted_rows.push_back(arc.value);
      evicted_rows.push_back(static_cast<double>(arc.child_id));
      evicted_rows.push_back(static_cast<double>(arc.parent_id));
    });
  }
  SubtreeStreamDriver driver(grid, std::move(blocks));
  {
    obs::Span ingest_span("intransit", "topo.ingest",
                          {.bucket = ctx.bucket(), .step = ctx.task().step});
    for (const DataDescriptor& desc : ctx.task().inputs) {
      driver.ingest(combiner,
                    SubtreeData::deserialize(ctx.pull_doubles(desc)));
    }
  }

  TreeSummary summary;
  summary.step = ctx.task().step;
  summary.peak_live_nodes = combiner.peak_live_nodes();

  MergeTree tree = combiner.finish();
  summary.evicted = combiner.evicted_count();
  if (!config_.arc_output_dir.empty()) {
    char path[512];
    std::snprintf(path, sizeof(path), "%s/%s.step%06ld.arcs.bp",
                  config_.arc_output_dir.c_str(), name().c_str(),
                  ctx.task().step);
    bp_write_file(path, {BpEntry{"evicted_arcs", Box3{},
                                 std::move(evicted_rows)}});
  }
  if (config_.simplify_threshold > 0.0) {
    tree = simplify(tree, config_.simplify_threshold);
  }
  summary.tree_nodes = tree.size();
  summary.tree_leaves = tree.leaves().size();

  auto pairs = persistence_pairs(tree);
  if (static_cast<int>(pairs.size()) > config_.top_pairs) {
    pairs.resize(static_cast<size_t>(config_.top_pairs));
  }
  summary.top_pairs = pairs;

  ctx.set_result(summary.serialize());
  std::lock_guard lock(mutex_);
  latest_ = summary;
  latest_tree_ = std::move(tree);
}

TreeSummary HybridTopology::latest_summary() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

MergeTree HybridTopology::latest_tree() const {
  std::lock_guard lock(mutex_);
  return latest_tree_;
}

}  // namespace hia
