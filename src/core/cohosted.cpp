#include "core/cohosted.hpp"

#include "util/error.hpp"

namespace hia {

CoHostedHelper::CoHostedHelper() : thread_([this] { loop(); }) {}

CoHostedHelper::~CoHostedHelper() {
  drain();
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void CoHostedHelper::submit(std::function<void()> work) {
  HIA_REQUIRE(work != nullptr, "null work");
  {
    std::lock_guard lock(mutex_);
    HIA_REQUIRE(!stopping_, "submit on stopping helper");
    queue_.push_back(std::move(work));
  }
  cv_.notify_one();
}

void CoHostedHelper::drain() {
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !running_; });
}

size_t CoHostedHelper::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

double CoHostedHelper::busy_seconds() const {
  std::lock_guard lock(mutex_);
  return busy_seconds_;
}

void CoHostedHelper::loop() {
  for (;;) {
    std::function<void()> work;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      work = std::move(queue_.front());
      queue_.pop_front();
      running_ = true;
    }
    Stopwatch watch;
    work();
    const double seconds = watch.seconds();
    {
      std::lock_guard lock(mutex_);
      running_ = false;
      ++completed_;
      busy_seconds_ += seconds;
      if (queue_.empty()) drain_cv_.notify_all();
    }
  }
}

}  // namespace hia
