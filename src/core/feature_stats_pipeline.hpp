// Hybrid feature-based statistics pipeline: per-ignition-kernel (or any
// superlevel-set feature) statistics of a measure variable, computed with
// the same in-situ/in-transit split as the topology pipeline. Implements
// the paper's §VI plan of combining the merge-tree segmentation with the
// statistics framework (refs [30], [43]).
#pragma once

#include <mutex>

#include "analysis/topology/feature_stats.hpp"
#include "core/analysis.hpp"
#include "sim/species.hpp"

namespace hia {

struct FeatureStatsConfig {
  Variable field = Variable::kTemperature;     // defines the features
  Variable measure = Variable::kYOH;           // statistic per feature
  double threshold = 2.0;                      // superlevel threshold
  int top_features = 16;                       // carried in the result blob
  /// When non-empty, the threshold is read from the steering board under
  /// this key each invocation (falling back to `threshold`), enabling
  /// closed-loop threshold adaptation by an in-transit stage.
  std::string threshold_steering_key;
};

class HybridFeatureStatistics final : public HybridAnalysis {
 public:
  explicit HybridFeatureStatistics(FeatureStatsConfig config)
      : config_(config) {}

  [[nodiscard]] std::string name() const override { return "fstats-hybrid"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"fstats.partial"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  /// Global feature table from the most recent invocation, sorted by
  /// descending voxel count.
  [[nodiscard]] std::vector<GlobalFeature> latest_features() const;

  [[nodiscard]] const FeatureStatsConfig& config() const { return config_; }

 private:
  FeatureStatsConfig config_;
  mutable std::mutex mutex_;
  std::vector<GlobalFeature> latest_;
};

}  // namespace hia
