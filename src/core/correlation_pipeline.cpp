#include "core/correlation_pipeline.hpp"

#include <cstring>

#include "util/error.hpp"

namespace hia {

CovarianceAccumulator correlation_learn_fields(const Field& x,
                                               const Field& y) {
  HIA_REQUIRE(x.owned() == y.owned(), "fields must share the owned box");
  CovarianceAccumulator acc;
  const Box3& box = x.owned();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
        acc.update(x.at(i, j, k), y.at(i, j, k));
      }
    }
  }
  return acc;
}

void HybridCorrelation::in_situ(InSituContext& ctx) {
  const CovarianceAccumulator acc = correlation_learn_fields(
      ctx.sim().field(x_), ctx.sim().field(y_));
  std::vector<double> packed(CovarianceAccumulator::kPackedSize);
  acc.pack(packed.data());
  ctx.publish("corr.partial", ctx.sim().field(x_).owned(), packed);
}

void HybridCorrelation::in_transit(TaskContext& ctx) {
  CovarianceAccumulator global;
  for (const DataDescriptor& desc : ctx.task().inputs) {
    const auto packed = ctx.pull_doubles(desc);
    HIA_REQUIRE(packed.size() == CovarianceAccumulator::kPackedSize,
                "malformed bivariate model payload");
    global.combine(CovarianceAccumulator::unpack(packed.data()));
  }
  const CorrelationModel model = derive_correlation(global);

  std::vector<double> flat{static_cast<double>(model.count),
                           model.covariance, model.pearson_r, model.slope,
                           model.intercept};
  std::vector<std::byte> bytes(flat.size() * sizeof(double));
  std::memcpy(bytes.data(), flat.data(), bytes.size());
  ctx.set_result(std::move(bytes));

  std::lock_guard lock(mutex_);
  latest_ = model;
}

CorrelationModel HybridCorrelation::latest_model() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

}  // namespace hia
