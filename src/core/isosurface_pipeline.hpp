// Hybrid isosurface extraction: each rank marches the cells of its
// extended block in-situ (the cell sets tile the domain exactly, so no
// triangle is produced twice and the Kuhn subdivision keeps the surface
// crack-free across ranks); the in-transit stage concatenates the partial
// meshes, reports surface statistics, and optionally writes an OBJ per
// step for external viewers — the "on-the-fly visualization" product that
// post-processing pipelines would otherwise compute from checkpoints.
#pragma once

#include <mutex>
#include <optional>
#include <string>

#include "analysis/viz/isosurface.hpp"
#include "core/analysis.hpp"
#include "sim/species.hpp"

namespace hia {

struct IsosurfaceConfig {
  Variable variable = Variable::kTemperature;
  double iso = 2.0;
  std::string output_dir;  // when set, OBJ files are written per step
};

class HybridIsosurface final : public HybridAnalysis {
 public:
  explicit HybridIsosurface(IsosurfaceConfig config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "iso-hybrid"; }
  [[nodiscard]] std::vector<std::string> staged_variables() const override {
    return {"iso.mesh"};
  }
  void in_situ(InSituContext& ctx) override;
  void in_transit(TaskContext& ctx) override;

  /// The assembled surface from the most recent invocation.
  [[nodiscard]] std::optional<TriangleMesh> latest_mesh() const;

 private:
  IsosurfaceConfig config_;
  mutable std::mutex mutex_;
  std::optional<TriangleMesh> latest_;
};

}  // namespace hia
