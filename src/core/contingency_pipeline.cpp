#include "core/contingency_pipeline.hpp"

#include <cstring>

#include "util/error.hpp"

namespace hia {

void HybridContingency::in_situ(InSituContext& ctx) {
  const Field& fx = ctx.sim().field(config_.x);
  const Field& fy = ctx.sim().field(config_.y);
  const Categorizer cx(config_.x_lo, config_.x_hi, config_.x_bins);
  const Categorizer cy(config_.y_lo, config_.y_hi, config_.y_bins);

  ContingencyTable table(config_.x_bins, config_.y_bins);
  const Box3& box = fx.owned();
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i) {
        table.update(cx.category(fx.at(i, j, k)),
                     cy.category(fy.at(i, j, k)));
      }
    }
  }
  ctx.publish("cont.partial", box, table.serialize());
}

void HybridContingency::in_transit(TaskContext& ctx) {
  ContingencyTable global(config_.x_bins, config_.y_bins);
  for (const DataDescriptor& desc : ctx.task().inputs) {
    global.combine(ContingencyTable::deserialize(ctx.pull_doubles(desc)));
  }
  const ContingencyModel model = derive_contingency(global);

  std::vector<double> flat{static_cast<double>(model.total),
                           model.chi_squared, model.cramers_v,
                           model.mutual_information};
  std::vector<std::byte> bytes(flat.size() * sizeof(double));
  std::memcpy(bytes.data(), flat.data(), bytes.size());
  ctx.set_result(std::move(bytes));

  std::lock_guard lock(mutex_);
  latest_ = model;
  latest_table_ = std::move(global);
}

ContingencyModel HybridContingency::latest_model() const {
  std::lock_guard lock(mutex_);
  return latest_;
}

std::optional<ContingencyTable> HybridContingency::latest_table() const {
  std::lock_guard lock(mutex_);
  return latest_table_;
}

}  // namespace hia
