#include "core/report.hpp"

#include <functional>

#include "sim/species.hpp"
#include "util/table.hpp"

namespace hia {

std::string format_table2(const RunReport& report,
                          const std::vector<std::string>& analyses) {
  // "data movement size" is the logical (pre-codec) volume, as the paper
  // reports it; "wire size" is what actually crossed the modeled network
  // after the staging codec, and "ratio" is logical/wire.
  Table table({"analysis", "in-situ time (s)", "data movement time (s)",
               "data movement size", "wire size", "ratio", "codec time (s)",
               "in-transit time (s)"});
  for (const std::string& a : analyses) {
    const double in_situ = report.mean_in_situ_seconds(a);
    const double move_s = report.mean_movement_seconds(a);
    const double wire_b = report.mean_movement_bytes(a);
    const double raw_b = report.mean_movement_raw_bytes(a);
    const double decode_s = report.mean_decode_seconds(a);
    const double transit = report.mean_in_transit_seconds(a);
    const bool hybrid = wire_b > 0.0;
    table.add_row({a, fmt_fixed(in_situ, 4),
                   hybrid ? fmt_fixed(move_s, 4) : "-",
                   hybrid ? fmt_bytes(raw_b) : "-",
                   hybrid ? fmt_bytes(wire_b) : "-",
                   hybrid ? fmt_fixed(report.compression_ratio(a), 2) + "x"
                          : "-",
                   hybrid && decode_s > 0.0 ? fmt_fixed(decode_s, 4) : "-",
                   hybrid ? fmt_fixed(transit, 4) : "-"});
  }
  return table.render();
}

std::string format_fig6(const RunReport& report,
                        const std::vector<std::string>& analyses) {
  const double sim = report.mean_sim_step_seconds();
  Table table({"component", "seconds/step", "% of simulation"});
  table.add_row({"simulation", fmt_fixed(sim, 4), "100.00%"});
  for (const std::string& a : analyses) {
    const double in_situ = report.mean_in_situ_seconds(a);
    table.add_row(
        {a + " (in-situ)", fmt_fixed(in_situ, 4), fmt_percent(in_situ, sim)});
    const double move = report.mean_movement_seconds(a);
    if (move > 0.0) {
      table.add_row({a + " (data movement)", fmt_fixed(move, 4),
                     fmt_percent(move, sim)});
    }
    const double decode = report.mean_decode_seconds(a);
    if (decode > 0.0) {
      table.add_row({a + " (codec decode, async)", fmt_fixed(decode, 4),
                     fmt_percent(decode, sim)});
    }
    const double transit = report.mean_in_transit_seconds(a);
    if (move > 0.0 && transit > 0.0) {
      table.add_row({a + " (in-transit, async)", fmt_fixed(transit, 4),
                     fmt_percent(transit, sim)});
    }
  }
  return table.render();
}

std::string format_resilience(const RunReport& report) {
  const ResilienceSummary& r = report.resilience;
  const uint64_t total = r.tasks_completed + r.tasks_degraded +
                         r.tasks_deferred + r.tasks_shed;
  Table table({"resilience metric", "value"});
  auto count_row = [&](const std::string& label, uint64_t v) {
    table.add_row({label, std::to_string(v)});
  };
  count_row("tasks submitted", total);
  count_row("  completed on buckets", r.tasks_completed);
  count_row("  degraded to in-situ fallback", r.tasks_degraded);
  count_row("  deferred one step (resubmitted)", r.tasks_deferred);
  count_row("  shed (dropped, counted)", r.tasks_shed);
  count_row("task retries", r.task_retries);
  table.add_row({"retry backoff total (s)", fmt_fixed(r.backoff_seconds, 4)});
  count_row("injected task timeouts", r.tasks_failed);
  count_row("buckets killed", r.buckets_killed);
  if (r.buckets_crashed || r.servers_crashed || r.leases_expired ||
      r.tasks_reexecuted || r.zombies_fenced || r.replicas_repaired ||
      r.objects_lost) {
    count_row("buckets crashed (ungraceful)", r.buckets_crashed);
    count_row("servers crashed (ungraceful)", r.servers_crashed);
    count_row("leases expired (reclaimed)", r.leases_expired);
    count_row("tasks re-executed", r.tasks_reexecuted);
    count_row("zombie completions fenced", r.zombies_fenced);
    count_row("replica copies read-repaired", r.replicas_repaired);
    count_row("objects lost (last copy died)", r.objects_lost);
  }
  count_row("frame retransmits", r.frame_retransmits);
  count_row("  frames dropped (injected)", r.frames_dropped);
  count_row("  frames corrupted (injected)", r.frames_corrupted);
  count_row("  CRC failures caught", r.crc_failures);
  table.add_row({"recovered payload", fmt_bytes(
      static_cast<double>(r.recovered_bytes))});
  count_row("frames delayed (injected)", r.frames_delayed);
  table.add_row({"injected frame delay (s)", fmt_fixed(r.injected_delay_s,
                                                       4)});
  count_row("pool worker stalls", r.worker_stalls);
  if (r.steer_in_transit || r.steer_in_situ || r.steer_deferred ||
      r.steer_shed || r.overload_diversions || r.admission_overdrafts ||
      r.overload_bytes_injected || r.credits_starved) {
    count_row("steer: in-transit", r.steer_in_transit);
    count_row("steer: in-situ fallback", r.steer_in_situ);
    count_row("steer: deferred", r.steer_deferred);
    count_row("steer: shed", r.steer_shed);
    count_row("queue-budget diversions", r.overload_diversions);
    count_row("admission overdrafts", r.admission_overdrafts);
    table.add_row({"admission wait total (s)",
                   fmt_fixed(r.admission_wait_s, 4)});
    table.add_row({"peak queue bytes",
                   fmt_bytes(static_cast<double>(r.peak_queue_bytes))});
    table.add_row({"injected phantom bytes",
                   fmt_bytes(static_cast<double>(r.overload_bytes_injected))});
    count_row("credits starved (injected)", r.credits_starved);
    if (r.tenant_hog_bytes > 0) {
      table.add_row({"tenant-hog bytes (injected)",
                     fmt_bytes(static_cast<double>(r.tenant_hog_bytes))});
    }
  }
  return table.render();
}

std::string format_tenant_table(const std::vector<TenantRunRow>& rows) {
  Table table({"tenant", "weight", "submitted", "completed", "degraded",
               "deferred", "shed", "bucket time (s)", "share", "target",
               "p99 turnaround (s)", "cap diversions", "hog bytes"});
  for (const TenantRunRow& r : rows) {
    const uint64_t accounted = r.completed + r.degraded + r.deferred + r.shed;
    std::string submitted = std::to_string(r.submitted);
    if (accounted != r.submitted) {
      // Conservation broke — make it impossible to miss in the output.
      submitted += " (!=" + std::to_string(accounted) + ")";
    }
    table.add_row({r.name.empty() ? std::to_string(r.tenant) : r.name,
                   fmt_fixed(r.weight, 1), submitted,
                   std::to_string(r.completed), std::to_string(r.degraded),
                   std::to_string(r.deferred), std::to_string(r.shed),
                   fmt_fixed(r.bucket_seconds, 3),
                   fmt_fixed(r.share_observed * 100.0, 1) + "%",
                   fmt_fixed(r.share_target * 100.0, 1) + "%",
                   fmt_fixed(r.p99_turnaround_s, 4),
                   std::to_string(r.cap_diversions),
                   std::to_string(r.hog_bytes)});
  }
  return table.render();
}

std::string format_table1(const std::vector<Table1Column>& columns) {
  // Render as the paper does: one column per configuration, one row per
  // metric.
  std::vector<std::string> header{"metric"};
  for (const Table1Column& c : columns) {
    header.push_back(std::to_string(c.machine.total_cores()) + " cores");
  }
  Table t(header);

  auto row = [&](const std::string& label,
                 const std::function<std::string(const Table1Column&)>& fn) {
    std::vector<std::string> cells{label};
    for (const Table1Column& c : columns) cells.push_back(fn(c));
    t.add_row(std::move(cells));
  };

  row("No. of simulation/in-situ cores", [](const Table1Column& c) {
    return std::to_string(c.machine.sim_ranks[0]) + "x" +
           std::to_string(c.machine.sim_ranks[1]) + "x" +
           std::to_string(c.machine.sim_ranks[2]) + " = " +
           std::to_string(c.machine.simulation_cores());
  });
  row("No. of DataSpaces-service cores", [](const Table1Column& c) {
    return std::to_string(c.machine.dataspaces_servers);
  });
  row("No. of in-transit cores", [](const Table1Column& c) {
    return std::to_string(c.machine.staging_buckets);
  });
  row("Volume size", [](const Table1Column& c) {
    return std::to_string(c.grid.dims[0]) + "x" +
           std::to_string(c.grid.dims[1]) + "x" +
           std::to_string(c.grid.dims[2]);
  });
  row("No. of variables",
      [](const Table1Column&) { return std::to_string(kNumVariables); });
  row("Data size", [](const Table1Column& c) {
    return fmt_bytes(static_cast<double>(c.grid.num_points()) *
                     kNumVariables * sizeof(double));
  });
  row("Simulation time (sec.)", [](const Table1Column& c) {
    return fmt_fixed(c.sim_step_seconds, 3);
  });
  row("I/O read time (sec., modeled)", [](const Table1Column& c) {
    const size_t bytes = static_cast<size_t>(c.grid.num_points()) *
                         kNumVariables * sizeof(double);
    return fmt_fixed(c.ost.read_seconds(bytes, c.machine.simulation_cores()),
                     3);
  });
  row("I/O write time (sec., modeled)", [](const Table1Column& c) {
    const size_t bytes = static_cast<size_t>(c.grid.num_points()) *
                         kNumVariables * sizeof(double);
    return fmt_fixed(c.ost.write_seconds(bytes, c.machine.simulation_cores()),
                     3);
  });
  return t.render();
}

}  // namespace hia
