// Parallel contingency statistics, after Pébay, Thompson & Bennett,
// "Computing contingency statistics in parallel" (CLUSTER 2010) — ref [22]
// of the paper, part of the same VTK statistics toolkit deployed by the
// in-situ/in-transit framework.
//
// The primary model (the `learn` output) is the joint occurrence table of
// a categorized variable pair; tables over disjoint observation sets
// combine by sparse addition, making the model mergeable exactly like the
// moment accumulators. `derive` produces marginals, the chi-squared
// independence statistic, Cramér's V, and pointwise mutual information.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace hia {

/// Uniform-width binner mapping a continuous value to a category.
class Categorizer {
 public:
  Categorizer(double lo, double hi, int bins) : lo_(lo), hi_(hi), bins_(bins) {
    HIA_REQUIRE(hi > lo, "categorizer range must be non-empty");
    HIA_REQUIRE(bins > 0, "categorizer needs at least one bin");
  }

  [[nodiscard]] int category(double x) const {
    if (x < lo_) return 0;
    if (x >= hi_) return bins_ - 1;
    return static_cast<int>((x - lo_) / (hi_ - lo_) *
                            static_cast<double>(bins_));
  }
  [[nodiscard]] int bins() const { return bins_; }

 private:
  double lo_, hi_;
  int bins_;
};

/// Primary model: sparse joint occurrence counts of category pairs.
class ContingencyTable {
 public:
  ContingencyTable(int x_bins, int y_bins) : x_bins_(x_bins), y_bins_(y_bins) {
    HIA_REQUIRE(x_bins > 0 && y_bins > 0, "table needs positive dimensions");
  }

  void update(int x_category, int y_category) {
    HIA_REQUIRE(x_category >= 0 && x_category < x_bins_ && y_category >= 0 &&
                    y_category < y_bins_,
                "category out of range");
    ++cells_[{x_category, y_category}];
    ++total_;
  }

  /// learn over paired continuous observations through two categorizers.
  void update(std::span<const double> x, std::span<const double> y,
              const Categorizer& cx, const Categorizer& cy);

  /// Sparse addition of another table (same dimensions required).
  void combine(const ContingencyTable& other);

  [[nodiscard]] uint64_t count(int x_category, int y_category) const {
    auto it = cells_.find({x_category, y_category});
    return it == cells_.end() ? 0 : it->second;
  }
  [[nodiscard]] uint64_t total() const { return total_; }
  [[nodiscard]] int x_bins() const { return x_bins_; }
  [[nodiscard]] int y_bins() const { return y_bins_; }
  [[nodiscard]] size_t nonzero_cells() const { return cells_.size(); }

  [[nodiscard]] std::vector<uint64_t> x_marginal() const;
  [[nodiscard]] std::vector<uint64_t> y_marginal() const;

  /// Flat encoding: [x_bins, y_bins, n_cells, (x, y, count)...].
  [[nodiscard]] std::vector<double> serialize() const;
  static ContingencyTable deserialize(std::span<const double> data);

 private:
  int x_bins_, y_bins_;
  std::map<std::pair<int, int>, uint64_t> cells_;
  uint64_t total_ = 0;
};

/// Derived independence statistics.
struct ContingencyModel {
  uint64_t total = 0;
  double chi_squared = 0.0;   // Pearson chi-squared vs. independence
  double cramers_v = 0.0;     // association strength in [0, 1]
  double mutual_information = 0.0;  // in nats
};

ContingencyModel derive_contingency(const ContingencyTable& table);

}  // namespace hia
