#include "analysis/stats/histogram.hpp"

#include <algorithm>

namespace hia {

double Histogram::quantile(double q) const {
  HIA_REQUIRE(q >= 0.0 && q <= 1.0, "quantile fraction must be in [0, 1]");
  uint64_t in_range = 0;
  for (const uint64_t c : counts_) in_range += c;
  if (in_range == 0) return lo_;

  const double target = q * static_cast<double>(in_range);
  double cum = 0.0;
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Linear interpolation within the bin.
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + w * (static_cast<double>(i) + frac);
    }
    cum = next;
  }
  return hi_;
}

}  // namespace hia
