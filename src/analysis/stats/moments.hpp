// Numerically stable, single-pass computation of moment-based statistics,
// following the update and pairwise-combination formulas of Bennett/Pébay
// et al. [21]–[23] (the algorithms behind the VTK parallel statistics
// toolkit deployed by the paper).
//
// The accumulator carries cardinality, extrema, mean, and centered
// aggregates M2..M4 — exactly the quantities the paper says the `learn`
// stage must exchange "to assemble a global model".
#pragma once

#include <cstdint>
#include <limits>

namespace hia {

/// Primary statistical model of one variable (the output of `learn`).
class MomentAccumulator {
 public:
  /// Single-pass update with one observation.
  void update(double x);

  /// Pairwise combination: merges `other` into this accumulator using the
  /// communication-free parallel formulas (numerically stable, order-
  /// independent up to roundoff).
  void combine(const MomentAccumulator& other);

  [[nodiscard]] uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double m2() const { return m2_; }
  [[nodiscard]] double m3() const { return m3_; }
  [[nodiscard]] double m4() const { return m4_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Serialization to a fixed-size flat array (for reductions & staging).
  static constexpr int kPackedSize = 7;
  void pack(double out[kPackedSize]) const;
  static MomentAccumulator unpack(const double in[kPackedSize]);

  bool operator==(const MomentAccumulator&) const = default;

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Derived descriptive statistics (the output of `derive`).
struct DescriptiveModel {
  uint64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double variance = 0.0;        // unbiased (n-1 denominator)
  double stddev = 0.0;
  double skewness = 0.0;        // g1, biased sample skewness
  double kurtosis_excess = 0.0; // g2 = m4/m2^2 - 3
};

/// `derive`: maps the primary model to descriptive statistics.
DescriptiveModel derive_descriptive(const MomentAccumulator& primary);

}  // namespace hia
