// Fixed-range histogram with parallel combination — used for transfer-
// function design in the renderer and as an additional mergeable statistic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace hia {

class Histogram {
 public:
  Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
    HIA_REQUIRE(hi > lo, "histogram range must be non-empty");
    HIA_REQUIRE(bins > 0, "histogram needs at least one bin");
    counts_.assign(static_cast<size_t>(bins), 0);
  }

  void update(double x) {
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      const auto bin = static_cast<size_t>((x - lo_) / (hi_ - lo_) *
                                           static_cast<double>(counts_.size()));
      ++counts_[std::min(bin, counts_.size() - 1)];
    }
    ++total_;
  }

  void update(std::span<const double> xs) {
    for (const double x : xs) update(x);
  }

  /// Merges `other` (must have identical binning).
  void combine(const Histogram& other) {
    HIA_REQUIRE(other.lo_ == lo_ && other.hi_ == hi_ &&
                    other.counts_.size() == counts_.size(),
                "histograms must share binning to combine");
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
  }

  [[nodiscard]] int bins() const { return static_cast<int>(counts_.size()); }
  [[nodiscard]] uint64_t count(int bin) const {
    return counts_[static_cast<size_t>(bin)];
  }
  [[nodiscard]] uint64_t underflow() const { return underflow_; }
  [[nodiscard]] uint64_t overflow() const { return overflow_; }
  [[nodiscard]] uint64_t total() const { return total_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_center(int bin) const {
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * (static_cast<double>(bin) + 0.5);
  }

  /// Value below which `q` of the in-range mass lies (piecewise-constant
  /// quantile estimate). q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Exact state restoration from serialized counts (deserialization path;
  /// counts.size() must equal bins()).
  void restore(std::span<const double> counts, uint64_t underflow,
               uint64_t overflow) {
    HIA_REQUIRE(counts.size() == counts_.size(),
                "restore: bin count mismatch");
    total_ = underflow + overflow;
    for (size_t b = 0; b < counts_.size(); ++b) {
      counts_[b] = static_cast<uint64_t>(counts[b]);
      total_ += counts_[b];
    }
    underflow_ = underflow;
    overflow_ = overflow;
  }

 private:
  double lo_, hi_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace hia
