#include "analysis/stats/contingency.hpp"

#include <algorithm>
#include <cmath>
#include "util/numeric.hpp"

namespace hia {

void ContingencyTable::update(std::span<const double> x,
                              std::span<const double> y,
                              const Categorizer& cx, const Categorizer& cy) {
  HIA_REQUIRE(x.size() == y.size(), "paired observations required");
  HIA_REQUIRE(cx.bins() == x_bins_ && cy.bins() == y_bins_,
              "categorizer does not match table dimensions");
  for (size_t i = 0; i < x.size(); ++i) {
    update(cx.category(x[i]), cy.category(y[i]));
  }
}

void ContingencyTable::combine(const ContingencyTable& other) {
  HIA_REQUIRE(other.x_bins_ == x_bins_ && other.y_bins_ == y_bins_,
              "tables must share dimensions to combine");
  for (const auto& [cell, count] : other.cells_) {
    cells_[cell] += count;
  }
  total_ += other.total_;
}

std::vector<uint64_t> ContingencyTable::x_marginal() const {
  std::vector<uint64_t> out(static_cast<size_t>(x_bins_), 0);
  for (const auto& [cell, count] : cells_) {
    out[static_cast<size_t>(cell.first)] += count;
  }
  return out;
}

std::vector<uint64_t> ContingencyTable::y_marginal() const {
  std::vector<uint64_t> out(static_cast<size_t>(y_bins_), 0);
  for (const auto& [cell, count] : cells_) {
    out[static_cast<size_t>(cell.second)] += count;
  }
  return out;
}

std::vector<double> ContingencyTable::serialize() const {
  std::vector<double> out;
  out.reserve(3 + cells_.size() * 3);
  out.push_back(static_cast<double>(x_bins_));
  out.push_back(static_cast<double>(y_bins_));
  out.push_back(static_cast<double>(cells_.size()));
  for (const auto& [cell, count] : cells_) {
    out.push_back(static_cast<double>(cell.first));
    out.push_back(static_cast<double>(cell.second));
    out.push_back(static_cast<double>(count));
  }
  return out;
}

ContingencyTable ContingencyTable::deserialize(std::span<const double> data) {
  HIA_REQUIRE(data.size() >= 3, "contingency payload too short");
  ContingencyTable t(round_to<int>(data[0]), round_to<int>(data[1]));
  const auto n = round_to<size_t>(data[2]);
  HIA_REQUIRE(data.size() == 3 + n * 3, "contingency payload size mismatch");
  for (size_t c = 0; c < n; ++c) {
    const int x = round_to<int>(data[3 + c * 3]);
    const int y = round_to<int>(data[3 + c * 3 + 1]);
    const auto count = round_to<uint64_t>(data[3 + c * 3 + 2]);
    HIA_REQUIRE(x >= 0 && x < t.x_bins_ && y >= 0 && y < t.y_bins_,
                "contingency cell out of range");
    t.cells_[{x, y}] += count;
    t.total_ += count;
  }
  return t;
}

ContingencyModel derive_contingency(const ContingencyTable& table) {
  ContingencyModel m;
  m.total = table.total();
  if (m.total == 0) return m;

  const auto mx = table.x_marginal();
  const auto my = table.y_marginal();
  const double n = static_cast<double>(m.total);

  // Chi-squared and mutual information over all cells with nonzero
  // expectation; MI terms vanish for empty observed cells.
  for (int x = 0; x < table.x_bins(); ++x) {
    const double px = static_cast<double>(mx[static_cast<size_t>(x)]) / n;
    if (px == 0.0) continue;
    for (int y = 0; y < table.y_bins(); ++y) {
      const double py = static_cast<double>(my[static_cast<size_t>(y)]) / n;
      if (py == 0.0) continue;
      const double expected = n * px * py;
      const double observed =
          static_cast<double>(table.count(x, y));
      const double d = observed - expected;
      m.chi_squared += d * d / expected;
      if (observed > 0.0) {
        const double pxy = observed / n;
        m.mutual_information += pxy * std::log(pxy / (px * py));
      }
    }
  }

  // Cramér's V: sqrt(chi2 / (n * (min(r, c) - 1))).
  int active_x = 0, active_y = 0;
  for (const auto c : mx) {
    if (c > 0) ++active_x;
  }
  for (const auto c : my) {
    if (c > 0) ++active_y;
  }
  const int k = std::min(active_x, active_y);
  if (k > 1) {
    m.cramers_v = std::sqrt(m.chi_squared / (n * static_cast<double>(k - 1)));
  }
  return m;
}

}  // namespace hia
