#include "analysis/stats/correlation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace hia {

void CovarianceAccumulator::update(double x, double y) {
  ++n_;
  const double n = static_cast<double>(n_);
  const double dx = x - mean_x_;
  const double dy = y - mean_y_;
  mean_x_ += dx / n;
  mean_y_ += dy / n;
  // Note: c2 uses the *updated* mean_y (West's formulation keeps the
  // update exact in exact arithmetic and stable in floating point).
  m2x_ += dx * (x - mean_x_);
  m2y_ += dy * (y - mean_y_);
  c2_ += dx * (y - mean_y_);
}

void CovarianceAccumulator::combine(const CovarianceAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double dx = other.mean_x_ - mean_x_;
  const double dy = other.mean_y_ - mean_y_;

  m2x_ += other.m2x_ + dx * dx * na * nb / n;
  m2y_ += other.m2y_ + dy * dy * na * nb / n;
  c2_ += other.c2_ + dx * dy * na * nb / n;
  mean_x_ += dx * nb / n;
  mean_y_ += dy * nb / n;
  n_ += other.n_;
}

void CovarianceAccumulator::pack(double out[kPackedSize]) const {
  out[0] = static_cast<double>(n_);
  out[1] = mean_x_;
  out[2] = mean_y_;
  out[3] = m2x_;
  out[4] = m2y_;
  out[5] = c2_;
}

CovarianceAccumulator CovarianceAccumulator::unpack(
    const double in[kPackedSize]) {
  CovarianceAccumulator acc;
  acc.n_ = static_cast<uint64_t>(in[0]);
  acc.mean_x_ = in[1];
  acc.mean_y_ = in[2];
  acc.m2x_ = in[3];
  acc.m2y_ = in[4];
  acc.c2_ = in[5];
  return acc;
}

CorrelationModel derive_correlation(const CovarianceAccumulator& primary) {
  CorrelationModel m;
  m.count = primary.count();
  if (m.count < 2) return m;
  const double n = static_cast<double>(primary.count());
  m.covariance = primary.c2() / (n - 1.0);
  const double denom = std::sqrt(primary.m2_x() * primary.m2_y());
  if (denom > 0.0) m.pearson_r = primary.c2() / denom;
  if (primary.m2_x() > 0.0) {
    m.slope = primary.c2() / primary.m2_x();
    m.intercept = primary.mean_y() - m.slope * primary.mean_x();
  }
  return m;
}

CovarianceAccumulator correlation_learn(std::span<const double> x,
                                        std::span<const double> y) {
  HIA_REQUIRE(x.size() == y.size(), "paired observations required");
  CovarianceAccumulator acc;
  for (size_t i = 0; i < x.size(); ++i) acc.update(x[i], y[i]);
  return acc;
}

CorrelationModel autocorrelation(std::span<const double> series, size_t lag) {
  HIA_REQUIRE(lag < series.size(), "lag must be shorter than the series");
  CovarianceAccumulator acc;
  for (size_t i = 0; i + lag < series.size(); ++i) {
    acc.update(series[i], series[i + lag]);
  }
  return derive_correlation(acc);
}

}  // namespace hia
