// Bivariate single-pass statistics: means, centered second-order aggregates
// (including the cross term), pairwise combination, and derived covariance/
// Pearson correlation/least-squares fit.
//
// This implements the paper's stated future-work extension ("a hybrid
// in-situ/in-transit auto-correlative statistical technique"): the same
// learn/derive split as the descriptive statistics, applied to variable
// pairs (e.g. temperature vs. heat-release rate).
#pragma once

#include <cstdint>
#include <span>

namespace hia {

/// Primary bivariate model: single-pass, numerically stable.
class CovarianceAccumulator {
 public:
  void update(double x, double y);
  void combine(const CovarianceAccumulator& other);

  [[nodiscard]] uint64_t count() const { return n_; }
  [[nodiscard]] double mean_x() const { return mean_x_; }
  [[nodiscard]] double mean_y() const { return mean_y_; }
  [[nodiscard]] double m2_x() const { return m2x_; }
  [[nodiscard]] double m2_y() const { return m2y_; }
  [[nodiscard]] double c2() const { return c2_; }  // sum (x-mx)(y-my)

  static constexpr int kPackedSize = 6;
  void pack(double out[kPackedSize]) const;
  static CovarianceAccumulator unpack(const double in[kPackedSize]);

 private:
  uint64_t n_ = 0;
  double mean_x_ = 0.0, mean_y_ = 0.0;
  double m2x_ = 0.0, m2y_ = 0.0, c2_ = 0.0;
};

struct CorrelationModel {
  uint64_t count = 0;
  double covariance = 0.0;  // unbiased
  double pearson_r = 0.0;
  double slope = 0.0;       // least-squares y = slope x + intercept
  double intercept = 0.0;
};

/// `derive` for the bivariate model.
CorrelationModel derive_correlation(const CovarianceAccumulator& primary);

/// `learn` over paired observations (spans must have equal length).
CovarianceAccumulator correlation_learn(std::span<const double> x,
                                        std::span<const double> y);

/// Lag-`lag` autocorrelation of a series via the bivariate machinery:
/// correlates series[i] with series[i + lag].
CorrelationModel autocorrelation(std::span<const double> series, size_t lag);

}  // namespace hia
