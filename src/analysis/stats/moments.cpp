#include "analysis/stats/moments.hpp"

#include <algorithm>
#include <cmath>

namespace hia {

void MomentAccumulator::update(double x) {
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;

  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;

  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void MomentAccumulator::combine(const MomentAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }

  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;

  const double new_mean = mean_ + delta * nb / n;
  const double new_m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double new_m3 = m3_ + other.m3_ +
                        delta * delta2 * na * nb * (na - nb) / (n * n) +
                        3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double new_m4 =
      m4_ + other.m4_ +
      delta2 * delta2 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  n_ += other.n_;
  mean_ = new_mean;
  m2_ = new_m2;
  m3_ = new_m3;
  m4_ = new_m4;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void MomentAccumulator::pack(double out[kPackedSize]) const {
  out[0] = static_cast<double>(n_);
  out[1] = mean_;
  out[2] = m2_;
  out[3] = m3_;
  out[4] = m4_;
  out[5] = min_;
  out[6] = max_;
}

MomentAccumulator MomentAccumulator::unpack(const double in[kPackedSize]) {
  MomentAccumulator acc;
  acc.n_ = static_cast<uint64_t>(in[0]);
  acc.mean_ = in[1];
  acc.m2_ = in[2];
  acc.m3_ = in[3];
  acc.m4_ = in[4];
  acc.min_ = in[5];
  acc.max_ = in[6];
  return acc;
}

DescriptiveModel derive_descriptive(const MomentAccumulator& primary) {
  DescriptiveModel d;
  d.count = primary.count();
  if (d.count == 0) return d;

  const double n = static_cast<double>(primary.count());
  d.mean = primary.mean();
  d.min = primary.min();
  d.max = primary.max();
  if (d.count > 1) {
    d.variance = primary.m2() / (n - 1.0);
    d.stddev = std::sqrt(d.variance);
  }
  const double m2 = primary.m2() / n;  // biased second moment
  if (m2 > 0.0) {
    const double m3 = primary.m3() / n;
    const double m4 = primary.m4() / n;
    d.skewness = m3 / std::pow(m2, 1.5);
    d.kurtosis_excess = m4 / (m2 * m2) - 3.0;
  }
  return d;
}

}  // namespace hia
