#include "analysis/stats/descriptive.hpp"

#include <cmath>

namespace hia {

MomentAccumulator stats_learn(std::span<const double> observations) {
  MomentAccumulator acc;
  for (const double x : observations) acc.update(x);
  return acc;
}

MomentAccumulator stats_combine(
    std::span<const MomentAccumulator> partials) {
  MomentAccumulator acc;
  for (const MomentAccumulator& p : partials) acc.combine(p);
  return acc;
}

std::vector<double> stats_assess(std::span<const double> observations,
                                 const DescriptiveModel& model) {
  std::vector<double> out;
  out.reserve(observations.size());
  const double sd = model.stddev > 0.0 ? model.stddev : 1.0;
  for (const double x : observations) {
    out.push_back((x - model.mean) / sd);
  }
  return out;
}

TestResult stats_test_normality(const DescriptiveModel& model) {
  TestResult r;
  if (model.count < 2) return r;
  const double n = static_cast<double>(model.count);
  r.statistic = n / 6.0 *
                (model.skewness * model.skewness +
                 model.kurtosis_excess * model.kurtosis_excess / 4.0);
  r.p_value = std::exp(-r.statistic / 2.0);
  return r;
}

}  // namespace hia
