// The 4-stage statistics design pattern of the paper's Fig. 4:
//
//   learn  — primary model from observations (the ONLY stage that needs
//            inter-process communication, by construction);
//   derive — detailed model from the primary model;
//   assess — annotate each observation relative to a model;
//   test   — test statistic(s) for hypothesis testing.
//
// The stages are free functions over MomentAccumulator / DescriptiveModel
// so that the in-situ variant (learn + all-to-all combine + derive on the
// compute ranks) and the hybrid variant (learn in-situ, ship the packed
// primary models, derive in-transit) compose them differently without
// duplicating any math.
#pragma once

#include <span>
#include <vector>

#include "analysis/stats/moments.hpp"

namespace hia {

/// `learn`: accumulates the primary model over a span of observations.
MomentAccumulator stats_learn(std::span<const double> observations);

/// Parallel `learn` epilogue: combines per-partition primary models into a
/// single global model (what the all-to-all / in-transit aggregation does).
MomentAccumulator stats_combine(
    std::span<const MomentAccumulator> partials);

/// `assess`: z-score of each observation relative to a derived model
/// (relative deviations, the per-observation annotation of Fig. 4).
std::vector<double> stats_assess(std::span<const double> observations,
                                 const DescriptiveModel& model);

/// `test`: Jarque–Bera normality statistic
///   JB = n/6 * (skewness^2 + kurtosis_excess^2 / 4),
/// asymptotically chi-squared(2) under the normal null hypothesis.
struct TestResult {
  double statistic = 0.0;
  /// Approximate p-value from the chi-squared(2) distribution:
  /// p = exp(-statistic / 2).
  double p_value = 1.0;
};
TestResult stats_test_normality(const DescriptiveModel& model);

}  // namespace hia
