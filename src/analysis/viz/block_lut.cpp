#include "analysis/viz/block_lut.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hia {

void BlockLut::add_block(DownsampledBlock block) {
  HIA_REQUIRE(block.stride >= 1 && !block.bounds.empty(),
              "malformed downsampled block");
  blocks_.push_back(std::move(block));
  cache_ = nullptr;  // vector may have reallocated
}

size_t BlockLut::total_samples() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b.values.size();
  return total;
}

const DownsampledBlock* BlockLut::locate(const double idx[3]) const {
  auto inside = [&](const DownsampledBlock& b) {
    for (int a = 0; a < 3; ++a) {
      if (idx[a] < static_cast<double>(b.bounds.lo[a]) ||
          idx[a] > static_cast<double>(b.bounds.hi[a] - 1)) {
        return false;
      }
    }
    return true;
  };
  if (cache_ != nullptr && inside(*cache_)) return cache_;
  for (const auto& b : blocks_) {
    if (inside(b)) {
      cache_ = &b;
      return cache_;
    }
  }
  return nullptr;
}

bool BlockLut::sample(const Vec3& pos, double& value) const {
  const double idx[3] = {pos.x / grid_.spacing(0) - 0.5,
                         pos.y / grid_.spacing(1) - 0.5,
                         pos.z / grid_.spacing(2) - 0.5};
  const DownsampledBlock* b = locate(idx);
  if (b == nullptr) return false;

  // Coarse-lattice coordinates within the block.
  int64_t m0[3];
  double f[3];
  for (int a = 0; a < 3; ++a) {
    const double m =
        (idx[a] - static_cast<double>(b->bounds.lo[a])) / b->stride;
    const double clamped =
        std::clamp(m, 0.0, static_cast<double>(b->samples[a] - 1));
    m0[a] = std::min(static_cast<int64_t>(clamped), b->samples[a] - 2);
    m0[a] = std::max<int64_t>(m0[a], 0);
    f[a] = b->samples[a] == 1 ? 0.0 : clamped - static_cast<double>(m0[a]);
  }
  auto v = [&](int64_t di, int64_t dj, int64_t dk) {
    const int64_t i = std::min(m0[0] + di, b->samples[0] - 1);
    const int64_t j = std::min(m0[1] + dj, b->samples[1] - 1);
    const int64_t k = std::min(m0[2] + dk, b->samples[2] - 1);
    return b->values[static_cast<size_t>(
        (k * b->samples[1] + j) * b->samples[0] + i)];
  };
  const double c00 = v(0, 0, 0) * (1 - f[0]) + v(1, 0, 0) * f[0];
  const double c10 = v(0, 1, 0) * (1 - f[0]) + v(1, 1, 0) * f[0];
  const double c01 = v(0, 0, 1) * (1 - f[0]) + v(1, 0, 1) * f[0];
  const double c11 = v(0, 1, 1) * (1 - f[0]) + v(1, 1, 1) * f[0];
  const double c0 = c00 * (1 - f[1]) + c10 * f[1];
  const double c1 = c01 * (1 - f[1]) + c11 * f[1];
  value = c0 * (1 - f[2]) + c1 * f[2];
  return true;
}

}  // namespace hia
