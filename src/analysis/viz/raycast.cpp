#include "analysis/viz/raycast.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace hia {

bool Aabb::intersect(const Ray& ray, double& t_enter, double& t_exit) const {
  t_enter = 0.0;
  t_exit = std::numeric_limits<double>::infinity();
  const double o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
  const double d[3] = {ray.direction.x, ray.direction.y, ray.direction.z};
  const double lo_[3] = {lo.x, lo.y, lo.z};
  const double hi_[3] = {hi.x, hi.y, hi.z};
  for (int a = 0; a < 3; ++a) {
    if (std::abs(d[a]) < 1e-14) {
      if (o[a] < lo_[a] || o[a] > hi_[a]) return false;
      continue;
    }
    double t0 = (lo_[a] - o[a]) / d[a];
    double t1 = (hi_[a] - o[a]) / d[a];
    if (t0 > t1) std::swap(t0, t1);
    t_enter = std::max(t_enter, t0);
    t_exit = std::min(t_exit, t1);
    if (t_enter > t_exit) return false;
  }
  return true;
}

Aabb physical_bounds(const GlobalGrid& grid, const Box3& box) {
  Aabb b;
  b.lo = Vec3{grid.coord(0, box.lo[0]) - 0.5 * grid.spacing(0),
              grid.coord(1, box.lo[1]) - 0.5 * grid.spacing(1),
              grid.coord(2, box.lo[2]) - 0.5 * grid.spacing(2)};
  b.hi = Vec3{grid.coord(0, box.hi[0] - 1) + 0.5 * grid.spacing(0),
              grid.coord(1, box.hi[1] - 1) + 0.5 * grid.spacing(1),
              grid.coord(2, box.hi[2] - 1) + 0.5 * grid.spacing(2)};
  return b;
}

BrickSampler::BrickSampler(const GlobalGrid& grid, const Box3& box,
                           std::span<const double> values)
    : grid_(grid), box_(box), values_(values) {
  HIA_REQUIRE(values.size() == static_cast<size_t>(box.num_cells()),
              "value buffer does not match brick box");
}

bool BrickSampler::sample(const Vec3& pos, double& value) const {
  // Continuous index coordinates: point i sits at spacing * (i + 0.5).
  const double c[3] = {pos.x / grid_.spacing(0) - 0.5,
                       pos.y / grid_.spacing(1) - 0.5,
                       pos.z / grid_.spacing(2) - 0.5};
  int64_t i0[3];
  double f[3];
  for (int a = 0; a < 3; ++a) {
    // Clamp into [lo, hi-1] so brick-edge samples extrapolate flat.
    const double clamped =
        std::clamp(c[a], static_cast<double>(box_.lo[a]),
                   static_cast<double>(box_.hi[a] - 1));
    i0[a] = std::min(static_cast<int64_t>(clamped), box_.hi[a] - 2);
    i0[a] = std::max(i0[a], box_.lo[a]);
    f[a] = box_.extent(a) == 1
               ? 0.0
               : clamped - static_cast<double>(i0[a]);
  }
  auto v = [&](int64_t di, int64_t dj, int64_t dk) {
    const int64_t i = std::min(i0[0] + di, box_.hi[0] - 1);
    const int64_t j = std::min(i0[1] + dj, box_.hi[1] - 1);
    const int64_t k = std::min(i0[2] + dk, box_.hi[2] - 1);
    return values_[box_.offset(i, j, k)];
  };
  const double c00 = v(0, 0, 0) * (1 - f[0]) + v(1, 0, 0) * f[0];
  const double c10 = v(0, 1, 0) * (1 - f[0]) + v(1, 1, 0) * f[0];
  const double c01 = v(0, 0, 1) * (1 - f[0]) + v(1, 0, 1) * f[0];
  const double c11 = v(0, 1, 1) * (1 - f[0]) + v(1, 1, 1) * f[0];
  const double c0 = c00 * (1 - f[1]) + c10 * f[1];
  const double c1 = c01 * (1 - f[1]) + c11 * f[1];
  value = c0 * (1 - f[2]) + c1 * f[2];
  return true;
}

void render_volume(const OrthoCamera& camera, const VolumeSampler& sampler,
                   const Aabb& bounds, const TransferFunction& tf,
                   const RenderParams& params, Image& image) {
  HIA_REQUIRE(image.width() == camera.pixels_x() &&
                  image.height() == camera.pixels_y(),
              "image dimensions must match the camera");

  for (int y = 0; y < camera.pixels_y(); ++y) {
    for (int x = 0; x < camera.pixels_x(); ++x) {
      const Ray ray = camera.ray(x, y);
      double t0, t1;
      if (!bounds.intersect(ray, t0, t1)) continue;

      Rgba acc{};  // premultiplied accumulation, front-to-back
      for (double t = t0 + 0.5 * params.step; t < t1;
           t += params.step) {
        const Vec3 pos = ray.origin + ray.direction * t;
        double value;
        if (!sampler.sample(pos, value)) continue;
        Rgba s = tf.sample(value);
        const float alpha = TransferFunction::corrected_alpha(
            s.a, params.step, params.reference_step);
        const float w = (1.0f - acc.a) * alpha;
        acc.r += w * s.r;
        acc.g += w * s.g;
        acc.b += w * s.b;
        acc.a += w;
        if (acc.a >= params.early_exit_alpha) break;
      }
      image.at(x, y) = acc;
    }
  }
}

}  // namespace hia
