// Orthographic camera for the volume renderer. Orthographic projection
// keeps brick-order compositing exact for axis-aligned domain
// decompositions (sort-last rendering with a total depth order).
#pragma once

#include "util/vec3.hpp"

namespace hia {

struct Ray {
  Vec3 origin;
  Vec3 direction;  // unit length
};

class OrthoCamera {
 public:
  /// Looks from `eye` toward `target`; the film plane is centered at `eye`,
  /// spanning `width` x `height` in physical units.
  OrthoCamera(const Vec3& eye, const Vec3& target, const Vec3& up,
              double width, double height, int pixels_x, int pixels_y)
      : eye_(eye),
        forward_((target - eye).normalized()),
        width_(width),
        height_(height),
        px_(pixels_x),
        py_(pixels_y) {
    right_ = forward_.cross(up).normalized();
    up_ = right_.cross(forward_).normalized();
  }

  [[nodiscard]] Ray ray(int x, int y) const {
    const double u =
        ((static_cast<double>(x) + 0.5) / px_ - 0.5) * width_;
    const double v =
        ((static_cast<double>(y) + 0.5) / py_ - 0.5) * height_;
    return Ray{eye_ + right_ * u + up_ * v, forward_};
  }

  [[nodiscard]] int pixels_x() const { return px_; }
  [[nodiscard]] int pixels_y() const { return py_; }
  [[nodiscard]] const Vec3& forward() const { return forward_; }

  /// A default view of the unit-ish domain: slightly off-axis so all three
  /// dimensions are visible.
  static OrthoCamera default_view(const Vec3& domain_size, int px, int py) {
    const Vec3 center = domain_size * 0.5;
    const Vec3 eye = center + Vec3{-1.2, -0.9, -1.5} * domain_size.norm();
    const double extent = 1.25 * domain_size.norm();
    return OrthoCamera(eye, center, Vec3{0.0, 1.0, 0.0}, extent, extent, px,
                       py);
  }

 private:
  Vec3 eye_;
  Vec3 forward_;
  Vec3 right_, up_;
  double width_, height_;
  int px_, py_;
};

}  // namespace hia
