#include "analysis/viz/compositor.hpp"

#include <algorithm>

#include "analysis/viz/raycast.hpp"
#include "util/error.hpp"

namespace hia {

double brick_depth(const GlobalGrid& grid, const Box3& box,
                   const OrthoCamera& camera) {
  const Aabb b = physical_bounds(grid, box);
  const Vec3 center = (b.lo + b.hi) * 0.5;
  return center.dot(camera.forward());
}

Image composite(std::vector<BrickImage> bricks) {
  HIA_REQUIRE(!bricks.empty(), "nothing to composite");
  std::sort(bricks.begin(), bricks.end(),
            [](const BrickImage& a, const BrickImage& b) {
              return a.depth < b.depth;  // front first
            });

  Image out(bricks.front().image.width(), bricks.front().image.height());
  // Accumulate back-to-front with the "under" operator: iterate bricks from
  // the back, placing each in front of the accumulation so far.
  for (auto it = bricks.rbegin(); it != bricks.rend(); ++it) {
    out.under(it->image);
  }
  return out;
}

}  // namespace hia
