// Isosurface extraction via marching tetrahedra.
//
// The second classic in-situ visualization product besides volume
// rendering: a triangle mesh of the level set {f = iso}. Marching
// tetrahedra (each grid cell split into 6 tetrahedra) avoids marching
// cubes' ambiguous cases and its 256-entry table while producing a
// consistent, crack-free surface across cell and rank boundaries: vertex
// positions depend only on the two sample values of the crossed edge, so
// two ranks extracting over blocks that share a face produce identical
// triangles along it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/box.hpp"
#include "sim/grid.hpp"
#include "util/vec3.hpp"

namespace hia {

/// An indexed triangle mesh in physical coordinates.
struct TriangleMesh {
  std::vector<Vec3> vertices;
  std::vector<std::array<uint32_t, 3>> triangles;

  [[nodiscard]] size_t num_vertices() const { return vertices.size(); }
  [[nodiscard]] size_t num_triangles() const { return triangles.size(); }

  /// Total surface area.
  [[nodiscard]] double area() const;

  /// Appends another mesh (no vertex welding).
  void append(const TriangleMesh& other);

  /// Flat double encoding for Dart transport.
  [[nodiscard]] std::vector<double> serialize() const;
  static TriangleMesh deserialize(std::span<const double> data);
};

/// Extracts the isosurface of `values` (packed over `box`, grid-registered
/// sample positions) at `iso`. Cells are the cubes between 8 neighboring
/// samples; only cells fully inside `box` are marched, so extracting over
/// each rank's extended block tiles the domain without duplicate cells.
TriangleMesh extract_isosurface(const GlobalGrid& grid, const Box3& box,
                                std::span<const double> values, double iso);

/// Writes the mesh as a Wavefront OBJ file.
void write_obj(const TriangleMesh& mesh, const std::string& path);

}  // namespace hia
