#include "analysis/viz/isosurface.hpp"

#include <array>
#include <cmath>
#include <fstream>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace hia {

double TriangleMesh::area() const {
  double total = 0.0;
  for (const auto& t : triangles) {
    const Vec3& a = vertices[t[0]];
    const Vec3& b = vertices[t[1]];
    const Vec3& c = vertices[t[2]];
    total += 0.5 * (b - a).cross(c - a).norm();
  }
  return total;
}

void TriangleMesh::append(const TriangleMesh& other) {
  const auto base = static_cast<uint32_t>(vertices.size());
  vertices.insert(vertices.end(), other.vertices.begin(),
                  other.vertices.end());
  triangles.reserve(triangles.size() + other.triangles.size());
  for (const auto& t : other.triangles) {
    triangles.push_back({t[0] + base, t[1] + base, t[2] + base});
  }
}

std::vector<double> TriangleMesh::serialize() const {
  std::vector<double> out;
  out.reserve(2 + vertices.size() * 3 + triangles.size() * 3);
  out.push_back(static_cast<double>(vertices.size()));
  out.push_back(static_cast<double>(triangles.size()));
  for (const Vec3& v : vertices) {
    out.push_back(v.x);
    out.push_back(v.y);
    out.push_back(v.z);
  }
  for (const auto& t : triangles) {
    out.push_back(t[0]);
    out.push_back(t[1]);
    out.push_back(t[2]);
  }
  return out;
}

TriangleMesh TriangleMesh::deserialize(std::span<const double> data) {
  HIA_REQUIRE(data.size() >= 2, "mesh payload too short");
  TriangleMesh m;
  const auto nv = round_to<size_t>(data[0]);
  const auto nt = round_to<size_t>(data[1]);
  HIA_REQUIRE(data.size() == 2 + nv * 3 + nt * 3,
              "mesh payload size mismatch");
  size_t off = 2;
  m.vertices.reserve(nv);
  for (size_t v = 0; v < nv; ++v) {
    m.vertices.push_back(
        Vec3{data[off], data[off + 1], data[off + 2]});
    off += 3;
  }
  m.triangles.reserve(nt);
  for (size_t t = 0; t < nt; ++t) {
    m.triangles.push_back({round_to<uint32_t>(data[off]),
                           round_to<uint32_t>(data[off + 1]),
                           round_to<uint32_t>(data[off + 2])});
    off += 3;
    for (const uint32_t idx : m.triangles.back()) {
      HIA_REQUIRE(idx < nv, "mesh triangle index out of range");
    }
  }
  return m;
}

namespace {

// Kuhn (Freudenthal) subdivision: 6 tetrahedra per cell, all sharing the
// main diagonal corner0-corner6. Identical in every cell, which makes the
// induced face triangulation globally consistent (crack-free).
// Cube corner numbering: bit 0 = +x, bit 1 = +y, bit 2 = +z.
constexpr std::array<std::array<int, 4>, 6> kTets{{{0, 1, 3, 7},
                                                   {0, 1, 5, 7},
                                                   {0, 4, 5, 7},
                                                   {0, 4, 6, 7},
                                                   {0, 2, 6, 7},
                                                   {0, 2, 3, 7}}};

Vec3 interpolate(const Vec3& pa, const Vec3& pb, double fa, double fb,
                 double iso) {
  const double denom = fb - fa;
  const double t = denom == 0.0 ? 0.5 : (iso - fa) / denom;
  return pa + (pb - pa) * t;
}

void march_tet(const std::array<Vec3, 8>& pos,
               const std::array<double, 8>& val,
               const std::array<int, 4>& tet, double iso,
               TriangleMesh& mesh) {
  int above_mask = 0;
  for (int c = 0; c < 4; ++c) {
    if (val[static_cast<size_t>(tet[static_cast<size_t>(c)])] >= iso) {
      above_mask |= 1 << c;
    }
  }
  if (above_mask == 0 || above_mask == 15) return;

  auto edge_point = [&](int a, int b) {
    const int ia = tet[static_cast<size_t>(a)];
    const int ib = tet[static_cast<size_t>(b)];
    return interpolate(pos[static_cast<size_t>(ia)],
                       pos[static_cast<size_t>(ib)],
                       val[static_cast<size_t>(ia)],
                       val[static_cast<size_t>(ib)], iso);
  };
  auto emit = [&](const Vec3& a, const Vec3& b, const Vec3& c) {
    const auto base = static_cast<uint32_t>(mesh.vertices.size());
    mesh.vertices.push_back(a);
    mesh.vertices.push_back(b);
    mesh.vertices.push_back(c);
    mesh.triangles.push_back({base, base + 1, base + 2});
  };

  // One corner separated (1 or 3 above): single triangle. Two-and-two:
  // a quad split into two triangles.
  switch (above_mask) {
    case 1: case 14:
      emit(edge_point(0, 1), edge_point(0, 2), edge_point(0, 3));
      break;
    case 2: case 13:
      emit(edge_point(1, 0), edge_point(1, 2), edge_point(1, 3));
      break;
    case 4: case 11:
      emit(edge_point(2, 0), edge_point(2, 1), edge_point(2, 3));
      break;
    case 8: case 7:
      emit(edge_point(3, 0), edge_point(3, 1), edge_point(3, 2));
      break;
    case 3: case 12: {  // {0,1} vs {2,3}
      const Vec3 a = edge_point(0, 2), b = edge_point(0, 3);
      const Vec3 c = edge_point(1, 3), d = edge_point(1, 2);
      emit(a, b, c);
      emit(a, c, d);
      break;
    }
    case 5: case 10: {  // {0,2} vs {1,3}
      const Vec3 a = edge_point(0, 1), b = edge_point(0, 3);
      const Vec3 c = edge_point(2, 3), d = edge_point(2, 1);
      emit(a, b, c);
      emit(a, c, d);
      break;
    }
    case 6: case 9: {  // {1,2} vs {0,3}
      const Vec3 a = edge_point(1, 0), b = edge_point(1, 3);
      const Vec3 c = edge_point(2, 3), d = edge_point(2, 0);
      emit(a, b, c);
      emit(a, c, d);
      break;
    }
    default:
      HIA_ASSERT(false);
  }
}

}  // namespace

TriangleMesh extract_isosurface(const GlobalGrid& grid, const Box3& box,
                                std::span<const double> values, double iso) {
  HIA_REQUIRE(values.size() == static_cast<size_t>(box.num_cells()),
              "value buffer does not match box");
  TriangleMesh mesh;

  for (int64_t k = box.lo[2]; k < box.hi[2] - 1; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1] - 1; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0] - 1; ++i) {
        std::array<Vec3, 8> pos;
        std::array<double, 8> val;
        bool any_above = false, any_below = false;
        for (int c = 0; c < 8; ++c) {
          const int64_t ci = i + (c & 1);
          const int64_t cj = j + ((c >> 1) & 1);
          const int64_t ck = k + ((c >> 2) & 1);
          pos[static_cast<size_t>(c)] =
              Vec3{grid.coord(0, ci), grid.coord(1, cj), grid.coord(2, ck)};
          const double v = values[box.offset(ci, cj, ck)];
          val[static_cast<size_t>(c)] = v;
          (v >= iso ? any_above : any_below) = true;
        }
        if (!any_above || !any_below) continue;
        for (const auto& tet : kTets) {
          march_tet(pos, val, tet, iso, mesh);
        }
      }
    }
  }
  return mesh;
}

void write_obj(const TriangleMesh& mesh, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  HIA_REQUIRE(out.good(), "cannot open OBJ for write: " + path);
  out << "# HIA isosurface: " << mesh.num_vertices() << " vertices, "
      << mesh.num_triangles() << " triangles\n";
  for (const Vec3& v : mesh.vertices) {
    out << "v " << v.x << " " << v.y << " " << v.z << "\n";
  }
  for (const auto& t : mesh.triangles) {
    out << "f " << t[0] + 1 << " " << t[1] + 1 << " " << t[2] + 1 << "\n";
  }
  HIA_REQUIRE(out.good(), "OBJ write failed: " + path);
}

}  // namespace hia
