// Volume ray casting: the compute kernel shared by both visualization
// variants. The in-situ variant renders each rank's full-resolution brick
// (BrickSampler) and composites; the hybrid variant renders the
// down-sampled blocks through the block look-up table (BlockLut, which also
// implements VolumeSampler) on a single in-transit core.
#pragma once

#include <span>

#include "analysis/viz/camera.hpp"
#include "analysis/viz/image.hpp"
#include "analysis/viz/transfer_function.hpp"
#include "sim/box.hpp"
#include "sim/grid.hpp"
#include "util/vec3.hpp"

namespace hia {

/// Physical-space axis-aligned bounds.
struct Aabb {
  Vec3 lo, hi;

  /// Ray-box intersection; returns false on miss, else [t_enter, t_exit].
  [[nodiscard]] bool intersect(const Ray& ray, double& t_enter,
                               double& t_exit) const;
};

/// Physical bounds of an index-space box on the given grid (cell-centered
/// samples: the box of point positions, padded half a cell outward).
Aabb physical_bounds(const GlobalGrid& grid, const Box3& box);

/// Scalar field sampled at arbitrary physical positions.
class VolumeSampler {
 public:
  virtual ~VolumeSampler() = default;
  /// Value at `pos`; false when pos is outside the sampler's support.
  virtual bool sample(const Vec3& pos, double& value) const = 0;
};

/// Trilinear sampler over one full-resolution brick.
class BrickSampler final : public VolumeSampler {
 public:
  BrickSampler(const GlobalGrid& grid, const Box3& box,
               std::span<const double> values);

  bool sample(const Vec3& pos, double& value) const override;

 private:
  const GlobalGrid& grid_;
  Box3 box_;
  std::span<const double> values_;
};

struct RenderParams {
  double step = 0.004;          // ray-march step, physical units
  double reference_step = 0.004;  // step the transfer function assumes
  float early_exit_alpha = 0.99f;
};

/// Marches all camera rays through `bounds`, sampling `sampler` and
/// compositing front-to-back into `image` (premultiplied). Pixels whose
/// rays miss `bounds` are left untouched, so per-brick images can be
/// composited afterwards.
void render_volume(const OrthoCamera& camera, const VolumeSampler& sampler,
                   const Aabb& bounds, const TransferFunction& tf,
                   const RenderParams& params, Image& image);

}  // namespace hia
