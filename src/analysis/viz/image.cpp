#include "analysis/viz/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include "util/numeric.hpp"

namespace hia {

void Image::under(const Image& front) {
  HIA_REQUIRE(front.width() == width_ && front.height() == height_,
              "image dimensions mismatch");
  for (size_t i = 0; i < pixels_.size(); ++i) {
    const Rgba& f = front.pixels_[i];
    Rgba& b = pixels_[i];
    const float keep = 1.0f - f.a;
    b.r = f.r + keep * b.r;
    b.g = f.g + keep * b.g;
    b.b = f.b + keep * b.b;
    b.a = f.a + keep * b.a;
  }
}

void write_ppm(const Image& image, const std::string& path,
               float background) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  HIA_REQUIRE(out.good(), "cannot open PPM for write: " + path);
  out << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  auto to_byte = [](float v) {
    return static_cast<unsigned char>(
        std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
  };
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const Rgba& p = image.at(x, y);
      const float keep = 1.0f - p.a;
      const unsigned char rgb[3] = {to_byte(p.r + keep * background),
                                    to_byte(p.g + keep * background),
                                    to_byte(p.b + keep * background)};
      out.write(reinterpret_cast<const char*>(rgb), 3);
    }
  }
  HIA_REQUIRE(out.good(), "PPM write failed: " + path);
}

double image_mse(const Image& a, const Image& b) {
  HIA_REQUIRE(a.width() == b.width() && a.height() == b.height(),
              "image dimensions mismatch");
  double sum = 0.0;
  const auto& pa = a.pixels();
  const auto& pb = b.pixels();
  for (size_t i = 0; i < pa.size(); ++i) {
    const double dr = pa[i].r - pb[i].r;
    const double dg = pa[i].g - pb[i].g;
    const double db = pa[i].b - pb[i].b;
    sum += dr * dr + dg * dg + db * db;
  }
  return sum / (3.0 * static_cast<double>(pa.size()));
}

std::vector<double> serialize_image(const Image& image) {
  std::vector<double> out;
  out.reserve(2 + static_cast<size_t>(image.width()) *
                      static_cast<size_t>(image.height()) * 4);
  out.push_back(image.width());
  out.push_back(image.height());
  for (const Rgba& p : image.pixels()) {
    out.push_back(p.r);
    out.push_back(p.g);
    out.push_back(p.b);
    out.push_back(p.a);
  }
  return out;
}

Image deserialize_image(std::span<const double> data) {
  HIA_REQUIRE(data.size() >= 2, "image payload too short");
  const int w = round_to<int>(data[0]);
  const int h = round_to<int>(data[1]);
  HIA_REQUIRE(w > 0 && h > 0 &&
                  data.size() == 2 + static_cast<size_t>(w) *
                                     static_cast<size_t>(h) * 4,
              "image payload size mismatch");
  Image img(w, h);
  size_t off = 2;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      Rgba& p = img.at(x, y);
      p.r = static_cast<float>(data[off++]);
      p.g = static_cast<float>(data[off++]);
      p.b = static_cast<float>(data[off++]);
      p.a = static_cast<float>(data[off++]);
    }
  }
  return img;
}

double image_psnr(const Image& a, const Image& b) {
  const double mse = image_mse(a, b);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / mse);
}

}  // namespace hia
