// Sort-last compositing for the in-situ parallel renderer: every rank
// renders its own brick into a sparse full-frame image; the compositor
// orders the partial images by view depth and blends front-to-back.
// With an orthographic camera and an axis-aligned block decomposition the
// depth order is total, so the result is exact.
#pragma once

#include <vector>

#include "analysis/viz/camera.hpp"
#include "analysis/viz/image.hpp"
#include "sim/box.hpp"
#include "sim/grid.hpp"
#include "util/vec3.hpp"

namespace hia {

struct BrickImage {
  Image image;
  double depth = 0.0;  // dot(brick center, view direction)
};

/// View depth key for a brick (smaller = closer to the camera).
double brick_depth(const GlobalGrid& grid, const Box3& box,
                   const OrthoCamera& camera);

/// Blends partial images front-to-back in depth order. All images must
/// share dimensions.
Image composite(std::vector<BrickImage> bricks);

}  // namespace hia
