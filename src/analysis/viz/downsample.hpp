// The in-situ half of the hybrid visualization pipeline: strided
// down-sampling of each rank's brick ("at every 8th grid point", Fig. 2),
// producing a small block whose bounds metadata lets the in-transit
// renderer place it without volume reconstruction.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "sim/box.hpp"
#include "sim/grid.hpp"

namespace hia {

struct DownsampledBlock {
  Box3 bounds;                       // original block, global index space
  int stride = 1;
  std::array<int64_t, 3> samples{};  // retained points per axis
  std::vector<double> values;        // x-fastest

  [[nodiscard]] size_t byte_size() const {
    return values.size() * sizeof(double) + sizeof(Box3) + sizeof(int) +
           sizeof(samples);
  }

  /// Flat double encoding for Dart transport.
  [[nodiscard]] std::vector<double> serialize() const;
  static DownsampledBlock deserialize(std::span<const double> data);
};

/// Keeps every `stride`-th point of `values` (x-fastest over `box`) along
/// each axis, starting at the box origin.
DownsampledBlock downsample_block(const Box3& box,
                                  std::span<const double> values, int stride);

/// Reduction factor in element count (original / retained).
double downsample_ratio(const DownsampledBlock& block);

}  // namespace hia
