// RGBA float images, PPM output, and image-difference metrics (PSNR) used
// by the Fig. 2 in-situ vs. hybrid rendering comparison.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hia {

struct Rgba {
  float r = 0.0f, g = 0.0f, b = 0.0f, a = 0.0f;
};

/// Premultiplied-alpha float image.
class Image {
 public:
  Image(int width, int height) : width_(width), height_(height) {
    HIA_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
    pixels_.assign(static_cast<size_t>(width) * static_cast<size_t>(height),
                   Rgba{});
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  [[nodiscard]] Rgba& at(int x, int y) {
    HIA_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_);
    return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                   static_cast<size_t>(x)];
  }
  [[nodiscard]] const Rgba& at(int x, int y) const {
    return const_cast<Image*>(this)->at(x, y);
  }

  [[nodiscard]] const std::vector<Rgba>& pixels() const { return pixels_; }

  /// Composites `front` over this image ("over" operator, premultiplied).
  void under(const Image& front);

 private:
  int width_, height_;
  std::vector<Rgba> pixels_;
};

/// Writes an 8-bit PPM, blending over the given background grey level.
void write_ppm(const Image& image, const std::string& path,
               float background = 0.0f);

/// Mean squared error over RGB (alpha-blended against black).
double image_mse(const Image& a, const Image& b);

/// Flat double encoding (width, height, then RGBA per pixel) for transport
/// through Dart / Comm.
std::vector<double> serialize_image(const Image& image);
Image deserialize_image(std::span<const double> data);

/// Peak signal-to-noise ratio in dB (infinity for identical images).
double image_psnr(const Image& a, const Image& b);

}  // namespace hia
