// The in-transit half of the hybrid visualization pipeline.
//
// "A single, serial in-transit node receives all blocks of down-sampled
// data and generates a look-up table that records the upper and lower
// bounds of each block to encode their spatial relationship. We use this
// small look-up table to identify voxel positions during the ray casting
// process, avoiding expensive visibility sorting or volume reconstruction
// steps." (paper §III, Visualization)
//
// BlockLut implements VolumeSampler: each sample locates the containing
// block through the bounds table (with a last-block cache, since ray
// marching has strong spatial coherence) and interpolates trilinearly on
// that block's coarse lattice.
#pragma once

#include <vector>

#include "analysis/viz/downsample.hpp"
#include "analysis/viz/raycast.hpp"
#include "sim/grid.hpp"

namespace hia {

class BlockLut final : public VolumeSampler {
 public:
  explicit BlockLut(const GlobalGrid& grid) : grid_(grid) {}

  /// Registers a down-sampled block (takes ownership).
  void add_block(DownsampledBlock block);

  [[nodiscard]] size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] size_t total_samples() const;

  /// The look-up-table entry count x bounds pairs — the "small look-up
  /// table" of the paper; exposed for size accounting in the benches.
  [[nodiscard]] size_t lut_bytes() const {
    return blocks_.size() * sizeof(Box3);
  }

  bool sample(const Vec3& pos, double& value) const override;

 private:
  [[nodiscard]] const DownsampledBlock* locate(const double idx[3]) const;

  const GlobalGrid& grid_;
  std::vector<DownsampledBlock> blocks_;
  mutable const DownsampledBlock* cache_ = nullptr;
};

}  // namespace hia
