#include "analysis/viz/downsample.hpp"

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace hia {

std::vector<double> DownsampledBlock::serialize() const {
  std::vector<double> out;
  out.reserve(10 + values.size());
  for (int a = 0; a < 3; ++a) out.push_back(static_cast<double>(bounds.lo[a]));
  for (int a = 0; a < 3; ++a) out.push_back(static_cast<double>(bounds.hi[a]));
  out.push_back(static_cast<double>(stride));
  for (int a = 0; a < 3; ++a) out.push_back(static_cast<double>(samples[a]));
  out.insert(out.end(), values.begin(), values.end());
  return out;
}

DownsampledBlock DownsampledBlock::deserialize(std::span<const double> data) {
  HIA_REQUIRE(data.size() >= 10, "downsampled block payload too short");
  DownsampledBlock b;
  size_t off = 0;
  for (int a = 0; a < 3; ++a) b.bounds.lo[a] = round_to<int64_t>(data[off++]);
  for (int a = 0; a < 3; ++a) b.bounds.hi[a] = round_to<int64_t>(data[off++]);
  b.stride = round_to<int>(data[off++]);
  for (int a = 0; a < 3; ++a) b.samples[a] = round_to<int64_t>(data[off++]);
  const size_t expected = static_cast<size_t>(b.samples[0]) *
                          static_cast<size_t>(b.samples[1]) *
                          static_cast<size_t>(b.samples[2]);
  HIA_REQUIRE(data.size() == 10 + expected,
              "downsampled block payload size mismatch");
  b.values.assign(data.begin() + 10, data.end());
  return b;
}

DownsampledBlock downsample_block(const Box3& box,
                                  std::span<const double> values, int stride) {
  HIA_REQUIRE(stride >= 1, "stride must be >= 1");
  HIA_REQUIRE(values.size() == static_cast<size_t>(box.num_cells()),
              "value buffer does not match box");

  DownsampledBlock b;
  b.bounds = box;
  b.stride = stride;
  for (int a = 0; a < 3; ++a) {
    b.samples[a] = (box.extent(a) - 1) / stride + 1;
  }
  b.values.reserve(static_cast<size_t>(b.samples[0] * b.samples[1] *
                                       b.samples[2]));
  for (int64_t mk = 0; mk < b.samples[2]; ++mk) {
    for (int64_t mj = 0; mj < b.samples[1]; ++mj) {
      for (int64_t mi = 0; mi < b.samples[0]; ++mi) {
        const int64_t i = box.lo[0] + mi * stride;
        const int64_t j = box.lo[1] + mj * stride;
        const int64_t k = box.lo[2] + mk * stride;
        b.values.push_back(values[box.offset(i, j, k)]);
      }
    }
  }
  return b;
}

double downsample_ratio(const DownsampledBlock& block) {
  const double original = static_cast<double>(block.bounds.num_cells());
  const double retained = static_cast<double>(block.values.size());
  return retained == 0.0 ? 0.0 : original / retained;
}

}  // namespace hia
