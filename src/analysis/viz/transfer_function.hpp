// Piecewise-linear transfer function mapping scalar values to color and
// opacity, in the style of the combustion visualizations of Fig. 2 (hot
// temperature regions glow, cold coflow is transparent).
#pragma once

#include <vector>

#include "analysis/viz/image.hpp"

namespace hia {

class TransferFunction {
 public:
  struct ControlPoint {
    double value;
    Rgba color;  // straight (non-premultiplied) color + opacity
  };

  /// Control points must be passed in ascending value order.
  explicit TransferFunction(std::vector<ControlPoint> points);

  /// Straight-alpha color at `v` (clamped to the control range).
  [[nodiscard]] Rgba sample(double v) const;

  /// Per-unit-length opacity correction for a ray step of `dt` relative to
  /// the reference step the opacities were designed for.
  [[nodiscard]] static float corrected_alpha(float alpha, double dt,
                                             double reference_dt);

  /// "Flame" map over [lo, hi]: transparent blue–black, through red/orange,
  /// to bright yellow-white at the top of the range.
  static TransferFunction flame(double lo, double hi);

  /// Simple linear grayscale ramp over [lo, hi] with linear opacity.
  static TransferFunction grayscale(double lo, double hi);

 private:
  std::vector<ControlPoint> points_;
};

}  // namespace hia
