#include "analysis/viz/transfer_function.hpp"

#include <cmath>

#include "util/error.hpp"

namespace hia {

TransferFunction::TransferFunction(std::vector<ControlPoint> points)
    : points_(std::move(points)) {
  HIA_REQUIRE(points_.size() >= 2, "need at least two control points");
  for (size_t i = 1; i < points_.size(); ++i) {
    HIA_REQUIRE(points_[i].value > points_[i - 1].value,
                "control points must be strictly ascending");
  }
}

Rgba TransferFunction::sample(double v) const {
  if (v <= points_.front().value) return points_.front().color;
  if (v >= points_.back().value) return points_.back().color;
  size_t hi = 1;
  while (points_[hi].value < v) ++hi;
  const ControlPoint& a = points_[hi - 1];
  const ControlPoint& b = points_[hi];
  const float t =
      static_cast<float>((v - a.value) / (b.value - a.value));
  return Rgba{a.color.r + t * (b.color.r - a.color.r),
              a.color.g + t * (b.color.g - a.color.g),
              a.color.b + t * (b.color.b - a.color.b),
              a.color.a + t * (b.color.a - a.color.a)};
}

float TransferFunction::corrected_alpha(float alpha, double dt,
                                        double reference_dt) {
  // alpha' = 1 - (1 - alpha)^(dt / ref): keeps opacity density invariant
  // under step-size changes.
  return 1.0f - static_cast<float>(
                    std::pow(1.0 - static_cast<double>(alpha),
                             dt / reference_dt));
}

TransferFunction TransferFunction::flame(double lo, double hi) {
  const double d = hi - lo;
  return TransferFunction({
      {lo, {0.00f, 0.00f, 0.05f, 0.000f}},
      {lo + 0.35 * d, {0.15f, 0.00f, 0.20f, 0.004f}},
      {lo + 0.55 * d, {0.80f, 0.10f, 0.05f, 0.060f}},
      {lo + 0.75 * d, {1.00f, 0.55f, 0.05f, 0.200f}},
      {hi, {1.00f, 0.95f, 0.75f, 0.550f}},
  });
}

TransferFunction TransferFunction::grayscale(double lo, double hi) {
  return TransferFunction({
      {lo, {0.0f, 0.0f, 0.0f, 0.0f}},
      {hi, {1.0f, 1.0f, 1.0f, 0.4f}},
  });
}

}  // namespace hia
