#include "analysis/viz/slice.hpp"

#include "util/error.hpp"

namespace hia {

namespace {
/// The two in-plane axes for a slicing axis, in (u, v) order.
void plane_axes(int axis, int& ua, int& va) {
  ua = axis == 0 ? 1 : 0;
  va = axis == 2 ? 1 : 2;
}
}  // namespace

Slice extract_slice(const Box3& box, std::span<const double> values,
                    int axis, int64_t index) {
  HIA_REQUIRE(axis >= 0 && axis < 3, "axis must be 0, 1 or 2");
  HIA_REQUIRE(index >= box.lo[axis] && index < box.hi[axis],
              "slice plane does not intersect the box");
  HIA_REQUIRE(values.size() == static_cast<size_t>(box.num_cells()),
              "value buffer does not match box");

  int ua, va;
  plane_axes(axis, ua, va);

  Slice s;
  s.axis = axis;
  s.index = index;
  s.nu = box.extent(ua);
  s.nv = box.extent(va);
  s.values.reserve(static_cast<size_t>(s.nu * s.nv));

  int64_t c[3];
  c[axis] = index;
  for (int64_t v = box.lo[va]; v < box.hi[va]; ++v) {
    for (int64_t u = box.lo[ua]; u < box.hi[ua]; ++u) {
      c[ua] = u;
      c[va] = v;
      s.values.push_back(values[box.offset(c[0], c[1], c[2])]);
    }
  }
  return s;
}

Image render_slice(const Slice& slice, const TransferFunction& tf,
                   int scale) {
  HIA_REQUIRE(scale >= 1, "scale must be >= 1");
  Image img(static_cast<int>(slice.nu) * scale,
            static_cast<int>(slice.nv) * scale);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const Rgba c = tf.sample(slice.at(x / scale, y / scale));
      img.at(x, y) = Rgba{c.r, c.g, c.b, 1.0f};
    }
  }
  return img;
}

Slice assemble_slices(const GlobalGrid& grid,
                      const std::vector<Slice>& parts,
                      const std::vector<Box3>& boxes) {
  HIA_REQUIRE(!parts.empty() && parts.size() == boxes.size(),
              "need one box per slice part");
  const int axis = parts.front().axis;
  const int64_t index = parts.front().index;
  int ua, va;
  plane_axes(axis, ua, va);

  Slice out;
  out.axis = axis;
  out.index = index;
  out.nu = grid.dims[ua];
  out.nv = grid.dims[va];
  out.values.assign(static_cast<size_t>(out.nu * out.nv), 0.0);
  std::vector<bool> filled(out.values.size(), false);

  for (size_t p = 0; p < parts.size(); ++p) {
    const Slice& part = parts[p];
    const Box3& box = boxes[p];
    HIA_REQUIRE(part.axis == axis && part.index == index,
                "slice parts must share the plane");
    HIA_REQUIRE(part.nu == box.extent(ua) && part.nv == box.extent(va),
                "slice part does not match its box");
    for (int64_t v = 0; v < part.nv; ++v) {
      for (int64_t u = 0; u < part.nu; ++u) {
        const size_t dst = static_cast<size_t>(
            (v + box.lo[va]) * out.nu + (u + box.lo[ua]));
        out.values[dst] = part.at(u, v);
        filled[dst] = true;
      }
    }
  }
  for (const bool f : filled) {
    HIA_REQUIRE(f, "slice parts do not tile the plane");
  }
  return out;
}

}  // namespace hia
