// Axis-aligned slice extraction and rendering — the cheapest monitoring
// view ("linked views" companion to the volume renderings of Fig. 2):
// a 2-D cut through the volume colored by a transfer function.
#pragma once

#include <span>

#include "analysis/viz/image.hpp"
#include "analysis/viz/transfer_function.hpp"
#include "sim/box.hpp"
#include "sim/grid.hpp"

namespace hia {

/// A 2-D scalar slab extracted from a 3-D brick.
struct Slice {
  int axis = 2;          // slicing axis (the plane is normal to it)
  int64_t index = 0;     // global plane index along `axis`
  int64_t nu = 0, nv = 0;  // in-plane dimensions (the two other axes)
  std::vector<double> values;  // u-fastest

  [[nodiscard]] double at(int64_t u, int64_t v) const {
    return values[static_cast<size_t>(v * nu + u)];
  }
};

/// Extracts plane `index` (global coordinate along `axis`) from a brick of
/// `values` packed over `box`. The plane must intersect the box; the
/// returned slice covers only the box's in-plane extent.
Slice extract_slice(const Box3& box, std::span<const double> values,
                    int axis, int64_t index);

/// Renders a slice to an image (one pixel per sample, nearest lookup when
/// scaled), colored by the transfer function's RGB (alpha forced opaque).
Image render_slice(const Slice& slice, const TransferFunction& tf,
                   int scale = 1);

/// Stitches per-rank slices of the same global plane into the full plane.
/// Inputs must tile the plane exactly.
Slice assemble_slices(const GlobalGrid& grid,
                      const std::vector<Slice>& parts,
                      const std::vector<Box3>& boxes);

}  // namespace hia
