// Merge trees (join trees of superlevel sets).
//
// The merge tree of a scalar function f encodes the merging of contours as
// an isovalue sweeps from the top of the range downward (paper Fig. 3):
// a node is created at each local maximum when a new contour appears, arcs
// lengthen as the isovalue drops, and two arcs merge at a saddle.
//
// Conventions used throughout the topology library:
//   * vertices carry a global id (the grid's linear index) and a value;
//   * ties are broken by id ("simulation of simplicity"), so the order
//     (value, id) is total and every result is decomposition-independent;
//   * parent pointers point *downward*: toward lower function values.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace hia {

/// Total order "a is above b" on (value, id) pairs.
inline bool above(double value_a, uint64_t id_a, double value_b,
                  uint64_t id_b) {
  if (value_a != value_b) return value_a > value_b;
  return id_a > id_b;
}

/// A merge tree over named vertices. Parent indices point toward lower
/// values; the root (global minimum of the represented region) has
/// parent == kNoParent.
class MergeTree {
 public:
  static constexpr int64_t kNoParent = -1;

  struct Node {
    uint64_t id = 0;
    double value = 0.0;
    int64_t parent = kNoParent;  // index into nodes()
  };

  MergeTree() = default;
  explicit MergeTree(std::vector<Node> nodes);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  /// Index of the node with vertex id `id`, or -1.
  [[nodiscard]] int64_t index_of(uint64_t id) const;

  /// Indices of leaf nodes (nodes that are nobody's parent) — the local
  /// maxima of the represented function.
  [[nodiscard]] std::vector<int64_t> leaves() const;

  /// Indices of root nodes (parent == kNoParent). A merge tree of a
  /// connected domain has exactly one root.
  [[nodiscard]] std::vector<int64_t> roots() const;

  /// Number of children of each node.
  [[nodiscard]] std::vector<int> child_counts() const;

  /// Contracts regular nodes (exactly one child, one parent), keeping
  /// leaves, saddles (>= 2 children), and roots: the reduced tree of
  /// critical points. Node order is preserved for retained nodes.
  [[nodiscard]] MergeTree reduced() const;

  /// Checks structural invariants: parent indices valid, parents strictly
  /// below children in (value, id) order, no cycles. Returns a diagnostic
  /// string, empty when valid.
  [[nodiscard]] std::string validate() const;

  /// Sorts nodes by descending (value, id) and remaps parent indices;
  /// canonical form for equality comparison across construction orders.
  [[nodiscard]] MergeTree canonical() const;

  /// Structural equality on canonical forms (id/value/parent-id triples).
  [[nodiscard]] bool same_structure(const MergeTree& other) const;

 private:
  void rebuild_index();

  std::vector<Node> nodes_;
  std::unordered_map<uint64_t, int64_t> index_;
};

/// A persistence pair: a maximum (leaf) and the saddle at which its branch
/// merges into an older branch. The globally highest maximum pairs with the
/// root and has infinite persistence (represented by the root's value).
struct PersistencePair {
  uint64_t max_id = 0;
  double max_value = 0.0;
  uint64_t saddle_id = 0;
  double saddle_value = 0.0;

  [[nodiscard]] double persistence() const { return max_value - saddle_value; }
};

/// Branch decomposition by the elder rule: every leaf is paired with the
/// saddle where it merges into a branch with a higher maximum. Returned in
/// descending persistence order; the globally highest leaf pairs with the
/// root.
std::vector<PersistencePair> persistence_pairs(const MergeTree& tree);

/// Removes every branch with persistence below `threshold` (elder rule),
/// returning the simplified tree (reduced to critical points).
MergeTree simplify(const MergeTree& tree, double threshold);

}  // namespace hia
