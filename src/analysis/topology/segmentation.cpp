#include "analysis/topology/segmentation.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/error.hpp"

namespace hia {

namespace {
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t find(size_t x) {
    size_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const size_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }
  void unite(size_t a, size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<size_t> parent_;
};
}  // namespace

Segmentation segment_superlevel(const Box3& box,
                                std::span<const double> values,
                                double threshold) {
  const auto n = static_cast<size_t>(box.num_cells());
  HIA_REQUIRE(values.size() == n, "value buffer does not match box");

  UnionFind uf(n);
  const int64_t nx = box.extent(0), ny = box.extent(1);
  auto in_set = [&](size_t off) { return values[off] >= threshold; };

  // Union along the three negative-direction neighbors (each edge once).
  for (size_t off = 0; off < n; ++off) {
    if (!in_set(off)) continue;
    int64_t i, j, k;
    box.coords(off, i, j, k);
    if (i > box.lo[0] && in_set(off - 1)) uf.unite(off, off - 1);
    if (j > box.lo[1] && in_set(off - static_cast<size_t>(nx))) {
      uf.unite(off, off - static_cast<size_t>(nx));
    }
    if (k > box.lo[2] && in_set(off - static_cast<size_t>(nx * ny))) {
      uf.unite(off, off - static_cast<size_t>(nx * ny));
    }
  }

  Segmentation seg;
  seg.labels.assign(n, -1);
  std::map<size_t, int32_t> root_to_label;
  for (size_t off = 0; off < n; ++off) {
    if (!in_set(off)) continue;
    const size_t root = uf.find(off);
    auto [it, inserted] =
        root_to_label.emplace(root, static_cast<int32_t>(seg.features.size()));
    if (inserted) {
      Feature f;
      f.label = it->second;
      seg.features.push_back(f);
    }
    const int32_t label = it->second;
    seg.labels[off] = label;

    Feature& f = seg.features[static_cast<size_t>(label)];
    int64_t i, j, k;
    box.coords(off, i, j, k);
    ++f.voxels;
    f.centroid[0] += static_cast<double>(i);
    f.centroid[1] += static_cast<double>(j);
    f.centroid[2] += static_cast<double>(k);
    const uint64_t vid = static_cast<uint64_t>(off);
    if (f.voxels == 1 || values[off] > f.max_value ||
        (values[off] == f.max_value && vid > f.max_id)) {
      f.max_value = values[off];
      f.max_id = vid;
    }
  }
  for (Feature& f : seg.features) {
    if (f.voxels > 0) {
      for (double& c : f.centroid) c /= static_cast<double>(f.voxels);
    }
  }
  return seg;
}

std::vector<OverlapEdge> overlap_track(const Segmentation& a,
                                       const Segmentation& b) {
  HIA_REQUIRE(a.labels.size() == b.labels.size(),
              "segmentations cover different boxes");
  std::map<std::pair<int32_t, int32_t>, int64_t> counts;
  for (size_t off = 0; off < a.labels.size(); ++off) {
    const int32_t la = a.labels[off];
    const int32_t lb = b.labels[off];
    if (la >= 0 && lb >= 0) ++counts[{la, lb}];
  }
  std::vector<OverlapEdge> out;
  out.reserve(counts.size());
  for (const auto& [key, shared] : counts) {
    out.push_back(OverlapEdge{key.first, key.second, shared});
  }
  std::sort(out.begin(), out.end(),
            [](const OverlapEdge& x, const OverlapEdge& y) {
              return x.shared_voxels > y.shared_voxels;
            });
  return out;
}

TreeSegmentation segment_tree(const MergeTree& augmented_tree,
                              double threshold) {
  const auto& nodes = augmented_tree.nodes();
  const size_t n = nodes.size();

  // Sweep descending: when a node at/above the threshold is processed,
  // union it with each already-processed child (children are strictly
  // above their parent, so they are all in-set and already swept).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return above(nodes[a].value, nodes[a].id, nodes[b].value, nodes[b].id);
  });

  UnionFind uf(n);
  std::vector<std::vector<size_t>> children(n);
  for (size_t i = 0; i < n; ++i) {
    if (nodes[i].parent != MergeTree::kNoParent) {
      children[static_cast<size_t>(nodes[i].parent)].push_back(i);
    }
  }

  TreeSegmentation seg;
  for (const size_t u : order) {
    if (nodes[u].value < threshold) break;  // descending: rest is out
    for (const size_t c : children[u]) {
      uf.unite(c, u);
    }
  }

  // Representative maximum per component: the first in-set node of each
  // root encountered in descending order is its highest member.
  std::unordered_map<size_t, uint64_t> rep_of_root;
  std::unordered_map<uint64_t, int64_t> counts;
  for (const size_t u : order) {
    if (nodes[u].value < threshold) break;
    const size_t root = uf.find(u);
    auto [it, inserted] = rep_of_root.emplace(root, nodes[u].id);
    seg.label_of[nodes[u].id] = it->second;
    ++counts[it->second];
  }
  seg.features.assign(counts.begin(), counts.end());
  std::sort(seg.features.begin(), seg.features.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return seg;
}

TrackingSummary track_sequence(const std::vector<Segmentation>& frames,
                               int64_t min_voxels) {
  TrackingSummary summary;
  for (size_t t = 0; t + 1 < frames.size(); ++t) {
    const auto edges = overlap_track(frames[t], frames[t + 1]);
    std::vector<bool> continued(frames[t].features.size(), false);
    for (const OverlapEdge& e : edges) {
      continued[static_cast<size_t>(e.label_a)] = true;
    }
    for (size_t f = 0; f < frames[t].features.size(); ++f) {
      if (frames[t].features[f].voxels < min_voxels) continue;
      ++summary.features_total;
      if (continued[f]) ++summary.features_continued;
    }
  }
  return summary;
}

}  // namespace hia
