// In-situ stage of the hybrid topology pipeline: per-rank merge (join)
// subtree computation.
//
// Adapts the low-overhead in-core algorithm of Carr–Snoeyink–Axen [32]
// (sort + union-find, specialized to join trees of superlevel sets) to a
// rank's sub-domain. Following the paper, "special care must be taken to
// include additional boundary vertices to guarantee that neighboring
// subtrees can be glued appropriately":
//
//   * ranks compute over their block *extended by one layer in each
//     positive axis direction* (clamped to the domain), so adjacent blocks
//     share a full plane of vertices — the topological equivalent of
//     simulation ghost cells;
//   * the emitted subtree retains all critical vertices (maxima, merge
//     saddles, the local root) plus every vertex on a shared boundary
//     face, with edges linking each retained vertex to its nearest
//     retained ancestor.
//
// The union of all ranks' subtree edges, glued on shared vertex ids, has
// the same join tree as the full domain (restricted to retained vertices),
// which is what the in-transit streaming combiner computes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/topology/merge_tree.hpp"
#include "sim/box.hpp"
#include "sim/grid.hpp"

namespace hia {

/// The intermediate data a rank ships to the staging area: retained
/// vertices and gluing edges of its local merge subtree.
struct SubtreeData {
  std::vector<uint64_t> vertex_ids;   // global ids (grid linear index)
  std::vector<double> vertex_values;
  // 1 = interior to this block (no other rank's subtree references it, so
  // the streaming combiner may finalize it as soon as this subtree is
  // ingested); 0 = on a shared boundary face.
  std::vector<uint8_t> interior;
  // Edge k connects vertex_ids-index edge_child[k] -> edge_parent[k]
  // (child strictly above parent in (value, id) order).
  std::vector<uint32_t> edge_child;
  std::vector<uint32_t> edge_parent;

  [[nodiscard]] size_t num_vertices() const { return vertex_ids.size(); }
  [[nodiscard]] size_t num_edges() const { return edge_child.size(); }
  [[nodiscard]] size_t byte_size() const {
    return vertex_ids.size() *
               (sizeof(uint64_t) + sizeof(double) + sizeof(uint8_t)) +
           edge_child.size() * 2 * sizeof(uint32_t);
  }

  /// Flat double encoding for Dart transport (ids are < 2^53, exact).
  [[nodiscard]] std::vector<double> serialize() const;
  static SubtreeData deserialize(std::span<const double> data);
};

/// Global linear id of grid point (i, j, k).
inline uint64_t grid_vertex_id(const GlobalGrid& grid, int64_t i, int64_t j,
                               int64_t k) {
  return static_cast<uint64_t>((k * grid.dims[1] + j) * grid.dims[0] + i);
}

/// Computes the fully augmented local join tree of `values` over `box`
/// (x-fastest packed, 6-connectivity, descending sweep). Every vertex of
/// the box appears as a node; ids are global grid ids.
MergeTree build_local_tree(const GlobalGrid& grid, const Box3& box,
                           std::span<const double> values);

/// Extracts the glue subtree: critical vertices plus all vertices on faces
/// of `box` that are interior to the domain (shared with a neighbor), with
/// nearest-retained-ancestor edges.
SubtreeData extract_subtree(const GlobalGrid& grid, const Box3& box,
                            const MergeTree& local_tree);

/// Convenience: the in-situ computation a rank performs per timestep —
/// build_local_tree + extract_subtree on its extended block.
SubtreeData compute_rank_subtree(const GlobalGrid& grid, const Box3& block,
                                 std::span<const double> extended_values,
                                 const Box3& extended_box);

/// The extended box a rank computes over: block grown by +1 in each
/// positive direction, clamped to the domain.
Box3 extended_block(const GlobalGrid& grid, const Box3& block);

}  // namespace hia
