#include "analysis/topology/merge_tree.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace hia {

MergeTree::MergeTree(std::vector<Node> nodes) : nodes_(std::move(nodes)) {
  rebuild_index();
}

void MergeTree::rebuild_index() {
  index_.clear();
  index_.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const auto [it, inserted] =
        index_.emplace(nodes_[i].id, static_cast<int64_t>(i));
    HIA_REQUIRE(inserted, "duplicate vertex id in merge tree");
  }
}

int64_t MergeTree::index_of(uint64_t id) const {
  auto it = index_.find(id);
  return it == index_.end() ? -1 : it->second;
}

std::vector<int> MergeTree::child_counts() const {
  std::vector<int> counts(nodes_.size(), 0);
  for (const Node& n : nodes_) {
    if (n.parent != kNoParent) ++counts[static_cast<size_t>(n.parent)];
  }
  return counts;
}

std::vector<int64_t> MergeTree::leaves() const {
  const auto counts = child_counts();
  std::vector<int64_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (counts[i] == 0) out.push_back(static_cast<int64_t>(i));
  }
  return out;
}

std::vector<int64_t> MergeTree::roots() const {
  std::vector<int64_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == kNoParent) out.push_back(static_cast<int64_t>(i));
  }
  return out;
}

MergeTree MergeTree::reduced() const {
  const auto counts = child_counts();
  // Keep leaves, saddles, and roots; drop regular nodes (1 child + parent).
  std::vector<bool> keep(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    keep[i] = counts[i] != 1 || nodes_[i].parent == kNoParent;
  }

  // Nearest retained ancestor, memoized via path iteration.
  auto retained_ancestor = [&](int64_t start) {
    int64_t p = nodes_[static_cast<size_t>(start)].parent;
    while (p != kNoParent && !keep[static_cast<size_t>(p)]) {
      p = nodes_[static_cast<size_t>(p)].parent;
    }
    return p;
  };

  std::vector<int64_t> remap(nodes_.size(), -1);
  std::vector<Node> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!keep[i]) continue;
    remap[i] = static_cast<int64_t>(out.size());
    out.push_back(nodes_[i]);
  }
  for (Node& n : out) {
    // Recompute parent as nearest retained ancestor in the original tree.
    const int64_t orig = index_.at(n.id);
    const int64_t anc = retained_ancestor(orig);
    n.parent = anc == kNoParent ? kNoParent : remap[static_cast<size_t>(anc)];
  }
  return MergeTree(std::move(out));
}

std::string MergeTree::validate() const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.parent == kNoParent) continue;
    if (n.parent < 0 || n.parent >= static_cast<int64_t>(nodes_.size())) {
      return "node " + std::to_string(i) + " has out-of-range parent";
    }
    if (n.parent == static_cast<int64_t>(i)) {
      return "node " + std::to_string(i) + " is its own parent";
    }
    const Node& p = nodes_[static_cast<size_t>(n.parent)];
    if (!above(n.value, n.id, p.value, p.id)) {
      return "node " + std::to_string(i) +
             " is not strictly above its parent (order violation)";
    }
  }
  // Strict order along parent edges implies acyclicity.
  return {};
}

MergeTree MergeTree::canonical() const {
  std::vector<size_t> order(nodes_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return above(nodes_[a].value, nodes_[a].id, nodes_[b].value, nodes_[b].id);
  });
  std::vector<int64_t> remap(nodes_.size());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    remap[order[pos]] = static_cast<int64_t>(pos);
  }
  std::vector<Node> out;
  out.reserve(nodes_.size());
  for (const size_t idx : order) {
    Node n = nodes_[idx];
    if (n.parent != kNoParent) n.parent = remap[static_cast<size_t>(n.parent)];
    out.push_back(n);
  }
  return MergeTree(std::move(out));
}

bool MergeTree::same_structure(const MergeTree& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  const MergeTree a = canonical();
  const MergeTree b = other.canonical();
  for (size_t i = 0; i < a.nodes_.size(); ++i) {
    const Node& na = a.nodes_[i];
    const Node& nb = b.nodes_[i];
    if (na.id != nb.id || na.value != nb.value) return false;
    const bool root_a = na.parent == kNoParent;
    const bool root_b = nb.parent == kNoParent;
    if (root_a != root_b) return false;
    if (!root_a &&
        a.nodes_[static_cast<size_t>(na.parent)].id !=
            b.nodes_[static_cast<size_t>(nb.parent)].id) {
      return false;
    }
  }
  return true;
}

std::vector<PersistencePair> persistence_pairs(const MergeTree& tree) {
  const auto& nodes = tree.nodes();
  if (nodes.empty()) return {};

  std::vector<size_t> order(nodes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return above(nodes[a].value, nodes[a].id, nodes[b].value, nodes[b].id);
  });

  const auto counts = tree.child_counts();
  // Branch maxima arriving at each node from its children.
  std::vector<std::vector<int64_t>> arrivals(nodes.size());
  std::vector<PersistencePair> pairs;
  pairs.reserve(tree.leaves().size());

  auto is_above = [&](int64_t a, int64_t b) {
    return above(nodes[static_cast<size_t>(a)].value,
                 nodes[static_cast<size_t>(a)].id,
                 nodes[static_cast<size_t>(b)].value,
                 nodes[static_cast<size_t>(b)].id);
  };

  for (const size_t u : order) {
    int64_t best;
    if (counts[u] == 0) {
      best = static_cast<int64_t>(u);  // leaf: its own maximum
    } else {
      HIA_ASSERT(!arrivals[u].empty());
      best = arrivals[u][0];
      for (const int64_t a : arrivals[u]) {
        if (is_above(a, best)) best = a;
      }
      // Elder rule: every non-surviving branch dies at this saddle.
      for (const int64_t a : arrivals[u]) {
        if (a == best) continue;
        pairs.push_back(PersistencePair{
            nodes[static_cast<size_t>(a)].id,
            nodes[static_cast<size_t>(a)].value, nodes[u].id,
            nodes[u].value});
      }
    }
    const int64_t parent = nodes[u].parent;
    if (parent != MergeTree::kNoParent) {
      arrivals[static_cast<size_t>(parent)].push_back(best);
    } else {
      // Root: the surviving branch pairs with the root itself.
      pairs.push_back(PersistencePair{
          nodes[static_cast<size_t>(best)].id,
          nodes[static_cast<size_t>(best)].value, nodes[u].id,
          nodes[u].value});
    }
  }

  std::sort(pairs.begin(), pairs.end(),
            [](const PersistencePair& a, const PersistencePair& b) {
              return a.persistence() > b.persistence();
            });
  return pairs;
}

MergeTree simplify(const MergeTree& tree, double threshold) {
  const auto& nodes = tree.nodes();
  if (nodes.empty()) return tree;

  // Branch decomposition: branch_max[u] = the maximum whose branch passes
  // through u under the elder rule (recomputed as in persistence_pairs).
  std::vector<size_t> order(nodes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return above(nodes[a].value, nodes[a].id, nodes[b].value, nodes[b].id);
  });
  const auto counts = tree.child_counts();
  std::vector<std::vector<int64_t>> arrivals(nodes.size());
  std::vector<int64_t> branch_max(nodes.size(), -1);
  std::vector<double> branch_death(nodes.size(), 0.0);  // by max index

  auto is_above = [&](int64_t a, int64_t b) {
    return above(nodes[static_cast<size_t>(a)].value,
                 nodes[static_cast<size_t>(a)].id,
                 nodes[static_cast<size_t>(b)].value,
                 nodes[static_cast<size_t>(b)].id);
  };

  for (const size_t u : order) {
    int64_t best;
    if (counts[u] == 0) {
      best = static_cast<int64_t>(u);
    } else {
      best = arrivals[u][0];
      for (const int64_t a : arrivals[u]) {
        if (is_above(a, best)) best = a;
      }
      for (const int64_t a : arrivals[u]) {
        if (a != best) branch_death[static_cast<size_t>(a)] = nodes[u].value;
      }
    }
    branch_max[u] = best;
    const int64_t parent = nodes[u].parent;
    if (parent != MergeTree::kNoParent) {
      arrivals[static_cast<size_t>(parent)].push_back(best);
    } else {
      branch_death[static_cast<size_t>(best)] = nodes[u].value;
    }
  }

  // The root branch (highest maximum overall) is always kept.
  int64_t global_best = -1;
  for (size_t u = 0; u < nodes.size(); ++u) {
    if (counts[u] == 0 &&
        (global_best == -1 || is_above(static_cast<int64_t>(u), global_best)))
      global_best = static_cast<int64_t>(u);
  }

  std::vector<bool> keep_branch(nodes.size(), false);
  for (size_t u = 0; u < nodes.size(); ++u) {
    if (counts[u] != 0) continue;  // only maxima own branches
    const double pers = nodes[u].value - branch_death[u];
    keep_branch[u] =
        pers >= threshold || static_cast<int64_t>(u) == global_best;
  }

  std::vector<MergeTree::Node> out;
  std::vector<int64_t> remap(nodes.size(), -1);
  for (const size_t u : order) {  // descending order keeps parents later
    if (!keep_branch[static_cast<size_t>(branch_max[u])]) continue;
    remap[u] = static_cast<int64_t>(out.size());
    out.push_back(nodes[u]);
  }
  for (MergeTree::Node& n : out) {
    if (n.parent != MergeTree::kNoParent) {
      const int64_t mapped = remap[static_cast<size_t>(n.parent)];
      HIA_ASSERT(mapped != -1);  // parents of kept nodes are kept
      n.parent = mapped;
    }
  }
  return MergeTree(std::move(out)).reduced();
}

}  // namespace hia
