#include "analysis/topology/stream_combine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hia {

void StreamingCombiner::insert_vertex(uint64_t id, double value) {
  auto [it, inserted] = nodes_.try_emplace(id);
  if (!inserted) {
    HIA_REQUIRE(it->second.value == value,
                "vertex re-declared with a different value");
    return;
  }
  it->second.value = value;
  it->second.parent = kNone;
  peak_live_ = std::max(peak_live_, nodes_.size());
}

void StreamingCombiner::set_parent(uint64_t child, NodeRec& child_rec,
                                   uint64_t parent) {
  if (child_rec.parent != kNone) {
    auto old_it = nodes_.find(child_rec.parent);
    HIA_ASSERT(old_it != nodes_.end());
    auto& siblings = old_it->second.children;
    auto pos = std::find(siblings.begin(), siblings.end(), child);
    HIA_ASSERT(pos != siblings.end());
    siblings.erase(pos);
  }
  child_rec.parent = parent;
  if (parent != kNone) {
    auto new_it = nodes_.find(parent);
    HIA_ASSERT(new_it != nodes_.end());
    new_it->second.children.push_back(child);
  }
}

void StreamingCombiner::insert_edge(uint64_t u, uint64_t v) {
  HIA_REQUIRE(u != v, "self-loop edge");
  std::vector<uint64_t> dirty;  // nodes that lost a child during the walk

  for (;;) {
    if (u == v) break;
    auto u_it = nodes_.find(u);
    auto v_it = nodes_.find(v);
    HIA_REQUIRE(u_it != nodes_.end() && v_it != nodes_.end(),
                "edge references undeclared vertex");
    if (!is_above(u, u_it->second, v, v_it->second)) {
      std::swap(u, v);
      std::swap(u_it, v_it);
    }
    // Invariant: u strictly above v. Merge v into u's descending chain.
    NodeRec& u_rec = u_it->second;
    const uint64_t p = u_rec.parent;
    if (p == kNone) {
      set_parent(u, u_rec, v);
      break;
    }
    if (p == v) break;  // already linked
    const NodeRec& p_rec = nodes_.at(p);
    if (is_above(p, p_rec, v, v_it->second)) {
      // p lies between u and v: descend u's chain.
      u = p;
    } else {
      // v lies between u and p: splice v in, then merge (v, p) below.
      dirty.push_back(p);  // p lost u as a child
      set_parent(u, u_rec, v);
      u = v;
      v = p;
    }
  }

  for (const uint64_t d : dirty) try_evict(d);
}

void StreamingCombiner::finalize_vertex(uint64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;  // already evicted (idempotent)
  it->second.finalized = true;
  try_evict(id);
}

bool StreamingCombiner::try_evict(uint64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  NodeRec& rec = it->second;
  // Evictable = finalized regular vertex: exactly one child and a parent.
  // (A finalized regular vertex can never become a saddle later: superlevel
  // components only merge as edges arrive, so its up-degree in the reduced
  // tree cannot grow once all its incident edges are in.)
  if (!rec.finalized || rec.children.size() != 1 || rec.parent == kNone) {
    return false;
  }
  const uint64_t child = rec.children[0];
  const uint64_t parent = rec.parent;

  auto child_it = nodes_.find(child);
  auto parent_it = nodes_.find(parent);
  HIA_ASSERT(child_it != nodes_.end() && parent_it != nodes_.end());

  // Splice the arc: child adopts our parent.
  child_it->second.parent = parent;
  auto& siblings = parent_it->second.children;
  auto pos = std::find(siblings.begin(), siblings.end(), id);
  HIA_ASSERT(pos != siblings.end());
  *pos = child;

  const EvictedArc arc{id, rec.value, child, parent};
  nodes_.erase(it);
  ++evicted_;
  if (sink_) sink_(arc);
  return true;
}

void StreamingCombiner::insert_subtree(const SubtreeData& subtree) {
  for (size_t i = 0; i < subtree.vertex_ids.size(); ++i) {
    insert_vertex(subtree.vertex_ids[i], subtree.vertex_values[i]);
  }
  for (size_t e = 0; e < subtree.edge_child.size(); ++e) {
    insert_edge(subtree.vertex_ids[subtree.edge_child[e]],
                subtree.vertex_ids[subtree.edge_parent[e]]);
  }
}

void StreamingCombiner::insert_subtree_streaming(const SubtreeData& subtree) {
  insert_subtree(subtree);
  HIA_REQUIRE(subtree.interior.size() == subtree.vertex_ids.size(),
              "subtree lacks interior flags");
  for (size_t i = 0; i < subtree.vertex_ids.size(); ++i) {
    if (subtree.interior[i]) finalize_vertex(subtree.vertex_ids[i]);
  }
}

MergeTree StreamingCombiner::build_tree() const {
  std::vector<MergeTree::Node> out;
  out.reserve(nodes_.size());
  std::unordered_map<uint64_t, int64_t> index;
  index.reserve(nodes_.size());

  // Emit in descending order for a stable layout.
  std::vector<const std::pair<const uint64_t, NodeRec>*> sorted;
  sorted.reserve(nodes_.size());
  for (const auto& kv : nodes_) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
    return above(a->second.value, a->first, b->second.value, b->first);
  });

  for (const auto* kv : sorted) {
    index[kv->first] = static_cast<int64_t>(out.size());
    out.push_back(
        MergeTree::Node{kv->first, kv->second.value, MergeTree::kNoParent});
  }
  for (size_t i = 0; i < sorted.size(); ++i) {
    const uint64_t p = sorted[i]->second.parent;
    if (p != kNone) {
      auto it = index.find(p);
      HIA_ASSERT(it != index.end());
      out[i].parent = it->second;
    }
  }
  return MergeTree(std::move(out));
}

MergeTree StreamingCombiner::finish() {
  std::vector<uint64_t> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, rec] : nodes_) ids.push_back(id);
  for (const uint64_t id : ids) {
    auto it = nodes_.find(id);
    if (it != nodes_.end()) it->second.finalized = true;
  }
  for (const uint64_t id : ids) try_evict(id);

  MergeTree tree = build_tree();
  nodes_.clear();
  return tree;
}

MergeTree StreamingCombiner::finish_without_eviction() {
  MergeTree tree = build_tree();
  nodes_.clear();
  return tree;
}

MergeTree combine_subtrees(const std::vector<SubtreeData>& subtrees) {
  StreamingCombiner combiner;
  for (const SubtreeData& s : subtrees) combiner.insert_subtree(s);
  return combiner.finish();
}

// ---------------------------------------------------- SubtreeStreamDriver --

SubtreeStreamDriver::SubtreeStreamDriver(const GlobalGrid& grid,
                                         std::vector<Box3> blocks)
    : grid_(grid), blocks_(std::move(blocks)) {
  HIA_REQUIRE(!blocks_.empty(), "stream driver needs the block list");
}

int SubtreeStreamDriver::multiplicity(uint64_t gid) const {
  const int64_t i = static_cast<int64_t>(gid) % grid_.dims[0];
  const int64_t j =
      (static_cast<int64_t>(gid) / grid_.dims[0]) % grid_.dims[1];
  const int64_t k =
      static_cast<int64_t>(gid) / (grid_.dims[0] * grid_.dims[1]);
  int count = 0;
  for (const Box3& b : blocks_) {
    if (b.contains(i, j, k)) ++count;
  }
  return count;
}

void SubtreeStreamDriver::ingest(StreamingCombiner& combiner,
                                 const SubtreeData& subtree) {
  combiner.insert_subtree(subtree);
  for (const uint64_t gid : subtree.vertex_ids) {
    auto it = remaining_.find(gid);
    if (it == remaining_.end()) {
      const int m = multiplicity(gid);
      HIA_REQUIRE(m >= 1, "subtree vertex outside every published block");
      if (m == 1) {
        combiner.finalize_vertex(gid);
      } else {
        remaining_.emplace(gid, m - 1);
      }
    } else if (--it->second == 0) {
      remaining_.erase(it);
      combiner.finalize_vertex(gid);
    }
  }
}

}  // namespace hia
