#include "analysis/topology/local_tree.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace hia {

std::vector<double> SubtreeData::serialize() const {
  std::vector<double> out;
  out.reserve(2 + vertex_ids.size() * 3 + edge_child.size() * 2);
  out.push_back(static_cast<double>(vertex_ids.size()));
  out.push_back(static_cast<double>(edge_child.size()));
  for (size_t i = 0; i < vertex_ids.size(); ++i) {
    out.push_back(static_cast<double>(vertex_ids[i]));
    out.push_back(vertex_values[i]);
    out.push_back(i < interior.size() ? interior[i] : 0.0);
  }
  for (size_t e = 0; e < edge_child.size(); ++e) {
    out.push_back(static_cast<double>(edge_child[e]));
    out.push_back(static_cast<double>(edge_parent[e]));
  }
  return out;
}

SubtreeData SubtreeData::deserialize(std::span<const double> data) {
  HIA_REQUIRE(data.size() >= 2, "subtree payload too short");
  SubtreeData s;
  const auto nv = round_to<size_t>(data[0]);
  const auto ne = round_to<size_t>(data[1]);
  HIA_REQUIRE(data.size() == 2 + nv * 3 + ne * 2,
              "subtree payload size mismatch");
  s.vertex_ids.reserve(nv);
  s.vertex_values.reserve(nv);
  s.interior.reserve(nv);
  size_t off = 2;
  for (size_t i = 0; i < nv; ++i) {
    s.vertex_ids.push_back(round_to<uint64_t>(data[off++]));
    s.vertex_values.push_back(data[off++]);
    s.interior.push_back(round_to<uint8_t>(data[off++]));
  }
  s.edge_child.reserve(ne);
  s.edge_parent.reserve(ne);
  for (size_t e = 0; e < ne; ++e) {
    s.edge_child.push_back(round_to<uint32_t>(data[off++]));
    s.edge_parent.push_back(round_to<uint32_t>(data[off++]));
  }
  return s;
}

namespace {

/// Union-find over box-local offsets with path compression + union by the
/// component's current arc end ("lowest" vertex).
class ComponentForest {
 public:
  explicit ComponentForest(size_t n) : parent_(n), lowest_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
    std::iota(lowest_.begin(), lowest_.end(), size_t{0});
  }

  size_t find(size_t x) {
    size_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      const size_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the set of `a` into the set of `b` (b's root wins).
  void merge_into(size_t a, size_t b) { parent_[find(a)] = find(b); }

  [[nodiscard]] size_t lowest(size_t root) const { return lowest_[root]; }
  void set_lowest(size_t root, size_t v) { lowest_[root] = v; }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> lowest_;  // valid at roots only
};

}  // namespace

Box3 extended_block(const GlobalGrid& grid, const Box3& block) {
  Box3 ext = block;
  for (int a = 0; a < 3; ++a) {
    ext.hi[a] = std::min(ext.hi[a] + 1, grid.dims[a]);
  }
  return ext;
}

MergeTree build_local_tree(const GlobalGrid& grid, const Box3& box,
                           std::span<const double> values) {
  const auto n = static_cast<size_t>(box.num_cells());
  HIA_REQUIRE(values.size() == n, "value buffer does not match box");
  HIA_REQUIRE(n > 0, "empty box");

  // Sort box offsets by descending (value, global id).
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  const int64_t nx = box.extent(0), ny = box.extent(1);
  auto global_id = [&](size_t off) {
    int64_t i, j, k;
    box.coords(off, i, j, k);
    return grid_vertex_id(grid, i, j, k);
  };
  std::vector<uint64_t> gids(n);
  for (size_t off = 0; off < n; ++off) gids[off] = global_id(off);

  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return above(values[a], gids[a], values[b], gids[b]);
  });

  std::vector<uint32_t> rank_of(n);  // position in descending order
  for (size_t pos = 0; pos < n; ++pos) rank_of[order[pos]] = static_cast<uint32_t>(pos);

  ComponentForest forest(n);
  std::vector<int64_t> parent(n, MergeTree::kNoParent);  // box offsets

  const std::array<int64_t, 3> steps{1, nx, nx * ny};
  for (size_t pos = 0; pos < n; ++pos) {
    const size_t v = order[pos];
    int64_t i, j, k;
    box.coords(v, i, j, k);
    const std::array<int64_t, 3> coord{i, j, k};

    for (int axis = 0; axis < 3; ++axis) {
      for (int dir = -1; dir <= 1; dir += 2) {
        const int64_t c = coord[static_cast<size_t>(axis)] + dir;
        if (c < box.lo[axis] || c >= box.hi[axis]) continue;
        const size_t u = static_cast<size_t>(
            static_cast<int64_t>(v) + dir * steps[static_cast<size_t>(axis)]);
        if (rank_of[u] > pos) continue;  // u not yet swept (it is lower)
        const size_t ru = forest.find(u);
        const size_t rv = forest.find(v);
        if (ru == rv) continue;
        // The arc end of u's component attaches to v; components merge.
        parent[forest.lowest(ru)] = static_cast<int64_t>(v);
        forest.merge_into(ru, rv);
        forest.set_lowest(forest.find(v), v);
      }
    }
  }

  // Emit nodes in descending order so parents appear after children.
  std::vector<MergeTree::Node> nodes(n);
  std::vector<int64_t> node_index(n);
  for (size_t pos = 0; pos < n; ++pos) {
    node_index[order[pos]] = static_cast<int64_t>(pos);
  }
  for (size_t pos = 0; pos < n; ++pos) {
    const size_t v = order[pos];
    MergeTree::Node& node = nodes[pos];
    node.id = gids[v];
    node.value = values[v];
    node.parent = parent[v] == MergeTree::kNoParent
                      ? MergeTree::kNoParent
                      : node_index[static_cast<size_t>(parent[v])];
  }
  return MergeTree(std::move(nodes));
}

SubtreeData extract_subtree(const GlobalGrid& grid, const Box3& box,
                            const MergeTree& local_tree) {
  const auto& nodes = local_tree.nodes();
  const auto counts = local_tree.child_counts();

  // Retained: criticals (leaf / saddle / root) + interior-shared boundary
  // vertices (any box face that is not the domain boundary).
  const Box3 domain = grid.bounds();
  auto on_shared_boundary = [&](uint64_t id) {
    const int64_t nx = grid.dims[0], nyd = grid.dims[1];
    const int64_t i = static_cast<int64_t>(id) % nx;
    const int64_t j = (static_cast<int64_t>(id) / nx) % nyd;
    const int64_t k = static_cast<int64_t>(id) / (nx * nyd);
    const std::array<int64_t, 3> c{i, j, k};
    for (int a = 0; a < 3; ++a) {
      if (c[a] == box.lo[a] && box.lo[a] != domain.lo[a]) return true;
      if (c[a] == box.hi[a] - 1 && box.hi[a] != domain.hi[a]) return true;
    }
    return false;
  };

  std::vector<bool> keep(nodes.size(), false);
  for (size_t idx = 0; idx < nodes.size(); ++idx) {
    keep[idx] = counts[idx] != 1 || nodes[idx].parent == MergeTree::kNoParent ||
                on_shared_boundary(nodes[idx].id);
  }

  SubtreeData out;
  std::vector<int64_t> remap(nodes.size(), -1);
  for (size_t idx = 0; idx < nodes.size(); ++idx) {
    if (!keep[idx]) continue;
    remap[idx] = static_cast<int64_t>(out.vertex_ids.size());
    out.vertex_ids.push_back(nodes[idx].id);
    out.vertex_values.push_back(nodes[idx].value);
    out.interior.push_back(on_shared_boundary(nodes[idx].id) ? 0 : 1);
  }
  for (size_t idx = 0; idx < nodes.size(); ++idx) {
    if (!keep[idx]) continue;
    // Nearest retained ancestor.
    int64_t p = nodes[idx].parent;
    while (p != MergeTree::kNoParent && !keep[static_cast<size_t>(p)]) {
      p = nodes[static_cast<size_t>(p)].parent;
    }
    if (p == MergeTree::kNoParent) continue;
    out.edge_child.push_back(static_cast<uint32_t>(remap[idx]));
    out.edge_parent.push_back(
        static_cast<uint32_t>(remap[static_cast<size_t>(p)]));
  }
  return out;
}

SubtreeData compute_rank_subtree(const GlobalGrid& grid, const Box3& block,
                                 std::span<const double> extended_values,
                                 const Box3& extended_box) {
  HIA_REQUIRE(extended_box == extended_block(grid, block),
              "extended box does not match the rank's block");
  const MergeTree local =
      build_local_tree(grid, extended_box, extended_values);
  return extract_subtree(grid, extended_box, local);
}

}  // namespace hia
