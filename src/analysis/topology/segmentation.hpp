// Threshold-based segmentation and temporal feature tracking.
//
// The merge tree "encodes an ensemble of threshold-based segmentations";
// this module materializes one member of that ensemble — the connected
// components of the superlevel set {f >= threshold} — and tracks features
// across timesteps by voxel overlap, reproducing the Fig. 1 experiment
// (connectivity indicators are lost when the temporal length-scale of
// features is shorter than the output frequency).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/topology/merge_tree.hpp"
#include "sim/box.hpp"

namespace hia {

/// One connected component of the superlevel set.
struct Feature {
  int32_t label = -1;
  uint64_t max_id = 0;     // vertex id of the component's maximum
  double max_value = 0.0;
  int64_t voxels = 0;
  double centroid[3] = {0.0, 0.0, 0.0};  // index-space centroid
};

/// Labels the superlevel set {values >= threshold} over `box`
/// (6-connectivity). Returns per-voxel labels (-1 = background) and the
/// feature table; labels index into the table.
struct Segmentation {
  std::vector<int32_t> labels;  // size = box.num_cells(), x-fastest
  std::vector<Feature> features;
};
Segmentation segment_superlevel(const Box3& box,
                                std::span<const double> values,
                                double threshold);

/// A correspondence between a feature at step t and one at step t+dt.
struct OverlapEdge {
  int32_t label_a = -1;
  int32_t label_b = -1;
  int64_t shared_voxels = 0;
};

/// Voxel-overlap correspondences between two segmentations of the same box.
std::vector<OverlapEdge> overlap_track(const Segmentation& a,
                                       const Segmentation& b);

/// Summary of tracking quality across a sequence: how many features found a
/// successor, how many tracks were broken (Fig. 1's "lost connectivity").
struct TrackingSummary {
  int64_t features_total = 0;     // features in all but the last frame
  int64_t features_continued = 0; // features with >= 1 overlap successor
  [[nodiscard]] double continuity() const {
    return features_total == 0
               ? 1.0
               : static_cast<double>(features_continued) /
                     static_cast<double>(features_total);
  }
};

/// Runs overlap tracking along a sequence of segmentations taken `stride`
/// frames apart and reports continuity. Features smaller than `min_voxels`
/// are ignored when counting (threshold-flicker suppression); their labels
/// still participate as overlap targets.
TrackingSummary track_sequence(const std::vector<Segmentation>& frames,
                               int64_t min_voxels = 1);

/// One member of the merge tree's segmentation ensemble: the superlevel
/// components at `threshold`, extracted directly from a *fully augmented*
/// merge tree (every vertex is a node). Each vertex at or above the
/// threshold is labeled with the canonical feature id — the vertex id of
/// the component's maximum — so the result is directly comparable with
/// voxel-based segmentation and with the feature-statistics pipeline.
struct TreeSegmentation {
  /// vertex id -> feature id (the component maximum's vertex id).
  std::unordered_map<uint64_t, uint64_t> label_of;
  /// feature id -> member count, sorted by descending count then id.
  std::vector<std::pair<uint64_t, int64_t>> features;
};
TreeSegmentation segment_tree(const MergeTree& augmented_tree,
                              double threshold);

}  // namespace hia
