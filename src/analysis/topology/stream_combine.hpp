// In-transit stage of the hybrid topology pipeline: streaming merge-tree
// aggregation.
//
// Adapts the streaming algorithm for unstructured data of Bremer et al.
// [43]: subtree elements (vertices, edges, finalizations) arrive in any
// order compatible with "a vertex is processed before any edge containing
// it"; the combiner maintains the merge tree of everything seen so far and
// evicts finalized regular vertices from memory, writing them to the
// output sink — keeping the memory footprint proportional to the evolving
// tree's critical set plus unfinalized boundary, not the total input.
//
// Unlike the in-situ algorithm, no global sort is required.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "analysis/topology/local_tree.hpp"
#include "analysis/topology/merge_tree.hpp"
#include "sim/grid.hpp"

namespace hia {

/// An arc segment evicted from memory (what the paper "writes to disk").
struct EvictedArc {
  uint64_t id = 0;
  double value = 0.0;
  uint64_t child_id = 0;   // the single child it had when contracted
  uint64_t parent_id = 0;  // the parent it was contracted onto
};

class StreamingCombiner {
 public:
  StreamingCombiner() = default;

  /// Optional sink invoked for every evicted regular vertex; when not set,
  /// evictions are only counted.
  void set_eviction_sink(std::function<void(const EvictedArc&)> sink) {
    sink_ = std::move(sink);
  }

  /// Declares a vertex. Idempotent: re-declaring with the same value is a
  /// no-op (shared boundary vertices arrive from several subtrees);
  /// a different value is an error.
  void insert_vertex(uint64_t id, double value);

  /// Inserts an edge between two declared vertices, merging their
  /// descending chains in (value, id) order.
  void insert_edge(uint64_t u, uint64_t v);

  /// Declares that no further edge will reference `id`. Finalized regular
  /// vertices become eligible for eviction.
  void finalize_vertex(uint64_t id);

  /// Ingests a whole subtree: vertices, then edges. Does not finalize.
  void insert_subtree(const SubtreeData& subtree);

  /// Streaming ingestion (paper §VI: "process in-transit data in a
  /// streaming fashion, starting as soon as the first data arrives"):
  /// inserts the subtree and immediately finalizes its interior vertices —
  /// no other rank's subtree can reference them, so regular ones are
  /// evicted on the spot, keeping peak memory near the boundary set.
  void insert_subtree_streaming(const SubtreeData& subtree);

  /// True if the vertex is currently held in memory.
  [[nodiscard]] bool contains(uint64_t id) const {
    return nodes_.count(id) > 0;
  }

  [[nodiscard]] size_t live_nodes() const { return nodes_.size(); }
  [[nodiscard]] size_t peak_live_nodes() const { return peak_live_; }
  [[nodiscard]] size_t evicted_count() const { return evicted_; }

  /// Finalizes everything still open, runs a last eviction sweep, and
  /// returns the merge tree of the live (critical + root) vertices.
  /// The combiner is left empty.
  MergeTree finish();

  /// Like finish() but keeps evictable regulars in the result (used by
  /// tests that compare the full augmented tree).
  MergeTree finish_without_eviction();

 private:
  static constexpr uint64_t kNone = ~uint64_t{0};

  struct NodeRec {
    double value = 0.0;
    uint64_t parent = kNone;
    std::vector<uint64_t> children;
    bool finalized = false;
  };

  [[nodiscard]] bool is_above(uint64_t a, const NodeRec& ra, uint64_t b,
                              const NodeRec& rb) const {
    return above(ra.value, a, rb.value, b);
  }

  void set_parent(uint64_t child, NodeRec& child_rec, uint64_t parent);
  /// Contracts `id` if finalized + regular; returns true when evicted.
  bool try_evict(uint64_t id);
  MergeTree build_tree() const;

  std::unordered_map<uint64_t, NodeRec> nodes_;
  std::function<void(const EvictedArc&)> sink_;
  size_t peak_live_ = 0;
  size_t evicted_ = 0;
};

/// Convenience for tests and the pure in-transit path: combine a batch of
/// subtrees into the global reduced merge tree.
MergeTree combine_subtrees(const std::vector<SubtreeData>& subtrees);

/// Geometry-aware streaming driver: given the extended blocks every rank
/// publishes (known from the task's data descriptors before any payload is
/// pulled), each vertex's multiplicity — how many subtrees will declare it
/// — follows from which blocks contain its grid coordinates. The driver
/// finalizes a vertex the moment the *last* subtree containing it has been
/// ingested, so shared-face vertices are evicted as soon as both sides
/// have arrived rather than at the end of the stream (paper §VI,
/// streaming in-transit processing).
class SubtreeStreamDriver {
 public:
  SubtreeStreamDriver(const GlobalGrid& grid, std::vector<Box3> blocks);

  /// Inserts the subtree and finalizes every vertex whose full multiplicity
  /// has now been seen.
  void ingest(StreamingCombiner& combiner, const SubtreeData& subtree);

  /// Vertices still awaiting further subtrees (diagnostics).
  [[nodiscard]] size_t open_vertices() const { return remaining_.size(); }

 private:
  [[nodiscard]] int multiplicity(uint64_t gid) const;

  GlobalGrid grid_;
  std::vector<Box3> blocks_;
  std::unordered_map<uint64_t, int> remaining_;
};

}  // namespace hia
