#include "analysis/topology/feature_stats.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "analysis/topology/local_tree.hpp"  // grid_vertex_id
#include "analysis/topology/merge_tree.hpp"  // above()
#include "analysis/topology/segmentation.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"

namespace hia {

namespace {

/// Accumulates one voxel into a feature record.
void accumulate(GlobalFeature& f, const GlobalGrid& grid, int64_t i,
                int64_t j, int64_t k, double field_value,
                double measure_value) {
  const uint64_t gid = grid_vertex_id(grid, i, j, k);
  if (f.voxels == 0 || above(field_value, gid, f.max_value, f.id)) {
    f.max_value = field_value;
    f.id = gid;
  }
  ++f.voxels;
  f.centroid[0] += static_cast<double>(i);
  f.centroid[1] += static_cast<double>(j);
  f.centroid[2] += static_cast<double>(k);
  f.measure.update(measure_value);
}

void sort_features(std::vector<GlobalFeature>& features) {
  std::sort(features.begin(), features.end(),
            [](const GlobalFeature& a, const GlobalFeature& b) {
              if (a.voxels != b.voxels) return a.voxels > b.voxels;
              return a.id < b.id;
            });
}

}  // namespace

std::vector<GlobalFeature> feature_statistics(
    const GlobalGrid& grid, const Box3& box, std::span<const double> field,
    std::span<const double> measure, double threshold) {
  HIA_REQUIRE(field.size() == measure.size(),
              "field and measure must be co-located");
  const Segmentation seg = segment_superlevel(box, field, threshold);

  std::vector<GlobalFeature> features(seg.features.size());
  size_t off = 0;
  for (int64_t k = box.lo[2]; k < box.hi[2]; ++k) {
    for (int64_t j = box.lo[1]; j < box.hi[1]; ++j) {
      for (int64_t i = box.lo[0]; i < box.hi[0]; ++i, ++off) {
        const int32_t label = seg.labels[off];
        if (label < 0) continue;
        accumulate(features[static_cast<size_t>(label)], grid, i, j, k,
                   field[off], measure[off]);
      }
    }
  }
  for (GlobalFeature& f : features) {
    for (double& c : f.centroid) c /= static_cast<double>(f.voxels);
  }
  sort_features(features);
  return features;
}

// ------------------------------------------------------ LocalFeatureData --

std::vector<double> LocalFeatureData::serialize() const {
  const size_t n = num_components();
  std::vector<double> out;
  out.reserve(3 + n * (6 + MomentAccumulator::kPackedSize) +
              boundary_gid.size() * 2 + link_comp.size() * 2);
  out.push_back(static_cast<double>(n));
  out.push_back(static_cast<double>(boundary_gid.size()));
  out.push_back(static_cast<double>(link_comp.size()));
  for (size_t c = 0; c < n; ++c) {
    out.push_back(static_cast<double>(comp_max_id[c]));
    out.push_back(comp_max_value[c]);
    out.push_back(static_cast<double>(comp_voxels[c]));
    for (int a = 0; a < 3; ++a) out.push_back(comp_centroid_sum[c * 3 + static_cast<size_t>(a)]);
    for (int m = 0; m < MomentAccumulator::kPackedSize; ++m) {
      out.push_back(
          comp_moments[c * MomentAccumulator::kPackedSize + static_cast<size_t>(m)]);
    }
  }
  for (size_t b = 0; b < boundary_gid.size(); ++b) {
    out.push_back(static_cast<double>(boundary_gid[b]));
    out.push_back(static_cast<double>(boundary_comp[b]));
  }
  for (size_t l = 0; l < link_comp.size(); ++l) {
    out.push_back(static_cast<double>(link_comp[l]));
    out.push_back(static_cast<double>(link_gid[l]));
  }
  return out;
}

LocalFeatureData LocalFeatureData::deserialize(std::span<const double> data) {
  HIA_REQUIRE(data.size() >= 3, "feature payload too short");
  LocalFeatureData d;
  const auto n = round_to<size_t>(data[0]);
  const auto nb = round_to<size_t>(data[1]);
  const auto nl = round_to<size_t>(data[2]);
  const size_t per_comp = 6 + MomentAccumulator::kPackedSize;
  HIA_REQUIRE(data.size() == 3 + n * per_comp + nb * 2 + nl * 2,
              "feature payload size mismatch");
  size_t off = 3;
  for (size_t c = 0; c < n; ++c) {
    d.comp_max_id.push_back(round_to<uint64_t>(data[off++]));
    d.comp_max_value.push_back(data[off++]);
    d.comp_voxels.push_back(round_to<int64_t>(data[off++]));
    for (int a = 0; a < 3; ++a) d.comp_centroid_sum.push_back(data[off++]);
    for (int m = 0; m < MomentAccumulator::kPackedSize; ++m) {
      d.comp_moments.push_back(data[off++]);
    }
  }
  for (size_t b = 0; b < nb; ++b) {
    d.boundary_gid.push_back(round_to<uint64_t>(data[off++]));
    d.boundary_comp.push_back(round_to<uint32_t>(data[off++]));
  }
  for (size_t l = 0; l < nl; ++l) {
    d.link_comp.push_back(round_to<uint32_t>(data[off++]));
    d.link_gid.push_back(round_to<uint64_t>(data[off++]));
  }
  return d;
}

LocalFeatureData compute_local_features(const GlobalGrid& grid,
                                        const Box3& block,
                                        const Box3& extended,
                                        std::span<const double> field,
                                        std::span<const double> measure,
                                        double threshold) {
  HIA_REQUIRE(field.size() == static_cast<size_t>(extended.num_cells()) &&
                  measure.size() == field.size(),
              "value buffers must cover the extended box");
  HIA_REQUIRE(extended.contains(block), "extended box must contain block");

  // Label the components of the *owned* block only.
  std::vector<double> block_field;
  block_field.reserve(static_cast<size_t>(block.num_cells()));
  for (int64_t k = block.lo[2]; k < block.hi[2]; ++k)
    for (int64_t j = block.lo[1]; j < block.hi[1]; ++j)
      for (int64_t i = block.lo[0]; i < block.hi[0]; ++i)
        block_field.push_back(field[extended.offset(i, j, k)]);
  const Segmentation seg =
      segment_superlevel(block, block_field, threshold);

  LocalFeatureData out;
  const size_t n = seg.features.size();
  out.comp_max_id.assign(n, 0);
  out.comp_max_value.assign(n, 0.0);
  out.comp_voxels.assign(n, 0);
  out.comp_centroid_sum.assign(n * 3, 0.0);
  out.comp_moments.assign(n * MomentAccumulator::kPackedSize, 0.0);

  std::vector<MomentAccumulator> moments(n);
  std::vector<bool> started(n, false);

  size_t off = 0;
  for (int64_t k = block.lo[2]; k < block.hi[2]; ++k) {
    for (int64_t j = block.lo[1]; j < block.hi[1]; ++j) {
      for (int64_t i = block.lo[0]; i < block.hi[0]; ++i, ++off) {
        const int32_t label = seg.labels[off];
        if (label < 0) continue;
        const auto c = static_cast<size_t>(label);
        const double fv = block_field[off];
        const uint64_t gid = grid_vertex_id(grid, i, j, k);
        if (!started[c] ||
            above(fv, gid, out.comp_max_value[c], out.comp_max_id[c])) {
          out.comp_max_value[c] = fv;
          out.comp_max_id[c] = gid;
          started[c] = true;
        }
        ++out.comp_voxels[c];
        out.comp_centroid_sum[c * 3 + 0] += static_cast<double>(i);
        out.comp_centroid_sum[c * 3 + 1] += static_cast<double>(j);
        out.comp_centroid_sum[c * 3 + 2] += static_cast<double>(k);
        moments[c].update(measure[extended.offset(i, j, k)]);
      }
    }
  }
  for (size_t c = 0; c < n; ++c) {
    moments[c].pack(&out.comp_moments[c * MomentAccumulator::kPackedSize]);
  }

  const Box3 domain = grid.bounds();

  // Boundary exports on faces adjacent to a lower-coordinate neighbor.
  auto label_at = [&](int64_t i, int64_t j, int64_t k) {
    return seg.labels[block.offset(i, j, k)];
  };
  for (int axis = 0; axis < 3; ++axis) {
    if (block.lo[axis] == domain.lo[axis]) continue;
    Box3 face = block;
    face.hi[axis] = face.lo[axis] + 1;
    for (int64_t k = face.lo[2]; k < face.hi[2]; ++k) {
      for (int64_t j = face.lo[1]; j < face.hi[1]; ++j) {
        for (int64_t i = face.lo[0]; i < face.hi[0]; ++i) {
          const int32_t label = label_at(i, j, k);
          if (label < 0) continue;
          out.boundary_gid.push_back(grid_vertex_id(grid, i, j, k));
          out.boundary_comp.push_back(static_cast<uint32_t>(label));
        }
      }
    }
  }

  // Links across +direction faces (each inter-rank face handled once, by
  // the lower-coordinate rank).
  for (int axis = 0; axis < 3; ++axis) {
    if (block.hi[axis] == domain.hi[axis]) continue;
    Box3 face = block;
    face.lo[axis] = face.hi[axis] - 1;
    for (int64_t k = face.lo[2]; k < face.hi[2]; ++k) {
      for (int64_t j = face.lo[1]; j < face.hi[1]; ++j) {
        for (int64_t i = face.lo[0]; i < face.hi[0]; ++i) {
          const int32_t label = label_at(i, j, k);
          if (label < 0) continue;
          int64_t ni = i, nj = j, nk = k;
          (axis == 0 ? ni : axis == 1 ? nj : nk) += 1;
          if (field[extended.offset(ni, nj, nk)] < threshold) continue;
          out.link_comp.push_back(static_cast<uint32_t>(label));
          out.link_gid.push_back(grid_vertex_id(grid, ni, nj, nk));
        }
      }
    }
  }
  return out;
}

std::vector<GlobalFeature> combine_features(
    const std::vector<LocalFeatureData>& parts) {
  // Union-find over (part, component) pairs encoded as part * 2^32 + comp.
  auto key = [](size_t part, uint32_t comp) {
    return (static_cast<uint64_t>(part) << 32) | comp;
  };
  std::unordered_map<uint64_t, uint64_t> parent;
  std::function<uint64_t(uint64_t)> find = [&](uint64_t x) {
    auto it = parent.find(x);
    HIA_ASSERT(it != parent.end());
    if (it->second == x) return x;
    const uint64_t root = find(it->second);
    it->second = root;
    return root;
  };

  // Boundary voxel gid -> owning (part, comp).
  std::unordered_map<uint64_t, uint64_t> owner_of_gid;
  for (size_t p = 0; p < parts.size(); ++p) {
    for (size_t c = 0; c < parts[p].num_components(); ++c) {
      parent[key(p, static_cast<uint32_t>(c))] =
          key(p, static_cast<uint32_t>(c));
    }
    for (size_t b = 0; b < parts[p].boundary_gid.size(); ++b) {
      owner_of_gid[parts[p].boundary_gid[b]] =
          key(p, parts[p].boundary_comp[b]);
    }
  }

  for (size_t p = 0; p < parts.size(); ++p) {
    for (size_t l = 0; l < parts[p].link_comp.size(); ++l) {
      const auto it = owner_of_gid.find(parts[p].link_gid[l]);
      HIA_REQUIRE(it != owner_of_gid.end(),
                  "link target voxel missing from boundary exports");
      const uint64_t a = find(key(p, parts[p].link_comp[l]));
      const uint64_t b = find(it->second);
      if (a != b) parent[a] = b;
    }
  }

  // Aggregate per root.
  std::unordered_map<uint64_t, GlobalFeature> merged;
  for (size_t p = 0; p < parts.size(); ++p) {
    const LocalFeatureData& part = parts[p];
    for (size_t c = 0; c < part.num_components(); ++c) {
      const uint64_t root = find(key(p, static_cast<uint32_t>(c)));
      GlobalFeature& f = merged[root];
      if (f.voxels == 0 ||
          above(part.comp_max_value[c], part.comp_max_id[c], f.max_value,
                f.id)) {
        f.max_value = part.comp_max_value[c];
        f.id = part.comp_max_id[c];
      }
      f.voxels += part.comp_voxels[c];
      for (int a = 0; a < 3; ++a) {
        f.centroid[a] += part.comp_centroid_sum[c * 3 + static_cast<size_t>(a)];
      }
      f.measure.combine(MomentAccumulator::unpack(
          &part.comp_moments[c * MomentAccumulator::kPackedSize]));
    }
  }

  std::vector<GlobalFeature> out;
  out.reserve(merged.size());
  for (auto& [root, f] : merged) {
    for (double& c : f.centroid) c /= static_cast<double>(f.voxels);
    out.push_back(std::move(f));
  }
  sort_features(out);
  return out;
}

}  // namespace hia
