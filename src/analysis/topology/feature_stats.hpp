// Feature-based statistics — the paper's §VI future work: "combining the
// merge tree computation presented in this work with statistical analyses
// to enable the computation of feature-based statistics such as those
// present in the corresponding post-processing tools [30], [43]".
//
// A *feature* is a connected component of the superlevel set
// {field >= threshold} (one member of the merge tree's segmentation
// ensemble). For each feature we compute its geometry (voxel count,
// centroid, maximum) and the moment statistics of a second *measure*
// variable conditioned on the feature (e.g. heat-release statistics per
// ignition kernel).
//
// The hybrid decomposition mirrors the topology pipeline:
//   * in-situ: each rank labels the components of its own block, computes
//     per-component partial moments, and exports (a) its boundary voxels
//     above threshold and (b) equivalence links across +direction faces;
//   * in-transit: a serial bucket unions the per-rank components through
//     the links, combines the partial moments with the pairwise formulas,
//     and emits the global feature table. A feature's canonical id is the
//     global grid id of its maximum (ties by id), so results are
//     decomposition-invariant.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/stats/moments.hpp"
#include "sim/box.hpp"
#include "sim/grid.hpp"

namespace hia {

/// One global feature with conditioned statistics.
struct GlobalFeature {
  uint64_t id = 0;          // grid id of the feature's maximum
  double max_value = 0.0;   // field value at the maximum
  int64_t voxels = 0;
  double centroid[3] = {0, 0, 0};     // global index-space centroid
  MomentAccumulator measure;          // moments of the measure variable

  bool operator==(const GlobalFeature&) const = default;
};

/// Serial reference: features of `field` over `box` with statistics of
/// `measure` (both packed x-fastest over `box`). Sorted by descending
/// voxel count, ties by id.
std::vector<GlobalFeature> feature_statistics(
    const GlobalGrid& grid, const Box3& box, std::span<const double> field,
    std::span<const double> measure, double threshold);

/// Per-rank intermediate data for the hybrid pipeline.
struct LocalFeatureData {
  // Per local component (indexed 0..n-1):
  std::vector<uint64_t> comp_max_id;
  std::vector<double> comp_max_value;
  std::vector<int64_t> comp_voxels;
  std::vector<double> comp_centroid_sum;  // 3 per component (unnormalized)
  std::vector<double> comp_moments;       // kPackedSize per component

  // Boundary exports: owned voxels above threshold on faces adjacent to a
  // lower-coordinate neighbor, so that neighbor's links can resolve.
  std::vector<uint64_t> boundary_gid;
  std::vector<uint32_t> boundary_comp;

  // Equivalence links across +direction faces: local component <->
  // neighbor-owned voxel (above threshold on both sides).
  std::vector<uint32_t> link_comp;
  std::vector<uint64_t> link_gid;

  [[nodiscard]] size_t num_components() const { return comp_max_id.size(); }

  [[nodiscard]] std::vector<double> serialize() const;
  static LocalFeatureData deserialize(std::span<const double> data);
};

/// In-situ stage: local components of `block` plus gluing data, using
/// `extended` values (block grown by +1 in each positive axis direction,
/// clamped — the same ghost convention as the topology pipeline). Both
/// value buffers are packed over `extended`.
LocalFeatureData compute_local_features(const GlobalGrid& grid,
                                        const Box3& block,
                                        const Box3& extended,
                                        std::span<const double> field,
                                        std::span<const double> measure,
                                        double threshold);

/// In-transit stage: glue per-rank components into global features.
/// Sorted by descending voxel count, ties by id.
std::vector<GlobalFeature> combine_features(
    const std::vector<LocalFeatureData>& parts);

}  // namespace hia
