// Versioned shared-space object store, modeled on DataSpaces [12].
//
// Objects live in a (variable, version, bounding-box) index; clients put
// descriptors of RDMA-published blocks and query by name/version/region.
// Metadata is sharded over `num_servers` virtual servers by hashing, the
// mechanism the paper credits for scheduler scalability ("the hashing used
// to balance the RPC messages over multiple DataSpaces servers"); per-server
// RPC counters feed the server-shard ablation bench.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "staging/descriptor.hpp"

namespace hia {

class OverloadControl;

class ObjectStore {
 public:
  /// `overload` (optional, unowned, must outlive the store) receives
  /// store-byte accounting so resident bytes feed the pressure signal.
  explicit ObjectStore(int num_servers, OverloadControl* overload = nullptr);

  /// Inserts a descriptor (one RPC to the owning server).
  void put(const DataDescriptor& desc);

  /// All descriptors of `variable` at `step` whose boxes intersect `region`
  /// (one RPC per server consulted; the index is sharded by (var, step), so
  /// a query touches exactly one server).
  [[nodiscard]] std::vector<DataDescriptor> query(const std::string& variable,
                                                  long step,
                                                  const Box3& region) const;

  /// All descriptors of `variable` at `step`.
  [[nodiscard]] std::vector<DataDescriptor> query_all(
      const std::string& variable, long step) const;

  /// Removes all descriptors of `variable` at `step`; returns them so the
  /// caller can release the underlying Dart regions.
  std::vector<DataDescriptor> take(const std::string& variable, long step);

  [[nodiscard]] int num_servers() const {
    return static_cast<int>(servers_.size());
  }

  /// RPCs routed to each server so far.
  [[nodiscard]] std::vector<uint64_t> rpc_counts() const;

  /// Total descriptors currently stored.
  [[nodiscard]] size_t size() const;

  /// Total raw payload bytes behind the stored descriptors.
  [[nodiscard]] size_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes currently resident for one tenant (descriptors carry their
  /// owning tenant id), and the high-water mark of that residency — the
  /// per-tenant half of the store-pressure attribution.
  [[nodiscard]] size_t tenant_bytes(int tenant) const;
  [[nodiscard]] size_t tenant_peak_bytes(int tenant) const;

 private:
  struct Server {
    mutable std::mutex mutex;
    // key: variable + '\0' + step
    std::map<std::string, std::vector<DataDescriptor>> objects;
    mutable std::atomic<uint64_t> rpcs{0};
  };

  [[nodiscard]] size_t shard(const std::string& variable, long step) const;
  static std::string key(const std::string& variable, long step);

  std::vector<std::unique_ptr<Server>> servers_;
  std::atomic<size_t> bytes_{0};
  OverloadControl* overload_ = nullptr;

  struct TenantBytes {
    size_t bytes = 0;
    size_t peak = 0;
  };
  mutable std::mutex tenant_mutex_;
  std::map<int, TenantBytes> tenant_bytes_;  // guarded by tenant_mutex_
};

}  // namespace hia
