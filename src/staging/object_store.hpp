// Versioned shared-space object store, modeled on DataSpaces [12].
//
// Objects live in a (variable, version, bounding-box) index; clients put
// descriptors of RDMA-published blocks and query by name/version/region.
// Metadata is sharded over `num_servers` virtual servers by hashing, the
// mechanism the paper credits for scheduler scalability ("the hashing used
// to balance the RPC messages over multiple DataSpaces servers"); per-server
// RPC counters feed the server-shard ablation bench.
//
// Crash tolerance: with `replicas` R > 1 every put lands on the first R
// *live* servers of the key's successor chain ((shard + i) % N), so a
// committed object survives R-1 ungraceful server losses. Lookups consult
// the live chain, merge copies by handle id, and *read-repair*: any live
// target that lost its copy to a crash gets it re-inserted (restoring the
// replication factor), emitting a kReplicaRepair event per copy. Byte and
// tenant ledgers count each logical object exactly once, not per copy, so
// put/take stay balanced at every R.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "staging/descriptor.hpp"

namespace hia {

class OverloadControl;

class ObjectStore {
 public:
  /// `overload` (optional, unowned, must outlive the store) receives
  /// store-byte accounting so resident bytes feed the pressure signal.
  /// `replicas` is clamped to [1, num_servers].
  explicit ObjectStore(int num_servers, OverloadControl* overload = nullptr,
                       int replicas = 1);

  /// Inserts a descriptor (one RPC per replica server).
  void put(const DataDescriptor& desc);

  /// All descriptors of `variable` at `step` whose boxes intersect `region`
  /// (one RPC per replica consulted; copies are merged by handle id and
  /// missing copies on live replicas are read-repaired).
  [[nodiscard]] std::vector<DataDescriptor> query(const std::string& variable,
                                                  long step,
                                                  const Box3& region) const;

  /// All descriptors of `variable` at `step`.
  [[nodiscard]] std::vector<DataDescriptor> query_all(
      const std::string& variable, long step) const;

  /// Removes all descriptors of `variable` at `step` from every live
  /// replica; returns the deduplicated logical set so the caller can
  /// release the underlying Dart regions.
  std::vector<DataDescriptor> take(const std::string& variable, long step);

  // ---- Crash injection (ungraceful server loss) ----

  /// Marks `server` crashed: its descriptor shard is seized (the copies it
  /// held are gone) and it drops out of every replica chain. Idempotent.
  /// Returns the number of logical objects that lost their *last* live
  /// copy — zero whenever replicas > number of crashed servers so far.
  size_t crash_server(int server);

  [[nodiscard]] bool is_server_crashed(int server) const;

  /// Servers still alive (crashed servers never come back).
  [[nodiscard]] int live_servers() const;

  [[nodiscard]] int replicas() const { return replicas_; }

  /// Copies re-inserted by read-repair since construction.
  [[nodiscard]] uint64_t replicas_repaired() const {
    return replicas_repaired_.load(std::memory_order_relaxed);
  }

  /// Logical objects whose last live copy died with a crashed server.
  [[nodiscard]] uint64_t objects_lost() const {
    return objects_lost_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] int num_servers() const {
    return static_cast<int>(servers_.size());
  }

  /// RPCs routed to each server so far.
  [[nodiscard]] std::vector<uint64_t> rpc_counts() const;

  /// Total descriptors currently stored across live servers (copies
  /// included — size() grows with the replication factor).
  [[nodiscard]] size_t size() const;

  /// Total raw payload bytes behind the stored descriptors (each logical
  /// object counted once, independent of its copy count).
  [[nodiscard]] size_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes currently resident for one tenant (descriptors carry their
  /// owning tenant id), and the high-water mark of that residency — the
  /// per-tenant half of the store-pressure attribution.
  [[nodiscard]] size_t tenant_bytes(int tenant) const;
  [[nodiscard]] size_t tenant_peak_bytes(int tenant) const;

 private:
  struct Server {
    mutable std::mutex mutex;
    // key: variable + '\0' + step
    std::map<std::string, std::vector<DataDescriptor>> objects;
    mutable std::atomic<uint64_t> rpcs{0};
    std::atomic<bool> crashed{false};
  };

  [[nodiscard]] size_t shard(const std::string& key) const;
  static std::string key(const std::string& variable, long step);

  /// The first `replicas_` live servers of the key's successor chain.
  [[nodiscard]] std::vector<size_t> replica_targets(
      const std::string& key) const;

  /// Inserts unless a copy of the same handle is already under the key.
  static bool insert_unique(Server& server, const std::string& key,
                            const DataDescriptor& desc);

  /// Merges copies from every live target (dedup by handle id) and
  /// read-repairs targets that are missing one.
  [[nodiscard]] std::vector<DataDescriptor> fetch_and_repair(
      const std::string& key) const;

  std::vector<std::unique_ptr<Server>> servers_;
  int replicas_ = 1;
  std::atomic<size_t> bytes_{0};
  mutable std::atomic<uint64_t> replicas_repaired_{0};
  std::atomic<uint64_t> objects_lost_{0};
  OverloadControl* overload_ = nullptr;

  struct TenantBytes {
    size_t bytes = 0;
    size_t peak = 0;
  };
  mutable std::mutex tenant_mutex_;
  std::map<int, TenantBytes> tenant_bytes_;  // guarded by tenant_mutex_
};

}  // namespace hia
