#include "staging/scheduler.hpp"

#include <cstdio>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace {
// Gauges backing the Fig. 5 timeline arguments: how deep the data-ready
// queue ran and how many buckets were busy at once.
hia::obs::Counter& queue_depth() {
  static hia::obs::Counter& c = hia::obs::counter("staging_queue_depth");
  return c;
}
hia::obs::Counter& busy_buckets() {
  static hia::obs::Counter& c = hia::obs::counter("staging_busy_buckets");
  return c;
}
}  // namespace

namespace hia {

// ----------------------------------------------------------- TaskContext --

std::vector<std::byte> TaskContext::pull(const DataDescriptor& desc) {
  TransferStats stats;
  auto data = dart_.get(dart_node_, desc.handle, &stats);
  movement_seconds_ += stats.modeled_seconds;
  movement_bytes_ += stats.bytes;
  movement_raw_bytes_ += stats.raw_bytes;
  return data;
}

std::vector<double> TaskContext::pull_doubles(const DataDescriptor& desc) {
  TransferStats stats;
  auto data = dart_.get_doubles(dart_node_, desc.handle, &stats);
  movement_seconds_ += stats.modeled_seconds;
  movement_bytes_ += stats.bytes;
  movement_raw_bytes_ += stats.raw_bytes;
  decode_seconds_ += stats.decode_seconds;
  return data;
}

// -------------------------------------------------------- StagingService --

StagingService::StagingService(Dart& dart, Options options)
    : dart_(dart), store_(options.num_servers) {
  HIA_REQUIRE(options.num_buckets > 0, "need at least one staging bucket");
  // Expose the scheduler gauges to the time-series sampler and install the
  // task clock as the sampler's virtual time source, so queue-depth series
  // line up with the Fig. 5 timeline's vtime axis.
  obs::register_counter_gauge("staging_queue_depth");
  obs::register_counter_gauge("staging_busy_buckets");
  obs::set_virtual_clock([this] { return clock_.seconds(); }, this);
  slots_.resize(static_cast<size_t>(options.num_buckets));
  buckets_.resize(static_cast<size_t>(options.num_buckets));
  for (int b = 0; b < options.num_buckets; ++b) {
    buckets_[static_cast<size_t>(b)].dart_node =
        dart_.register_node("bucket-" + std::to_string(b));
    buckets_[static_cast<size_t>(b)].thread =
        std::thread([this, b] { bucket_main(b); });
  }
}

StagingService::~StagingService() {
  obs::clear_virtual_clock(this);  // before teardown: the closure reads *this
  drain();
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& b : buckets_) b.thread.join();
}

void StagingService::register_handler(const std::string& analysis,
                                      Handler handler) {
  std::lock_guard lock(mutex_);
  handlers_[analysis] = std::move(handler);
}

DataDescriptor StagingService::publish(int src_node,
                                       const std::string& variable, long step,
                                       const Box3& box,
                                       const std::vector<double>& data,
                                       const Codec* codec) {
  DataDescriptor desc;
  desc.variable = variable;
  desc.step = step;
  desc.box = box;
  desc.src_node = src_node;
  desc.handle = codec == nullptr ? dart_.put_doubles(src_node, data)
                                 : dart_.put_doubles(src_node, data, *codec);
  store_.put(desc);
  return desc;
}

uint64_t StagingService::submit(InTransitTask task) {
  uint64_t id = 0;
  long step = task.step;
  {
    std::lock_guard lock(mutex_);
    HIA_REQUIRE(handlers_.count(task.analysis) > 0,
                "submit for unregistered analysis: " + task.analysis);
    id = next_task_id_++;
    task.task_id = id;
    ++outstanding_;
    task_queue_.push_back(Assigned{std::move(task), clock_.seconds()});
  }
  queue_depth().add(1);
  obs::instant("sched", "enqueue", {.step = step, .vtime = clock_.seconds()});
  work_cv_.notify_all();
  return id;
}

uint64_t StagingService::submit_for(const std::string& analysis, long step,
                                    const std::vector<std::string>& variables) {
  InTransitTask task;
  task.analysis = analysis;
  task.step = step;
  for (const std::string& var : variables) {
    auto descs = store_.take(var, step);
    task.inputs.insert(task.inputs.end(), descs.begin(), descs.end());
  }
  return submit(std::move(task));
}

void StagingService::drain() {
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [this] {
    return outstanding_ == 0;
  });
}

std::vector<TaskRecord> StagingService::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::optional<std::vector<std::byte>> StagingService::take_result(
    uint64_t task_id) {
  std::lock_guard lock(mutex_);
  auto it = results_.find(task_id);
  if (it == results_.end()) return std::nullopt;
  std::vector<std::byte> out = std::move(it->second);
  results_.erase(it);
  return out;
}

size_t StagingService::pending_tasks() const {
  std::lock_guard lock(mutex_);
  return task_queue_.size();
}

int StagingService::free_bucket_count() const {
  std::lock_guard lock(mutex_);
  return static_cast<int>(free_buckets_.size());
}

void StagingService::bucket_main(int bucket_index) {
  obs::set_thread_track(obs::bucket_track(bucket_index));
  // FCFS matcher body: moves queued tasks onto free buckets' slots.
  // Requires mutex_ held.
  auto match = [this] {
    while (!task_queue_.empty() && !free_buckets_.empty()) {
      const int b = free_buckets_.front();
      free_buckets_.pop_front();
      slots_[static_cast<size_t>(b)] = std::move(task_queue_.front());
      task_queue_.pop_front();
      queue_depth().add(-1);
    }
  };
  for (;;) {
    Assigned assigned;
    {
      std::unique_lock lock(mutex_);
      // Bucket-ready: join the free list, then FCFS-match queued work.
      free_buckets_.push_back(bucket_index);
      match();
      if (slots_[static_cast<size_t>(bucket_index)].has_value()) {
        // Matched above — possibly to a different bucket; wake the others.
        work_cv_.notify_all();
      } else {
        work_cv_.wait(lock, [&] {
          // A submit() may have queued work while every bucket slept; any
          // woken bucket performs the match on behalf of the free list.
          match();
          return stopping_ ||
                 slots_[static_cast<size_t>(bucket_index)].has_value();
        });
        work_cv_.notify_all();
      }
      if (slots_[static_cast<size_t>(bucket_index)].has_value()) {
        assigned = std::move(*slots_[static_cast<size_t>(bucket_index)]);
        slots_[static_cast<size_t>(bucket_index)].reset();
      } else {
        HIA_ASSERT(stopping_);
        return;
      }
    }
    execute(bucket_index, std::move(assigned));
  }
}

void StagingService::execute(int bucket_index, Assigned assigned) {
  const double assign_time = clock_.seconds();
  Handler handler;
  {
    std::lock_guard lock(mutex_);
    auto it = handlers_.find(assigned.task.analysis);
    HIA_ASSERT(it != handlers_.end());
    handler = it->second;
  }

  // The task span on this bucket's track: assign -> pull -> compute ->
  // complete (the pull/decode sub-spans come from Dart).
  char span_name[obs::Event::kNameCapacity];
  std::snprintf(span_name, sizeof(span_name), "task:%s",
                assigned.task.analysis.c_str());
  busy_buckets().add(1);
  obs::Span task_span("sched", span_name,
                      {.bucket = bucket_index,
                       .step = assigned.task.step,
                       .vtime = assign_time});

  TaskContext ctx(*this, dart_,
                  assigned.task, bucket_index,
                  buckets_[static_cast<size_t>(bucket_index)].dart_node);

  Stopwatch watch;
  bool failed = false;
  try {
    obs::Span compute_span("sched", "compute",
                           {.bucket = bucket_index,
                            .step = assigned.task.step});
    handler(ctx);
  } catch (const std::exception& e) {
    failed = true;
    HIA_LOG_ERROR("staging", "task %llu (%s, step %ld) failed: %s",
                  static_cast<unsigned long long>(assigned.task.task_id),
                  assigned.task.analysis.c_str(), assigned.task.step,
                  e.what());
  }
  const double wall = watch.seconds();

  // The bucket consumed its inputs; free the published regions.
  for (const DataDescriptor& d : assigned.task.inputs) {
    dart_.release(d.handle);
  }

  TaskRecord record;
  record.task_id = assigned.task.task_id;
  record.analysis = assigned.task.analysis;
  record.step = assigned.task.step;
  record.bucket = bucket_index;
  record.enqueue_time = assigned.enqueue_time;
  record.assign_time = assign_time;
  record.complete_time = clock_.seconds();
  record.data_movement_seconds = ctx.movement_seconds_;
  record.data_movement_bytes = ctx.movement_bytes_;
  record.data_movement_raw_bytes = ctx.movement_raw_bytes_;
  record.decode_seconds = ctx.decode_seconds_;
  record.compute_seconds = wall;

  // The TaskRecord ledger and the tracer's scheduler spans are derived
  // from the same clock reads; the lifecycle must be monotone or one of
  // the two ledgers drifted.
  HIA_ASSERT(record.assign_time >= record.enqueue_time);
  HIA_ASSERT(record.complete_time >= record.assign_time);

  {
    std::lock_guard lock(mutex_);
    records_.push_back(record);
    if (!failed && ctx.result_.has_value()) {
      results_[record.task_id] = std::move(*ctx.result_);
    }
    HIA_ASSERT(outstanding_ > 0);
    --outstanding_;
  }
  static obs::Counter& completed = obs::counter("staging_tasks_completed");
  completed.add(1);
  // The three Fig. 5 latency distributions, on the task (virtual) clock.
  static obs::Histogram& wait_h = obs::histogram("staging_queue_wait_s");
  static obs::Histogram& compute_h = obs::histogram("staging_compute_s");
  static obs::Histogram& turnaround_h = obs::histogram("staging_turnaround_s");
  wait_h.record(record.assign_time - record.enqueue_time);
  compute_h.record(record.compute_seconds);
  turnaround_h.record(record.complete_time - record.enqueue_time);
  busy_buckets().add(-1);
  obs::instant("sched", "complete",
               {.bucket = bucket_index,
                .step = record.step,
                .bytes = static_cast<long long>(record.data_movement_bytes),
                .vtime = record.complete_time});
  drain_cv_.notify_all();
}

}  // namespace hia
