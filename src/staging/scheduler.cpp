#include "staging/scheduler.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace {
// Gauges backing the Fig. 5 timeline arguments: how deep the data-ready
// queue ran and how many buckets were busy at once.
hia::obs::Counter& queue_depth() {
  static hia::obs::Counter& c = hia::obs::counter("staging_queue_depth");
  return c;
}
hia::obs::Counter& busy_buckets() {
  static hia::obs::Counter& c = hia::obs::counter("staging_busy_buckets");
  return c;
}
hia::obs::Counter& queue_bytes_gauge() {
  static hia::obs::Counter& c = hia::obs::counter("staging_queue_bytes");
  return c;
}
}  // namespace

namespace hia {

// ----------------------------------------------------------- TaskContext --

std::vector<std::byte> TaskContext::pull(const DataDescriptor& desc) {
  TransferStats stats;
  auto data = dart_.get(dart_node_, desc.handle, &stats);
  movement_seconds_ += stats.modeled_seconds;
  movement_bytes_ += stats.bytes;
  movement_raw_bytes_ += stats.raw_bytes;
  return data;
}

std::vector<double> TaskContext::pull_doubles(const DataDescriptor& desc) {
  TransferStats stats;
  auto data = dart_.get_doubles(dart_node_, desc.handle, &stats);
  movement_seconds_ += stats.modeled_seconds;
  movement_bytes_ += stats.bytes;
  movement_raw_bytes_ += stats.raw_bytes;
  decode_seconds_ += stats.decode_seconds;
  return data;
}

// -------------------------------------------------------- StagingService --

StagingService::StagingService(Dart& dart, Options options)
    : dart_(dart),
      store_(options.num_servers, options.overload),
      faults_(options.faults),
      overload_(options.overload) {
  HIA_REQUIRE(options.num_buckets > 0, "need at least one staging bucket");
  // Expose the scheduler gauges to the time-series sampler and install the
  // task clock as the sampler's virtual time source, so queue-depth series
  // line up with the Fig. 5 timeline's vtime axis.
  obs::register_counter_gauge("staging_queue_depth");
  obs::register_counter_gauge("staging_busy_buckets");
  obs::register_counter_gauge("staging_queue_bytes");
  obs::set_virtual_clock([this] { return clock_.seconds(); }, this);
  if (faults_ != nullptr && overload_ == nullptr &&
      (!faults_->config().overload_injects.empty() ||
       !faults_->config().credit_starves.empty())) {
    HIA_LOG_WARN("staging",
                 "fault plan scripts overload events but overload control is "
                 "off; they will not fire");
  }
  if (faults_ != nullptr) {
    overload_fired_.resize(faults_->config().overload_injects.size(), false);
    starve_fired_.resize(faults_->config().credit_starves.size(), false);
  }
  slots_.resize(static_cast<size_t>(options.num_buckets));
  buckets_.resize(static_cast<size_t>(options.num_buckets));
  live_buckets_ = options.num_buckets;
  for (int b = 0; b < options.num_buckets; ++b) {
    buckets_[static_cast<size_t>(b)].dart_node =
        dart_.register_node("bucket-" + std::to_string(b));
    buckets_[static_cast<size_t>(b)].thread =
        std::thread([this, b] { bucket_main(b); });
  }
}

StagingService::~StagingService() {
  obs::clear_virtual_clock(this);  // before teardown: the closure reads *this
  drain();
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& b : buckets_) b.thread.join();
}

void StagingService::register_handler(const std::string& analysis,
                                      Handler handler) {
  std::lock_guard lock(mutex_);
  handlers_[analysis] = std::move(handler);
}

DataDescriptor StagingService::publish(int src_node,
                                       const std::string& variable, long step,
                                       const Box3& box,
                                       const std::vector<double>& data,
                                       const Codec* codec) {
  DataDescriptor desc;
  desc.variable = variable;
  desc.step = step;
  desc.box = box;
  desc.src_node = src_node;
  desc.handle = codec == nullptr ? dart_.put_doubles(src_node, data)
                                 : dart_.put_doubles(src_node, data, *codec);
  store_.put(desc);
  return desc;
}

std::vector<StagingService::Assigned> StagingService::apply_scripted_kills(
    long step) {
  // Requires mutex_ held. Retires every bucket whose scripted kill step has
  // arrived: it leaves the free list and the matcher's reach; if it is
  // mid-task it finishes that task first (graceful drain, like taking a
  // staging node out of rotation).
  std::vector<Assigned> orphaned;
  if (faults_ == nullptr || faults_->config().bucket_kills.empty()) {
    return orphaned;
  }
  for (int b = 0; b < static_cast<int>(buckets_.size()); ++b) {
    Bucket& bucket = buckets_[static_cast<size_t>(b)];
    if (bucket.dead || !faults_->bucket_killed(b, step)) continue;
    bucket.dead = true;
    --live_buckets_;
    faults_->count_bucket_kill();
    static obs::Counter& killed = obs::counter("staging_buckets_killed");
    killed.add(1);
    obs::instant("fault", "bucket_killed",
                 {.bucket = b, .step = step, .vtime = clock_.seconds()});
    HIA_LOG_WARN("staging", "bucket %d killed by fault plan at step %ld", b,
                 step);
    for (auto it = free_buckets_.begin(); it != free_buckets_.end(); ++it) {
      if (*it == b) {
        free_buckets_.erase(it);
        break;
      }
    }
  }
  if (live_buckets_ == 0) {
    // Staging capacity is gone: hand every queued task to the caller, who
    // degrades or sheds each one outside the lock.
    while (!task_queue_.empty()) {
      orphaned.push_back(std::move(task_queue_.front()));
      task_queue_.pop_front();
      queue_depth().add(-1);
      queue_account_remove(orphaned.back());
    }
  }
  return orphaned;
}

size_t StagingService::task_wire_bytes(const InTransitTask& task) {
  size_t bytes = 0;
  for (const DataDescriptor& d : task.inputs) bytes += d.handle.bytes;
  return bytes;
}

void StagingService::queue_account_add(Assigned& assigned) {
  // Requires mutex_ held. `bytes` is computed once at first enqueue and
  // sticks to the task across retries.
  if (assigned.bytes == 0) assigned.bytes = task_wire_bytes(assigned.task);
  queue_bytes_ += assigned.bytes;
  queue_bytes_gauge().add(static_cast<int64_t>(assigned.bytes));
  if (overload_ != nullptr) overload_->on_queue_add(assigned.bytes);
}

void StagingService::queue_account_remove(const Assigned& assigned) {
  // Requires mutex_ held.
  HIA_ASSERT(queue_bytes_ >= assigned.bytes);
  queue_bytes_ -= assigned.bytes;
  queue_bytes_gauge().add(-static_cast<int64_t>(assigned.bytes));
  if (overload_ != nullptr) overload_->on_queue_remove(assigned.bytes);
}

void StagingService::apply_scripted_overload(long step) {
  // Requires mutex_ held. Fires each scripted overload/credit-starve event
  // exactly once, the first time a task with step >= its step is submitted.
  if (faults_ == nullptr || overload_ == nullptr) return;
  const FaultPlanConfig& cfg = faults_->config();
  for (size_t i = 0; i < cfg.overload_injects.size(); ++i) {
    const auto& inject = cfg.overload_injects[i];
    if (overload_fired_[i] || step < inject.step) continue;
    overload_fired_[i] = true;
    overload_->inject_phantom_bytes(inject.bytes);
    faults_->count_overload_inject(inject.bytes);
    obs::instant("fault", "overload_inject",
                 {.step = step,
                  .bytes = static_cast<long long>(inject.bytes),
                  .vtime = clock_.seconds()});
    HIA_LOG_WARN("staging",
                 "fault plan injected %zu phantom queue bytes at step %ld",
                 inject.bytes, step);
  }
  for (size_t i = 0; i < cfg.credit_starves.size(); ++i) {
    const auto& starve = cfg.credit_starves[i];
    if (starve_fired_[i] || step < starve.step) continue;
    starve_fired_[i] = true;
    overload_->starve_credits(starve.credits);
    faults_->count_credit_starve(starve.credits);
    obs::instant("fault", "credit_starve",
                 {.step = step, .vtime = clock_.seconds()});
    HIA_LOG_WARN("staging",
                 "fault plan confiscated %d admission credits at step %ld",
                 starve.credits, step);
  }
}

uint64_t StagingService::submit(InTransitTask task) {
  uint64_t id = 0;
  long step = task.step;
  const size_t bytes = task_wire_bytes(task);
  std::vector<Assigned> orphaned;
  std::optional<Assigned> diverted;
  {
    std::lock_guard lock(mutex_);
    HIA_REQUIRE(handlers_.count(task.analysis) > 0,
                "submit for unregistered analysis: " + task.analysis);
    apply_scripted_overload(step);
    id = next_task_id_++;
    task.task_id = id;
    ++outstanding_;
    Assigned assigned;
    assigned.task = std::move(task);
    assigned.enqueue_time = clock_.seconds();
    assigned.bytes = bytes;
    if (overload_ != nullptr && overload_->queue_would_overflow(bytes)) {
      // The hard wall: queued bytes/depth never exceed budget. The task is
      // diverted straight to degrade/shed instead of entering the queue.
      ++overload_diversions_;
      diverted = std::move(assigned);
    } else {
      queue_account_add(assigned);
      task_queue_.push_back(std::move(assigned));
      queue_depth().add(1);
      orphaned = apply_scripted_kills(step);
    }
  }
  obs::instant("sched", "enqueue", {.step = step, .vtime = clock_.seconds()});
  work_cv_.notify_all();
  if (diverted.has_value()) {
    static obs::Counter& diversions = obs::counter("staging_overload_diversions");
    diversions.add(1);
    obs::instant("overload", "queue_diverted",
                 {.step = step,
                  .bytes = static_cast<long long>(bytes),
                  .vtime = clock_.seconds()});
    HIA_LOG_WARN("staging",
                 "task %llu (%s, step %ld) diverted: queue budget exhausted",
                 static_cast<unsigned long long>(id),
                 diverted->task.analysis.c_str(), step);
    degrade_or_shed(std::move(*diverted));
  }
  for (Assigned& a : orphaned) degrade_or_shed(std::move(a));
  return id;
}

uint64_t StagingService::submit_for(const std::string& analysis, long step,
                                    const std::vector<std::string>& variables,
                                    SubmitRoute route) {
  InTransitTask task;
  task.analysis = analysis;
  task.step = step;
  for (const std::string& var : variables) {
    auto descs = store_.take(var, step);
    task.inputs.insert(task.inputs.end(), descs.begin(), descs.end());
  }
  if (route == SubmitRoute::kQueue) return submit(std::move(task));

  // Steered off the queue: the task never competes for a bucket. It is
  // still a submission for conservation purposes (outstanding_, records).
  uint64_t id = 0;
  Assigned assigned;
  {
    std::lock_guard lock(mutex_);
    HIA_REQUIRE(handlers_.count(task.analysis) > 0,
                "submit for unregistered analysis: " + task.analysis);
    id = next_task_id_++;
    task.task_id = id;
    ++outstanding_;
    assigned.task = std::move(task);
    assigned.enqueue_time = clock_.seconds();
    assigned.bytes = task_wire_bytes(assigned.task);
  }
  if (route == SubmitRoute::kFallback) {
    run_task(-1, std::move(assigned), clock_.seconds(),
             TaskOutcome::kDegraded);
  } else {
    shed_task(std::move(assigned));
  }
  return id;
}

uint64_t StagingService::record_deferred(const std::string& analysis,
                                         long step) {
  TaskRecord record;
  record.analysis = analysis;
  record.step = step;
  record.bucket = -1;
  record.enqueue_time = clock_.seconds();
  record.assign_time = record.enqueue_time;
  record.complete_time = record.enqueue_time;
  record.outcome = TaskOutcome::kDeferred;
  {
    std::lock_guard lock(mutex_);
    record.task_id = next_task_id_++;
    records_.push_back(record);
  }
  static obs::Counter& deferred = obs::counter("staging_tasks_deferred");
  deferred.add(1);
  obs::instant("overload", "task_deferred",
               {.step = step, .vtime = clock_.seconds()});
  return record.task_id;
}

PressureSignal StagingService::pressure() const {
  PressureSignal signal;
  if (overload_ != nullptr) signal = overload_->pressure();
  signal.live_buckets = live_bucket_count();
  return signal;
}

uint64_t StagingService::overload_diversions() const {
  std::lock_guard lock(mutex_);
  return overload_diversions_;
}

void StagingService::drain() {
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [this] {
    return outstanding_ == 0;
  });
}

std::vector<TaskRecord> StagingService::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::optional<std::vector<std::byte>> StagingService::take_result(
    uint64_t task_id) {
  std::lock_guard lock(mutex_);
  auto it = results_.find(task_id);
  if (it == results_.end()) return std::nullopt;
  std::vector<std::byte> out = std::move(it->second);
  results_.erase(it);
  return out;
}

size_t StagingService::pending_tasks() const {
  std::lock_guard lock(mutex_);
  return task_queue_.size();
}

int StagingService::free_bucket_count() const {
  std::lock_guard lock(mutex_);
  return static_cast<int>(free_buckets_.size());
}

int StagingService::live_bucket_count() const {
  std::lock_guard lock(mutex_);
  return live_buckets_;
}

void StagingService::bucket_main(int bucket_index) {
  obs::set_thread_track(obs::bucket_track(bucket_index));
  const size_t b = static_cast<size_t>(bucket_index);
  // FCFS matcher body: moves queued, backoff-released tasks onto free
  // buckets' slots. A retried task avoids the bucket it last failed on
  // whenever another live bucket exists. Requires mutex_ held.
  auto match = [this] {
    const double now = clock_.seconds();
    bool matched = true;
    while (matched && !task_queue_.empty() && !free_buckets_.empty()) {
      matched = false;
      for (auto fb = free_buckets_.begin(); fb != free_buckets_.end(); ++fb) {
        const int free_b = *fb;
        for (auto it = task_queue_.begin(); it != task_queue_.end(); ++it) {
          if (it->not_before > now) continue;  // still backing off
          if (it->last_bucket == free_b && live_buckets_ > 1) continue;
          slots_[static_cast<size_t>(free_b)] = std::move(*it);
          task_queue_.erase(it);
          free_buckets_.erase(fb);
          queue_depth().add(-1);
          queue_account_remove(*slots_[static_cast<size_t>(free_b)]);
          matched = true;
          break;
        }
        if (matched) break;  // iterators invalidated; rescan
      }
    }
  };
  // Earliest backoff release still in the future (-1 = none pending).
  // Requires mutex_ held.
  auto next_release = [this] {
    const double now = clock_.seconds();
    double next = -1.0;
    for (const Assigned& a : task_queue_) {
      if (a.not_before > now && (next < 0.0 || a.not_before < next)) {
        next = a.not_before;
      }
    }
    return next;
  };
  for (;;) {
    Assigned assigned;
    {
      std::unique_lock lock(mutex_);
      if (!buckets_[b].dead) {
        // Bucket-ready: join the free list, then FCFS-match queued work.
        free_buckets_.push_back(bucket_index);
        match();
        while (!stopping_ && !slots_[b].has_value() && !buckets_[b].dead) {
          const double release = next_release();
          if (release < 0.0) {
            work_cv_.wait(lock);
          } else {
            // A retried task is waiting out its backoff: sleep until the
            // release (or an earlier submit/retry/stop notification).
            const double delta = release - clock_.seconds();
            if (delta > 0.0) {
              work_cv_.wait_for(lock, std::chrono::duration<double>(delta));
            }
          }
          match();
        }
        work_cv_.notify_all();
      }
      if (slots_[b].has_value()) {
        assigned = std::move(*slots_[b]);
        slots_[b].reset();
      } else if (buckets_[b].dead) {
        // Retired by a scripted kill: leave the free list and exit. Queued
        // work was already drained by the killer if capacity hit zero.
        for (auto it = free_buckets_.begin(); it != free_buckets_.end();
             ++it) {
          if (*it == bucket_index) {
            free_buckets_.erase(it);
            break;
          }
        }
        return;
      } else {
        HIA_ASSERT(stopping_);
        return;
      }
    }
    execute(bucket_index, std::move(assigned));
  }
}

void StagingService::execute(int bucket_index, Assigned assigned) {
  // Fault check first: does this attempt time out? (Deterministic per
  // (task, attempt); the timeout occupies the bucket like the real thing.)
  if (faults_ != nullptr &&
      faults_->task_fails(assigned.task.task_id, assigned.attempt)) {
    const RetryPolicy& retry = faults_->retry();
    obs::instant("fault", "task_timeout",
                 {.bucket = bucket_index,
                  .step = assigned.task.step,
                  .vtime = clock_.seconds()});
    if (retry.task_timeout_s > 0.0) {
      busy_buckets().add(1);
      obs::Span stuck("fault", "task_stuck",
                      {.bucket = bucket_index, .step = assigned.task.step});
      std::this_thread::sleep_for(
          std::chrono::duration<double>(retry.task_timeout_s));
      busy_buckets().add(-1);
    }
    if (assigned.attempt < retry.max_task_attempts) {
      retry_task(bucket_index, std::move(assigned));
    } else {
      assigned.last_bucket = bucket_index;
      degrade_or_shed(std::move(assigned));
    }
    return;
  }
  run_task(bucket_index, std::move(assigned), clock_.seconds(),
           TaskOutcome::kCompleted);
}

void StagingService::retry_task(int failed_bucket, Assigned assigned) {
  const double backoff =
      faults_->backoff_seconds(assigned.task.task_id, assigned.attempt);
  static obs::Counter& retries = obs::counter("staging_task_retries");
  static obs::Histogram& backoff_h = obs::histogram("staging_backoff_s");
  retries.add(1);
  backoff_h.record(backoff);
  obs::instant("fault", "task_retry",
               {.bucket = failed_bucket,
                .step = assigned.task.step,
                .vtime = clock_.seconds()});
  bool no_capacity = false;
  {
    std::lock_guard lock(mutex_);
    assigned.last_bucket = failed_bucket;
    assigned.attempt += 1;
    assigned.backoff_total += backoff;
    assigned.not_before = clock_.seconds() + backoff;
    if (live_buckets_ == 0) {
      no_capacity = true;
    } else if (overload_ != nullptr &&
               overload_->queue_would_overflow(assigned.bytes)) {
      // The queue filled up while this task was executing; requeueing it
      // would breach the hard budget, so the retry budget is forfeit and
      // the task degrades/sheds like a diverted submission.
      no_capacity = true;
    } else {
      queue_account_add(assigned);
      task_queue_.push_back(std::move(assigned));
      queue_depth().add(1);
    }
  }
  work_cv_.notify_all();
  if (no_capacity) degrade_or_shed(std::move(assigned));
}

void StagingService::degrade_or_shed(Assigned assigned) {
  const bool degrade =
      faults_ == nullptr || faults_->retry().degrade_to_insitu;
  if (degrade) {
    // ElasticBroker-style degradation: the analysis still runs, but on the
    // in-situ fallback executor — work is conserved, latency is charged to
    // the primary side. In the virtual cluster the calling thread plays
    // that executor (bucket index -1).
    run_task(-1, std::move(assigned), clock_.seconds(),
             TaskOutcome::kDegraded);
  } else {
    shed_task(std::move(assigned));
  }
}

void StagingService::shed_task(Assigned assigned) {
  // Load shedding, made loud: the task is dropped, but it still produces a
  // record and bumps an explicit counter — nothing disappears silently.
  static obs::Counter& dropped = obs::counter("staging_tasks_dropped");
  dropped.add(1);
  obs::instant("fault", "task_shed",
               {.step = assigned.task.step, .vtime = clock_.seconds()});
  HIA_LOG_WARN("staging", "task %llu (%s, step %ld) shed after %d attempts",
               static_cast<unsigned long long>(assigned.task.task_id),
               assigned.task.analysis.c_str(), assigned.task.step,
               assigned.attempt);
  for (const DataDescriptor& d : assigned.task.inputs) {
    dart_.release(d.handle);
  }
  TaskRecord record;
  record.task_id = assigned.task.task_id;
  record.analysis = assigned.task.analysis;
  record.step = assigned.task.step;
  record.bucket = -1;
  record.enqueue_time = assigned.enqueue_time;
  record.assign_time = clock_.seconds();
  record.complete_time = record.assign_time;
  record.outcome = TaskOutcome::kShed;
  record.attempts = assigned.attempt;
  record.backoff_seconds = assigned.backoff_total;
  record.last_failed_bucket = assigned.last_bucket;
  // Clock-domain guard: enqueue_time must be virtual task-clock seconds
  // (in [0, now]); a wall-epoch timestamp (~1.7e9) leaking in here would
  // poison every queue-wait statistic downstream.
  HIA_ASSERT(record.enqueue_time >= 0.0 &&
             record.enqueue_time <= clock_.seconds());
  {
    std::lock_guard lock(mutex_);
    records_.push_back(record);
    HIA_ASSERT(outstanding_ > 0);
    --outstanding_;
  }
  drain_cv_.notify_all();
}

void StagingService::run_task(int bucket_index, Assigned assigned,
                              double assign_time, TaskOutcome outcome) {
  Handler handler;
  int dart_node = -1;
  {
    std::lock_guard lock(mutex_);
    auto it = handlers_.find(assigned.task.analysis);
    HIA_ASSERT(it != handlers_.end());
    handler = it->second;
    if (bucket_index >= 0) {
      dart_node = buckets_[static_cast<size_t>(bucket_index)].dart_node;
    } else {
      // The in-situ fallback executor registers with Dart on first use so
      // fault-free runs keep the baseline node census.
      if (fallback_node_ < 0) {
        fallback_node_ = dart_.register_node("staging-fallback");
      }
      dart_node = fallback_node_;
    }
  }

  // The task span on this bucket's track: assign -> pull -> compute ->
  // complete (the pull/decode sub-spans come from Dart).
  char span_name[obs::Event::kNameCapacity];
  std::snprintf(span_name, sizeof(span_name), "task:%s%s",
                outcome == TaskOutcome::kDegraded ? "degraded:" : "",
                assigned.task.analysis.c_str());
  if (bucket_index >= 0) busy_buckets().add(1);
  obs::Span task_span("sched", span_name,
                      {.bucket = bucket_index,
                       .step = assigned.task.step,
                       .vtime = assign_time});

  TaskContext ctx(*this, dart_, assigned.task, bucket_index, dart_node);

  Stopwatch watch;
  bool failed = false;
  try {
    obs::Span compute_span("sched", "compute",
                           {.bucket = bucket_index,
                            .step = assigned.task.step});
    handler(ctx);
  } catch (const std::exception& e) {
    failed = true;
    HIA_LOG_ERROR("staging", "task %llu (%s, step %ld) attempt %d failed: %s",
                  static_cast<unsigned long long>(assigned.task.task_id),
                  assigned.task.analysis.c_str(), assigned.task.step,
                  assigned.attempt, e.what());
  }
  double wall = watch.seconds();

  if (failed && faults_ != nullptr && bucket_index >= 0 &&
      assigned.attempt < faults_->retry().max_task_attempts) {
    // A thrown handler (e.g. a pull whose frames never survived the wire)
    // is a failed attempt: back off and retry like an injected timeout.
    busy_buckets().add(-1);
    retry_task(bucket_index, std::move(assigned));
    return;
  }

  if (faults_ != nullptr && bucket_index >= 0) {
    // Scripted slowdown: this bucket's core is oversubscribed; stretch the
    // compute phase by the configured factor.
    const double factor = faults_->bucket_slow_factor(bucket_index);
    if (factor > 1.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(wall * (factor - 1.0)));
      wall *= factor;
    }
  }

  // The bucket consumed its inputs; free the published regions.
  for (const DataDescriptor& d : assigned.task.inputs) {
    dart_.release(d.handle);
  }

  TaskRecord record;
  record.task_id = assigned.task.task_id;
  record.analysis = assigned.task.analysis;
  record.step = assigned.task.step;
  record.bucket = bucket_index;
  record.enqueue_time = assigned.enqueue_time;
  record.assign_time = assign_time;
  record.complete_time = clock_.seconds();
  record.data_movement_seconds = ctx.movement_seconds_;
  record.data_movement_bytes = ctx.movement_bytes_;
  record.data_movement_raw_bytes = ctx.movement_raw_bytes_;
  record.decode_seconds = ctx.decode_seconds_;
  record.compute_seconds = wall;
  record.outcome = outcome;
  record.attempts = assigned.attempt;
  record.backoff_seconds = assigned.backoff_total;
  record.last_failed_bucket = assigned.last_bucket;

  // The TaskRecord ledger and the tracer's scheduler spans are derived
  // from the same clock reads; the lifecycle must be monotone or one of
  // the two ledgers drifted. The first assert is the clock-domain guard:
  // all three stamps are virtual task-clock seconds (in [0, now]); a
  // wall-epoch timestamp (~1.7e9) leaking into enqueue_time would poison
  // every queue-wait histogram downstream.
  HIA_ASSERT(record.enqueue_time >= 0.0 &&
             record.enqueue_time <= clock_.seconds());
  HIA_ASSERT(record.assign_time >= record.enqueue_time);
  HIA_ASSERT(record.complete_time >= record.assign_time);

  {
    std::lock_guard lock(mutex_);
    records_.push_back(record);
    if (!failed && ctx.result_.has_value()) {
      results_[record.task_id] = std::move(*ctx.result_);
    }
    HIA_ASSERT(outstanding_ > 0);
    --outstanding_;
  }
  if (outcome == TaskOutcome::kDegraded) {
    static obs::Counter& degraded = obs::counter("staging_tasks_degraded");
    degraded.add(1);
  } else {
    static obs::Counter& completed = obs::counter("staging_tasks_completed");
    completed.add(1);
  }
  // The three Fig. 5 latency distributions, on the task (virtual) clock.
  static obs::Histogram& wait_h = obs::histogram("staging_queue_wait_s");
  static obs::Histogram& compute_h = obs::histogram("staging_compute_s");
  static obs::Histogram& turnaround_h = obs::histogram("staging_turnaround_s");
  wait_h.record(record.assign_time - record.enqueue_time);
  compute_h.record(record.compute_seconds);
  turnaround_h.record(record.complete_time - record.enqueue_time);
  if (bucket_index >= 0) busy_buckets().add(-1);
  obs::instant("sched", "complete",
               {.bucket = bucket_index,
                .step = record.step,
                .bytes = static_cast<long long>(record.data_movement_bytes),
                .vtime = record.complete_time});
  drain_cv_.notify_all();
}

}  // namespace hia
