#include "staging/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/counters.hpp"
#include "obs/events.hpp"
#include "obs/histogram.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "runtime/fault.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace {
// Gauges backing the Fig. 5 timeline arguments: how deep the data-ready
// queue ran and how many buckets were busy at once.
hia::obs::Counter& queue_depth() {
  static hia::obs::Counter& c = hia::obs::counter("staging_queue_depth");
  return c;
}
hia::obs::Counter& busy_buckets() {
  static hia::obs::Counter& c = hia::obs::counter("staging_busy_buckets");
  return c;
}
hia::obs::Counter& queue_bytes_gauge() {
  static hia::obs::Counter& c = hia::obs::counter("staging_queue_bytes");
  return c;
}
}  // namespace

namespace hia {

// ----------------------------------------------------------- TaskContext --

std::vector<std::byte> TaskContext::pull(const DataDescriptor& desc) {
  TransferStats stats;
  Stopwatch wall;
  auto data = dart_.get(dart_node_, desc.handle, &stats);
  transfer_wall_seconds_ += wall.seconds();
  movement_seconds_ += stats.modeled_seconds;
  movement_bytes_ += stats.bytes;
  movement_raw_bytes_ += stats.raw_bytes;
  return data;
}

std::vector<double> TaskContext::pull_doubles(const DataDescriptor& desc) {
  TransferStats stats;
  Stopwatch wall;
  auto data = dart_.get_doubles(dart_node_, desc.handle, &stats);
  transfer_wall_seconds_ += wall.seconds();
  movement_seconds_ += stats.modeled_seconds;
  movement_bytes_ += stats.bytes;
  movement_raw_bytes_ += stats.raw_bytes;
  decode_seconds_ += stats.decode_seconds;
  return data;
}

// -------------------------------------------------------- StagingService --

StagingService::StagingService(Dart& dart, Options options)
    : dart_(dart),
      store_(options.num_servers, options.overload, options.replicas),
      faults_(options.faults),
      overload_(options.overload) {
  HIA_REQUIRE(options.num_buckets > 0, "need at least one staging bucket");
  // Expose the scheduler gauges to the time-series sampler and install the
  // task clock as the sampler's virtual time source, so queue-depth series
  // line up with the Fig. 5 timeline's vtime axis.
  obs::register_counter_gauge("staging_queue_depth");
  obs::register_counter_gauge("staging_busy_buckets");
  obs::register_counter_gauge("staging_queue_bytes");
  obs::set_virtual_clock([this] { return clock_.seconds(); }, this);
  if (faults_ != nullptr && overload_ == nullptr &&
      (!faults_->config().overload_injects.empty() ||
       !faults_->config().credit_starves.empty() ||
       !faults_->config().tenant_hogs.empty())) {
    HIA_LOG_WARN("staging",
                 "fault plan scripts overload events but overload control is "
                 "off; they will not fire");
  }
  if (faults_ != nullptr) {
    overload_fired_.resize(faults_->config().overload_injects.size(), false);
    starve_fired_.resize(faults_->config().credit_starves.size(), false);
    hog_fired_.resize(faults_->config().tenant_hogs.size(), false);
    server_crash_fired_.resize(faults_->config().server_crashes.size(), false);
    // Lease bookkeeping costs one map insert per assignment; pay it only
    // when the plan can actually crash a bucket.
    lease_tracking_ = !faults_->config().bucket_crashes.empty();
    if (faults_->has_server_crashes() && store_.replicas() < 2) {
      HIA_LOG_WARN("staging",
                   "fault plan scripts server crashes but replicas=%d; "
                   "committed objects on the crashed shard will be lost",
                   store_.replicas());
    }
  }
  slots_.resize(static_cast<size_t>(options.num_buckets));
  buckets_.resize(static_cast<size_t>(options.num_buckets));
  live_buckets_ = options.num_buckets;
  for (int b = 0; b < options.num_buckets; ++b) {
    buckets_[static_cast<size_t>(b)].dart_node =
        dart_.register_node("bucket-" + std::to_string(b));
    buckets_[static_cast<size_t>(b)].thread =
        std::thread([this, b] { bucket_main(b); });
  }
}

StagingService::~StagingService() {
  obs::clear_virtual_clock(this);  // before teardown: the closure reads *this
  drain();
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& b : buckets_) b.thread.join();
}

void StagingService::register_handler(const std::string& analysis,
                                      Handler handler) {
  std::lock_guard lock(mutex_);
  handlers_[analysis] = std::move(handler);
}

DataDescriptor StagingService::publish(int src_node,
                                       const std::string& variable, long step,
                                       const Box3& box,
                                       const std::vector<double>& data,
                                       const Codec* codec, int tenant) {
  DataDescriptor desc;
  desc.variable = variable;
  desc.step = step;
  desc.box = box;
  desc.src_node = src_node;
  desc.tenant = tenant;
  desc.handle =
      codec == nullptr
          ? dart_.put_doubles(src_node, data, tenant)
          : dart_.put_doubles(src_node, data, *codec, nullptr, tenant);
  store_.put(desc);
  return desc;
}

std::vector<StagingService::Assigned> StagingService::apply_scripted_kills(
    long step) {
  // Requires mutex_ held. Retires every bucket whose scripted kill step has
  // arrived: it leaves the free list and the matcher's reach; if it is
  // mid-task it finishes that task first (graceful drain, like taking a
  // staging node out of rotation).
  std::vector<Assigned> orphaned;
  if (faults_ == nullptr || faults_->config().bucket_kills.empty()) {
    return orphaned;
  }
  for (int b = 0; b < static_cast<int>(buckets_.size()); ++b) {
    Bucket& bucket = buckets_[static_cast<size_t>(b)];
    if (bucket.dead || !faults_->bucket_killed(b, step)) continue;
    bucket.dead = true;
    --live_buckets_;
    faults_->count_bucket_kill();
    static obs::Counter& killed = obs::counter("staging_buckets_killed");
    killed.add(1);
    obs::instant("fault", "bucket_killed",
                 {.bucket = b, .step = step, .vtime = clock_.seconds()});
    obs::record_event(obs::EventKind::kFaultVerdict, -1, b,
                      static_cast<int64_t>(obs::EventFaultSite::kBucketKill),
                      b, clock_.seconds());
    HIA_LOG_WARN("staging", "bucket %d killed by fault plan at step %ld", b,
                 step);
    for (auto it = free_buckets_.begin(); it != free_buckets_.end(); ++it) {
      if (*it == b) {
        free_buckets_.erase(it);
        break;
      }
    }
  }
  if (live_buckets_ == 0) {
    // Staging capacity is gone: hand every queued task to the caller, who
    // degrades or sheds each one outside the lock.
    while (!task_queue_.empty()) {
      orphaned.push_back(std::move(task_queue_.front()));
      task_queue_.pop_front();
      queue_depth().add(-1);
      queue_account_remove(orphaned.back());
    }
  }
  return orphaned;
}

std::vector<StagingService::Assigned> StagingService::apply_scripted_crashes(
    long step) {
  // Requires mutex_ held. Ungraceful death: the bucket is yanked mid-task
  // with no drain (a staging node OOM-killed or dropped off the fabric).
  // Its in-flight assignment is NOT touched here — the lease machinery
  // reclaims it once the lease stops renewing — but its pending slot and
  // the queue are handled like a kill when capacity hits zero.
  std::vector<Assigned> orphaned;
  if (faults_ == nullptr) return orphaned;
  const FaultPlanConfig& cfg = faults_->config();
  if (!cfg.bucket_crashes.empty()) {
    for (int b = 0; b < static_cast<int>(buckets_.size()); ++b) {
      Bucket& bucket = buckets_[static_cast<size_t>(b)];
      if (bucket.dead || !faults_->bucket_crashed(b, step)) continue;
      bucket.dead = true;
      bucket.crashed = true;
      --live_buckets_;
      faults_->count_bucket_crash();
      static obs::Counter& crashed = obs::counter("staging_buckets_crashed");
      crashed.add(1);
      obs::instant("fault", "bucket_crashed",
                   {.bucket = b, .step = step, .vtime = clock_.seconds()});
      obs::record_event(
          obs::EventKind::kFaultVerdict, -1, b,
          static_cast<int64_t>(obs::EventFaultSite::kBucketCrash), b,
          clock_.seconds());
      HIA_LOG_WARN("staging",
                   "bucket %d crashed ungracefully at step %ld (no drain)", b,
                   step);
      for (auto it = free_buckets_.begin(); it != free_buckets_.end(); ++it) {
        if (*it == b) {
          free_buckets_.erase(it);
          break;
        }
      }
    }
    if (live_buckets_ == 0) {
      while (!task_queue_.empty()) {
        orphaned.push_back(std::move(task_queue_.front()));
        task_queue_.pop_front();
        queue_depth().add(-1);
        queue_account_remove(orphaned.back());
      }
    }
  }
  for (size_t i = 0; i < cfg.server_crashes.size(); ++i) {
    const auto& crash = cfg.server_crashes[i];
    if (server_crash_fired_[i] || step < crash.step) continue;
    server_crash_fired_[i] = true;
    if (crash.server >= store_.num_servers()) {
      HIA_LOG_WARN("staging",
                   "fault plan crashes server %d but only %d exist; ignored",
                   crash.server, store_.num_servers());
      continue;
    }
    const size_t lost = store_.crash_server(crash.server);
    faults_->count_server_crash();
    static obs::Counter& crashed = obs::counter("staging_servers_crashed");
    crashed.add(1);
    obs::instant("fault", "server_crashed",
                 {.bucket = crash.server, .step = step,
                  .bytes = static_cast<long long>(lost),
                  .vtime = clock_.seconds()});
    obs::record_event(
        obs::EventKind::kFaultVerdict, -1, crash.server,
        static_cast<int64_t>(obs::EventFaultSite::kServerCrash),
        static_cast<int64_t>(lost), clock_.seconds());
    HIA_LOG_WARN("staging",
                 "object-store server %d crashed at step %ld: %zu objects "
                 "lost their last copy (%d servers live, replicas=%d)",
                 crash.server, step, lost, store_.live_servers(),
                 store_.replicas());
  }
  return orphaned;
}

bool StagingService::zombie_fenced(const Assigned& assigned,
                                   int bucket_index) {
  if (!lease_tracking_) return false;
  {
    std::lock_guard lock(mutex_);
    auto it = task_epoch_.find(assigned.task.task_id);
    const int current = it == task_epoch_.end() ? 0 : it->second;
    if (assigned.epoch == current) {
      // The attempt is current: it finished under its lease; release it.
      if (bucket_index >= 0) leases_.erase(bucket_index);
      return false;
    }
  }
  // A presumed-dead bucket's thread came back with a finished attempt
  // after the lease expired and the task was re-queued. Fence it: no
  // settle, no record, no outstanding_ decrement, no handle release, no
  // terminal event — the current epoch owns all of those, exactly once.
  zombies_fenced_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& fenced = obs::counter("staging_zombies_fenced");
  fenced.add(1);
  obs::record_event(obs::EventKind::kZombieFence, assigned.task.tenant,
                    bucket_index,
                    static_cast<int64_t>(assigned.task.task_id),
                    assigned.attempt, clock_.seconds());
  HIA_LOG_WARN("staging",
               "fenced zombie completion of task %llu attempt %d from "
               "crashed bucket %d",
               static_cast<unsigned long long>(assigned.task.task_id),
               assigned.attempt, bucket_index);
  return true;
}

void StagingService::heartbeat() {
  if (!lease_tracking_) return;
  // (bucket, reclaimed assignment) pairs whose lease expired: the owner
  // crashed mid-attempt, so these count as failed attempts and go through
  // the ordinary retry machinery (backoff + bucket avoidance).
  std::vector<std::pair<int, Assigned>> reexec;
  std::vector<Assigned> orphaned;
  bool requeued = false;
  {
    std::lock_guard lock(mutex_);
    const double now = clock_.seconds();
    // The heartbeat tick: every live owner renews; only a crashed owner
    // stops renewing, so only its lease can expire below.
    for (auto& [b, lease] : leases_) {
      if (!buckets_[static_cast<size_t>(b)].crashed) {
        lease.expires_at = now + kLeaseS;
      }
    }
    for (auto it = leases_.begin(); it != leases_.end();) {
      const int b = it->first;
      if (!buckets_[static_cast<size_t>(b)].crashed ||
          now < it->second.expires_at) {
        ++it;
        continue;
      }
      Assigned a = std::move(it->second.assigned);
      it = leases_.erase(it);
      // Bump the task's epoch: from here on the crashed bucket's still-
      // running attempt is a zombie and will be fenced at its next ledger
      // touch. Entries are never erased (see task_epoch_).
      a.epoch = ++task_epoch_[a.task.task_id];
      settle_service_locked(a, 0.0);  // the crashed attempt's charge is void
      leases_expired_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& expired = obs::counter("staging_leases_expired");
      expired.add(1);
      obs::record_event(obs::EventKind::kLeaseExpire, a.task.tenant, b,
                        static_cast<int64_t>(a.task.task_id), a.attempt, now);
      HIA_LOG_WARN("staging",
                   "lease on task %llu attempt %d expired: owner bucket %d "
                   "crashed; reclaiming for re-execution",
                   static_cast<unsigned long long>(a.task.task_id), a.attempt,
                   b);
      reexec.emplace_back(b, std::move(a));
    }
    // An assignment parked in a crashed bucket's slot was matched but never
    // picked up: no attempt ran (no lease, no zombie), so it simply
    // re-enters the queue as if the matcher had never chosen that bucket.
    for (size_t b = 0; b < buckets_.size(); ++b) {
      if (!buckets_[b].crashed || !slots_[b].has_value()) continue;
      Assigned a = std::move(*slots_[b]);
      slots_[b].reset();
      settle_service_locked(a, 0.0);  // drop the matcher's provisional charge
      if (live_buckets_ == 0) {
        orphaned.push_back(std::move(a));
        continue;
      }
      queue_account_add(a);
      queue_insert_sorted(std::move(a));
      queue_depth().add(1);
      requeued = true;
    }
  }
  for (auto& [b, a] : reexec) {
    const RetryPolicy& retry = faults_->retry();
    if (a.attempt < retry.max_task_attempts) {
      tasks_reexecuted_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& reexecs = obs::counter("staging_task_reexecs");
      reexecs.add(1);
      obs::record_event(obs::EventKind::kTaskReexec, a.task.tenant, b,
                        static_cast<int64_t>(a.task.task_id), a.attempt + 1,
                        clock_.seconds());
      retry_task(b, std::move(a));
    } else {
      // Attempt budget exhausted on the crashed attempt: close its
      // occupancy window and fall back, exactly like an injected-fault
      // attempt that ran out of retries.
      obs::record_event(obs::EventKind::kBucketVacate, a.task.tenant, b,
                        static_cast<int64_t>(a.task.task_id), a.attempt,
                        clock_.seconds());
      a.last_bucket = b;
      degrade_or_shed(std::move(a));
    }
  }
  for (Assigned& a : orphaned) degrade_or_shed(std::move(a));
  if (requeued) work_cv_.notify_all();
}

size_t StagingService::task_wire_bytes(const InTransitTask& task) {
  size_t bytes = 0;
  for (const DataDescriptor& d : task.inputs) bytes += d.handle.bytes;
  return bytes;
}

void StagingService::queue_account_add(Assigned& assigned) {
  // Requires mutex_ held. `bytes` is computed once at first enqueue and
  // sticks to the task across retries.
  if (assigned.bytes == 0) assigned.bytes = task_wire_bytes(assigned.task);
  queue_bytes_ += assigned.bytes;
  queue_bytes_gauge().add(static_cast<int64_t>(assigned.bytes));
  if (overload_ != nullptr) overload_->on_queue_add(assigned.bytes);
  if (fair_share_) {
    TenantSched& t = tenants_[assigned.task.tenant];
    t.queue_bytes += assigned.bytes;
    ++t.queue_depth;
  }
}

void StagingService::queue_account_remove(const Assigned& assigned) {
  // Requires mutex_ held.
  HIA_ASSERT(queue_bytes_ >= assigned.bytes);
  queue_bytes_ -= assigned.bytes;
  queue_bytes_gauge().add(-static_cast<int64_t>(assigned.bytes));
  if (overload_ != nullptr) overload_->on_queue_remove(assigned.bytes);
  if (fair_share_) {
    TenantSched& t = tenants_[assigned.task.tenant];
    t.queue_bytes -= std::min(t.queue_bytes, assigned.bytes);
    if (t.queue_depth > 0) --t.queue_depth;
  }
}

void StagingService::queue_insert_sorted(Assigned assigned) {
  // Requires mutex_ held. The queue is sorted by task_id (monotonic at
  // submit), so a backoff-released retry re-enters at its *arrival
  // position*, never the tail — FCFS order survives backoff. The neighbor
  // asserts are the invariant's tripwire.
  auto pos = std::lower_bound(
      task_queue_.begin(), task_queue_.end(), assigned,
      [](const Assigned& a, const Assigned& b) {
        return a.task.task_id < b.task.task_id;
      });
  if (pos != task_queue_.begin()) {
    HIA_ASSERT(std::prev(pos)->task.task_id < assigned.task.task_id);
  }
  if (pos != task_queue_.end()) {
    HIA_ASSERT(pos->task.task_id > assigned.task.task_id);
  }
  task_queue_.insert(pos, std::move(assigned));
}

void StagingService::settle_service_locked(Assigned& assigned, double busy_s) {
  // Requires mutex_ held. Safe to call with no charge outstanding.
  if (!fair_share_) return;
  TenantSched& t = tenants_[assigned.task.tenant];
  t.inflight_s -= std::min(t.inflight_s, assigned.charge_s);
  assigned.charge_s = 0.0;
  if (busy_s > 0.0) {
    t.service_s += busy_s;
    t.ewma_task_s = t.ewma_task_s <= 0.0
                        ? busy_s
                        : 0.8 * t.ewma_task_s + 0.2 * busy_s;
  }
}

void StagingService::apply_scripted_overload(long step) {
  // Requires mutex_ held. Fires each scripted overload/credit-starve event
  // exactly once, the first time a task with step >= its step is submitted.
  if (faults_ == nullptr || overload_ == nullptr) return;
  const FaultPlanConfig& cfg = faults_->config();
  for (size_t i = 0; i < cfg.overload_injects.size(); ++i) {
    const auto& inject = cfg.overload_injects[i];
    if (overload_fired_[i] || step < inject.step) continue;
    overload_fired_[i] = true;
    overload_->inject_phantom_bytes(inject.bytes);
    faults_->count_overload_inject(inject.bytes);
    obs::instant("fault", "overload_inject",
                 {.step = step,
                  .bytes = static_cast<long long>(inject.bytes),
                  .vtime = clock_.seconds()});
    obs::record_event(
        obs::EventKind::kFaultVerdict, -1, -1,
        static_cast<int64_t>(obs::EventFaultSite::kPhantomBytes),
        static_cast<int64_t>(inject.bytes), clock_.seconds());
    HIA_LOG_WARN("staging",
                 "fault plan injected %zu phantom queue bytes at step %ld",
                 inject.bytes, step);
  }
  for (size_t i = 0; i < cfg.credit_starves.size(); ++i) {
    const auto& starve = cfg.credit_starves[i];
    if (starve_fired_[i] || step < starve.step) continue;
    starve_fired_[i] = true;
    overload_->starve_credits(starve.credits);
    faults_->count_credit_starve(starve.credits);
    obs::instant("fault", "credit_starve",
                 {.step = step, .vtime = clock_.seconds()});
    obs::record_event(
        obs::EventKind::kFaultVerdict, -1, -1,
        static_cast<int64_t>(obs::EventFaultSite::kCreditStarve),
        starve.credits, clock_.seconds());
    HIA_LOG_WARN("staging",
                 "fault plan confiscated %d admission credits at step %ld",
                 starve.credits, step);
  }
  for (size_t i = 0; i < cfg.tenant_hogs.size(); ++i) {
    const auto& hog = cfg.tenant_hogs[i];
    if (hog_fired_[i] || step < hog.step) continue;
    hog_fired_[i] = true;
    // The burst raises the shared pressure signal like any rogue producer,
    // but the bytes are *attributed*: the hog tenant's ledger carries them.
    overload_->inject_phantom_bytes(hog.bytes);
    tenants_[hog.tenant].hog_bytes += hog.bytes;
    faults_->count_tenant_hog(hog.bytes);
    obs::instant("fault", "tenant_hog",
                 {.step = step,
                  .bytes = static_cast<long long>(hog.bytes),
                  .vtime = clock_.seconds()});
    obs::record_event(
        obs::EventKind::kFaultVerdict, hog.tenant, -1,
        static_cast<int64_t>(obs::EventFaultSite::kPhantomBytes),
        static_cast<int64_t>(hog.bytes), clock_.seconds());
    HIA_LOG_WARN("staging",
                 "tenant %d hogged %zu phantom queue bytes at step %ld",
                 hog.tenant, hog.bytes, step);
  }
}

uint64_t StagingService::submit(InTransitTask task) {
  uint64_t id = 0;
  long step = task.step;
  const int tenant = task.tenant;
  const size_t bytes = task_wire_bytes(task);
  // Admission waits parked by this thread's publishes are charged to this
  // task (the credit-grant causal edge); drained even without a gate so a
  // stale accumulation can never leak into a later service's timeline.
  const double admit_wait_s = OverloadControl::take_thread_admission_wait();
  double enqueue_vt = 0.0;
  std::vector<Assigned> orphaned;
  std::optional<Assigned> diverted;
  bool tenant_capped = false;
  {
    std::lock_guard lock(mutex_);
    HIA_REQUIRE(handlers_.count(task.analysis) > 0,
                "submit for unregistered analysis: " + task.analysis);
    apply_scripted_overload(step);
    id = next_task_id_++;
    task.task_id = id;
    ++outstanding_;
    if (fair_share_) ++tenants_[tenant].outstanding;
    Assigned assigned;
    assigned.task = std::move(task);
    assigned.enqueue_time = clock_.seconds();
    assigned.bytes = bytes;
    enqueue_vt = assigned.enqueue_time;
    if (fair_share_) {
      // Per-tenant caps fire *before* the global hard wall: a hog's burst
      // diverts on its own budget instead of eating the shared one.
      TenantSched& t = tenants_[tenant];
      tenant_capped =
          (t.queue_bytes_cap > 0 && t.queue_bytes + bytes > t.queue_bytes_cap) ||
          (t.queue_depth_cap > 0 && t.queue_depth >= t.queue_depth_cap);
      if (tenant_capped) ++t.cap_diversions;
    }
    if (tenant_capped) {
      diverted = std::move(assigned);
    } else if (overload_ != nullptr && overload_->queue_would_overflow(bytes)) {
      // The hard wall: queued bytes/depth never exceed budget. The task is
      // diverted straight to degrade/shed instead of entering the queue.
      ++overload_diversions_;
      diverted = std::move(assigned);
    } else {
      queue_account_add(assigned);
      // task_id is monotonic under this lock, so the tail IS the arrival
      // position — the queue stays sorted by task_id.
      task_queue_.push_back(std::move(assigned));
      queue_depth().add(1);
      orphaned = apply_scripted_kills(step);
    }
    std::vector<Assigned> crash_orphaned = apply_scripted_crashes(step);
    for (Assigned& a : crash_orphaned) orphaned.push_back(std::move(a));
  }
  obs::instant("sched", "enqueue", {.step = step, .vtime = clock_.seconds()});
  // vt = the locked enqueue read, never a fresh clock sample: a bucket can
  // match the task before this line runs, and assign must not precede
  // submit on the virtual timeline.
  obs::record_event(obs::EventKind::kTaskSubmit, tenant,
                    static_cast<int>(step), static_cast<int64_t>(id),
                    static_cast<int64_t>(bytes), enqueue_vt);
  if (admit_wait_s > 0.0) {
    obs::record_event(obs::EventKind::kCreditGrant, tenant, -1,
                      static_cast<int64_t>(id),
                      static_cast<int64_t>(admit_wait_s * 1e6), enqueue_vt);
  }
  work_cv_.notify_all();
  if (diverted.has_value()) {
    static obs::Counter& diversions = obs::counter("staging_overload_diversions");
    static obs::Counter& cap_diversions =
        obs::counter("staging_tenant_cap_diversions");
    (tenant_capped ? cap_diversions : diversions).add(1);
    obs::instant("overload",
                 tenant_capped ? "tenant_cap_diverted" : "queue_diverted",
                 {.step = step,
                  .bytes = static_cast<long long>(bytes),
                  .vtime = clock_.seconds()});
    HIA_LOG_WARN("staging",
                 "task %llu (%s, step %ld, tenant %d) diverted: %s exhausted",
                 static_cast<unsigned long long>(id),
                 diverted->task.analysis.c_str(), step, tenant,
                 tenant_capped ? "tenant queue cap" : "queue budget");
    degrade_or_shed(std::move(*diverted));
  }
  for (Assigned& a : orphaned) degrade_or_shed(std::move(a));
  // Submits are one of the heartbeat's tick sources: renew live leases and
  // reclaim any whose owner just crashed (no-op unless crashes are scripted).
  heartbeat();
  return id;
}

uint64_t StagingService::submit_for(const std::string& analysis, long step,
                                    const std::vector<std::string>& variables,
                                    SubmitRoute route, int tenant) {
  InTransitTask task;
  task.analysis = analysis;
  task.step = step;
  task.tenant = tenant;
  for (const std::string& var : variables) {
    auto descs = store_.take(var, step);
    task.inputs.insert(task.inputs.end(), descs.begin(), descs.end());
  }
  if (route == SubmitRoute::kQueue) return submit(std::move(task));

  // Steered off the queue: the task never competes for a bucket. It is
  // still a submission for conservation purposes (outstanding_, records).
  const double admit_wait_s = OverloadControl::take_thread_admission_wait();
  uint64_t id = 0;
  Assigned assigned;
  {
    std::lock_guard lock(mutex_);
    HIA_REQUIRE(handlers_.count(task.analysis) > 0,
                "submit for unregistered analysis: " + task.analysis);
    id = next_task_id_++;
    task.task_id = id;
    ++outstanding_;
    if (fair_share_) ++tenants_[tenant].outstanding;
    assigned.task = std::move(task);
    assigned.enqueue_time = clock_.seconds();
    assigned.bytes = task_wire_bytes(assigned.task);
  }
  obs::record_event(obs::EventKind::kTaskSubmit, tenant,
                    static_cast<int>(step), static_cast<int64_t>(id),
                    static_cast<int64_t>(assigned.bytes),
                    assigned.enqueue_time);
  if (admit_wait_s > 0.0) {
    obs::record_event(obs::EventKind::kCreditGrant, tenant, -1,
                      static_cast<int64_t>(id),
                      static_cast<int64_t>(admit_wait_s * 1e6),
                      assigned.enqueue_time);
  }
  if (route == SubmitRoute::kFallback) {
    run_task(-1, std::move(assigned), clock_.seconds(),
             TaskOutcome::kDegraded);
  } else {
    shed_task(std::move(assigned));
  }
  return id;
}

uint64_t StagingService::record_deferred(const std::string& analysis,
                                         long step, int tenant) {
  TaskRecord record;
  record.analysis = analysis;
  record.step = step;
  record.tenant = tenant;
  record.bucket = -1;
  record.enqueue_time = clock_.seconds();
  record.assign_time = record.enqueue_time;
  record.complete_time = record.enqueue_time;
  record.outcome = TaskOutcome::kDeferred;
  {
    std::lock_guard lock(mutex_);
    record.task_id = next_task_id_++;
    records_.push_back(record);
  }
  static obs::Counter& deferred = obs::counter("staging_tasks_deferred");
  deferred.add(1);
  if (fair_share_enabled()) {
    obs::counter("staging_tasks_deferred", {.tenant = tenant}).add(1);
  }
  obs::instant("overload", "task_deferred",
               {.step = step, .vtime = clock_.seconds()});
  // A deferral is a submission that terminates immediately: both events
  // are recorded so the per-tenant partition stays conserved.
  obs::record_event(obs::EventKind::kTaskSubmit, tenant,
                    static_cast<int>(step),
                    static_cast<int64_t>(record.task_id), 0,
                    record.enqueue_time);
  obs::record_event(obs::EventKind::kTaskDefer, tenant, -1,
                    static_cast<int64_t>(record.task_id), 0,
                    record.complete_time);
  return record.task_id;
}

PressureSignal StagingService::pressure() const {
  PressureSignal signal;
  if (overload_ != nullptr) signal = overload_->pressure();
  signal.live_buckets = live_bucket_count();
  return signal;
}

uint64_t StagingService::overload_diversions() const {
  std::lock_guard lock(mutex_);
  return overload_diversions_;
}

void StagingService::set_tenant_policy(int tenant, double weight,
                                       size_t queue_bytes_cap,
                                       size_t queue_depth_cap) {
  HIA_REQUIRE(weight > 0.0, "tenant weight must be > 0");
  std::lock_guard lock(mutex_);
  fair_share_ = true;
  TenantSched& t = tenants_[tenant];
  t.weight = weight;
  t.queue_bytes_cap = queue_bytes_cap;
  t.queue_depth_cap = queue_depth_cap;
}

bool StagingService::fair_share_enabled() const {
  std::lock_guard lock(mutex_);
  return fair_share_;
}

std::vector<StagingService::TenantShare> StagingService::tenant_shares()
    const {
  std::lock_guard lock(mutex_);
  std::vector<TenantShare> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, t] : tenants_) {
    TenantShare share;
    share.tenant = tenant;
    share.weight = t.weight;
    share.bucket_seconds = t.service_s;
    share.cap_diversions = t.cap_diversions;
    share.hog_bytes = t.hog_bytes;
    share.queue_depth = t.queue_depth;
    share.queue_bytes = t.queue_bytes;
    share.outstanding = t.outstanding;
    out.push_back(share);
  }
  return out;
}

void StagingService::drain_tenant(int tenant) {
  auto drained = [this, tenant] {
    auto it = tenants_.find(tenant);
    return it == tenants_.end() || it->second.outstanding == 0;
  };
  if (!lease_tracking_) {
    std::unique_lock lock(mutex_);
    drain_cv_.wait(lock, drained);
    return;
  }
  // See drain(): the heartbeat must keep ticking or a task stranded on a
  // crashed bucket never re-enters the queue.
  for (;;) {
    heartbeat();
    std::unique_lock lock(mutex_);
    if (drain_cv_.wait_for(lock, std::chrono::milliseconds(10), drained)) {
      return;
    }
  }
}

int StagingService::add_bucket() {
  int index = -1;
  int live_after = 0;
  {
    std::lock_guard lock(mutex_);
    index = static_cast<int>(buckets_.size());
    slots_.emplace_back();
    buckets_.emplace_back();
    buckets_.back().dart_node =
        dart_.register_node("bucket-" + std::to_string(index));
    buckets_.back().thread =
        std::thread([this, index] { bucket_main(index); });
    ++live_buckets_;
    live_after = live_buckets_;
  }
  static obs::Counter& grows = obs::counter("staging_pool_grows");
  grows.add(1);
  obs::instant("pool", "bucket_added",
               {.bucket = index, .vtime = clock_.seconds()});
  obs::record_event(obs::EventKind::kPoolGrow, -1, index, index, live_after,
                    clock_.seconds());
  HIA_LOG_INFO("staging", "elastic pool grew: bucket %d joined", index);
  work_cv_.notify_all();
  return index;
}

int StagingService::retire_bucket(int min_live) {
  int victim = -1;
  int live_after = 0;
  const int floor = std::max(min_live, 1);
  {
    std::lock_guard lock(mutex_);
    // The floor is re-checked here, under the same lock that scripted
    // crashes take: a bucket crash between the caller's pressure snapshot
    // and this call shrinks live_buckets_ first, and the retire backs off
    // rather than dropping the live pool below the floor.
    if (live_buckets_ <= floor) return -1;
    // Prefer an idle bucket (no task to finish); otherwise the busy one
    // with the highest index, which drains gracefully like a scripted
    // kill: it completes its current task before exiting.
    if (!free_buckets_.empty()) {
      victim = free_buckets_.front();
    } else {
      for (int b = static_cast<int>(buckets_.size()) - 1; b >= 0; --b) {
        if (!buckets_[static_cast<size_t>(b)].dead) {
          victim = b;
          break;
        }
      }
    }
    HIA_ASSERT(victim >= 0);
    buckets_[static_cast<size_t>(victim)].dead = true;
    --live_buckets_;
    HIA_ASSERT(live_buckets_ >= floor);
    live_after = live_buckets_;
    for (auto it = free_buckets_.begin(); it != free_buckets_.end(); ++it) {
      if (*it == victim) {
        free_buckets_.erase(it);
        break;
      }
    }
  }
  static obs::Counter& shrinks = obs::counter("staging_pool_shrinks");
  shrinks.add(1);
  obs::instant("pool", "bucket_retired",
               {.bucket = victim, .vtime = clock_.seconds()});
  obs::record_event(obs::EventKind::kPoolShrink, -1, victim, victim,
                    live_after, clock_.seconds());
  HIA_LOG_INFO("staging", "elastic pool shrank: bucket %d retired", victim);
  work_cv_.notify_all();
  return victim;
}

void StagingService::drain() {
  if (!lease_tracking_) {
    std::unique_lock lock(mutex_);
    drain_cv_.wait(lock, [this] { return outstanding_ == 0; });
    return;
  }
  // With crashes in play the drain loop doubles as the heartbeat driver:
  // a task stranded on a crashed bucket only re-enters the queue once its
  // lease expires, and nothing else may tick the clock after the last
  // submit. Poll with a deadline instead of blocking forever.
  for (;;) {
    heartbeat();
    std::unique_lock lock(mutex_);
    if (drain_cv_.wait_for(lock, std::chrono::milliseconds(10),
                           [this] { return outstanding_ == 0; })) {
      return;
    }
  }
}

std::vector<TaskRecord> StagingService::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

std::optional<std::vector<std::byte>> StagingService::take_result(
    uint64_t task_id) {
  std::lock_guard lock(mutex_);
  auto it = results_.find(task_id);
  if (it == results_.end()) return std::nullopt;
  std::vector<std::byte> out = std::move(it->second);
  results_.erase(it);
  return out;
}

size_t StagingService::pending_tasks() const {
  std::lock_guard lock(mutex_);
  return task_queue_.size();
}

int StagingService::free_bucket_count() const {
  std::lock_guard lock(mutex_);
  return static_cast<int>(free_buckets_.size());
}

int StagingService::num_buckets() const {
  std::lock_guard lock(mutex_);
  return static_cast<int>(buckets_.size());
}

std::deque<StagingService::Assigned>::iterator StagingService::pick_task_locked(
    int free_b, double now) {
  auto eligible = [&](const Assigned& a) {
    if (a.not_before > now) return false;  // still backing off
    if (a.last_bucket == free_b && live_buckets_ > 1) return false;
    return true;
  };
  // The queue is sorted by task_id (= arrival order), so the first
  // eligible hit is the oldest — both globally and within each tenant.
  auto oldest = task_queue_.end();
  if (!fair_share_) {
    for (auto it = task_queue_.begin(); it != task_queue_.end(); ++it) {
      if (eligible(*it)) return it;
    }
    return oldest;
  }
  std::map<int, std::deque<Assigned>::iterator> heads;  // tenant -> oldest
  for (auto it = task_queue_.begin(); it != task_queue_.end(); ++it) {
    if (!eligible(*it)) continue;
    if (oldest == task_queue_.end()) oldest = it;
    heads.emplace(it->task.tenant, it);  // keeps the first (oldest) hit
  }
  if (oldest == task_queue_.end()) return oldest;
  if (now - oldest->enqueue_time > kStarvationWaitS) {
    // Starvation guard: weights shape throughput, they never deny service.
    return oldest;
  }
  // Weighted fair share: serve the tenant with the least normalized
  // service. The provisional in-flight charge keeps a burst of assigns
  // within one matcher pass from all landing on the same tenant.
  auto best = task_queue_.end();
  double best_norm = 0.0;
  for (const auto& [tenant, it] : heads) {
    const TenantSched& t = tenants_[tenant];
    const double norm = (t.service_s + t.inflight_s) / t.weight;
    if (best == task_queue_.end() || norm < best_norm) {
      best = it;
      best_norm = norm;
    }
  }
  return best;
}

int StagingService::live_bucket_count() const {
  std::lock_guard lock(mutex_);
  return live_buckets_;
}

void StagingService::bucket_main(int bucket_index) {
  obs::set_thread_track(obs::bucket_track(bucket_index));
  const size_t b = static_cast<size_t>(bucket_index);
  // Matcher body: moves queued, backoff-released tasks onto free buckets'
  // slots — FCFS by default, weighted fair share once tenant policies are
  // set (pick_task_locked). A retried task avoids the bucket it last
  // failed on whenever another live bucket exists. Requires mutex_ held.
  auto match = [this] {
    const double now = clock_.seconds();
    bool matched = true;
    while (matched && !task_queue_.empty() && !free_buckets_.empty()) {
      matched = false;
      for (auto fb = free_buckets_.begin(); fb != free_buckets_.end(); ++fb) {
        const int free_b = *fb;
        auto it = pick_task_locked(free_b, now);
        if (it == task_queue_.end()) continue;
        slots_[static_cast<size_t>(free_b)] = std::move(*it);
        task_queue_.erase(it);
        free_buckets_.erase(fb);
        Assigned& picked = *slots_[static_cast<size_t>(free_b)];
        queue_depth().add(-1);
        queue_account_remove(picked);
        if (fair_share_) {
          // Provisional charge: hold the tenant's smoothed per-attempt
          // bucket time against it until the attempt settles.
          TenantSched& t = tenants_[picked.task.tenant];
          picked.charge_s = t.ewma_task_s > 0.0 ? t.ewma_task_s : 1e-3;
          t.inflight_s += picked.charge_s;
        }
        matched = true;
        break;  // iterators invalidated; rescan
      }
    }
  };
  // Earliest backoff release still in the future (-1 = none pending).
  // Requires mutex_ held.
  auto next_release = [this] {
    const double now = clock_.seconds();
    double next = -1.0;
    for (const Assigned& a : task_queue_) {
      if (a.not_before > now && (next < 0.0 || a.not_before < next)) {
        next = a.not_before;
      }
    }
    return next;
  };
  for (;;) {
    Assigned assigned;
    {
      std::unique_lock lock(mutex_);
      if (!buckets_[b].dead) {
        // Bucket-ready: join the free list, then FCFS-match queued work.
        free_buckets_.push_back(bucket_index);
        match();
        while (!stopping_ && !slots_[b].has_value() && !buckets_[b].dead) {
          const double release = next_release();
          if (release < 0.0) {
            work_cv_.wait(lock);
          } else {
            // A retried task is waiting out its backoff: sleep until the
            // release (or an earlier submit/retry/stop notification).
            const double delta = release - clock_.seconds();
            if (delta > 0.0) {
              work_cv_.wait_for(lock, std::chrono::duration<double>(delta));
            }
          }
          match();
        }
        work_cv_.notify_all();
      }
      if (buckets_[b].crashed) {
        // Ungraceful death: unlike a graceful kill, a pending assignment is
        // NOT drained — the heartbeat reclaims the slot and the lease
        // machinery re-executes whatever was in flight. Just disappear.
        for (auto it = free_buckets_.begin(); it != free_buckets_.end();
             ++it) {
          if (*it == bucket_index) {
            free_buckets_.erase(it);
            break;
          }
        }
        return;
      }
      if (slots_[b].has_value()) {
        assigned = std::move(*slots_[b]);
        slots_[b].reset();
        if (lease_tracking_) {
          // Take ownership: the lease covers the whole attempt and renews
          // on every heartbeat while this bucket stays alive.
          leases_[bucket_index] =
              Lease{assigned, clock_.seconds() + kLeaseS};
        }
      } else if (buckets_[b].dead) {
        // Retired by a scripted kill: leave the free list and exit. Queued
        // work was already drained by the killer if capacity hit zero.
        for (auto it = free_buckets_.begin(); it != free_buckets_.end();
             ++it) {
          if (*it == bucket_index) {
            free_buckets_.erase(it);
            break;
          }
        }
        return;
      } else {
        HIA_ASSERT(stopping_);
        return;
      }
    }
    execute(bucket_index, std::move(assigned));
  }
}

void StagingService::execute(int bucket_index, Assigned assigned) {
  // Fault check first: does this attempt time out? (Deterministic per
  // (task, attempt); the timeout occupies the bucket like the real thing.)
  if (faults_ != nullptr &&
      faults_->task_fails(assigned.task.task_id, assigned.attempt)) {
    const RetryPolicy& retry = faults_->retry();
    // Fault-stuck attempts never reach run_task, so they get explicit
    // occupancy records: occupy at entry, the stuck time as kTaskWork, and
    // either kTaskRetry (retry_task) or kBucketVacate as the end.
    const double occupy_vt = clock_.seconds();
    obs::record_event(obs::EventKind::kBucketOccupy, assigned.task.tenant,
                      bucket_index,
                      static_cast<int64_t>(assigned.task.task_id),
                      assigned.attempt, occupy_vt);
    obs::instant("fault", "task_timeout",
                 {.bucket = bucket_index,
                  .step = assigned.task.step,
                  .vtime = clock_.seconds()});
    if (retry.task_timeout_s > 0.0) {
      busy_buckets().add(1);
      obs::Span stuck("fault", "task_stuck",
                      {.bucket = bucket_index, .step = assigned.task.step});
      std::this_thread::sleep_for(
          std::chrono::duration<double>(retry.task_timeout_s));
      busy_buckets().add(-1);
    }
    // A crash may have reclaimed this attempt while it was stuck: a stale
    // epoch means the retry below already happened under the new epoch, so
    // this attempt must leave no further trace (its occupancy was closed by
    // the reclamation's kTaskRetry/kBucketVacate).
    if (zombie_fenced(assigned, bucket_index)) return;
    {
      // The stuck time was real bucket occupancy: settle it against the
      // tenant before the task re-enters the queue (or degrades).
      std::lock_guard lock(mutex_);
      settle_service_locked(assigned, retry.task_timeout_s);
    }
    const double stuck_end_vt = clock_.seconds();
    obs::record_event(
        obs::EventKind::kTaskWork, assigned.task.tenant, bucket_index,
        static_cast<int64_t>(assigned.task.task_id),
        static_cast<int64_t>((stuck_end_vt - occupy_vt) * 1e6), stuck_end_vt);
    if (assigned.attempt < retry.max_task_attempts) {
      retry_task(bucket_index, std::move(assigned));
    } else {
      obs::record_event(obs::EventKind::kBucketVacate, assigned.task.tenant,
                        bucket_index,
                        static_cast<int64_t>(assigned.task.task_id),
                        assigned.attempt, stuck_end_vt);
      assigned.last_bucket = bucket_index;
      degrade_or_shed(std::move(assigned));
    }
    return;
  }
  run_task(bucket_index, std::move(assigned), clock_.seconds(),
           TaskOutcome::kCompleted);
}

void StagingService::retry_task(int failed_bucket, Assigned assigned) {
  const double backoff =
      faults_->backoff_seconds(assigned.task.task_id, assigned.attempt);
  const uint64_t task_id = assigned.task.task_id;
  const int tenant = assigned.task.tenant;
  const int failed_attempt = assigned.attempt;
  static obs::Counter& retries = obs::counter("staging_task_retries");
  static obs::Histogram& backoff_h = obs::histogram("staging_backoff_s");
  retries.add(1);
  backoff_h.record(backoff);
  obs::instant("fault", "task_retry",
               {.bucket = failed_bucket,
                .step = assigned.task.step,
                .vtime = clock_.seconds()});
  bool no_capacity = false;
  double retry_vt = 0.0;
  {
    std::lock_guard lock(mutex_);
    assigned.last_bucket = failed_bucket;
    assigned.attempt += 1;
    assigned.backoff_total += backoff;
    // One clock read feeds both not_before and the retry/release events,
    // so backoff_release.vt - task_retry.vt == backoff exactly and the
    // attribution partition telescopes without a gap.
    retry_vt = clock_.seconds();
    assigned.not_before = retry_vt + backoff;
    bool tenant_capped = false;
    if (fair_share_) {
      TenantSched& t = tenants_[assigned.task.tenant];
      tenant_capped = (t.queue_bytes_cap > 0 &&
                       t.queue_bytes + assigned.bytes > t.queue_bytes_cap) ||
                      (t.queue_depth_cap > 0 &&
                       t.queue_depth >= t.queue_depth_cap);
      // Same rule per tenant: a retry may not push its owner over cap.
      if (tenant_capped) ++t.cap_diversions;
    }
    if (live_buckets_ == 0 || tenant_capped) {
      no_capacity = true;
    } else if (overload_ != nullptr &&
               overload_->queue_would_overflow(assigned.bytes)) {
      // The queue filled up while this task was executing; requeueing it
      // would breach the hard budget, so the retry budget is forfeit and
      // the task degrades/sheds like a diverted submission.
      no_capacity = true;
    } else {
      queue_account_add(assigned);
      queue_insert_sorted(std::move(assigned));
      queue_depth().add(1);
    }
  }
  // kTaskRetry ends the failed attempt's occupancy. kBackoffRelease only
  // exists when the task really re-enters the queue race: a no-capacity
  // retry degrades immediately and never waits out its backoff.
  obs::record_event(obs::EventKind::kTaskRetry, tenant, failed_bucket,
                    static_cast<int64_t>(task_id), failed_attempt, retry_vt);
  if (!no_capacity) {
    obs::record_event(obs::EventKind::kBackoffRelease, tenant, -1,
                      static_cast<int64_t>(task_id), failed_attempt + 1,
                      retry_vt + backoff);
  }
  work_cv_.notify_all();
  if (no_capacity) degrade_or_shed(std::move(assigned));
}

void StagingService::degrade_or_shed(Assigned assigned) {
  const bool degrade =
      faults_ == nullptr || faults_->retry().degrade_to_insitu;
  if (degrade) {
    // ElasticBroker-style degradation: the analysis still runs, but on the
    // in-situ fallback executor — work is conserved, latency is charged to
    // the primary side. In the virtual cluster the calling thread plays
    // that executor (bucket index -1).
    run_task(-1, std::move(assigned), clock_.seconds(),
             TaskOutcome::kDegraded);
  } else {
    shed_task(std::move(assigned));
  }
}

void StagingService::shed_task(Assigned assigned) {
  // Load shedding, made loud: the task is dropped, but it still produces a
  // record and bumps an explicit counter — nothing disappears silently.
  static obs::Counter& dropped = obs::counter("staging_tasks_dropped");
  dropped.add(1);
  if (fair_share_enabled()) {
    obs::counter("staging_tasks_dropped", {.tenant = assigned.task.tenant})
        .add(1);
  }
  obs::instant("fault", "task_shed",
               {.step = assigned.task.step, .vtime = clock_.seconds()});
  obs::record_event(obs::EventKind::kTaskShed, assigned.task.tenant, -1,
                    static_cast<int64_t>(assigned.task.task_id),
                    assigned.attempt, clock_.seconds());
  HIA_LOG_WARN("staging", "task %llu (%s, step %ld) shed after %d attempts",
               static_cast<unsigned long long>(assigned.task.task_id),
               assigned.task.analysis.c_str(), assigned.task.step,
               assigned.attempt);
  for (const DataDescriptor& d : assigned.task.inputs) {
    dart_.release(d.handle);
  }
  TaskRecord record;
  record.task_id = assigned.task.task_id;
  record.analysis = assigned.task.analysis;
  record.step = assigned.task.step;
  record.tenant = assigned.task.tenant;
  record.bucket = -1;
  record.enqueue_time = assigned.enqueue_time;
  record.assign_time = clock_.seconds();
  record.complete_time = record.assign_time;
  record.outcome = TaskOutcome::kShed;
  record.attempts = assigned.attempt;
  record.backoff_seconds = assigned.backoff_total;
  record.last_failed_bucket = assigned.last_bucket;
  // Clock-domain guard: enqueue_time must be virtual task-clock seconds
  // (in [0, now]); a wall-epoch timestamp (~1.7e9) leaking in here would
  // poison every queue-wait statistic downstream.
  HIA_ASSERT(record.enqueue_time >= 0.0 &&
             record.enqueue_time <= clock_.seconds());
  {
    std::lock_guard lock(mutex_);
    settle_service_locked(assigned, 0.0);  // no bucket time: drop any charge
    records_.push_back(record);
    HIA_ASSERT(outstanding_ > 0);
    --outstanding_;
    if (fair_share_) {
      TenantSched& t = tenants_[record.tenant];
      HIA_ASSERT(t.outstanding > 0);
      --t.outstanding;
    }
  }
  drain_cv_.notify_all();
}

void StagingService::run_task(int bucket_index, Assigned assigned,
                              double assign_time, TaskOutcome outcome) {
  Handler handler;
  int dart_node = -1;
  {
    std::lock_guard lock(mutex_);
    auto it = handlers_.find(assigned.task.analysis);
    HIA_ASSERT(it != handlers_.end());
    handler = it->second;
    if (bucket_index >= 0) {
      dart_node = buckets_[static_cast<size_t>(bucket_index)].dart_node;
    } else {
      // The in-situ fallback executor registers with Dart on first use so
      // fault-free runs keep the baseline node census.
      if (fallback_node_ < 0) {
        fallback_node_ = dart_.register_node("staging-fallback");
      }
      dart_node = fallback_node_;
    }
  }

  // The task span on this bucket's track: assign -> pull -> compute ->
  // complete (the pull/decode sub-spans come from Dart).
  char span_name[obs::Event::kNameCapacity];
  std::snprintf(span_name, sizeof(span_name), "task:%s%s",
                outcome == TaskOutcome::kDegraded ? "degraded:" : "",
                assigned.task.analysis.c_str());
  if (bucket_index >= 0) busy_buckets().add(1);
  obs::record_event(obs::EventKind::kTaskAssign, assigned.task.tenant,
                    bucket_index,
                    static_cast<int64_t>(assigned.task.task_id),
                    assigned.attempt, assign_time);
  obs::Span task_span("sched", span_name,
                      {.bucket = bucket_index,
                       .step = assigned.task.step,
                       .vtime = assign_time});

  TaskContext ctx(*this, dart_, assigned.task, bucket_index, dart_node);

  Stopwatch watch;
  bool failed = false;
  try {
    obs::Span compute_span("sched", "compute",
                           {.bucket = bucket_index,
                            .step = assigned.task.step});
    handler(ctx);
  } catch (const std::exception& e) {
    failed = true;
    HIA_LOG_ERROR("staging", "task %llu (%s, step %ld) attempt %d failed: %s",
                  static_cast<unsigned long long>(assigned.task.task_id),
                  assigned.task.analysis.c_str(), assigned.task.step,
                  assigned.attempt, e.what());
  }
  double wall = watch.seconds();

  if (failed && faults_ != nullptr && bucket_index >= 0 &&
      assigned.attempt < faults_->retry().max_task_attempts) {
    // A thrown handler (e.g. a pull whose frames never survived the wire)
    // is a failed attempt: back off and retry like an injected timeout.
    busy_buckets().add(-1);
    // Stale epoch: a crash already reclaimed and re-queued this task; the
    // zombie's retry would double it.
    if (zombie_fenced(assigned, bucket_index)) return;
    {
      // The failed attempt still occupied the bucket: settle that time
      // against the tenant before requeueing.
      std::lock_guard lock(mutex_);
      settle_service_locked(assigned, clock_.seconds() - assign_time);
    }
    // Phase split of the failed attempt's occupancy; kTaskRetry (recorded
    // by retry_task at a later clock read) ends the occupancy window.
    const double fail_vt = clock_.seconds();
    const double pull_wall = ctx.transfer_wall_seconds_;
    obs::record_event(obs::EventKind::kTaskXfer, assigned.task.tenant,
                      bucket_index,
                      static_cast<int64_t>(assigned.task.task_id),
                      static_cast<int64_t>(pull_wall * 1e6), fail_vt);
    obs::record_event(obs::EventKind::kTaskWork, assigned.task.tenant,
                      bucket_index,
                      static_cast<int64_t>(assigned.task.task_id),
                      static_cast<int64_t>(std::max(0.0, wall - pull_wall) *
                                           1e6),
                      fail_vt);
    retry_task(bucket_index, std::move(assigned));
    return;
  }

  if (faults_ != nullptr && bucket_index >= 0) {
    // Scripted slowdown: this bucket's core is oversubscribed; stretch the
    // compute phase by the configured factor.
    const double factor = faults_->bucket_slow_factor(bucket_index);
    if (factor > 1.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(wall * (factor - 1.0)));
      wall *= factor;
    }
  }

  // Exactly-once gate: if a crash reclaimed this task while the attempt
  // ran, the re-execution (current epoch) owns the terminal record, the
  // outstanding_ decrement, and the input-handle releases. The zombie
  // stops here, before any of those side effects.
  if (zombie_fenced(assigned, bucket_index)) {
    if (bucket_index >= 0) busy_buckets().add(-1);
    return;
  }

  // The bucket consumed its inputs; free the published regions.
  for (const DataDescriptor& d : assigned.task.inputs) {
    dart_.release(d.handle);
  }

  TaskRecord record;
  record.task_id = assigned.task.task_id;
  record.analysis = assigned.task.analysis;
  record.step = assigned.task.step;
  record.tenant = assigned.task.tenant;
  record.bucket = bucket_index;
  record.enqueue_time = assigned.enqueue_time;
  record.assign_time = assign_time;
  record.complete_time = clock_.seconds();
  record.data_movement_seconds = ctx.movement_seconds_;
  record.data_movement_bytes = ctx.movement_bytes_;
  record.data_movement_raw_bytes = ctx.movement_raw_bytes_;
  record.decode_seconds = ctx.decode_seconds_;
  record.compute_seconds = wall;
  record.outcome = outcome;
  record.attempts = assigned.attempt;
  record.backoff_seconds = assigned.backoff_total;
  record.last_failed_bucket = assigned.last_bucket;

  // The TaskRecord ledger and the tracer's scheduler spans are derived
  // from the same clock reads; the lifecycle must be monotone or one of
  // the two ledgers drifted. The first assert is the clock-domain guard:
  // all three stamps are virtual task-clock seconds (in [0, now]); a
  // wall-epoch timestamp (~1.7e9) leaking into enqueue_time would poison
  // every queue-wait histogram downstream.
  HIA_ASSERT(record.enqueue_time >= 0.0 &&
             record.enqueue_time <= clock_.seconds());
  HIA_ASSERT(record.assign_time >= record.enqueue_time);
  HIA_ASSERT(record.complete_time >= record.assign_time);

  {
    std::lock_guard lock(mutex_);
    // Settle the fair-share ledger: real bucket occupancy replaces the
    // provisional charge (fallback runs cost no bucket time).
    settle_service_locked(
        assigned,
        bucket_index >= 0 ? record.complete_time - record.assign_time : 0.0);
    records_.push_back(record);
    if (!failed && ctx.result_.has_value()) {
      results_[record.task_id] = std::move(*ctx.result_);
    }
    HIA_ASSERT(outstanding_ > 0);
    --outstanding_;
    if (fair_share_) {
      TenantSched& t = tenants_[record.tenant];
      HIA_ASSERT(t.outstanding > 0);
      --t.outstanding;
    }
  }
  const bool fair_share = fair_share_enabled();
  if (outcome == TaskOutcome::kDegraded) {
    static obs::Counter& degraded = obs::counter("staging_tasks_degraded");
    degraded.add(1);
    if (fair_share) {
      obs::counter("staging_tasks_degraded", {.tenant = record.tenant})
          .add(1);
    }
  } else {
    static obs::Counter& completed = obs::counter("staging_tasks_completed");
    completed.add(1);
    if (fair_share) {
      obs::counter("staging_tasks_completed", {.tenant = record.tenant})
          .add(1);
    }
  }
  // Transfer/compute split of this final attempt's occupancy, stamped at
  // the terminal instant. Both are wall durations measured *inside* the
  // [assign, complete] window, so transfer + compute <= occupancy and the
  // remainder is the drain phase by construction.
  {
    const double pull_wall = ctx.transfer_wall_seconds_;
    obs::record_event(obs::EventKind::kTaskXfer, record.tenant, record.bucket,
                      static_cast<int64_t>(record.task_id),
                      static_cast<int64_t>(pull_wall * 1e6),
                      record.complete_time);
    obs::record_event(obs::EventKind::kTaskWork, record.tenant, record.bucket,
                      static_cast<int64_t>(record.task_id),
                      static_cast<int64_t>(std::max(0.0, wall - pull_wall) *
                                           1e6),
                      record.complete_time);
  }
  obs::record_event(outcome == TaskOutcome::kDegraded
                        ? obs::EventKind::kTaskDegrade
                        : obs::EventKind::kTaskComplete,
                    record.tenant, record.bucket,
                    static_cast<int64_t>(record.task_id), record.attempts,
                    record.complete_time);
  // The three Fig. 5 latency distributions, on the task (virtual) clock.
  static obs::Histogram& wait_h = obs::histogram("staging_queue_wait_s");
  static obs::Histogram& compute_h = obs::histogram("staging_compute_s");
  static obs::Histogram& turnaround_h = obs::histogram("staging_turnaround_s");
  wait_h.record(record.assign_time - record.enqueue_time);
  compute_h.record(record.compute_seconds);
  turnaround_h.record(record.complete_time - record.enqueue_time);
  if (fair_share) {
    // Per-tenant turnaround: the isolation metric the service drill and
    // the tenants ablation gate on (p99 per tenant under contention). A
    // labeled series per tenant, not a mangled name: the exporter renders
    // it as hia_staging_turnaround_s{tenant="N"}.
    obs::histogram("staging_turnaround_s", {.tenant = record.tenant})
        .record(record.complete_time - record.enqueue_time);
  }
  if (bucket_index >= 0) busy_buckets().add(-1);
  obs::instant("sched", "complete",
               {.bucket = bucket_index,
                .step = record.step,
                .bytes = static_cast<long long>(record.data_movement_bytes),
                .vtime = record.complete_time});
  drain_cv_.notify_all();
}

}  // namespace hia
