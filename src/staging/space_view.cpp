#include "staging/space_view.hpp"

#include "util/error.hpp"

namespace hia {

DataDescriptor SpaceView::put(const std::string& variable, long step,
                              const Box3& box,
                              const std::vector<double>& data,
                              const Codec* codec) {
  HIA_REQUIRE(static_cast<int64_t>(data.size()) == box.num_cells(),
              "put: data does not match box");
  DataDescriptor desc;
  desc.variable = variable;
  desc.step = step;
  desc.box = box;
  desc.src_node = node_;
  desc.handle = codec == nullptr ? dart_.put_doubles(node_, data)
                                 : dart_.put_doubles(node_, data, *codec);
  store_.put(desc);
  return desc;
}

std::vector<double> SpaceView::get(const std::string& variable, long step,
                                   const Box3& box, TransferStats* stats) {
  HIA_REQUIRE(!box.empty(), "get: empty region");
  const auto descs = store_.query(variable, step, box);

  std::vector<double> out(static_cast<size_t>(box.num_cells()), 0.0);
  std::vector<bool> filled(out.size(), false);
  TransferStats total;

  for (const DataDescriptor& d : descs) {
    TransferStats one;
    const auto block = dart_.get_doubles(node_, d.handle, &one);
    total.bytes += one.bytes;
    total.raw_bytes += one.raw_bytes;
    total.modeled_seconds += one.modeled_seconds;
    total.decode_seconds += one.decode_seconds;
    total.encoded = total.encoded || one.encoded;
    const Box3 overlap = box.intersect(d.box);
    for (int64_t k = overlap.lo[2]; k < overlap.hi[2]; ++k) {
      for (int64_t j = overlap.lo[1]; j < overlap.hi[1]; ++j) {
        for (int64_t i = overlap.lo[0]; i < overlap.hi[0]; ++i) {
          const size_t dst = box.offset(i, j, k);
          out[dst] = block[d.box.offset(i, j, k)];
          filled[dst] = true;
        }
      }
    }
  }

  for (size_t c = 0; c < filled.size(); ++c) {
    if (!filled[c]) {
      int64_t i, j, k;
      box.coords(c, i, j, k);
      throw Error("get: region not fully covered at (" + std::to_string(i) +
                  "," + std::to_string(j) + "," + std::to_string(k) +
                  ") for " + variable + " step " + std::to_string(step));
    }
  }
  if (stats != nullptr) *stats = total;
  return out;
}

bool SpaceView::covered(const std::string& variable, long step,
                        const Box3& box) const {
  const auto descs = store_.query(variable, step, box);
  std::vector<bool> filled(static_cast<size_t>(box.num_cells()), false);
  for (const DataDescriptor& d : descs) {
    const Box3 overlap = box.intersect(d.box);
    for (int64_t k = overlap.lo[2]; k < overlap.hi[2]; ++k)
      for (int64_t j = overlap.lo[1]; j < overlap.hi[1]; ++j)
        for (int64_t i = overlap.lo[0]; i < overlap.hi[0]; ++i)
          filled[box.offset(i, j, k)] = true;
  }
  for (const bool f : filled) {
    if (!f) return false;
  }
  return true;
}

void SpaceView::evict(const std::string& variable, long step) {
  for (const DataDescriptor& d : store_.take(variable, step)) {
    dart_.release(d.handle);
  }
}

}  // namespace hia
