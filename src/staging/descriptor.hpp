// Shared descriptor types for the staging layer: RDMA-enabled data-block
// descriptors inserted by in-situ ranks on *data-ready* events, and the
// in-transit task descriptors queued for staging buckets.
#pragma once

#include <string>
#include <vector>

#include "sim/box.hpp"
#include "transport/dart.hpp"

namespace hia {

/// Describes one published data block: which variable/timestep/sub-domain
/// it holds and where to pull it from.
struct DataDescriptor {
  std::string variable;
  long step = 0;
  Box3 box;             // global index-space bounds of the block
  DartHandle handle;    // RDMA handle registered with Dart
  int src_node = -1;    // publishing in-situ node
  /// Owning tenant (0 = the default single-campaign tenant). Multi-tenant
  /// runs namespace `variable` with the tenant prefix as well; the id is
  /// what the byte-accounting ledgers charge.
  int tenant = 0;
};

/// An in-transit task: run `analysis` over `inputs` for timestep `step`.
struct InTransitTask {
  std::string analysis;
  long step = 0;
  std::vector<DataDescriptor> inputs;
  /// Caller-assigned id, unique per service instance once submitted.
  uint64_t task_id = 0;
  /// Owning tenant: the fair-share matcher schedules by tenant deficit and
  /// every queue/credit/diversion charge lands on this id (0 = default).
  int tenant = 0;
};

/// How a task left the staging pipeline. Every submitted task ends in
/// exactly one record with exactly one outcome — nothing is lost silently.
enum class TaskOutcome {
  kCompleted,  // ran in-transit on a staging bucket
  kDegraded,   // staging gave up after K attempts; ran on the in-situ
               // fallback executor instead (work conserved)
  kShed,       // staging gave up and the plan said shed: dropped, counted
  kDeferred,   // parked one step by the steering policy; the payload was
               // resubmitted as a *new* task, so this record is terminal
               // and conservation still partitions submissions exactly
};

inline const char* to_string(TaskOutcome outcome) {
  switch (outcome) {
    case TaskOutcome::kCompleted: return "completed";
    case TaskOutcome::kDegraded: return "degraded";
    case TaskOutcome::kShed: return "shed";
    case TaskOutcome::kDeferred: return "deferred";
  }
  return "?";
}

/// Timing record for one executed in-transit task (Fig. 5 / Fig. 6 data).
///
/// Ordering invariant: `task_id` is assigned monotonically at submit, and
/// the scheduler keeps its queue sorted by task_id — a task released from
/// retry backoff re-enters at its *arrival position*, not the queue tail,
/// so FCFS order is preserved across backoff (asserted at every queue
/// insert). Under weighted fair-share, arrival order still holds *within*
/// each tenant; cross-tenant order intentionally follows the tenants'
/// normalized service deficits instead.
struct TaskRecord {
  uint64_t task_id = 0;
  std::string analysis;
  long step = 0;
  int tenant = 0;  // owning tenant (0 = default)
  // All three timestamps are *virtual task-clock* seconds since service
  // start (StagingService::now()), never wall-epoch time — queue-wait math
  // (assign - enqueue) would silently explode if the domains ever mixed;
  // the scheduler guards this invariant with an assert on every record.
  int bucket = -1;              // -1 = the in-situ fallback executor
  double enqueue_time = 0.0;    // seconds since service start
  double assign_time = 0.0;
  double complete_time = 0.0;
  double data_movement_seconds = 0.0;  // modeled wire time for all pulls
  size_t data_movement_bytes = 0;      // wire bytes (encoded when compressed)
  size_t data_movement_raw_bytes = 0;  // logical bytes before encoding
  double decode_seconds = 0.0;         // bucket-side codec decode time
  double compute_seconds = 0.0;        // handler wall time minus pulls

  // ---- Resilience ledger (all defaults when faults are off) ----
  TaskOutcome outcome = TaskOutcome::kCompleted;
  int attempts = 1;                // execution attempts including the final one
  double backoff_seconds = 0.0;    // total retry backoff the task waited
  int last_failed_bucket = -1;     // bucket of the most recent failed attempt
};

}  // namespace hia
