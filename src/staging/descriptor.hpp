// Shared descriptor types for the staging layer: RDMA-enabled data-block
// descriptors inserted by in-situ ranks on *data-ready* events, and the
// in-transit task descriptors queued for staging buckets.
#pragma once

#include <string>
#include <vector>

#include "sim/box.hpp"
#include "transport/dart.hpp"

namespace hia {

/// Describes one published data block: which variable/timestep/sub-domain
/// it holds and where to pull it from.
struct DataDescriptor {
  std::string variable;
  long step = 0;
  Box3 box;             // global index-space bounds of the block
  DartHandle handle;    // RDMA handle registered with Dart
  int src_node = -1;    // publishing in-situ node
};

/// An in-transit task: run `analysis` over `inputs` for timestep `step`.
struct InTransitTask {
  std::string analysis;
  long step = 0;
  std::vector<DataDescriptor> inputs;
  /// Caller-assigned id, unique per service instance once submitted.
  uint64_t task_id = 0;
};

/// Timing record for one executed in-transit task (Fig. 5 / Fig. 6 data).
struct TaskRecord {
  uint64_t task_id = 0;
  std::string analysis;
  long step = 0;
  int bucket = -1;
  double enqueue_time = 0.0;    // seconds since service start
  double assign_time = 0.0;
  double complete_time = 0.0;
  double data_movement_seconds = 0.0;  // modeled wire time for all pulls
  size_t data_movement_bytes = 0;      // wire bytes (encoded when compressed)
  size_t data_movement_raw_bytes = 0;  // logical bytes before encoding
  double decode_seconds = 0.0;         // bucket-side codec decode time
  double compute_seconds = 0.0;        // handler wall time minus pulls
};

}  // namespace hia
