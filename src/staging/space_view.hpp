// SpaceView — the geometric shared-space API of DataSpaces (dspaces_put /
// dspaces_get): clients publish array regions into the versioned space and
// retrieve *arbitrary* regions, which the view assembles from every
// overlapping published block ("flexible data querying, filtering, data
// redistribution", paper §IV).
//
// put() registers the block with Dart and inserts its descriptor into the
// sharded ObjectStore; get() queries the store for overlapping
// descriptors, pulls each contributing block one-sidedly, and copies out
// the intersecting sub-regions. get() verifies complete coverage of the
// requested region and throws otherwise.
#pragma once

#include <string>
#include <vector>

#include "staging/object_store.hpp"
#include "transport/dart.hpp"

namespace hia {

class SpaceView {
 public:
  /// `node` is this client's Dart registration.
  SpaceView(ObjectStore& store, Dart& dart, int node)
      : store_(store), dart_(dart), node_(node) {}

  /// Publishes `data` (packed x-fastest over `box`) into the space. When
  /// `codec` is given the block is published encoded, so every get() of a
  /// region overlapping it moves (and charges) only the wire bytes.
  DataDescriptor put(const std::string& variable, long step, const Box3& box,
                     const std::vector<double>& data,
                     const Codec* codec = nullptr);

  /// Assembles the requested region from all overlapping published blocks,
  /// transparently decoding encoded ones. Throws hia::Error if any cell of
  /// `box` is not covered. When `stats` is non-null, accumulated transfer
  /// cost (wire/raw bytes, modeled and decode seconds) is reported.
  std::vector<double> get(const std::string& variable, long step,
                          const Box3& box, TransferStats* stats = nullptr);

  /// True if every cell of `box` is covered by published blocks.
  [[nodiscard]] bool covered(const std::string& variable, long step,
                             const Box3& box) const;

  /// Removes a step's blocks from the space and releases their regions.
  void evict(const std::string& variable, long step);

 private:
  ObjectStore& store_;
  Dart& dart_;
  int node_;
};

}  // namespace hia
